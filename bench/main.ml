(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (§8) and runs Bechamel micro-benchmarks — one
    [Test.make] per experiment — timing a representative query for each.

    Run with: [dune exec bench/main.exe]
    Pass [--skip-ablations] to produce only Table 1 and Figures 9–10;
    pass [--skip-bechamel] to skip the micro-benchmark pass;
    pass [--jobs N] (or [-j N]) to run the experiment sweeps on a pool
    of N domains (default: [Domain.recommended_domain_count () - 1];
    [--jobs 1] reproduces the sequential harness exactly, modulo
    timing); pass [--json FILE] to also write the machine-readable
    summary as JSON for perf-trajectory tracking; pass [--smoke] for
    the <60s artificial-suite CI sweep ([dune build @smoke] runs it and
    diffs the JSON against the committed expectations). *)

module Experiments = Stagg_report.Experiments

let representative name =
  match Stagg_benchsuite.Suite.find name with
  | Some b -> b
  | None -> failwith ("missing benchmark " ^ name)

(* ---- Bechamel micro-benchmarks: one per table/figure ---- *)

(* The staged evaluator vs the reference interpreter on the validation
   hot path: gemv at the validator's own example sizes (N=3, M=4). The
   compiled program is built once outside the timed closure, as the
   validator compiles once per instantiation and evaluates per example. *)
let evaluator_tests () =
  let open Bechamel in
  let module T = Stagg_taco.Tensor in
  let module I = Stagg_taco.Interp.Make (Stagg_util.Value.Rat_value) in
  let module C = Stagg_taco.Compile.Make (Stagg_util.Value.Rat_value) in
  let p = Stagg_taco.Parser.parse_program_exn "R(i) = A(i, j) * X(j)" in
  let r = Stagg_util.Rat.of_int in
  let env =
    [
      ("A", T.of_flat_array [| 3; 4 |] (Array.init 12 (fun k -> r (k + 1))));
      ("X", T.of_flat_array [| 4 |] (Array.init 4 (fun k -> r (k + 2))));
    ]
  in
  let lhs_shape = [| 3 |] in
  let expected =
    match I.run ~env ~lhs_shape p with
    | Ok t -> T.to_flat_array t
    | Error e -> failwith e
  in
  let compiled = C.compile p in
  (* the same kernel as the validator sees it: a template whose symbols
     are substituted per candidate — once by instantiate+compile (the
     per-candidate path), once by rebind over the shared template
     compilation (the batched path) *)
  let template = Stagg_taco.Parser.parse_program_exn "a(i) = b(i, j) * c(j)" in
  let mapping = [ ("a", "R"); ("b", "A"); ("c", "X") ] in
  let template_compiled = C.compile_template template in
  [
    Test.make ~name:"validator kernel: gemv Interp.run"
      (Staged.stage (fun () -> ignore (I.run ~env ~lhs_shape p)));
    Test.make ~name:"validator kernel: gemv Compile.run_equal"
      (Staged.stage (fun () -> ignore (C.run_equal compiled ~env ~lhs_shape ~expected)));
    Test.make ~name:"validator kernel: gemv instantiate+compile+run_equal"
      (Staged.stage (fun () ->
           let concrete = Stagg_template.Templatize.rename template ~mapping ~const:None in
           let c = C.compile concrete in
           ignore (C.run_equal c ~env ~lhs_shape ~expected)));
    Test.make ~name:"validator kernel: gemv rebind+run_equal (batched)"
      (Staged.stage (fun () ->
           C.rebind template_compiled ~mapping ~const:None;
           ignore (C.run_equal template_compiled ~env ~lhs_shape ~expected)));
  ]

let bechamel_tests () =
  let open Bechamel in
  let gemv = representative "art_gemv" in
  let run_method m () = ignore (Stagg.Pipeline.run m gemv) in
  let staged f = Staged.stage f in
  evaluator_tests ()
  @ [
    (* Table 1 / Fig 9 / Fig 10: the head-to-head methods *)
    Test.make ~name:"table1/fig9/fig10 STAGG_TD" (staged (run_method Stagg.Method_.stagg_td));
    Test.make ~name:"table1/fig9/fig10 STAGG_BU" (staged (run_method Stagg.Method_.stagg_bu));
    Test.make ~name:"table1 LLM-only"
      (staged (fun () -> ignore (Stagg_baselines.Llm_only.run ~seed:1 gemv)));
    Test.make ~name:"table1 C2TACO"
      (staged (fun () -> ignore (Stagg_baselines.C2taco.run ~seed:1 ~heuristics:true gemv)));
    Test.make ~name:"table1 Tenspiler"
      (staged (fun () -> ignore (Stagg_baselines.Tenspiler.run ~seed:1 gemv)));
    (* Table 2: the penalty machinery *)
    Test.make ~name:"table2 STAGG_TD.Drop(A)"
      (staged (run_method (Stagg.Method_.drop_all_penalties Stagg.Method_.stagg_td "A")));
    (* Table 3 / Figs 11-12: grammar configurations *)
    Test.make ~name:"table3/fig11 TD.EqualProbability"
      (staged (run_method Stagg.Method_.td_equal_probability));
    Test.make ~name:"table3/fig11 TD.LLMGrammar" (staged (run_method Stagg.Method_.td_llm_grammar));
    Test.make ~name:"table3/fig12 TD.FullGrammar"
      (staged (run_method Stagg.Method_.td_full_grammar));
    ]

(* Each Bechamel test is self-contained, so the micro-benchmark pass runs
   on the same domain pool as the experiment sweeps; workers return their
   report lines and the caller prints them in test order. Expect a little
   more measurement noise at [jobs > 1] — worker domains share the
   machine while measuring. *)
let run_bechamel ~jobs () =
  let open Bechamel in
  let open Toolkit in
  print_endline "== Bechamel micro-benchmarks (one per experiment; gemv query) ==";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) () in
  let measure test =
    let buf = Buffer.create 128 in
    let results = Benchmark.all cfg instances test in
    Hashtbl.iter
      (fun name raw ->
        match
          Analyze.one
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        with
        | ols -> (
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Printf.bprintf buf "  %-44s %14.0f ns/run\n" name est
            | _ -> Printf.bprintf buf "  %-44s (no estimate)\n" name)
        | exception _ -> Printf.bprintf buf "  %-44s (analysis failed)\n" name)
      results;
    Buffer.contents buf
  in
  List.iter print_string (Stagg_util.Pool.map ~jobs measure (bechamel_tests ()))

(* ---- smoke mode: a <60s CI sweep over the artificial suite ----

   Runs the two head-to-head methods plus the (slowest) FullGrammar
   configurations over the 10 artificial queries only. Everything
   emitted — solved counts, attempt totals — is deterministic, so the
   [--json] output can be diffed byte-for-byte against the committed
   [bench/smoke_expected.json] (the [@smoke] dune alias does exactly
   that); a drift means a search-behavior change, not noise. *)

let smoke_methods =
  [
    Stagg.Method_.stagg_td;
    Stagg.Method_.stagg_bu;
    Stagg.Method_.td_full_grammar;
    Stagg.Method_.bu_full_grammar;
  ]

let smoke_json rows =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "{\n  \"schema_version\": %d,\n  \"suite\": \"artificial\",\n  \"methods\": [\n"
    Stagg_report.Experiments.schema_version;
  let n = List.length rows in
  List.iteri
    (fun i (label, rs) ->
      let solved = List.length (List.filter (fun (r : Stagg.Result_.t) -> r.solved) rs) in
      let attempts = List.fold_left (fun a (r : Stagg.Result_.t) -> a + r.attempts) 0 rs in
      let instantiations =
        List.fold_left (fun a (r : Stagg.Result_.t) -> a + r.instantiations) 0 rs
      in
      Printf.bprintf buf
        "    { \"method\": %S, \"solved\": %d, \"total\": %d, \"total_attempts\": %d, \
         \"total_instantiations\": %d }%s\n"
        label solved (List.length rs) attempts instantiations
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* [--strip-schema-version SRC DST]: copy SRC to DST minus the
   "schema_version" line. The @smoke alias diffs generated summaries
   against expectations committed before the field existed; stripping on
   the generated side keeps that comparison byte-for-byte while the
   emitted files stay versioned for downstream consumers. *)
let strip_schema_version src dst =
  let ic = open_in src in
  let oc = open_out dst in
  (try
     while true do
       let line = input_line ic in
       if not (String.starts_with ~prefix:"\"schema_version\"" (String.trim line)) then begin
         output_string oc line;
         output_char oc '\n'
       end
     done
   with End_of_file -> ());
  close_in ic;
  close_out oc

let run_smoke ~json_file ~heap_ceiling ~tune () =
  let benches = Stagg_benchsuite.Suite.artificial in
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map
      (fun (m : Stagg.Method_.t) -> (m.label, Stagg.Pipeline.run_suite (tune m) benches))
      smoke_methods
  in
  Printf.printf "== smoke sweep (artificial suite, %d queries) ==\n" (List.length benches);
  List.iter
    (fun (label, rs) ->
      let solved = List.length (List.filter (fun (r : Stagg.Result_.t) -> r.solved) rs) in
      Printf.printf "  %-24s solved %2d/%d\n" label solved (List.length rs))
    rows;
  Printf.printf "smoke wall: %.1fs\n" (Unix.gettimeofday () -. t0);
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (smoke_json rows);
      close_out oc;
      Printf.eprintf "[bench] wrote %s\n%!" file);
  (* memory regression gate: the process-lifetime major-heap high-water
     mark must stay under the recorded ceiling. Reported on stderr (and
     asserted), never in the byte-diffed JSON — heap words are
     deterministic for a given runtime build but not across them. *)
  match heap_ceiling with
  | None -> ()
  | Some ceiling ->
      let peak = (Gc.quick_stat ()).Gc.top_heap_words in
      Printf.eprintf "[bench] peak heap: %d words (ceiling %d)\n%!" peak ceiling;
      if peak > ceiling then begin
        Printf.eprintf "[bench] FAIL: smoke peak heap %d words exceeds ceiling %d\n%!" peak
          ceiling;
        exit 1
      end

(* ---- liftability diagnostics: the analyzer's fail-fast path ----

   Runs STAGG^TD over the deliberately-unliftable demo kernels
   ([Suite.diagnostics], not part of the 77): each is rejected by the
   static analysis before any search, with a diagnostic naming the
   offending construct. Kept out of the smoke sweep (and of every
   table) — this is a demonstration, not a measurement. *)
let run_diagnostics () =
  print_endline "== liftability diagnostics (unliftable demo kernels, rejected before search) ==";
  List.iter
    (fun b ->
      let r = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      Format.printf "%a@." Stagg.Result_.pp r)
    Stagg_benchsuite.Suite.diagnostics;
  print_newline ()

(* ---- serve modes: the lift-as-a-service bench legs ----

   [--serve-smoke] replays a small deterministic request mix — distinct
   kernels, an exact repeat, an alpha-renamed variant, a
   constant-renamed variant, an unliftable kernel, two malformed
   requests and a stats probe — through one in-process server, cold
   then warm, at jobs = 1. Every response field except per-request wall
   time is deterministic, so the normalized output is byte-diffed
   against committed expectations by the fifth @smoke leg: a drift
   means the cache/single-flight/remap behavior changed, not noise.

   [--serve-load] replays the full 77-benchmark suite twice through a
   server at configurable concurrency, asserts every answer is
   byte-identical to the direct (serverless) pipeline, that the warm
   pass never searches, and that the cache hit rate clears 50%; it
   records p50/p95/p99 latency and cache counters into a BENCH-style
   JSON snapshot. *)

module J = Stagg_serve.Json

(* Per-request wall time is the only nondeterministic response field;
   drop it, keep everything else byte-exact. *)
let normalize_response line =
  match J.of_string line with
  | Ok (J.Obj fields) ->
      J.to_string (J.Obj (List.filter (fun (k, _) -> not (String.equal k "time_s")) fields))
  | Ok j -> J.to_string j
  | Error _ -> line

let serve_smoke_requests () =
  let req fields = J.to_string (J.Obj fields) in
  let lift id c sg = req [ ("id", J.String id); ("c", J.String c); ("sig", J.String sg) ] in
  let mul3 = "void f(int n, int *a, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] * 3; }" in
  let mul3_alpha =
    "void g(int m, int *x, int *y) { int j; for (j = 0; j < m; j++) y[j] = x[j] * 3; }"
  in
  let mul9 = "void f(int n, int *a, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] * 9; }" in
  let add2 =
    "void h(int n, int *a, int *b, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] + b[i]; }"
  in
  let diag = List.hd Stagg_benchsuite.Suite.diagnostics in
  [
    lift "mul3" mul3 "n:size,a:arr[n],r:out[n]" (* miss: searched *);
    lift "mul3" mul3 "n:size,a:arr[n],r:out[n]" (* identical repeat: exact-key hit *);
    lift "mul3-alpha" mul3_alpha "m:size,x:arr[m],y:out[m]" (* alpha variant: remap *);
    lift "mul9" mul9 "n:size,a:arr[n],r:out[n]" (* constant variant: remap *);
    lift "add2" add2 "n:size,a:arr[n],b:arr[n],r:out[n]" (* distinct kernel: miss *);
    lift diag.Stagg_benchsuite.Bench.name diag.c_source
      (Stagg_minic.Sigspec.to_string diag.signature) (* unliftable: unsolved *);
    req [ ("id", J.String "bad-c"); ("c", J.String "void f(int n { }"); ("sig", J.String "n:size") ];
    req [ ("id", J.String "no-sig"); ("c", J.String mul3) ];
    req [ ("op", J.String "stats") ];
  ]

let run_serve_smoke ~jobs ~json_file () =
  (* jobs > 1 (the TSan CI leg) races the mix through the single-flight
     cache — useful under the race detector, but which request becomes
     owner is then scheduling-dependent, so only the jobs = 1 output is
     byte-diffable *)
  let server =
    Stagg_serve.Server.create ~config:{ Stagg_serve.Server.jobs; cache_max = 64; verify = true } ()
  in
  let lines = serve_smoke_requests () in
  let buf = Buffer.create 4096 in
  let replay label =
    Printf.bprintf buf "== %s ==\n" label;
    List.iter
      (fun resp ->
        Buffer.add_string buf (normalize_response resp);
        Buffer.add_char buf '\n')
      (Stagg_serve.Server.run_lines server lines)
  in
  let t0 = Unix.gettimeofday () in
  replay "cold";
  replay "warm";
  Printf.printf "== serve smoke (%d requests, cold + warm replay) ==\n" (List.length lines);
  Printf.printf "serve smoke wall: %.1fs\n" (Unix.gettimeofday () -. t0);
  match json_file with
  | None -> print_string (Buffer.contents buf)
  | Some file ->
      let oc = open_out file in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.eprintf "[bench] wrote %s\n%!" file

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let run_serve_load ~jobs ~json_file () =
  let benches = Stagg_benchsuite.Suite.all in
  Printf.printf "== serve load (%d benchmarks x 2 passes, %d jobs) ==\n%!" (List.length benches)
    jobs;
  (* Ground truth first: the direct, serverless pipeline. The serve
     answers must match it byte for byte — the cache and the remap path
     are allowed to save work, never to change a result. *)
  let direct =
    List.map
      (fun (b : Stagg_benchsuite.Bench.t) ->
        let r = Stagg.Pipeline.run Stagg.Method_.td_trace b in
        let taco =
          Option.map
            (fun (s : Stagg_validate.Validator.solution) ->
              Stagg_taco.Pretty.program_to_string s.concrete)
            r.Stagg.Result_.solution
        in
        (b.name, r.Stagg.Result_.solved, taco))
      benches
  in
  let requests =
    List.map
      (fun (b : Stagg_benchsuite.Bench.t) ->
        J.to_string
          (J.Obj
             [
               ("id", J.String b.name);
               ("c", J.String b.c_source);
               ("sig", J.String (Stagg_minic.Sigspec.to_string b.signature));
             ]))
      benches
  in
  let server =
    Stagg_serve.Server.create ~config:{ Stagg_serve.Server.jobs; cache_max = 256; verify = true } ()
  in
  let t0 = Unix.gettimeofday () in
  let pass1 = Stagg_serve.Server.run_lines server requests in
  let s1 = Stagg_serve.Server.cache_stats server in
  let pass2 = Stagg_serve.Server.run_lines server requests in
  let wall_s = Unix.gettimeofday () -. t0 in
  let s2 = Stagg_serve.Server.cache_stats server in
  let failures = ref 0 in
  let check pass responses =
    List.iter2
      (fun (name, d_solved, d_taco) resp ->
        match J.of_string resp with
        | Error e ->
            incr failures;
            Printf.eprintf "[bench] FAIL %s/%s: unparseable response (%s)\n%!" pass name e
        | Ok j ->
            let status = Option.bind (J.member "status" j) J.to_str in
            let taco = Option.bind (J.member "taco" j) J.to_str in
            let s_solved = status = Some "ok" in
            if s_solved <> d_solved || (d_solved && taco <> d_taco) then begin
              incr failures;
              Printf.eprintf "[bench] FAIL %s/%s: serve %s %S, direct %b %S\n%!" pass name
                (Option.value status ~default:"?")
                (Option.value taco ~default:"")
                d_solved
                (Option.value d_taco ~default:"")
            end)
      direct responses
  in
  check "cold" pass1;
  check "warm" pass2;
  (* warm-cache replay must be O(1): every repeat answered from cache,
     zero new searches admitted *)
  if s2.Stagg_serve.Cache.misses <> s1.Stagg_serve.Cache.misses then begin
    incr failures;
    Printf.eprintf "[bench] FAIL: warm pass ran %d fresh searches (expected 0)\n%!"
      (s2.Stagg_serve.Cache.misses - s1.Stagg_serve.Cache.misses)
  end;
  let lift_total = s2.Stagg_serve.Cache.hits + s2.Stagg_serve.Cache.misses + s2.Stagg_serve.Cache.joins in
  let hit_rate =
    float_of_int (s2.Stagg_serve.Cache.hits + s2.Stagg_serve.Cache.joins)
    /. float_of_int (max 1 lift_total)
  in
  if hit_rate < 0.5 then begin
    incr failures;
    Printf.eprintf "[bench] FAIL: cache hit rate %.3f below 0.5 on a 2x replay\n%!" hit_rate
  end;
  let lat =
    List.filter_map
      (fun resp ->
        match J.of_string resp with
        | Ok j -> Option.map (fun s -> s *. 1000.) (Option.bind (J.member "time_s" j) J.to_float)
        | Error _ -> None)
      (pass1 @ pass2)
    |> Array.of_list
  in
  Array.sort compare lat;
  let p50 = percentile lat 50. and p95 = percentile lat 95. and p99 = percentile lat 99. in
  let solved = List.length (List.filter (fun (_, s, _) -> s) direct) in
  let heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
  Printf.printf
    "  requests %d  solved %d/%d  hit rate %.3f\n\
    \  latency p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n\
    \  cache: hits %d  misses %d  joins %d  remaps %d  evictions %d  entries %d\n\
     serve load wall: %.1fs\n"
    (2 * List.length benches)
    solved (List.length benches) hit_rate p50 p95 p99 s2.Stagg_serve.Cache.hits
    s2.Stagg_serve.Cache.misses s2.Stagg_serve.Cache.joins s2.Stagg_serve.Cache.remaps
    s2.Stagg_serve.Cache.evictions s2.Stagg_serve.Cache.entries wall_s;
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{\n\
        \  \"schema_version\": %d,\n\
        \  \"suite\": \"serve-load\",\n\
        \  \"jobs\": %d,\n\
        \  \"requests\": %d,\n\
        \  \"solved\": %d,\n\
        \  \"total\": %d,\n\
        \  \"hit_rate\": %.4f,\n\
        \  \"p50_ms\": %.4f,\n\
        \  \"p95_ms\": %.4f,\n\
        \  \"p99_ms\": %.4f,\n\
        \  \"wall_s\": %.3f,\n\
        \  \"heap_words\": %d,\n\
        \  \"cache\": { \"hits\": %d, \"misses\": %d, \"joins\": %d, \"remaps\": %d, \
         \"evictions\": %d, \"entries\": %d }\n\
         }\n"
        Stagg_report.Experiments.schema_version jobs
        (2 * List.length benches)
        solved (List.length benches) hit_rate p50 p95 p99 wall_s heap_words
        s2.Stagg_serve.Cache.hits s2.Stagg_serve.Cache.misses s2.Stagg_serve.Cache.joins
        s2.Stagg_serve.Cache.remaps s2.Stagg_serve.Cache.evictions s2.Stagg_serve.Cache.entries;
      close_out oc;
      Printf.eprintf "[bench] wrote %s\n%!" file);
  if !failures > 0 then begin
    Printf.eprintf "[bench] FAIL: %d serve-load check(s) failed\n%!" !failures;
    exit 1
  end

let usage () =
  prerr_endline
    "usage: main.exe [--smoke] [--serve-smoke] [--serve-load] [--skip-ablations] \
     [--skip-bechamel] [--no-analysis] \
     [--prune-mode off|replay|admission] [--batched-validate off|on] \
     [--oracle llm|trace|trace+llm] [--search-domains K|auto] [--heap-ceiling WORDS] \
     [--jobs N | -j N] [--json FILE] | --strip-schema-version SRC DST";
  exit 2

let () =
  (* utility mode used by the @smoke alias; no campaign setup *)
  (match Sys.argv with
  | [| _; "--strip-schema-version"; src; dst |] ->
      strip_schema_version src dst;
      exit 0
  | _ -> ());
  (* The campaign's hot loops (A* frontier, validation memo) allocate
     heavily against a large live heap; the default space_overhead of 120
     spends ~20% of search wall time in major-GC marking. Trading memory
     for time is the right call on a benchmark harness. *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 480 };
  let args = List.tl (Array.to_list Sys.argv) in
  let skip_ablations = ref false
  and skip_bechamel = ref false
  and smoke = ref false
  and serve_smoke = ref false
  and serve_load = ref false
  and analysis = ref true
  and prune_mode = ref Stagg_search.Astar.Prune_admission
  and batched_validate = ref true
  and oracle = ref Stagg.Method_.Oracle_llm
  and search_domains = ref 1
  and heap_ceiling = ref None
  and jobs = ref (Stagg_util.Pool.default_jobs ())
  and json_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--serve-smoke" :: rest ->
        serve_smoke := true;
        parse rest
    | "--serve-load" :: rest ->
        serve_load := true;
        parse rest
    | "--skip-ablations" :: rest ->
        skip_ablations := true;
        parse rest
    | "--skip-bechamel" :: rest ->
        skip_bechamel := true;
        parse rest
    | "--no-analysis" :: rest ->
        analysis := false;
        parse rest
    | "--prune-mode" :: mode :: rest ->
        (* [off] = the --no-analysis differential baseline; [replay] keeps
           doomed children on the frontier as tree-less replay items;
           [admission] (default) never enqueues them *)
        (match mode with
        | "off" -> analysis := false
        | "replay" -> prune_mode := Stagg_search.Astar.Prune_replay
        | "admission" -> prune_mode := Stagg_search.Astar.Prune_admission
        | m ->
            Printf.eprintf "--prune-mode expects off|replay|admission, got %s\n" m;
            usage ());
        parse rest
    | "--batched-validate" :: mode :: rest ->
        (* [off] = per-candidate instantiate+compile (the differential
           baseline); results are byte-identical either way, only
           validate-phase time moves *)
        (match mode with
        | "on" -> batched_validate := true
        | "off" -> batched_validate := false
        | m ->
            Printf.eprintf "--batched-validate expects off|on, got %s\n" m;
            usage ());
        parse rest
    | "--oracle" :: name :: rest ->
        (* candidate source for the smoke methods: [llm] (default — a run
           with an explicit [--oracle llm] is byte-identical to one
           without the flag), [trace] (no LLM in the loop; the fourth
           @smoke leg diffs it against smoke_expected_trace.json), or
           [trace+llm]. The full campaign always carries its own
           Trace/Trace+LLM rows, so the flag only steers --smoke. *)
        (match Stagg.Method_.oracle_of_string name with
        | Some o -> oracle := o
        | None ->
            Printf.eprintf "--oracle expects llm|trace|trace+llm, got %s\n" name;
            usage ());
        parse rest
    | "--search-domains" :: k :: rest -> (
        (* K domains for the deterministic parallel A* inside each search
           (1 = sequential engine, the default); outcomes are
           byte-identical for every K — the @smoke alias diffs a K=2 run
           against the same expectations. [auto] takes whatever the Pool
           budget grants. *)
        match k with
        | "auto" ->
            search_domains := 0;
            parse rest
        | _ -> (
            match int_of_string_opt k with
            | Some n when n >= 1 ->
                search_domains := n;
                parse rest
            | _ ->
                Printf.eprintf "--search-domains expects a positive integer or auto, got %s\n" k;
                usage ()))
    | "--heap-ceiling" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            heap_ceiling := Some n;
            parse rest
        | _ ->
            Printf.eprintf "--heap-ceiling expects a positive word count, got %s\n" n;
            usage ())
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            usage ())
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | [ (("--jobs" | "-j" | "--json" | "--prune-mode" | "--batched-validate"
         | "--oracle" | "--search-domains" | "--heap-ceiling")
        as flag) ] ->
        Printf.eprintf "%s expects a value\n" flag;
        usage ()
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ()
  in
  parse args;
  if !serve_smoke then begin
    run_serve_smoke ~jobs:!jobs ~json_file:!json_file ();
    exit 0
  end;
  if !serve_load then begin
    run_serve_load ~jobs:!jobs ~json_file:!json_file ();
    exit 0
  end;
  if !smoke then begin
    let analysis = !analysis
    and prune_mode = !prune_mode
    and batched = !batched_validate
    and oracle = !oracle
    and search_domains = !search_domains in
    let tune (m : Stagg.Method_.t) =
      Stagg.Method_.with_oracle
        (Stagg.Method_.with_search_domains
           (Stagg.Method_.with_batched_validate
              (Stagg.Method_.with_prune_mode { m with analysis } prune_mode)
              batched)
           search_domains)
        oracle
    in
    run_smoke ~json_file:!json_file ~heap_ceiling:!heap_ceiling ~tune ();
    exit 0
  end;
  let skip_ablations = !skip_ablations
  and skip_bechamel = !skip_bechamel
  and analysis = !analysis
  and prune_mode = !prune_mode
  and batched_validate = !batched_validate
  and search_domains = !search_domains
  and jobs = !jobs in
  let progress msg = Printf.eprintf "[bench] %s\n%!" msg in
  let t0 = Unix.gettimeofday () in
  let runs =
    if skip_ablations then
      Experiments.run_core ~progress ~jobs ~analysis ~prune_mode ~batched_validate
        ~search_domains ()
    else
      Experiments.run_all ~progress ~jobs ~analysis ~prune_mode ~batched_validate
        ~search_domains ()
  in
  Printf.printf "Guided Tensor Lifting — experiment harness (suite of %d queries, seed %d%s)\n\n"
    (List.length Stagg_benchsuite.Suite.all)
    runs.seed
    (if analysis then "" else ", static analysis off");
  if analysis then run_diagnostics ();
  print_string (Experiments.table1 runs);
  print_newline ();
  print_string (Experiments.fig9 runs);
  print_newline ();
  print_string (Experiments.fig10 runs);
  print_newline ();
  if not skip_ablations then begin
    print_string (Experiments.table2 runs);
    print_newline ();
    print_string (Experiments.table3 runs);
    print_newline ();
    print_string (Experiments.fig11 runs);
    print_newline ();
    print_string (Experiments.fig12 runs);
    print_newline ()
  end;
  Printf.printf "== machine-readable summary (method, solved, avg time over solved, avg attempts) ==\n";
  print_string (Experiments.summary runs);
  let wall_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal harness time: %.1fs\n" wall_s;
  (match !json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Experiments.json_summary ~jobs ~wall_s runs);
      close_out oc;
      Printf.eprintf "[bench] wrote %s\n%!" file);
  if not skip_bechamel then run_bechamel ~jobs ()
