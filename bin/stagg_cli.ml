(** The [stagg] command-line interface.

    - [stagg list] — enumerate the benchmark suite;
    - [stagg lift NAME] — run the full pipeline on one benchmark;
    - [stagg show NAME] — dump the pipeline's intermediate artifacts
      (LLM candidates, templates, dimension list, learned pCFG);
    - [stagg kernel NAME] — print the TACO-compiled loop nest of a
      benchmark's lifting;
    - [stagg suite] — run a method over the whole suite;
    - [stagg experiments] — regenerate the paper's tables and figures. *)

open Cmdliner
module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let find_bench_exn name =
  match Suite.find name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %s (try `stagg list`)\n" name;
      exit 2

let method_of_string = function
  | "td" -> Stagg.Method_.stagg_td
  | "bu" -> Stagg.Method_.stagg_bu
  | "td-equal" -> Stagg.Method_.td_equal_probability
  | "td-llm-grammar" -> Stagg.Method_.td_llm_grammar
  | "td-full-grammar" -> Stagg.Method_.td_full_grammar
  | "bu-equal" -> Stagg.Method_.bu_equal_probability
  | "bu-llm-grammar" -> Stagg.Method_.bu_llm_grammar
  | "bu-full-grammar" -> Stagg.Method_.bu_full_grammar
  | "trace" -> Stagg.Method_.td_trace
  | "trace+llm" | "trace-llm" -> Stagg.Method_.td_trace_llm
  | s ->
      Printf.eprintf "unknown method %s\n" s;
      exit 2

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Bench.t) ->
        Printf.printf "%-22s %-12s llm=%-5s %s\n" b.name
          (Bench.category_to_string b.category)
          (Stagg_oracle.Llm_client.quality_to_string b.llm_quality)
          b.ground_truth)
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 77 benchmarks with their ground-truth liftings.")
    Term.(const run $ const ())

(* ---- lift ---- *)

let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let method_arg =
  Arg.(
    value
    & opt string "td"
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Search method: td, bu, td-equal, td-llm-grammar, td-full-grammar, bu-equal, ..., \
           trace, trace+llm")

let no_analysis_arg =
  Arg.(
    value & flag
    & info [ "no-analysis" ]
        ~doc:
          "Disable the static liftability analysis (fail-fast and search pruning). \
           Solved/attempt outcomes are byte-identical either way; this is the \
           differential-testing baseline.")

let with_analysis no_analysis m = if no_analysis then Stagg.Method_.without_analysis m else m

let prune_mode_arg =
  Arg.(
    value
    & opt string "admission"
    & info [ "prune-mode" ] ~docv:"MODE"
        ~doc:
          "How the analysis prune absorbs provably-doomed templates: $(b,admission) (default) \
           never enqueues them, $(b,replay) keeps them on the frontier as tree-less replay \
           items, $(b,off) disables the analysis entirely (alias of $(b,--no-analysis)). \
           Solved/attempt outcomes are byte-identical across all three.")

let with_prune_mode mode m =
  match mode with
  | "admission" -> Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_admission
  | "replay" -> Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_replay
  | "off" -> Stagg.Method_.without_analysis m
  | s ->
      Printf.eprintf "unknown prune mode %s (expected off|replay|admission)\n" s;
      exit 2

let batched_validate_arg =
  Arg.(
    value
    & opt string "on"
    & info [ "batched-validate" ] ~docv:"MODE"
        ~doc:
          "Template-level compilation in the validator: $(b,on) (default) compiles each \
           template once and rebinds per substitution, $(b,off) falls back to per-candidate \
           instantiate+compile. Solutions and instantiation counts are byte-identical either \
           way; $(b,off) is the differential baseline.")

let with_batched_validate mode m =
  match mode with
  | "on" -> m
  | "off" -> Stagg.Method_.with_batched_validate m false
  | s ->
      Printf.eprintf "unknown batched-validate mode %s (expected off|on)\n" s;
      exit 2

let oracle_arg =
  Arg.(
    value
    & opt string "default"
    & info [ "oracle" ] ~docv:"ORACLE"
        ~doc:
          "Candidate source: $(b,llm) (the paper's pipeline), $(b,trace) (templates extracted \
           from the kernel's own execution trace — no LLM in the loop), or $(b,trace+llm) \
           (union). $(b,default) keeps the method's own oracle (the $(b,trace)/$(b,trace+llm) \
           methods carry theirs; everything else is $(b,llm)). A run with an explicit \
           $(b,--oracle llm) is byte-identical to one without the flag.")

let with_oracle name m =
  match name with
  | "default" -> m
  | _ -> (
      match Stagg.Method_.oracle_of_string name with
      | Some o -> Stagg.Method_.with_oracle m o
      | None ->
          Printf.eprintf "unknown oracle %s (expected llm|trace|trace+llm)\n" name;
          exit 2)

let search_domains_arg =
  Arg.(
    value
    & opt string "1"
    & info [ "search-domains" ] ~docv:"K"
        ~doc:
          "Run each A* search on the deterministic parallel engine with $(docv) domains \
           ($(b,1), the default, is the sequential engine; $(b,auto) takes whatever the \
           domain budget grants). Outcomes — solved, attempts, expansions, first solutions \
           — are byte-identical for every $(docv); only wall-clock time moves.")

let with_search_domains k m =
  match k with
  | "1" -> m
  | "auto" -> Stagg.Method_.with_search_domains m 0
  | _ -> (
      match int_of_string_opt k with
      | Some n when n >= 1 -> Stagg.Method_.with_search_domains m n
      | _ ->
          Printf.eprintf "unknown search-domains value %s (expected a positive integer or auto)\n" k;
          exit 2)

let lift_cmd =
  let run name meth no_analysis prune_mode batched_validate search_domains oracle =
    let b = find_bench_exn name in
    let r =
      Stagg.Pipeline.run
        (with_oracle oracle
           (with_search_domains search_domains
              (with_batched_validate batched_validate
                 (with_prune_mode prune_mode (with_analysis no_analysis (method_of_string meth))))))
        b
    in
    Format.printf "%a@." Stagg.Result_.pp r;
    (match r.solution with
    | Some sol ->
        Format.printf "  template: %s@." (Stagg_taco.Pretty.program_to_string sol.template);
        Format.printf "  substitution: %a@." Stagg_template.Subst.pp sol.subst
    | None -> ());
    exit (if r.solved then 0 else 1)
  in
  Cmd.v
    (Cmd.info "lift" ~doc:"Lift one benchmark to TACO and print the verified solution.")
    Term.(
      const run $ name_arg $ method_arg $ no_analysis_arg $ prune_mode_arg
      $ batched_validate_arg $ search_domains_arg $ oracle_arg)

(* ---- show ---- *)

let show_cmd =
  let run name meth =
    let b = find_bench_exn name in
    let m = method_of_string meth in
    Printf.printf "=== C source ===%s\n" b.c_source;
    (match Stagg.Pipeline.prepare m b with
    | Error e -> Printf.printf "pipeline failed during preparation: %s\n" e
    | Ok prep ->
        Printf.printf "=== LLM candidates (parsed) ===\n";
        List.iter
          (fun c -> Printf.printf "  %s\n" (Stagg_taco.Pretty.program_to_string c))
          prep.candidates;
        Printf.printf "=== templatized ===\n";
        List.iter
          (fun t -> Printf.printf "  %s\n" (Stagg_taco.Pretty.program_to_string t))
          prep.templates;
        Printf.printf "=== predicted dimension list: %s ===\n"
          (Stagg_template.Dimlist.to_string prep.dim_list);
        Format.printf "=== probabilistic grammar ===@.%a@." Stagg_grammar.Pcfg.pp prep.pcfg)
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Dump the pipeline's intermediate artifacts for one benchmark (Fig. 1 stages ①–②).")
    Term.(const run $ name_arg $ method_arg)

(* ---- analyze ---- *)

let analyze_cmd =
  let run name meth =
    let b = find_bench_exn name in
    let m = method_of_string meth in
    let facts = Stagg_minic.Facts.analyze (Bench.func b) in
    Format.printf "%a@." Stagg_minic.Facts.pp facts;
    (match facts.ft_verdict with
    | Error _ -> ()
    | Ok () -> (
        (* the analysis passed: show what it buys the search *)
        match Stagg.Pipeline.prepare m b with
        | Error e -> Printf.printf "grammar pruning: n/a (preparation failed: %s)\n" e
        | Ok prep ->
            let q = Stagg.Pipeline.query_of_bench m b in
            let consts = Stagg_minic.Ast.constants (Bench.func b) in
            (match Stagg.Pipeline.prune_of m q ~consts prep with
            | None -> Printf.printf "grammar pruning: off (analysis or fingerprint dedup disabled)\n"
            | Some pr ->
                Printf.printf "grammar pruning (%s): %d/%d rules doomed%s\n" m.label
                  (Stagg_grammar.Prune.n_doomed pr) (Stagg_grammar.Prune.n_rules pr)
                  (if Stagg_grammar.Prune.tracks_arity pr then ", arity tracking on" else "");
                List.iter
                  (fun (reason, n) -> Printf.printf "  %-28s %d\n" reason n)
                  (Stagg_grammar.Prune.doomed_counts pr))));
    exit (match facts.ft_verdict with Ok () -> 0 | Error _ -> 1)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static liftability analysis on one benchmark: access patterns, dependence \
          classes, operator facts, warnings, verdict, and the grammar rules it dooms.")
    Term.(const run $ name_arg $ method_arg)

(* ---- kernel ---- *)

let kernel_cmd =
  let run name =
    let b = find_bench_exn name in
    match Bench.truth b with
    | None -> Printf.printf "%s has no TACO-expressible lifting\n" b.name
    | Some p -> (
        Printf.printf "TACO: %s\n\n" (Stagg_taco.Pretty.program_to_string p);
        match Stagg_taco.Lower.lower p with
        | Error e -> Printf.printf "lowering failed: %s\n" e
        | Ok k -> print_string (Stagg_taco.Ir.kernel_to_c ~name:b.name k))
  in
  Cmd.v
    (Cmd.info "kernel"
       ~doc:"Compile a benchmark's ground-truth TACO program to a loop-nest kernel and print it.")
    Term.(const run $ name_arg)

(* ---- suite ---- *)

let jobs_arg =
  Arg.(
    value
    & opt int (Stagg_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run on a pool of $(docv) domains. Results are deterministic and identical for any \
           $(docv) (modulo per-query times); 1 runs sequentially on the calling domain.")

let suite_cmd =
  let run meth jobs no_analysis prune_mode batched_validate search_domains oracle =
    let batched =
      match batched_validate with
      | "on" -> true
      | "off" -> false
      | s ->
          Printf.eprintf "unknown batched-validate mode %s (expected off|on)\n" s;
          exit 2
    in
    let results =
      match meth with
      | "llm" ->
          Stagg_baselines.Llm_only.run_suite ~jobs ~batched_validate:batched ~seed:20250604
            Suite.all
      | "c2taco" ->
          Stagg_baselines.C2taco.run_suite ~jobs ~seed:20250604 ~heuristics:true Suite.all
      | "c2taco-noh" ->
          Stagg_baselines.C2taco.run_suite ~jobs ~seed:20250604 ~heuristics:false Suite.all
      | "tenspiler" ->
          Stagg_baselines.Tenspiler.run_suite ~jobs ~batched_validate:batched ~seed:20250604
            Suite.real_world
      | m ->
          Stagg.Pipeline.run_suite ~jobs
            (with_oracle oracle
               (with_search_domains search_domains
                  (with_batched_validate batched_validate
                     (with_prune_mode prune_mode (with_analysis no_analysis (method_of_string m))))))
            Suite.all
    in
    List.iter (fun r -> Format.printf "%a@." Stagg.Result_.pp r) results;
    let solved = List.filter (fun r -> r.Stagg.Result_.solved) results in
    Printf.printf "\nsolved %d/%d\n" (List.length solved) (List.length results)
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run one method over the whole suite and print per-query results.")
    Term.(
      const run $ method_arg $ jobs_arg $ no_analysis_arg $ prune_mode_arg
      $ batched_validate_arg $ search_domains_arg $ oracle_arg)

(* ---- lift-file: arbitrary C + signature spec + recorded LLM transcript ---- *)

let lift_file_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c") in
  let sig_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "sig" ] ~docv:"SPEC"
          ~doc:
            "Tensor signature of the function's parameters, e.g. \
             'N:size,M:size,A:arr[N,M],X:arr[M],R:out[N]'.")
  in
  let replay_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "r"; "llm-replay" ] ~docv:"TRANSCRIPT"
          ~doc:
            "File of recorded LLM response lines (one candidate per line; # comments ignored). \
             Record it by sending the paper's Prompt 1 to any model.")
  in
  let run path spec replay meth =
    let read_file p =
      let ic = open_in p in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let c_source = read_file path in
    match Stagg_minic.Parser.parse_function c_source with
    | Error e ->
        Printf.eprintf "C parse error: %s\n" e;
        exit 2
    | Ok func -> (
        match Stagg_minic.Sigspec.parse spec with
        | Error e ->
            Printf.eprintf "signature spec error: %s\n" e;
            exit 2
        | Ok signature ->
            let m = method_of_string meth in
            let q =
              {
                Stagg.Pipeline.qname = Filename.basename path;
                func;
                signature;
                c_source;
                client = Stagg_oracle.Replay.of_file replay;
                oracle = m.Stagg.Method_.oracle;
              }
            in
            let r = Stagg.Pipeline.lift m q in
            Format.printf "%a@." Stagg.Result_.pp r;
            (match r.solution with
            | Some sol ->
                Format.printf "  template: %s@."
                  (Stagg_taco.Pretty.program_to_string sol.template);
                Format.printf "  substitution: %a@." Stagg_template.Subst.pp sol.subst
            | None -> ());
            exit (if r.solved then 0 else 1))
  in
  Cmd.v
    (Cmd.info "lift-file"
       ~doc:
         "Lift an arbitrary C file using a recorded LLM transcript as the candidate oracle.")
    Term.(const run $ file_arg $ sig_arg $ replay_arg $ method_arg)

(* ---- export: lifted program to NumPy / PyTorch / TACO C++ ---- *)

let export_cmd =
  let backend_arg =
    Arg.(
      value
      & opt string "numpy"
      & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc:"Target: numpy, pytorch, or taco-cpp.")
  in
  let run name backend meth =
    let b = find_bench_exn name in
    let r = Stagg.Pipeline.run (method_of_string meth) b in
    match r.solution with
    | None ->
        Printf.eprintf "%s was not lifted (%s)\n" name (Option.value ~default:"?" r.failure);
        exit 1
    | Some sol -> (
        let export =
          match backend with
          | "numpy" -> Stagg_taco.Export.to_numpy ~name
          | "pytorch" -> Stagg_taco.Export.to_pytorch ~name
          | "taco-cpp" -> Stagg_taco.Export.to_taco_cpp ~name
          | b ->
              Printf.eprintf "unknown backend %s\n" b;
              exit 2
        in
        match export sol.concrete with
        | Ok code -> print_string code
        | Error e ->
            Printf.eprintf "export failed: %s\n" e;
            exit 1)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Lift a benchmark and render the result for a high-performance backend.")
    Term.(const run $ name_arg $ backend_arg $ method_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let core_flag =
    Arg.(value & flag & info [ "core" ] ~doc:"Only Table 1 and Figures 9–10 (skip ablations).")
  in
  let run core jobs =
    let progress msg = Printf.eprintf "[experiments] %s\n%!" msg in
    let runs =
      if core then Stagg_report.Experiments.run_core ~progress ~jobs ()
      else Stagg_report.Experiments.run_all ~progress ~jobs ()
    in
    print_string (Stagg_report.Experiments.table1 runs);
    print_newline ();
    print_string (Stagg_report.Experiments.fig9 runs);
    print_newline ();
    print_string (Stagg_report.Experiments.fig10 runs);
    if not core then begin
      print_newline ();
      print_string (Stagg_report.Experiments.table2 runs);
      print_newline ();
      print_string (Stagg_report.Experiments.table3 runs);
      print_newline ();
      print_string (Stagg_report.Experiments.fig11 runs);
      print_newline ();
      print_string (Stagg_report.Experiments.fig12 runs)
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures (§8).")
    Term.(const run $ core_flag $ jobs_arg)

(* ---- serve ---- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve a Unix-domain socket at $(docv) (line-delimited JSON requests and \
             responses; serial accept). Without this flag the server speaks stdin/stdout.")
  in
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve stdin → stdout (the default; explicit flag for scripts' clarity).")
  in
  let serve_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Process up to $(docv) requests concurrently. Identical concurrent requests \
             single-flight through the result cache; 1 (the default) is fully \
             deterministic: responses depend only on the request stream.")
  in
  let cache_max_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-max" ] ~docv:"M"
          ~doc:"Result-cache capacity (ready entries; least-recently-used eviction).")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip bounded verification of lifted (and remapped) results.")
  in
  let run socket stdio jobs cache_max no_verify =
    ignore stdio;
    let config = { Stagg_serve.Server.jobs; cache_max; verify = not no_verify } in
    let server = Stagg_serve.Server.create ~config () in
    match socket with
    | Some path -> Stagg_serve.Server.run_socket server ~path
    | None -> Stagg_serve.Server.run_stdio server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the lifting server: line-delimited JSON requests ($(b,{\"c\": ..., \"sig\": \
          ...})) in, lifted TACO programs out, with a canonical-fingerprint result cache \
          (single-flight, LRU) in front of the search.")
    Term.(const run $ socket_arg $ stdio_arg $ serve_jobs_arg $ cache_max_arg $ no_verify_arg)

(* ---- lint ---- *)

let lint_cmd =
  let roots_arg =
    Arg.(
      value & opt_all string []
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Directory tree to scan for .cmt files (repeatable). Defaults to \
             $(b,_build/default/lib) when it exists, else $(b,lib) — i.e. the compiled \
             libraries of this repository.")
  in
  let allow_arg =
    Arg.(
      value
      & opt string "lint.allow"
      & info [ "allow" ] ~docv:"FILE"
          ~doc:
            "Suppression file: each intentional finding carries a rule, a source location \
             and a one-line justification; $(b,protocol-module) lines declare the modules \
             allowed to use raw claim/done/taken atomics.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print only violations, not suppressions.")
  in
  let run roots allow_file quiet =
    let roots =
      match roots with
      | [] -> if Sys.file_exists "_build/default/lib" then [ "_build/default/lib" ] else [ "lib" ]
      | rs -> rs
    in
    let allow =
      if Sys.file_exists allow_file then
        match Stagg_lint.Report.load allow_file with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "lint: bad allow file %s: %s\n" allow_file e;
            exit 2
      else Stagg_lint.Report.empty
    in
    let cmt_files = List.concat_map Stagg_lint.Engine.scan_dir roots in
    if cmt_files = [] then begin
      Printf.eprintf
        "lint: no .cmt files under %s (build the tree first: dune build)\n"
        (String.concat ", " roots);
      exit 2
    end;
    let verdict, stats = Stagg_lint.Engine.analyze ~cmt_files ~allow in
    if not quiet then
      List.iter
        (fun ((f : Stagg_lint.Report.finding), (e : Stagg_lint.Report.entry)) ->
          Printf.printf "allowed: %s -- %s\n" (Stagg_lint.Report.finding_to_string f) e.e_just)
        verdict.suppressed;
    List.iter
      (fun (e : Stagg_lint.Report.entry) ->
        Printf.printf "warning: unused allow entry (line %d): %s %s:%s\n" e.e_line
          (Stagg_lint.Report.rule_id e.e_rule) e.e_file e.e_context)
      verdict.unused_entries;
    List.iter
      (fun f -> Printf.printf "VIOLATION: %s\n" (Stagg_lint.Report.finding_to_string f))
      verdict.violations;
    Printf.printf "lint: %d modules, %d findings (%d suppressed, %d violations)\n"
      stats.modules stats.findings
      (List.length verdict.suppressed)
      (List.length verdict.violations);
    if verdict.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Domain-safety static analysis over this repository's compiled libraries: \
          domain-crossing access to unguarded mutable state, raw atomic protocol ops \
          outside protocol modules, non-toplevel DLS keys, blocking calls under a mutex, \
          and nondeterminism sources.")
    Term.(const run $ roots_arg $ allow_arg $ quiet_arg)

let () =
  let info =
    Cmd.info "stagg" ~version:"1.0.0"
      ~doc:"Guided tensor lifting: synthesize TACO programs from legacy C (PLDI 2025 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; lift_cmd; lift_file_cmd; export_cmd; show_cmd; analyze_cmd; kernel_cmd;
         suite_cmd; serve_cmd; experiments_cmd; lint_cmd ]))
