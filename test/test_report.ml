(* Tests for stagg_report: table rendering, cactus series, and experiment
   slicing over synthetic results. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- Table ---- *)

let test_table_render () =
  let t =
    Stagg_report.Table.render ~headers:[ "name"; "n" ]
      ~aligns:[ Stagg_report.Table.Left; Stagg_report.Table.Right ]
      [ [ "alpha"; "1" ]; [ "b"; "100" ] ]
  in
  let lines = String.split_on_char '\n' t in
  check_int "header + rule + 2 rows + trailing" 5 (List.length lines);
  (* right-aligned numbers end at the same column *)
  let row1 = List.nth lines 2 and row2 = List.nth lines 3 in
  check_int "rows same width" (String.length row1) (String.length row2);
  check_bool "contains data" true (contains_sub "alpha" t && contains_sub "100" t)

let test_table_missing_cells () =
  let t = Stagg_report.Table.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  check_bool "missing cells tolerated" true (contains_sub "1" t)

(* ---- Cactus ---- *)

let fake name solved time =
  {
    Stagg.Result_.bench = name;
    method_label = "m";
    solved;
    solution = None;
    time_s = time;
    attempts = 1;
    expansions = 1;
    pruned = 0;
    suppressed = 0;
    pruned_rules = 0;
    n_candidates = 0;
    validate_s = 0.;
    verify_s = 0.;
    instantiations = 1;
    par = None;
    traced = false;
    trace_templates = 0;
    warnings = [];
    failure = None;
  }

let test_cactus_series () =
  let rs = [ fake "a" true 3.0; fake "b" false 9.0; fake "c" true 1.0 ] in
  let s = Stagg_report.Cactus.series_of_results ~label:"test" rs in
  check_int "only solved counted" 2 (List.length s.times);
  check_bool "sorted ascending" true (s.times = [ 1.0; 3.0 ]);
  let data = Stagg_report.Cactus.to_data [ s ] in
  check_bool "data block lists points" true
    (contains_sub "test\t1\t1.0" data && contains_sub "test\t2\t3.0" data)

let test_cactus_ascii () =
  let s1 = { Stagg_report.Cactus.label = "fast"; times = [ 0.01; 0.02; 0.05 ] } in
  let s2 = { Stagg_report.Cactus.label = "slow"; times = [ 1.0; 5.0 ] } in
  let art = Stagg_report.Cactus.to_ascii ~width:40 ~height:8 [ s1; s2 ] in
  check_bool "legend present" true (contains_sub "fast (3 solved)" art && contains_sub "slow (2 solved)" art);
  check_bool "marks present" true (contains_sub "A" art && contains_sub "B" art);
  check_bool "empty handled" true
    (contains_sub "no solved"
       (Stagg_report.Cactus.to_ascii [ { Stagg_report.Cactus.label = "none"; times = [] } ]))

(* ---- Experiments slicing (synthetic runs; no pipeline execution) ---- *)

let synthetic_runs () =
  let suite = Stagg_benchsuite.Suite.all in
  let rs solved_pred time =
    List.map (fun (b : Stagg_benchsuite.Bench.t) -> fake b.name (solved_pred b) time) suite
  in
  let rw = List.filter Stagg_benchsuite.Bench.is_real_world suite in
  let rw_results = List.map (fun (b : Stagg_benchsuite.Bench.t) -> fake b.name true 0.5) rw in
  {
    Stagg_report.Experiments.seed = 1;
    td = rs (fun _ -> true) 1.0;
    bu = rs (fun b -> b.name <> "dk_mse") 2.0;
    llm = rs (fun b -> b.llm_quality = Stagg_oracle.Llm_client.Exact) 0.1;
    c2taco = rs (fun b -> b.category <> Stagg_benchsuite.Bench.Llama) 5.0;
    c2taco_noh = rs (fun b -> b.category <> Stagg_benchsuite.Bench.Llama) 9.0;
    tenspiler = rw_results;
    td_drop_all = rs (fun _ -> true) 0.5;
    td_drops = [];
    bu_drop_all = rs (fun _ -> true) 0.5;
    bu_drops = [];
    td_equal = rs (fun _ -> true) 1.0;
    td_llm_grammar = rs (fun _ -> false) 1.0;
    td_full_grammar = rs (fun _ -> false) 1.0;
    bu_equal = rs (fun _ -> true) 1.0;
    bu_llm_grammar = rs (fun _ -> false) 1.0;
    bu_full_grammar = rs (fun _ -> false) 1.0;
    trace = [];
    trace_llm = [];
    sweeps =
      [
        {
          Stagg_report.Experiments.sw_label = "STAGG^TD";
          sw_wall_s = 1.0;
          sw_heap_words = 1_000_000;
          sw_instantiations = 10;
          sw_validate_s = 0.5;
          sw_par = None;
        };
      ];
  }

let test_table1_slicing () =
  let runs = synthetic_runs () in
  let t1 = Stagg_report.Experiments.table1 runs in
  (* TD solves everything: 67 real-world, 77 overall *)
  check_bool "TD full coverage" true (contains_sub "67" t1 && contains_sub "77" t1);
  check_bool "headers" true (contains_sub "C2TACO-set" t1 && contains_sub "Tenspiler-set" t1)

let test_fig10_shape () =
  let f = Stagg_report.Experiments.fig10 (synthetic_runs ()) in
  check_bool "bars rendered" true (contains_sub "STAGG^TD" f && contains_sub "%" f)

let test_summary_lines () =
  let s = Stagg_report.Experiments.summary (synthetic_runs ()) in
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s) in
  (* the synthetic runs carry no per-criterion ablations, so only the six
     core rows appear *)
  check_int "six core summary rows" 6 (List.length lines)

let () =
  Alcotest.run "stagg_report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "missing cells" `Quick test_table_missing_cells;
        ] );
      ( "cactus",
        [
          Alcotest.test_case "series" `Quick test_cactus_series;
          Alcotest.test_case "ascii" `Quick test_cactus_ascii;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 slicing" `Quick test_table1_slicing;
          Alcotest.test_case "fig10" `Quick test_fig10_shape;
          Alcotest.test_case "summary" `Quick test_summary_lines;
        ] );
    ]
