(* Tests for stagg_serve: the canonical kernel fingerprint, the
   single-flight result cache, and the serve request loop. *)

open Stagg_serve
module Sig = Stagg_minic.Signature
module Canon = Stagg_minic.Canon
module Sigspec = Stagg_minic.Sigspec
module Bench = Stagg_benchsuite.Bench
module Pool = Stagg_util.Pool
module J = Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let parse_c = Stagg_minic.Parser.parse_function_exn
let parse_sig s = Result.get_ok (Sigspec.parse s)

(* ---- the canonical fingerprint ---- *)

(* One fixed kernel shape — elementwise scale — rendered over arbitrary
   parameter names and an arbitrary scale constant. Alpha renaming and
   constant renaming must both be invisible to the fingerprint: that is
   the donor-remap contract. *)
let scale_kernel ~fn ~n ~a ~r ~c =
  ( Printf.sprintf
      "void %s(int %s, int *%s, int *%s) { int i; for (i = 0; i < %s; i++) %s[i] = %s[i] * %s; \
       }"
      fn n a r n r a c,
    Printf.sprintf "%s:size,%s:arr[%s],%s:out[%s]" n a n r n )

let fingerprint_of (src, sg) = Canon.fingerprint ~signature:(parse_sig sg) (parse_c src)
let canonical_of (src, sg) = Canon.canonical ~signature:(parse_sig sg) (parse_c src)
let base_scale = scale_kernel ~fn:"f" ~n:"n" ~a:"a" ~r:"r" ~c:"3"
let name_pool = [| "p"; "q"; "alpha"; "beta"; "gamma"; "delta"; "kappa"; "omega" |]

let qcheck_canon_alpha_invariant =
  QCheck.Test.make ~name:"canon: alpha-renamed kernels share the fingerprint" ~count:50
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (i, j, k, l) ->
      let pick x = name_pool.(x mod Array.length name_pool) in
      let n = pick i and a = pick j and r = pick k and fn = "fn" ^ string_of_int l in
      QCheck.assume (n <> a && n <> r && a <> r);
      fingerprint_of (scale_kernel ~fn ~n ~a ~r ~c:"3") = fingerprint_of base_scale)

let qcheck_canon_const_invariant =
  QCheck.Test.make ~name:"canon: constant-renamed kernels share the fingerprint" ~count:50
    QCheck.(int_range 1 1_000_000)
    (fun c ->
      fingerprint_of (scale_kernel ~fn:"f" ~n:"n" ~a:"a" ~r:"r" ~c:(string_of_int c))
      = fingerprint_of base_scale)

let test_canon_distinguishes_structure () =
  let variant op =
    ( Printf.sprintf
        "void f(int n, int *a, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] %s 3; }" op,
      "n:size,a:arr[n],r:out[n]" )
  in
  let fps = List.map (fun op -> (op, fingerprint_of (variant op))) [ "*"; "+"; "-"; "/" ] in
  List.iteri
    (fun x (opx, fx) ->
      List.iteri
        (fun y (opy, fy) ->
          if x < y then
            check_bool (Printf.sprintf "'%s' and '%s' kernels differ" opx opy) true (fx <> fy))
        fps)
    fps;
  (* zero is excluded from the constant pool (substitution can never
     rebind it), so a zero literal must NOT collapse into the generic
     constant bucket *)
  check_bool "scale by 0 is not a constant variant of scale by 3" true
    (fingerprint_of (scale_kernel ~fn:"f" ~n:"n" ~a:"a" ~r:"r" ~c:"0")
    <> fingerprint_of base_scale)

let test_canon_canonical_form () =
  let alpha = scale_kernel ~fn:"g" ~n:"m" ~a:"x" ~r:"y" ~c:"9" in
  check_string "alpha + const variant canonicalizes identically" (canonical_of base_scale)
    (canonical_of alpha);
  let canon = canonical_of base_scale in
  check_bool "data constants are abstracted" true
    (String.split_on_char '#' canon |> List.length > 1);
  (* the scale constant is gone; the loop structure (a control position)
     is still concrete *)
  check_bool "no concrete data constant survives" true
    (not (String.contains canon '3'))

(* Every pair of suite benchmarks that collides in the 63-bit fingerprint
   must collide in the full canonical string too — a fingerprint match
   may only ever mean "same kernel up to naming and constants", because
   the server uses it to pick donor solutions for remapping. The suite
   contains genuine alpha/constant variants, so the donor path is
   exercised by construction. *)
let test_suite_fingerprint_audit () =
  let tbl = Hashtbl.create 97 in
  let dups = ref 0 in
  List.iter
    (fun (b : Bench.t) ->
      let fp = Canon.fingerprint ~signature:b.signature (Bench.func b) in
      let canon = Canon.canonical ~signature:b.signature (Bench.func b) in
      match Hashtbl.find_opt tbl fp with
      | Some (name, canon') ->
          incr dups;
          check_string
            (Printf.sprintf "%s and %s share a fingerprint, so they must share a canonical form"
               name b.name)
            canon' canon
      | None -> Hashtbl.add tbl fp (b.name, canon))
    Stagg_benchsuite.Suite.all;
  check_bool "the suite contains fingerprint-sharing variants (remap path is live)" true
    (!dups >= 1);
  check_bool "most kernels are canonically distinct" true (Hashtbl.length tbl >= 60)

(* ---- the single-flight cache ---- *)

let outcome_for k =
  {
    Cache.solved = false;
    lifted = None;
    attempts = k;
    expansions = 2 * k;
    instantiations = 0;
    failure = Some (string_of_int k);
  }

(* 4 domains race the same key workload (each in a rotated order) from
   behind a start barrier. Single-flight means: per distinct key exactly
   one acquirer becomes the searching owner; everyone else must receive
   that owner's exact outcome (as a hit or a join), and nobody is left
   blocked — termination of all domains IS the no-lost-wakeup check. *)
let qcheck_cache_single_flight =
  let domains = 4 in
  QCheck.Test.make ~name:"cache: one search per distinct key under contention" ~count:20
    (QCheck.int_range 1 8)
    (fun keys ->
      let c = Cache.create ~max:64 in
      let owners = Array.init keys (fun _ -> Atomic.make 0) in
      let bad = Atomic.make 0 in
      let started = Atomic.make 0 in
      let body d () =
        Atomic.incr started;
        while Atomic.get started < domains do
          Domain.cpu_relax ()
        done;
        for i = 0 to keys - 1 do
          let k = (i + d) mod keys in
          let key = Printf.sprintf "k%d" k in
          match Cache.acquire c ~key ~fp:k with
          | Cache.Owner None ->
              Atomic.incr owners.(k);
              (* hold the entry in flight so waiters pile up *)
              Unix.sleepf 0.001;
              Cache.fulfill c ~key ~fp:k (outcome_for k)
          | Cache.Owner (Some _) ->
              (* nothing here is solved, so no donor may be offered *)
              Atomic.incr bad
          | Cache.Hit o | Cache.Joined o -> if o.Cache.attempts <> k then Atomic.incr bad
        done
      in
      let ds = List.init (domains - 1) (fun d -> Domain.spawn (body (d + 1))) in
      body 0 ();
      List.iter Domain.join ds;
      let st = Cache.stats c in
      Atomic.get bad = 0
      && Array.for_all (fun o -> Atomic.get o = 1) owners
      && st.Cache.misses = keys
      && st.Cache.hits + st.Cache.joins = (domains * keys) - keys
      && st.Cache.inflight = 0 && st.Cache.entries = keys)

(* Kill-mid-request: the first owner dies (aborts) instead of
   fulfilling. Exactly one successor must inherit ownership and run the
   search; every other contender — including the killed requester
   retrying — still ends with the fulfilled outcome. *)
let test_cache_abort_inheritance () =
  let domains = 4 in
  let c = Cache.create ~max:8 in
  let key = "k" in
  let aborted = Atomic.make false in
  let owners = Atomic.make 0 and searched = Atomic.make 0 and bad = Atomic.make 0 in
  let started = Atomic.make 0 in
  let body () =
    Atomic.incr started;
    while Atomic.get started < domains do
      Domain.cpu_relax ()
    done;
    let rec go () =
      match Cache.acquire c ~key ~fp:1 with
      | Cache.Owner _ ->
          Atomic.incr owners;
          if Atomic.compare_and_set aborted false true then begin
            Unix.sleepf 0.001;
            Cache.abort c ~key;
            (* the killed requester retries like a fresh client *)
            go ()
          end
          else begin
            Atomic.incr searched;
            Unix.sleepf 0.001;
            Cache.fulfill c ~key ~fp:1 (outcome_for 7)
          end
      | Cache.Hit o | Cache.Joined o -> if o.Cache.attempts <> 7 then Atomic.incr bad
    in
    go ()
  in
  let ds = List.init (domains - 1) (fun _ -> Domain.spawn body) in
  body ();
  List.iter Domain.join ds;
  check_int "every non-owner saw the searched outcome" 0 (Atomic.get bad);
  check_int "the abort handed ownership to exactly one successor" 2 (Atomic.get owners);
  check_int "exactly one search completed" 1 (Atomic.get searched);
  check_int "nothing left in flight" 0 (Cache.stats c).Cache.inflight

let test_cache_lru_eviction () =
  let c = Cache.create ~max:2 in
  let put k =
    (match Cache.acquire c ~key:k ~fp:(Hashtbl.hash k) with
    | Cache.Owner None -> ()
    | _ -> Alcotest.fail "expected fresh ownership");
    Cache.fulfill c ~key:k ~fp:(Hashtbl.hash k) (outcome_for 1)
  in
  put "a";
  put "b";
  (* touch "a": it becomes most-recent, so admitting "c" must evict "b" *)
  (match Cache.acquire c ~key:"a" ~fp:(Hashtbl.hash "a") with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "expected a hit on a resident key");
  put "c";
  let st = Cache.stats c in
  check_int "one eviction at the cap" 1 st.Cache.evictions;
  check_int "two entries resident" 2 st.Cache.entries;
  match Cache.acquire c ~key:"b" ~fp:(Hashtbl.hash "b") with
  | Cache.Owner _ -> Cache.abort c ~key:"b"
  | _ -> Alcotest.fail "LRU key should have been evicted"

(* ---- the serve loop ---- *)

let mul3_src =
  "void f(int n, int *a, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] * 3; }"

let mul3_sig = "n:size,a:arr[n],r:out[n]"

let lift_req ?id src sg =
  let fields =
    (match id with Some i -> [ ("id", J.String i) ] | None -> [])
    @ [ ("c", J.String src); ("sig", J.String sg) ]
  in
  J.to_string (J.Obj fields)

let parse_resp line = Result.get_ok (J.of_string line)
let field name j = Option.bind (J.member name j) J.to_str
let telem name j = Option.bind (J.member "telemetry" j) (fun t -> Option.bind (J.member name t) J.to_int)
let get o = Option.get o

(* The first satellite bug this PR fixes: process-wide validator
   counters used to bleed across requests. Two sequential requests on
   one server must meter their own memo traffic — and the repeat must be
   answered from the cache without validating anything at all. *)
let test_server_telemetry_independent () =
  let s = Server.create () in
  match List.map parse_resp (Server.run_lines s [ lift_req mul3_src mul3_sig; lift_req mul3_src mul3_sig ]) with
  | [ r1; r2 ] ->
      check_string "first request searches" "miss" (get (field "cache" r1));
      check_bool "search validated against the memo" true (get (telem "memo_misses" r1) > 0);
      check_string "repeat is a cache hit" "hit" (get (field "cache" r2));
      check_int "hit does no validation: zero memo misses" 0 (get (telem "memo_misses" r2));
      check_int "hit does no validation: zero memo hits" 0 (get (telem "memo_hits" r2));
      check_string "hit answer is byte-identical to the searched one"
        (get (field "taco" r1)) (get (field "taco" r2))
  | _ -> Alcotest.fail "expected two responses"

(* Epoch scoping: a second server must never see the first server's
   memo verdicts (its memo keys live in a different epoch), even though
   both run in one process. Before the epoch scope, server B's search
   here reported memo hits it never earned. *)
let test_server_epoch_isolation () =
  let a = Server.create () in
  let b = Server.create () in
  check_bool "each server gets its own epoch" true (Server.epoch a <> Server.epoch b);
  let ra = parse_resp (List.hd (Server.run_lines a [ lift_req mul3_src mul3_sig ])) in
  let rb = parse_resp (List.hd (Server.run_lines b [ lift_req mul3_src mul3_sig ])) in
  check_string "server A searches" "miss" (get (field "cache" ra));
  check_string "server B searches its own cache" "miss" (get (field "cache" rb));
  check_int "server B's memo starts cold: no cross-epoch hits" 0 (get (telem "memo_hits" rb));
  check_bool "server B validates for itself" true (get (telem "memo_misses" rb) > 0);
  check_string "same answer either way" (get (field "taco" ra)) (get (field "taco" rb))

(* jobs = 4 races the mix through the single-flight cache; which request
   becomes the searching owner is scheduling-dependent, but every
   per-request answer (status and rendered program) must match the
   sequential run byte for byte. *)
let test_server_jobs_agree () =
  let alpha_src =
    "void g(int m, int *x, int *y) { int j; for (j = 0; j < m; j++) y[j] = x[j] * 3; }"
  in
  let add_src =
    "void h(int n, int *a, int *b, int *r) { int i; for (i = 0; i < n; i++) r[i] = a[i] + b[i]; }"
  in
  let mix =
    [
      lift_req ~id:"m1" mul3_src mul3_sig;
      lift_req ~id:"m1" mul3_src mul3_sig;
      lift_req ~id:"al" alpha_src "m:size,x:arr[m],y:out[m]";
      lift_req ~id:"ad" add_src "n:size,a:arr[n],b:arr[n],r:out[n]";
      J.to_string (J.Obj [ ("id", J.String "bad"); ("c", J.String "void f(int n { }"); ("sig", J.String "n:size") ]);
    ]
  in
  let run jobs =
    let s = Server.create ~config:{ Server.jobs; cache_max = 32; verify = true } () in
    List.map
      (fun line ->
        let j = parse_resp line in
        Printf.sprintf "%s %s %s"
          (Option.value ~default:"-" (field "id" j))
          (Option.value ~default:"-" (field "status" j))
          (Option.value ~default:"-" (field "taco" j)))
      (Server.run_lines s mix)
  in
  Alcotest.(check (list string)) "4-way run answers like the sequential one" (run 1) (run 4)

(* Kill-mid-request at the server level: error requests, unsolvable
   requests and successful ones must all release their pool claim — a
   long-lived server drifts to a starved budget otherwise. *)
let test_server_budget_balanced () =
  let before = Pool.budget () in
  let s = Server.create () in
  ignore
    (Server.run_lines s
       [
         lift_req mul3_src mul3_sig;
         lift_req "void f(int n { }" "n:size" (* C parse error *);
         lift_req mul3_src "oops" (* signature parse error *);
         J.to_string (J.Obj [ ("op", J.String "stats") ]);
       ]);
  check_int "every request path released its pool claim" before (Pool.budget ())

let () =
  Alcotest.run "stagg_serve"
    [
      ( "canon",
        [
          QCheck_alcotest.to_alcotest qcheck_canon_alpha_invariant;
          QCheck_alcotest.to_alcotest qcheck_canon_const_invariant;
          Alcotest.test_case "structure distinguishes" `Quick test_canon_distinguishes_structure;
          Alcotest.test_case "canonical form" `Quick test_canon_canonical_form;
          Alcotest.test_case "77-suite fingerprint audit" `Quick test_suite_fingerprint_audit;
        ] );
      ( "cache",
        [
          QCheck_alcotest.to_alcotest qcheck_cache_single_flight;
          Alcotest.test_case "abort hands off ownership" `Quick test_cache_abort_inheritance;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        ] );
      ( "server",
        [
          Alcotest.test_case "telemetry independent per request" `Quick
            test_server_telemetry_independent;
          Alcotest.test_case "epoch isolation" `Quick test_server_epoch_isolation;
          Alcotest.test_case "jobs=4 answers match jobs=1" `Quick test_server_jobs_agree;
          Alcotest.test_case "pool budget balanced" `Quick test_server_budget_balanced;
        ] );
    ]
