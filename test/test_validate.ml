(* Tests for stagg_validate: I/O example generation and the template
   validator. *)

open Stagg_util
open Stagg_validate
module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse_c = Stagg_minic.Parser.parse_function_exn
let parse_t = Stagg_taco.Parser.parse_program_exn

let gemv_src =
  {|
void gemv(int N, int M, int* A, int* X, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    R[i] = 0;
    for (j = 0; j < M; j++) {
      R[i] += A[i * M + j] * X[j];
    }
  }
}
|}

let gemv_sig =
  {
    Sig.args =
      [
        ("N", Sig.Size "N"); ("M", Sig.Size "M"); ("A", Sig.Arr [ "N"; "M" ]);
        ("X", Sig.Arr [ "M" ]); ("R", Sig.Arr [ "N" ]);
      ];
    out = "R";
  }

let gen_examples ?(seed = 11) () =
  Result.get_ok
    (Examples.generate ~func:(parse_c gemv_src) ~signature:gemv_sig
       ~prng:(Prng.create ~seed) ())

let test_examples_shape () =
  let exs = gen_examples () in
  check_int "four examples" 4 (List.length exs);
  List.iter
    (fun (ex : Examples.example) ->
      let n = List.assoc "N" ex.sizes and m = List.assoc "M" ex.sizes in
      check_bool "distinct sizes per dimension" true (n <> m);
      check_int "A has N*M cells" (n * m) (Array.length (List.assoc "A" ex.inputs));
      check_int "output has N cells" n (Array.length ex.output);
      (* inputs are nonzero, so divisions in candidates never trip *)
      check_bool "nonzero inputs" true
        (Array.for_all (fun v -> not (Rat.is_zero v)) (List.assoc "X" ex.inputs)))
    exs

let test_examples_deterministic () =
  let flat exs =
    List.concat_map (fun (e : Examples.example) -> Array.to_list e.output) exs
    |> List.map Rat.to_string
  in
  Alcotest.(check (list string)) "same prng, same examples" (flat (gen_examples ()))
    (flat (gen_examples ()))

let test_examples_failing_program () =
  (* a program that always divides by zero cannot produce examples *)
  let src = "void f(int N, int* A, int* R) { R[0] = A[0] / 0; }" in
  let sg = { Sig.args = [ ("N", Sig.Size "N"); ("A", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]) ]; out = "R" } in
  check_bool "error reported" true
    (Result.is_error (Examples.generate ~func:(parse_c src) ~signature:sg ~prng:(Prng.create ~seed:1) ()))

(* ---- validator ---- *)

let validate ?verify template =
  let exs = gen_examples () in
  Validator.validate ~signature:gemv_sig ~examples:exs ~consts:[] ?verify (parse_t template)

let test_validator_accepts_correct () =
  match validate "a(i) = b(i,j) * c(j)" with
  | Some sol ->
      check_string "binds A" "A" (List.assoc "b" sol.subst.tensor_binding);
      check_string "binds X" "X" (List.assoc "c" sol.subst.tensor_binding);
      check_string "concrete program" "R(i) = A(i, j) * X(j)"
        (Stagg_taco.Pretty.program_to_string sol.concrete)
  | None -> Alcotest.fail "correct template rejected"

let test_validator_rejects_wrong_structure () =
  check_bool "sum instead of product" true (validate "a(i) = b(i,j) + c(j)" = None);
  check_bool "transposed" true (validate "a(i) = b(j,i) * c(j)" = None);
  check_bool "wrong arity LHS" true (validate "a(i,j) = b(i,j)" = None)

let test_validator_counts_instantiations () =
  ignore (validate "a(i) = b(i,j) * c(j)");
  check_bool "tried at least one instantiation" true (Validator.last_instantiations () >= 1)

let test_validator_verify_hook () =
  (* a verify hook that rejects everything forces exhaustion *)
  check_bool "verifier veto respected" true
    (validate ~verify:(fun _ -> false) "a(i) = b(i,j) * c(j)" = None);
  (* and one that accepts returns the validated substitution *)
  check_bool "verifier pass respected" true
    (validate ~verify:(fun _ -> true) "a(i) = b(i,j) * c(j)" <> None)

let test_validator_constants () =
  let src = "void f(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] * 7; }" in
  let sg = { Sig.args = [ ("N", Sig.Size "N"); ("A", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]) ]; out = "R" } in
  let func = parse_c src in
  let exs =
    Result.get_ok (Examples.generate ~func ~signature:sg ~prng:(Prng.create ~seed:3) ())
  in
  let template =
    Option.get (Stagg_template.Templatize.templatize (parse_t "r(i) = x(i) * 7"))
  in
  (* the right constant must come from the source pool *)
  (match Validator.validate ~signature:sg ~examples:exs ~consts:[ Rat.of_int 7 ] template with
  | Some sol ->
      check_string "const instantiated" "R(i) = A(i) * 7"
        (Stagg_taco.Pretty.program_to_string sol.concrete)
  | None -> Alcotest.fail "constant template rejected");
  check_bool "wrong pool rejected" true
    (Validator.validate ~signature:sg ~examples:exs ~consts:[ Rat.of_int 3 ] template = None)

(* ---- the batched / per-candidate differential ----

   [~batched:true] (compile_template + rebind) and [~batched:false]
   (instantiate + compile per candidate) must be observably identical:
   same solution, same instantiation count, and — when the memo is on —
   byte-identical memo keys, which the per-candidate replay proves by
   hitting every entry the batched run wrote. *)
let test_batched_differential () =
  Validator.clear_memo ();
  Validator.reset_stats ();
  let exs = gen_examples () in
  let checker = Validator.prepare ~signature:gemv_sig ~examples:exs in
  let consts = [ Rat.of_int 7 ] in
  let sol_str = function
    | Some (s : Validator.solution) -> Stagg_taco.Pretty.program_to_string s.concrete
    | None -> "<none>"
  in
  let run ?memo_key ~batched src =
    Validator.validate_counted ~signature:gemv_sig ~checker ~consts ?memo_key ~batched
      (parse_t src)
  in
  let templates =
    [
      "a(i) = b(i,j) * c(j)" (* the gemv solution *);
      "a(i) = b(i,j) + c(j)";
      "a(i) = b(j,i) * c(j)";
      "a(i) = b(i) * Const" (* exercises the Const cell *);
      "a = b(i) * c(i)" (* LHS rank mismatch: zero substitutions *);
    ]
  in
  (* memo off (no key): identical solutions and instantiation counts *)
  List.iter
    (fun src ->
      let s_on, n_on = run ~batched:true src in
      let s_off, n_off = run ~batched:false src in
      check_string (src ^ ": same solution") (sol_str s_off) (sol_str s_on);
      check_int (src ^ ": same count") n_off n_on)
    templates;
  let st0 = Validator.stats () in
  check_bool "batched runs compiled templates" true (st0.template_compiles >= 1);
  (* memo on: populate with the batched run, then replay per-candidate *)
  List.iter (fun src -> ignore (run ~memo_key:"batched-diff" ~batched:true src)) templates;
  let st1 = Validator.stats () in
  List.iter
    (fun src ->
      let s_on, _ = run ~memo_key:"batched-diff" ~batched:true src in
      let s_off, _ = run ~memo_key:"batched-diff" ~batched:false src in
      check_string (src ^ ": memoized parity") (sol_str s_on) (sol_str s_off))
    templates;
  let st2 = Validator.stats () in
  check_int "per-candidate replay misses nothing" st1.memo_misses st2.memo_misses;
  check_bool "per-candidate replay hits the batched keys" true (st2.memo_hits > st1.memo_hits);
  (* the [validate] wrapper threads the flag too *)
  check_bool "validate wrapper honors batched:false" true
    (Validator.validate ~signature:gemv_sig ~examples:exs ~consts ~batched:false
       (parse_t "a(i) = b(i,j) * c(j)")
    <> None);
  Validator.clear_memo ()

(* ---- the compiled-template cache's LRU regression ----

   The per-domain cache is capped at 8192 compiled templates. The old
   policy rejected new entries once full: a long-lived serve process
   would freeze the cache on whichever 8192 templates a domain compiled
   first and recompile everything else forever. With LRU the cap evicts
   the least-recently-hit entry instead, so the templates a recent
   request touched always stay hot. *)
let test_template_cache_lru_eviction () =
  let sg =
    { Sig.args = [ ("N", Sig.Size "N"); ("A", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]) ]; out = "R" }
  in
  let src = "void f(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] * 7; }" in
  let exs =
    Result.get_ok
      (Examples.generate ~func:(parse_c src) ~signature:sg ~prng:(Prng.create ~seed:5) ())
  in
  let checker = Validator.prepare ~signature:sg ~examples:exs in
  let validate k =
    ignore
      (Validator.validate_counted ~signature:sg ~checker ~consts:[] ~batched:true
         (parse_t (Printf.sprintf "a(i) = b(i) * %d" k)))
  in
  let n = 8192 + 256 in
  Validator.reset_stats ();
  for k = 1 to n do
    validate k
  done;
  let st1 = Validator.stats () in
  check_int "every distinct template compiled once" n st1.Validator.template_compiles;
  check_bool "the cap evicted, not rejected" true (st1.Validator.template_cache_evictions >= 256);
  (* the most recent working set is still resident *)
  Validator.reset_stats ();
  for k = n - 99 to n do
    validate k
  done;
  let st2 = Validator.stats () in
  check_int "recent templates all hit" 100 st2.Validator.template_cache_hits;
  check_int "recent templates never recompiled" 0 st2.Validator.template_compiles;
  (* while the oldest really was displaced *)
  Validator.reset_stats ();
  validate 1;
  let st3 = Validator.stats () in
  check_int "the oldest template was evicted and recompiles" 1 st3.Validator.template_compiles

let test_check_concrete () =
  let exs = gen_examples () in
  check_bool "correct concrete accepted" true
    (Validator.check_concrete ~signature:gemv_sig ~examples:exs (parse_t "R(i) = A(i,j) * X(j)"));
  check_bool "wrong concrete rejected" false
    (Validator.check_concrete ~signature:gemv_sig ~examples:exs (parse_t "R(i) = A(i,j) + X(j)"))

let () =
  Alcotest.run "stagg_validate"
    [
      ( "examples",
        [
          Alcotest.test_case "shapes and values" `Quick test_examples_shape;
          Alcotest.test_case "deterministic" `Quick test_examples_deterministic;
          Alcotest.test_case "failing program" `Quick test_examples_failing_program;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts correct template" `Quick test_validator_accepts_correct;
          Alcotest.test_case "rejects wrong structures" `Quick test_validator_rejects_wrong_structure;
          Alcotest.test_case "instantiation count" `Quick test_validator_counts_instantiations;
          Alcotest.test_case "verify hook" `Quick test_validator_verify_hook;
          Alcotest.test_case "constant pool" `Quick test_validator_constants;
          Alcotest.test_case "batched differential" `Quick test_batched_differential;
          Alcotest.test_case "template cache LRU eviction" `Quick
            test_template_cache_lru_eviction;
          Alcotest.test_case "check_concrete" `Quick test_check_concrete;
        ] );
    ]
