(* Tests for stagg_verify: symbolic polynomials, rational functions, and
   the bounded equivalence checker. *)

open Stagg_util
open Stagg_verify
module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Poly ---- *)

let x = Poly.var "x"
let y = Poly.var "y"

let test_poly_basic () =
  let p = Poly.add (Poly.mul x y) (Poly.const (Rat.of_int 2)) in
  check_string "print" "2 + x*y" (Poly.to_string p);
  check_bool "x*y = y*x" true (Poly.equal (Poly.mul x y) (Poly.mul y x));
  check_bool "p - p = 0" true (Poly.is_zero (Poly.sub p p));
  check_bool "is_const" true (Poly.is_const (Poly.sub p (Poly.mul x y)) = Some (Rat.of_int 2));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Poly.vars p)

let test_poly_eval () =
  (* (x + y)^2 = x^2 + 2xy + y^2 at x=3, y=4 *)
  let s = Poly.add x y in
  let sq = Poly.mul s s in
  let v = Poly.eval sq (function "x" -> Rat.of_int 3 | _ -> Rat.of_int 4) in
  check_string "49" "49" (Rat.to_string v)

let arb_poly =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      oneof [ map (fun k -> Poly.of_int k) (int_range (-4) 4); oneofl [ x; y; Poly.var "z" ] ]
    else
      oneof
        [ map2 Poly.add (gen (n - 1)) (gen (n - 1)); map2 Poly.mul (gen (n - 1)) (gen (n - 1)) ]
  in
  QCheck.make (gen 3) ~print:Poly.to_string

let qcheck_poly_semantics =
  (* canonical-form equality is semantic equality: evaluation respects all
     ring operations *)
  QCheck.Test.make ~name:"polynomial arithmetic commutes with evaluation" ~count:200
    (QCheck.pair arb_poly arb_poly) (fun (p, q) ->
      let env = function "x" -> Rat.of_int 2 | "y" -> Rat.of_int (-3) | _ -> Rat.of_ints 1 2 in
      Rat.equal (Poly.eval (Poly.add p q) env) (Rat.add (Poly.eval p env) (Poly.eval q env))
      && Rat.equal (Poly.eval (Poly.mul p q) env) (Rat.mul (Poly.eval p env) (Poly.eval q env)))

(* ---- Poly/Ratfunc parity against a naive reference ---- *)

(* The pre-rewrite polynomial representation, kept verbatim as an
   executable specification: an association list re-normalized (hash
   table + sort) after every ring operation. The production [Poly] must
   produce the same canonical form — same printing, same term count —
   and the same values at any rational point. *)
module Ref_poly = struct
  type t = (string list * Rat.t) list

  let normalize terms : t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (m, c) ->
        let m = List.sort String.compare m in
        let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt tbl m) in
        Hashtbl.replace tbl m (Rat.add prev c))
      terms;
    Hashtbl.fold (fun m c acc -> if Rat.is_zero c then acc else (m, c) :: acc) tbl []
    |> List.sort (fun (m1, _) (m2, _) -> compare m1 m2)

  let const c = normalize [ ([], c) ]
  let var v = [ ([ v ], Rat.one) ]
  let add a b = normalize (a @ b)
  let neg a = List.map (fun (m, c) -> (m, Rat.neg c)) a
  let sub a b = add a (neg b)

  let mul a b =
    normalize
      (List.concat_map (fun (ma, ca) -> List.map (fun (mb, cb) -> (ma @ mb, Rat.mul ca cb)) b) a)

  let is_zero p = p = []

  let to_string p =
    if p = [] then "0"
    else
      String.concat " + "
        (List.map
           (fun (m, c) ->
             match m with
             | [] -> Rat.to_string c
             | _ when Rat.equal c Rat.one -> String.concat "*" m
             | _ -> Rat.to_string c ^ "*" ^ String.concat "*" m)
           p)

  let eval p env =
    List.fold_left
      (fun acc (m, c) -> Rat.add acc (List.fold_left (fun v x -> Rat.mul v (env x)) c m))
      Rat.zero p
end

type exp =
  | C of Rat.t
  | V of string
  | Eadd of exp * exp
  | Esub of exp * exp
  | Emul of exp * exp
  | Eneg of exp
  | Ediv of exp * exp

let rec exp_to_string = function
  | C c -> Rat.to_string c
  | V v -> v
  | Eadd (a, b) -> Printf.sprintf "(%s + %s)" (exp_to_string a) (exp_to_string b)
  | Esub (a, b) -> Printf.sprintf "(%s - %s)" (exp_to_string a) (exp_to_string b)
  | Emul (a, b) -> Printf.sprintf "(%s * %s)" (exp_to_string a) (exp_to_string b)
  | Eneg a -> Printf.sprintf "(-%s)" (exp_to_string a)
  | Ediv (a, b) -> Printf.sprintf "(%s / %s)" (exp_to_string a) (exp_to_string b)

(* constants include zero, negatives, and denominators past the 2^30
   machine-int limb bound, so the Rat bigint slow path is exercised too *)
let big_den = (1 lsl 31) + 1

let gen_rat =
  let open QCheck.Gen in
  oneof
    [
      map Rat.of_int (int_range (-5) 5);
      map2 (fun n d -> Rat.of_ints n d) (int_range (-9) 9) (oneofl [ 1; 2; 3; 7; big_den ]);
      return Rat.zero;
    ]

let gen_exp ~div depth =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then oneof [ map (fun c -> C c) gen_rat; map (fun v -> V v) (oneofl [ "x"; "y"; "z" ]) ]
    else
      oneof
        (List.filter_map Fun.id
           [
             Some (map2 (fun a b -> Eadd (a, b)) (gen (n - 1)) (gen (n - 1)));
             Some (map2 (fun a b -> Esub (a, b)) (gen (n - 1)) (gen (n - 1)));
             Some (map2 (fun a b -> Emul (a, b)) (gen (n - 1)) (gen (n - 1)));
             Some (map (fun a -> Eneg a) (gen (n - 1)));
             (if div then Some (map2 (fun a b -> Ediv (a, b)) (gen (n - 1)) (gen (n - 1)))
              else None);
           ])
  in
  gen depth

let rec poly_of_exp = function
  | C c -> Poly.const c
  | V v -> Poly.var v
  | Eadd (a, b) -> Poly.add (poly_of_exp a) (poly_of_exp b)
  | Esub (a, b) -> Poly.sub (poly_of_exp a) (poly_of_exp b)
  | Emul (a, b) -> Poly.mul (poly_of_exp a) (poly_of_exp b)
  | Eneg a -> Poly.neg (poly_of_exp a)
  | Ediv _ -> invalid_arg "poly_of_exp: division"

let rec ref_of_exp = function
  | C c -> Ref_poly.const c
  | V v -> Ref_poly.var v
  | Eadd (a, b) -> Ref_poly.add (ref_of_exp a) (ref_of_exp b)
  | Esub (a, b) -> Ref_poly.sub (ref_of_exp a) (ref_of_exp b)
  | Emul (a, b) -> Ref_poly.mul (ref_of_exp a) (ref_of_exp b)
  | Eneg a -> Ref_poly.neg (ref_of_exp a)
  | Ediv _ -> invalid_arg "ref_of_exp: division"

(* three adversarial points: all-zero, negatives, and bigint denominators *)
let envs =
  [
    (fun _ -> Rat.zero);
    (function "x" -> Rat.of_int (-2) | "y" -> Rat.of_int (-1) | _ -> Rat.of_ints (-1) 3);
    (function
    | "x" -> Rat.of_ints 1 big_den
    | "y" -> Rat.of_ints (-7) big_den
    | _ -> Rat.of_int 4);
  ]

let arb_exp ~div = QCheck.make (gen_exp ~div 4) ~print:exp_to_string

let qcheck_poly_parity =
  QCheck.Test.make ~name:"Poly matches the naive normalize-per-op reference" ~count:500
    (arb_exp ~div:false) (fun e ->
      let p = poly_of_exp e and r = ref_of_exp e in
      String.equal (Poly.to_string p) (Ref_poly.to_string r)
      && Poly.n_terms p = List.length r
      && Poly.is_zero p = Ref_poly.is_zero r
      && List.for_all (fun env -> Rat.equal (Poly.eval p env) (Ref_poly.eval r env)) envs)

(* reference rational functions: textbook cross-multiplication over
   reference polynomials, never normalized *)
let rec ref_rf_of_exp = function
  | C c -> (Ref_poly.const c, Ref_poly.const Rat.one)
  | V v -> (Ref_poly.var v, Ref_poly.const Rat.one)
  | Eadd (a, b) ->
      let n1, d1 = ref_rf_of_exp a and n2, d2 = ref_rf_of_exp b in
      (Ref_poly.add (Ref_poly.mul n1 d2) (Ref_poly.mul n2 d1), Ref_poly.mul d1 d2)
  | Esub (a, b) -> ref_rf_of_exp (Eadd (a, Eneg b))
  | Emul (a, b) ->
      let n1, d1 = ref_rf_of_exp a and n2, d2 = ref_rf_of_exp b in
      (Ref_poly.mul n1 n2, Ref_poly.mul d1 d2)
  | Eneg a ->
      let n, d = ref_rf_of_exp a in
      (Ref_poly.neg n, d)
  | Ediv (a, b) ->
      let n1, d1 = ref_rf_of_exp a and n2, d2 = ref_rf_of_exp b in
      if Ref_poly.is_zero (Ref_poly.mul d1 n2) then raise Division_by_zero
      else (Ref_poly.mul n1 d2, Ref_poly.mul d1 n2)

let rec rf_of_exp = function
  | C c -> Ratfunc.of_rat c
  | V v -> Ratfunc.var v
  | Eadd (a, b) -> Ratfunc.add (rf_of_exp a) (rf_of_exp b)
  | Esub (a, b) -> Ratfunc.sub (rf_of_exp a) (rf_of_exp b)
  | Emul (a, b) -> Ratfunc.mul (rf_of_exp a) (rf_of_exp b)
  | Eneg a -> Ratfunc.neg (rf_of_exp a)
  | Ediv (a, b) -> Ratfunc.div (rf_of_exp a) (rf_of_exp b)

let qcheck_ratfunc_parity =
  QCheck.Test.make ~name:"Ratfunc matches cross-multiplied reference fractions" ~count:500
    (arb_exp ~div:true) (fun e ->
      match
        ( (try Ok (rf_of_exp e) with Division_by_zero -> Error ()),
          try Ok (ref_rf_of_exp e) with Division_by_zero -> Error () )
      with
      | Error (), Error () -> true (* both reject the same syntactic zero divisor *)
      | Ok rf, Ok (rn, rd) ->
          List.for_all
            (fun env ->
              let dv = Poly.eval (Ratfunc.den rf) env and rdv = Ref_poly.eval rd env in
              (* a vanishing denominator at a probe point is undefined on
                 both sides of the comparison; skip that point *)
              Rat.is_zero dv || Rat.is_zero rdv
              || Rat.equal
                   (Rat.div (Poly.eval (Ratfunc.num rf) env) dv)
                   (Rat.div (Ref_poly.eval rn env) rdv))
            envs
      | _ -> false)

(* ---- Ratfunc ---- *)

let rx = Ratfunc.var "x"
let ry = Ratfunc.var "y"

let test_ratfunc_equality_cross_mul () =
  (* x/y = (x*x)/(x*y) as rational functions *)
  let a = Ratfunc.div rx ry in
  let b = Ratfunc.div (Ratfunc.mul rx rx) (Ratfunc.mul rx ry) in
  check_bool "cross-multiplied equality" true (Ratfunc.equal a b);
  check_bool "x/y <> y/x" false (Ratfunc.equal a (Ratfunc.div ry rx))

let test_ratfunc_value_interface () =
  check_bool "const detection" true (Ratfunc.is_const (Ratfunc.of_int 7) = Some (Rat.of_int 7));
  check_bool "to_int" true (Ratfunc.to_int (Ratfunc.of_int 7) = Some 7);
  check_bool "symbolic has no int" true (Ratfunc.to_int rx = None);
  check_bool "compare concrete" true
    (Ratfunc.compare_concrete (Ratfunc.of_int 3) (Ratfunc.of_int 5) = Some (-1));
  check_bool "compare symbolic" true (Ratfunc.compare_concrete rx ry = None);
  (* field identity through division *)
  let e = Ratfunc.sub (Ratfunc.div (Ratfunc.mul rx ry) ry) rx in
  check_bool "x*y/y - x = 0" true (Ratfunc.equal e Ratfunc.zero)

let test_ratfunc_div_by_zero_const () =
  check_bool "division by the zero constant raises" true
    (try
       ignore (Ratfunc.div rx Ratfunc.zero);
       false
     with Division_by_zero -> true)

(* ---- Bmc ---- *)

let parse_c = Stagg_minic.Parser.parse_function_exn
let parse_t = Stagg_taco.Parser.parse_program_exn

let saxpy_src =
  {|
void saxpy(int N, int a, int* X, int* Y, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = a * X[i] + Y[i];
  }
}
|}

let saxpy_sig =
  {
    Sig.args =
      [
        ("N", Sig.Size "N"); ("a", Sig.Scalar_data); ("X", Sig.Arr [ "N" ]);
        ("Y", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]);
      ];
    out = "R";
  }

let bmc candidate =
  Bmc.check ~func:(parse_c saxpy_src) ~signature:saxpy_sig ~candidate:(parse_t candidate) ()

let test_bmc_equivalent () =
  check_bool "true lifting verifies" true (bmc "R(i) = a * X(i) + Y(i)" = Bmc.Equivalent);
  (* commuted and refactored forms also verify: it checks the function,
     not the syntax *)
  check_bool "commuted form verifies" true (bmc "R(i) = Y(i) + X(i) * a" = Bmc.Equivalent)

let test_bmc_inequivalent () =
  (match bmc "R(i) = a * X(i) - Y(i)" with
  | Bmc.Not_equivalent _ -> ()
  | r -> Alcotest.fail ("expected inequivalence, got " ^ Bmc.result_to_string r));
  match bmc "R(i) = a * X(i)" with
  | Bmc.Not_equivalent _ -> ()
  | r -> Alcotest.fail ("expected inequivalence, got " ^ Bmc.result_to_string r)

let test_bmc_beyond_io_testing () =
  (* a gemv whose candidate transposes the matrix: square random examples
     could in principle miss it, but the symbolic check cannot *)
  let src =
    {|
void gemv(int N, int M, int* A, int* X, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    R[i] = 0;
    for (j = 0; j < M; j++) R[i] += A[i * M + j] * X[j];
  }
}
|}
  in
  let sg =
    {
      Sig.args =
        [
          ("N", Sig.Size "N"); ("M", Sig.Size "M"); ("A", Sig.Arr [ "N"; "M" ]);
          ("X", Sig.Arr [ "M" ]); ("R", Sig.Arr [ "N" ]);
        ];
      out = "R";
    }
  in
  let check c = Bmc.check ~func:(parse_c src) ~signature:sg ~candidate:(parse_t c) () in
  check_bool "correct verifies" true (check "R(i) = A(i,j) * X(j)" = Bmc.Equivalent);
  check_bool "division-refactoring verifies" true
    (* Σ (A/2) = (Σ A)/2 over rationals: semantically equal, syntactically far *)
    (Bmc.Equivalent
    = Bmc.check ~func:(parse_c src) ~signature:sg
        ~candidate:(parse_t "R(i) = A(i,j) * X(j) * 2 / 2")
        ())

let test_bmc_division_semantics () =
  (* the paper's rational semantics: C's / is interpreted exactly *)
  let src = "void h(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] / 8; }" in
  let sg = { Sig.args = [ ("N", Sig.Size "N"); ("A", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]) ]; out = "R" } in
  check_bool "rational division verifies" true
    (Bmc.Equivalent
    = Bmc.check ~func:(parse_c src) ~signature:sg ~candidate:(parse_t "R(i) = A(i) / 8") ())

let test_bmc_wrong_shape () =
  match bmc "R = a * X(i) + Y(i)" with
  | Bmc.Not_equivalent _ | Bmc.Inconclusive _ -> ()
  | Bmc.Equivalent -> Alcotest.fail "scalar output cannot equal a vector"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_verify"
    [
      ( "poly",
        [
          Alcotest.test_case "basics" `Quick test_poly_basic;
          Alcotest.test_case "evaluation" `Quick test_poly_eval;
          qc qcheck_poly_semantics;
          qc qcheck_poly_parity;
        ] );
      ( "ratfunc",
        [
          Alcotest.test_case "cross-multiplied equality" `Quick test_ratfunc_equality_cross_mul;
          Alcotest.test_case "Value.S interface" `Quick test_ratfunc_value_interface;
          Alcotest.test_case "zero divisor" `Quick test_ratfunc_div_by_zero_const;
          qc qcheck_ratfunc_parity;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "equivalent programs" `Quick test_bmc_equivalent;
          Alcotest.test_case "inequivalent programs" `Quick test_bmc_inequivalent;
          Alcotest.test_case "stronger than I/O testing" `Quick test_bmc_beyond_io_testing;
          Alcotest.test_case "rational division" `Quick test_bmc_division_semantics;
          Alcotest.test_case "shape mismatch" `Quick test_bmc_wrong_shape;
        ] );
    ]
