(* Tests for stagg_taco: lexer, parser, pretty-printer, shapes, tensors,
   the einsum interpreter, and the lowering compiler. *)

open Stagg_util
open Stagg_taco
module I = Interp.Make (Value.Rat_value)
module E = Ir.Exec (Value.Rat_value)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse = Parser.parse_program_exn
let rat = Rat.of_int

let t1 data = Tensor.of_flat_array [| Array.length data |] (Array.map rat data)
let t2 rows cols data = Tensor.of_flat_array [| rows; cols |] (Array.map rat data)

let flat t = Array.to_list (Array.map Rat.to_string (Tensor.to_flat_array t))

let run_interp src env = Result.get_ok (I.run ~env (parse src))

(* ---- lexing and parsing ---- *)

let test_parse_basic () =
  let p = parse "a(i) = b(i,j) * c(j)" in
  check_string "round trip" "a(i) = b(i, j) * c(j)" (Pretty.program_to_string p);
  check_int "reduction indices" 1 (List.length (Ast.reduction_indices p));
  check_int "tensors" 3 (List.length (Ast.tensors_in_order p))

let test_parse_assign_variants () =
  (* := is accepted (LLM output), as the paper's preprocessing does *)
  let p = parse "Result(i) := Mat1(f,i) * Mat2(i)" in
  check_string "normalized to =" "Result(i) = Mat1(f, i) * Mat2(i)" (Pretty.program_to_string p)

let test_parse_sum_wrapper () =
  (* sum(f, ...) wrappers are erased — summation is implicit in TACO *)
  let p = parse "Result(f) = sum(i, mat1(f, i) * mat2(i))" in
  check_string "sum erased" "Result(f) = mat1(f, i) * mat2(i)" (Pretty.program_to_string p)

let test_parse_precedence () =
  let p = parse "a = b + c * d" in
  (match p.rhs with
  | Ast.Bin (Ast.Add, Ast.Access ("b", []), Ast.Bin (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong");
  let p = parse "a = (b + c) * d" in
  match p.rhs with
  | Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, _, _), _) -> ()
  | _ -> Alcotest.fail "parens wrong"

let test_parse_left_assoc () =
  let p = parse "a = b - c - d" in
  match p.rhs with
  | Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, _, _), Ast.Access ("d", [])) -> ()
  | _ -> Alcotest.fail "subtraction must associate left"

let test_parse_errors () =
  check_bool "unbalanced" true (Result.is_error (Parser.parse_program "a(i) = b(i"));
  check_bool "trailing op" true (Result.is_error (Parser.parse_program "a(i) = b(i) +"));
  check_bool "no lhs" true (Result.is_error (Parser.parse_program "= b(i)"));
  check_bool "prose" true (Result.is_error (Parser.parse_program "cannot translate"))

let test_parse_decimal () =
  let p = parse "a(i) = b(i) * 0.5" in
  match p.rhs with
  | Ast.Bin (Ast.Mul, _, Ast.Const c) -> check_bool "exact 1/2" true (Rat.equal c (Rat.of_ints 1 2))
  | _ -> Alcotest.fail "decimal literal"

(* round trip: random ASTs print then parse back to themselves *)
let arb_program =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "d" ] in
  let idx = oneofl [ "i"; "j"; "k" ] in
  let access = map2 (fun n is -> Ast.Access (n, is)) name (list_size (int_range 0 2) idx) in
  let rec expr depth =
    if depth = 0 then oneof [ access; map (fun n -> Ast.Const (Rat.of_int n)) (int_range 0 9) ]
    else
      frequency
        [
          (2, access);
          (1, map (fun e -> Ast.Neg e) (expr (depth - 1)));
          ( 3,
            map3
              (fun op a b -> Ast.Bin (op, a, b))
              (oneofl Ast.all_ops) (expr (depth - 1)) (expr (depth - 1)) );
        ]
  in
  let gen =
    map2 (fun lhs rhs -> { Ast.lhs; rhs }) (map (fun is -> ("out", is)) (list_size (int_range 0 2) idx)) (expr 3)
  in
  QCheck.make gen ~print:Pretty.program_to_string

let qcheck_print_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-print then parse is the identity on ASTs" ~count:500 arb_program
    (fun p ->
      match Parser.parse_program (Pretty.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

(* ---- shapes ---- *)

let test_shape_checks () =
  let p = parse "a(i) = b(i,j) * c(j)" in
  let shapes = [ ("b", [| 2; 3 |]); ("c", [| 3 |]) ] in
  (match Shape.infer_index_sizes ~shapes p with
  | Ok sizes ->
      check_int "i" 2 (List.assoc "i" sizes);
      check_int "j" 3 (List.assoc "j" sizes)
  | Error _ -> Alcotest.fail "infer failed");
  (match Shape.output_shape ~shapes p with
  | Ok s -> check_bool "output shape" true (s = [| 2 |])
  | Error _ -> Alcotest.fail "output shape failed");
  (* conflicting sizes *)
  let bad = [ ("b", [| 2; 3 |]); ("c", [| 4 |]) ] in
  check_bool "size conflict detected" true (Result.is_error (Shape.infer_index_sizes ~shapes:bad p))

let test_shape_arity () =
  let p = parse "a(i) = b(i,j)" in
  check_bool "arity ok" true (Result.is_ok (Shape.check_arities ~ranks:[ ("a", 1); ("b", 2) ] p));
  check_bool "arity bad" true (Result.is_error (Shape.check_arities ~ranks:[ ("a", 1); ("b", 1) ] p))

(* ---- tensors ---- *)

let test_tensor_basic () =
  let t = Tensor.create [| 2; 3 |] Rat.zero in
  Tensor.set t [| 1; 2 |] (rat 7);
  check_string "get" "7" (Rat.to_string (Tensor.get t [| 1; 2 |]));
  check_string "flat layout row-major" "7" (Rat.to_string (Tensor.get_flat t 5));
  check_int "size" 6 (Tensor.size t);
  check_int "rank" 2 (Tensor.rank t);
  let s = Tensor.scalar (rat 3) in
  check_int "scalar rank" 0 (Tensor.rank s);
  check_string "scalar get" "3" (Rat.to_string (Tensor.get s [||]))

let test_tensor_bounds () =
  let t = Tensor.create [| 2 |] Rat.zero in
  check_bool "oob raises" true
    (try
       ignore (Tensor.get t [| 5 |]);
       false
     with Invalid_argument _ -> true);
  check_bool "rank mismatch raises" true
    (try
       ignore (Tensor.get t [| 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_tensor_init_iteri () =
  let t = Tensor.init [| 2; 2 |] (fun ix -> rat ((10 * ix.(0)) + ix.(1))) in
  Alcotest.(check (list string)) "init order" [ "0"; "1"; "10"; "11" ] (flat t);
  let acc = ref [] in
  Tensor.iteri (fun ix v -> acc := (Array.to_list ix, Rat.to_string v) :: !acc) t;
  check_int "iteri visits all" 4 (List.length !acc)

(* ---- einsum interpreter ---- *)

let test_interp_dot () =
  let out = run_interp "r = a(i) * b(i)" [ ("a", t1 [| 1; 2; 3 |]); ("b", t1 [| 4; 5; 6 |]) ] in
  Alcotest.(check (list string)) "dot" [ "32" ] (flat out)

let test_interp_gemv () =
  let out =
    run_interp "r(i) = m(i,j) * v(j)"
      [ ("m", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]); ("v", t1 [| 1; 1; 1 |]) ]
  in
  Alcotest.(check (list string)) "gemv" [ "6"; "15" ] (flat out)

let test_interp_reduction_placement () =
  (* a(i) = b(i,j)*c(j) + d(i): the j-sum wraps only the product *)
  let out =
    run_interp "a(i) = b(i,j) * c(j) + d(i)"
      [
        ("b", t2 2 2 [| 1; 2; 3; 4 |]); ("c", t1 [| 1; 1 |]); ("d", t1 [| 100; 200 |]);
      ]
  in
  Alcotest.(check (list string)) "sum inserted at product" [ "103"; "207" ] (flat out)

let test_interp_reduction_whole () =
  (* r = a(i) + b(i): i spans both operands, the sum wraps the whole RHS *)
  let out = run_interp "r = a(i) + b(i)" [ ("a", t1 [| 1; 2 |]); ("b", t1 [| 10; 20 |]) ] in
  Alcotest.(check (list string)) "sum of sums" [ "33" ] (flat out)

let test_interp_scalar_broadcast () =
  let out = run_interp "r(i) = a(i) * s" [ ("a", t1 [| 1; 2; 3 |]); ("s", Tensor.scalar (rat 5)) ] in
  Alcotest.(check (list string)) "broadcast scalar" [ "5"; "10"; "15" ] (flat out)

let test_interp_transpose () =
  let out = run_interp "a(i,j) = b(j,i)" [ ("b", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]) ] in
  Alcotest.(check (list string)) "transpose" [ "1"; "4"; "2"; "5"; "3"; "6" ] (flat out)

let test_interp_division_by_zero () =
  match I.run ~env:[ ("a", t1 [| 1 |]); ("b", t1 [| 0 |]) ] (parse "r(i) = a(i) / b(i)") with
  | Error msg -> check_string "div by zero reported" "division by zero" msg
  | Ok _ -> Alcotest.fail "expected failure"

let test_interp_unknown_tensor () =
  check_bool "unknown tensor" true (Result.is_error (I.run ~env:[] (parse "a(i) = b(i)")))

let test_interp_repeated_index () =
  (* trace-like: r = b(i,i) sums the diagonal *)
  let out = run_interp "r = b(i,i)" [ ("b", t2 2 2 [| 1; 2; 3; 4 |]) ] in
  Alcotest.(check (list string)) "trace" [ "5" ] (flat out)

(* ---- lowering ---- *)

let test_lower_matches_interp_cases () =
  let check_same src env out_shape =
    let p = parse src in
    let via_interp = Result.get_ok (I.run ~env p) in
    let kernel = Lower.lower_exn p in
    let via_kernel = Result.get_ok (E.run ~env ~out_shape kernel) in
    check_bool (src ^ " kernel = interp") true (Tensor.equal Rat.equal via_interp via_kernel)
  in
  check_same "r(i) = m(i,j) * v(j)"
    [ ("m", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]); ("v", t1 [| 7; 8; 9 |]) ]
    [| 2 |];
  check_same "r = a(i) * b(i)" [ ("a", t1 [| 1; 2 |]); ("b", t1 [| 3; 4 |]) ] [||];
  check_same "r(i,j) = a(i) * b(j)" [ ("a", t1 [| 1; 2 |]); ("b", t1 [| 3; 4; 5 |]) ] [| 2; 3 |];
  check_same "a(i) = b(i,j) * c(j) + d(i)"
    [ ("b", t2 2 2 [| 1; 2; 3; 4 |]); ("c", t1 [| 5; 6 |]); ("d", t1 [| 7; 8 |]) ]
    [| 2 |]

(* property: lowering agrees with the einsum interpreter on random
   programs and random tensors *)
let qcheck_lower_equals_interp =
  let arb =
    let open QCheck.Gen in
    (* well-shaped programs over fixed tensors: b: 2x3, c: 3, d: 2, s: scalar *)
    let atoms =
      [ "b(i,j)"; "c(j)"; "d(i)"; "s"; "2"; "b(i,j) * c(j)"; "d(i) * s"; "c(j) * c(j)" ]
    in
    let op = oneofl [ "+"; "-"; "*" ] in
    let rhs =
      oneof
        [
          oneofl atoms;
          map3 (fun a o b -> a ^ " " ^ o ^ " " ^ b) (oneofl atoms) op (oneofl atoms);
        ]
    in
    let lhs = oneofl [ "a(i)"; "a"; "a(i,j)" ] in
    QCheck.make
      (map2 (fun l r -> l ^ " = " ^ r) lhs rhs)
      ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"lowered kernel computes the same function as the interpreter" ~count:200
    arb (fun src ->
      let p = parse src in
      let env =
        [
          ("b", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]);
          ("c", t1 [| 7; 8; 9 |]);
          ("d", t1 [| 10; 11 |]);
          ("s", Tensor.scalar (rat 3));
        ]
      in
      match I.run ~env p with
      | Error _ -> QCheck.assume_fail () (* ill-shaped (e.g. a(i,j) = d(i)) *)
      | Ok via_interp -> (
          match Lower.lower p with
          | Error _ -> false
          | Ok kernel -> (
              match E.run ~env ~out_shape:(Tensor.shape via_interp) kernel with
              | Error _ -> false
              | Ok via_kernel -> Tensor.equal Rat.equal via_interp via_kernel)))

(* ---- staged compilation ---- *)

module C = Compile.Make (Value.Rat_value)

(* property: the staged evaluator agrees with the reference interpreter
   cell-for-cell on random programs — and error-for-error: the generator
   deliberately mixes in atoms that force each failure class (unknown
   tensor [u], rank mismatch [b(i)], conflicting index sizes
   [c(j) vs d(j)], unbound output index [a(k) = ...], division by zero
   [/ z(j)]), and the two evaluators must produce identical messages *)
let qcheck_compile_equals_interp =
  let arb =
    let open QCheck.Gen in
    let atoms =
      [
        "b(i,j)"; "c(j)"; "d(i)"; "s"; "2"; "b(i,j) * c(j)"; "d(i) * s"; "c(j) * c(j)";
        "u(i)"; "b(i)"; "d(j)"; "c(j) / z(j)"; "- d(i)";
      ]
    in
    let op = oneofl [ "+"; "-"; "*"; "/" ] in
    let rhs =
      oneof
        [ oneofl atoms; map3 (fun a o b -> a ^ " " ^ o ^ " " ^ b) (oneofl atoms) op (oneofl atoms) ]
    in
    let lhs = oneofl [ "a(i)"; "a"; "a(i,j)"; "a(k)" ] in
    QCheck.make (map2 (fun l r -> l ^ " = " ^ r) lhs rhs) ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"staged evaluator agrees with the interpreter, including errors"
    ~count:500 arb (fun src ->
      let p = parse src in
      let env =
        [
          ("b", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]);
          ("c", t1 [| 7; 8; 9 |]);
          ("d", t1 [| 10; 11 |]);
          ("s", Tensor.scalar (rat 3));
          ("z", t1 [| 0; 5; 7 |]);
        ]
      in
      let compiled = C.compile p in
      match (I.run ~env p, C.run compiled ~env ()) with
      | Ok ti, Ok tc ->
          Tensor.shape ti = Tensor.shape tc
          && Tensor.equal Rat.equal ti tc
          && C.run_equal compiled ~env ~lhs_shape:(Tensor.shape ti)
               ~expected:(Tensor.to_flat_array ti)
          &&
          (* and [run_equal] rejects a perturbed expectation *)
          let wrong = Tensor.to_flat_array ti in
          wrong.(0) <- Rat.add wrong.(0) Rat.one;
          not (C.run_equal compiled ~env ~lhs_shape:(Tensor.shape ti) ~expected:wrong)
      | Error e1, Error e2 -> String.equal e1 e2
      | Ok _, Error _ | Error _, Ok _ -> false)

let test_compile_repeated_lhs_index () =
  (* a(i,i) writes the diagonal; the first axis wins in the interpreter's
     index environment, and the compiled iteration must match *)
  let src = "a(i,i) = b(i,j) * c(j)" in
  let env = [ ("b", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]); ("c", t1 [| 7; 8; 9 |]) ] in
  let p = parse src in
  let lhs_shape = [| 2; 2 |] in
  let ti = Result.get_ok (I.run ~env ~lhs_shape p) in
  let tc = Result.get_ok (C.run (C.compile p) ~env ~lhs_shape ()) in
  check_bool "diagonal agreement" true (Tensor.equal Rat.equal ti tc)

(* ---- template-level compilation (the batched validation path) ---- *)

module T = Stagg_template.Templatize

(* A fixed, complete symbol mapping, as [Subst.enumerate] always produces.
   [tu] maps to a name absent from the env so unknown-tensor errors stay
   reachable through a complete mapping. *)
let template_mapping =
  [ ("a", "r"); ("tb", "b"); ("tc", "c"); ("td", "d"); ("ts", "s"); ("tz", "z"); ("tu", "u") ]

let template_env =
  [
    ("b", t2 2 3 [| 1; 2; 3; 4; 5; 6 |]);
    ("c", t1 [| 7; 8; 9 |]);
    ("d", t1 [| 10; 11 |]);
    ("s", Tensor.scalar (rat 3));
    ("z", t1 [| 0; 5; 7 |]);
  ]

(* Random templates over the symbolic names, deliberately mixing in atoms
   that force each failure class (unknown tensor [tu], rank mismatch
   [tb(i)], conflicting sizes [td(j)], unbound output index [a(k)],
   division by zero [/ tz(j)], a ranked [Const(i)] — which [rename] leaves
   named [Const], failing at bind), plus rank-0 and repeated-index LHS
   edge cases. Two constants per case: the second [rebind] of the same
   compiled template must behave like a fresh compile (no stale state). *)
let arb_template_case =
  let open QCheck.Gen in
  let atoms =
    [
      "tb(i,j)"; "tc(j)"; "td(i)"; "ts"; "Const"; "2"; "tb(i,j) * tc(j)"; "tc(j) * Const";
      "tu(i)"; "tb(i)"; "td(j)"; "tc(j) / tz(j)"; "- td(i)"; "Const(i)";
    ]
  in
  let op = oneofl [ "+"; "-"; "*"; "/" ] in
  let rhs =
    oneof
      [ oneofl atoms; map3 (fun a o b -> a ^ " " ^ o ^ " " ^ b) (oneofl atoms) op (oneofl atoms) ]
  in
  let lhs = oneofl [ "a(i)"; "a"; "a(i,j)"; "a(k)"; "a(i,i)" ] in
  let const = map Rat.of_int (int_range (-3) 9) in
  QCheck.make
    (map3 (fun l r cs -> (l ^ " = " ^ r, cs)) lhs rhs (pair const const))
    ~print:(fun (s, _) -> s)

let qcheck_template_rebind_equals_compile =
  QCheck.Test.make
    ~name:"compile_template + rebind agrees with per-candidate compile, including errors"
    ~count:500 arb_template_case (fun (src, (c1, c2)) ->
      let template = parse src in
      let ct = C.compile_template template in
      let agree const =
        let concrete = T.rename template ~mapping:template_mapping ~const:(Some const) in
        let per = C.compile concrete in
        C.rebind ct ~mapping:template_mapping ~const:(Some const);
        match (C.run per ~env:template_env (), C.run ct ~env:template_env ()) with
        | Ok tp, Ok tt ->
            Tensor.shape tp = Tensor.shape tt
            && Tensor.equal Rat.equal tp tt
            &&
            let shape = Tensor.shape tp in
            let expected = Tensor.to_flat_array tp in
            C.run_equal ct ~env:template_env ~lhs_shape:shape ~expected
            = C.run_equal per ~env:template_env ~lhs_shape:shape ~expected
            &&
            (* and both reject the same perturbed expectation *)
            let wrong = Tensor.to_flat_array tp in
            wrong.(0) <- Rat.add wrong.(0) Rat.one;
            C.run_equal ct ~env:template_env ~lhs_shape:shape ~expected:wrong
            = C.run_equal per ~env:template_env ~lhs_shape:shape ~expected:wrong
        | Error e1, Error e2 -> String.equal e1 e2
        | Ok _, Error _ | Error _, Ok _ -> false
      in
      agree c1 && agree c2)

let failure_of f =
  try
    ignore (f ());
    "<no failure>"
  with Failure m -> m

let test_template_rebind_error_parity () =
  let template = parse "a(i) = tb(i) * Const" in
  let ct = C.compile_template template in
  (* a symbol missing from the mapping: byte-identical to rename's error *)
  let short = [ ("a", "r") ] in
  check_string "missing binding parity"
    (failure_of (fun () -> T.rename template ~mapping:short ~const:(Some Rat.one)))
    (failure_of (fun () -> C.rebind ct ~mapping:short ~const:(Some Rat.one)));
  (* a Const hole with no constant to fill it *)
  let full = [ ("a", "r"); ("tb", "b") ] in
  check_string "missing const parity"
    (failure_of (fun () -> T.rename template ~mapping:full ~const:None))
    (failure_of (fun () -> C.rebind ct ~mapping:full ~const:None));
  (* rebind on a per-program evaluator is a programming error *)
  check_bool "rebind rejects per-program evaluator" true
    (try
       C.rebind (C.compile (parse "a(i) = b(i)")) ~mapping:full ~const:None;
       false
     with Invalid_argument _ -> true)

let test_template_rank_overflow () =
  let idxs = "i1, i2, i3, i4, i5, i6, i7, i8, i9" in
  let p = parse (Printf.sprintf "a(%s) = b(%s)" idxs idxs) in
  (* over MAXRANK the template compiler refuses up front... *)
  check_bool "compile_template overflows cleanly" true
    (try
       ignore (C.compile_template p);
       false
     with C.Rank_overflow _ -> true);
  (* ...while the per-program compiler falls back to exact-size scratch *)
  let t9 = Tensor.of_flat_array (Array.make 9 1) [| rat 42 |] in
  (match C.run (C.compile p) ~env:[ ("b", t9) ] () with
  | Ok t -> check_string "rank-9 per-program compile runs" "42" (Rat.to_string (Tensor.get_flat t 0))
  | Error e -> Alcotest.fail e);
  (* the loop-nest executor reports the capacity overflow as an error *)
  match Lower.lower p with
  | Error _ -> ()
  | Ok kernel -> (
      match E.run ~env:[ ("b", t9) ] ~out_shape:(Array.make 9 1) kernel with
      | Error msg -> check_bool "Exec reports MAXRANK" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "expected the rank-9 kernel to exceed MAXRANK")

let test_kernel_to_c_renders () =
  let k = Lower.lower_exn (parse "a(i) = b(i,j) * c(j)") in
  let c = Ir.kernel_to_c ~name:"gemv" k in
  check_bool "mentions loop" true (String.length c > 0 && String.contains c 'f')

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_taco"
    [
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case ":= accepted" `Quick test_parse_assign_variants;
          Alcotest.test_case "sum wrapper erased" `Quick test_parse_sum_wrapper;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "left associativity" `Quick test_parse_left_assoc;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "decimal literals" `Quick test_parse_decimal;
          qc qcheck_print_parse_roundtrip;
        ] );
      ( "shape",
        [
          Alcotest.test_case "index sizes" `Quick test_shape_checks;
          Alcotest.test_case "arities" `Quick test_shape_arity;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "basic" `Quick test_tensor_basic;
          Alcotest.test_case "bounds" `Quick test_tensor_bounds;
          Alcotest.test_case "init/iteri" `Quick test_tensor_init_iteri;
        ] );
      ( "interp",
        [
          Alcotest.test_case "dot" `Quick test_interp_dot;
          Alcotest.test_case "gemv" `Quick test_interp_gemv;
          Alcotest.test_case "reduction placement" `Quick test_interp_reduction_placement;
          Alcotest.test_case "whole-RHS reduction" `Quick test_interp_reduction_whole;
          Alcotest.test_case "scalar broadcast" `Quick test_interp_scalar_broadcast;
          Alcotest.test_case "transpose" `Quick test_interp_transpose;
          Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
          Alcotest.test_case "unknown tensor" `Quick test_interp_unknown_tensor;
          Alcotest.test_case "repeated index (trace)" `Quick test_interp_repeated_index;
        ] );
      ( "lower",
        [
          Alcotest.test_case "kernel equals interpreter" `Quick test_lower_matches_interp_cases;
          Alcotest.test_case "kernel_to_c renders" `Quick test_kernel_to_c_renders;
          qc qcheck_lower_equals_interp;
        ] );
      ( "compile",
        [
          Alcotest.test_case "repeated LHS index" `Quick test_compile_repeated_lhs_index;
          qc qcheck_compile_equals_interp;
        ] );
      ( "template compile",
        [
          Alcotest.test_case "rebind error parity" `Quick test_template_rebind_error_parity;
          Alcotest.test_case "MAXRANK overflow" `Quick test_template_rank_overflow;
          qc qcheck_template_rebind_equals_compile;
        ] );
    ]
