(* End-to-end pipeline tests: representative benchmarks solve with both
   searches, the solutions verify, runs are deterministic, and the
   intermediate artifacts are coherent. *)

module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bench name = Option.get (Suite.find name)

let run_td name = Stagg.Pipeline.run Stagg.Method_.stagg_td (bench name)
let run_bu name = Stagg.Pipeline.run Stagg.Method_.stagg_bu (bench name)

let expect_solution run name expected =
  let r = run name in
  check_bool (name ^ " solved") true r.Stagg.Result_.solved;
  match r.solution with
  | Some sol ->
      check_string (name ^ " lifting") expected (Stagg_taco.Pretty.program_to_string sol.concrete)
  | None -> Alcotest.fail "no solution recorded"

let test_td_representatives () =
  expect_solution run_td "art_copy" "R(i) = A(i)";
  expect_solution run_td "art_gemv" "R(i) = A(i, j) * X(j)";
  expect_solution run_td "art_gemm" "R(i, j) = A(i, k) * B(k, j)";
  expect_solution run_td "dsp_mean8" "R = X(i) / 8";
  expect_solution run_td "sa_const_sub" "R(i) = 10 - A(i)"

let test_td_semantic_equivalents_accepted () =
  (* the pipeline may land on any verified-equivalent form; check it
     verifies rather than insisting on syntax *)
  List.iter
    (fun name ->
      let r = run_td name in
      check_bool (name ^ " solved") true r.Stagg.Result_.solved;
      match r.solution with
      | Some sol ->
          let b = bench name in
          check_bool (name ^ " verifies") true
            (Stagg_verify.Bmc.check ~func:(Bench.func b) ~signature:b.signature
               ~candidate:sol.concrete ()
            = Stagg_verify.Bmc.Equivalent)
      | None -> Alcotest.fail "no solution")
    [ "blas_syrk_lt"; "dk_mse"; "mf_vec_lerp"; "blas_saxpy"; "art_ttv" ]

let test_bu_representatives () =
  expect_solution run_bu "art_copy" "R(i) = A(i)";
  expect_solution run_bu "art_gemv" "R(i) = A(i, j) * X(j)";
  (* the bottom-up search solves left-leaning chains *)
  let r = run_bu "dk_normalize" in
  check_bool "dk_normalize solved bottom-up" true r.Stagg.Result_.solved

let test_bu_structural_limits () =
  (* right-nested and repeated-symbol solutions are outside the
     right-linear template space (paper RQ2) *)
  List.iter
    (fun name -> check_bool (name ^ " fails bottom-up") false (run_bu name).Stagg.Result_.solved)
    [ "dk_mse"; "mf_vec_lerp"; "blas_syrk_lt" ]

let test_five_index_unsolvable () =
  check_bool "dk_conv1x1 unsolvable top-down" false (run_td "dk_conv1x1").Stagg.Result_.solved;
  check_bool "dk_conv1x1 unsolvable bottom-up" false (run_bu "dk_conv1x1").Stagg.Result_.solved

let test_parallel_determinism () =
  (* a domain pool must not change what is computed: run_suite with 1 and
     4 workers agree on every field except wall-clock time *)
  let benches =
    List.filter_map Suite.find
      [ "art_copy"; "art_gemv"; "art_gemm"; "dsp_mean8"; "sa_const_sub"; "dk_mse" ]
  in
  let strip (r : Stagg.Result_.t) = { r with time_s = 0.; validate_s = 0.; verify_s = 0. } in
  let seq = List.map strip (Stagg.Pipeline.run_suite ~jobs:1 Stagg.Method_.stagg_td benches) in
  let par = List.map strip (Stagg.Pipeline.run_suite ~jobs:4 Stagg.Method_.stagg_td benches) in
  check_bool "jobs:1 and jobs:4 agree modulo time_s" true (seq = par)

let test_memo_determinism () =
  (* the cross-sweep validation memo must be invisible in results: a
     memo-disabled sequential run and a memo-enabled 4-worker run agree on
     every field except wall-clock times *)
  let benches =
    List.filter_map Suite.find
      [ "art_copy"; "art_gemv"; "art_gemm"; "dsp_mean8"; "sa_const_sub"; "dk_mse" ]
  in
  let strip (r : Stagg.Result_.t) = { r with time_s = 0.; validate_s = 0.; verify_s = 0. } in
  let module V = Stagg_validate.Validator in
  V.set_memo_enabled false;
  V.clear_memo ();
  let off = List.map strip (Stagg.Pipeline.run_suite ~jobs:1 Stagg.Method_.stagg_td benches) in
  V.set_memo_enabled true;
  V.clear_memo ();
  let on_ = List.map strip (Stagg.Pipeline.run_suite ~jobs:4 Stagg.Method_.stagg_td benches) in
  check_bool "memo filled by the sweep" true (V.memo_size () > 0);
  check_bool "memo on/off byte-identical" true (off = on_)

let test_determinism () =
  let norm (r : Stagg.Result_.t) =
    ( r.solved,
      r.attempts,
      r.expansions,
      Option.map (fun s -> Stagg_taco.Pretty.program_to_string s.Stagg_validate.Validator.concrete) r.solution )
  in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " deterministic") true (norm (run_td name) = norm (run_td name)))
    [ "art_gemv"; "dk_mse"; "blas_saxpy" ]

let test_prepare_artifacts () =
  match Stagg.Pipeline.prepare Stagg.Method_.stagg_td (bench "art_gemv") with
  | Error e -> Alcotest.fail e
  | Ok prep ->
      check_bool "candidates parsed" true (List.length prep.candidates >= 8);
      check_bool "templates exist" true (prep.templates <> []);
      Alcotest.(check (list int)) "gemv dimension list" [ 1; 2; 1 ] prep.dim_list;
      (* LHS templatized symbol is a; templates use canonical indices *)
      List.iter
        (fun t ->
          check_string "LHS symbol" "a" (fst t.Stagg_taco.Ast.lhs))
        prep.templates

let test_solution_substitution_sound () =
  let r = run_td "blas_sgemm" in
  match r.solution with
  | Some sol ->
      (* every bound argument is a real parameter of the benchmark *)
      let b = bench "blas_sgemm" in
      let params = List.map fst b.signature.args in
      List.iter
        (fun (_, arg) -> check_bool (arg ^ " is a parameter") true (List.mem arg params))
        sol.subst.tensor_binding
  | None -> Alcotest.fail "sgemm not solved"

let test_ablation_configs_run () =
  (* each grammar configuration completes on an easy benchmark *)
  List.iter
    (fun m ->
      let r = Stagg.Pipeline.run m (bench "art_gemv") in
      check_bool (m.Stagg.Method_.label ^ " solves gemv") true r.Stagg.Result_.solved)
    [
      Stagg.Method_.td_equal_probability;
      Stagg.Method_.td_llm_grammar;
      Stagg.Method_.td_full_grammar;
      Stagg.Method_.bu_equal_probability;
      Stagg.Method_.bu_llm_grammar;
      Stagg.Method_.bu_full_grammar;
    ]

let test_no_verify_mode () =
  let m = { Stagg.Method_.stagg_td with verify = false } in
  let r = Stagg.Pipeline.run m (bench "art_dot") in
  check_bool "validation-only mode solves" true r.Stagg.Result_.solved

let () =
  Alcotest.run "stagg_pipeline"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "top-down representatives" `Slow test_td_representatives;
          Alcotest.test_case "semantic equivalents verified" `Slow test_td_semantic_equivalents_accepted;
          Alcotest.test_case "bottom-up representatives" `Slow test_bu_representatives;
          Alcotest.test_case "bottom-up structural limits" `Slow test_bu_structural_limits;
          Alcotest.test_case "five-index query unsolvable" `Slow test_five_index_unsolvable;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "parallel determinism" `Slow test_parallel_determinism;
          Alcotest.test_case "memo determinism" `Slow test_memo_determinism;
          Alcotest.test_case "prepared artifacts" `Quick test_prepare_artifacts;
          Alcotest.test_case "substitutions bind parameters" `Slow test_solution_substitution_sound;
          Alcotest.test_case "ablation configurations" `Slow test_ablation_configs_run;
          Alcotest.test_case "validation-only mode" `Quick test_no_verify_mode;
        ] );
    ]
