(* Tests for the static liftability layer and its search integration:
   - QCheck ring/substitution laws for the Affine polynomial domain;
   - Recover regressions on pointer-walking kernels, pinning the exact
     closed-form index polynomials array recovery must produce;
   - Depend unit tests (linear coefficients, GCD/Banerjee independence,
     store classification, stencil detection);
   - Facts: all 77 suite benchmarks stay liftable; each diagnostics
     kernel is rejected with the expected message;
   - Prune: rule-doom tables and the packed arity-clash tracker;
   - pipeline fail-fast end-to-end on the diagnostics kernels;
   - the analysis-on/off differential: solved sets, attempt counts and
     first solutions must be byte-identical, with
     [expansions_on + pruned_on = expansions_off]. *)

open Stagg_minic
module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench
module Prune = Stagg_grammar.Prune

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let parse = Parser.parse_function_exn

let affine =
  Alcotest.testable (fun fmt p -> Format.pp_print_string fmt (Affine.to_string p)) Affine.equal

(* ---- Affine: ring and substitution laws (QCheck) ---- *)

let pool = [ "i"; "j"; "N"; "M" ]

(* depth-capped: [mul] multiplies monomial counts, so unbounded nesting
   makes term size (and [Affine.mul] cost) explode exponentially *)
let gen_poly ?(vars = pool) () =
  let open QCheck.Gen in
  sized_size (int_bound 12)
  @@ fix (fun self n ->
         if n <= 1 then
           oneof [ map Affine.const (int_range (-9) 9); map Affine.var (oneofl vars) ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map2 Affine.add sub sub;
               map2 Affine.sub sub sub;
               map2 Affine.mul sub sub;
               map Affine.neg sub;
               map2 Affine.scale (int_range (-4) 4) sub;
             ])

let arb_poly = QCheck.make (gen_poly ()) ~print:Affine.to_string
let arb_pair = QCheck.pair arb_poly arb_poly
let arb_triple = QCheck.triple arb_poly arb_poly arb_poly

let t name arb prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 arb prop)
let ( =~ ) = Affine.equal

let ring_tests =
  [
    t "add commutative" arb_pair (fun (p, q) -> Affine.add p q =~ Affine.add q p);
    t "mul commutative" arb_pair (fun (p, q) -> Affine.mul p q =~ Affine.mul q p);
    t "add associative" arb_triple (fun (p, q, r) ->
        Affine.add p (Affine.add q r) =~ Affine.add (Affine.add p q) r);
    t "mul associative" arb_triple (fun (p, q, r) ->
        Affine.mul p (Affine.mul q r) =~ Affine.mul (Affine.mul p q) r);
    t "mul distributes over add" arb_triple (fun (p, q, r) ->
        Affine.mul p (Affine.add q r) =~ Affine.add (Affine.mul p q) (Affine.mul p r));
    t "p - p = 0" arb_poly (fun p -> Affine.sub p p =~ Affine.zero);
    t "sub is add neg" arb_pair (fun (p, q) -> Affine.sub p q =~ Affine.add p (Affine.neg q));
    t "scale is mul by const" (QCheck.pair QCheck.small_signed_int arb_poly) (fun (k, p) ->
        Affine.scale k p =~ Affine.mul (Affine.const k) p);
    t "0 and 1 neutral" arb_poly (fun p ->
        Affine.add p Affine.zero =~ p && Affine.mul (Affine.const 1) p =~ p);
  ]

let subst_tests =
  [
    t "subst v by v is identity" arb_poly (fun p -> Affine.subst p "i" (Affine.var "i") =~ p);
    t "subst eliminates the variable" arb_pair (fun (p, q) ->
        let q = Affine.subst q "i" (Affine.const 1) in
        not (Affine.mentions (Affine.subst p "i" q) "i"));
    t "subst is a ring homomorphism" arb_triple (fun (p, q, r) ->
        Affine.subst (Affine.add p q) "i" r
        =~ Affine.add (Affine.subst p "i" r) (Affine.subst q "i" r)
        && Affine.subst (Affine.mul p q) "i" r
           =~ Affine.mul (Affine.subst p "i" r) (Affine.subst q "i" r));
    (* p[i:=q][j:=r] = p[j:=r][i := q[j:=r]] when i does not occur in r *)
    t "subst composition" arb_triple (fun (p, q, r) ->
        let r = Affine.subst r "i" (Affine.const 2) in
        Affine.subst (Affine.subst p "i" q) "j" r
        =~ Affine.subst (Affine.subst p "j" r) "i" (Affine.subst q "j" r));
    t "vars and mentions agree" arb_poly (fun p ->
        let vs = Affine.vars p in
        List.for_all (fun v -> Affine.mentions p v = List.mem v vs) ("zz" :: pool));
  ]

(* ---- Recover: pointer-walking kernels, exact index polynomials ---- *)

let accesses_of base kind f =
  List.filter (fun (a : Recover.access) -> a.base = base && a.kind = kind) (Recover.analyze f)

let the_index name = function
  | ({ Recover.index = Some p; _ } : Recover.access) -> p
  | _ -> Alcotest.failf "%s: index polynomial lost" name

let test_recover_post_increment () =
  let f =
    parse
      {|void f(int N, int* A, int* R) {
          int i; int* p; p = A;
          for (i = 0; i < N; i++) { R[i] = *p; p++; }
        }|}
  in
  match accesses_of "A" Recover.Load f with
  | [ a ] -> Alcotest.check affine "p++ walks A[i]" (Affine.var "i") (the_index "p++" a)
  | l -> Alcotest.failf "expected 1 load of A, got %d" (List.length l)

let test_recover_strided () =
  let f =
    parse
      {|void f(int N, int* A, int* R) {
          int i; int* p; p = A;
          for (i = 0; i < N; i++) { R[i] = *p; p += 2; }
        }|}
  in
  match accesses_of "A" Recover.Load f with
  | [ a ] ->
      Alcotest.check affine "p += 2 walks A[2i]"
        (Affine.scale 2 (Affine.var "i"))
        (the_index "p += 2" a)
  | l -> Alcotest.failf "expected 1 load of A, got %d" (List.length l)

(* the paper's Fig. 2 kernel: p_m1 walks Mat1 across BOTH loops, so its
   recovered index must be the linearized f*N + i *)
let test_recover_nested_walk () =
  let f =
    parse
      {|void f(int N, int* Mat1, int* Mat2, int* Result) {
          int* p_m1; int* p_m2; int* p_t;
          int i, f;
          p_m1 = Mat1; p_t = Result;
          for (f = 0; f < N; f++) {
            *p_t = 0;
            p_m2 = &Mat2[0];
            for (i = 0; i < N; i++)
              *p_t += *p_m1++ * *p_m2++;
            p_t++;
          }
        }|}
  in
  let nf = Affine.add (Affine.mul (Affine.var "f") (Affine.var "N")) (Affine.var "i") in
  (match accesses_of "Mat1" Recover.Load f with
  | [ a ] -> Alcotest.check affine "Mat1 index f*N + i" nf (the_index "Mat1" a)
  | l -> Alcotest.failf "expected 1 load of Mat1, got %d" (List.length l));
  (match accesses_of "Mat2" Recover.Load f with
  | [ a ] -> Alcotest.check affine "Mat2 index i" (Affine.var "i") (the_index "Mat2" a)
  | l -> Alcotest.failf "expected 1 load of Mat2, got %d" (List.length l));
  List.iter
    (fun (a : Recover.access) ->
      Alcotest.check affine "Result index f" (Affine.var "f") (the_index "Result" a))
    (accesses_of "Result" Recover.Store f)

(* ---- Depend: coefficients, independence tests, classification ---- *)

let test_linear_coeff () =
  let p = Affine.add (Affine.mul (Affine.var "i") (Affine.var "M")) (Affine.var "j") in
  Alcotest.(check (option affine)) "coeff of i is M" (Some (Affine.var "M"))
    (Depend.linear_coeff p "i");
  Alcotest.(check (option affine)) "coeff of j is 1" (Some (Affine.const 1))
    (Depend.linear_coeff p "j");
  Alcotest.(check (option affine)) "absent var has coeff 0" (Some Affine.zero)
    (Depend.linear_coeff p "k");
  let sq = Affine.mul (Affine.var "i") (Affine.var "i") in
  Alcotest.(check (option affine)) "i*i is not linear in i" None (Depend.linear_coeff sq "i")

let test_gcd_independence () =
  let d coeffs k =
    List.fold_left
      (fun acc (c, v) -> Affine.add acc (Affine.scale c (Affine.var v)))
      (Affine.const k) coeffs
  in
  let lv = [ "i"; "j" ] in
  check_bool "2i + 4j + 1 has no root" true
    (Depend.gcd_independent (d [ (2, "i"); (4, "j") ] 1) ~loop_vars:lv);
  check_bool "2i + 4j + 2 may have a root" false
    (Depend.gcd_independent (d [ (2, "i"); (4, "j") ] 2) ~loop_vars:lv);
  check_bool "constant nonzero distance" true
    (Depend.gcd_independent (Affine.const 3) ~loop_vars:lv);
  check_bool "zero distance is a dependence" false
    (Depend.gcd_independent Affine.zero ~loop_vars:lv);
  (* symbolic coefficient: conservative *)
  check_bool "symbolic coeff is conservative" false
    (Depend.gcd_independent
       (Affine.add (Affine.mul (Affine.var "i") (Affine.var "N")) (Affine.const 1))
       ~loop_vars:lv)

let test_banerjee_independence () =
  let lv = [ "i"; "j" ] in
  let p = Affine.add (Affine.add (Affine.var "i") (Affine.var "j")) (Affine.const 1) in
  check_bool "i + j + 1 > 0 on [0,N)" true (Depend.banerjee_independent p ~loop_vars:lv);
  check_bool "-(i + j + 1) < 0 on [0,N)" true
    (Depend.banerjee_independent (Affine.neg p) ~loop_vars:lv);
  check_bool "i - 1 straddles zero" false
    (Depend.banerjee_independent (Affine.sub (Affine.var "i") (Affine.const 1)) ~loop_vars:lv)

let test_classify_gemv () =
  let f =
    parse
      {|void gemv(int N, int M, int* A, int* X, int* R) {
          int i, j;
          for (i = 0; i < N; i++) {
            R[i] = 0;
            for (j = 0; j < M; j++) {
              R[i] += A[i * M + j] * X[j];
            }
          }
        }|}
  in
  match Depend.classify (Recover.analyze f) with
  | [ init; acc ] ->
      check_string "init store is pointwise" "pointwise"
        (Depend.classification_to_string init.st_class);
      check_bool "accumulation reduces over j" true (acc.st_class = Depend.Reduction [ "j" ]);
      check_int "no stencils" 0 (List.length acc.st_stencils);
      check_int "no may-alias" 0 (List.length acc.st_may_alias)
  | l -> Alcotest.failf "expected 2 stores, got %d" (List.length l)

let test_classify_stencil () =
  let f =
    parse
      {|void scan(int N, int* A, int* R) {
          int i;
          for (i = 1; i < N; i++) { R[i] = R[i - 1] + A[i]; }
        }|}
  in
  match Depend.classify (Recover.analyze f) with
  | [ st ] ->
      check_bool "store reads R at distance +1" true (List.mem ("R", 1) st.st_stencils)
  | l -> Alcotest.failf "expected 1 store, got %d" (List.length l)

(* ---- Facts: suite regression and diagnostics rejection ---- *)

let test_all_suite_liftable () =
  List.iter
    (fun (b : Bench.t) ->
      let facts = Facts.analyze (Bench.func b) in
      match facts.ft_verdict with
      | Ok () -> ()
      | Error d -> Alcotest.failf "%s became unliftable: %s" b.name d)
    Suite.all

let contains_sub hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_diagnostics_rejected () =
  let expect =
    [
      ("diag_mod", "'%'");
      ("diag_relu", "ternary");
      ("diag_prefix_sum", "flow dependence");
      ("diag_no_store", "no store");
    ]
  in
  check_int "diagnostics count" (List.length expect) (List.length Suite.diagnostics);
  List.iter
    (fun (name, needle) ->
      let b = Option.get (Suite.find name) in
      match (Facts.analyze (Bench.func b)).ft_verdict with
      | Ok () -> Alcotest.failf "%s should be rejected" name
      | Error d ->
          check_bool (name ^ " diagnostic mentions " ^ needle) true (contains_sub d needle))
    expect

let test_control_position_not_data () =
  (* loop-header comparisons and subscript arithmetic are control, not
     data: they must not trip the unsupported-construct scan *)
  let f =
    parse
      {|void f(int N, int* A, int* R) {
          int i;
          for (i = 0; i < N; i++) { R[i] = A[i % N + 0]; }
        }|}
  in
  check_int "subscripts and loop headers are control" 0
    (List.length (Facts.unsupported_data_constructs f))

(* ---- Prune: rule dooming and the arity-clash tracker ---- *)

let full_grammar = lazy (Stagg_grammar.Taco_grammar.generate ~n_rhs_tensors:3 ~max_rank:2 ~n_indices:3 ())

let restrict ctx = Prune.restrict (Lazy.force full_grammar) ctx

let test_prune_dooms_rules () =
  let pr =
    restrict
      { Prune.out_rank = Some 1; arg_ranks = Some [ 0; 2; 1 ]; no_consts = true; lhs_name = "a" }
  in
  check_bool "some rules doomed" true (Prune.n_doomed pr > 0);
  check_bool "tracker active" true (Prune.tracks_arity pr);
  let count r = Option.value ~default:0 (List.assoc_opt r (Prune.doomed_counts pr)) in
  check_bool "LHS rank mismatches doomed" true (count (Prune.reason_to_string Prune.Lhs_rank) > 0);
  check_bool "const rules doomed on empty pool" true
    (count (Prune.reason_to_string Prune.Const_pool) > 0)

let test_prune_no_facts_no_dooming () =
  let pr =
    restrict { Prune.out_rank = None; arg_ranks = None; no_consts = false; lhs_name = "a" } in
  check_int "nothing doomed without facts" 0 (Prune.n_doomed pr)

let test_prune_arity_clash () =
  let g = Lazy.force full_grammar in
  let pr =
    restrict
      { Prune.out_rank = Some 2; arg_ranks = Some [ 0; 1; 2 ]; no_consts = false; lhs_name = "a" }
  in
  (* find the rules deriving tensor b at ranks 1 and 2 *)
  let rule_for name arity =
    let matches (r : Stagg_grammar.Cfg.rule) =
      List.exists
        (function
          | Stagg_grammar.Cfg.T (Stagg_grammar.Cfg.Tok_tensor (n, idx)) ->
              n = name && List.length idx = arity
          | _ -> false)
        r.rhs
    in
    match List.find_opt matches (Array.to_list (Stagg_grammar.Cfg.rules g)) with
    | Some r -> r.id
    | None -> Alcotest.failf "no rule for %s at arity %d" name arity
  in
  let b1 = rule_for "b" 1 and b2 = rule_for "b" 2 in
  let st = Prune.step pr Prune.root b1 in
  check_bool "b/1 alone is fine" false (Prune.is_doomed st);
  check_bool "b/1 twice is fine" false (Prune.is_doomed (Prune.step pr st b1));
  check_bool "b/1 then b/2 clashes" true (Prune.is_doomed (Prune.step pr st b2));
  check_bool "doomed is a sink" true (Prune.is_doomed (Prune.step pr (Prune.step pr st b2) b1));
  (* order-insensitive *)
  check_bool "b/2 then b/1 clashes" true
    (Prune.is_doomed (Prune.step pr (Prune.step pr Prune.root b2) b1))

(* ---- pipeline: fail-fast end-to-end ---- *)

let test_fail_fast () =
  List.iter
    (fun (b : Bench.t) ->
      let r = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      check_bool (b.name ^ " unsolved") false r.Stagg.Result_.solved;
      check_int (b.name ^ " zero attempts") 0 r.attempts;
      check_int (b.name ^ " zero expansions") 0 r.expansions;
      match r.failure with
      | Some msg -> check_bool (b.name ^ " diagnostic") true (contains_sub msg "not liftable: ")
      | None -> Alcotest.failf "%s has no failure message" b.name)
    Suite.diagnostics

let test_no_analysis_searches () =
  (* with the analysis off the same kernels reach the search (and fail
     there or in preparation, but not with the analyzer's diagnostic) *)
  List.iter
    (fun (b : Bench.t) ->
      let m = Stagg.Method_.without_analysis Stagg.Method_.stagg_td in
      let r = Stagg.Pipeline.run m b in
      check_bool (b.name ^ " unsolved") false r.Stagg.Result_.solved;
      match r.failure with
      | Some msg ->
          check_bool (b.name ^ " not the analyzer's message") false
            (contains_sub msg "not liftable: ")
      | None -> Alcotest.failf "%s has no failure message" b.name)
    Suite.diagnostics

(* ---- the three-way prune-mode differential ---- *)

let first_solution (r : Stagg.Result_.t) =
  match r.solution with
  | Some sol -> Stagg_taco.Pretty.program_to_string sol.concrete
  | None -> "<none>"

let rec iter3 f a b c =
  match (a, b, c) with
  | [], [], [] -> ()
  | x :: a, y :: b, z :: c ->
      f x y z;
      iter3 f a b c
  | _ -> invalid_arg "iter3"

(* Analysis off vs prune-replay vs prune-admission must be OBSERVABLY the
   same search: identical solved sets, attempt counts and first
   solutions. The accounting identities pin down how the three modes
   partition the same baseline pop sequence:
     off.expansions = replay.expansions + replay.pruned
                    = admission.expansions + admission.suppressed,
   with replay and admission doing identical real work
   (replay.expansions = admission.expansions) and absorbing the same
   doomed set (replay.pruned = admission.suppressed).

   The identities only hold when every stop is deterministic (attempt /
   expansion / frontier caps). The wall-clock backstop would cut a run
   at whatever pop the 64-pop poll lands on, which depends on machine
   load — the heaviest artificial searches sit near the 10 s default
   under a loaded domain pool — so the differential runs with the
   timeout disabled. *)
let test_differential () =
  let benches = Suite.artificial in
  let total_pruned = ref 0 and total_suppressed = ref 0 in
  List.iter
    (fun (m : Stagg.Method_.t) ->
      let m =
        { m with budget = { m.budget with Stagg_search.Astar.timeout_s = Float.infinity } }
      in
      let off = Stagg.Pipeline.run_suite (Stagg.Method_.without_analysis m) benches in
      let rep =
        Stagg.Pipeline.run_suite
          (Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_replay)
          benches
      in
      let adm =
        Stagg.Pipeline.run_suite
          (Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_admission)
          benches
      in
      iter3
        (fun (b : Stagg.Result_.t) (r : Stagg.Result_.t) (a : Stagg.Result_.t) ->
          let lbl = m.label ^ "/" ^ b.bench in
          check_bool (lbl ^ " replay solved") b.solved r.solved;
          check_bool (lbl ^ " admission solved") b.solved a.solved;
          check_int (lbl ^ " replay attempts") b.attempts r.attempts;
          check_int (lbl ^ " admission attempts") b.attempts a.attempts;
          check_string (lbl ^ " replay first solution") (first_solution b) (first_solution r);
          check_string (lbl ^ " admission first solution") (first_solution b)
            (first_solution a);
          (* each mode uses only its own absorption channel *)
          check_int (lbl ^ " off prunes nothing") 0 b.pruned;
          check_int (lbl ^ " off suppresses nothing") 0 b.suppressed;
          check_int (lbl ^ " replay suppresses nothing") 0 r.suppressed;
          check_int (lbl ^ " admission prunes nothing") 0 a.pruned;
          (* the three modes partition the same pop sequence *)
          check_int (lbl ^ " replay pops partitioned") b.expansions (r.expansions + r.pruned);
          check_int (lbl ^ " admission pops partitioned") b.expansions
            (a.expansions + a.suppressed);
          check_int (lbl ^ " identical real work") r.expansions a.expansions;
          check_int (lbl ^ " identical doomed set") r.pruned a.suppressed;
          total_pruned := !total_pruned + r.pruned;
          total_suppressed := !total_suppressed + a.suppressed)
        off rep adm)
    [
      Stagg.Method_.stagg_td;
      Stagg.Method_.stagg_bu;
      Stagg.Method_.td_full_grammar;
      Stagg.Method_.bu_full_grammar;
    ];
  check_bool "replay pruned something" true (!total_pruned > 0);
  check_bool "admission suppressed something" true (!total_suppressed > 0)

(* The diagnostics kernels exercise the fail-fast path: with the analysis
   on, both prune modes must reject before any search, byte-identically. *)
let test_differential_diagnostics () =
  List.iter
    (fun (m : Stagg.Method_.t) ->
      let rep =
        Stagg.Pipeline.run_suite
          (Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_replay)
          Suite.diagnostics
      in
      let adm =
        Stagg.Pipeline.run_suite
          (Stagg.Method_.with_prune_mode m Stagg_search.Astar.Prune_admission)
          Suite.diagnostics
      in
      List.iter2
        (fun (r : Stagg.Result_.t) (a : Stagg.Result_.t) ->
          let lbl = m.label ^ "/" ^ r.bench in
          check_bool (lbl ^ " both unsolved") r.solved a.solved;
          check_int (lbl ^ " zero attempts") r.attempts a.attempts;
          check_bool (lbl ^ " same failure") true (r.failure = a.failure);
          check_int (lbl ^ " replay does no search") 0 (r.expansions + r.pruned + r.suppressed);
          check_int (lbl ^ " admission does no search") 0
            (a.expansions + a.pruned + a.suppressed))
        rep adm)
    [ Stagg.Method_.stagg_td; Stagg.Method_.stagg_bu ]

let () =
  Alcotest.run "stagg_analysis"
    [
      ("affine ring laws", ring_tests);
      ("affine substitution", subst_tests);
      ( "recover pointer walks",
        [
          Alcotest.test_case "p++" `Quick test_recover_post_increment;
          Alcotest.test_case "p += 2" `Quick test_recover_strided;
          Alcotest.test_case "nested walk (Fig. 2)" `Quick test_recover_nested_walk;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "linear coefficients" `Quick test_linear_coeff;
          Alcotest.test_case "GCD independence" `Quick test_gcd_independence;
          Alcotest.test_case "Banerjee independence" `Quick test_banerjee_independence;
          Alcotest.test_case "gemv classification" `Quick test_classify_gemv;
          Alcotest.test_case "scan stencil" `Quick test_classify_stencil;
        ] );
      ( "facts",
        [
          Alcotest.test_case "all 77 stay liftable" `Quick test_all_suite_liftable;
          Alcotest.test_case "diagnostics rejected" `Quick test_diagnostics_rejected;
          Alcotest.test_case "control position is not data" `Quick test_control_position_not_data;
        ] );
      ( "prune",
        [
          Alcotest.test_case "rules doomed" `Quick test_prune_dooms_rules;
          Alcotest.test_case "no facts, no dooming" `Quick test_prune_no_facts_no_dooming;
          Alcotest.test_case "arity clash tracking" `Quick test_prune_arity_clash;
        ] );
      ( "fail fast",
        [
          Alcotest.test_case "diagnostics rejected before search" `Quick test_fail_fast;
          Alcotest.test_case "--no-analysis reaches the search" `Quick test_no_analysis_searches;
        ] );
      ( "differential",
        [
          Alcotest.test_case "off/replay/admission are byte-identical" `Slow test_differential;
          Alcotest.test_case "prune modes agree on fail-fast kernels" `Quick
            test_differential_diagnostics;
        ] );
    ]
