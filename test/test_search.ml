(* Tests for stagg_search: partial derivation trees, penalties, and both
   A* enumerators. *)

open Stagg_grammar
open Stagg_search
module Ast = Stagg_taco.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse = Stagg_taco.Parser.parse_program_exn
let templates_of = List.map parse

let gemv_templates = templates_of [ "a(i) = b(i,j) * c(j)" ]
let gemv_grammar () = Gen_topdown.generate ~dim_list:[ 1; 2; 1 ] ~templates:gemv_templates

(* ---- Node ---- *)

let test_node_expansion () =
  let g = gemv_grammar () in
  let x0 = Node.initial g in
  check_bool "initially open" false (Node.is_complete x0);
  check_string "leftmost is start" "PROGRAM" (Option.get (Node.leftmost_open x0));
  let exps = Node.expansions g x0 in
  check_int "one PROGRAM rule" 1 (List.length exps);
  let _, x1 = List.hd exps in
  check_string "then EXPR" "EXPR" (Option.get (Node.leftmost_open x1))

let rec expand_first g x =
  match Node.expansions g x with [] -> x | (_, x') :: _ -> expand_first g x'

let test_node_to_program () =
  let g = gemv_grammar () in
  (* keep taking the first expansion until complete: PROGRAM -> a(i) = EXPR,
     EXPR -> TENSOR -> first tensor rule *)
  let x = expand_first g (Node.initial g) in
  check_bool "complete" true (Node.is_complete x);
  match Node.to_program g x with
  | Some p -> check_bool "prints" true (String.length (Stagg_taco.Pretty.program_to_string p) > 0)
  | None -> Alcotest.fail "to_program failed"

let test_node_depth_paper_examples () =
  (* §5.1: b(i) and c(i,j) have depth 1; b(i) + c(i,j) has depth 2 *)
  let g = gemv_grammar () in
  let leaf = Node.Leaf (Cfg.Tok_tensor ("b", [ "i" ])) in
  check_int "tensor leaf depth 1" 1 (Node.depth g leaf);
  (* build EXPR -> EXPR OP EXPR with tensor children through rule ids *)
  let bin_rule =
    List.find
      (fun (r : Cfg.rule) -> List.length r.rhs = 3 && r.lhs = "EXPR")
      (Cfg.rules_for g "EXPR")
  in
  let unit_rule = List.find (fun (r : Cfg.rule) -> List.length r.rhs = 1) (Cfg.rules_for g "EXPR") in
  let tensor_node t = Node.Node (unit_rule.id, [ Node.Leaf t ]) in
  let plus = Node.Leaf (Cfg.Tok_op Ast.Add) in
  let e =
    Node.Node
      ( bin_rule.id,
        [ tensor_node (Cfg.Tok_tensor ("b", [ "i" ])); plus; tensor_node (Cfg.Tok_tensor ("c", [ "i"; "j" ])) ] )
  in
  check_int "b(i) + c(i,j) depth 2" 2 (Node.depth g e);
  let nested = Node.Node (bin_rule.id, [ e; plus; tensor_node (Cfg.Tok_tensor ("b", [ "i" ])) ]) in
  check_int "nested depth 3" 3 (Node.depth g nested)

let test_node_metrics () =
  let g = gemv_grammar () in
  let x = expand_first g (Node.initial g) in
  let m = Node.metrics g x in
  check_bool "complete" true m.complete;
  check_int "tensors counted (lhs + rhs)" 2 m.n_tensors;
  check_int "unique symbols" 2 m.n_unique

let test_remove_tail () =
  let g = Gen_bottomup.generate ~dim_list:[ 0; 1; 1 ] ~templates:(templates_of [ "a = b(i) * c(i)" ]) in
  (* expand to: PROGRAM -> a = EXPR -> TENSOR2 TAIL1 -> b(i) TAIL1 — only
     the TAIL1 nonterminal remains open *)
  let x = Node.initial g in
  let _, x = List.hd (Node.expansions g x) in
  let _, x = List.hd (Node.expansions g x) in
  let _, x = List.hd (Node.expansions g x) in
  check_bool "tail open" true (not (Node.is_complete x));
  match Node.remove_tail g x with
  | Some complete -> (
      check_bool "closed" true (Node.is_complete complete);
      match Node.to_program g complete with
      | Some p -> check_string "one-tensor prefix" "a = b(i)" (Stagg_taco.Pretty.program_to_string p)
      | None -> Alcotest.fail "to_program")
  | None -> Alcotest.fail "remove_tail failed"

(* property: the incremental annotation carried through the A* queue agrees
   with a full rescan at every expansion, on random walks through top-down
   and bottom-up grammars (distinct_ops compared as sets — the incremental
   path may discover the same ops in a different first-appearance order) *)
let test_incremental_metrics_agree () =
  let grammars =
    [
      ("gemv td", gemv_grammar ());
      ( "multi td",
        Gen_topdown.generate ~dim_list:[ 1; 2; 1; 0 ]
          ~templates:
            (templates_of
               [ "a(i) = b(i,j) * c(j)"; "a(i) = b(i,j) * c(j) + d"; "a(i) = 2 * c(i)" ]) );
      ( "dot bu",
        Gen_bottomup.generate ~dim_list:[ 0; 1; 1 ]
          ~templates:(templates_of [ "a = b(i) * c(i)" ]) );
    ]
  in
  let seed = ref 20250806 in
  let next_int bound =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod bound
  in
  let sorted_ops m = List.sort compare m.Node.distinct_ops in
  List.iter
    (fun (label, g) ->
      let safe = Node.incremental_safe g in
      check_bool (label ^ ": grammar is incremental-safe") true safe;
      let fps = Node.fingerprints g in
      (* the top-down grammars carry static depth tables; the right-linear
         bottom-up one must be rejected (a TAIL's depth depends on ε) *)
      check_bool
        (label ^ ": depth-static iff top-down")
        (label <> "dot bu") (Node.depth_static fps);
      for _walk = 1 to 20 do
        let rec go ann x steps =
          if steps > 0 then
            match Node.expansions g x with
            | [] -> ()
            | exps ->
                List.iter
                  (fun ((r : Cfg.rule), x') ->
                    let inc = Node.expand_metrics fps ann r in
                    let scan = Node.annotate g fps x' in
                    let im = inc.Node.metrics and sm = scan.Node.metrics in
                    check_bool (label ^ ": leaves") true
                      (im.Node.tensor_leaves = sm.Node.tensor_leaves);
                    check_int (label ^ ": n_tensors") sm.Node.n_tensors im.Node.n_tensors;
                    check_int (label ^ ": n_unique") sm.Node.n_unique im.Node.n_unique;
                    check_bool (label ^ ": firsts_rev") true
                      (List.equal String.equal sm.Node.firsts_rev im.Node.firsts_rev);
                    check_bool (label ^ ": sorted_firsts") sm.Node.sorted_firsts
                      im.Node.sorted_firsts;
                    check_int (label ^ ": n_index_i") sm.Node.n_index_i im.Node.n_index_i;
                    check_bool (label ^ ": has_const_leaf") sm.Node.has_const_leaf
                      im.Node.has_const_leaf;
                    check_bool (label ^ ": distinct_ops") true (sorted_ops im = sorted_ops sm);
                    check_bool (label ^ ": complete") sm.Node.complete im.Node.complete;
                    check_int (label ^ ": n_open") scan.Node.n_open inc.Node.n_open;
                    check_bool (label ^ ": opens") true
                      (List.equal String.equal scan.Node.opens inc.Node.opens);
                    (* the rolling fingerprint must agree with a preorder
                       rescan of the child tree *)
                    check_bool (label ^ ": fp") true
                      (inc.Node.fp = scan.Node.fp && scan.Node.fp = Node.fingerprint fps x');
                    (* branching-ancestor paths agree with the full-scan
                       walk on every grammar; the carried depth must equal
                       a [Node.depth] rescan whenever the grammar's tables
                       are static (the only case searches read it) *)
                    check_bool (label ^ ": open_paths") true
                      (List.equal Int.equal scan.Node.open_paths inc.Node.open_paths);
                    if Node.depth_static fps then begin
                      check_int (label ^ ": depth") (Node.depth g x') inc.Node.depth;
                      check_int (label ^ ": depth scan") (Node.depth g x') scan.Node.depth
                    end)
                  exps;
                let r, x' = List.nth exps (next_int (List.length exps)) in
                go (Node.expand_metrics fps ann r) x' (steps - 1)
        in
        let x0 = Node.initial g in
        go (Node.annotate g fps x0) x0 12
      done)
    grammars

(* ---- penalties ---- *)

let ctx ?(enabled = Penalty.all_topdown) ?(dims = [ 1; 2; 1 ]) ?(ops = [ Ast.Mul ]) ?(const = false) () =
  { Penalty.dim_list = dims; ops_available = ops; grammar_has_const = const; enabled }

(* Build a consistent metrics record from a leaf list: the incremental
   fields (firsts_rev, sorted_firsts, n_index_i, n_unique) are derived
   the way a left-to-right scan would. *)
let mk_metrics ?(has_const = false) ?(ops = []) ~complete leaves =
  let firsts_rev =
    List.fold_left
      (fun acc (n, _) ->
        if String.equal n "Const" || List.mem n acc then acc else n :: acc)
      [] leaves
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
    | _ -> true
  in
  let const_sym = List.exists (fun (n, _) -> String.equal n "Const") leaves in
  {
    Node.tensor_leaves = leaves;
    n_tensors = List.length leaves;
    n_unique = (List.length firsts_rev + if const_sym then 1 else 0);
    firsts_rev;
    sorted_firsts = sorted (List.rev firsts_rev);
    n_index_i = List.length (List.filter (fun (_, idxs) -> List.mem "i" idxs) leaves);
    has_const_leaf = has_const;
    distinct_ops = ops;
    complete;
  }

let metrics_of_template g src =
  (* drive the search tree by hand is tedious; reuse Node.metrics on a tree
     built from a template via a tiny search *)
  ignore g;
  let p = parse src in
  let leaves =
    (fst p.Ast.lhs, snd p.Ast.lhs)
    :: List.map (fun (n, a) -> (n, List.init a (fun _ -> "i"))) []
  in
  ignore leaves;
  p

let test_penalty_a2 () =
  ignore metrics_of_template;
  let g = gemv_grammar () in
  let x = expand_first g (Node.initial g) in
  let m = Node.metrics g x in
  (* complete template with 2 unique tensors but |L| = 3 → +100 *)
  let score =
    Penalty.score (ctx ~enabled:[ Penalty.A2 ] ()) m ~program:(Node.to_program g x)
  in
  check_bool "a2 fires" true (score = 100.)

let test_penalty_a3_sorted () =
  let m =
    mk_metrics ~ops:[ Ast.Mul ] ~complete:true
      [ ("a", [ "i" ]); ("b", [ "i" ]); ("c", [ "i" ]) ]
  in
  check_bool "sorted ok" true (Penalty.score (ctx ~enabled:[ Penalty.A3 ] ()) m ~program:None = 0.);
  let bad = mk_metrics ~ops:[ Ast.Mul ] ~complete:true [ ("a", []); ("c", []); ("b", []) ] in
  check_bool "unsorted infinite" true
    (Penalty.score (ctx ~enabled:[ Penalty.A3 ] ()) bad ~program:None = infinity);
  (* gaps are fine: a then c (Const took b's slot) *)
  let gap =
    mk_metrics ~ops:[ Ast.Mul ] ~complete:true [ ("a", []); ("Const", []); ("c", []) ]
  in
  check_bool "gap ok" true (Penalty.score (ctx ~enabled:[ Penalty.A3 ] ()) gap ~program:None = 0.)

let test_penalty_a4 () =
  let m =
    mk_metrics ~ops:[ Ast.Add ] ~complete:true [ ("a", []); ("b", [ "i" ]); ("b", [ "i" ]) ]
  in
  let p_add = parse "a = b(i) + b(i)" in
  let p_mul = parse "a = b(i) * b(i)" in
  check_bool "b+b infinite" true
    (Penalty.score (ctx ~enabled:[ Penalty.A4 ] ()) m ~program:(Some p_add) = infinity);
  check_bool "b*b allowed" true
    (Penalty.score (ctx ~enabled:[ Penalty.A4 ] ()) { m with Node.distinct_ops = [ Ast.Mul ] }
       ~program:(Some p_mul)
    = 0.)

let test_penalty_a5_b2 () =
  let m = mk_metrics ~complete:true [ ("a", []); ("b", [ "i" ]) ] in
  (* no ops used, two available → fewer than half *)
  check_bool "a5 fires" true
    (Penalty.score (ctx ~enabled:[ Penalty.A5 ] ~ops:[ Ast.Mul; Ast.Add ] ~dims:[ 0; 1 ] ()) m
       ~program:None
    = infinity);
  check_bool "a5 ok when no ops available" true
    (Penalty.score (ctx ~enabled:[ Penalty.A5 ] ~ops:[] ~dims:[ 0; 1 ] ()) m ~program:None = 0.);
  check_bool "b2 fires at predicted length" true
    (Penalty.score (ctx ~enabled:[ Penalty.B2 ] ~ops:[ Ast.Mul; Ast.Add ] ~dims:[ 0; 1 ] ()) m
       ~program:None
    = infinity)

let test_penalty_a1 () =
  let m =
    mk_metrics ~ops:[ Ast.Add ] ~complete:false
      [ ("a", [ "i" ]); ("b", [ "i" ]); ("c", [ "j" ]); ("d", [ "j" ]) ]
  in
  (* grammar has Const, length > 3, fewer than 2 tensors with index i... the
     leaves have 2 with i, but no Const leaf → still fires via branch 2 *)
  check_bool "a1 fires" true
    (Penalty.score (ctx ~enabled:[ Penalty.A1 ] ~const:true ()) m ~program:None = 10.);
  check_bool "a1 silent without const grammar" true
    (Penalty.score (ctx ~enabled:[ Penalty.A1 ] ~const:false ()) m ~program:None = 0.)

let test_penalty_disabled () =
  let m = mk_metrics ~complete:true [ ("a", []); ("c", []); ("b", []) ] in
  check_bool "everything off scores 0" true
    (Penalty.score (ctx ~enabled:[] ()) m ~program:None = 0.)

(* ---- the searches ---- *)

let budget = { Astar.max_attempts = 5_000; max_expansions = 100_000; timeout_s = 10. }

let search_for target pcfg penalty_ctx =
  Astar.search_topdown ~pcfg ~penalty_ctx ~budget
    ~validate:(fun p ->
      if String.equal (Stagg_taco.Pretty.program_to_string p) target then Some p else None)
    ()

let test_topdown_finds_target () =
  let g = gemv_grammar () in
  let pcfg = Pcfg.of_weights g (Derive.weights_of_templates g gemv_templates) in
  let pctx = ctx () in
  match search_for "a(i) = b(i, j) * c(j)" pcfg pctx with
  | Astar.Solved (_, stats) -> check_bool "few attempts" true (stats.attempts <= 5)
  | _ -> Alcotest.fail "target not found"

let test_topdown_probabilities_guide () =
  (* with probabilities learned from b(j,i)-shaped candidates, the
     transposed template must be enumerated first; two copies so the
     learned counts dominate the default weight-1 smoothing of unused
     tensor rules (§4.3) *)
  let templates = templates_of [ "a(i) = b(j,i) * c(j)"; "a(i) = b(j,i) * c(j)" ] in
  let g = Gen_topdown.generate ~dim_list:[ 1; 2; 1 ] ~templates in
  let pcfg = Pcfg.of_weights g (Derive.weights_of_templates g templates) in
  let first = ref None in
  (match
     Astar.search_topdown ~pcfg ~penalty_ctx:(ctx ()) ~budget
       ~validate:(fun p ->
         if !first = None then first := Some (Stagg_taco.Pretty.program_to_string p);
         None)
       ()
   with
  | Astar.Solved _ -> Alcotest.fail "validator never accepts"
  | _ -> ());
  check_string "guided order" "a(i) = b(j, i) * c(j)" (Option.get !first)

let test_topdown_depth_limit () =
  let g = gemv_grammar () in
  let pcfg = Pcfg.uniform g in
  (* with max_depth 1 only single-tensor programs appear *)
  let seen = ref [] in
  (match
     Astar.search_topdown ~pcfg ~penalty_ctx:(ctx ~enabled:[] ()) ~max_depth:1
       ~budget:{ budget with max_attempts = 100 }
       ~validate:(fun p ->
         seen := Stagg_taco.Pretty.program_to_string p :: !seen;
         None)
       ()
   with
  | _ -> ());
  check_bool "no binary programs at depth 1" true
    (List.for_all (fun s -> not (String.contains s '*')) !seen)

let test_bottomup_finds_target () =
  let templates = templates_of [ "a = b(i) * c(i)" ] in
  let dim_list = [ 0; 1; 1 ] in
  let g = Gen_bottomup.generate ~dim_list ~templates in
  let pcfg = Pcfg.of_weights g (Derive.weights_of_templates g templates) in
  match
    Astar.search_bottomup ~pcfg
      ~penalty_ctx:(ctx ~enabled:Penalty.all_bottomup ~dims:dim_list ())
      ~dim_list ~budget
      ~validate:(fun p ->
        if String.equal (Stagg_taco.Pretty.program_to_string p) "a = b(i) * c(i)" then Some p
        else None)
      ()
  with
  | Astar.Solved _ -> ()
  | _ -> Alcotest.fail "bottom-up did not find the dot product"

let test_bottomup_cannot_nest () =
  (* right-nested target is outside the right-linear space: the search must
     exhaust, not loop *)
  let templates = templates_of [ "a(i) = b(i) + c * d(i)" ] in
  let dim_list = [ 1; 1; 0; 1 ] in
  let g = Gen_bottomup.generate ~dim_list ~templates in
  let pcfg = Pcfg.uniform g in
  match
    Astar.search_bottomup ~pcfg ~penalty_ctx:(ctx ~enabled:[] ~dims:dim_list ()) ~dim_list ~budget
      ~validate:(fun p ->
        if
          String.equal (Stagg_taco.Pretty.program_to_string p) "a(i) = b(i) + c * d(i)"
        then Some p
        else None)
      ()
  with
  | Astar.Solved _ -> Alcotest.fail "right-linear grammar cannot produce a right-nested AST"
  | Astar.Exhausted _ -> ()
  | Astar.Budget_exceeded _ -> Alcotest.fail "space should be finite"

let test_timeout_poll () =
  (* the wall clock is polled every 64 pops; with unbounded count caps and a
     near-zero timeout the search must stop at the first poll past the
     deadline — i.e. on a pop-count multiple of 64 — and report [Timeout] *)
  let g = Taco_grammar.generate ~n_rhs_tensors:3 ~max_rank:2 ~n_indices:3 () in
  let pcfg = Pcfg.uniform g in
  let budget = { Astar.max_attempts = max_int; max_expansions = max_int; timeout_s = 0.05 } in
  match
    Astar.search_topdown ~pcfg ~penalty_ctx:(ctx ~enabled:[] ()) ~budget
      ~validate:(fun _ -> None) ()
  with
  | Astar.Budget_exceeded (Astar.Timeout, st) ->
      check_bool "made progress before the deadline" true (st.expansions > 0);
      check_int "stopped on a poll boundary" 0 (st.expansions mod 64)
  | _ -> Alcotest.fail "expected a Timeout stop"

let test_search_dedup () =
  (* associativity makes EXPR OP EXPR ambiguous: b+c+d has two parses but
     must be validated at most... well, each distinct printed form once *)
  let templates = templates_of [ "a = b + c + d" ] in
  let g = Gen_topdown.generate ~dim_list:[ 0; 0; 0; 0 ] ~templates in
  let pcfg = Pcfg.uniform g in
  let seen = Hashtbl.create 16 in
  let dups = ref 0 in
  (match
     Astar.search_topdown ~pcfg ~penalty_ctx:(ctx ~enabled:[] ~dims:[ 0; 0; 0; 0 ] ())
       ~budget:{ budget with max_attempts = 300 }
       ~validate:(fun p ->
         let key = Stagg_taco.Pretty.program_to_string p in
         if Hashtbl.mem seen key then incr dups;
         Hashtbl.replace seen key ();
         None)
       ()
   with
  | _ -> ());
  check_int "no duplicate validations" 0 !dups

let () =
  Alcotest.run "stagg_search"
    [
      ( "node",
        [
          Alcotest.test_case "expansion" `Quick test_node_expansion;
          Alcotest.test_case "to_program" `Quick test_node_to_program;
          Alcotest.test_case "depth (§5.1 examples)" `Quick test_node_depth_paper_examples;
          Alcotest.test_case "metrics" `Quick test_node_metrics;
          Alcotest.test_case "remove_tail" `Quick test_remove_tail;
          Alcotest.test_case "incremental metrics agree with rescan" `Quick
            test_incremental_metrics_agree;
        ] );
      ( "penalty",
        [
          Alcotest.test_case "a1" `Quick test_penalty_a1;
          Alcotest.test_case "a2" `Quick test_penalty_a2;
          Alcotest.test_case "a3 sortedness" `Quick test_penalty_a3_sorted;
          Alcotest.test_case "a4 same-operand" `Quick test_penalty_a4;
          Alcotest.test_case "a5 and b2" `Quick test_penalty_a5_b2;
          Alcotest.test_case "disabled criteria" `Quick test_penalty_disabled;
        ] );
      ( "astar",
        [
          Alcotest.test_case "top-down finds target" `Quick test_topdown_finds_target;
          Alcotest.test_case "probabilities guide order" `Quick test_topdown_probabilities_guide;
          Alcotest.test_case "depth limit" `Quick test_topdown_depth_limit;
          Alcotest.test_case "bottom-up finds target" `Quick test_bottomup_finds_target;
          Alcotest.test_case "bottom-up cannot right-nest" `Quick test_bottomup_cannot_nest;
          Alcotest.test_case "duplicate templates validated once" `Quick test_search_dedup;
          Alcotest.test_case "timeout fires on a 64-pop poll boundary" `Quick test_timeout_poll;
        ] );
    ]
