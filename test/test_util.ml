(* Tests for stagg_util: Bigint, Rat, Pqueue, Pool, Prng. *)

open Stagg_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- Bigint ---- *)

let bi = Bigint.of_int

let test_bigint_basic () =
  check_string "zero" "0" (Bigint.to_string Bigint.zero);
  check_string "small" "42" (Bigint.to_string (bi 42));
  check_string "negative" "-42" (Bigint.to_string (bi (-42)));
  check_string "add" "100" (Bigint.to_string (Bigint.add (bi 58) (bi 42)));
  check_string "sub to negative" "-16" (Bigint.to_string (Bigint.sub (bi 42) (bi 58)));
  check_string "mul" "2436" (Bigint.to_string (Bigint.mul (bi 58) (bi 42)));
  check_bool "equal" true (Bigint.equal (bi 7) (bi 7));
  check_int "compare" (-1) (Bigint.compare (bi 3) (bi 4));
  check_int "sign neg" (-1) (Bigint.sign (bi (-9)));
  check_int "sign zero" 0 (Bigint.sign Bigint.zero)

let test_bigint_large () =
  (* values far beyond a 63-bit int *)
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  check_string "big add" "1111111110111111111011111111100" (Bigint.to_string (Bigint.add a b));
  check_string "big mul"
    "121932631137021795226185032733622923332237463801111263526900"
    (Bigint.to_string (Bigint.mul a b));
  check_string "string round trip" "123456789012345678901234567890" (Bigint.to_string a);
  check_bool "to_int overflows" true (Bigint.to_int a = None);
  check_int "to_int small" (-37) (Bigint.to_int_exn (bi (-37)))

let test_bigint_divmod () =
  let q, r = Bigint.divmod (bi 17) (bi 5) in
  check_string "q" "3" (Bigint.to_string q);
  check_string "r" "2" (Bigint.to_string r);
  (* truncated division: remainder takes the dividend's sign *)
  let q, r = Bigint.divmod (bi (-17)) (bi 5) in
  check_string "q neg" "-3" (Bigint.to_string q);
  check_string "r neg" "-2" (Bigint.to_string r);
  let q, r = Bigint.divmod (bi 17) (bi (-5)) in
  check_string "q negdiv" "-3" (Bigint.to_string q);
  check_string "r negdiv" "2" (Bigint.to_string r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod (bi 1) Bigint.zero))

let test_bigint_gcd_pow () =
  check_string "gcd" "6" (Bigint.to_string (Bigint.gcd (bi 54) (bi (-24))));
  check_string "gcd zero" "5" (Bigint.to_string (Bigint.gcd Bigint.zero (bi 5)));
  check_string "pow" "1024" (Bigint.to_string (Bigint.pow (bi 2) 10));
  check_string "pow zero exp" "1" (Bigint.to_string (Bigint.pow (bi 99) 0));
  check_string "pow of ten" "100000000000000000000" (Bigint.to_string (Bigint.pow (bi 10) 20))

let arb_int_pair = QCheck.pair (QCheck.int_range (-1_000_000) 1_000_000) (QCheck.int_range (-1_000_000) 1_000_000)

let qcheck_bigint_ring =
  QCheck.Test.make ~name:"bigint agrees with native int arithmetic" ~count:500 arb_int_pair
    (fun (a, b) ->
      Bigint.to_int_exn (Bigint.add (bi a) (bi b)) = a + b
      && Bigint.to_int_exn (Bigint.mul (bi a) (bi b)) = a * b
      && Bigint.to_int_exn (Bigint.sub (bi a) (bi b)) = a - b
      && Bigint.compare (bi a) (bi b) = compare a b)

let qcheck_bigint_divmod =
  QCheck.Test.make ~name:"bigint divmod satisfies a = q*b + r, |r| < |b|" ~count:500
    (QCheck.pair (QCheck.int_range (-1_000_000_000) 1_000_000_000) (QCheck.int_range 1 100_000))
    (fun (a, b) ->
      let q, r = Bigint.divmod (bi a) (bi b) in
      Bigint.equal (bi a) (Bigint.add (Bigint.mul q (bi b)) r)
      && Bigint.compare (Bigint.abs r) (bi b) < 0)

let qcheck_bigint_string =
  QCheck.Test.make ~name:"bigint string round trip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let normalized =
        let s' = ref 0 in
        while !s' < String.length s - 1 && s.[!s'] = '0' do
          incr s'
        done;
        String.sub s !s' (String.length s - !s')
      in
      String.equal (Bigint.to_string (Bigint.of_string s)) normalized)

(* ---- Rat ---- *)

let r = Rat.of_ints

let test_rat_normalization () =
  check_string "reduced" "2/3" (Rat.to_string (r 4 6));
  check_string "sign in numerator" "-2/3" (Rat.to_string (r 4 (-6)));
  check_string "integer denominator folded" "5" (Rat.to_string (r 10 2));
  check_string "zero canonical" "0" (Rat.to_string (r 0 (-7)));
  check_bool "equality structural after normalization" true (Rat.equal (r 1 2) (r 2 4))

let test_rat_arith () =
  check_string "add" "5/6" (Rat.to_string (Rat.add (r 1 2) (r 1 3)));
  check_string "mul" "1/6" (Rat.to_string (Rat.mul (r 1 2) (r 1 3)));
  check_string "div" "3/2" (Rat.to_string (Rat.div (r 1 2) (r 1 3)));
  check_string "sub" "1/6" (Rat.to_string (Rat.sub (r 1 2) (r 1 3)));
  check_bool "compare" true (Rat.compare (r 1 3) (r 1 2) < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Rat.div Rat.one Rat.zero))

let arb_rat =
  QCheck.map
    (fun (n, d) -> r n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range (-50) 50))

let qcheck_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:300 (QCheck.triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c))
      && Rat.equal (Rat.add a (Rat.neg a)) Rat.zero
      && (Rat.is_zero a || Rat.equal (Rat.mul a (Rat.inv a)) Rat.one))

let qcheck_rat_compare_consistent =
  QCheck.Test.make ~name:"rat compare consistent with subtraction sign" ~count:300
    (QCheck.pair arb_rat arb_rat) (fun (a, b) -> Rat.compare a b = Rat.sign (Rat.sub a b))

(* ---- Pqueue ---- *)

let test_pqueue_order () =
  let q = Pqueue.create ~dummy:"" in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let drain () =
    let rec go acc = match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> go (v :: acc) in
    go []
  in
  Alcotest.(check (list string)) "sorted by priority" [ "z"; "a"; "b"; "c" ] (drain ())

let test_pqueue_fifo_ties () =
  let q = Pqueue.create ~dummy:0 in
  List.iter (fun v -> Pqueue.push q 1. v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc = match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc) in
  Alcotest.(check (list int)) "equal priorities drain FIFO" [ 1; 2; 3; 4; 5 ] (drain [])

let qcheck_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue drains in nondecreasing priority" ~count:200
    (QCheck.list (QCheck.float_bound_exclusive 1000.))
    (fun prios ->
      let q = Pqueue.create ~dummy:0. in
      List.iter (fun p -> Pqueue.push q p p) prios;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      List.length out = List.length prios
      && (List.sort compare out = out))

let drain_payloads q =
  let rec go acc = match Pqueue.pop q with None -> List.rev acc | Some (_, v) -> go (v :: acc) in
  go []

(* a small priority alphabet forces plenty of ties *)
let arb_small_prios = QCheck.list (QCheck.int_range 0 3)

let qcheck_pqueue_fifo_ties =
  QCheck.Test.make ~name:"pqueue breaks equal priorities FIFO (stable drain)" ~count:300
    arb_small_prios
    (fun prios ->
      let q = Pqueue.create ~dummy:(0, 0) in
      List.iteri (fun i p -> Pqueue.push q (float_of_int p) (p, i)) prios;
      (* stable sort of (prio, insertion index) by prio = expected drain *)
      let expected = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.mapi (fun i p -> (p, i)) prios) in
      drain_payloads q = expected)

let qcheck_pqueue_roundtrip =
  QCheck.Test.make ~name:"pqueue push/pop round-trips the payload multiset" ~count:300
    (QCheck.list (QCheck.pair (QCheck.float_bound_exclusive 100.) QCheck.small_int))
    (fun entries ->
      let q = Pqueue.create ~dummy:0 in
      List.iter (fun (p, v) -> Pqueue.push q p v) entries;
      let n = List.length entries in
      Pqueue.length q = n
      && List.sort compare (drain_payloads q) = List.sort compare (List.map snd entries)
      && Pqueue.is_empty q
      && Pqueue.pop q = None)

let test_pqueue_push_seq () =
  let q = Pqueue.create ~dummy:"" in
  Pqueue.push_seq q 1. 5 "b";
  Pqueue.push_seq q 1. 2 "a";
  Pqueue.push_seq q 0.5 9 "z";
  (* head accessors observe priority and tie-break without popping *)
  Alcotest.(check (float 0.)) "top_prio" 0.5 (Pqueue.top_prio q);
  check_int "top_seq" 9 (Pqueue.top_seq q);
  (* equal priorities order by the CALLER-supplied sequence, not insertion *)
  Alcotest.(check (list string)) "seq tie-break" [ "z"; "a"; "b" ] (drain_payloads q)

(* Heap-order property under INTERLEAVED push/pop (the drain-only
   properties above never exercise pops of a partially filled heap after
   the backing array has gone through grow/shrink cycles). Reference
   model: a sorted list keyed by (priority, arrival index) — priority
   monotonicity and FIFO tie-break in one comparison. *)
let qcheck_pqueue_interleaved =
  QCheck.Test.make ~name:"pqueue matches reference model under interleaved push/pop" ~count:400
    (QCheck.list (QCheck.option (QCheck.int_range 0 4)))
    (fun ops ->
      let q = Pqueue.create ~dummy:(-1, -1) in
      let model = ref [] in
      (* ascending (prio, seq) *)
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some p ->
              let v = (p, !seq) in
              incr seq;
              Pqueue.push q (float_of_int p) v;
              model := List.merge compare !model [ v ]
          | None -> (
              match (Pqueue.pop q, !model) with
              | None, [] -> ()
              | Some (_, v), m :: rest when v = m -> model := rest
              | _ -> ok := false))
        ops;
      !ok && Pqueue.length q = List.length !model)

(* Retention regression: a popped value must become unreachable once the
   caller drops it. Before slots were cleared to [dummy] on pop (and
   [grow] stopped filling fresh capacity with a live element), the
   backing array pinned every popped value until it was overwritten by a
   later push — on an A* frontier, dead search trees by the thousand. *)
let test_pqueue_no_retention () =
  let n = 64 in
  let q = Pqueue.create ~dummy:(ref (-1)) in
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let v = ref i in
    Weak.set w i (Some v);
    Pqueue.push q (float_of_int i) v
  done;
  while not (Pqueue.is_empty q) do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  check_int "popped values unreachable" 0 !live

(* ---- Pool ---- *)

let qcheck_pool_map_ordered =
  QCheck.Test.make ~name:"pool map agrees with List.map for any jobs" ~count:50
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.list QCheck.small_int))
    (fun (jobs, xs) ->
      let f x = (x * 31) + 7 in
      Pool.map ~jobs f xs = List.map f xs)

let test_pool_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" Exit (fun () ->
      ignore (Pool.map ~jobs:3 (fun x -> if x = 4 then raise Exit else x) [ 1; 2; 3; 4; 5 ]))

(* Poison regression: after a task raises, no worker may CLAIM further
   tasks (in-flight ones finish). Task 0 raises; every other task spins
   until the poison has been thrown, so only tasks already claimed at
   that moment can complete — with 2 workers that is at most 1. Before
   the cursor was parked past the end on failure, the surviving worker
   drained all remaining tasks. *)
let test_pool_poison_stops_claiming () =
  let poisoned = Atomic.make false in
  let ran = Atomic.make 0 in
  let task i =
    if i = 0 then begin
      Atomic.set poisoned true;
      raise Exit
    end
    else begin
      while not (Atomic.get poisoned) do
        Domain.cpu_relax ()
      done;
      Atomic.incr ran;
      i
    end
  in
  Alcotest.check_raises "poison re-raised" Exit (fun () ->
      ignore (Pool.map ~jobs:2 task (List.init 32 Fun.id)));
  check_bool "claiming stopped after poison" true (Atomic.get ran <= 1)

let test_pool_map_reduce () =
  let sum =
    Pool.map_reduce ~jobs:4 ~map:(fun x -> x * x) ~init:0 ~reduce:( + ) [ 1; 2; 3; 4; 5 ]
  in
  check_int "sum of squares" 55 sum;
  (* in-order reduction: string concatenation is order-sensitive *)
  let cat =
    Pool.map_reduce ~jobs:4 ~map:string_of_int ~init:"" ~reduce:( ^ ) [ 1; 2; 3; 4; 5 ]
  in
  check_string "ordered reduce" "12345" cat

(* ---- Pool: the helper-domain budget ---- *)

let test_pool_budget_accounting () =
  Pool.with_budget 5 (fun () ->
      check_int "budget set" 5 (Pool.budget ());
      let got = Pool.claim ~max:3 in
      check_int "claim grants up to max" 3 got;
      check_int "claim debits" 2 (Pool.budget ());
      (* explicit (claim_exact) requests may overdraw — the budget floor
         is 0, and release pays the debt back *)
      Pool.claim_exact 4;
      check_int "overdrawn budget reads 0" 0 (Pool.budget ());
      check_int "no grants while overdrawn" 0 (Pool.claim ~max:2);
      Pool.release 4;
      check_int "release restores" 2 (Pool.budget ());
      Pool.release 3;
      check_int "fully restored" 5 (Pool.budget ()));
  Pool.with_budget 7 (fun () -> check_int "nested budget visible" 7 (Pool.budget ()))

let test_pool_budget_restored () =
  let before = Pool.budget () in
  (try Pool.with_budget 3 (fun () -> raise Exit) with Exit -> ());
  check_int "with_budget restores on raise" before (Pool.budget ())

(* Restore-race regression: a claim made while [with_budget]'s body runs
   must survive the restore. The old restore blindly overwrote the
   counter with the saved value, erasing the claim — the racing claimer
   would later [release] into a counter that never recorded its debit,
   inflating the budget for the rest of the process. *)
let test_pool_with_budget_restore_compensates () =
  Pool.with_budget 8 (fun () ->
      Pool.with_budget 4 (fun () -> Pool.claim_exact 3);
      check_int "outstanding claim survives the restore" 5 (Pool.budget ());
      Pool.release 3;
      check_int "balanced once the claimer releases" 8 (Pool.budget ());
      (* fast path: an undisturbed region restores exactly *)
      Pool.with_budget 2 (fun () -> check_int "inner budget visible" 2 (Pool.budget ()));
      check_int "undisturbed restore is exact" 8 (Pool.budget ()))

let test_pool_with_budget_racing_claimer () =
  Pool.with_budget 10 (fun () ->
      let claimed = Atomic.make false in
      Pool.with_budget 6 (fun () ->
          let d =
            Domain.spawn (fun () ->
                Pool.claim_exact 2;
                Atomic.set claimed true)
          in
          while not (Atomic.get claimed) do
            Domain.cpu_relax ()
          done;
          Domain.join d);
      check_int "claim from another domain survives the restore" 8 (Pool.budget ());
      Pool.release 2;
      check_int "balanced once the claimer releases" 10 (Pool.budget ()))

(* Oversubscription regression: with a zero budget, a DEFAULT-jobs map
   must run entirely on the calling domain (no helper spawn), and nested
   default maps under an explicit outer map must clamp to sequential
   because the outer map already debited the only helper slot. Before
   the budget existed, [run_suite ~jobs:N] nested over parallel searches
   would spawn jobs × K domains. *)
let test_pool_budget_clamps_default_jobs () =
  Pool.with_budget 0 (fun () ->
      let self = Domain.self () in
      let helper_ran = Atomic.make false in
      let r =
        Pool.map
          (fun x ->
            if Domain.self () <> self then Atomic.set helper_ran true;
            x * 2)
          (List.init 64 Fun.id)
      in
      check_bool "zero budget: all tasks on the caller" false (Atomic.get helper_ran);
      check_bool "map still correct" true (r = List.init 64 (fun i -> i * 2)))

let test_pool_nested_defaults_clamp () =
  Pool.with_budget 1 (fun () ->
      let inner_helpers = Atomic.make 0 in
      let outer =
        Pool.map ~jobs:2
          (fun x ->
            let self = Domain.self () in
            ignore
              (Pool.map
                 (fun y ->
                   if Domain.self () <> self then Atomic.incr inner_helpers;
                   y)
                 (List.init 16 Fun.id));
            x)
          [ 1; 2; 3; 4 ]
      in
      check_bool "outer map correct" true (outer = [ 1; 2; 3; 4 ]);
      check_int "inner default maps spawned no helpers" 0 (Atomic.get inner_helpers));
  check_bool "explicit jobs honored outside any budget" true
    (Pool.map ~jobs:3 (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

(* ---- Frontier ---- *)

let qcheck_frontier_matches_single_queue =
  QCheck.Test.make
    ~name:"sharded frontier pops like one queue, any shard count" ~count:200
    QCheck.(pair (int_range 1 5) (small_list (pair (int_range 0 3) small_int)))
    (fun (k, xs) ->
      (* priorities from a tiny range force heavy ties, exercising the
         (prio, seq) lexicographic cross-shard comparison *)
      let fr = Frontier.create ~dummy:(-1) ~shards:k in
      let q = Pqueue.create ~dummy:(-1) in
      List.iteri
        (fun i (p, v) ->
          let prio = float_of_int p in
          Frontier.push fr prio i v;
          Pqueue.push_seq q prio i v)
        xs;
      let rec drain acc =
        match Frontier.pop fr with
        | None -> List.rev acc
        | Some (p, s, v) -> drain ((p, s, v) :: acc)
      in
      let rec drain_q acc =
        if Pqueue.is_empty q then List.rev acc
        else
          let s = Pqueue.top_seq q in
          match Pqueue.pop q with
          | Some (p, v) -> drain_q ((p, s, v) :: acc)
          | None -> assert false
      in
      drain [] = drain_q [])

(* interleaved pushes and pops against a single queue, with tops checked
   before each pop *)
let qcheck_frontier_interleaved =
  QCheck.Test.make ~name:"frontier interleaved push/pop matches single queue" ~count:200
    QCheck.(pair (int_range 1 4) (small_list (pair bool (int_range 0 3))))
    (fun (k, ops) ->
      let fr = Frontier.create ~dummy:(-1) ~shards:k in
      let q = Pqueue.create ~dummy:(-1) in
      let seq = ref 0 in
      List.for_all
        (fun (is_pop, p) ->
          if is_pop then begin
            let same_top =
              Frontier.is_empty fr = Pqueue.is_empty q
              && (Pqueue.is_empty q
                 || Frontier.top_prio fr = Pqueue.top_prio q
                    && Frontier.top_seq fr = Pqueue.top_seq q)
            in
            let fp = Frontier.pop fr in
            let qp =
              if Pqueue.is_empty q then None
              else
                let s = Pqueue.top_seq q in
                Option.map (fun (prio, v) -> (prio, s, v)) (Pqueue.pop q)
            in
            same_top && fp = qp
          end
          else begin
            let prio = float_of_int p in
            Frontier.push fr prio !seq !seq;
            Pqueue.push_seq q prio !seq !seq;
            incr seq;
            Frontier.length fr = Pqueue.length q
          end)
        ops)

(* ---- Fpset ---- *)

let test_fpset_check_add () =
  let s = Fpset.create () in
  check_bool "absent before add" false (Fpset.mem s 42);
  check_bool "first check_add reports absent" false (Fpset.check_add s 42);
  check_bool "present after add" true (Fpset.mem s 42);
  check_bool "second check_add reports present" true (Fpset.check_add s 42);
  for i = 0 to 99 do
    ignore (Fpset.check_add s (i * 7919))
  done;
  let missing = ref 0 in
  for i = 0 to 99 do
    if not (Fpset.mem s (i * 7919)) then incr missing
  done;
  check_int "all stripes retain members" 0 !missing

(* Multi-domain stress: D domains hammer [check_add] over the same key
   workload (each in a different order) behind a start barrier. The set
   contract must hold regardless of interleaving:
     - exactly-once winners: for every distinct key, exactly one
       [check_add] call across all domains reported "absent";
     - no lost inserts: every key is a member once all domains join;
     - no false positives: keys never inserted stay non-members. *)
let qcheck_fpset_parallel =
  let universe = 100 in
  QCheck.Test.make ~name:"fpset: parallel check_add keeps set semantics" ~count:25
    (QCheck.list_of_size (QCheck.Gen.return 300) (QCheck.int_range 0 (universe - 1)))
    (fun keys ->
      QCheck.assume (keys <> []);
      let s = Fpset.create () in
      let arr = Array.of_list keys in
      let n = Array.length arr in
      let domains = 4 in
      let wins = Array.init domains (fun _ -> Array.make universe 0) in
      let started = Atomic.make 0 in
      let body d () =
        Atomic.incr started;
        while Atomic.get started < domains do
          Domain.cpu_relax ()
        done;
        for i = 0 to n - 1 do
          (* rotate the workload per domain so claims collide *)
          let k = arr.((i + (d * n / domains)) mod n) in
          if not (Fpset.check_add s k) then wins.(d).(k) <- wins.(d).(k) + 1
        done
      in
      let ds = List.init (domains - 1) (fun d -> Domain.spawn (body (d + 1))) in
      body 0 ();
      List.iter Domain.join ds;
      let inserted = Array.make universe false in
      Array.iter (fun k -> inserted.(k) <- true) arr;
      let ok = ref true in
      for k = 0 to universe - 1 do
        let total = Array.fold_left (fun acc w -> acc + w.(k)) 0 wins in
        if inserted.(k) then begin
          if total <> 1 then ok := false;
          if not (Fpset.mem s k) then ok := false
        end
        else begin
          if total <> 0 then ok := false;
          if Fpset.mem s k then ok := false
        end
      done;
      !ok)

(* Kill-mid-request (PR 10): a serve request claims a pool slot, runs,
   and may die on any path — C parse error, search exception, timeout.
   The server pairs every [claim_exact] with a [Fun.protect]ed release;
   this pins the discipline at the pool level, including an exception
   that crosses a domain join (the killed-worker shape). *)
let test_pool_claim_release_on_kill () =
  Pool.with_budget 6 (fun () ->
      let handle die () =
        Pool.claim_exact 1;
        Fun.protect
          ~finally:(fun () -> Pool.release 1)
          (fun () -> if die then raise Exit else ())
      in
      (try handle true () with Exit -> ());
      check_int "claim released when the handler raises" 6 (Pool.budget ());
      handle false ();
      check_int "claim released on the normal path" 6 (Pool.budget ());
      let d = Domain.spawn (fun () -> try handle true () with Exit -> ()) in
      Domain.join d;
      check_int "claim released when a worker domain dies mid-request" 6 (Pool.budget ()))

(* ---- Lru ---- *)

let test_lru_basic () =
  let l = Lru.create ~cap:2 in
  check_int "capacity recorded" 2 (Lru.capacity l);
  check_bool "fresh add evicts nothing" true (Lru.add l "a" 1 = None);
  check_bool "fresh add evicts nothing" true (Lru.add l "b" 2 = None);
  check_bool "find returns the value" true (Lru.find l "a" = Some 1);
  (* "a" was just promoted, so the third insert displaces "b" *)
  check_bool "over-cap add evicts the LRU entry" true (Lru.add l "c" 3 = Some ("b", 2));
  check_bool "evicted key gone" true (Lru.find l "b" = None);
  check_bool "promoted key survives" true (Lru.find l "a" = Some 1);
  check_int "length at cap" 2 (Lru.length l)

let test_lru_replace_and_remove () =
  let l = Lru.create ~cap:2 in
  ignore (Lru.add l "a" 1);
  ignore (Lru.add l "b" 2);
  (* replacing a resident key is not an insertion: nothing may be evicted *)
  check_bool "replacement evicts nothing" true (Lru.add l "a" 10 = None);
  check_bool "replacement updates the value" true (Lru.find l "a" = Some 10);
  check_int "replacement keeps the length" 2 (Lru.length l);
  Lru.remove l "a";
  check_bool "removed key gone" true (Lru.find l "a" = None);
  check_int "length after remove" 1 (Lru.length l);
  check_bool "room after remove: no eviction" true (Lru.add l "c" 3 = None);
  check_bool "back at cap: oldest goes" true (Lru.add l "d" 4 = Some ("b", 2));
  check_bool "mem does not promote" true (Lru.mem l "c");
  check_bool "mem left c as LRU" true (Lru.add l "e" 5 = Some ("c", 3))

let qcheck_lru_model =
  (* differential against a naive model: a bounded assoc list with
     move-to-front on find and tail-drop on overflow *)
  QCheck.Test.make ~name:"lru: matches the move-to-front model" ~count:200
    QCheck.(list (pair (int_range 0 9) (option (int_range 0 99))))
    (fun ops ->
      let cap = 4 in
      let l = Lru.create ~cap in
      let model = ref [] in
      List.for_all
        (fun (k, op) ->
          match op with
          | Some v ->
              let evicted = Lru.add l k v in
              let without = List.remove_assoc k !model in
              let resident = List.mem_assoc k !model in
              model := (k, v) :: without;
              let expect =
                if resident || List.length !model <= cap then None
                else begin
                  match List.rev !model with
                  | (ek, ev) :: _ ->
                      model := List.filter (fun (k', _) -> k' <> ek) !model;
                      Some (ek, ev)
                  | [] -> None
                end
              in
              evicted = expect && Lru.length l = List.length !model
          | None -> (
              match (Lru.find l k, List.assoc_opt k !model) with
              | None, None -> true
              | Some v, Some v' when v = v' ->
                  model := (k, v) :: List.remove_assoc k !model;
                  true
              | _ -> false))
        ops)

(* ---- Prng ---- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:17 and b = Prng.create ~seed:17 in
  let seq t = List.init 20 (fun _ -> Prng.int t 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Prng.create ~seed:18 in
  check_bool "different seed, different stream" false (seq (Prng.create ~seed:17) = seq c)

let test_prng_bounds () =
  let t = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int t 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_range t (-3) 4 in
    if v < -3 || v > 4 then Alcotest.fail "range out of bounds"
  done;
  for _ = 1 to 100 do
    let f = Prng.float t in
    if f < 0. || f >= 1. then Alcotest.fail "float out of bounds"
  done

let test_prng_shuffle_choose () =
  let t = Prng.create ~seed:11 in
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let shuffled = Prng.shuffle t xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs (List.sort compare shuffled);
  for _ = 1 to 50 do
    if not (List.mem (Prng.choose t xs) xs) then Alcotest.fail "choose outside list"
  done;
  Alcotest.check_raises "choose on empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose t ([] : int list)))

let test_prng_split () =
  let t = Prng.create ~seed:3 in
  let s1 = Prng.split t in
  let s2 = Prng.split t in
  let seq t = List.init 10 (fun _ -> Prng.int t 1_000_000) in
  check_bool "split streams differ" false (seq s1 = seq s2)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_util"
    [
      ( "bigint",
        [
          Alcotest.test_case "basic" `Quick test_bigint_basic;
          Alcotest.test_case "large values" `Quick test_bigint_large;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "gcd and pow" `Quick test_bigint_gcd_pow;
          qc qcheck_bigint_ring;
          qc qcheck_bigint_divmod;
          qc qcheck_bigint_string;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          qc qcheck_rat_field;
          qc qcheck_rat_compare_consistent;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "FIFO tie-breaking" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "caller-supplied sequences" `Quick test_pqueue_push_seq;
          Alcotest.test_case "no retention of popped values" `Quick test_pqueue_no_retention;
          qc qcheck_pqueue_sorted;
          qc qcheck_pqueue_fifo_ties;
          qc qcheck_pqueue_roundtrip;
          qc qcheck_pqueue_interleaved;
        ] );
      ( "pool",
        [
          qc qcheck_pool_map_ordered;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "poison stops claiming" `Quick test_pool_poison_stops_claiming;
          Alcotest.test_case "ordered map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "budget accounting" `Quick test_pool_budget_accounting;
          Alcotest.test_case "budget restored on raise" `Quick test_pool_budget_restored;
          Alcotest.test_case "restore compensates racing claims" `Quick
            test_pool_with_budget_restore_compensates;
          Alcotest.test_case "restore survives a racing domain" `Quick
            test_pool_with_budget_racing_claimer;
          Alcotest.test_case "zero budget clamps default jobs" `Quick
            test_pool_budget_clamps_default_jobs;
          Alcotest.test_case "nested defaults clamp" `Quick test_pool_nested_defaults_clamp;
          Alcotest.test_case "claim released on kill-mid-request" `Quick
            test_pool_claim_release_on_kill;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic add/find/evict" `Quick test_lru_basic;
          Alcotest.test_case "replace and remove" `Quick test_lru_replace_and_remove;
          qc qcheck_lru_model;
        ] );
      ( "frontier",
        [ qc qcheck_frontier_matches_single_queue; qc qcheck_frontier_interleaved ] );
      ( "fpset",
        [
          Alcotest.test_case "check_add semantics" `Quick test_fpset_check_add;
          QCheck_alcotest.to_alcotest qcheck_fpset_parallel;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle and choose" `Quick test_prng_shuffle_choose;
          Alcotest.test_case "split" `Quick test_prng_split;
        ] );
    ]
