(* Differential and end-to-end battery for the trace-guided candidate
   oracle (Stagg_oracle.Trace).

   The load-bearing property is the QCheck differential: the symbolic DAG
   the tracing domain records for every output cell, evaluated at concrete
   inputs, must equal what the rational-domain interpreter computes on the
   same inputs bit for bit. Everything downstream (skeleton extraction,
   the Trace/Trace+LLM method rows) rests on that faithfulness. *)

module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench
module Trace = Stagg_oracle.Trace
module Sign = Stagg_minic.Signature
module Rat = Stagg_util.Rat
module Prng = Stagg_util.Prng
module RI = Stagg_minic.Interp.Make (Stagg_util.Value.Rat_value)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let bench name = Option.get (Suite.find name)
let skeletons_of b = Trace.skeletons (Bench.func b) b.Bench.signature

(* ---- QCheck differential: traced DAGs vs the rational interpreter ---- *)

(* One trial: pick a suite kernel and a salt; trace it at random small
   sizes, then run the concrete interpreter at random data over the SAME
   sizes and check every output cell against its DAG. Kernels the tracer
   refuses contribute nothing here (their refusals are unit-tested below);
   concrete runs that fail (e.g. a random zero divisor in [hi - lo]) are
   discarded, not failed. *)
let qcheck_dag_matches_interp =
  let arb =
    QCheck.make
      QCheck.Gen.(pair (int_bound (List.length Suite.all - 1)) (int_bound 1_000_000))
      ~print:(fun (i, salt) ->
        Printf.sprintf "%s / salt %d" (List.nth Suite.all i).Bench.name salt)
  in
  QCheck.Test.make ~name:"traced DAG evaluates bit-for-bit like the rational interpreter"
    ~count:150 arb (fun (i, salt) ->
      let b = List.nth Suite.all i in
      let func = Bench.func b in
      let prng = Prng.create ~seed:(salt + 1) in
      let sizes =
        List.map (fun nm -> (nm, 2 + Prng.int prng 3)) (Sign.size_names b.signature)
      in
      match Trace.trace_cells func b.signature ~sizes with
      | Error _ -> true
      | Ok dags ->
          let rand_cell () =
            let v = 1 + Prng.int prng 9 in
            Rat.of_int (if Prng.bool prng then v else -v)
          in
          (* initial contents of EVERY parameter, the output buffer
             included — accumulating kernels read it, and the DAG's leaves
             name those initial cells explicitly *)
          let inputs =
            List.map
              (fun (p, spec) ->
                match spec with
                | Sign.Size nm -> (p, [| Rat.of_int (List.assoc nm sizes) |])
                | Sign.Scalar_data -> (p, [| rand_cell () |])
                | Sign.Arr _ ->
                    (p, Array.init (Sign.n_cells ~sizes spec) (fun _ -> rand_cell ())))
              b.signature.args
          in
          let args =
            List.map
              (fun (p, spec) ->
                let cells = List.assoc p inputs in
                match spec with
                | Sign.Size _ | Sign.Scalar_data -> RI.Scalar cells.(0)
                | Sign.Arr _ -> RI.Array (Array.copy cells))
              b.signature.args
          in
          match RI.run func ~args with
          | Error _ -> QCheck.assume_fail ()
          | Ok () ->
              let out_cells =
                let rec go specs args =
                  match (specs, args) with
                  | (p, _) :: _, a :: _ when p = b.signature.out -> (
                      match a with RI.Array c -> c | RI.Scalar v -> [| v |])
                  | _ :: ss, _ :: aa -> go ss aa
                  | _ -> assert false
                in
                go b.signature.args args
              in
              Array.length dags = Array.length out_cells
              && Array.for_all2
                   (fun dag cell -> Rat.equal (Trace.eval_dag ~inputs dag) cell)
                   dags out_cells)

(* ---- skeleton extraction over the artificial suite ---- *)

let test_artificial_skeletons () =
  List.iter
    (fun (b : Bench.t) ->
      match skeletons_of b with
      | Ok (_ :: _) -> ()
      | Ok [] -> Alcotest.failf "%s: empty skeleton list" b.name
      | Error r -> Alcotest.failf "%s: refused: %s" b.name (Trace.refusal_to_string r))
    Suite.artificial

(* ---- pinned end-to-end: the Trace method row, no LLM in the loop ---- *)

let test_trace_solves_artificial () =
  List.iter
    (fun (b : Bench.t) ->
      let r = Stagg.Pipeline.run Stagg.Method_.td_trace b in
      check_string (b.name ^ " label") "Trace" r.Stagg.Result_.method_label;
      check_bool (b.name ^ " solved by Trace") true r.solved;
      check_bool (b.name ^ " traced") true r.traced;
      check_bool (b.name ^ " emitted templates") true (r.trace_templates >= 1))
    Suite.artificial

let test_trace_refuses_diagnostics_e2e () =
  (* with the static fail-fast on, the analysis rejects these before the
     oracle is ever consulted — run with it off so the refusal itself is
     what surfaces, as a structured failure, never a panic or a template *)
  let m = { Stagg.Method_.td_trace with analysis = false } in
  List.iter
    (fun (b : Bench.t) ->
      let r = Stagg.Pipeline.run m b in
      check_bool (b.name ^ " unsolved under Trace") false r.Stagg.Result_.solved;
      check_bool (b.name ^ " not traced") false r.traced;
      check_int (b.name ^ " no templates") 0 r.trace_templates;
      check_bool
        (b.name ^ " surfaces the refusal")
        true
        (List.exists (contains_sub "trace: ") r.warnings
        || (match r.failure with Some f -> contains_sub "trace: " f | None -> false)))
    Suite.diagnostics

(* ---- Trace+LLM is a superset of plain LLM on pinned queries ---- *)

let test_trace_llm_superset () =
  let pinned = Suite.artificial @ [ bench "dk_mse"; bench "sa_norm_ratio" ] in
  List.iter
    (fun (b : Bench.t) ->
      let r_llm = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      let r_both = Stagg.Pipeline.run Stagg.Method_.td_trace_llm b in
      check_string (b.name ^ " label") "Trace+LLM" r_both.Stagg.Result_.method_label;
      if r_llm.Stagg.Result_.solved then
        check_bool (b.name ^ " Trace+LLM retains the LLM solve") true r_both.solved)
    pinned

(* ---- byte-identity: an explicit Oracle_llm is a no-op ---- *)

let test_oracle_llm_identity () =
  (* the method record itself is unchanged... *)
  check_bool "with_oracle Oracle_llm is the identity on the method" true
    (Stagg.Method_.with_oracle Stagg.Method_.stagg_td Stagg.Method_.Oracle_llm
    = Stagg.Method_.stagg_td);
  (* ...and so is every observable outcome of a run (instantiation counts
     are skipped: the validator memo is process-wide, so the second of two
     identical runs legitimately instantiates less) *)
  List.iter
    (fun name ->
      let b = bench name in
      let r1 = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      let r2 =
        Stagg.Pipeline.run
          (Stagg.Method_.with_oracle Stagg.Method_.stagg_td Stagg.Method_.Oracle_llm)
          b
      in
      let sol r =
        match r.Stagg.Result_.solution with
        | Some s -> Stagg_taco.Pretty.program_to_string s.Stagg_validate.Validator.concrete
        | None -> "<none>"
      in
      check_bool (name ^ " solved identical") true (r1.Stagg.Result_.solved = r2.solved);
      check_int (name ^ " attempts identical") r1.attempts r2.attempts;
      check_int (name ^ " expansions identical") r1.expansions r2.expansions;
      check_int (name ^ " candidates identical") r1.n_candidates r2.n_candidates;
      check_int (name ^ " pruned identical") r1.pruned r2.pruned;
      check_int (name ^ " suppressed identical") r1.suppressed r2.suppressed;
      check_string (name ^ " solution identical") (sol r1) (sol r2);
      check_bool (name ^ " neither traced") false (r1.traced || r2.traced);
      check_int (name ^ " no trace templates") 0 (r1.trace_templates + r2.trace_templates);
      check_bool (name ^ " warnings identical") true (r1.warnings = r2.warnings))
    [ "art_gemm"; "art_dot"; "dk_mse" ]

(* ---- structured refusals on the diagnostic kernels ---- *)

let test_diagnostic_refusals () =
  let refusal name =
    match skeletons_of (bench name) with
    | Ok _ -> Alcotest.failf "%s: expected a refusal, got templates" name
    | Error r ->
        let s = Trace.refusal_to_string r in
        check_bool (name ^ " message prefixed") true (contains_sub "trace: " s);
        (r, s)
  in
  (match refusal "diag_prefix_sum" with
  | Trace.Scan _, s ->
      check_bool "scan message" true (contains_sub "trace: scan unsupported" s)
  | _, s -> Alcotest.failf "diag_prefix_sum: expected Scan, got %s" s);
  (match refusal "diag_mod" with
  | Trace.Trace_failed _, _ -> ()
  | _, s -> Alcotest.failf "diag_mod: expected Trace_failed, got %s" s);
  (match refusal "diag_relu" with
  | Trace.Trace_failed _, _ -> ()
  | _, s -> Alcotest.failf "diag_relu: expected Trace_failed, got %s" s);
  match refusal "diag_no_store" with
  | Trace.Output_unwritten, _ -> ()
  | _, s -> Alcotest.failf "diag_no_store: expected Output_unwritten, got %s" s

(* ---- robustness on hand-written kernels ---- *)

let sig1 =
  { Sign.args = [ ("n", Sign.Size "n"); ("A", Sign.Arr [ "n" ]); ("R", Sign.Arr [ "n" ]) ];
    out = "R" }

let skel src = Trace.skeletons (Stagg_minic.Parser.parse_function_exn src) sig1

let test_uninitialized_accumulator_refused () =
  match
    skel
      {|
void f(int n, int* A, int* R) {
  int i;
  for (i = 0; i < n; i++) {
    R[i] = R[i] + A[i];
  }
}
|}
  with
  | Error (Trace.Output_read _) -> ()
  | Error r -> Alcotest.failf "expected Output_read, got %s" (Trace.refusal_to_string r)
  | Ok _ -> Alcotest.fail "uninitialized accumulator must not yield a template"

let test_repeated_operand_becomes_constant_multiple () =
  match
    skel
      {|
void f(int n, int* A, int* R) {
  int i;
  for (i = 0; i < n; i++) {
    R[i] = A[i] + A[i];
  }
}
|}
  with
  | Ok [ p ] ->
      check_string "doubling decodes as a constant multiple" "R(i) = 2 * A(i)"
        (Stagg_taco.Pretty.program_to_string p)
  | Ok ps -> Alcotest.failf "expected one template, got %d" (List.length ps)
  | Error r -> Alcotest.failf "refused: %s" (Trace.refusal_to_string r)

let test_scalar_mediated_scan_refused () =
  (* the running sum is carried through a scalar, so the Depend stencil
     class cannot see it — the extractor must still refuse (each cell is a
     different-length prefix sum), with a structured message, not panic *)
  match
    skel
      {|
void f(int n, int* A, int* R) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i++) {
    s = s + A[i];
    R[i] = s;
  }
}
|}
  with
  | Error r ->
      check_bool "structured message" true
        (contains_sub "trace: " (Trace.refusal_to_string r))
  | Ok _ -> Alcotest.fail "scalar-mediated scan must not yield a template"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_trace"
    [
      ("differential", [ qc qcheck_dag_matches_interp ]);
      ( "skeletons",
        [
          Alcotest.test_case "artificial suite emits" `Quick test_artificial_skeletons;
          Alcotest.test_case "repeated operand" `Quick
            test_repeated_operand_becomes_constant_multiple;
        ] );
      ( "refusals",
        [
          Alcotest.test_case "diagnostics are structured" `Quick test_diagnostic_refusals;
          Alcotest.test_case "uninitialized accumulator" `Quick
            test_uninitialized_accumulator_refused;
          Alcotest.test_case "scalar-mediated scan" `Quick test_scalar_mediated_scan_refused;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "Trace solves artificial" `Quick test_trace_solves_artificial;
          Alcotest.test_case "Trace refuses diagnostics" `Quick
            test_trace_refuses_diagnostics_e2e;
          Alcotest.test_case "Trace+LLM superset" `Quick test_trace_llm_superset;
          Alcotest.test_case "explicit Oracle_llm is byte-identical" `Quick
            test_oracle_llm_identity;
        ] );
    ]
