(* Tests for stagg_template: templatization (§4.2.1), dimension lists
   (§4.2.3), substitution enumeration (§6). *)

open Stagg_util
open Stagg_template
module Ast = Stagg_taco.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse = Stagg_taco.Parser.parse_program_exn
let show p = Stagg_taco.Pretty.program_to_string p
let templatize_str s = Option.map show (Templatize.templatize (parse s))

(* ---- templatization: the paper's Fig. 4 example ---- *)

let test_fig4_standardization () =
  (* t(f) = m1(i, f) * m2(f)  ↦  a(i) = b(j, i) * c(i) *)
  check_string "Fig. 4" "a(i) = b(j, i) * c(i)"
    (Option.get (templatize_str "t(f) = m1(i, f) * m2(f)"));
  (* the := spelling standardizes to the same template *)
  check_string "Fig. 4 with :=" "a(i) = b(j, i) * c(i)"
    (Option.get (templatize_str "Target(i) := Mat1(f,i) * Mat2(i)"))

let test_templatize_tensor_order () =
  check_string "RHS order of first appearance" "a(i) = b(i) * c(i, j) + c(i, j) * b(i)"
    (Option.get (templatize_str "out(x) = v(x) * M(x,y) + M(x,y) * v(x)"))

let test_templatize_constants () =
  check_string "constants become Const" "a(i) = b(i) * Const + Const"
    (Option.get (templatize_str "r(i) = x(i) * 5 + 3"))

let test_templatize_too_many_indices () =
  check_bool "5 indices rejected" true
    (templatize_str "a(v,w,x,y,z) = b(v,w,x,y,z)" = None)

let test_templatize_repeated_tensor () =
  check_string "same tensor maps to same symbol" "a = b(i) * b(i)"
    (Option.get (templatize_str "ss = x(f) * x(f)"))

(* ---- rename / instantiate ---- *)

let test_rename () =
  let t = parse "a(i) = b(i,j) * c(j)" in
  let p =
    Templatize.rename t ~mapping:[ ("a", "Result"); ("b", "Mat1"); ("c", "Mat2") ] ~const:None
  in
  check_string "instantiated" "Result(i) = Mat1(i, j) * Mat2(j)" (show p)

let test_rename_const () =
  let t = Option.get (Templatize.templatize (parse "r(i) = x(i) * 7")) in
  let p = Templatize.rename t ~mapping:[ ("a", "R"); ("b", "X") ] ~const:(Some (Rat.of_int 7)) in
  check_string "const inlined" "R(i) = X(i) * 7" (show p)

let test_rename_missing_binding () =
  let t = parse "a(i) = b(i)" in
  check_bool "missing symbol fails" true
    (try
       ignore (Templatize.rename t ~mapping:[ ("a", "R") ] ~const:None);
       false
     with Failure _ -> true)

(* ---- dimension lists ---- *)

let test_dimlist_of_template () =
  Alcotest.(check (list int)) "dims in appearance order" [ 1; 2; 1 ]
    (Dimlist.of_template (parse "a(i) = b(i,j) * c(j)"));
  (* constants and scalars count as dimension 0 (Def. 4.5) *)
  Alcotest.(check (list int)) "const is 0-dim" [ 1; 0; 1 ]
    (Dimlist.of_template (Option.get (Templatize.templatize (parse "a(i) = 5 - b(i)"))))

let test_dimlist_predict_majority () =
  let ts =
    List.map parse
      [
        "a(i) = b(i,j) * c(j)";
        "a(i) = b(j,i) * c(i)";
        "a(i) = b(i,j) * c(j)";
        "a(i) = b(i)" (* shorter: filtered out by the max-length rule *);
      ]
  in
  Alcotest.(check (option (list int))) "majority of max-length lists" (Some [ 1; 2; 1 ])
    (Dimlist.predict ts)

let test_dimlist_predict_empty () =
  Alcotest.(check (option (list int))) "empty input" None (Dimlist.predict [])

let test_dimlist_override () =
  Alcotest.(check (list int)) "LHS override" [ 0; 2; 1 ] (Dimlist.override_lhs [ 1; 2; 1 ] 0)

(* ---- substitution enumeration (paper Fig. 8) ---- *)

let fig8_args =
  [
    { Subst.name = "N"; rank = Some 0; is_size = true };
    { Subst.name = "Mat1"; rank = Some 2; is_size = false };
    { Subst.name = "Mat2"; rank = Some 1; is_size = false };
    { Subst.name = "Result"; rank = Some 1; is_size = false };
  ]

let test_subst_enumerate_fig8 () =
  let template = parse "a(i) = b(i,j) * c(j)" in
  let substs =
    Subst.enumerate ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts:[]
  in
  (* b must bind the unique 2-D argument; c any of the 1-D ones: Mat2 or
     Result. N (a scalar) is ruled out for c — exactly the paper's S3/S6. *)
  check_int "two sound substitutions" 2 (List.length substs);
  List.iter
    (fun (s : Subst.t) ->
      check_string "b" "Mat1" (List.assoc "b" s.tensor_binding);
      check_bool "c is 1-D" true
        (List.mem (List.assoc "c" s.tensor_binding) [ "Mat2"; "Result" ]))
    substs

let test_subst_lhs_rank_mismatch () =
  let template = parse "a(i,j) = b(i,j)" in
  check_int "LHS arity must match the output" 0
    (List.length (Subst.enumerate ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts:[]))

let test_subst_const_pool () =
  let template = Option.get (Templatize.templatize (parse "r(i) = x(i) * 3")) in
  let args = [ { Subst.name = "X"; rank = Some 1; is_size = false }; { Subst.name = "R"; rank = Some 1; is_size = false } ] in
  let with_consts =
    Subst.enumerate ~template ~out:"R" ~out_rank:1 ~args ~consts:[ Rat.of_int 3; Rat.of_int 5 ]
  in
  (* 2 tensor choices for b × 2 constants *)
  check_int "tensor × constant combinations" 4 (List.length with_consts);
  check_int "no constants, no substitutions" 0
    (List.length (Subst.enumerate ~template ~out:"R" ~out_rank:1 ~args ~consts:[]))

let test_subst_arity_inconsistent_template () =
  (* b used with two different arities: no sound instantiation exists *)
  let template = parse "a(i) = b(i,j) * b(j)" in
  check_int "inconsistent arity rejected" 0
    (List.length (Subst.enumerate ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts:[]))

let test_subst_instantiate () =
  let template = parse "a(i) = b(i,j) * c(j)" in
  let s =
    List.hd (Subst.enumerate ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts:[])
  in
  let p = Subst.instantiate template s in
  check_bool "instantiated over arguments" true
    (String.length (show p) > 0 && (List.mem (fst p.Ast.lhs) [ "Result" ]))

let test_subst_enumerate_seq_agrees () =
  (* the lazy enumeration is the eager one, element for element, across
     the fixture shapes: sound, rank-mismatched, const-bearing *)
  let cases =
    [
      ("a(i) = b(i,j) * c(j)", []);
      ("a(i,j) = b(i,j)", []);
      ( "a(i) = b(i) * Const",
        [ Rat.of_int 3; Rat.of_int 5 ] );
    ]
  in
  List.iter
    (fun (src, consts) ->
      let template = parse src in
      let eager = Subst.enumerate ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts in
      let lazy_ =
        List.of_seq
          (Subst.enumerate_seq ~template ~out:"Result" ~out_rank:1 ~args:fig8_args ~consts)
      in
      check_int (src ^ ": same length") (List.length eager) (List.length lazy_);
      List.iter2
        (fun (a : Subst.t) (b : Subst.t) ->
          check_bool (src ^ ": same binding") true
            (a.tensor_binding = b.tensor_binding
            && Option.equal Rat.equal a.const_binding b.const_binding))
        eager lazy_)
    cases

(* ---- the renamed printer (batched validation memo keys) ----

   [Pretty.program_to_string_renamed] must be byte-identical to renaming
   the AST and printing it — the batched validator uses it to build memo
   keys without constructing concrete programs, so any divergence would
   silently split or merge memo entries. The generator covers Const holes
   (including negative and non-integer constants, which print with the
   same parenthesization either way), ranked [Const(i)] accesses that
   rename leaves untouched, and every operator. *)
let qcheck_renamed_printer_parity =
  let arb =
    let open QCheck.Gen in
    let atoms =
      [
        "b(i,j)"; "c(j)"; "d(i)"; "s"; "Const"; "2"; "b(i,j) * c(j)"; "Const * c(j)";
        "Const(i)"; "- Const"; "- d(i)";
      ]
    in
    let op = oneofl [ "+"; "-"; "*"; "/" ] in
    let rhs =
      oneof
        [ oneofl atoms; map3 (fun a o b -> a ^ " " ^ o ^ " " ^ b) (oneofl atoms) op (oneofl atoms) ]
    in
    let lhs = oneofl [ "a(i)"; "a"; "a(i,j)" ] in
    let const =
      oneof
        [
          map Rat.of_int (int_range (-9) 9);
          map2 (fun n d -> Rat.of_ints n d) (int_range (-9) 9) (int_range 1 4);
        ]
    in
    QCheck.make
      (map3 (fun l r c -> (l ^ " = " ^ r, c)) lhs rhs const)
      ~print:(fun (s, c) -> s ^ " / Const=" ^ Rat.to_string c)
  in
  let mapping = [ ("a", "R"); ("b", "Mat1"); ("c", "Mat2"); ("d", "Vec"); ("s", "Scale") ] in
  QCheck.Test.make
    ~name:"program_to_string_renamed is byte-identical to rename-then-print" ~count:500 arb
    (fun (src, const) ->
      let template = parse src in
      let const = Some const in
      String.equal
        (show (Templatize.rename template ~mapping ~const))
        (Stagg_taco.Pretty.program_to_string_renamed ~mapping ~const
           ~is_const:Templatize.is_const_symbol template))

let () =
  Alcotest.run "stagg_template"
    [
      ( "templatize",
        [
          Alcotest.test_case "Fig. 4 standardization" `Quick test_fig4_standardization;
          Alcotest.test_case "tensor order" `Quick test_templatize_tensor_order;
          Alcotest.test_case "constants" `Quick test_templatize_constants;
          Alcotest.test_case "index overflow" `Quick test_templatize_too_many_indices;
          Alcotest.test_case "repeated tensor" `Quick test_templatize_repeated_tensor;
        ] );
      ( "rename",
        [
          Alcotest.test_case "tensor mapping" `Quick test_rename;
          Alcotest.test_case "constant inlining" `Quick test_rename_const;
          Alcotest.test_case "missing binding" `Quick test_rename_missing_binding;
        ] );
      ( "dimlist",
        [
          Alcotest.test_case "of_template" `Quick test_dimlist_of_template;
          Alcotest.test_case "majority prediction" `Quick test_dimlist_predict_majority;
          Alcotest.test_case "empty" `Quick test_dimlist_predict_empty;
          Alcotest.test_case "LHS override" `Quick test_dimlist_override;
        ] );
      ( "subst",
        [
          Alcotest.test_case "Fig. 8 enumeration" `Quick test_subst_enumerate_fig8;
          Alcotest.test_case "LHS rank mismatch" `Quick test_subst_lhs_rank_mismatch;
          Alcotest.test_case "constant pool" `Quick test_subst_const_pool;
          Alcotest.test_case "inconsistent arities" `Quick test_subst_arity_inconsistent_template;
          Alcotest.test_case "instantiate" `Quick test_subst_instantiate;
          Alcotest.test_case "lazy enumeration agrees" `Quick test_subst_enumerate_seq_agrees;
          QCheck_alcotest.to_alcotest qcheck_renamed_printer_parity;
        ] );
    ]
