(* Satellites of the fingerprint-dedup change:
   - a QCheck collision audit: over a large seeded corpus of random complete
     derivation trees, two trees get the same fingerprint iff they print to
     the same canonical template string (the §4.4 equality the dedup must
     respect);
   - a differential run of the pipeline with fingerprint vs legacy
     printed-string dedup: solved sets, first solutions, and search counts
     must be identical;
   - the wall-clock budget surfacing as [failure = Some "timeout"]. *)

open Stagg_grammar
open Stagg_search
module Pretty = Stagg_taco.Pretty
module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let parse = Stagg_taco.Parser.parse_program_exn
let templates_of = List.map parse

(* ---- random complete derivation trees ---- *)

(* Minimal completed-subtree size (rule applications) per nonterminal, by
   fixpoint. Drives the fuel-exhausted phase of the random walk: always
   taking a rule of minimal completion size shrinks the remaining work by
   exactly one application per step, so the walk terminates on any grammar,
   including ones with size-preserving unit/paren rules. *)
let min_sizes g =
  let tbl = Hashtbl.create 16 in
  List.iter (fun nt -> Hashtbl.replace tbl nt max_int) (Cfg.nonterminals g);
  let rule_size (r : Cfg.rule) =
    List.fold_left
      (fun acc sym ->
        match (acc, sym) with
        | None, _ -> None
        | Some _, Cfg.NT nt ->
            let s = Hashtbl.find tbl nt in
            if s = max_int then None else Option.map (( + ) s) acc
        | acc, Cfg.T _ -> acc)
      (Some 1) r.rhs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (r : Cfg.rule) ->
        match rule_size r with
        | Some s when s < Hashtbl.find tbl r.lhs ->
            Hashtbl.replace tbl r.lhs s;
            changed := true
        | _ -> ())
      (Cfg.rules g)
  done;
  tbl

(* Own PRNG so the corpus is identical on every run regardless of how the
   QCheck harness is seeded. *)
let seed = ref 0x5eed2026

let next_int bound =
  seed := ((!seed * 0x2545F4914F6CDD1D) + 0x27D4EB2F165667C5) land max_int;
  !seed lsr 17 mod bound

let rec walk g sizes x fuel =
  if Node.is_complete x then Some x
  else
    match Node.expansions g x with
    | [] -> None
    | exps ->
        if fuel > 0 then
          let _, x' = List.nth exps (next_int (List.length exps)) in
          walk g sizes x' (fuel - 1)
        else
          (* out of fuel: greedily close the tree along minimal rules *)
          let weight (r : Cfg.rule) =
            List.fold_left
              (fun acc sym ->
                match (acc, sym) with
                | None, _ -> None
                | Some _, Cfg.NT nt ->
                    let s = Hashtbl.find sizes nt in
                    if s = max_int then None else Option.map (( + ) s) acc
                | acc, Cfg.T _ -> acc)
              (Some 0) r.rhs
          in
          let best =
            List.fold_left
              (fun acc ((r, _) as e) ->
                match (weight r, acc) with
                | None, _ -> acc
                | Some w, Some (bw, _) when bw <= w -> acc
                | Some w, _ -> Some (w, e))
              None exps
          in
          (match best with
          | Some (_, (_, x')) -> walk g sizes x' 0
          | None -> None)

(* Refined and full grammars, both search directions: the fingerprint must
   be collision-free within each grammar a search actually runs on. *)
let grammars =
  lazy
    (let mk label g = (label, g, Node.fingerprints g, min_sizes g) in
     [
       mk "td gemv"
         (Gen_topdown.generate ~dim_list:[ 1; 2; 1 ]
            ~templates:(templates_of [ "a(i) = b(i,j) * c(j)" ]));
       mk "td multi"
         (Gen_topdown.generate ~dim_list:[ 1; 2; 1; 0 ]
            ~templates:
              (templates_of
                 [ "a(i) = b(i,j) * c(j)"; "a(i) = b(i,j) * c(j) + d"; "a(i) = 2 * c(i)" ]));
       mk "td full" (Taco_grammar.generate ~n_rhs_tensors:3 ~max_rank:2 ~n_indices:3 ());
       mk "bu dot"
         (Gen_bottomup.generate ~dim_list:[ 0; 1; 1 ]
            ~templates:(templates_of [ "a = b(i) * c(i)" ]));
       mk "bu full" (Gen_bottomup.generate_full ~n_rhs_tensors:3 ~max_rank:2 ~n_indices:3 ());
     ])

let gen_case _st =
  let gs = Lazy.force grammars in
  let label, g, fps, sizes = List.nth gs (next_int (List.length gs)) in
  let rec fresh_tree () =
    match walk g sizes (Node.initial g) (3 + next_int 24) with
    | Some x -> x
    | None -> fresh_tree ()
  in
  let x = fresh_tree () in
  let fp = Node.fingerprint fps x in
  let s =
    match Node.to_program g x with
    | Some p -> Pretty.program_to_string p
    | None -> "<no-program>"
  in
  (label, fp, s)

let arb_case =
  QCheck.make gen_case ~print:(fun (l, fp, s) -> Printf.sprintf "%s: %016x %s" l fp s)

(* Cross-corpus audit tables (per grammar): every fingerprint must map to
   exactly one canonical string, and every string to exactly one
   fingerprint. The first direction is soundness (a fingerprint hit never
   suppresses a genuinely new template); the second is what makes the
   attempt counts match the legacy string-keyed dedup exactly. *)
let fp_to_str : (string * int, string) Hashtbl.t = Hashtbl.create 4096
let str_to_fp : (string * string, int) Hashtbl.t = Hashtbl.create 4096

let fp_soundness =
  QCheck.Test.make ~name:"equal fingerprints iff equal canonical strings" ~count:12_000
    arb_case (fun (label, fp, s) ->
      (match Hashtbl.find_opt fp_to_str (label, fp) with
      | Some s' -> String.equal s' s
      | None ->
          Hashtbl.add fp_to_str (label, fp) s;
          true)
      &&
      match Hashtbl.find_opt str_to_fp (label, s) with
      | Some fp' -> fp' = fp
      | None ->
          Hashtbl.add str_to_fp (label, s) fp;
          true)

(* ---- fingerprint vs legacy string dedup, end to end ---- *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let first_solution (r : Stagg.Result_.t) =
  match r.solution with
  | Some sol -> Pretty.program_to_string sol.concrete
  | None -> "<none>"

let test_differential () =
  let benches = Suite.artificial @ Suite.by_category Bench.Simpl_array in
  List.iter
    (fun (m : Stagg.Method_.t) ->
      let fingerprint = Stagg.Pipeline.run_suite m benches in
      let legacy =
        Stagg.Pipeline.run_suite { m with Stagg.Method_.dedup = Astar.Pretty_key } benches
      in
      List.iter2
        (fun (a : Stagg.Result_.t) (b : Stagg.Result_.t) ->
          let lbl = m.label ^ "/" ^ a.bench in
          check_bool (lbl ^ " solved") b.solved a.solved;
          check_int (lbl ^ " attempts") b.attempts a.attempts;
          (* the legacy dedup cannot replay pruned pops, so the analysis
             pruning is off there: its expansions count every pop, the
             fingerprint side splits the same pops into real + pruned *)
          check_int (lbl ^ " legacy prunes nothing") 0 b.pruned;
          check_int (lbl ^ " expansions") b.expansions (a.expansions + a.pruned);
          check_string (lbl ^ " first solution") (first_solution b) (first_solution a))
        fingerprint legacy)
    [ Stagg.Method_.stagg_td; Stagg.Method_.stagg_bu ]

(* ---- timeout surfacing ---- *)

let test_pipeline_timeout () =
  (* an exhausted wall clock with unbounded count caps: the very first
     64-pop poll fires, the search stops on the poll boundary, and the
     pipeline reports the [Timeout] stop as its own failure string *)
  let m =
    {
      Stagg.Method_.td_full_grammar with
      budget = { Astar.max_attempts = max_int; max_expansions = max_int; timeout_s = 0. };
    }
  in
  let r = Stagg.Pipeline.run m (Option.get (Suite.find "art_gemv")) in
  check_bool "unsolved" false r.Stagg.Result_.solved;
  Alcotest.(check (option string)) "failure" (Some "timeout") r.failure;
  check_int "stopped on a poll boundary" 0 ((r.expansions + r.pruned) mod 64)

let () =
  Alcotest.run "stagg_dedup"
    [
      ( "fingerprint",
        [ QCheck_alcotest.to_alcotest fp_soundness ] );
      ( "differential",
        [
          Alcotest.test_case "fingerprint dedup replicates legacy counts" `Slow
            test_differential;
        ] );
      ( "timeout",
        [ Alcotest.test_case "pipeline reports timeout" `Quick test_pipeline_timeout ] );
    ]
