(* The deterministic parallel A* engine: byte-identical outcomes for
   every domain count.

   Three layers of evidence:
   - the COMMIT STREAM itself: the (f, seq) key of every committed pop
     (frontier pops and admission-ledger drains), recorded via
     [?commit_probe], must be identical between the sequential engine
     and a K-domain run whose staged validations are artificially
     slowed to force speculation to complete out of order;
   - the PIPELINE DIFFERENTIAL: full lifting runs at K ∈ {2, 4} must
     agree with K = 1 on every observable field (solved, attempts,
     expansions, pruned, suppressed, instantiations, the first
     solution), across methods, grammars and random seeds;
   - the TELEMETRY plumbing: parallel runs report [par_stats], and
     sequential runs report none.

   Differential budgets pin [timeout_s] to infinity: the wall-clock
   backstop is the one documented machine-dependent stop, so letting it
   bind would make these tests flaky under load (it never binds here —
   the deterministic attempt/expansion caps are far smaller). *)

open Stagg_search
module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench
module Method_ = Stagg.Method_
module Pipeline = Stagg.Pipeline
module Result_ = Stagg.Result_

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find_bench name =
  match Suite.find name with
  | Some b -> b
  | None -> Alcotest.fail ("missing benchmark " ^ name)

let no_timeout (m : Method_.t) =
  { m with budget = { m.budget with Astar.timeout_s = infinity } }

let take n xs = List.filteri (fun i _ -> i < n) xs

(* everything observable about a run except machine-dependent timings *)
let observe (r : Result_.t) =
  ( r.bench,
    r.solved,
    r.attempts,
    r.expansions,
    r.pruned,
    r.suppressed,
    r.instantiations,
    Option.map
      (fun (s : Stagg_validate.Validator.solution) ->
        Stagg_taco.Pretty.program_to_string s.concrete)
      r.solution )

(* ---- the commit stream, straight from the engine ---- *)

(* Run one search over art_gemv's FullGrammar (ambiguous enough to
   exercise ghosts and the admission ledger) with a never-solving
   validator, recording every committed (f, seq). The parallel run's
   staged validator sleeps in its COMPUTE half, so worker speculations
   finish late and out of order relative to the pops that consume them —
   exactly the schedule skew the (f, seq) commit order must absorb. *)
let commit_stream ~search ~domains () =
  let m =
    match search with
    | `Td -> Method_.td_full_grammar
    | `Bu -> Method_.bu_full_grammar
  in
  let b = find_bench "art_gemv" in
  let prep =
    match Pipeline.prepare m b with Ok p -> p | Error e -> Alcotest.fail e
  in
  let q = Pipeline.query_of_bench m b in
  let consts = Stagg_minic.Ast.constants (Bench.func b) in
  let prune = Pipeline.prune_of m q ~consts prep in
  let budget = { Astar.max_attempts = 300; max_expansions = 4_000; timeout_s = infinity } in
  let stream = ref [] in
  let commit_probe f seq = stream := (f, seq) :: !stream in
  let validate (_ : Stagg_taco.Ast.program) : unit option = None in
  let staged_validate =
    if domains = 1 then None
    else
      Some
        (fun p ->
          (* stagger worker completion pseudo-randomly but deterministically *)
          if Hashtbl.hash p land 7 = 0 then Unix.sleepf 0.0003;
          let r = validate p in
          fun () -> r)
  in
  let outcome =
    match search with
    | `Td ->
        Astar.search_topdown ~pcfg:prep.pcfg ~penalty_ctx:prep.penalty_ctx ?prune ~domains
          ?staged_validate ~commit_probe ~budget ~validate ()
    | `Bu ->
        Astar.search_bottomup ~pcfg:prep.pcfg ~penalty_ctx:prep.penalty_ctx
          ~dim_list:prep.dim_list ?prune ~domains ?staged_validate ~commit_probe ~budget
          ~validate ()
  in
  let s = Astar.stats_of outcome in
  (List.rev !stream, (s.attempts, s.expansions, s.pruned, s.suppressed))

let test_commit_stream search () =
  let seq_stream, seq_counts = commit_stream ~search ~domains:1 () in
  check_bool "sequential stream nonempty" true (List.length seq_stream > 100);
  List.iter
    (fun k ->
      let par_stream, par_counts = commit_stream ~search ~domains:k () in
      check_bool
        (Printf.sprintf "K=%d commit stream identical to sequential" k)
        true
        (par_stream = seq_stream);
      check_bool
        (Printf.sprintf "K=%d stats identical to sequential" k)
        true
        (par_counts = seq_counts))
    [ 2; 4 ]

(* ---- pipeline-level differential ---- *)

let test_differential_fast () =
  let benches = Suite.artificial in
  List.iter
    (fun m ->
      let m = no_timeout m in
      let base = List.map observe (Pipeline.run_suite m benches) in
      List.iter
        (fun k ->
          let rs = Pipeline.run_suite (Method_.with_search_domains m k) benches in
          check_bool
            (Printf.sprintf "%s: K=%d byte-identical to K=1" m.label k)
            true
            (List.map observe rs = base))
        [ 2; 4 ])
    [ Method_.stagg_td; Method_.stagg_bu ]

(* the FullGrammar configurations stress the engine hardest (deep
   frontiers, heavy ghost/ledger traffic); a 3-bench slice keeps the
   differential affordable *)
let test_differential_full_grammar () =
  let benches = take 3 Suite.artificial in
  List.iter
    (fun m ->
      let m = no_timeout m in
      let base = List.map observe (Pipeline.run_suite m benches) in
      let rs = Pipeline.run_suite (Method_.with_search_domains m 2) benches in
      check_bool
        (Printf.sprintf "%s: K=2 byte-identical to K=1" m.label)
        true
        (List.map observe rs = base))
    [ Method_.td_full_grammar; Method_.bu_full_grammar ]

let qcheck_differential_seeds =
  QCheck.Test.make ~name:"domains differential across random seeds" ~count:4
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let benches = take 3 Suite.artificial in
      let m = no_timeout { Method_.stagg_td with seed } in
      let obs m = List.map observe (Pipeline.run_suite m benches) in
      obs m = obs (Method_.with_search_domains m 3))

(* ---- telemetry plumbing ---- *)

let test_par_telemetry () =
  let b = find_bench "art_gemv" in
  let r =
    Pipeline.run (no_timeout (Method_.with_search_domains Method_.td_full_grammar 2)) b
  in
  (match r.par with
  | None -> Alcotest.fail "parallel run reported no par_stats"
  | Some ps ->
      check_int "effective domains" 2 ps.Astar.par_domains;
      check_bool "committed <= speculated" true (ps.par_committed <= ps.par_speculated);
      check_bool "counters non-negative" true
        (ps.par_speculated >= 0 && ps.par_committed >= 0 && ps.par_steals >= 0));
  let r1 = Pipeline.run (no_timeout Method_.td_full_grammar) b in
  check_bool "sequential run reports no par_stats" true (r1.par = None)

(* auto mode under a zero Pool budget must resolve to the sequential
   engine (and still be byte-identical — it IS the sequential engine) *)
let test_auto_clamps_to_budget () =
  Stagg_util.Pool.with_budget 0 (fun () ->
      let b = find_bench "art_gemv" in
      let m = no_timeout Method_.td_full_grammar in
      let base = observe (Pipeline.run m b) in
      let r = Pipeline.run (Method_.with_search_domains m 0) b in
      check_bool "auto run byte-identical" true (observe r = base);
      match r.par with
      | Some ps -> check_int "auto resolved to 1 domain under zero budget" 1 ps.Astar.par_domains
      | None -> Alcotest.fail "auto run reported no par_stats")

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_parallel"
    [
      ( "commit order",
        [
          Alcotest.test_case "top-down (f, seq) stream" `Quick (test_commit_stream `Td);
          Alcotest.test_case "bottom-up (f, seq) stream" `Quick (test_commit_stream `Bu);
        ] );
      ( "differential",
        [
          Alcotest.test_case "refined methods, K in {2,4}" `Quick test_differential_fast;
          Alcotest.test_case "FullGrammar methods, K=2" `Quick test_differential_full_grammar;
          qc qcheck_differential_seeds;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "par telemetry" `Quick test_par_telemetry;
          Alcotest.test_case "auto clamps to Pool budget" `Quick test_auto_clamps_to_budget;
        ] );
    ]
