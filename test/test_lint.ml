(* The domain-safety lint: rule coverage over the known-racy /
   known-clean fixture pair, the lint.allow grammar, and the e2e run
   over the real libraries (everything the walker flags must be covered
   by a justified lint.allow entry). *)

module R = Stagg_lint.Report
module E = Stagg_lint.Engine

(* anchor on the executable (_build/default/test/...) so the paths work
   under both `dune runtest` and `dune exec` *)
let base = Filename.dirname Sys.executable_name

let analyze_dir ?(allow = R.empty) dir =
  let dir = Filename.concat base dir in
  let cmts = E.scan_dir dir in
  if cmts = [] then
    Alcotest.failf "no .cmt files under %s (cwd %s)" dir (Sys.getcwd ());
  E.analyze ~cmt_files:cmts ~allow

let racy () = fst (analyze_dir "lint_fixtures/racy")
let clean () = fst (analyze_dir "lint_fixtures/clean")

let count rule modname (fs : R.finding list) =
  List.length (List.filter (fun (f : R.finding) -> f.rule = rule && f.modname = modname) fs)

let contexts rule modname (fs : R.finding list) =
  List.sort_uniq compare
    (List.filter_map
       (fun (f : R.finding) ->
         if f.rule = rule && f.modname = modname then Some f.context else None)
       fs)

let show_findings fs = String.concat "\n" (List.map R.finding_to_string fs)

(* ---- each rule fires on its racy fixture, with pinned shape ---- *)

let test_racy_shared_mutable () =
  let v = racy () in
  (* Hashtbl reference + mutable-field read + mutable-field write *)
  Alcotest.(check bool)
    "at least 3 shared-mutable findings in Fr_shared"
    true
    (count R.Shared_mutable "Fr_shared" v.R.violations >= 3);
  Alcotest.(check (list string))
    "all in the [go] binding" [ "go" ]
    (contexts R.Shared_mutable "Fr_shared" v.R.violations)

let test_racy_raw_atomic () =
  let v = racy () in
  Alcotest.(check (list string))
    "CAS in claim, exchange in steal" [ "claim"; "steal" ]
    (contexts R.Raw_atomic "Fr_atomic" v.R.violations)

let test_racy_dls_key () =
  let v = racy () in
  Alcotest.(check (list string))
    "new_key flagged inside fresh_key" [ "fresh_key" ]
    (contexts R.Dls_key "Fr_dls" v.R.violations)

let test_racy_blocking () =
  let v = racy () in
  Alcotest.(check (list string))
    "IO and clock flagged under the lock" [ "log_locked"; "time_locked" ]
    (contexts R.Blocking_under_mutex "Fr_blocking" v.R.violations)

let test_racy_nondet () =
  let v = racy () in
  Alcotest.(check (list string))
    "gettimeofday and self_init flagged" [ "reseed"; "stamp" ]
    (contexts R.Nondet "Fr_nondet" v.R.violations)

(* ---- the clean twins stay silent ---- *)

let test_clean_silent () =
  let v = clean () in
  Alcotest.(check string) "no findings on the clean fixtures" "" (show_findings v.R.violations)

(* ---- lint.allow grammar ---- *)

let test_allow_parse () =
  match
    R.of_string
      "# comment\n\n\
       protocol-module Pool -- budget protocol lives here\n\
       nondeterminism-source foo.ml:run -- telemetry only\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      Alcotest.(check bool) "Pool is protocol" true (R.is_protocol t "Pool");
      Alcotest.(check bool) "Fpset is not" false (R.is_protocol t "Fpset");
      Alcotest.(check int) "one entry" 1 (List.length t.R.entries);
      let e = List.hd t.R.entries in
      Alcotest.(check string) "file" "foo.ml" e.R.e_file;
      Alcotest.(check string) "context" "run" e.R.e_context;
      Alcotest.(check string) "justification" "telemetry only" e.R.e_just

let test_allow_requires_justification () =
  (match R.of_string "protocol-module Pool" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing ' -- why' must be a parse error");
  match R.of_string "nondeterminism-source foo.ml:run --   " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty justification must be a parse error"

let test_allow_unknown_rule () =
  match R.of_string "data-race-somewhere foo.ml:run -- nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rule id must be a parse error"

let test_allow_suppresses_and_tracks_unused () =
  let allow =
    match
      R.of_string
        "nondeterminism-source fr_nondet.ml:stamp -- fixture timing\n\
         nondeterminism-source fr_nondet.ml:never_exists -- stale entry\n"
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let v = fst (analyze_dir ~allow "lint_fixtures/racy") in
  Alcotest.(check int)
    "stamp finding suppressed" 0
    (List.length
       (List.filter
          (fun (f : R.finding) -> f.R.context = "stamp" && f.rule = R.Nondet)
          v.R.violations));
  Alcotest.(check bool)
    "suppression recorded" true
    (List.exists (fun ((f : R.finding), _) -> f.R.context = "stamp") v.R.suppressed);
  Alcotest.(check (list string))
    "stale entry surfaced" [ "never_exists" ]
    (List.map (fun e -> e.R.e_context) v.R.unused_entries)

(* ---- e2e: the real codebase is fully covered by lint.allow ---- *)

let test_repo_clean () =
  let allow =
    match R.load (Filename.concat base "../lint.allow") with
    | Ok t -> t
    | Error e -> Alcotest.failf "cannot load ../lint.allow: %s" e
  in
  let v, stats = analyze_dir ~allow "../lib" in
  Alcotest.(check bool) "walked a real module set" true (stats.E.modules > 50);
  Alcotest.(check string) "no violations outside lint.allow" "" (show_findings v.R.violations);
  Alcotest.(check (list string))
    "no stale lint.allow entries" []
    (List.map (fun e -> e.R.e_context) v.R.unused_entries)

let () =
  Alcotest.run "lint"
    [
      ( "racy-fixtures",
        [
          Alcotest.test_case "shared-mutable-unguarded" `Quick test_racy_shared_mutable;
          Alcotest.test_case "raw-atomic-outside-protocol-module" `Quick test_racy_raw_atomic;
          Alcotest.test_case "dls-key-not-toplevel" `Quick test_racy_dls_key;
          Alcotest.test_case "blocking-under-mutex" `Quick test_racy_blocking;
          Alcotest.test_case "nondeterminism-source" `Quick test_racy_nondet;
        ] );
      ("clean-fixtures", [ Alcotest.test_case "silent" `Quick test_clean_silent ]);
      ( "allowlist",
        [
          Alcotest.test_case "grammar" `Quick test_allow_parse;
          Alcotest.test_case "justification required" `Quick test_allow_requires_justification;
          Alcotest.test_case "unknown rule rejected" `Quick test_allow_unknown_rule;
          Alcotest.test_case "suppress + stale tracking" `Quick
            test_allow_suppresses_and_tracks_unused;
        ] );
      ("e2e", [ Alcotest.test_case "repo covered by lint.allow" `Quick test_repo_clean ]);
    ]
