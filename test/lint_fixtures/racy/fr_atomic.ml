(* Trips raw-atomic-outside-protocol-module: a claim-shaped
   read-modify-write atomic in a module not declared protocol-module. *)

let state = Atomic.make 0
let claim () = Atomic.compare_and_set state 0 1
let steal () = Atomic.exchange state 2
