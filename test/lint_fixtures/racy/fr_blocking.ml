(* Trips blocking-under-mutex: IO and a clock syscall inside a
   Mutex.protect region. *)

let mu = Mutex.create ()
let log_locked msg = Mutex.protect mu (fun () -> print_endline msg)
let time_locked () = Mutex.protect mu (fun () -> Unix.gettimeofday ())
