(* Trips dls-key-not-toplevel: Domain.DLS.new_key inside a function
   leaks a fresh per-domain slot on every call. *)

let fresh_key () = Domain.DLS.new_key (fun () -> Buffer.create 64)
