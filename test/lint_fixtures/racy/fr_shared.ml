(* Trips shared-mutable-unguarded: a spawned domain touches module-scope
   mutable state (a Hashtbl) and a mutable record field with no
   Atomic/Mutex/DLS mediation. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16

type counter = { mutable hits : int }

let shared = { hits = 0 }

let go () =
  let d =
    Domain.spawn (fun () ->
        Hashtbl.replace table 1 1;
        let n = shared.hits in
        shared.hits <- n + 1)
  in
  Domain.join d
