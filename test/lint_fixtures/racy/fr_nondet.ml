(* Trips nondeterminism-source: wall-clock reads and self-seeded
   randomness break byte-identical outcomes. *)

let stamp () = Unix.gettimeofday ()
let reseed () = Random.self_init ()
