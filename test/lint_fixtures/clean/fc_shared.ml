(* Clean twin of fr_shared: the spawned domain reaches module-scope
   state only through a Mutex.protect region, and the counter is an
   Atomic. *)

let mu = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 16
let hits = Atomic.make 0

let go () =
  let d =
    Domain.spawn (fun () ->
        Mutex.protect mu (fun () -> Hashtbl.replace table 1 1);
        Atomic.incr hits)
  in
  Domain.join d
