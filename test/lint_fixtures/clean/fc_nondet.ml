(* Clean twin of fr_nondet: fixed-seed randomness is deterministic and
   passes. *)

let rng = Random.State.make [| 42 |]
let next () = Random.State.int rng 1000
