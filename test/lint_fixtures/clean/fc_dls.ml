(* Clean twin of fr_dls: the DLS key is created once, at a toplevel
   binding. *)

let scratch : Buffer.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Buffer.create 64)
let with_scratch f = f (Domain.DLS.get scratch)
