(* Clean twin of fr_atomic: plain get/set/incr on an Atomic are not
   protocol-shaped read-modify-writes and pass anywhere. *)

let counter = Atomic.make 0
let bump () = Atomic.incr counter
let read () = Atomic.get counter
let reset () = Atomic.set counter 0
