(* Clean twin of fr_blocking: the critical section does only pure
   in-memory work; nothing blocking runs while the lock is held. *)

let mu = Mutex.create ()
let total = ref 0
let add n = Mutex.protect mu (fun () -> total := !total + n)
let current () = Mutex.protect mu (fun () -> !total)
