(* Unit coverage for CLI-adjacent plumbing that the binary exercises:
   query construction, replay-driven lifting, and the end-to-end
   lift-file path (without spawning a process). *)

module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let rowsum_c =
  {|
void row_sums(int N, int M, int* A, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    int s = 0;
    for (j = 0; j < M; j++) s += A[i * M + j];
    R[i] = s;
  }
}
|}

let rowsum_query transcript =
  {
    Stagg.Pipeline.qname = "rowsum";
    func = Stagg_minic.Parser.parse_function_exn rowsum_c;
    signature =
      Result.get_ok (Stagg_minic.Sigspec.parse "N:size,M:size,A:arr[N,M],R:out[N]");
    c_source = rowsum_c;
    client = Stagg_oracle.Replay.of_lines transcript;
    oracle = Stagg.Method_.Oracle_llm;
  }

let test_lift_with_replay () =
  let q =
    rowsum_query
      [ "R(i) = sum(j, A(i,j))"; "r(x) := a(x, y)"; "R(i) = A(j,i)"; "sums(f) = M(f, g)" ]
  in
  let r = Stagg.Pipeline.lift Stagg.Method_.stagg_td q in
  check_bool "lifted from a recorded transcript" true r.Stagg.Result_.solved;
  match r.solution with
  | Some sol ->
      check_string "row sums" "R(i) = A(i, j)" (Stagg_taco.Pretty.program_to_string sol.concrete)
  | None -> Alcotest.fail "no solution"

let test_lift_with_empty_transcript () =
  let r = Stagg.Pipeline.lift Stagg.Method_.stagg_td (rowsum_query []) in
  check_bool "no candidates, no solve" false r.Stagg.Result_.solved;
  check_string "reason reported" "no syntactically valid LLM candidates"
    (Option.value ~default:"" r.failure)

let test_lift_with_garbage_transcript () =
  let r =
    Stagg.Pipeline.lift Stagg.Method_.stagg_td
      (rowsum_query [ "I am sorry, I cannot do that."; "```python"; "x = 1" ])
  in
  check_bool "garbage transcript fails cleanly" false r.Stagg.Result_.solved

let test_query_of_bench_uses_mock () =
  let b = Option.get (Stagg_benchsuite.Suite.find "art_gemv") in
  let q = Stagg.Pipeline.query_of_bench Stagg.Method_.stagg_td b in
  let (module C) = q.client in
  let lines = C.query ~prompt:"p" in
  check_bool "mock yields responses" true (List.length lines >= 10)

let () =
  Alcotest.run "stagg_cli_units"
    [
      ( "lift-file path",
        [
          Alcotest.test_case "replay transcript" `Slow test_lift_with_replay;
          Alcotest.test_case "empty transcript" `Quick test_lift_with_empty_transcript;
          Alcotest.test_case "garbage transcript" `Quick test_lift_with_garbage_transcript;
          Alcotest.test_case "benchmark query uses the mock" `Quick test_query_of_bench_uses_mock;
        ] );
    ]
