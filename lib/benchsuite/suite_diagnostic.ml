(** Deliberately-unliftable kernels exercising the fail-fast path of the
    static liftability analysis ({!Stagg_minic.Facts}). They are kept out
    of {!Suite.all} — the paper's 77-query suite stays untouched — and
    carry no ground truth: each one is *supposed* to be rejected before
    search, with a diagnostic naming the offending construct. *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Artificial ~quality:Exact ~truth:""

let all =
  [
    (* modulo in a data position: TACO index expressions have no [%] *)
    mk ~name:"diag_mod"
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R"
      {|
void mod_by_three(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] % 3;
  }
}
|};
    (* data-dependent select (ReLU): needs a conditional, not a tensor
       contraction *)
    mk ~name:"diag_relu"
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R"
      {|
void relu(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] > 0 ? A[i] : 0;
  }
}
|};
    (* loop-carried flow dependence: R[i] reads R[i-1] written by the
       previous iteration — a scan, not a pointwise/reduction kernel *)
    mk ~name:"diag_prefix_sum"
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R"
      {|
void prefix_sum(int N, int* A, int* R) {
  int i;
  R[0] = A[0];
  for (i = 1; i < N; i++) {
    R[i] = R[i - 1] + A[i];
  }
}
|};
    (* never stores to an array parameter: nothing to lift *)
    mk ~name:"diag_no_store"
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R"
      {|
void sum_locally(int N, int* A, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += A[i];
  }
}
|};
  ]
