type category = Artificial | Blas | Darknet | Dsp | Mathfu | Simpl_array | Llama

let category_to_string = function
  | Artificial -> "artificial"
  | Blas -> "blas"
  | Darknet -> "darknet"
  | Dsp -> "dsp"
  | Mathfu -> "mathfu"
  | Simpl_array -> "simpl_array"
  | Llama -> "llama"

type t = {
  name : string;
  category : category;
  c_source : string;
  signature : Stagg_minic.Signature.t;
  ground_truth : string;
  llm_quality : Stagg_oracle.Llm_client.quality;
}

(* The cache is shared across the domains of a parallel suite run
   (Stagg_util.Pool), so every access holds the lock. *)
let func_cache : (string, Stagg_minic.Ast.func) Hashtbl.t = Hashtbl.create 128
let func_cache_lock = Mutex.create ()

let func (b : t) =
  Mutex.protect func_cache_lock (fun () ->
      match Hashtbl.find_opt func_cache b.name with
      | Some f -> f
      | None -> (
          match Stagg_minic.Parser.parse_function b.c_source with
          | Ok f ->
              Hashtbl.add func_cache b.name f;
              f
          | Error msg -> failwith (Printf.sprintf "benchmark %s: C parse error: %s" b.name msg)))

let truth (b : t) =
  if String.equal b.ground_truth "" then None
  else
    match Stagg_taco.Parser.parse_program b.ground_truth with
    | Ok p -> Some p
    | Error msg -> failwith (Printf.sprintf "benchmark %s: truth parse error: %s" b.name msg)

let is_real_world (b : t) = b.category <> Artificial

let mk ~name ~category ~quality ~args ~out ~truth c_source =
  {
    name;
    category;
    c_source;
    signature = { Stagg_minic.Signature.args; out };
    ground_truth = truth;
    llm_quality = quality;
  }

let size n = (n, Stagg_minic.Signature.Size n)
let scalar n = (n, Stagg_minic.Signature.Scalar_data)
let arr n dims = (n, Stagg_minic.Signature.Arr dims)
let cell n = (n, Stagg_minic.Signature.Arr [])
