let all =
  Suite_artificial.all @ Suite_blas.all @ Suite_darknet.all @ Suite_dsp.all @ Suite_mathfu.all
  @ Suite_simpl_array.all @ Suite_llama.all

let real_world = List.filter Bench.is_real_world all
let artificial = List.filter (fun b -> not (Bench.is_real_world b)) all
let by_category c = List.filter (fun (b : Bench.t) -> b.category = c) all

(* Unliftable demo kernels for the analyzer's fail-fast path; not part of
   the 77-query suite (they would break the paper's counts), but
   reachable by name through [find]. *)
let diagnostics = Suite_diagnostic.all

let find name =
  List.find_opt (fun (b : Bench.t) -> String.equal b.name name) (all @ diagnostics)

let names = List.map (fun (b : Bench.t) -> b.name) all

let self_check () =
  let failures = ref [] in
  let fail name msg = failures := (name, msg) :: !failures in
  (* names unique *)
  let seen = Hashtbl.create 128 in
  List.iter
    (fun (b : Bench.t) ->
      if Hashtbl.mem seen b.name then fail b.name "duplicate benchmark name";
      Hashtbl.replace seen b.name ())
    all;
  if List.length all <> 77 then
    fail "suite" (Printf.sprintf "expected 77 benchmarks, found %d" (List.length all));
  if List.length real_world <> 67 then
    fail "suite" (Printf.sprintf "expected 67 real-world benchmarks, found %d" (List.length real_world));
  List.iter
    (fun (b : Bench.t) ->
      match Bench.func b with
      | exception Failure msg -> fail b.name msg
      | _f -> (
          match Bench.truth b with
          | exception Failure msg -> fail b.name msg
          | None -> ()
          | Some _ -> ()))
    all;
  List.rev !failures
