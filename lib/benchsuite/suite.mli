(** The full 77-query benchmark suite of paper §8: 10 artificial examples
    and 67 real-world kernels (61 in the C2TACO suite's categories, 6 from
    llama-style inference code). *)

val all : Bench.t list

(** The 67 real-world benchmarks. *)
val real_world : Bench.t list

val artificial : Bench.t list
val by_category : Bench.category -> Bench.t list

(** Deliberately-unliftable kernels (mod, ternary, scan, no store)
    demonstrating the static analyzer's fail-fast diagnostics. Not
    included in {!all}; {!find} resolves their names. *)
val diagnostics : Bench.t list

(** Looks a benchmark up by name in {!all} and {!diagnostics}. *)
val find : string -> Bench.t option

val names : string list

(** Suite self-check: every benchmark parses, its ground truth parses, and
    running the C program agrees with the ground truth on I/O examples.
    Returns the list of failures (empty = healthy). Used by the tests. *)
val self_check : unit -> (string * string) list
