(** Method configurations: which search, which grammar, which penalties —
    the knobs behind every row of Tables 1–3 and Figures 9–12. *)

open Stagg_search

type search_kind = Top_down | Bottom_up

type oracle =
  | Oracle_llm  (** candidates come from the (mock) LLM only — the paper *)
  | Oracle_trace  (** candidates come from the trace oracle only — no LLM *)
  | Oracle_trace_llm  (** union: trace templates first, then LLM responses *)

let oracle_to_string = function
  | Oracle_llm -> "llm"
  | Oracle_trace -> "trace"
  | Oracle_trace_llm -> "trace+llm"

let oracle_of_string = function
  | "llm" -> Some Oracle_llm
  | "trace" -> Some Oracle_trace
  | "trace+llm" | "trace-llm" -> Some Oracle_trace_llm
  | _ -> None

type grammar_mode =
  | Refined  (** dimension-list-refined grammar, learned probabilities (STAGG) *)
  | Equal_probability  (** refined grammar, uniform probabilities *)
  | Llm_grammar  (** full TACO grammar, learned probabilities *)
  | Full_grammar  (** full TACO grammar, uniform probabilities *)

type t = {
  label : string;
  search : search_kind;
  grammar : grammar_mode;
  penalties : Penalty.criterion list;
  budget : Astar.budget;
  max_depth : int;  (** top-down depth limit (§5.1) *)
  dedup : Astar.dedup;  (** frontier/seen dedup scheme (fingerprints by default) *)
  verify : bool;  (** bounded verification of validated candidates (§7) *)
  analysis : bool;
      (** static liftability analysis: fail fast on unliftable kernels and
          prune provably-doomed templates from the search. Solved/attempt
          outcomes are byte-identical either way (only expansions/time
          drop); [false] reproduces the pre-analysis behaviour for
          differential testing. *)
  prune_mode : Astar.prune_mode;
      (** how the analysis prune absorbs doomed children when [analysis]
          is on: [Prune_replay] enqueues tree-less replay items,
          [Prune_admission] (default) never enqueues them and charges
          their budget ticks through the admission ledger. Irrelevant
          when [analysis = false]. *)
  batched_validate : bool;
      (** template-level compilation in the validator: compile each popped
          template once and [rebind] per substitution (default). Solutions,
          counts and memo keys are byte-identical either way; [false] forces
          the per-candidate instantiate + compile path for the on/off
          differential. *)
  search_domains : int;
      (** domain count for the deterministic parallel A* engine inside
          each single search (coordinator included). [1] (default) is the
          sequential engine; [0] means auto — take whatever helper
          domains the {!Stagg_util.Pool} budget grants. Outcomes (solved,
          attempts, expansions, first solutions, memo keys) are
          byte-identical for every value; only wall-clock time moves. *)
  seed : int;  (** drives the mock LLM and example generation *)
  oracle : oracle;
      (** where candidate templates come from ({!Oracle_llm} by default).
          Orthogonal to every other knob: with [Oracle_llm] the pipeline
          is byte-identical to a build without the trace oracle. *)
}

(* The attempt/expansion caps are the binding limits: they are
   deterministic, so solve/fail outcomes do not flip with machine load.
   The wall-clock limit is a backstop (the paper used 60 minutes). *)
let default_budget = { Astar.max_attempts = 60_000; max_expansions = 300_000; timeout_s = 10. }

let base search grammar penalties label =
  {
    label;
    search;
    grammar;
    penalties;
    budget = default_budget;
    max_depth = 6;
    dedup = Astar.Fingerprint;
    verify = true;
    analysis = true;
    prune_mode = Astar.Prune_admission;
    batched_validate = true;
    search_domains = 1;
    seed = 20250604;
    oracle = Oracle_llm;
  }

(** The same method without the static-analysis layer (the [--no-analysis]
    differential mode); the label is unchanged so sweep outputs diff
    cleanly against analysis-on runs. *)
let without_analysis m = { m with analysis = false }

(** The same method with the given doomed-child absorption mode; label
    unchanged so sweep outputs diff cleanly across modes. *)
let with_prune_mode m prune_mode = { m with prune_mode }

(** The same method with batched (template-level) validation forced on or
    off; label unchanged so the [--batched-validate off] differential
    diffs cleanly against default runs. *)
let with_batched_validate m batched_validate = { m with batched_validate }

(** The same method searching with [search_domains] domains; label
    unchanged so sweep outputs diff cleanly across domain counts (the
    outcomes are byte-identical by design). *)
let with_search_domains m search_domains = { m with search_domains }

(** The same method drawing candidates from the given oracle; label
    unchanged, for differential runs ([--oracle llm] must diff cleanly
    against a default run). *)
let with_oracle m oracle = { m with oracle }

let stagg_td = base Top_down Refined Penalty.all_topdown "STAGG^TD"
let stagg_bu = base Bottom_up Refined Penalty.all_bottomup "STAGG^BU"

(* The trace-oracle method rows: STAGG^TD with candidates extracted from
   the kernel's own execution trace — alone, and unioned with the LLM. *)
let td_trace = { stagg_td with label = "Trace"; oracle = Oracle_trace }
let td_trace_llm = { stagg_td with label = "Trace+LLM"; oracle = Oracle_trace_llm }

(* Table 2: penalty ablations *)
let drop_penalty m (c : Penalty.criterion) =
  {
    m with
    label = Printf.sprintf "%s.Drop(%s)" m.label (Penalty.criterion_to_string c);
    penalties = List.filter (fun x -> x <> c) m.penalties;
  }

let drop_all_penalties m suffix = { m with label = m.label ^ ".Drop(" ^ suffix ^ ")"; penalties = [] }

(* Table 3: grammar ablations *)
let with_grammar m g suffix = { m with label = m.label ^ "." ^ suffix; grammar = g }

let td_equal_probability = with_grammar stagg_td Equal_probability "EqualProbability"
let td_llm_grammar = with_grammar stagg_td Llm_grammar "LLMGrammar"
let td_full_grammar = with_grammar stagg_td Full_grammar "FullGrammar"
let bu_equal_probability = with_grammar stagg_bu Equal_probability "EqualProbability"
let bu_llm_grammar = with_grammar stagg_bu Llm_grammar "LLMGrammar"
let bu_full_grammar = with_grammar stagg_bu Full_grammar "FullGrammar"
