(** Per-query outcome of a lifting run, with the measurements the paper's
    tables report: solved?, wall-clock time, synthesis attempts. *)

type t = {
  bench : string;
  method_label : string;
  solved : bool;
  solution : Stagg_validate.Validator.solution option;
  time_s : float;
  attempts : int;  (** templates sent to validation (Table 1/3 "attempts") *)
  expansions : int;  (** queue pops doing real work (excludes [pruned]) *)
  pruned : int;  (** pops skipped as provably-doomed by the static analysis (replay mode) *)
  suppressed : int;  (** doomed expansions never enqueued (admission mode) *)
  pruned_rules : int;  (** grammar rules the analysis marked doomed up front *)
  n_candidates : int;  (** syntactically valid LLM candidates parsed *)
  validate_s : float;  (** wall time inside the validator, incl. [verify_s] *)
  verify_s : float;  (** wall time inside the BMC verify hook *)
  instantiations : int;  (** concrete substitution instantiations executed *)
  par : Stagg_search.Astar.par_stats option;
      (** parallel-engine telemetry (speculated/committed/steal counts),
          summed over this query's searches; [None] when the run was
          configured sequential ([search_domains = 1]) *)
  traced : bool;
      (** the trace oracle ran and emitted at least one template for this
          query (always [false] under {!Method_.Oracle_llm}) *)
  trace_templates : int;  (** candidate templates the trace oracle emitted *)
  warnings : string list;  (** static-analysis warnings (precision losses etc.) *)
  failure : string option;  (** reason when unsolved *)
}

(** Time outside the validator: search/enumeration proper. *)
let search_s r = Float.max 0. (r.time_s -. r.validate_s)

let solved_names results =
  List.filter_map (fun r -> if r.solved then Some r.bench else None) results

let pp fmt r =
  Format.fprintf fmt "%-22s %-28s %s  %6.3fs  %4d attempts%s" r.bench r.method_label
    (if r.solved then "solved " else "FAILED ")
    r.time_s r.attempts
    (match (r.solved, r.solution) with
    | true, Some s -> "  " ^ Stagg_taco.Pretty.program_to_string s.concrete
    | _, _ -> Option.fold ~none:"" ~some:(fun m -> "  (" ^ m ^ ")") r.failure);
  List.iter (fun w -> Format.fprintf fmt "@\n%-22s   warning: %s" "" w) r.warnings
