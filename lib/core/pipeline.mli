(** The end-to-end STAGG pipeline (paper Fig. 1).

    ① query the LLM for candidate translations → ② templatize and learn a
    probabilistic grammar of templates (refined by the predicted dimension
    list, LHS dimension from static analysis) → ③ search the template
    space with weighted A* (top-down or bottom-up) → validate complete
    templates against I/O examples → ④ bounded verification of the
    surviving instantiation. *)

(** Intermediate artifacts, exposed for the CLI, the examples and the
    tests. *)
type prepared = {
  candidates : Stagg_taco.Ast.program list;  (** parsed LLM candidates *)
  templates : Stagg_taco.Ast.program list;  (** templatized candidates *)
  dim_list : int list;  (** predicted L, LHS overridden by static analysis *)
  pcfg : Stagg_grammar.Pcfg.t;
  penalty_ctx : Stagg_search.Penalty.ctx;
}

(** A lifting query: everything the pipeline needs about one legacy
    program. Suite benchmarks are one source of queries ({!query_of_bench});
    arbitrary C files with a signature spec and a recorded LLM transcript
    are another (the CLI's [lift-file]). *)
type query = {
  qname : string;
  func : Stagg_minic.Ast.func;
  signature : Stagg_minic.Signature.t;
  c_source : string;
  client : (module Stagg_oracle.Llm_client.S);
  oracle : Method_.oracle;
      (** candidate source for stage ① ({!Method_.Oracle_llm}: the paper's
          LLM-only pipeline; [Oracle_trace]: {!Stagg_oracle.Trace} only —
          the client is never consulted; [Oracle_trace_llm]: union, trace
          templates first). Baked into the query, and hence into its
          {!prefix}, so the method passed to {!lift_prefixed} need not
          repeat it. *)
}

(** [query_of_bench m b] packages a suite benchmark with its mock LLM.
    Only [m.seed] matters here: the mock-LLM stream is one per
    (seed, benchmark), shared by every method of a campaign. *)
val query_of_bench : Method_.t -> Stagg_benchsuite.Bench.t -> query

(** The method-independent prefix of preparation: parsed LLM candidates,
    templatized candidates, predicted dimension list, and the candidate
    statistics (operators, tensor counts, ranks, index counts) that the
    per-method grammar construction consumes. Depends only on the
    (seed, benchmark) pair baked into the query's client, so a campaign
    computes it once per benchmark and reuses it across every method
    sweep. *)
type prefix

(** [prefix_of_query q] runs stage ① and the method-independent half of
    stage ② — it consumes the query's LLM client (unless
    [q.oracle = Oracle_trace]) and, per [q.oracle], the trace oracle.
    [Error reason] when no oracle yields a usable candidate; under
    [Oracle_trace] the reason is the tracer's structured refusal. *)
val prefix_of_query : query -> (prefix, string) result

(** [prepared_of_prefix m p] finishes stage ② for one method: grammar
    generation, probability learning, penalty context. Cheap relative to
    {!prefix_of_query}. *)
val prepared_of_prefix : Method_.t -> prefix -> prepared

(** [prepare_query m q] runs stages ①–② and builds the grammar that stage
    ③ will search — {!prefix_of_query} composed with
    {!prepared_of_prefix}. [Error reason] when the LLM yields no usable
    candidate. *)
val prepare_query : Method_.t -> query -> (prepared, string) result

(** [prepare m bench] — {!prepare_query} on a suite benchmark. *)
val prepare : Method_.t -> Stagg_benchsuite.Bench.t -> (prepared, string) result

(** The analysis-guided rule-doom table for one prepared method, or
    [None] when the method disables the analysis (or runs the legacy
    [Pretty_key] dedup, which cannot replay pruned pops). [consts] is
    the kernel's literal-constant pool ({!Stagg_minic.Ast.constants}):
    an empty pool dooms every [Const] rule. Exposed for the CLI's
    [analyze] command; {!lift} applies it internally. *)
val prune_of :
  Method_.t -> query -> consts:'a list -> prepared -> Stagg_grammar.Prune.t option

(** [lift m q] — the whole pipeline on an arbitrary query; never raises.

    [memo_scope] (default [""]) prefixes the cross-sweep validation-memo
    key. It does NOT enter the example seed: a scoped lift draws the
    same examples (and hence produces byte-identical results) as an
    unscoped one, but shares no memoized verdicts with other scopes —
    the serve path stamps each server epoch's scope here so a long-lived
    process cannot bleed verdicts between epochs. Pick scopes ending in
    a delimiter that cannot occur in a [qname] (the server uses
    ["epoch<n>|"]) so distinct (scope, qname) pairs never concatenate to
    the same key. *)
val lift : ?memo_scope:string -> Method_.t -> query -> Result_.t

(** [lift_prefixed m q prefix] — stages ③–④ on a precomputed prefix
    (see {!prefix_of_query}); the query's client is not consulted.
    [lift m q] is [lift_prefixed m q (prefix_of_query q)]. *)
val lift_prefixed :
  ?memo_scope:string -> Method_.t -> query -> (prefix, string) result -> Result_.t

(** [run m bench] — the whole pipeline; never raises. *)
val run : Method_.t -> Stagg_benchsuite.Bench.t -> Result_.t

(** [run_suite ?jobs m benches] — [run] over a list; the output is
    ordered and bit-identical to the sequential run for any [jobs]
    (modulo [time_s]). [jobs] defaults to
    {!Stagg_util.Pool.default_jobs}; [~jobs:1] runs sequentially on the
    calling domain. *)
val run_suite : ?jobs:int -> Method_.t -> Stagg_benchsuite.Bench.t list -> Result_.t list
