open Stagg_util
open Stagg_grammar
open Stagg_search
open Stagg_template
module Bench = Stagg_benchsuite.Bench
module Validator = Stagg_validate.Validator
module Examples = Stagg_validate.Examples
module Bmc = Stagg_verify.Bmc

type prepared = {
  candidates : Stagg_taco.Ast.program list;
  templates : Stagg_taco.Ast.program list;
  dim_list : int list;
  pcfg : Pcfg.t;
  penalty_ctx : Penalty.ctx;
}

type query = {
  qname : string;
  func : Stagg_minic.Ast.func;
  signature : Stagg_minic.Signature.t;
  c_source : string;
  client : (module Stagg_oracle.Llm_client.S);
  oracle : Method_.oracle;
}

let query_of_bench (m : Method_.t) (b : Bench.t) : query =
  (* one deterministic mock-LLM stream per (seed, benchmark) *)
  let prng = Prng.create ~seed:(m.seed lxor Hashtbl.hash b.name) in
  let client =
    match Bench.truth b with
    | Some ground_truth -> Stagg_oracle.Mock_llm.client ~prng ~ground_truth ~quality:b.llm_quality
    | None -> Stagg_oracle.Replay.of_lines []
  in
  {
    qname = b.name;
    func = Bench.func b;
    signature = b.signature;
    c_source = b.c_source;
    client;
    oracle = m.oracle;
  }

let ops_in_templates templates =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun op ->
          if not (Hashtbl.mem seen op) then begin
            Hashtbl.add seen op ();
            acc := op :: !acc
          end)
        (Stagg_taco.Ast.ops_used t.Stagg_taco.Ast.rhs))
    templates;
  List.rev !acc

let grammar_has_const (cfg : Cfg.t) =
  Array.exists
    (fun (r : Cfg.rule) -> List.exists (fun s -> s = Cfg.T Cfg.Tok_const) r.rhs)
    (Cfg.rules cfg)

type prefix = {
  pf_candidates : Stagg_taco.Ast.program list;
  pf_templates : Stagg_taco.Ast.program list;
  pf_dim_list : int list;
  pf_ops : Stagg_taco.Ast.op list;
  pf_n_rhs_tensors : int;
  pf_max_rank : int;
  pf_n_indices : int;
  pf_traced : bool;
  pf_trace_templates : int;
  pf_trace_warning : string option;
}

let prefix_of_query (q : query) : (prefix, string) result =
  (* Stage ① per the method's oracle. The trace oracle's programs enter
     the very same funnel as parsed LLM responses: candidates →
     templatize → dimension prediction → grammar statistics. Under
     [Oracle_llm] the trace oracle is never consulted, keeping that path
     byte-identical to a build without it. *)
  let trace_result =
    match q.oracle with
    | Method_.Oracle_llm -> None
    | Method_.Oracle_trace | Method_.Oracle_trace_llm ->
        Some (Stagg_oracle.Trace.skeletons q.func q.signature)
  in
  let trace_candidates =
    match trace_result with Some (Ok ps) -> ps | Some (Error _) | None -> []
  in
  let pf_trace_warning =
    match trace_result with
    | Some (Error r) -> Some (Stagg_oracle.Trace.refusal_to_string r)
    | _ -> None
  in
  let llm_candidates () =
    let (module Llm) = q.client in
    let responses = Llm.query ~prompt:(Stagg_oracle.Prompt.build ~c_source:q.c_source) in
    Stagg_oracle.Response.parse_all responses
  in
  let candidates, empty_reason =
    match q.oracle with
    | Method_.Oracle_llm -> (llm_candidates (), "no syntactically valid LLM candidates")
    | Method_.Oracle_trace -> (
        ( trace_candidates,
          match pf_trace_warning with
          | Some w -> w
          | None -> "trace oracle emitted no candidates" ))
    | Method_.Oracle_trace_llm ->
        (trace_candidates @ llm_candidates (), "no candidates from trace or LLM")
  in
  let pf_traced = trace_candidates <> [] in
  let pf_trace_templates = List.length trace_candidates in
  if candidates = [] then Error empty_reason
  else begin
    let templates = List.filter_map Templatize.templatize candidates in
    if templates = [] then
      Error
        (match q.oracle with
        | Method_.Oracle_trace -> "no templatizable trace candidates"
        | _ -> "no templatizable LLM candidates")
    else begin
      match Dimlist.predict templates with
      | None -> Error "dimension prediction failed"
      | Some predicted ->
          (* static analysis takes precedence for the LHS (§4.2.3) *)
          let dim_list =
            match Stagg_minic.Dims.lhs_dim q.func with
            | Some d -> Dimlist.override_lhs predicted d
            | None -> predicted
          in
          (* The LLMGrammar/FullGrammar ablations drop the §4.2.4 dimension
             refinement but keep the §4.2.2 symbol restriction: tensor
             names, maximal rank and index variables still come from the
             candidate set (the paper restricts the base grammar to "the
             names we have chosen as symbolic tensor variables" before any
             dimension reasoning). *)
          let n_rhs_tensors =
            max 1
              (List.fold_left
                 (fun acc t -> max acc (List.length (Templatize.symbols t) - 1))
                 0 templates)
          in
          let max_rank =
            max 1
              (List.fold_left
                 (fun acc t ->
                   List.fold_left (fun a (_, r) -> max a r) acc (Templatize.symbols t))
                 0 templates)
          in
          Ok
            {
              pf_candidates = candidates;
              pf_templates = templates;
              pf_dim_list = dim_list;
              pf_ops = ops_in_templates templates;
              pf_n_rhs_tensors = n_rhs_tensors;
              pf_max_rank = max_rank;
              pf_n_indices = Genlib.unique_index_count templates;
              pf_traced;
              pf_trace_templates;
              pf_trace_warning;
            }
    end
  end

let prepared_of_prefix (m : Method_.t) (p : prefix) : prepared =
  let dim_list = p.pf_dim_list and templates = p.pf_templates in
  let cfg =
    match (m.search, m.grammar) with
    | _, (Method_.Refined | Method_.Equal_probability) -> (
        match m.search with
        | Method_.Top_down -> Gen_topdown.generate ~dim_list ~templates
        | Method_.Bottom_up -> Gen_bottomup.generate ~dim_list ~templates)
    | Method_.Top_down, (Method_.Llm_grammar | Method_.Full_grammar) ->
        Taco_grammar.generate ~n_rhs_tensors:p.pf_n_rhs_tensors ~max_rank:p.pf_max_rank
          ~n_indices:p.pf_n_indices ()
    | Method_.Bottom_up, (Method_.Llm_grammar | Method_.Full_grammar) ->
        Gen_bottomup.generate_full ~n_rhs_tensors:p.pf_n_rhs_tensors ~max_rank:p.pf_max_rank
          ~n_indices:p.pf_n_indices ()
  in
  let pcfg =
    match m.grammar with
    | Method_.Refined | Method_.Llm_grammar ->
        Pcfg.of_weights cfg (Derive.weights_of_templates cfg templates)
    | Method_.Equal_probability | Method_.Full_grammar -> Pcfg.uniform cfg
  in
  let penalty_ctx =
    {
      Penalty.dim_list;
      ops_available = p.pf_ops;
      grammar_has_const = grammar_has_const cfg;
      enabled = m.penalties;
    }
  in
  { candidates = p.pf_candidates; templates; dim_list; pcfg; penalty_ctx }

let prepare_query (m : Method_.t) (q : query) : (prepared, string) result =
  Result.map (prepared_of_prefix m) (prefix_of_query q)

let prepare m b = prepare_query m (query_of_bench m b)

(* The static-analysis half of stage ② bis: facts for fail-fast and
   warnings, plus the sound grammar restriction handed to the search.
   The prune context is built from the SIGNATURE (the validator's own
   rank source), never from inferred ranks — inferred-vs-signature
   disagreements are recorded as warnings instead. *)
let facts_warnings (q : query) (facts : Stagg_minic.Facts.t) ~(dim_list : int list option) :
    string list =
  let sig_out_rank = Stagg_minic.Signature.rank_of_spec (Stagg_minic.Signature.out_spec q.signature) in
  let extra = ref [] in
  (match facts.ft_out_rank with
  | Some r when r <> sig_out_rank ->
      extra :=
        Printf.sprintf "analysis: inferred output rank %d disagrees with signature rank %d" r
          sig_out_rank
        :: !extra
  | _ -> ());
  (match dim_list with
  | Some (lhs :: _) when lhs <> sig_out_rank ->
      extra :=
        Printf.sprintf "analysis: predicted LHS dimension %d disagrees with signature output rank %d"
          lhs sig_out_rank
        :: !extra
  | _ -> ());
  facts.ft_warnings @ List.rev !extra

let prune_of (m : Method_.t) (q : query) ~(consts : 'a list) (prep : prepared) :
    Stagg_grammar.Prune.t option =
  if not (m.analysis && m.dedup = Astar.Fingerprint) then None
  else
    let module Sig = Stagg_minic.Signature in
    Some
      (Prune.restrict (Pcfg.cfg prep.pcfg)
         {
           Prune.out_rank = Some (Sig.rank_of_spec (Sig.out_spec q.signature));
           arg_ranks = Some (List.map (fun (_, s) -> Sig.rank_of_spec s) q.signature.Sig.args);
           no_consts = consts = [];
           lhs_name = Genlib.tensor_name 0;
         })

let lift_prefixed ?(memo_scope = "") (m : Method_.t) (q : query)
    (prefix_r : (prefix, string) result) : Result_.t =
  let started = Unix.gettimeofday () in
  (* Per-phase accumulators. [validate_s] and [instantiations] are only
     ever mutated on the search's coordinator domain (sequentially, or
     via commit-time thunks under the parallel engine), so plain refs
     are fine; [verify_s] accumulates inside the BMC hook, which the
     parallel engine may run on a worker domain — it gets a mutex. *)
  let validate_s = ref 0. and verify_s = ref 0. and instantiations = ref 0 in
  let verify_mu = Mutex.create () in
  let par = ref None in
  let facts = if m.analysis then Some (Stagg_minic.Facts.analyze q.func) else None in
  let traced, trace_templates, trace_warning =
    match prefix_r with
    | Ok p -> (p.pf_traced, p.pf_trace_templates, p.pf_trace_warning)
    | Error _ -> (false, 0, None)
  in
  let finish ?(pruned = 0) ?(suppressed = 0) ?(pruned_rules = 0) ?(warnings = []) ~solved
      ~solution ~attempts ~expansions ~n_candidates ~failure () =
    {
      Result_.bench = q.qname;
      method_label = m.label;
      solved;
      solution;
      time_s = Unix.gettimeofday () -. started;
      attempts;
      expansions;
      pruned;
      suppressed;
      pruned_rules;
      n_candidates;
      validate_s = !validate_s;
      verify_s = !verify_s;
      instantiations = !instantiations;
      par = !par;
      traced;
      trace_templates;
      (* a trace refusal is a warning, not a failure: the search still
         runs on whatever candidates remain (none, under Oracle_trace) *)
      warnings = warnings @ Option.to_list trace_warning;
      failure;
    }
  in
  match facts with
  | Some f when Result.is_error f.ft_verdict ->
      (* fail fast: no grammar, no search — the diagnostic is the result *)
      let diag = match f.ft_verdict with Error d -> d | Ok () -> assert false in
      finish ~solved:false ~solution:None ~attempts:0 ~expansions:0 ~n_candidates:0
        ~warnings:(facts_warnings q f ~dim_list:None)
        ~failure:(Some ("not liftable: " ^ diag))
        ()
  | _ -> (
  match Result.map (prepared_of_prefix m) prefix_r with
  | Error reason ->
      let warnings =
        match facts with None -> [] | Some f -> facts_warnings q f ~dim_list:None
      in
      finish ~solved:false ~solution:None ~attempts:0 ~expansions:0 ~n_candidates:0 ~warnings
        ~failure:(Some reason) ()
  | Ok prep -> (
      let n_candidates = List.length prep.candidates in
      let func = q.func in
      let warnings =
        match facts with
        | None -> []
        | Some f -> facts_warnings q f ~dim_list:(Some prep.dim_list)
      in
      let example_seed = m.seed lxor Hashtbl.hash (q.qname, "examples") in
      let prng = Prng.create ~seed:example_seed in
      match Examples.generate ~func ~signature:q.signature ~prng () with
      | Error msg ->
          finish ~solved:false ~solution:None ~attempts:0 ~expansions:0 ~n_candidates ~warnings
            ~failure:(Some msg) ()
      | Ok examples -> (
          let verify concrete =
            if not m.verify then true
            else begin
              let t0 = Unix.gettimeofday () in
              let ok =
                match Bmc.check ~func ~signature:q.signature ~candidate:concrete () with
                | Bmc.Equivalent -> true
                | Bmc.Not_equivalent _ | Bmc.Inconclusive _ -> false
              in
              let dt = Unix.gettimeofday () -. t0 in
              Mutex.protect verify_mu (fun () -> verify_s := !verify_s +. dt);
              ok
            end
          in
          let consts = Stagg_minic.Ast.constants func in
          (* the examples are a function of (benchmark, example_seed), so
             this key scopes the cross-sweep validation memo correctly.
             [memo_scope] prefixes the key WITHOUT entering the example
             seed: a serve epoch isolates its verdicts from other epochs
             while drawing examples identical to the direct pipeline's,
             so lifted outputs stay byte-identical across both paths. *)
          let memo_key = Printf.sprintf "%s%s#%d" memo_scope q.qname example_seed in
          (* prepared once per query: the checker depends only on
             (signature, examples), not on the template under test *)
          let checker = Validator.prepare ~signature:q.signature ~examples in
          let validate template =
            let t0 = Unix.gettimeofday () in
            let sol, n =
              Validator.validate_counted ~signature:q.signature ~checker ~consts ~verify
                ~memo_key ~batched:m.batched_validate template
            in
            validate_s := !validate_s +. (Unix.gettimeofday () -. t0);
            instantiations := !instantiations + n;
            sol
          in
          (* The staged split of [validate] for the parallel engine: the
             expensive pure compute (instantiation, example checking,
             BMC) runs where the engine chooses — possibly a worker
             domain — and the returned thunk, always invoked on the
             coordinator at the pop's commit point, applies the
             observable accumulator effects in commit order. Applying
             the thunk immediately is exactly [validate], so inline and
             speculative validations interleave without skew. *)
          let staged_validate template =
            let t0 = Unix.gettimeofday () in
            let sol, n =
              Validator.validate_counted ~signature:q.signature ~checker ~consts ~verify
                ~memo_key ~batched:m.batched_validate template
            in
            let dt = Unix.gettimeofday () -. t0 in
            fun () ->
              validate_s := !validate_s +. dt;
              instantiations := !instantiations + n;
              sol
          in
          let staged_validate =
            if m.search_domains = 1 then None else Some staged_validate
          in
          let on_par_stats =
            if m.search_domains = 1 then None else Some (fun ps -> par := Some ps)
          in
          let prune = prune_of m q ~consts prep in
          let pruned_rules =
            match prune with Some pr -> Prune.n_doomed pr | None -> 0
          in
          let outcome =
            match m.search with
            | Method_.Top_down ->
                Astar.search_topdown ~pcfg:prep.pcfg ~penalty_ctx:prep.penalty_ctx
                  ~max_depth:m.max_depth ~dedup:m.dedup ?prune ~prune_mode:m.prune_mode
                  ~domains:m.search_domains ?staged_validate ?on_par_stats ~budget:m.budget
                  ~validate ()
            | Method_.Bottom_up ->
                Astar.search_bottomup ~pcfg:prep.pcfg ~penalty_ctx:prep.penalty_ctx
                  ~dim_list:prep.dim_list ~dedup:m.dedup ?prune ~prune_mode:m.prune_mode
                  ~domains:m.search_domains ?staged_validate ?on_par_stats ~budget:m.budget
                  ~validate ()
          in
          let stats = Astar.stats_of outcome in
          let finish =
            finish ~pruned:stats.pruned ~suppressed:stats.suppressed ~pruned_rules ~warnings
              ~n_candidates
          in
          match outcome with
          | Astar.Solved (sol, _) ->
              finish ~solved:true ~solution:(Some sol) ~attempts:stats.attempts
                ~expansions:stats.expansions ~failure:None ()
          | Astar.Exhausted _ ->
              finish ~solved:false ~solution:None ~attempts:stats.attempts
                ~expansions:stats.expansions ~failure:(Some "search space exhausted") ()
          | Astar.Budget_exceeded (Astar.Timeout, _) ->
              finish ~solved:false ~solution:None ~attempts:stats.attempts
                ~expansions:stats.expansions ~failure:(Some "timeout") ()
          | Astar.Budget_exceeded (_, _) ->
              finish ~solved:false ~solution:None ~attempts:stats.attempts
                ~expansions:stats.expansions ~failure:(Some "budget exceeded") ())))

let lift ?memo_scope (m : Method_.t) (q : query) : Result_.t =
  lift_prefixed ?memo_scope m q (prefix_of_query q)

let run (m : Method_.t) (b : Bench.t) : Result_.t = lift m (query_of_bench m b)

let run_suite ?jobs m benches = Pool.map ?jobs (run m) benches
