(** The template validator (paper §6, Fig. 8).

    Given a complete template from the search, enumerates every sound
    substitution of the legacy program's arguments (and source constants)
    for the template's symbols and executes the resulting concrete TACO
    program on the I/O examples. The first instantiation that satisfies
    every example — and, when a [verify] hook is supplied, passes bounded
    verification (§7: on verification failure the validator keeps exploring
    substitutions) — is returned.

    Execution is staged ({!Stagg_taco.Compile}) and, by default,
    {e batched}: the whole template is compiled once (plan + closure tree,
    via a per-domain compiled-template cache shared across pops and
    sweeps), and each substitution is a [rebind] — slot retargeting plus a
    constant-cell write over shared allocation-free scratch — instead of an
    instantiate + compile. Batched and per-candidate validation test the
    same substitutions in the same order with the same memo keys, so their
    results, counts, and memo contents are observably identical (the
    [@smoke] differential and a QCheck suite enforce this). Examples are
    checked cheapest-first with an early exit at the first mismatching
    cell. *)

open Stagg_util

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Stagg_template.Subst.t;
  concrete : Stagg_taco.Ast.program;  (** over the C parameter names *)
}

val pp_solution : Format.formatter -> solution -> unit

(** Number of instantiations executed by the last [validate] call on any
    domain (observability for sequential callers and tests; under a domain
    pool use {!validate_counted} for a race-free per-call count). *)
val last_instantiations : unit -> int

(** A prepared example set — per-example tensor environments (assoc list
    and slot-resolved table), expected outputs and cheapest-first ordering
    — computed once per (signature, examples) and reused across every
    template and candidate checked against those examples. *)
type checker

val prepare :
  signature:Stagg_minic.Signature.t -> examples:Examples.example list -> checker

(** [validate ~signature ~examples ~consts ?verify ?memo_key ?batched
    template] — first substitution (if any) whose instantiation reproduces
    every example and passes [verify]. Convenience wrapper over
    {!validate_counted} that prepares the examples itself; callers
    validating many templates against the same examples should [prepare]
    once instead.

    [memo_key] opts into the process-wide validation memo: example
    verdicts are cached under [(memo_key, printed concrete program)] and
    shared across the campaign's method sweeps (and worker domains). The
    key must determine the examples — the harness uses
    ["bench#example-seed"]. Verdicts are deterministic functions of the
    key, so memoized and recomputed runs are observably identical. The
    [verify] outcome is never memoized.

    [batched] (default [true]) selects template-level compilation +
    rebind; [false] forces the per-candidate instantiate + compile path.
    The two are observably identical — the flag exists for the on/off
    differential and ablation. *)
val validate :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  consts:Rat.t list ->
  ?verify:(Stagg_taco.Ast.program -> bool) ->
  ?memo_key:string ->
  ?batched:bool ->
  Stagg_taco.Ast.program ->
  solution option

(** As {!validate}, over a prepared [checker], and also returns how many
    instantiations this call executed (race-free under the domain pool,
    unlike {!last_instantiations}). *)
val validate_counted :
  signature:Stagg_minic.Signature.t ->
  checker:checker ->
  consts:Rat.t list ->
  ?verify:(Stagg_taco.Ast.program -> bool) ->
  ?memo_key:string ->
  ?batched:bool ->
  Stagg_taco.Ast.program ->
  solution option * int

(** Globally enable/disable the validation memo (default: enabled). The
    determinism test runs the suite both ways and compares. *)
val set_memo_enabled : bool -> unit

val clear_memo : unit -> unit
val memo_size : unit -> int

(** [check ck p] — does the {e concrete} TACO program [p] (over the C
    parameter names) reproduce every example? *)
val check : checker -> Stagg_taco.Ast.program -> bool

(** [check_concrete ~signature ~examples p] = [check (prepare ...) p]. *)
val check_concrete :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  Stagg_taco.Ast.program ->
  bool

(** Validator telemetry: process-wide counters over the verdict memo
    (hits, misses, and entries evicted by generation rotation — the memo
    is bounded at ~500k entries but keeps admitting, unlike the old
    reject-on-full backstop) and the batched path's per-domain LRU
    compiled-template cache. *)
type stats = {
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;
  template_compiles : int;
  template_cache_hits : int;
  template_cache_evictions : int;
  template_overflows : int;
      (** templates whose LHS rank exceeds {!Stagg_taco.Shape.max_rank}:
          validated on the per-candidate fallback path *)
}

(** Counters since the last {!reset_stats} (process start if never
    reset). The underlying totals are monotonic; two [stats] snapshots
    subtract to an exact interval delta even while other domains keep
    validating — how the serve path meters per-request telemetry. *)
val stats : unit -> stats

(** Re-baseline {!stats} to zero. Safe to call concurrently with
    in-flight validation: implemented as baseline capture over monotonic
    counters, so increments are never lost (the previous implementation
    zeroed the counters and could drop racing increments). *)
val reset_stats : unit -> unit
