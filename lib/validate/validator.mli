(** The template validator (paper §6, Fig. 8).

    Given a complete template from the search, enumerates every sound
    substitution of the legacy program's arguments (and source constants)
    for the template's symbols, instantiates, and executes the resulting
    concrete TACO program on the I/O examples. The first instantiation
    that satisfies every example — and, when a [verify] hook is supplied,
    passes bounded verification (§7: on verification failure the validator
    keeps exploring substitutions) — is returned.

    Execution is staged ({!Stagg_taco.Compile}): each instantiation is
    compiled once and reused across all examples, and examples are checked
    cheapest-first with an early exit at the first mismatching cell. *)

open Stagg_util

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Stagg_template.Subst.t;
  concrete : Stagg_taco.Ast.program;  (** over the C parameter names *)
}

val pp_solution : Format.formatter -> solution -> unit

(** Number of instantiations executed by the last [validate] call on any
    domain (observability for sequential callers and tests; under a domain
    pool use {!validate_counted} for a race-free per-call count). *)
val last_instantiations : unit -> int

(** [validate ~signature ~examples ~consts ?verify ?memo_key template] —
    first substitution (if any) whose instantiation reproduces every
    example and passes [verify].

    [memo_key] opts into the process-wide validation memo: example
    verdicts are cached under [(memo_key, printed concrete program)] and
    shared across the campaign's method sweeps (and worker domains). The
    key must determine the examples — the harness uses
    ["bench#example-seed"]. Verdicts are deterministic functions of the
    key, so memoized and recomputed runs are observably identical. The
    [verify] outcome is never memoized. *)
val validate :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  consts:Rat.t list ->
  ?verify:(Stagg_taco.Ast.program -> bool) ->
  ?memo_key:string ->
  Stagg_taco.Ast.program ->
  solution option

(** As {!validate}, and also returns how many instantiations this call
    executed (race-free under the domain pool, unlike
    {!last_instantiations}). *)
val validate_counted :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  consts:Rat.t list ->
  ?verify:(Stagg_taco.Ast.program -> bool) ->
  ?memo_key:string ->
  Stagg_taco.Ast.program ->
  solution option * int

(** Globally enable/disable the validation memo (default: enabled). The
    determinism test runs the suite both ways and compares. *)
val set_memo_enabled : bool -> unit

val clear_memo : unit -> unit
val memo_size : unit -> int

(** A prepared example set: per-example tensor environments, expected
    outputs and cheapest-first ordering, computed once. For callers that
    check many concrete programs against the same examples
    (C2TACO's enumeration). *)
type checker

val prepare :
  signature:Stagg_minic.Signature.t -> examples:Examples.example list -> checker

(** [check ck p] — does the {e concrete} TACO program [p] (over the C
    parameter names) reproduce every example? *)
val check : checker -> Stagg_taco.Ast.program -> bool

(** [check_concrete ~signature ~examples p] = [check (prepare ...) p]. *)
val check_concrete :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  Stagg_taco.Ast.program ->
  bool
