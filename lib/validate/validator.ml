open Stagg_util
open Stagg_template
module Sig = Stagg_minic.Signature
module Tensor = Stagg_taco.Tensor
module Tcompile = Stagg_taco.Compile.Make (Value.Rat_value)

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Subst.t;
  concrete : Stagg_taco.Ast.program;
}

let pp_solution fmt s =
  Format.fprintf fmt "%s via %a"
    (Stagg_taco.Pretty.program_to_string s.concrete)
    Subst.pp s.subst

(* ---- prepared examples ----

   Everything example-dependent but program-independent — the tensor
   environment (both as the public assoc list and as a slot-resolved hash
   table the compiled evaluators bind through), the output shape, the
   expected flat output, the cost — is computed once per (signature,
   examples) and reused across every instantiation. Examples are ordered
   cheapest-first (fewest cells) so the first counterexample kills a bad
   substitution as early as possible; the verdict is a conjunction, so the
   order cannot change it. *)

type prepared_example = {
  env : (string * Rat.t Tensor.t) list;
  table : Tcompile.table;  (** [env], resolved once, for the hot bind loop *)
  out_shape : int array;
  expected : Rat.t array;
  cost : int;  (** total input + output cells: evaluation work proxy *)
}

type checker = prepared_example list

let prepare_example ~(signature : Sig.t) (ex : Examples.example) : prepared_example =
  let env =
    List.map
      (fun (name, spec) ->
        let flat = List.assoc name ex.Examples.inputs in
        match spec with
        | Sig.Size _ | Sig.Scalar_data -> (name, Tensor.scalar flat.(0))
        | Sig.Arr _ -> (name, Tensor.of_flat_array (Sig.shape ~sizes:ex.sizes spec) flat))
      signature.args
  in
  let out_shape = Sig.shape ~sizes:ex.sizes (Sig.out_spec signature) in
  let cost =
    Array.length ex.output
    + List.fold_left (fun acc (_, t) -> acc + Tensor.size t) 0 env
  in
  { env; table = Tcompile.table_of_env env; out_shape; expected = ex.output; cost }

let prepare ~signature ~examples : checker =
  List.stable_sort
    (fun a b -> Int.compare a.cost b.cost)
    (List.map (prepare_example ~signature) examples)

(* Does the compiled candidate reproduce every prepared example? Each
   example is slot binding plus an early-exit cell comparison. *)
let check_compiled compiled prepared =
  List.for_all
    (fun pe ->
      Tcompile.run_equal_table compiled ~table:pe.table ~lhs_shape:pe.out_shape
        ~expected:pe.expected)
    prepared

let check prepared p = check_compiled (Tcompile.compile p) prepared

let check_concrete ~signature ~examples p = check (prepare ~signature ~examples) p

(* ---- validator telemetry ----

   Process-wide atomic counters: verdict-memo traffic (including adds the
   [memo_max] backstop rejects, which were previously dropped silently) and
   template-compilation traffic for the batched path. Monotonic across the
   campaign; [reset_stats] is for tests. *)

type stats = {
  memo_hits : int;
  memo_misses : int;
  memo_rejected : int;  (** adds dropped by the [memo_max] backstop *)
  template_compiles : int;  (** [compile_template] runs (template-cache misses) *)
  template_cache_hits : int;
  template_cache_rejected : int;  (** adds dropped by the cache cap *)
  template_overflows : int;  (** templates over MAXRANK: per-candidate fallback *)
}

let c_memo_hits = Atomic.make 0
let c_memo_misses = Atomic.make 0
let c_memo_rejected = Atomic.make 0
let c_template_compiles = Atomic.make 0
let c_template_cache_hits = Atomic.make 0
let c_template_cache_rejected = Atomic.make 0
let c_template_overflows = Atomic.make 0
let bump c = Atomic.incr c

let stats () =
  {
    memo_hits = Atomic.get c_memo_hits;
    memo_misses = Atomic.get c_memo_misses;
    memo_rejected = Atomic.get c_memo_rejected;
    template_compiles = Atomic.get c_template_compiles;
    template_cache_hits = Atomic.get c_template_cache_hits;
    template_cache_rejected = Atomic.get c_template_cache_rejected;
    template_overflows = Atomic.get c_template_overflows;
  }

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      c_memo_hits;
      c_memo_misses;
      c_memo_rejected;
      c_template_compiles;
      c_template_cache_hits;
      c_template_cache_rejected;
      c_template_overflows;
    ]

(* ---- the cross-sweep validation memo ----

   The ~20 method sweeps of a campaign share one candidate prefix per
   benchmark, so their searches keep producing the same concrete
   programs. The example verdict is a deterministic function of
   (benchmark examples, concrete program) — examples are derived from the
   campaign seed — so it is safe to share across sweeps and across
   domains: memoized or recomputed, the verdict is identical, which keeps
   the harness's any-[--jobs N] determinism guarantee. Keyed by the
   caller-supplied [memo_key] (benchmark + example seed) plus the printed
   concrete program; guarded by a mutex like [Bench.func_cache]. Only the
   example verdict is memoized — never the [verify] (BMC) outcome, which
   is a per-method choice.

   Keyed by the (memo_key, printed program) PAIR, not their
   concatenation: a separator-joined string is ambiguous the moment a
   benchmark id contains the separator, silently sharing verdicts
   between distinct (key, program) pairs. *)

let memo : (string * string, bool) Hashtbl.t = Hashtbl.create 4096
let memo_lock = Mutex.create ()
let memo_enabled = Atomic.make true
let set_memo_enabled b = Atomic.set memo_enabled b
let clear_memo () = Mutex.protect memo_lock (fun () -> Hashtbl.reset memo)
let memo_size () = Mutex.protect memo_lock (fun () -> Hashtbl.length memo)

(* backstop against unbounded growth on very long campaigns *)
let memo_max = 500_000

let memo_find key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)

let memo_add key v =
  Mutex.protect memo_lock (fun () ->
      if Hashtbl.length memo < memo_max then Hashtbl.replace memo key v
      else bump c_memo_rejected)

(* ---- the per-domain compiled-template cache ----

   Search re-pops structurally identical complete templates constantly:
   children of one A* parent share the whole completed prefix, the
   FullGrammar template space is benchmark-independent, and the ~20 sweeps
   of a campaign traverse the same frontier. A compiled template is
   env-independent (examples only enter at bind time), so its plan and
   closure tree can be reused across all of them. The cache is
   domain-local ([Domain.DLS]) because a compiled evaluator carries
   mutable scratch that must never be shared across workers; each worker
   domain warms its own copy, which also makes the cache lock-free. *)

let template_cache_max = 8192

let template_cache_key : (string, Tcompile.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

(* [None] = the template exceeds the fixed MAXRANK scratch capacity; the
   caller falls back to per-candidate compilation. *)
let compiled_template_for template : Tcompile.t option =
  let cache = Domain.DLS.get template_cache_key in
  let key = Stagg_taco.Pretty.program_to_string template in
  match Hashtbl.find_opt cache key with
  | Some ct ->
      bump c_template_cache_hits;
      Some ct
  | None -> (
      match Tcompile.compile_template ~const_symbol:Templatize.const_symbol template with
      | exception Tcompile.Rank_overflow _ ->
          bump c_template_overflows;
          None
      | ct ->
          bump c_template_compiles;
          if Hashtbl.length cache < template_cache_max then Hashtbl.replace cache key ct
          else bump c_template_cache_rejected;
          Some ct)

(* Instantiation observability: the count is accumulated per call (no
   shared counter on the hot path — the old global [ref] raced under the
   domain pool) and the last count is published to an atomic for the
   sequential [last_instantiations] API. *)

let last_count = Atomic.make 0
let last_instantiations () = Atomic.get last_count

let validate_counted ~signature ~(checker : checker) ~consts ?(verify = fun _ -> true)
    ?memo_key ?(batched = true) template =
  let args =
    List.map
      (fun (name, spec) ->
        {
          Subst.name;
          rank = Some (Sig.rank_of_spec spec);
          is_size = (match spec with Sig.Size _ -> true | _ -> false);
        })
      signature.Sig.args
  in
  let out_rank = Sig.rank_of_spec (Sig.out_spec signature) in
  let substs =
    Subst.enumerate_seq ~template ~out:signature.Sig.out ~out_rank ~args ~consts
  in
  let ct = if batched then compiled_template_for template else None in
  let count = ref 0 in
  (* Both arms test the same substitutions in the same order with the same
     memo keys — the batched arm prints the would-be concrete program
     directly from the template ([program_to_string_renamed] is
     byte-identical to printing the instantiation) and only builds the
     concrete AST for a passing substitution. *)
  let test (subst : Subst.t) =
    incr count;
    let passes =
      match ct with
      | Some ct -> (
          let rebind_and_check () =
            Tcompile.rebind ct ~mapping:subst.Subst.tensor_binding
              ~const:subst.Subst.const_binding;
            check_compiled ct checker
          in
          match memo_key with
          | Some mk when Atomic.get memo_enabled -> (
              let printed =
                Stagg_taco.Pretty.program_to_string_renamed
                  ~mapping:subst.Subst.tensor_binding ~const:subst.Subst.const_binding
                  ~is_const:Templatize.is_const_symbol template
              in
              let key = (mk, printed) in
              match memo_find key with
              | Some v ->
                  bump c_memo_hits;
                  v
              | None ->
                  bump c_memo_misses;
                  let v = rebind_and_check () in
                  memo_add key v;
                  v)
          | _ -> rebind_and_check ())
      | None -> (
          let concrete = Subst.instantiate template subst in
          match memo_key with
          | Some mk when Atomic.get memo_enabled -> (
              let key = (mk, Stagg_taco.Pretty.program_to_string concrete) in
              match memo_find key with
              | Some v ->
                  bump c_memo_hits;
                  v
              | None ->
                  bump c_memo_misses;
                  let v = check checker concrete in
                  memo_add key v;
                  v)
          | _ -> check checker concrete)
    in
    if passes then begin
      let concrete = Subst.instantiate template subst in
      if verify concrete then Some { template; subst; concrete } else None
    end
    else None
  in
  let solution = Seq.find_map test substs in
  (solution, !count)

let validate ~signature ~examples ~consts ?verify ?memo_key ?batched template =
  let checker = prepare ~signature ~examples in
  let solution, count =
    validate_counted ~signature ~checker ~consts ?verify ?memo_key ?batched template
  in
  Atomic.set last_count count;
  solution
