open Stagg_util
open Stagg_template
module Sig = Stagg_minic.Signature
module Tensor = Stagg_taco.Tensor
module Tcompile = Stagg_taco.Compile.Make (Value.Rat_value)

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Subst.t;
  concrete : Stagg_taco.Ast.program;
}

let pp_solution fmt s =
  Format.fprintf fmt "%s via %a"
    (Stagg_taco.Pretty.program_to_string s.concrete)
    Subst.pp s.subst

(* ---- prepared examples ----

   Everything example-dependent but program-independent — the tensor
   environment, the output shape, the expected flat output, the cost — is
   computed once per (signature, examples) and reused across every
   instantiation. Examples are ordered cheapest-first (fewest cells) so
   the first counterexample kills a bad substitution as early as
   possible; the verdict is a conjunction, so the order cannot change
   it. *)

type prepared_example = {
  env : (string * Rat.t Tensor.t) list;
  out_shape : int array;
  expected : Rat.t array;
  cost : int;  (** total input + output cells: evaluation work proxy *)
}

type checker = prepared_example list

let prepare_example ~(signature : Sig.t) (ex : Examples.example) : prepared_example =
  let env =
    List.map
      (fun (name, spec) ->
        let flat = List.assoc name ex.Examples.inputs in
        match spec with
        | Sig.Size _ | Sig.Scalar_data -> (name, Tensor.scalar flat.(0))
        | Sig.Arr _ -> (name, Tensor.of_flat_array (Sig.shape ~sizes:ex.sizes spec) flat))
      signature.args
  in
  let out_shape = Sig.shape ~sizes:ex.sizes (Sig.out_spec signature) in
  let cost =
    Array.length ex.output
    + List.fold_left (fun acc (_, t) -> acc + Tensor.size t) 0 env
  in
  { env; out_shape; expected = ex.output; cost }

let prepare ~signature ~examples : checker =
  List.stable_sort
    (fun a b -> compare a.cost b.cost)
    (List.map (prepare_example ~signature) examples)

(* Does [concrete] reproduce every prepared example? Compiled once, then
   each example is slot binding plus an early-exit cell comparison. *)
let check_compiled compiled prepared =
  List.for_all
    (fun pe -> Tcompile.run_equal compiled ~env:pe.env ~lhs_shape:pe.out_shape ~expected:pe.expected)
    prepared

let check prepared p = check_compiled (Tcompile.compile p) prepared

let check_concrete ~signature ~examples p = check (prepare ~signature ~examples) p

(* ---- the cross-sweep validation memo ----

   The ~20 method sweeps of a campaign share one candidate prefix per
   benchmark, so their searches keep producing the same concrete
   programs. The example verdict is a deterministic function of
   (benchmark examples, concrete program) — examples are derived from the
   campaign seed — so it is safe to share across sweeps and across
   domains: memoized or recomputed, the verdict is identical, which keeps
   the harness's any-[--jobs N] determinism guarantee. Keyed by the
   caller-supplied [memo_key] (benchmark + example seed) plus the printed
   concrete program; guarded by a mutex like [Bench.func_cache]. Only the
   example verdict is memoized — never the [verify] (BMC) outcome, which
   is a per-method choice.

   Keyed by the (memo_key, printed program) PAIR, not their
   concatenation: a separator-joined string is ambiguous the moment a
   benchmark id contains the separator, silently sharing verdicts
   between distinct (key, program) pairs. *)

let memo : (string * string, bool) Hashtbl.t = Hashtbl.create 4096
let memo_lock = Mutex.create ()
let memo_enabled = Atomic.make true
let set_memo_enabled b = Atomic.set memo_enabled b
let clear_memo () = Mutex.protect memo_lock (fun () -> Hashtbl.reset memo)
let memo_size () = Mutex.protect memo_lock (fun () -> Hashtbl.length memo)

(* backstop against unbounded growth on very long campaigns *)
let memo_max = 500_000

let memo_find key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key)

let memo_add key v =
  Mutex.protect memo_lock (fun () ->
      if Hashtbl.length memo < memo_max then Hashtbl.replace memo key v)

(* Instantiation observability: the count is accumulated per call (no
   shared counter on the hot path — the old global [ref] raced under the
   domain pool) and the last count is published to an atomic for the
   sequential [last_instantiations] API. *)

let last_count = Atomic.make 0
let last_instantiations () = Atomic.get last_count

let validate_counted ~signature ~examples ~consts ?(verify = fun _ -> true) ?memo_key template =
  let prepared = prepare ~signature ~examples in
  let args =
    List.map
      (fun (name, spec) ->
        {
          Subst.name;
          rank = Some (Sig.rank_of_spec spec);
          is_size = (match spec with Sig.Size _ -> true | _ -> false);
        })
      signature.Sig.args
  in
  let out_rank = Sig.rank_of_spec (Sig.out_spec signature) in
  let substs = Subst.enumerate ~template ~out:signature.out ~out_rank ~args ~consts in
  let count = ref 0 in
  let solution =
    List.find_map
      (fun subst ->
        let concrete = Subst.instantiate template subst in
        incr count;
        let passes =
          match memo_key with
          | Some mk when Atomic.get memo_enabled -> (
              let key = (mk, Stagg_taco.Pretty.program_to_string concrete) in
              match memo_find key with
              | Some v -> v
              | None ->
                  let v = check prepared concrete in
                  memo_add key v;
                  v)
          | _ -> check prepared concrete
        in
        if passes && verify concrete then Some { template; subst; concrete } else None)
      substs
  in
  (solution, !count)

let validate ~signature ~examples ~consts ?verify ?memo_key template =
  let solution, count =
    validate_counted ~signature ~examples ~consts ?verify ?memo_key template
  in
  Atomic.set last_count count;
  solution
