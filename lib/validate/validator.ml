open Stagg_util
open Stagg_template
module Sig = Stagg_minic.Signature
module Tensor = Stagg_taco.Tensor
module Tcompile = Stagg_taco.Compile.Make (Value.Rat_value)

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Subst.t;
  concrete : Stagg_taco.Ast.program;
}

let pp_solution fmt s =
  Format.fprintf fmt "%s via %a"
    (Stagg_taco.Pretty.program_to_string s.concrete)
    Subst.pp s.subst

(* ---- prepared examples ----

   Everything example-dependent but program-independent — the tensor
   environment (both as the public assoc list and as a slot-resolved hash
   table the compiled evaluators bind through), the output shape, the
   expected flat output, the cost — is computed once per (signature,
   examples) and reused across every instantiation. Examples are ordered
   cheapest-first (fewest cells) so the first counterexample kills a bad
   substitution as early as possible; the verdict is a conjunction, so the
   order cannot change it. *)

type prepared_example = {
  env : (string * Rat.t Tensor.t) list;
  table : Tcompile.table;  (** [env], resolved once, for the hot bind loop *)
  out_shape : int array;
  expected : Rat.t array;
  cost : int;  (** total input + output cells: evaluation work proxy *)
}

type checker = prepared_example list

let prepare_example ~(signature : Sig.t) (ex : Examples.example) : prepared_example =
  let env =
    List.map
      (fun (name, spec) ->
        let flat = List.assoc name ex.Examples.inputs in
        match spec with
        | Sig.Size _ | Sig.Scalar_data -> (name, Tensor.scalar flat.(0))
        | Sig.Arr _ -> (name, Tensor.of_flat_array (Sig.shape ~sizes:ex.sizes spec) flat))
      signature.args
  in
  let out_shape = Sig.shape ~sizes:ex.sizes (Sig.out_spec signature) in
  let cost =
    Array.length ex.output
    + List.fold_left (fun acc (_, t) -> acc + Tensor.size t) 0 env
  in
  { env; table = Tcompile.table_of_env env; out_shape; expected = ex.output; cost }

let prepare ~signature ~examples : checker =
  List.stable_sort
    (fun a b -> Int.compare a.cost b.cost)
    (List.map (prepare_example ~signature) examples)

(* Does the compiled candidate reproduce every prepared example? Each
   example is slot binding plus an early-exit cell comparison. *)
let check_compiled compiled prepared =
  List.for_all
    (fun pe ->
      Tcompile.run_equal_table compiled ~table:pe.table ~lhs_shape:pe.out_shape
        ~expected:pe.expected)
    prepared

let check prepared p = check_compiled (Tcompile.compile p) prepared

let check_concrete ~signature ~examples p = check (prepare ~signature ~examples) p

(* ---- validator telemetry ----

   Process-wide counters: verdict-memo traffic (including entries the
   bounded memo evicts, which were previously dropped silently) and
   template-compilation traffic for the batched path.

   The underlying atomics are MONOTONIC — nothing ever writes them
   backwards. [reset_stats] subtracts instead: it snapshots the current
   totals into per-counter baselines and [stats] reports
   [total - baseline]. A reset racing concurrent [Atomic.incr]s can
   therefore never lose an increment (the old [Atomic.set c 0] could:
   an increment landing between the read and the zeroing vanished), and
   two [stats] snapshots always yield an exact interval delta — the
   serve path meters each request that way rather than resetting. *)

type stats = {
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;  (** entries dropped by generation rotation *)
  template_compiles : int;  (** [compile_template] runs (template-cache misses) *)
  template_cache_hits : int;
  template_cache_evictions : int;  (** LRU entries displaced at the cache cap *)
  template_overflows : int;  (** templates over MAXRANK: per-candidate fallback *)
}

type counter = { total : int Atomic.t; baseline : int Atomic.t }

let counter () = { total = Atomic.make 0; baseline = Atomic.make 0 }
let c_memo_hits = counter ()
let c_memo_misses = counter ()
let c_memo_evictions = counter ()
let c_template_compiles = counter ()
let c_template_cache_hits = counter ()
let c_template_cache_evictions = counter ()
let c_template_overflows = counter ()

let all_counters =
  [
    c_memo_hits;
    c_memo_misses;
    c_memo_evictions;
    c_template_compiles;
    c_template_cache_hits;
    c_template_cache_evictions;
    c_template_overflows;
  ]

let bump c = Atomic.incr c.total
let bump_by c n = if n > 0 then ignore (Atomic.fetch_and_add c.total n)
let read c = Atomic.get c.total - Atomic.get c.baseline

let stats () =
  {
    memo_hits = read c_memo_hits;
    memo_misses = read c_memo_misses;
    memo_evictions = read c_memo_evictions;
    template_compiles = read c_template_compiles;
    template_cache_hits = read c_template_cache_hits;
    template_cache_evictions = read c_template_cache_evictions;
    template_overflows = read c_template_overflows;
  }

let reset_stats () =
  List.iter (fun c -> Atomic.set c.baseline (Atomic.get c.total)) all_counters

(* ---- the cross-sweep validation memo ----

   The ~20 method sweeps of a campaign share one candidate prefix per
   benchmark, so their searches keep producing the same concrete
   programs. The example verdict is a deterministic function of
   (benchmark examples, concrete program) — examples are derived from the
   campaign seed — so it is safe to share across sweeps and across
   domains: memoized or recomputed, the verdict is identical, which keeps
   the harness's any-[--jobs N] determinism guarantee. Keyed by the
   caller-supplied [memo_key] (benchmark + example seed) plus the printed
   concrete program; guarded by a mutex like [Bench.func_cache]. Only the
   example verdict is memoized — never the [verify] (BMC) outcome, which
   is a per-method choice.

   Keyed by the (memo_key, printed program) PAIR, not their
   concatenation: a separator-joined string is ambiguous the moment a
   benchmark id contains the separator, silently sharing verdicts
   between distinct (key, program) pairs. *)

(* Bounded by two-generation rotation rather than the old reject-on-full
   backstop (which silently stopped memoizing for the rest of the
   process — fatal in a long-lived server, where the memo must keep
   admitting the CURRENT request's verdicts). [cur] fills to
   [memo_gen_max]; rotation then demotes it to [old] and discards the
   previous [old] (counted as evictions). Lookups consult both
   generations and re-promote old-generation hits, so any working set
   under [memo_gen_max] keys survives rotation indefinitely, while total
   residency never exceeds 2×[memo_gen_max] — the old 500k backstop.
   Verdicts are deterministic functions of the key, so eviction timing
   can never change an outcome, only recompute it. *)

let memo_gen_max = 250_000

type memo_state = {
  mutable cur : (string * string, bool) Hashtbl.t;
  mutable old : (string * string, bool) Hashtbl.t;
}

let memo = { cur = Hashtbl.create 4096; old = Hashtbl.create 0 }
let memo_lock = Mutex.create ()
let memo_enabled = Atomic.make true
let set_memo_enabled b = Atomic.set memo_enabled b

let clear_memo () =
  Mutex.protect memo_lock (fun () ->
      memo.cur <- Hashtbl.create 4096;
      memo.old <- Hashtbl.create 0)

let memo_size () =
  Mutex.protect memo_lock (fun () -> Hashtbl.length memo.cur + Hashtbl.length memo.old)

(* caller holds [memo_lock] *)
let memo_insert key v =
  Hashtbl.replace memo.cur key v;
  if Hashtbl.length memo.cur >= memo_gen_max then begin
    bump_by c_memo_evictions (Hashtbl.length memo.old);
    memo.old <- memo.cur;
    memo.cur <- Hashtbl.create 4096
  end

let memo_find key =
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo.cur key with
      | Some _ as hit -> hit
      | None -> (
          match Hashtbl.find_opt memo.old key with
          | Some v as hit ->
              memo_insert key v;
              hit
          | None -> None))

let memo_add key v = Mutex.protect memo_lock (fun () -> memo_insert key v)

(* ---- the per-domain compiled-template cache ----

   Search re-pops structurally identical complete templates constantly:
   children of one A* parent share the whole completed prefix, the
   FullGrammar template space is benchmark-independent, and the ~20 sweeps
   of a campaign traverse the same frontier. A compiled template is
   env-independent (examples only enter at bind time), so its plan and
   closure tree can be reused across all of them. The cache is
   domain-local ([Domain.DLS]) because a compiled evaluator carries
   mutable scratch that must never be shared across workers; each worker
   domain warms its own copy, which also makes the cache lock-free. *)

let template_cache_max = 8192

(* LRU, not drop-on-full: a server's pool domains live for the whole
   process, and under the old policy the 8192 slots a domain happened to
   compile first were the only templates it would ever cache — every
   later request paid a full recompile per pop. With LRU the cache
   tracks each request's working set; eviction displaces the
   least-recently-hit template (counted, observable in [stats]). The
   cache stays domain-local, so no lock: [Lru.t] is single-domain. *)
let template_cache_key : (string, Tcompile.t) Lru.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Lru.create ~cap:template_cache_max)

(* [None] = the template exceeds the fixed MAXRANK scratch capacity; the
   caller falls back to per-candidate compilation. *)
let compiled_template_for template : Tcompile.t option =
  let cache = Domain.DLS.get template_cache_key in
  let key = Stagg_taco.Pretty.program_to_string template in
  match Lru.find cache key with
  | Some ct ->
      bump c_template_cache_hits;
      Some ct
  | None -> (
      match Tcompile.compile_template ~const_symbol:Templatize.const_symbol template with
      | exception Tcompile.Rank_overflow _ ->
          bump c_template_overflows;
          None
      | ct ->
          bump c_template_compiles;
          (match Lru.add cache key ct with
          | Some _ -> bump c_template_cache_evictions
          | None -> ());
          Some ct)

(* Instantiation observability: the count is accumulated per call (no
   shared counter on the hot path — the old global [ref] raced under the
   domain pool) and the last count is published to an atomic for the
   sequential [last_instantiations] API. *)

let last_count = Atomic.make 0
let last_instantiations () = Atomic.get last_count

let validate_counted ~signature ~(checker : checker) ~consts ?(verify = fun _ -> true)
    ?memo_key ?(batched = true) template =
  let args =
    List.map
      (fun (name, spec) ->
        {
          Subst.name;
          rank = Some (Sig.rank_of_spec spec);
          is_size = (match spec with Sig.Size _ -> true | _ -> false);
        })
      signature.Sig.args
  in
  let out_rank = Sig.rank_of_spec (Sig.out_spec signature) in
  let substs =
    Subst.enumerate_seq ~template ~out:signature.Sig.out ~out_rank ~args ~consts
  in
  let ct = if batched then compiled_template_for template else None in
  let count = ref 0 in
  (* Both arms test the same substitutions in the same order with the same
     memo keys — the batched arm prints the would-be concrete program
     directly from the template ([program_to_string_renamed] is
     byte-identical to printing the instantiation) and only builds the
     concrete AST for a passing substitution. *)
  let test (subst : Subst.t) =
    incr count;
    let passes =
      match ct with
      | Some ct -> (
          let rebind_and_check () =
            Tcompile.rebind ct ~mapping:subst.Subst.tensor_binding
              ~const:subst.Subst.const_binding;
            check_compiled ct checker
          in
          match memo_key with
          | Some mk when Atomic.get memo_enabled -> (
              let printed =
                Stagg_taco.Pretty.program_to_string_renamed
                  ~mapping:subst.Subst.tensor_binding ~const:subst.Subst.const_binding
                  ~is_const:Templatize.is_const_symbol template
              in
              let key = (mk, printed) in
              match memo_find key with
              | Some v ->
                  bump c_memo_hits;
                  v
              | None ->
                  bump c_memo_misses;
                  let v = rebind_and_check () in
                  memo_add key v;
                  v)
          | _ -> rebind_and_check ())
      | None -> (
          let concrete = Subst.instantiate template subst in
          match memo_key with
          | Some mk when Atomic.get memo_enabled -> (
              let key = (mk, Stagg_taco.Pretty.program_to_string concrete) in
              match memo_find key with
              | Some v ->
                  bump c_memo_hits;
                  v
              | None ->
                  bump c_memo_misses;
                  let v = check checker concrete in
                  memo_add key v;
                  v)
          | _ -> check checker concrete)
    in
    if passes then begin
      let concrete = Subst.instantiate template subst in
      if verify concrete then Some { template; subst; concrete } else None
    end
    else None
  in
  let solution = Seq.find_map test substs in
  (solution, !count)

let validate ~signature ~examples ~consts ?verify ?memo_key ?batched template =
  let checker = prepare ~signature ~examples in
  let solution, count =
    validate_counted ~signature ~checker ~consts ?verify ?memo_key ?batched template
  in
  Atomic.set last_count count;
  solution
