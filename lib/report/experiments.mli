(** Experiment drivers regenerating every table and figure of paper §8.

    [run_all] executes every method/configuration over the suite once;
    the [table*] / [fig*] renderers then slice that single set of runs,
    exactly as the paper's tables slice one evaluation campaign. *)

open Stagg

(** One entry of the per-sweep measurement log. *)
type sweep = {
  sw_label : string;
  sw_wall_s : float;
  sw_heap_words : int;  (** major-heap words at sweep end (compacted start) *)
  sw_instantiations : int;  (** validator instantiations summed over the sweep *)
  sw_validate_s : float;  (** in-validator seconds summed over the sweep *)
  sw_par : Stagg_search.Astar.par_stats option;
      (** parallel-engine telemetry (speculated/committed/steal counts)
          summed over the sweep's queries, [par_domains] being the
          maximum effective domain count; [None] for sequential sweeps *)
}

type runs = {
  seed : int;
  td : Result_.t list;  (** STAGG^TD on all 77 *)
  bu : Result_.t list;
  llm : Result_.t list;
  c2taco : Result_.t list;
  c2taco_noh : Result_.t list;
  tenspiler : Result_.t list;  (** 67 real-world only, as in the paper *)
  td_drop_all : Result_.t list;
  td_drops : (Stagg_search.Penalty.criterion * Result_.t list) list;
  bu_drop_all : Result_.t list;
  bu_drops : (Stagg_search.Penalty.criterion * Result_.t list) list;
  td_equal : Result_.t list;
  td_llm_grammar : Result_.t list;
  td_full_grammar : Result_.t list;
  bu_equal : Result_.t list;
  bu_llm_grammar : Result_.t list;
  bu_full_grammar : Result_.t list;
  trace : Result_.t list;
      (** the [Trace] method row: STAGG^TD drawing candidates from the
          trace oracle ({!Stagg_oracle.Trace}) with no LLM in the loop.
          Swept LAST (with [trace_llm]) so the cross-sweep validation
          memo leaves every pre-existing row byte-identical. *)
  trace_llm : Result_.t list;  (** the [Trace+LLM] union-oracle row *)
  sweeps : sweep list;  (** per-sweep measurement log, in execution order *)
}

(** [run_all ()] — the full campaign (≈20 suite sweeps). [progress] is
    called with a short message as each sweep finishes.

    The method-independent preparation (mock-LLM query, candidate
    parsing, templatization, dimension prediction) is computed once per
    benchmark and shared across every sweep; individual (method,
    benchmark) runs are dispatched onto a domain pool of [jobs] workers
    ({!Stagg_util.Pool}). Results are deterministic and independent of
    [jobs] (modulo the [time_s] fields); [~jobs:1] runs everything on
    the calling domain. [jobs] defaults to
    {!Stagg_util.Pool.default_jobs}.

    [analysis] (default [true]) toggles the static liftability analysis
    ({!Stagg_minic.Facts} fail-fast + {!Stagg_grammar.Prune} search
    pruning) on the STAGG methods; solved/attempt outcomes are
    byte-identical either way — only expansions and time drop — so
    [~analysis:false] is the differential baseline behind the bench
    driver's [--no-analysis] flag. [prune_mode] (default
    [Prune_admission]) picks how the prune absorbs doomed children
    ({!Stagg_search.Astar.prune_mode}); it too leaves solved/attempt
    outcomes byte-identical. [batched_validate] (default [true]) selects
    template-level compilation in the validator — a third knob with the
    same contract: solved/attempt/instantiation outcomes are
    byte-identical on and off (the [@smoke] differential enforces it).
    [search_domains] (default [1]) runs each STAGG search on the
    deterministic parallel A* engine with that many domains
    ({!Method_.t.search_domains}) — a fourth knob with the same
    contract: outcomes are byte-identical for every domain count (the
    [@smoke] [--search-domains 2] leg enforces it); [0] means auto. *)
val run_all :
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?analysis:bool ->
  ?prune_mode:Stagg_search.Astar.prune_mode ->
  ?batched_validate:bool ->
  ?search_domains:int ->
  unit ->
  runs

(** Core methods only (Table 1 / Figs. 9–10), without the ablations. *)
val run_core :
  ?seed:int ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?analysis:bool ->
  ?prune_mode:Stagg_search.Astar.prune_mode ->
  ?batched_validate:bool ->
  ?search_domains:int ->
  unit ->
  runs

val table1 : runs -> string
val table2 : runs -> string
val table3 : runs -> string
val fig9 : runs -> string
val fig10 : runs -> string
val fig11 : runs -> string
val fig12 : runs -> string

(** Machine-readable summary (one line per method row of each table) for
    EXPERIMENTS.md bookkeeping. *)
val summary : runs -> string

(** The (label, results) rows behind {!summary}, in summary order. *)
val summary_rows : runs -> (string * Result_.t list) list

(** Version of the JSON layouts emitted by this harness ({!json_summary}
    and the smoke summary in [bench/main.ml]). Bump when a field is
    added, removed, or changes meaning, so downstream consumers of the
    perf-trajectory files can dispatch instead of guessing. *)
val schema_version : int

(** [json_summary ~jobs ~wall_s runs] — the {!summary} data as a JSON
    document (per method: solved count, suite size, avg time and
    attempts over solved queries, total attempts/expansions/pruned/
    suppressed), the per-sweep wall/heap/instantiations-per-second log
    ([sweeps]), the cumulative validator counters
    ({!Stagg_validate.Validator.stats}: memo hits/misses/evictions,
    template-compilation cache traffic), plus the harness wall time and
    the [jobs] the campaign ran with. Written by [bench/main.exe --json
    FILE] so successive PRs can track the perf trajectory. *)
val json_summary : ?jobs:int -> wall_s:float -> runs -> string
