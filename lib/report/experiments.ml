open Stagg
module Pool = Stagg_util.Pool
module Penalty = Stagg_search.Penalty
module Suite = Stagg_benchsuite.Suite

type sweep = {
  sw_label : string;
  sw_wall_s : float;
  sw_heap_words : int;
  sw_instantiations : int;
  sw_validate_s : float;
  sw_par : Stagg_search.Astar.par_stats option;
      (** parallel-engine telemetry summed over the sweep's queries
          ([par_domains] is the maximum effective domain count seen);
          [None] when the sweep ran the sequential engine *)
}

type runs = {
  seed : int;
  td : Result_.t list;
  bu : Result_.t list;
  llm : Result_.t list;
  c2taco : Result_.t list;
  c2taco_noh : Result_.t list;
  tenspiler : Result_.t list;
  td_drop_all : Result_.t list;
  td_drops : (Penalty.criterion * Result_.t list) list;
  bu_drop_all : Result_.t list;
  bu_drops : (Penalty.criterion * Result_.t list) list;
  td_equal : Result_.t list;
  td_llm_grammar : Result_.t list;
  td_full_grammar : Result_.t list;
  bu_equal : Result_.t list;
  bu_llm_grammar : Result_.t list;
  bu_full_grammar : Result_.t list;
  trace : Result_.t list;
  trace_llm : Result_.t list;
  sweeps : sweep list;
      (** per-sweep measurement log, in execution order: wall seconds,
          [Gc.quick_stat] major-heap size in words when the sweep
          finished, total validator instantiations and in-validator
          seconds summed over the sweep's results. Each sweep starts from
          a compacted heap ({!sweep_timed}) and the heap only grows
          between compactions, so the end-of-sweep size approximates the
          sweep's own high-water mark. *)
}

let default_seed = 20250604

(* ---- the shared preparation cache ----

   The mock-LLM stream, candidate parsing, templatization and dimension
   prediction depend only on (seed, benchmark) — not on the method — so
   one campaign computes that prefix once per benchmark and shares it
   across every sweep; only grammar/probability/penalty construction
   stays per-method (inside [Pipeline.lift_prefixed]). *)

type prep = (Pipeline.query * (Pipeline.prefix, string) result) list

let prepare_suite ?jobs ?(oracle = Method_.Oracle_llm) ~seed benches : prep =
  (* the oracle is baked into the query (and hence the prefix), so each
     oracle gets its own preparation cache; everything else about the
     prefix is still method-independent *)
  let m = { Method_.stagg_td with seed; oracle } in
  Pool.map ?jobs
    (fun b ->
      let q = Pipeline.query_of_bench m b in
      (q, Pipeline.prefix_of_query q))
    benches

let sweep_prepared ?jobs m (cache : prep) =
  Pool.map ?jobs (fun (q, pr) -> Pipeline.lift_prefixed m q pr) cache

let sweep_timed ?log ~progress label f =
  (* settle the heap before timing: without this, a sweep pays major-GC
     marking for the previous sweep's garbage (frontiers run to ~10⁶ live
     entries), and the per-sweep times depend on sweep order *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  (* heap size BEFORE the next sweep's compaction: with a compacted
     start, this is the sweep's own high-water footprint *)
  (match log with
  | Some l ->
      l :=
        {
          sw_label = label;
          sw_wall_s = dt;
          sw_heap_words = (Gc.quick_stat ()).Gc.heap_words;
          sw_instantiations =
            List.fold_left (fun a (x : Result_.t) -> a + x.instantiations) 0 r;
          sw_validate_s = List.fold_left (fun a (x : Result_.t) -> a +. x.validate_s) 0. r;
          sw_par =
            (match List.filter_map (fun (x : Result_.t) -> x.par) r with
            | [] -> None
            | ps ->
                Some
                  (List.fold_left
                     (fun (a : Stagg_search.Astar.par_stats) (p : Stagg_search.Astar.par_stats) ->
                       {
                         Stagg_search.Astar.par_domains = max a.par_domains p.par_domains;
                         par_speculated = a.par_speculated + p.par_speculated;
                         par_committed = a.par_committed + p.par_committed;
                         par_steals = a.par_steals + p.par_steals;
                       })
                     Stagg_search.Astar.no_par_stats ps));
        }
        :: !l
  | None -> ());
  progress
    (Printf.sprintf "%-28s %2d solved  (%.1fs)" label
       (List.length (List.filter (fun (x : Result_.t) -> x.solved) r))
       dt);
  r

let run_core_cached ?jobs ?(analysis = true)
    ?(prune_mode = Stagg_search.Astar.Prune_admission) ?(batched_validate = true)
    ?(search_domains = 1) ~seed ~progress (cache : prep) =
  let all = Suite.all and rw = Suite.real_world in
  let sweep_log = ref [] in
  let sweep = sweep_timed ~log:sweep_log ~progress in
  let with_seed m =
    { m with Method_.seed; analysis; prune_mode; batched_validate; search_domains }
  in
  let sweep_m m = sweep m.Method_.label (fun () -> sweep_prepared ?jobs (with_seed m) cache) in
  let td = sweep_m Method_.stagg_td in
  let bu = sweep_m Method_.stagg_bu in
  let llm =
    sweep "LLM" (fun () ->
        Stagg_baselines.Llm_only.run_suite ?jobs ~batched_validate ~seed all)
  in
  let c2taco =
    sweep "C2TACO" (fun () -> Stagg_baselines.C2taco.run_suite ?jobs ~seed ~heuristics:true all)
  in
  let c2taco_noh =
    sweep "C2TACO.NoHeuristics" (fun () ->
        Stagg_baselines.C2taco.run_suite ?jobs ~seed ~heuristics:false all)
  in
  let tenspiler =
    sweep "Tenspiler" (fun () ->
        Stagg_baselines.Tenspiler.run_suite ?jobs ~batched_validate ~seed rw)
  in
  {
    seed;
    td;
    bu;
    llm;
    c2taco;
    c2taco_noh;
    tenspiler;
    td_drop_all = [];
    td_drops = [];
    bu_drop_all = [];
    bu_drops = [];
    td_equal = [];
    td_llm_grammar = [];
    td_full_grammar = [];
    bu_equal = [];
    bu_llm_grammar = [];
    bu_full_grammar = [];
    trace = [];
    trace_llm = [];
    sweeps = List.rev !sweep_log;
  }

(* The trace-oracle sweeps. These MUST run after every other sweep of a
   campaign: the cross-sweep validation memo is shared process-wide, so
   running them earlier would warm it with trace-sourced entries and
   silently shift the instantiation counts of the pre-existing rows —
   the byte-identity contract is that those rows do not move when the
   trace oracle is off. *)
let run_trace_sweeps ?jobs ?(analysis = true)
    ?(prune_mode = Stagg_search.Astar.Prune_admission) ?(batched_validate = true)
    ?(search_domains = 1) ~seed ~progress ~sweep_log () =
  let with_seed m =
    { m with Method_.seed; analysis; prune_mode; batched_validate; search_domains }
  in
  let sweep m ~oracle =
    sweep_timed ~log:sweep_log ~progress m.Method_.label (fun () ->
        sweep_prepared ?jobs (with_seed m)
          (prepare_suite ?jobs ~oracle ~seed Suite.all))
  in
  let trace = sweep Method_.td_trace ~oracle:Method_.Oracle_trace in
  let trace_llm = sweep Method_.td_trace_llm ~oracle:Method_.Oracle_trace_llm in
  (trace, trace_llm)

let run_core ?(seed = default_seed) ?(progress = fun _ -> ()) ?jobs ?analysis ?prune_mode
    ?batched_validate ?search_domains () =
  let core =
    run_core_cached ?jobs ?analysis ?prune_mode ?batched_validate ?search_domains ~seed
      ~progress
      (prepare_suite ?jobs ~seed Suite.all)
  in
  let sweep_log = ref [] in
  let trace, trace_llm =
    run_trace_sweeps ?jobs ?analysis ?prune_mode ?batched_validate ?search_domains ~seed
      ~progress ~sweep_log ()
  in
  { core with trace; trace_llm; sweeps = core.sweeps @ List.rev !sweep_log }

let run_all ?(seed = default_seed) ?(progress = fun _ -> ()) ?jobs ?(analysis = true)
    ?(prune_mode = Stagg_search.Astar.Prune_admission) ?(batched_validate = true)
    ?(search_domains = 1) () =
  let cache = prepare_suite ?jobs ~seed Suite.all in
  let core =
    run_core_cached ?jobs ~analysis ~prune_mode ~batched_validate ~search_domains ~seed
      ~progress cache
  in
  let with_seed m =
    { m with Method_.seed; analysis; prune_mode; batched_validate; search_domains }
  in
  let sweep_log = ref [] in
  let sweep m =
    sweep_timed ~log:sweep_log ~progress m.Method_.label (fun () ->
        sweep_prepared ?jobs (with_seed m) cache)
  in
  let drop base c = sweep (Method_.drop_penalty base c) in
  (* ablation sweeps run in this binding order, so the sweep log stays in
     execution order regardless of record-field evaluation order *)
  let td_drop_all = sweep (Method_.drop_all_penalties Method_.stagg_td "A") in
  let td_drops = List.map (fun c -> (c, drop Method_.stagg_td c)) Penalty.all_topdown in
  let bu_drop_all = sweep (Method_.drop_all_penalties Method_.stagg_bu "B") in
  let bu_drops = List.map (fun c -> (c, drop Method_.stagg_bu c)) Penalty.all_bottomup in
  let td_equal = sweep Method_.td_equal_probability in
  let td_llm_grammar = sweep Method_.td_llm_grammar in
  let td_full_grammar = sweep Method_.td_full_grammar in
  let bu_equal = sweep Method_.bu_equal_probability in
  let bu_llm_grammar = sweep Method_.bu_llm_grammar in
  let bu_full_grammar = sweep Method_.bu_full_grammar in
  (* trace sweeps last — see [run_trace_sweeps] on why the order matters *)
  let trace, trace_llm =
    run_trace_sweeps ?jobs ~analysis ~prune_mode ~batched_validate ~search_domains ~seed
      ~progress ~sweep_log ()
  in
  {
    core with
    td_drop_all;
    td_drops;
    bu_drop_all;
    bu_drops;
    td_equal;
    td_llm_grammar;
    td_full_grammar;
    bu_equal;
    bu_llm_grammar;
    bu_full_grammar;
    trace;
    trace_llm;
    sweeps = core.sweeps @ List.rev !sweep_log;
  }

(* ---- statistics ---- *)

let solved (rs : Result_.t list) = List.filter (fun r -> r.Result_.solved) rs
let n_solved rs = List.length (solved rs)

let avg f = function [] -> 0. | xs -> List.fold_left (fun a x -> a +. f x) 0. xs /. float_of_int (List.length xs)

(* averages over solved queries, as the paper reports *)
let avg_time rs = avg (fun (r : Result_.t) -> r.time_s) (solved rs)
let avg_attempts rs = avg (fun (r : Result_.t) -> float_of_int r.attempts) (solved rs)

let restrict names (rs : Result_.t list) = List.filter (fun r -> List.mem r.Result_.bench names) rs

let real_world_names = List.map (fun (b : Stagg_benchsuite.Bench.t) -> b.name) Suite.real_world

let fmt_t t = Printf.sprintf "%.3f" t
let fmt_n = string_of_int
let fmt_pct n total = Printf.sprintf "%.2f%%" (100. *. float_of_int n /. float_of_int total)

(* ---- Table 1 ---- *)

let table1 runs =
  let solved_by_c2taco = Result_.solved_names runs.c2taco in
  let solved_by_tenspiler = Result_.solved_names runs.tenspiler in
  let row label rs ~full =
    let rw = restrict real_world_names rs in
    let c2 = restrict solved_by_c2taco rs in
    let ts = restrict solved_by_tenspiler rs in
    [
      label;
      fmt_n (n_solved rw);
      fmt_t (avg_time rw);
      (if full then fmt_n (n_solved rs) else "");
      (if full then fmt_t (avg_time rs) else "");
      (if full then Printf.sprintf "%.2f" (avg_attempts rs) else "");
      fmt_n (n_solved c2);
      fmt_t (avg_time c2);
      fmt_n (n_solved ts);
      fmt_t (avg_time ts);
    ]
  in
  "Table 1: benchmark-solving performance across methods\n"
  ^ Table.render
      ~headers:
        [
          "Method"; "RW(67) #"; "time"; "RW+Art(77) #"; "time"; "attempts"; "C2TACO-set #";
          "time"; "Tenspiler-set #"; "time";
        ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
      [
        row "STAGG^TD" runs.td ~full:true;
        row "STAGG^BU" runs.bu ~full:true;
        row "LLM" runs.llm ~full:true;
        row "C2TACO" runs.c2taco ~full:true;
        row "C2TACO.NoHeuristics" runs.c2taco_noh ~full:true;
        row "Tenspiler" runs.tenspiler ~full:false;
      ]

(* ---- Table 2 ---- *)

let table2 runs =
  let total = 77 in
  let row label rs = [ label; fmt_n (n_solved rs); fmt_pct (n_solved rs) total; fmt_t (avg_time rs) ] in
  let drop_rows prefix drops =
    List.map
      (fun (c, rs) -> row (Printf.sprintf "%s.Drop(%s)" prefix (Penalty.criterion_to_string c)) rs)
      drops
  in
  "Table 2: impact of the penalty rules (77 queries)\n"
  ^ Table.render
      ~headers:[ "Method"; "#"; "%"; "time" ]
      ~aligns:[ Left; Right; Right; Right ]
      ((row "STAGG^TD" runs.td :: row "STAGG^TD.Drop(A)" runs.td_drop_all
        :: drop_rows "STAGG^TD" runs.td_drops)
      @ (row "STAGG^BU" runs.bu :: row "STAGG^BU.Drop(B)" runs.bu_drop_all
         :: drop_rows "STAGG^BU" runs.bu_drops))

(* ---- Table 3 ---- *)

let table3 runs =
  let total = 77 in
  let row label rs =
    [
      label;
      fmt_n (n_solved rs);
      fmt_pct (n_solved rs) total;
      fmt_t (avg_time rs);
      Printf.sprintf "%.2f" (avg_attempts rs);
    ]
  in
  "Table 3: grammar configurations (77 queries)\n"
  ^ Table.render
      ~headers:[ "Method"; "#"; "%"; "time"; "attempts" ]
      ~aligns:[ Left; Right; Right; Right; Right ]
      [
        row "STAGG^TD" runs.td;
        row "STAGG^TD.Drop(A)" runs.td_drop_all;
        row "STAGG^TD.EqualProbability" runs.td_equal;
        row "STAGG^TD.LLMGrammar" runs.td_llm_grammar;
        row "STAGG^TD.FullGrammar" runs.td_full_grammar;
        row "STAGG^BU" runs.bu;
        row "STAGG^BU.Drop(B)" runs.bu_drop_all;
        row "STAGG^BU.EqualProbability" runs.bu_equal;
        row "STAGG^BU.LLMGrammar" runs.bu_llm_grammar;
        row "STAGG^BU.FullGrammar" runs.bu_full_grammar;
        row "LLM" runs.llm;
        row "C2TACO" runs.c2taco;
        row "C2TACO.NoHeuristics" runs.c2taco_noh;
      ]

(* ---- figures ---- *)

let fig9 runs =
  let series =
    List.map
      (fun (label, rs) -> Cactus.series_of_results ~label (restrict real_world_names rs))
      [
        ("STAGG^TD", runs.td);
        ("STAGG^BU", runs.bu);
        ("LLM", runs.llm);
        ("C2TACO", runs.c2taco);
        ("C2TACO.NoHeuristics", runs.c2taco_noh);
        ("Tenspiler", runs.tenspiler);
      ]
  in
  "Figure 9: cactus plot, 67 real-world benchmarks\n" ^ Cactus.to_ascii series ^ "\ndata:\n"
  ^ Cactus.to_data series

let bar_chart rows total =
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, n) ->
      let pct = 100. *. float_of_int n /. float_of_int total in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %s %5.1f%% (%d/%d)\n" label
           (String.make (int_of_float (pct /. 2.)) '#')
           pct n total))
    rows;
  Buffer.contents buf

let fig10 runs =
  let rw rs = n_solved (restrict real_world_names rs) in
  "Figure 10: success rates, 67 real-world benchmarks\n"
  ^ bar_chart
      [
        ("STAGG^TD", rw runs.td);
        ("STAGG^BU", rw runs.bu);
        ("LLM", rw runs.llm);
        ("C2TACO", rw runs.c2taco);
        ("C2TACO.NoHeuristics", rw runs.c2taco_noh);
        ("Tenspiler", n_solved runs.tenspiler);
      ]
      67

let fig11 runs =
  "Figure 11: grammar configurations, success rates on all 77\n"
  ^ bar_chart
      [
        ("STAGG^TD", n_solved runs.td);
        ("STAGG^TD.EqualProbability", n_solved runs.td_equal);
        ("STAGG^TD.LLMGrammar", n_solved runs.td_llm_grammar);
        ("STAGG^TD.FullGrammar", n_solved runs.td_full_grammar);
        ("STAGG^BU", n_solved runs.bu);
        ("STAGG^BU.EqualProbability", n_solved runs.bu_equal);
        ("STAGG^BU.LLMGrammar", n_solved runs.bu_llm_grammar);
        ("STAGG^BU.FullGrammar", n_solved runs.bu_full_grammar);
      ]
      77

let fig12 runs =
  let configs =
    [
      ("STAGG^TD", runs.td);
      ("STAGG^TD.EqualProbability", runs.td_equal);
      ("STAGG^TD.LLMGrammar", runs.td_llm_grammar);
      ("STAGG^TD.FullGrammar", runs.td_full_grammar);
      ("STAGG^BU", runs.bu);
      ("STAGG^BU.EqualProbability", runs.bu_equal);
      ("STAGG^BU.LLMGrammar", runs.bu_llm_grammar);
      ("STAGG^BU.FullGrammar", runs.bu_full_grammar);
    ]
  in
  "Figure 12: per-configuration solved count vs average time/attempts (77 queries)\n"
  ^ Table.render
      ~headers:[ "Configuration"; "#"; "avg time (s)"; "avg attempts" ]
      ~aligns:[ Left; Right; Right; Right ]
      (List.map
         (fun (label, rs) ->
           [ label; fmt_n (n_solved rs); fmt_t (avg_time rs); Printf.sprintf "%.2f" (avg_attempts rs) ])
         configs)

let summary_rows runs =
  [
    ("STAGG_TD", runs.td);
    ("STAGG_BU", runs.bu);
    ("LLM", runs.llm);
    ("C2TACO", runs.c2taco);
    ("C2TACO_NoH", runs.c2taco_noh);
    ("Tenspiler", runs.tenspiler);
  ]
  @ (if runs.td_drops = [] then []
     else
       [
         ("TD_DropA", runs.td_drop_all);
         ("BU_DropB", runs.bu_drop_all);
         ("TD_Equal", runs.td_equal);
         ("TD_LLMGrammar", runs.td_llm_grammar);
         ("TD_FullGrammar", runs.td_full_grammar);
         ("BU_Equal", runs.bu_equal);
         ("BU_LLMGrammar", runs.bu_llm_grammar);
         ("BU_FullGrammar", runs.bu_full_grammar);
       ])
  @
  (* last, mirroring sweep execution order *)
  if runs.trace = [] then []
  else [ ("Trace", runs.trace); ("Trace_LLM", runs.trace_llm) ]

let summary runs =
  String.concat "\n"
    (List.map
       (fun (label, rs) ->
         Printf.sprintf "%s\t%d\t%.3f\t%.2f" label (n_solved rs) (avg_time rs) (avg_attempts rs))
       (summary_rows runs)
    @ [ "" ])

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema_version = 2

let json_summary ?(jobs = 1) ~wall_s runs =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n  \"schema_version\": %d,\n  \"seed\": %d,\n  \"jobs\": %d,\n  \"wall_time_s\": %.3f,\n"
    schema_version runs.seed jobs wall_s;
  Buffer.add_string buf "  \"methods\": [\n";
  let rows = summary_rows runs in
  let last = List.length rows - 1 in
  let sum f rs = List.fold_left (fun a r -> a +. f r) 0. rs in
  List.iteri
    (fun i (label, rs) ->
      Printf.bprintf buf
        "    {\"method\": \"%s\", \"solved\": %d, \"total\": %d, \"avg_time_s\": %.6f, \
         \"avg_attempts\": %.2f, \"total_attempts\": %d, \"total_expansions\": %d, \
         \"total_pruned\": %d, \"total_suppressed\": %d, \"pruned_rules\": %d, \
         \"search_s\": %.3f, \"validate_s\": %.3f, \"verify_s\": %.3f, \
         \"instantiations\": %d}%s\n"
        (json_escape label) (n_solved rs) (List.length rs) (avg_time rs) (avg_attempts rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.attempts) 0 rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.expansions) 0 rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.pruned) 0 rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.suppressed) 0 rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.pruned_rules) 0 rs)
        (sum Result_.search_s rs)
        (sum (fun (r : Result_.t) -> r.validate_s) rs)
        (sum (fun (r : Result_.t) -> r.verify_s) rs)
        (List.fold_left (fun a (r : Result_.t) -> a + r.instantiations) 0 rs)
        (if i = last then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n  \"sweeps\": [\n";
  let nsweeps = List.length runs.sweeps in
  List.iteri
    (fun i s ->
      let inst_per_s =
        if s.sw_validate_s > 0. then float_of_int s.sw_instantiations /. s.sw_validate_s else 0.
      in
      let par_fields =
        match s.sw_par with
        | None -> ""
        | Some (p : Stagg_search.Astar.par_stats) ->
            Printf.sprintf
              ", \"par_domains\": %d, \"par_speculated\": %d, \"par_committed\": %d, \
               \"par_wasted\": %d, \"par_steals\": %d"
              p.par_domains p.par_speculated p.par_committed
              (p.par_speculated - p.par_committed)
              p.par_steals
      in
      Printf.bprintf buf
        "    {\"sweep\": \"%s\", \"wall_s\": %.3f, \"heap_words\": %d, \
         \"instantiations\": %d, \"validate_s\": %.3f, \"inst_per_s\": %.0f%s}%s\n"
        (json_escape s.sw_label) s.sw_wall_s s.sw_heap_words s.sw_instantiations
        s.sw_validate_s inst_per_s par_fields
        (if i = nsweeps - 1 then "" else ","))
    runs.sweeps;
  Buffer.add_string buf "  ],\n";
  (* trace-oracle telemetry, present when the campaign ran the trace
     sweeps: how many kernels the tracer produced templates for, how many
     templates it emitted, and which solves the trace row gets that the
     plain LLM row does not *)
  (if runs.trace <> [] then begin
     let traced =
       List.length (List.filter (fun (r : Result_.t) -> r.traced) runs.trace)
     in
     let templates =
       List.fold_left (fun a (r : Result_.t) -> a + r.trace_templates) 0 runs.trace
     in
     let llm_solved = Result_.solved_names runs.llm in
     let trace_only =
       List.filter (fun n -> not (List.mem n llm_solved)) (Result_.solved_names runs.trace)
     in
     Printf.bprintf buf
       "  \"trace\": {\"kernels_traced\": %d, \"trace_templates\": %d, \
        \"trace_solved\": %d, \"trace_llm_solved\": %d, \"trace_only_solved\": %d, \
        \"trace_only\": [%s]},\n"
       traced templates (n_solved runs.trace) (n_solved runs.trace_llm)
       (List.length trace_only)
       (String.concat ", " (List.map (fun n -> "\"" ^ json_escape n ^ "\"") trace_only))
   end);
  (* validator telemetry: process-wide counters at report time (memo
     traffic including generation-rotation evictions, and the batched
     path's LRU template-compilation cache) *)
  let vs = Stagg_validate.Validator.stats () in
  Printf.bprintf buf
    "\
    \  \"validator\": {\"memo_hits\": %d, \"memo_misses\": %d, \"memo_evictions\": %d, \
     \"template_compiles\": %d, \"template_cache_hits\": %d, \"template_cache_evictions\": %d, \
     \"template_overflows\": %d}\n\
     }\n"
    vs.memo_hits vs.memo_misses vs.memo_evictions vs.template_compiles vs.template_cache_hits
    vs.template_cache_evictions vs.template_overflows;
  Buffer.contents buf
