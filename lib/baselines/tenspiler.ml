open Stagg_util
module Bench = Stagg_benchsuite.Bench
module Validator = Stagg_validate.Validator
module Examples = Stagg_validate.Examples

let label = "Tenspiler"

(* The pattern library: the dense tensor operations Tenspiler's target
   DSLs share (elementwise arithmetic, broadcasts, reductions,
   matrix/vector products and their transposes, rank-2 elementwise ops,
   simple contractions). Deliberately no literal-constant patterns and no
   deep composite expressions — the fixed-template weakness §9.2
   attributes to verified-lifting tools. *)
let library =
  [
    (* vector elementwise *)
    "a(i) = b(i)";
    "a(i) = b(i) + c(i)";
    "a(i) = b(i) - c(i)";
    "a(i) = b(i) * c(i)";
    "a(i) = b(i) / c(i)";
    (* scalar broadcast *)
    "a(i) = b(i) * c";
    "a(i) = b * c(i)";
    "a(i) = b(i) + c";
    "a(i) = b(i) - c";
    "a(i) = b(i) / c";
    (* reductions *)
    "a = b(i)";
    "a = b(i,j)";
    "a = b(i) * c(i)";
    "a = b(i) * b(i)";
    "a = b(i) * c(i) * d(i)";
    (* matrix-vector and transposes *)
    "a(i) = b(i,j) * c(j)";
    "a(i) = b(j,i) * c(j)";
    "a(i) = b(i,j)";
    "a(i) = b(j,i)";
    (* axpy-style *)
    "a(i) = b * c(i) + d(i)";
    "a(i) = b(i) + c(i) * d";
    "a(i) = b(i) * c + d(i)";
    (* matrix elementwise / scaling *)
    "a(i,j) = b(i,j) + c(i,j)";
    "a(i,j) = b(i,j) - c(i,j)";
    "a(i,j) = b(i,j) * c(i,j)";
    "a(i,j) = b(i,j) * c";
    "a(i,j) = b(j,i)";
    (* broadcast along a dimension *)
    "a(i,j) = b(i,j) + c(i)";
    "a(i,j) = b(i,j) * c(i)";
    "a(i,j) = b(i,j) + c(j)";
    "a(i,j) = b(i,j) * c(j)";
    (* products *)
    "a(i,j) = b(i) * c(j)";
    "a(i,j) = b(i,k) * c(k,j)";
    "a(i,j) = b(i,k) * c(j,k)";
    "a(i,j) = b(k,i) * c(k,j)";
    (* gemv with accumulate *)
    "a(i) = b(i,j) * c(j) + d(i)";
    (* rank-3 elementwise *)
    "a(i,j,k) = b(i,j,k) * c";
    "a(i,j,k) = b(i,j,k) + c(i,j,k)";
    (* tensor-times-vector / matrix contractions *)
    "a(i,j) = b(i,j,k) * c(k)";
    "a(i,j,k) = b(i,j,l) * c(k,l)";
    (* scaled outer product (GER) *)
    "a(i,j) = b * c(i) * d(j)";
    (* mean/variance normalization *)
    "a(i,j) = (b(i,j) - c(i)) / d(i)";
    (* scaled full reduction *)
    "a = b * c(i,j)";
    (* three-way elementwise product *)
    "a(i) = b(i) * c(i) * d(i)";
    (* linear interpolation *)
    "a(i) = b(i) + (c(i) - b(i)) * d";
  ]

let parsed_library =
  lazy (List.map Stagg_taco.Parser.parse_program_exn library)

let run ?(batched_validate = true) ~seed (b : Bench.t) : Stagg.Result_.t =
  let started = Unix.gettimeofday () in
  let validate_s = ref 0. and verify_s = ref 0. and instantiations = ref 0 in
  let finish ~solved ~solution ~attempts ~failure =
    {
      Stagg.Result_.bench = b.name;
      method_label = label;
      solved;
      solution;
      time_s = Unix.gettimeofday () -. started;
      attempts;
      expansions = attempts;
      pruned = 0;
      suppressed = 0;
      pruned_rules = 0;
      n_candidates = 0;
      validate_s = !validate_s;
      verify_s = !verify_s;
      instantiations = !instantiations;
      par = None;
      traced = false;
      trace_templates = 0;
      warnings = [];
      failure;
    }
  in
  let func = Bench.func b in
  let eprng = Prng.create ~seed:(seed lxor Hashtbl.hash (b.name, "examples")) in
  match Examples.generate ~func ~signature:b.signature ~prng:eprng () with
  | Error msg -> finish ~solved:false ~solution:None ~attempts:0 ~failure:(Some msg)
  | Ok examples -> (
      let verify concrete =
        let t0 = Unix.gettimeofday () in
        let ok =
          match Stagg_verify.Bmc.check ~func ~signature:b.signature ~candidate:concrete () with
          | Stagg_verify.Bmc.Equivalent -> true
          | _ -> false
        in
        verify_s := !verify_s +. (Unix.gettimeofday () -. t0);
        ok
      in
      let memo_key = Printf.sprintf "%s#%d" b.name (seed lxor Hashtbl.hash (b.name, "examples")) in
      (* the checker depends only on (signature, examples): prepare once
         per benchmark, not once per library template *)
      let checker = Validator.prepare ~signature:b.signature ~examples in
      let attempts = ref 0 in
      let solution =
        List.find_map
          (fun template ->
            incr attempts;
            (* templates in the library carry no constants, so the constant
               pool is irrelevant *)
            let t0 = Unix.gettimeofday () in
            let sol, n =
              Validator.validate_counted ~signature:b.signature ~checker ~consts:[] ~verify
                ~memo_key ~batched:batched_validate template
            in
            validate_s := !validate_s +. (Unix.gettimeofday () -. t0);
            instantiations := !instantiations + n;
            sol)
          (Lazy.force parsed_library)
      in
      match solution with
      | Some sol ->
          finish ~solved:true ~solution:(Some sol) ~attempts:!attempts ~failure:None
      | None ->
          finish ~solved:false ~solution:None ~attempts:!attempts
            ~failure:(Some "no library template matches"))

let run_suite ?jobs ?batched_validate ~seed benches =
  (* force the template library before fanning out: concurrent first
     forcing of a lazy from several domains raises [Lazy.Undefined] *)
  ignore (Lazy.force parsed_library);
  Pool.map ?jobs (run ?batched_validate ~seed) benches
