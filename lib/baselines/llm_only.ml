open Stagg_util
module Bench = Stagg_benchsuite.Bench
module Validator = Stagg_validate.Validator
module Examples = Stagg_validate.Examples

let label = "LLM"

let run ?(batched_validate = true) ~seed (b : Bench.t) : Stagg.Result_.t =
  let started = Unix.gettimeofday () in
  let validate_s = ref 0. and verify_s = ref 0. and instantiations = ref 0 in
  let finish ~solved ~solution ~attempts ~n_candidates ~failure =
    {
      Stagg.Result_.bench = b.name;
      method_label = label;
      solved;
      solution;
      time_s = Unix.gettimeofday () -. started;
      attempts;
      expansions = 0;
      pruned = 0;
      suppressed = 0;
      pruned_rules = 0;
      n_candidates;
      validate_s = !validate_s;
      verify_s = !verify_s;
      instantiations = !instantiations;
      par = None;
      traced = false;
      trace_templates = 0;
      warnings = [];
      failure;
    }
  in
  let prng = Prng.create ~seed:(seed lxor Hashtbl.hash b.name) in
  let responses =
    match Bench.truth b with
    | Some ground_truth ->
        let (module Llm) =
          Stagg_oracle.Mock_llm.client ~prng ~ground_truth ~quality:b.llm_quality
        in
        Llm.query ~prompt:(Stagg_oracle.Prompt.build ~c_source:b.c_source)
    | None -> []
  in
  let candidates = Stagg_oracle.Response.parse_all responses in
  let func = Bench.func b in
  let eprng = Prng.create ~seed:(seed lxor Hashtbl.hash (b.name, "examples")) in
  match Examples.generate ~func ~signature:b.signature ~prng:eprng () with
  | Error msg ->
      finish ~solved:false ~solution:None ~attempts:0 ~n_candidates:(List.length candidates)
        ~failure:(Some msg)
  | Ok examples -> (
      let consts = Stagg_minic.Ast.constants func in
      let verify concrete =
        let t0 = Unix.gettimeofday () in
        let ok =
          match Stagg_verify.Bmc.check ~func ~signature:b.signature ~candidate:concrete () with
          | Stagg_verify.Bmc.Equivalent -> true
          | _ -> false
        in
        verify_s := !verify_s +. (Unix.gettimeofday () -. t0);
        ok
      in
      (* same (benchmark, example seed) as the pipeline sweeps: verdicts
         land in (and hit) the shared validation memo *)
      let memo_key = Printf.sprintf "%s#%d" b.name (seed lxor Hashtbl.hash (b.name, "examples")) in
      (* the checker depends only on (signature, examples): prepare once
         per benchmark, not once per candidate *)
      let checker = Validator.prepare ~signature:b.signature ~examples in
      let attempts = ref 0 in
      let solution =
        List.find_map
          (fun candidate ->
            match Stagg_template.Templatize.templatize candidate with
            | None -> None
            | Some template ->
                incr attempts;
                let t0 = Unix.gettimeofday () in
                let sol, n =
                  Validator.validate_counted ~signature:b.signature ~checker ~consts ~verify
                    ~memo_key ~batched:batched_validate template
                in
                validate_s := !validate_s +. (Unix.gettimeofday () -. t0);
                instantiations := !instantiations + n;
                sol)
          candidates
      in
      match solution with
      | Some sol ->
          finish ~solved:true ~solution:(Some sol) ~attempts:!attempts
            ~n_candidates:(List.length candidates) ~failure:None
      | None ->
          finish ~solved:false ~solution:None ~attempts:!attempts
            ~n_candidates:(List.length candidates)
            ~failure:(Some "no candidate passed validation"))

let run_suite ?jobs ?batched_validate ~seed benches =
  Pool.map ?jobs (run ?batched_validate ~seed) benches
