(** Reimplementation of the C2TACO baseline [de Souza Magalhães et al.,
    GPCE 2023], the enumerative lifter the paper compares against.

    C2TACO enumerates {e concrete} TACO programs bottom-up, shortest
    first, directly over the legacy program's arguments, and accepts the
    first program that reproduces the I/O examples (no bounded
    verification — the paper contrasts this with STAGG's verifier, §9.2).
    Its domain-specific heuristics prune the space using static analysis
    of the C source:
    - tensor dimensionalities from dataflow/delinearization (shared with
      STAGG's {!Stagg_minic.Dims});
    - the operator set restricted to operators occurring in the source;
    - the index-variable pool sized by the loop-nest depth.

    [heuristics:false] reproduces the paper's C2TACO.NoHeuristics row:
    all four operators and the full 4-variable index pool (same coverage,
    more attempts and time — Table 1). *)

val label : heuristics:bool -> string

val run : seed:int -> heuristics:bool -> Stagg_benchsuite.Bench.t -> Stagg.Result_.t

(** [jobs] defaults to {!Stagg_util.Pool.default_jobs}; output order and
    content are independent of it (modulo [time_s]). *)
val run_suite :
  ?jobs:int -> seed:int -> heuristics:bool -> Stagg_benchsuite.Bench.t list -> Stagg.Result_.t list
