open Stagg_util
open Stagg_taco
module Bench = Stagg_benchsuite.Bench
module Sig = Stagg_minic.Signature
module Validator = Stagg_validate.Validator
module Examples = Stagg_validate.Examples

let label ~heuristics = if heuristics then "C2TACO" else "C2TACO.NoHeuristics"

(* Enumeration envelope. The heuristic configuration's budget is
   calibrated to C2TACO's published coverage envelope (it solves 67 of
   these 77 queries, Table 1); disabling the pruning heuristics keeps the
   coverage but needs an order of magnitude more attempts, reproducing the
   paper's "same coverage, slower" contrast. *)
let max_attempts ~heuristics = if heuristics then 2_500 else 50_000
let timeout_s = 30.
let idx_pool = [ "i"; "j"; "k"; "l" ]

(* loop-nest index-variable budget: distinct loop counters in the source *)
let loop_var_count func =
  let vars = Hashtbl.create 8 in
  List.iter
    (fun (a : Stagg_minic.Recover.access) ->
      List.iter (fun v -> Hashtbl.replace vars v ()) a.loop_vars)
    (Stagg_minic.Recover.analyze func);
  max 1 (min (Hashtbl.length vars) (List.length idx_pool))

let rec tuples pool = function
  | 0 -> [ [] ]
  | n ->
      List.concat_map
        (fun rest -> List.filter_map (fun v -> if List.mem v rest then None else Some (v :: rest)) pool)
        (tuples pool (n - 1))

type atom = Access_atom of string * string list | Const_atom of Rat.t

let atom_to_expr = function
  | Access_atom (t, idxs) -> Ast.Access (t, idxs)
  | Const_atom c -> Ast.Const c

let run ~seed ~heuristics (b : Bench.t) : Stagg.Result_.t =
  let started = Unix.gettimeofday () in
  let validate_s = ref 0. in
  let attempts = ref 0 in
  let finish ~solved ~solution ~failure =
    {
      Stagg.Result_.bench = b.name;
      method_label = label ~heuristics;
      solved;
      solution;
      time_s = Unix.gettimeofday () -. started;
      attempts = !attempts;
      expansions = !attempts;
      pruned = 0;
      suppressed = 0;
      pruned_rules = 0;
      n_candidates = 0;
      validate_s = !validate_s;
      verify_s = 0.;
      instantiations = !attempts;
      par = None;
      traced = false;
      trace_templates = 0;
      warnings = [];
      failure;
    }
  in
  let func = Bench.func b in
  let eprng = Prng.create ~seed:(seed lxor Hashtbl.hash (b.name, "examples")) in
  match Examples.generate ~func ~signature:b.signature ~prng:eprng () with
  | Error msg -> finish ~solved:false ~solution:None ~failure:(Some msg)
  | Ok examples -> (
      let out = b.signature.out in
      (* C2TACO's own static analysis: output dimensionality and per-input
         dimensionalities *)
      let lhs_rank =
        match Stagg_minic.Dims.lhs_dim func with
        | Some d -> d
        | None -> Sig.rank_of_spec (Sig.out_spec b.signature)
      in
      let param_ranks = Stagg_minic.Dims.param_dims func in
      let n_idx = if heuristics then loop_var_count func else List.length idx_pool in
      let pool = List.filteri (fun k _ -> k < n_idx) idx_pool in
      let ops =
        if heuristics then
          match
            List.filter_map
              (fun (o : Stagg_minic.Ast.binop) ->
                match o with
                | Stagg_minic.Ast.Add -> Some Ast.Add
                | Stagg_minic.Ast.Sub -> Some Ast.Sub
                | Stagg_minic.Ast.Mul -> Some Ast.Mul
                | Stagg_minic.Ast.Div -> Some Ast.Div
                | _ -> None)
              (Stagg_minic.Ast.arith_ops_used func)
          with
          | [] -> Ast.all_ops
          | ops -> ops
        else Ast.all_ops
      in
      let lhs = (out, List.filteri (fun k _ -> k < lhs_rank) idx_pool) in
      (* RHS atoms: every non-output argument at every index arrangement of
         its analyzed rank, plus every source literal *)
      let atoms =
        List.concat_map
          (fun (name, rank) ->
            if String.equal name out then []
            else
              match rank with
              | None -> []
              | Some 0 -> [ Access_atom (name, []) ]
              | Some r when r <= List.length pool ->
                  List.map (fun t -> Access_atom (name, t)) (tuples pool r)
              | Some _ -> [])
          param_ranks
        @ List.map (fun c -> Const_atom c) (Stagg_minic.Ast.constants func)
      in
      if atoms = [] then
        finish ~solved:false ~solution:None ~failure:(Some "no atoms to enumerate")
      else begin
        (* the example environments are program-independent: prepare them
           once for the whole enumeration *)
        let checker = Validator.prepare ~signature:b.signature ~examples in
        let found = ref None in
        let over_budget () =
          !attempts >= max_attempts ~heuristics || Unix.gettimeofday () -. started > timeout_s
        in
        (* shortest-first: all programs with [len] atoms, left-leaning chains
           (C2TACO builds expressions by extension, like our bottom-up) *)
        let try_program rhs =
          incr attempts;
          let p = { Ast.lhs; rhs } in
          let t0 = Unix.gettimeofday () in
          let ok = Validator.check checker p in
          validate_s := !validate_s +. (Unix.gettimeofday () -. t0);
          if ok then found := Some p
        in
        let rec extend rhs len =
          if !found <> None || over_budget () then ()
          else if len = 0 then try_program rhs
          else
            List.iter
              (fun op ->
                List.iter
                  (fun atom ->
                    if !found = None && not (over_budget ()) then
                      extend (Ast.Bin (op, rhs, atom_to_expr atom)) (len - 1))
                  atoms)
              ops
        in
        let rec lengths len =
          if !found <> None || over_budget () || len > 4 then ()
          else begin
            List.iter
              (fun atom ->
                if !found = None && not (over_budget ()) then
                  extend (atom_to_expr atom) (len - 1))
              atoms;
            lengths (len + 1)
          end
        in
        lengths 1;
        match !found with
        | Some p ->
            finish ~solved:true
              ~solution:
                (Some
                   {
                     Validator.template = p;
                     subst = { Stagg_template.Subst.tensor_binding = []; const_binding = None };
                     concrete = p;
                   })
              ~failure:None
        | None ->
            finish ~solved:false ~solution:None
              ~failure:
                (Some (if over_budget () then "budget exceeded" else "search space exhausted"))
      end)

let run_suite ?jobs ~seed ~heuristics benches = Pool.map ?jobs (run ~seed ~heuristics) benches
