(** Reimplementation of the Tenspiler baseline [Qiu et al., ECOOP 2024]:
    verified lifting driven by a fixed library of solution templates.

    Tenspiler searches a hand-curated space of tensor-operation patterns
    (its "user-provided templates", which the paper cites as the kind of
    hard-wired heuristic STAGG avoids) and proves the winner equivalent —
    it has a verifier, so like STAGG its answers are verified. Coverage is
    bounded by the library: kernels with literal constants or shapes
    outside the pattern set are unsupported. Following the paper, it is
    only run on the 67 real-world benchmarks. *)

val label : string

(** The template library, as TACO template source strings. Exposed so the
    tests can check each entry parses and stays inside the template
    space. *)
val library : string list

(** [batched_validate] (default [true]) selects template-level compilation
    in the validator; results are observably identical either way. *)
val run : ?batched_validate:bool -> seed:int -> Stagg_benchsuite.Bench.t -> Stagg.Result_.t

(** [jobs] defaults to {!Stagg_util.Pool.default_jobs}; output order and
    content are independent of it (modulo [time_s]). *)
val run_suite :
  ?jobs:int ->
  ?batched_validate:bool ->
  seed:int ->
  Stagg_benchsuite.Bench.t list ->
  Stagg.Result_.t list
