(** The LLM-only baseline (paper §8): ask GPT-4 for candidates and check
    them directly — no grammar, no search. A query is solved when any of
    the ~10 candidates, after templatization, validates on the I/O
    examples and passes bounded verification. Fast but inaccurate
    (the paper measures 44% of benchmarks, avg 1.62 attempts). *)

val label : string

(** [batched_validate] (default [true]) selects template-level compilation
    in the validator; results are observably identical either way. *)
val run : ?batched_validate:bool -> seed:int -> Stagg_benchsuite.Bench.t -> Stagg.Result_.t

(** [jobs] defaults to {!Stagg_util.Pool.default_jobs}; output order and
    content are independent of it (modulo [time_s]). *)
val run_suite :
  ?jobs:int ->
  ?batched_validate:bool ->
  seed:int ->
  Stagg_benchsuite.Bench.t list ->
  Stagg.Result_.t list
