open Stagg_util

(* Normalized-monomial representation: a polynomial is a sorted array of
   (monomial, nonzero coefficient) pairs, a monomial a sorted array of
   variable names (repetition encodes powers). Every operation *preserves*
   normalization — add is a linear merge of two sorted term arrays and mul
   merges sorted monomials pairwise then combines one sorted run — so
   nothing ever rebuilds a hash table or re-sorts an association list the
   way the old per-operation [normalize] did. Constant factors (the
   overwhelmingly common case in BMC arithmetic: loop counters, literal
   coefficients, denominator folding) scale coefficients in place, riding
   the machine-int fast paths of {!Rat}. *)

type monomial = string array

type t = (monomial * Rat.t) array

(* Same order as the old sorted association list (element-wise
   [String.compare], a strict prefix sorts first), so [to_string] prints
   terms in the historical order. *)
let compare_mono (a : monomial) (b : monomial) =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i =
    if i = n then compare la lb
    else
      let c = String.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let zero : t = [||]
let const c : t = if Rat.is_zero c then [||] else [| ([||], c) |]
let one = const Rat.one
let of_int n = const (Rat.of_int n)
let var v : t = [| ([| v |], Rat.one) |]

let is_zero (p : t) = Array.length p = 0

let is_const : t -> Rat.t option = function
  | [||] -> Some Rat.zero
  | [| ([||], c) |] -> Some c
  | _ -> None

let is_one : t -> bool = function [| ([||], c) |] -> Rat.is_one c | _ -> false

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) a.(0) in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let ((ma, ca) as ta) = a.(!i) and ((mb, cb) as tb) = b.(!j) in
      let c = compare_mono ma mb in
      if c < 0 then begin
        out.(!k) <- ta;
        incr k;
        incr i
      end
      else if c > 0 then begin
        out.(!k) <- tb;
        incr k;
        incr j
      end
      else begin
        let s = Rat.add ca cb in
        if not (Rat.is_zero s) then begin
          out.(!k) <- (ma, s);
          incr k
        end;
        incr i;
        incr j
      end
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr k;
      incr i
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr k;
      incr j
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

let neg (a : t) : t = Array.map (fun (m, c) -> (m, Rat.neg c)) a
let sub a b = add a (neg b)

(* Product of two sorted monomials: an ordinary sorted merge. *)
let mul_mono (a : monomial) (b : monomial) : monomial =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) a.(0) in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      if String.compare a.(!i) b.(!j) <= 0 then begin
        out.(!k) <- a.(!i);
        incr i
      end
      else begin
        out.(!k) <- b.(!j);
        incr j
      end;
      incr k
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr k;
      incr i
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr k;
      incr j
    done;
    out
  end

(* Scale by a nonzero constant; multiplying by 1 is the identity. *)
let scale c (p : t) : t =
  if Rat.is_one c then p else Array.map (fun (m, k) -> (m, Rat.mul k c)) p

let mul (a : t) (b : t) : t =
  if Array.length a = 0 || Array.length b = 0 then [||]
  else
    match (a, b) with
    | [| ([||], c) |], p | p, [| ([||], c) |] -> scale c p
    | _ ->
        let la = Array.length a and lb = Array.length b in
        let n = la * lb in
        let prods = Array.make n a.(0) in
        for i = 0 to la - 1 do
          let ma, ca = a.(i) in
          for j = 0 to lb - 1 do
            let mb, cb = b.(j) in
            prods.((i * lb) + j) <- (mul_mono ma mb, Rat.mul ca cb)
          done
        done;
        Array.sort (fun (m1, _) (m2, _) -> compare_mono m1 m2) prods;
        (* combine the sorted run: sum equal monomials, drop cancellations *)
        let out = Array.make n prods.(0) in
        let k = ref 0 and i = ref 0 in
        while !i < n do
          let m, c = prods.(!i) in
          let acc = ref c in
          incr i;
          while !i < n && compare_mono (fst prods.(!i)) m = 0 do
            acc := Rat.add !acc (snd prods.(!i));
            incr i
          done;
          if not (Rat.is_zero !acc) then begin
            out.(!k) <- (m, !acc);
            incr k
          end
        done;
        if !k = n then out else Array.sub out 0 !k

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
       let rec go i =
         i = Array.length a
         ||
         let m1, c1 = a.(i) and m2, c2 = b.(i) in
         compare_mono m1 m2 = 0 && Rat.equal c1 c2 && go (i + 1)
       in
       go 0
     end

let n_terms (p : t) = Array.length p

let vars (p : t) =
  let seen = Hashtbl.create 8 in
  Array.iter (fun (m, _) -> Array.iter (fun v -> Hashtbl.replace seen v ()) m) p;
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort String.compare

let to_string (p : t) =
  if Array.length p = 0 then "0"
  else
    String.concat " + "
      (List.map
         (fun (m, c) ->
           match m with
           | [||] -> Rat.to_string c
           | _ when Rat.is_one c -> String.concat "*" (Array.to_list m)
           | _ -> Rat.to_string c ^ "*" ^ String.concat "*" (Array.to_list m))
         (Array.to_list p))

let pp fmt p = Format.pp_print_string fmt (to_string p)

let eval (p : t) lookup =
  Array.fold_left
    (fun acc (m, c) ->
      Rat.add acc (Array.fold_left (fun v x -> Rat.mul v (lookup x)) c m))
    Rat.zero p
