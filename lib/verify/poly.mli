(** Multivariate polynomials over exact rationals — the symbolic value
    domain of the bounded verifier (§7).

    Canonical representation (sorted monomials, no zero coefficients), so
    structural equality is semantic equality of polynomial functions
    over ℚ. *)

open Stagg_util

type t

val zero : t
val one : t
val const : Rat.t -> t
val of_int : int -> t

(** [var v] — the polynomial consisting of the single variable [v]. *)
val var : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val equal : t -> t -> bool

(** [is_const p] is [Some c] iff [p] is the constant [c]. *)
val is_const : t -> Rat.t option

val is_zero : t -> bool

(** [is_one p] — O(1) test for the constant polynomial 1. *)
val is_one : t -> bool

(** Number of monomials. *)
val n_terms : t -> int

val vars : t -> string list
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [eval p env] substitutes concrete rationals for all variables.
    @raise Failure on an unbound variable. *)
val eval : t -> (string -> Rat.t) -> Rat.t
