open Stagg_util

type t = { num : Poly.t; den : Poly.t }

let num t = t.num
let den t = t.den

let make num den =
  if Poly.is_zero den then raise Division_by_zero
  else if Poly.is_zero num then { num = Poly.zero; den = Poly.one }
  else if Poly.is_one den then { num; den = Poly.one }
  else
    (* cheap normalization: a constant denominator is folded into the
       numerator's coefficients *)
    match Poly.is_const den with
    | Some c -> { num = Poly.mul num (Poly.const (Rat.inv c)); den = Poly.one }
    | None -> { num; den }

let of_poly p = { num = p; den = Poly.one }
let var v = of_poly (Poly.var v)

let zero = of_poly Poly.zero
let one = of_poly Poly.one
let of_int n = of_poly (Poly.of_int n)
let of_rat c = of_poly (Poly.const c)

(* Polynomial-only states (denominator 1 on both sides) dominate BMC runs
   — division by a symbolic expression is rare in the benchmark kernels —
   so [add]/[mul] skip the cross-multiplication and [make]'s re-checks
   entirely in that case. *)
let add a b =
  if Poly.is_one a.den && Poly.is_one b.den then
    { num = Poly.add a.num b.num; den = Poly.one }
  else if Poly.equal a.den b.den then make (Poly.add a.num b.num) a.den
  else make (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den)) (Poly.mul a.den b.den)

let neg a = { a with num = Poly.neg a.num }
let sub a b = add a (neg b)

let mul a b =
  if Poly.is_one a.den && Poly.is_one b.den then
    { num = Poly.mul a.num b.num; den = Poly.one }
  else make (Poly.mul a.num b.num) (Poly.mul a.den b.den)
let div a b = make (Poly.mul a.num b.den) (Poly.mul a.den b.num)

(* p1/q1 = p2/q2  ⟺  p1·q2 = p2·q1 (denominators formally nonzero) *)
let equal a b = Poly.equal (Poly.mul a.num b.den) (Poly.mul b.num a.den)

let is_const t =
  match (Poly.is_const t.num, Poly.is_const t.den) with
  | Some n, Some d when not (Rat.is_zero d) -> Some (Rat.div n d)
  | _ -> None

let to_int t =
  match is_const t with Some c -> Rat.to_int c | None -> None

let compare_concrete a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> Some (Rat.compare x y)
  | _ -> None

let to_string t =
  if Poly.is_const t.den = Some Rat.one then Poly.to_string t.num
  else Printf.sprintf "(%s) / (%s)" (Poly.to_string t.num) (Poly.to_string t.den)

let pp fmt t = Format.pp_print_string fmt (to_string t)
