open Stagg_taco

type criterion = A1 | A2 | A3 | A4 | A5 | B1 | B2

let all_topdown = [ A1; A2; A3; A4; A5 ]
let all_bottomup = [ B1; B2 ]

let criterion_to_string = function
  | A1 -> "a1"
  | A2 -> "a2"
  | A3 -> "a3"
  | A4 -> "a4"
  | A5 -> "a5"
  | B1 -> "b1"
  | B2 -> "b2"

type ctx = {
  dim_list : int list;
  ops_available : Ast.op list;
  grammar_has_const : bool;
  enabled : criterion list;
}

(* a4: some +, − or / applied to two syntactically identical operands. *)
let rec same_operand_addsubdiv (e : Ast.expr) =
  match e with
  | Ast.Access _ | Ast.Const _ -> false
  | Ast.Neg e -> same_operand_addsubdiv e
  | Ast.Bin (op, l, r) ->
      (match op with
      | Ast.Add | Ast.Sub | Ast.Div -> Ast.equal_expr l r
      | Ast.Mul -> false)
      || same_operand_addsubdiv l || same_operand_addsubdiv r

(* [score] runs once per queue push — the searches' innermost loop — so
   the context is compiled once per search into flat fields: criterion
   membership becomes a bool read instead of seven [List.mem]s, and the
   list lengths are taken up front. The per-call arithmetic below is
   kept term for term (order and all) so the total is bit-identical to
   the uncompiled scorer. *)
type compiled = {
  k_len_l : int;
  k_n_ops : int;  (** [List.length ops_available] *)
  k_const : bool;
  k_a1 : bool;
  k_a2 : bool;
  k_a3 : bool;
  k_a4 : bool;
  k_a5 : bool;
  k_b1 : bool;
  k_b2 : bool;
}

let compile ctx =
  let on c = List.mem c ctx.enabled in
  {
    k_len_l = List.length ctx.dim_list;
    k_n_ops = List.length ctx.ops_available;
    k_const = ctx.grammar_has_const;
    k_a1 = on A1;
    k_a2 = on A2;
    k_a3 = on A3;
    k_a4 = on A4;
    k_a5 = on A5;
    k_b1 = on B1;
    k_b2 = on B2;
  }

let score_compiled k (m : Node.metrics) ~program =
  let too_few = 2 * List.length m.distinct_ops < k.k_n_ops in
  let a1 =
    (* grammar includes a constant expression, length exceeds 3, and the
       expression has poor index variety or lacks the constant *)
    if
      k.k_a1 && k.k_const && m.n_tensors > 3 && (m.n_index_i < 2 || not m.has_const_leaf)
    then 10.
    else 0.
  in
  let a2 =
    (* the number of unique tensor symbols differs from the dimension-list
       length (a symbol may be used several times: (b-c)*(b-c) has three
       unique symbols). A partial template can still grow, so it is only
       penalized once it is already too long. *)
    if
      k.k_a2
      && ((m.complete && m.n_unique <> k.k_len_l)
         || ((not m.complete) && m.n_unique > k.k_len_l))
    then 100.
    else 0.
  in
  (* a3/b1: tensor symbols in alphabetical order by first appearance —
     i.e. the first-appearance sequence is sorted. "Sorted", not
     "consecutive": when a Const occupies a dimension-list slot the
     solution may legally skip that slot's letter (a(i) = Const - c(i));
     Const itself does not participate. The point of the rule is to avoid
     enumerating templates that differ only by symbol permutation (§5.1).
     [Node] maintains the answer in [sorted_firsts], O(1) per leaf. *)
  let a3 = if k.k_a3 && not m.sorted_firsts then infinity else 0. in
  let a4 =
    match program with
    | Some p when k.k_a4 && m.complete && same_operand_addsubdiv p.Ast.rhs -> infinity
    | _ -> 0.
  in
  let a5 = if k.k_a5 && m.complete && too_few then infinity else 0. in
  let b1 = if k.k_b1 && not m.sorted_firsts then 100. else 0. in
  let b2 = if k.k_b2 && m.n_tensors >= k.k_len_l && too_few then infinity else 0. in
  a1 +. a2 +. a3 +. a4 +. a5 +. b1 +. b2

let score ctx m ~program = score_compiled (compile ctx) m ~program

(* a4 is the only criterion that looks at the rebuilt AST; when it is off
   (every bottom-up method), scoring with [~program:None] is bit-identical
   to scoring with the real program — callers may skip the rebuild. *)
let needs_program k = k.k_a4
