(** Partial derivation trees: the states of both A* searches.

    A node is a parse tree whose frontier may contain unexpanded
    nonterminals ([Open]). Expansion rewrites the leftmost [Open] leaf by
    one grammar rule, exactly as in Algorithms 1 and 2. *)

open Stagg_grammar

type t =
  | Leaf of Cfg.term
  | Open of string  (** unexpanded nonterminal *)
  | Node of int * t list  (** applied rule id, children *)

val initial : Cfg.t -> t

(** Name of the leftmost unexpanded nonterminal, if any. *)
val leftmost_open : t -> string option

val is_complete : t -> bool

(** [expansions g x] — all single-step leftmost expansions, with the rule
    applied. Empty when [x] is complete. *)
val expansions : Cfg.t -> t -> (Cfg.rule * t) list

(** [expand1 x r] — the tree obtained by applying rule [r] at [x]'s
    leftmost open leaf (which must exist). Lets the searches keep
    (parent, rule) in the frontier and materialize child trees only when
    an entry is actually popped. *)
val expand1 : t -> Cfg.rule -> t

(** [g_cost p x] — the heuristic g(x): Σ over open leaves of −log₂ h(nt)
    (§5.1), accumulated left to right. 0 when complete. *)
val g_cost : Pcfg.t -> t -> float

(** [g_cost_opens p opens] — the same sum over an ordered open-leaf list
    (see {!annotated}); float-for-float identical to [g_cost] on the tree
    the list came from, in O(open leaves) instead of O(tree). *)
val g_cost_opens : Pcfg.t -> string list -> float

(** Expression depth as defined in §5.1: tensor/constant leaves (and open
    expression-valued leaves) have depth 1; a node of an expression-valued
    rule with ≥2 expression children adds 1; everything else is
    transparent. An O(tree) scan — the penalties never read it, so the
    top-down search computes it only on popped entries (the max-depth
    prune), not per push. *)
val depth : Cfg.t -> t -> int

(** Per-grammar tables for the canonical template fingerprint: a 63-bit
    polynomial hash of the rule-contribution sequence in
    leftmost-derivation (= preorder) order. Two complete trees of the
    same grammar have equal fingerprints iff their {!Stagg_taco.Pretty}
    canonical strings are equal, up to hash collisions (~2⁻⁶³ per pair) —
    rules contribute exactly their AST-carrying terminals plus a
    branching marker, and printing round-trips the AST. The A* [seen]
    probe keys on this instead of printed templates. *)
type fingerprints

(** Precompute the per-rule tables; O(grammar size), once per search. *)
val fingerprints : Cfg.t -> fingerprints

(** Full-tree fingerprint by preorder rescan. Agrees with the
    incrementally-maintained {!annotated}[.fp] on every tree built by
    leftmost expansion. *)
val fingerprint : fingerprints -> t -> int

(** Whether the grammar supports incrementally-maintained depth (see
    {!annotated}[.depth]): operator subtrees provably stay at depth 0,
    expression/tensor subtrees provably reach depth ≥1, and no
    tail/program nonterminal appears under an expression lhs — so each
    rule's contribution to {!depth} is a per-rule constant. Holds for
    every top-down grammar this project generates; the right-linear
    bottom-up grammars fail it (a TAIL's depth depends on where ε is
    taken), but the bottom-up search never prunes on depth. *)
val depth_static : fingerprints -> bool

(** Facts the penalty functions need, computable on partial trees. *)
type metrics = {
  tensor_leaves : (string * string list) list;
      (** tensor/const terminals in left-to-right order; [Const] appears as
          [("Const", \[\])] *)
  n_tensors : int;  (** length of [tensor_leaves] *)
  n_unique : int;
      (** distinct tensor symbols (Const counts once) — the quantity a
          dimension list has one entry per, hence the paper's "length" *)
  firsts_rev : string list;
      (** distinct non-Const tensor symbols, most recent first (reverse
          first-appearance order) *)
  sorted_firsts : bool;
      (** the first-appearance sequence of non-Const symbols is strictly
          sorted — the a3/b1 criterion, maintained in O(1) per leaf *)
  n_index_i : int;  (** leaves whose index list contains ["i"] (a1) *)
  has_const_leaf : bool;
  distinct_ops : Stagg_taco.Ast.op list;
  complete : bool;
}

val metrics : Cfg.t -> t -> metrics

(** Metrics plus the open leaves — count and ordered (left-to-right)
    nonterminal names — and the running fingerprint, carried in the A*
    queue payload so neither pops nor the g(x) of a push rescan the
    tree. [opens] and [fp] are maintained incrementally for every
    grammar: expansion always rewrites the leftmost open leaf, i.e. the
    list's head / the next preorder slot.

    [open_paths] pairs each open leaf with its branching-ancestor count
    (the number of {e depth-adding} rule applications on the path to the
    root), and [depth] carries {!val-depth} of the partial tree forward:
    for a {!depth_static} grammar a rule applied at an open with path
    count [p] yields depth [max parent (p' + 1)] whenever its rhs holds a
    depth-1 item, where [p'] adds the rule's own branch bit — letting the
    top-down search prune on depth without materializing or walking the
    popped tree. For non-static grammars both fields are still maintained
    (and [open_paths] still matches the full-scan walk over the same
    static tables), but [depth] may drift from {!val-depth} and must not
    be used. *)
type annotated = {
  metrics : metrics;
  n_open : int;
  opens : string list;
  open_paths : int list;
  depth : int;
  fp : int;
}

(** Full-scan annotation (the initial node, and the fallback). *)
val annotate : Cfg.t -> fingerprints -> t -> annotated

(** Does every rule keep tensor/constant terminals left of any
    nonterminal in its rhs? True for all grammars this project generates;
    precondition for the incremental path of [expand_metrics]. Check once
    per search. *)
val incremental_safe : Cfg.t -> bool

(** [expand_metrics fps parent r] — the annotation of the tree obtained
    from [parent]'s tree by applying rule [r] at the leftmost open leaf,
    computed from [parent]'s annotation and [r]'s rhs alone — O(|rhs| +
    tensor leaves), no child tree needed, so pushes don't materialize
    trees at all. Requires an {!incremental_safe} grammar; the searches
    fall back to [annotate] on the materialized child otherwise. Equal
    to [annotate] on that child except that [distinct_ops] may list the
    same ops in a different first-appearance order (the penalties use
    only membership/length). *)
val expand_metrics : fingerprints -> annotated -> Cfg.rule -> annotated

(** [to_program g x] rebuilds the TACO template AST from a complete tree.
    [None] if [x] has open leaves or an unrecognized rule shape. *)
val to_program : Cfg.t -> t -> Stagg_taco.Ast.program option

(** [remove_tail g x] — Algorithm 2's RemoveTail: if every open leaf is a
    [Cat_tail] nonterminal with an ε rule, close them all and return the
    completed tree. [None] otherwise. *)
val remove_tail : Cfg.t -> t -> t option
