(** The two weighted-A* template enumerators (paper Algorithms 1 and 2).

    Both maintain a priority queue of partial derivation trees ordered by
    f(x) = c(x) + g(x) + X(x), expand the leftmost nonterminal of the
    cheapest tree, and hand complete templates to a caller-supplied
    validator. Rules with probability 0 (cost ∞) and expressions with
    infinite penalty are never enqueued. *)

type budget = {
  max_attempts : int;  (** validator calls before giving up *)
  max_expansions : int;  (** queue pops before giving up *)
  timeout_s : float;  (** wall-clock limit *)
}

val default_budget : budget

type stats = {
  attempts : int;
  expansions : int;
      (** pops doing real work (entries and ghosts); excludes [pruned]
          and [suppressed] *)
  pruned : int;
      (** pops of analysis-pruned complete templates ([Prune_replay]
          mode) — provably zero-substitution validations skipped *)
  suppressed : int;
      (** admission-suppressed expansions ([Prune_admission] mode):
          doomed complete children never enqueued, charged to the budget
          at their baseline pop position via the admission ledger. Budget
          caps and the timeout poll tick on
          [expansions + pruned + suppressed] (total baseline pops), so
          enabling pruning in either mode moves no stop point; see
          {!search_topdown}. *)
  elapsed_s : float;
}

(** Which limit ended an unsuccessful search: the deterministic caps
    (validator attempts, queue pops, frontier size) or the wall-clock
    backstop, polled every 64 pops — so a [Timeout] stop always reports
    an expansion count divisible by 64. *)
type stop_reason = Attempts | Expansions | Frontier | Timeout

val stop_reason_to_string : stop_reason -> string

type 'sol outcome =
  | Solved of 'sol * stats
  | Exhausted of stats  (** queue ran dry *)
  | Budget_exceeded of stop_reason * stats

val stats_of : 'sol outcome -> stats

(** How validated templates are deduplicated. [Fingerprint] (the
    default) keys the [seen] probe on {!Node.fingerprint} — O(1) per
    complete tree, no printing — and additionally suppresses frontier
    pushes of complete children whose fingerprint has already been
    validated (they are replaced by weightless ghost entries whose pop
    replays the duplicate's no-op, keeping attempt/expansion counts and
    pop order bit-identical). [Pretty_key] is the legacy scheme — the
    probe keys on the printed template — kept for differential testing. *)
type dedup = Fingerprint | Pretty_key

(** How analysis-pruned (doomed) complete children are absorbed.

    [Prune_replay]: each doomed child is pushed as a tree-less pruned
    item at bit-identical f; its pop replays the baseline's observable
    effects and ticks [pruned].

    [Prune_admission] (the default): the doomed child is never enqueued
    at all — no entry allocation, no frontier traffic, no ghost replay.
    Its (f, tie-break sequence) key goes to a scalar side ledger, which
    the search drains in lockstep with the frontier so the suppressed
    pop's budget tick and observable dedup/attempt effects land at
    exactly the position the baseline pop would have — caps and the
    64-pop clock poll bind on the same template either way. Both modes
    produce byte-identical solved/attempt/first-solution outcomes to
    pruning off; admission additionally keeps doomed subtrees out of the
    frontier ([suppressed] replaces [pruned] in the stats). *)
type prune_mode = Prune_replay | Prune_admission

val prune_mode_to_string : prune_mode -> string

(** Telemetry from the parallel engine (see [?domains] below):
    speculative expansions computed by worker domains, how many the
    commit loop actually consumed ([par_speculated - par_committed] is
    wasted speculation), and how many claims came off another worker's
    shard (the work-stealing overflow lane). All zero when
    [par_domains = 1]. *)
type par_stats = {
  par_domains : int;  (** effective domain count, coordinator included *)
  par_speculated : int;  (** speculation payloads workers finished *)
  par_committed : int;  (** payloads the commit loop consumed *)
  par_steals : int;  (** claims taken from a non-owned shard *)
}

val no_par_stats : par_stats

(** Top-down search (Algorithm 1): validates templates when a complete
    tree is dequeued; trees deeper than [max_depth] (default 6, §5.1) are
    discarded. The [validate] callback receives the template AST and
    returns a solution to stop the search.

    [?prune] enables analysis-guided pruning ({!Stagg_grammar.Prune}):
    complete children whose template is provably a zero-substitution
    validation are absorbed per [?prune_mode] (replayed or
    admission-suppressed) with the baseline's observable effects
    (attempt counts, dedup marks, budget ticks) reproduced exactly, so
    solved/attempt outcomes are byte-identical with pruning on or off —
    only reported [expansions] (and time) drop. Requires [Fingerprint]
    dedup (and, top-down, static depth tables); silently off
    otherwise.

    [?domains] (default 1) turns on the deterministic parallel engine:
    the frontier is sharded across [domains] {!Stagg_util.Pqueue} shards
    and [domains - 1] worker domains speculatively precompute the PURE
    part of upcoming pops (child annotations, penalties, prune states,
    program rebuilds, and — via [?staged_validate] — the compute half of
    validation), while the single coordinator commits pops in exactly
    the sequential (f, seq) order, substituting finished speculations
    where they exist and computing inline otherwise. Every speculative
    value is bit-identical to its inline counterpart, so
    solved/attempt/expansion/first-solution outcomes are byte-identical
    to [?domains:1] for every domain count — parallelism changes
    wall-clock time only (the wall-clock timeout backstop remains, as
    always, machine-dependent). [0] means auto: take whatever helper
    domains the {!Stagg_util.Pool} budget grants. Explicit counts are
    honored but still debited from the Pool budget so nested parallelism
    clamps instead of oversubscribing. Searches whose grammar lacks
    incremental metrics (or, top-down, static depth tables) run
    sequentially regardless.

    [?staged_validate] splits validation for speculation: [sv p]
    performs the expensive pure compute and returns a thunk whose later
    invocation (always on the coordinator, at the commit point) applies
    the observable effects (timing/instantiation counters) and yields
    the result. Must satisfy [(sv p) () ≡ validate p] observably; when
    absent, workers only speculate expansions and every validation runs
    inline on the coordinator.

    [?on_par_stats] receives the engine's {!par_stats} once, after the
    workers have been joined. [?commit_probe] is called with the (f,
    seq) key of every committed pop — frontier pops and admission-ledger
    drains alike, in commit order — and exists so tests can assert the
    commit stream itself, not just the end counts. *)
val search_topdown :
  pcfg:Stagg_grammar.Pcfg.t ->
  penalty_ctx:Penalty.ctx ->
  ?max_depth:int ->
  ?dedup:dedup ->
  ?prune:Stagg_grammar.Prune.t ->
  ?prune_mode:prune_mode ->
  ?domains:int ->
  ?staged_validate:(Stagg_taco.Ast.program -> unit -> 'sol option) ->
  ?on_par_stats:(par_stats -> unit) ->
  ?commit_probe:(float -> int -> unit) ->
  budget:budget ->
  validate:(Stagg_taco.Ast.program -> 'sol option) ->
  unit ->
  'sol outcome

(** Bottom-up search (Algorithm 2): when a dequeued tree has exactly the
    predicted number of tensors, its trailing TAIL nonterminals are erased
    (RemoveTail) and the completed template is validated; expansion then
    continues regardless. [?prune] / [?prune_mode] / [?domains] /
    [?staged_validate] / [?on_par_stats] / [?commit_probe] as in
    {!search_topdown}; the bottom-up penalties never read the rebuilt
    AST, so pruned completions skip materialization entirely. *)
val search_bottomup :
  pcfg:Stagg_grammar.Pcfg.t ->
  penalty_ctx:Penalty.ctx ->
  dim_list:int list ->
  ?dedup:dedup ->
  ?prune:Stagg_grammar.Prune.t ->
  ?prune_mode:prune_mode ->
  ?domains:int ->
  ?staged_validate:(Stagg_taco.Ast.program -> unit -> 'sol option) ->
  ?on_par_stats:(par_stats -> unit) ->
  ?commit_probe:(float -> int -> unit) ->
  budget:budget ->
  validate:(Stagg_taco.Ast.program -> 'sol option) ->
  unit ->
  'sol outcome
