(** The domain-specific penalty functions X(x) of §5.1 and §5.2.

    Five criteria for the top-down search (a1–a5) and two for the bottom-up
    search (b1–b2), individually switchable for the Table 2 ablations.
    Infinite penalties mean "never consider" — the searches drop such
    expressions instead of enqueueing them. *)

type criterion = A1 | A2 | A3 | A4 | A5 | B1 | B2

val all_topdown : criterion list
val all_bottomup : criterion list
val criterion_to_string : criterion -> string

type ctx = {
  dim_list : int list;  (** the predicted L, LHS included *)
  ops_available : Stagg_taco.Ast.op list;
      (** operators occurring in the candidate templates — the "operations
          defined in the grammar" of a5/b2 (operators the LLM never
          produced have probability 0 and are effectively undefined) *)
  grammar_has_const : bool;
  enabled : criterion list;
}

(** A context compiled for the search hot loop: criterion membership as
    flat bools, list lengths precomputed. Scoring with it is
    bit-identical to {!score} on the originating context. *)
type compiled

val compile : ctx -> compiled

(** [score_compiled k m ~program] — the total penalty X(x). [program] is
    the rebuilt template AST when [x] is complete ([None] on partials);
    a4's structural "same tensor under +,−,/" check needs it. *)
val score_compiled : compiled -> Node.metrics -> program:Stagg_taco.Ast.program option -> float

(** [score ctx m ~program] — [score_compiled] after a one-shot
    {!compile}; for tests and one-off calls. *)
val score : ctx -> Node.metrics -> program:Stagg_taco.Ast.program option -> float

(** Does {!score_compiled} ever read [~program]? Only a4 does; when it is
    disabled, scoring with [~program:None] is bit-identical to scoring
    with the rebuilt AST, so callers may skip the rebuild. *)
val needs_program : compiled -> bool
