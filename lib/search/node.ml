open Stagg_grammar
module Ast = Stagg_taco.Ast

type t = Leaf of Cfg.term | Open of string | Node of int * t list

let initial g = Open (Cfg.start g)

let rec leftmost_open = function
  | Open nt -> Some nt
  | Leaf _ -> None
  | Node (_, ch) -> List.find_map leftmost_open ch

let is_complete x = leftmost_open x = None

let apply_rule (r : Cfg.rule) =
  Node (r.id, List.map (function Cfg.NT n -> Open n | Cfg.T t -> Leaf t) r.rhs)

(* Substitute the leftmost Open leaf with [repl]; returns the new tree and
   whether a substitution happened. *)
let rec subst_leftmost x repl =
  match x with
  | Open _ -> (repl, true)
  | Leaf _ -> (x, false)
  | Node (id, ch) ->
      let rec go acc done_ = function
        | [] -> (List.rev acc, done_)
        | c :: rest ->
            if done_ then go (c :: acc) true rest
            else
              let c', d = subst_leftmost c repl in
              go (c' :: acc) d rest
      in
      let ch', d = go [] false ch in
      (Node (id, ch'), d)

let expansions g x =
  match leftmost_open x with
  | None -> []
  | Some nt ->
      List.map
        (fun (r : Cfg.rule) ->
          let x', ok = subst_leftmost x (apply_rule r) in
          assert ok;
          (r, x'))
        (Cfg.rules_for g nt)

(* Flat left-to-right accumulation over the open leaves: closed leaves
   thread the accumulator through unchanged, so this is float-for-float
   the same computation as folding over the ordered open-leaf list —
   the invariant [g_cost_opens] relies on. *)
let g_cost p x =
  let rec go acc = function
    | Leaf _ -> acc
    | Open nt -> acc +. Pcfg.h_cost p nt
    | Node (_, ch) -> List.fold_left go acc ch
  in
  go 0. x

let g_cost_opens p opens = List.fold_left (fun acc nt -> acc +. Pcfg.h_cost p nt) 0. opens

let rec depth g = function
  | Leaf (Cfg.Tok_tensor _ | Cfg.Tok_const) -> 1
  | Leaf _ -> 0
  | Open nt -> (
      match Cfg.category g nt with
      | Cfg.Cat_expr | Cfg.Cat_tensor -> 1
      | Cfg.Cat_program | Cfg.Cat_op | Cfg.Cat_tail -> 0)
  | Node (rid, ch) ->
      (* allocation-free child fold: max depth and how many children carry
         expression depth (this runs once per queue pop) *)
      let m = ref 0 and expr_children = ref 0 in
      List.iter
        (fun c ->
          let d = depth g c in
          if d > !m then m := d;
          if d >= 1 then incr expr_children)
        ch;
      if Cfg.rule_lhs_cat g rid = Cfg.Cat_expr && !expr_children >= 2 then 1 + !m else !m

(* ---- canonical template fingerprints ----

   A 63-bit polynomial rolling hash over the sequence of per-rule
   contributions read off in leftmost-derivation order. A leftmost
   derivation creates internal nodes exactly in preorder, so the hash can
   be maintained incrementally: applying rule [r] to any partial tree
   maps fingerprint [fp] to [fp * mult(r) + addend(r)], and that equals
   the full preorder rescan of the child tree.

   A rule's contribution encodes what the rule adds to the template's
   *concrete syntax*: the AST-carrying terminals of its rhs
   (tensor/const/op/neg), prefixed by a branching marker when the rhs has
   ≥2 nonterminals. Assign and paren tokens, unit rules and ε rules
   contribute nothing. [Pretty] prints right operands of equal precedence
   parenthesized, so printing round-trips the AST exactly; the marker
   separates the one remaining ambiguity (associativity: both parse trees
   of [b + c + d] list the same tokens but print differently). Hence two
   complete trees print equally iff their contribution sequences are
   equal, i.e. iff their fingerprints collide only with hash probability
   ~2⁻⁶³ (audited in the test suite). *)

type fingerprints = {
  mult : int array;
  addend : int array;
  (* §5.1 depth tables, per rule (valid when [depth_static]):
     [d_branch] — applying the rule adds one to the expression depth of
     everything below it (lhs is an expression and the rhs carries ≥2
     depth-bearing children); [d_gain] — the rhs itself introduces a
     depth-1 item (tensor/const terminal, or an expression/tensor
     nonterminal, whose subtrees always reach depth ≥1). *)
  d_branch : bool array;
  d_gain : bool array;
  depth_static : bool;
}

let depth_static fps = fps.depth_static

(* All constants fit OCaml's 63-bit native int. *)
let fp_k = 0x2545f4914f6cdd1d

let fp_mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x2545f4914f6cdd1d in
  let h = h lxor (h lsr 27) in
  let h = h * 0x27d4eb2f165667c5 in
  h lxor (h lsr 31)

let fp_seed = fp_mix 0x51a6617f
let fp_branch = fp_mix 0x5eed0a11

(* Token hashes come from the token's own spelling (plus a constructor
   tag: [Tok_neg] and [Tok_op Sub] both print "-"), not [Hashtbl.hash],
   whose 30-bit range would make cross-token collisions plausible. *)
let fp_token tag s =
  let h = ref (0x27d4eb2f + tag) in
  String.iter (fun ch -> h := (!h * 0x100000001b3) lxor Char.code ch) s;
  fp_mix !h

let rule_contribution (r : Cfg.rule) =
  let n_nt =
    List.fold_left (fun a s -> match s with Cfg.NT _ -> a + 1 | Cfg.T _ -> a) 0 r.rhs
  in
  let toks =
    List.filter_map
      (function
        | Cfg.T (Cfg.Tok_tensor _ as t) -> Some (fp_token 1 (Cfg.term_to_string t))
        | Cfg.T Cfg.Tok_const -> Some (fp_token 2 "Const")
        | Cfg.T (Cfg.Tok_op op) -> Some (fp_token 3 (Ast.op_to_string op))
        | Cfg.T Cfg.Tok_neg -> Some (fp_token 4 "-")
        | Cfg.T (Cfg.Tok_assign | Cfg.Tok_lparen | Cfg.Tok_rparen) | Cfg.NT _ -> None)
      r.rhs
  in
  if n_nt >= 2 then fp_branch :: toks else toks

let fingerprints g =
  let n = Cfg.size g in
  let mult = Array.make n 1 and addend = Array.make n 0 in
  let d_branch = Array.make n false and d_gain = Array.make n false in
  let static = ref true in
  for id = 0 to n - 1 do
    let r = Cfg.rule g id in
    let m, a =
      List.fold_left (fun (m, a) v -> (m * fp_k, (a * fp_k) + v)) (1, 0) (rule_contribution r)
    in
    mult.(id) <- m;
    addend.(id) <- a;
    (* [deep] counts rhs items whose subtree always reaches depth ≥1:
       tensor/const terminals, and expression/tensor nonterminals (whose
       invariant is checked below). Everything the count treats as 0 must
       provably stay 0 (operator subtrees) or never occur where it matters
       (tail/program nonterminals under an expression lhs) — otherwise the
       grammar is flagged non-static and searches fall back to [depth]. *)
    let lhs_cat = Cfg.category g r.lhs in
    let deep = ref 0 in
    List.iter
      (fun sym ->
        match sym with
        | Cfg.T (Cfg.Tok_tensor _ | Cfg.Tok_const) -> incr deep
        | Cfg.T _ -> ()
        | Cfg.NT nt -> (
            match Cfg.category g nt with
            | Cfg.Cat_expr | Cfg.Cat_tensor -> incr deep
            | Cfg.Cat_op -> ()
            | Cfg.Cat_tail | Cfg.Cat_program ->
                if lhs_cat = Cfg.Cat_expr then static := false))
      r.rhs;
    d_gain.(id) <- !deep >= 1;
    d_branch.(id) <- lhs_cat = Cfg.Cat_expr && !deep >= 2;
    (match lhs_cat with
    | Cfg.Cat_expr | Cfg.Cat_tensor ->
        (* every expression/tensor expansion must keep a depth-1 item below *)
        if !deep = 0 then static := false
    | Cfg.Cat_op ->
        (* operator subtrees must never grow depth *)
        if
          List.exists
            (function
              | Cfg.T (Cfg.Tok_tensor _ | Cfg.Tok_const) -> true
              | Cfg.T _ -> false
              | Cfg.NT nt -> Cfg.category g nt <> Cfg.Cat_op)
            r.rhs
        then static := false
    | Cfg.Cat_program | Cfg.Cat_tail -> ())
  done;
  { mult; addend; d_branch; d_gain; depth_static = !static }

let rec fp_scan fps acc = function
  | Leaf _ | Open _ -> acc
  | Node (id, ch) -> List.fold_left (fp_scan fps) ((acc * fps.mult.(id)) + fps.addend.(id)) ch

let fingerprint fps x = fp_scan fps fp_seed x

type metrics = {
  tensor_leaves : (string * string list) list;
  n_tensors : int;
  n_unique : int;
  firsts_rev : string list;
  sorted_firsts : bool;
  n_index_i : int;
  has_const_leaf : bool;
  distinct_ops : Ast.op list;
  complete : bool;
}

(* Shared accumulator for the full scan and the incremental extension, so
   the two agree field for field. Leaves must be fed left to right. *)
type macc = {
  mutable m_tensors : (string * string list) list;  (** reversed *)
  mutable m_n_tensors : int;
  mutable m_firsts : string list;  (** reversed *)
  mutable m_sorted : bool;
  mutable m_n_index_i : int;
  mutable m_has_const : bool;  (** a [Tok_const] leaf was seen *)
  mutable m_const_sym : bool;  (** the symbol "Const" was seen (leaf or tensor) *)
  mutable m_n_unique : int;
}

let macc_add_leaf a n idxs =
  a.m_tensors <- (n, idxs) :: a.m_tensors;
  a.m_n_tensors <- a.m_n_tensors + 1;
  if List.mem "i" idxs then a.m_n_index_i <- a.m_n_index_i + 1;
  if String.equal n "Const" then begin
    (* Const does not participate in the alphabetical-order criterion and
       counts once toward [n_unique], whether it came from the dedicated
       terminal or a pathological tensor of that name *)
    if not a.m_const_sym then begin
      a.m_const_sym <- true;
      a.m_n_unique <- a.m_n_unique + 1
    end
  end
  else if not (List.mem n a.m_firsts) then begin
    (match a.m_firsts with
    | [] -> ()
    | prev :: _ -> if String.compare prev n >= 0 then a.m_sorted <- false);
    a.m_firsts <- n :: a.m_firsts;
    a.m_n_unique <- a.m_n_unique + 1
  end

let metrics _g x =
  (* single left-to-right scan over the frontier *)
  let a =
    {
      m_tensors = [];
      m_n_tensors = 0;
      m_firsts = [];
      m_sorted = true;
      m_n_index_i = 0;
      m_has_const = false;
      m_const_sym = false;
      m_n_unique = 0;
    }
  in
  let ops = ref [] in
  let complete = ref true in
  let rec scan = function
    | Open _ -> complete := false
    | Leaf (Cfg.Tok_tensor (n, idxs)) -> macc_add_leaf a n idxs
    | Leaf Cfg.Tok_const ->
        macc_add_leaf a "Const" [];
        a.m_has_const <- true
    | Leaf (Cfg.Tok_op op) -> if not (List.mem op !ops) then ops := op :: !ops
    | Leaf Cfg.Tok_neg -> if not (List.mem Ast.Sub !ops) then ops := Ast.Sub :: !ops
    | Leaf (Cfg.Tok_assign | Cfg.Tok_rparen | Cfg.Tok_lparen) -> ()
    | Node (_, ch) -> List.iter scan ch
  in
  scan x;
  {
    tensor_leaves = List.rev a.m_tensors;
    n_tensors = a.m_n_tensors;
    n_unique = a.m_n_unique;
    firsts_rev = a.m_firsts;
    sorted_firsts = a.m_sorted;
    n_index_i = a.m_n_index_i;
    has_const_leaf = a.m_has_const;
    distinct_ops = List.rev !ops;
    complete = !complete;
  }

(* ---- incrementally-maintained metrics ----

   [metrics] is a full tree scan. Both searches used to rescan at every
   push (and the bottom-up one again at every pop); the scans are the
   search's hot loop. Expansion always rewrites the *leftmost* [Open]
   leaf, and in every grammar this project generates no tensor/constant
   terminal appears to the right of a nonterminal within one rule's rhs —
   so every tensor leaf of a reachable tree lies left of its leftmost
   [Open], and a child's [tensor_leaves] is exactly the parent's with the
   applied rule's tensor terminals appended. [expand_metrics] exploits
   that; [incremental_safe] checks the grammar-level precondition once so
   exotic grammars fall back to the full scan. *)

type annotated = {
  metrics : metrics;
  n_open : int;
  opens : string list;
  open_paths : int list;
  depth : int;
  fp : int;
}

let collect_opens x =
  let rec go acc = function
    | Open nt -> nt :: acc
    | Leaf _ -> acc
    | Node (_, ch) -> List.fold_left go acc ch
  in
  List.rev (go [] x)

(* Branching-ancestor count per open leaf, in the same left-to-right order
   as [collect_opens]. For a depth-static grammar, the depth of a partial
   tree is the max over "candidates": each tensor/const leaf and each
   expression/tensor open contributes its path count + 1, so the stored
   [depth] can be pushed forward one rule application at a time. *)
let collect_open_paths fps x =
  let rec go p acc = function
    | Open _ -> p :: acc
    | Leaf _ -> acc
    | Node (id, ch) ->
        let p = if fps.d_branch.(id) then p + 1 else p in
        List.fold_left (go p) acc ch
  in
  List.rev (go 0 [] x)

let annotate g fps x =
  let opens = collect_opens x in
  {
    metrics = metrics g x;
    n_open = List.length opens;
    opens;
    open_paths = collect_open_paths fps x;
    depth = depth g x;
    fp = fingerprint fps x;
  }

let rule_safe (r : Cfg.rule) =
  let rec go seen_nt = function
    | [] -> true
    | Cfg.NT _ :: rest -> go true rest
    | Cfg.T (Cfg.Tok_tensor _ | Cfg.Tok_const) :: rest -> (not seen_nt) && go seen_nt rest
    | Cfg.T _ :: rest -> go seen_nt rest
  in
  go false r.rhs

let incremental_safe g = Array.for_all rule_safe (Cfg.rules g)

let expand1 x (r : Cfg.rule) =
  let x', ok = subst_leftmost x (apply_rule r) in
  assert ok;
  x'

let expand_metrics fps (parent : annotated) (r : Cfg.rule) : annotated =
  begin
    let pm = parent.metrics in
    (* the accumulator resumes from the parent's per-leaf facts;
       [m_tensors] starts empty so it collects just the rule's new leaves
       (reversed), keeping the [tensor_leaves] append below cheap *)
    let a =
      {
        m_tensors = [];
        m_n_tensors = pm.n_tensors;
        m_firsts = pm.firsts_rev;
        m_sorted = pm.sorted_firsts;
        m_n_index_i = pm.n_index_i;
        m_has_const = pm.has_const_leaf;
        m_const_sym = pm.n_unique > List.length pm.firsts_rev;
        m_n_unique = pm.n_unique;
      }
    in
    let new_ops = ref [] in
    let new_nts = ref [] in
    let n_open = ref (parent.n_open - 1) in
    (* path count of the node the rule creates (it replaces the head open) *)
    let p' =
      match parent.open_paths with
      | [] -> assert false
      | p :: _ -> if fps.d_branch.(r.id) then p + 1 else p
    in
    List.iter
      (function
        | Cfg.NT n ->
            incr n_open;
            new_nts := n :: !new_nts
        | Cfg.T (Cfg.Tok_tensor (n, idxs)) -> macc_add_leaf a n idxs
        | Cfg.T Cfg.Tok_const ->
            macc_add_leaf a "Const" [];
            a.m_has_const <- true
        | Cfg.T (Cfg.Tok_op op) -> if not (List.mem op !new_ops) then new_ops := op :: !new_ops
        | Cfg.T Cfg.Tok_neg ->
            if not (List.mem Ast.Sub !new_ops) then new_ops := Ast.Sub :: !new_ops
        | Cfg.T (Cfg.Tok_assign | Cfg.Tok_lparen | Cfg.Tok_rparen) -> ())
      r.rhs;
    let tensor_leaves =
      match a.m_tensors with [] -> pm.tensor_leaves | l -> pm.tensor_leaves @ List.rev l
    in
    (* first-appearance order may differ from a fresh scan when an op
       terminal sits right of a nonterminal (EXPR -> EXPR op EXPR); the
       penalties only use membership and length, which agree *)
    let distinct_ops =
      List.fold_left
        (fun acc op -> if List.mem op acc then acc else acc @ [ op ])
        pm.distinct_ops (List.rev !new_ops)
    in
    {
      metrics =
        {
          tensor_leaves;
          n_tensors = a.m_n_tensors;
          n_unique = a.m_n_unique;
          firsts_rev = a.m_firsts;
          sorted_firsts = a.m_sorted;
          n_index_i = a.m_n_index_i;
          has_const_leaf = a.m_has_const;
          distinct_ops;
          complete = !n_open = 0;
        };
      n_open = !n_open;
      (* expansion rewrites the leftmost open leaf — the head of
         [parent.opens] — so the child's ordered open list is the rule's
         nonterminals followed by the parent's remaining opens *)
      opens =
        (match parent.opens with
        | [] -> assert false
        | _ :: rest -> List.rev !new_nts @ rest);
      open_paths =
        (match parent.open_paths with
        | [] -> assert false
        | _ :: rest ->
            let rec add n acc = if n = 0 then acc else add (n - 1) (p' :: acc) in
            add (List.length !new_nts) rest);
      (* only depth-1 items can raise the max: a weight-0 candidate sits at
         p' ≤ parent.depth (the expanded open's own candidate bounded it) *)
      depth = (if fps.d_gain.(r.id) && p' + 1 > parent.depth then p' + 1 else parent.depth);
      fp = (parent.fp * fps.mult.(r.id)) + fps.addend.(r.id);
    }
  end

(* ---- rebuilding the template AST from a complete tree ---- *)

let rec to_expr g (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (Ast.Access (n, idxs))
  | Leaf Cfg.Tok_const -> Some (Ast.Access ("Const", []))
  | Leaf _ | Open _ -> None
  | Node (_, ch) -> (
      match ch with
      | [ sub ] -> to_expr g sub
      | [ Leaf Cfg.Tok_neg; sub ] ->
          let* e = to_expr g sub in
          Some (Ast.Neg e)
      | [ Leaf Cfg.Tok_lparen; sub; Leaf Cfg.Tok_rparen ] -> to_expr g sub
      | [ l; mid; r ] -> (
          let* op = op_of g mid in
          let* le = to_expr g l in
          let* re = to_expr g r in
          Some (Ast.Bin (op, le, re)))
      | [ hd; tail ] ->
          (* right-linear chain: TENSOR TAIL *)
          let* hd_e = to_expr g hd in
          fold_tail g hd_e tail
      | _ -> None)

and op_of g (x : t) : Ast.op option =
  match x with
  | Leaf (Cfg.Tok_op op) -> Some op
  | Node (_, [ sub ]) -> op_of g sub
  | _ -> None

and fold_tail g acc (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, []) -> Some acc (* ε *)
  | Node (_, [ opn; tn ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      Some (Ast.Bin (op, acc, te))
  | Node (_, [ opn; tn; tail ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      fold_tail g (Ast.Bin (op, acc, te)) tail
  | _ -> None

let to_program g (x : t) : Ast.program option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, [ lhs; Leaf Cfg.Tok_assign; rhs ]) ->
      let* lhs_e =
        match lhs with
        | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (n, idxs)
        | Node (_, [ Leaf (Cfg.Tok_tensor (n, idxs)) ]) -> Some (n, idxs)
        | _ -> None
      in
      let* rhs_e = to_expr g rhs in
      Some { Ast.lhs = lhs_e; rhs = rhs_e }
  | _ -> None

let remove_tail g (x : t) : t option =
  let rec go x =
    match x with
    | Leaf _ -> Some x
    | Open nt ->
        if Cfg.category g nt = Cfg.Cat_tail then
          List.find_map
            (fun (r : Cfg.rule) -> if r.rhs = [] then Some (Node (r.id, [])) else None)
            (Cfg.rules_for g nt)
        else None
    | Node (id, ch) ->
        let rec map_all acc = function
          | [] -> Some (List.rev acc)
          | c :: rest -> (
              match go c with Some c' -> map_all (c' :: acc) rest | None -> None)
        in
        Option.map (fun ch' -> Node (id, ch')) (map_all [] ch)
  in
  if is_complete x then Some x else go x
