open Stagg_grammar
module Ast = Stagg_taco.Ast

type t = Leaf of Cfg.term | Open of string | Node of int * t list

let initial g = Open (Cfg.start g)

let rec leftmost_open = function
  | Open nt -> Some nt
  | Leaf _ -> None
  | Node (_, ch) -> List.find_map leftmost_open ch

let is_complete x = leftmost_open x = None

let apply_rule (r : Cfg.rule) =
  Node (r.id, List.map (function Cfg.NT n -> Open n | Cfg.T t -> Leaf t) r.rhs)

(* Substitute the leftmost Open leaf with [repl]; returns the new tree and
   whether a substitution happened. *)
let rec subst_leftmost x repl =
  match x with
  | Open _ -> (repl, true)
  | Leaf _ -> (x, false)
  | Node (id, ch) ->
      let rec go acc done_ = function
        | [] -> (List.rev acc, done_)
        | c :: rest ->
            if done_ then go (c :: acc) true rest
            else
              let c', d = subst_leftmost c repl in
              go (c' :: acc) d rest
      in
      let ch', d = go [] false ch in
      (Node (id, ch'), d)

let expansions g x =
  match leftmost_open x with
  | None -> []
  | Some nt ->
      List.map
        (fun (r : Cfg.rule) ->
          let x', ok = subst_leftmost x (apply_rule r) in
          assert ok;
          (r, x'))
        (Cfg.rules_for g nt)

(* Flat left-to-right accumulation over the open leaves: closed leaves
   thread the accumulator through unchanged, so this is float-for-float
   the same computation as folding over the ordered open-leaf list —
   the invariant [g_cost_opens] relies on. *)
let g_cost p x =
  let rec go acc = function
    | Leaf _ -> acc
    | Open nt -> acc +. Pcfg.h_cost p nt
    | Node (_, ch) -> List.fold_left go acc ch
  in
  go 0. x

let g_cost_opens p opens = List.fold_left (fun acc nt -> acc +. Pcfg.h_cost p nt) 0. opens

let rec depth g = function
  | Leaf (Cfg.Tok_tensor _ | Cfg.Tok_const) -> 1
  | Leaf _ -> 0
  | Open nt -> (
      match Cfg.category g nt with
      | Cfg.Cat_expr | Cfg.Cat_tensor -> 1
      | Cfg.Cat_program | Cfg.Cat_op | Cfg.Cat_tail -> 0)
  | Node (rid, ch) ->
      (* allocation-free child fold: max depth and how many children carry
         expression depth (this runs once per queue push) *)
      let m = ref 0 and expr_children = ref 0 in
      List.iter
        (fun c ->
          let d = depth g c in
          if d > !m then m := d;
          if d >= 1 then incr expr_children)
        ch;
      let lhs_cat = Cfg.category g (Cfg.rule g rid).lhs in
      if lhs_cat = Cfg.Cat_expr && !expr_children >= 2 then 1 + !m else !m

type metrics = {
  tensor_leaves : (string * string list) list;
  n_tensors : int;
  n_unique : int;
  has_const_leaf : bool;
  distinct_ops : Ast.op list;
  complete : bool;
}

let metrics _g x =
  (* single left-to-right scan over the frontier *)
  let tensors = ref [] in
  let ops = ref [] in
  let has_const = ref false in
  let complete = ref true in
  let rec scan = function
    | Open _ -> complete := false
    | Leaf (Cfg.Tok_tensor (n, idxs)) -> tensors := (n, idxs) :: !tensors
    | Leaf Cfg.Tok_const ->
        tensors := ("Const", []) :: !tensors;
        has_const := true
    | Leaf (Cfg.Tok_op op) -> if not (List.mem op !ops) then ops := op :: !ops
    | Leaf Cfg.Tok_neg -> if not (List.mem Ast.Sub !ops) then ops := Ast.Sub :: !ops
    | Leaf (Cfg.Tok_assign | Cfg.Tok_lparen | Cfg.Tok_rparen) -> ()
    | Node (_, ch) -> List.iter scan ch
  in
  scan x;
  let tensor_leaves = List.rev !tensors in
  let n_unique =
    List.length
      (List.sort_uniq String.compare (List.map fst tensor_leaves))
  in
  {
    tensor_leaves;
    n_tensors = List.length tensor_leaves;
    n_unique;
    has_const_leaf = !has_const;
    distinct_ops = List.rev !ops;
    complete = !complete;
  }

(* ---- incrementally-maintained metrics ----

   [metrics] is a full tree scan. Both searches used to rescan at every
   push (and the bottom-up one again at every pop); the scans are the
   search's hot loop. Expansion always rewrites the *leftmost* [Open]
   leaf, and in every grammar this project generates no tensor/constant
   terminal appears to the right of a nonterminal within one rule's rhs —
   so every tensor leaf of a reachable tree lies left of its leftmost
   [Open], and a child's [tensor_leaves] is exactly the parent's with the
   applied rule's tensor terminals appended. [expand_metrics] exploits
   that; [incremental_safe] checks the grammar-level precondition once so
   exotic grammars fall back to the full scan. *)

type annotated = { metrics : metrics; n_open : int; opens : string list }

let collect_opens x =
  let rec go acc = function
    | Open nt -> nt :: acc
    | Leaf _ -> acc
    | Node (_, ch) -> List.fold_left go acc ch
  in
  List.rev (go [] x)

let annotate g x =
  let opens = collect_opens x in
  { metrics = metrics g x; n_open = List.length opens; opens }

let rule_safe (r : Cfg.rule) =
  let rec go seen_nt = function
    | [] -> true
    | Cfg.NT _ :: rest -> go true rest
    | Cfg.T (Cfg.Tok_tensor _ | Cfg.Tok_const) :: rest -> (not seen_nt) && go seen_nt rest
    | Cfg.T _ :: rest -> go seen_nt rest
  in
  go false r.rhs

let incremental_safe g = Array.for_all rule_safe (Cfg.rules g)

let expand1 x (r : Cfg.rule) =
  let x', ok = subst_leftmost x (apply_rule r) in
  assert ok;
  x'

let expand_metrics _g (parent : annotated) (r : Cfg.rule) : annotated =
  begin
    let pm = parent.metrics in
    let new_leaves = ref [] and new_const = ref false and new_ops = ref [] in
    let new_nts = ref [] in
    let n_open = ref (parent.n_open - 1) in
    List.iter
      (function
        | Cfg.NT n ->
            incr n_open;
            new_nts := n :: !new_nts
        | Cfg.T (Cfg.Tok_tensor (n, idxs)) -> new_leaves := (n, idxs) :: !new_leaves
        | Cfg.T Cfg.Tok_const ->
            new_leaves := ("Const", []) :: !new_leaves;
            new_const := true
        | Cfg.T (Cfg.Tok_op op) -> if not (List.mem op !new_ops) then new_ops := op :: !new_ops
        | Cfg.T Cfg.Tok_neg ->
            if not (List.mem Ast.Sub !new_ops) then new_ops := Ast.Sub :: !new_ops
        | Cfg.T (Cfg.Tok_assign | Cfg.Tok_lparen | Cfg.Tok_rparen) -> ())
      r.rhs;
    let tensor_leaves =
      match !new_leaves with [] -> pm.tensor_leaves | l -> pm.tensor_leaves @ List.rev l
    in
    let n_tensors = pm.n_tensors + List.length !new_leaves in
    let n_unique =
      if !new_leaves = [] then pm.n_unique
      else List.length (List.sort_uniq String.compare (List.map fst tensor_leaves))
    in
    (* first-appearance order may differ from a fresh scan when an op
       terminal sits right of a nonterminal (EXPR -> EXPR op EXPR); the
       penalties only use membership and length, which agree *)
    let distinct_ops =
      List.fold_left
        (fun acc op -> if List.mem op acc then acc else acc @ [ op ])
        pm.distinct_ops (List.rev !new_ops)
    in
    {
      metrics =
        {
          tensor_leaves;
          n_tensors;
          n_unique;
          has_const_leaf = pm.has_const_leaf || !new_const;
          distinct_ops;
          complete = !n_open = 0;
        };
      n_open = !n_open;
      (* expansion rewrites the leftmost open leaf — the head of
         [parent.opens] — so the child's ordered open list is the rule's
         nonterminals followed by the parent's remaining opens *)
      opens =
        (match parent.opens with
        | [] -> assert false
        | _ :: rest -> List.rev !new_nts @ rest);
    }
  end

(* ---- rebuilding the template AST from a complete tree ---- *)

let rec to_expr g (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (Ast.Access (n, idxs))
  | Leaf Cfg.Tok_const -> Some (Ast.Access ("Const", []))
  | Leaf _ | Open _ -> None
  | Node (_, ch) -> (
      match ch with
      | [ sub ] -> to_expr g sub
      | [ Leaf Cfg.Tok_neg; sub ] ->
          let* e = to_expr g sub in
          Some (Ast.Neg e)
      | [ Leaf Cfg.Tok_lparen; sub; Leaf Cfg.Tok_rparen ] -> to_expr g sub
      | [ l; mid; r ] -> (
          let* op = op_of g mid in
          let* le = to_expr g l in
          let* re = to_expr g r in
          Some (Ast.Bin (op, le, re)))
      | [ hd; tail ] ->
          (* right-linear chain: TENSOR TAIL *)
          let* hd_e = to_expr g hd in
          fold_tail g hd_e tail
      | _ -> None)

and op_of g (x : t) : Ast.op option =
  match x with
  | Leaf (Cfg.Tok_op op) -> Some op
  | Node (_, [ sub ]) -> op_of g sub
  | _ -> None

and fold_tail g acc (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, []) -> Some acc (* ε *)
  | Node (_, [ opn; tn ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      Some (Ast.Bin (op, acc, te))
  | Node (_, [ opn; tn; tail ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      fold_tail g (Ast.Bin (op, acc, te)) tail
  | _ -> None

let to_program g (x : t) : Ast.program option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, [ lhs; Leaf Cfg.Tok_assign; rhs ]) ->
      let* lhs_e =
        match lhs with
        | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (n, idxs)
        | Node (_, [ Leaf (Cfg.Tok_tensor (n, idxs)) ]) -> Some (n, idxs)
        | _ -> None
      in
      let* rhs_e = to_expr g rhs in
      Some { Ast.lhs = lhs_e; rhs = rhs_e }
  | _ -> None

let remove_tail g (x : t) : t option =
  let rec go x =
    match x with
    | Leaf _ -> Some x
    | Open nt ->
        if Cfg.category g nt = Cfg.Cat_tail then
          List.find_map
            (fun (r : Cfg.rule) -> if r.rhs = [] then Some (Node (r.id, [])) else None)
            (Cfg.rules_for g nt)
        else None
    | Node (id, ch) ->
        let rec map_all acc = function
          | [] -> Some (List.rev acc)
          | c :: rest -> (
              match go c with Some c' -> map_all (c' :: acc) rest | None -> None)
        in
        Option.map (fun ch' -> Node (id, ch')) (map_all [] ch)
  in
  if is_complete x then Some x else go x
