open Stagg_util
open Stagg_grammar
module Pretty = Stagg_taco.Pretty

type budget = { max_attempts : int; max_expansions : int; timeout_s : float }

let default_budget = { max_attempts = 2_000; max_expansions = 200_000; timeout_s = 10. }

type stats = { attempts : int; expansions : int; elapsed_s : float }

type 'sol outcome = Solved of 'sol * stats | Exhausted of stats | Budget_exceeded of stats

let stats_of = function Solved (_, s) | Exhausted s | Budget_exceeded s -> s

type 'sol engine = {
  pcfg : Pcfg.t;
  penalty_ctx : Penalty.ctx;
  budget : budget;
  validate : Stagg_taco.Ast.program -> 'sol option;
  queue : (float * Node.t) Pqueue.t;  (** priority f(x); payload carries c(x) *)
  seen : (string, unit) Hashtbl.t;  (** validated templates, printed form *)
  started : float;
  mutable attempts : int;
  mutable expansions : int;
  mutable timed_out : bool;  (** latched by the periodic clock check *)
}

let make_engine ~pcfg ~penalty_ctx ~budget ~validate =
  let queue = Pqueue.create () in
  Pqueue.push queue 0. (0., Node.initial (Pcfg.cfg pcfg));
  {
    pcfg;
    penalty_ctx;
    budget;
    validate;
    queue;
    seen = Hashtbl.create 64;
    started = Unix.gettimeofday ();
    attempts = 0;
    expansions = 0;
    timed_out = false;
  }

let elapsed e = Unix.gettimeofday () -. e.started

let stats e = { attempts = e.attempts; expansions = e.expansions; elapsed_s = elapsed e }

(* The frontier is also capped: a queue of this size means the heuristic
   has stopped discriminating and memory would grow without bound. *)
let max_frontier = 1_500_000

(* The attempt/expansion/frontier checks are exact (they bound the
   deterministic outcome); the wall clock is only a backstop, so the
   [gettimeofday] syscall is polled every 64 pops and latched, keeping it
   out of the hot loop. *)
let over_budget e =
  e.attempts >= e.budget.max_attempts
  || e.expansions >= e.budget.max_expansions
  || Pqueue.length e.queue > max_frontier
  ||
  (if (not e.timed_out) && e.expansions land 63 = 0 then
     e.timed_out <- elapsed e > e.budget.timeout_s;
   e.timed_out)

(* Validate a complete tree (already RemoveTail'd for the bottom-up case).
   Returns [Some sol] on success. Duplicate templates — the EXPR OP EXPR
   rule makes the grammar ambiguous, and associative duplicates print
   identically — are validated once. *)
let try_validate e (g : Cfg.t) (x : Node.t) : 'sol option =
  match Node.to_program g x with
  | None -> None
  | Some p ->
      let key = Pretty.program_to_string p in
      if Hashtbl.mem e.seen key then None
      else begin
        Hashtbl.add e.seen key ();
        e.attempts <- e.attempts + 1;
        e.validate p
      end

(* Push every legal one-step expansion of [x]. *)
let push_expansions e (g : Cfg.t) c_x (x : Node.t) =
  List.iter
    (fun ((r : Cfg.rule), x') ->
      let rc = Pcfg.cost e.pcfg r in
      if rc < infinity then begin
        let c' = c_x +. rc in
        let m = Node.metrics g x' in
        let program = if m.complete then Node.to_program g x' else None in
        let pen = Penalty.score e.penalty_ctx m ~program in
        if pen < infinity then begin
          let f = c' +. Node.g_cost e.pcfg x' +. pen in
          Pqueue.push e.queue f (c', x')
        end
      end)
    (Node.expansions g x)

let search_topdown ~pcfg ~penalty_ctx ?(max_depth = 6) ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate in
  let g = Pcfg.cfg pcfg in
  let rec loop () =
    if over_budget e then Budget_exceeded (stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, (c, x)) ->
          e.expansions <- e.expansions + 1;
          if Node.depth g x > max_depth then loop ()
          else if Node.is_complete x then begin
            match try_validate e g x with
            | Some sol -> Solved (sol, stats e)
            | None -> loop ()
          end
          else begin
            push_expansions e g c x;
            loop ()
          end
  in
  loop ()

let search_bottomup ~pcfg ~penalty_ctx ~dim_list ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate in
  let g = Pcfg.cfg pcfg in
  let n_predicted = List.length dim_list in
  let rec loop () =
    if over_budget e then Budget_exceeded (stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, (c, x)) ->
          e.expansions <- e.expansions + 1;
          let m = Node.metrics g x in
          let solved =
            if m.n_tensors = n_predicted then
              match Node.remove_tail g x with
              | Some complete -> try_validate e g complete
              | None -> None
            else None
          in
          (match solved with
          | Some sol -> Solved (sol, stats e)
          | None ->
              push_expansions e g c x;
              loop ())
  in
  loop ()
