open Stagg_util
open Stagg_grammar
module Pretty = Stagg_taco.Pretty

type budget = { max_attempts : int; max_expansions : int; timeout_s : float }

let default_budget = { max_attempts = 2_000; max_expansions = 200_000; timeout_s = 10. }

type stats = {
  attempts : int;
  expansions : int;
  pruned : int;
  suppressed : int;
  elapsed_s : float;
}

type stop_reason = Attempts | Expansions | Frontier | Timeout

let stop_reason_to_string = function
  | Attempts -> "attempts"
  | Expansions -> "expansions"
  | Frontier -> "frontier"
  | Timeout -> "timeout"

type 'sol outcome =
  | Solved of 'sol * stats
  | Exhausted of stats
  | Budget_exceeded of stop_reason * stats

let stats_of = function Solved (_, s) | Exhausted s | Budget_exceeded (_, s) -> s

type dedup = Fingerprint | Pretty_key

type prune_mode = Prune_replay | Prune_admission

let prune_mode_to_string = function
  | Prune_replay -> "replay"
  | Prune_admission -> "admission"

(* ---- the admission ledger ----

   Admission control at push time: a doomed complete child is never
   enqueued — no entry record, no annotation kept alive, no frontier
   traffic — but the pop the baseline would have spent on it must still
   tick the budget and the 64-pop clock poll AT ITS BASELINE POSITION,
   or the attempt/expansion caps would land on different templates (the
   suppressed child is pushed long before the baseline pops it, so
   counting it at push time front-loads the budget and stops the search
   on earlier pops than the baseline's — observably different attempts
   the moment a cap binds). The ledger keeps exactly the (f, seq) key of
   every suppressed child in a scalar min-heap over unboxed float/int
   arrays; the search drains it in lockstep with the frontier, charging
   [suppressed] (and replaying the doomed pop's observable dedup/attempt
   effects) precisely when (f, seq) says the baseline pop would have
   happened. Frontier and ledger share one sequence counter, so the
   interleaving — FIFO ties included — is the baseline's. *)
module Ledger = struct
  type t = {
    mutable prio : float array;
    mutable seq : int array;
    mutable fp : int array;
    mutable depth : int array;
    mutable nt : int array;
    mutable size : int;
  }

  let create () = { prio = [||]; seq = [||]; fp = [||]; depth = [||]; nt = [||]; size = 0 }
  let is_empty l = l.size = 0
  let length l = l.size
  let top_prio l = l.prio.(0)
  let top_seq l = l.seq.(0)

  let less l i j = l.prio.(i) < l.prio.(j) || (l.prio.(i) = l.prio.(j) && l.seq.(i) < l.seq.(j))

  let swap l i j =
    let fswap (a : float array) =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    let iswap (a : int array) =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    fswap l.prio;
    iswap l.seq;
    iswap l.fp;
    iswap l.depth;
    iswap l.nt

  let grow l =
    let cap = Array.length l.prio in
    if l.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let nf = Array.make ncap 0. in
      Array.blit l.prio 0 nf 0 l.size;
      l.prio <- nf;
      let ni a =
        let n = Array.make ncap 0 in
        Array.blit a 0 n 0 l.size;
        n
      in
      l.seq <- ni l.seq;
      l.fp <- ni l.fp;
      l.depth <- ni l.depth;
      l.nt <- ni l.nt
    end

  let push l ~prio ~seq ~fp ~depth ~nt =
    grow l;
    let i = ref l.size in
    l.prio.(!i) <- prio;
    l.seq.(!i) <- seq;
    l.fp.(!i) <- fp;
    l.depth.(!i) <- depth;
    l.nt.(!i) <- nt;
    l.size <- l.size + 1;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less l !i parent then begin
        swap l !i parent;
        i := parent
      end
      else continue_ := false
    done

  (* remove the minimum; returns (fp, depth, n_tensors) *)
  let pop l =
    let fp = l.fp.(0) and depth = l.depth.(0) and nt = l.nt.(0) in
    l.size <- l.size - 1;
    if l.size > 0 then begin
      l.prio.(0) <- l.prio.(l.size);
      l.seq.(0) <- l.seq.(l.size);
      l.fp.(0) <- l.fp.(l.size);
      l.depth.(0) <- l.depth.(l.size);
      l.nt.(0) <- l.nt.(l.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let lc = (2 * !i) + 1 and rc = (2 * !i) + 2 in
        let smallest = ref !i in
        if lc < l.size && less l lc !smallest then smallest := lc;
        if rc < l.size && less l rc !smallest then smallest := rc;
        if !smallest <> !i then begin
          swap l !smallest !i;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    (fp, depth, nt)
end

(* A frontier element carries everything the pop side needs — path cost,
   metrics, and (for complete trees) the rebuilt program. Incomplete
   trees are NOT materialized at push time: the annotation is extended
   from the parent's without the child tree, so the frontier stores
   (parent tree, rule) and only the pop side — reached for a small
   fraction of pushed entries — builds the tree. Siblings share the
   parent pointer, so a frontier of a million entries holds thousands of
   trees, not a million. *)
type tree_src =
  | Built of Node.t  (** the initial node, and complete trees (the program rebuild needs them) *)
  | Expand of Node.t * Cfg.rule  (** parent tree + rule to apply at its leftmost open leaf *)

type entry = {
  c : float;  (** path cost c(x) *)
  tree : tree_src;
  ann : Node.annotated;
  program : Stagg_taco.Ast.program option;  (** Some iff complete *)
  pst : Prune.state;  (** analysis-prune state of the applied-rule multiset *)
}

(* [Ghost] replays the pop of a complete duplicate of an
   already-validated template without carrying (or ever building) the
   tree: its pop only counts an expansion, exactly what the popped
   duplicate would have done.

   [Pruned] replays the pop of a complete template the analysis proved
   doomed — [Subst.enumerate] returns zero substitutions for it — also
   without carrying the tree. Its pop re-enacts the baseline pop
   byte-for-byte (the first-seen one marks the fingerprint and counts the
   attempt; validation itself was a structural no-op) but is tallied
   separately, so reported expansions count only real work. [Pruned]
   items exist only in [Prune_replay] mode; [Prune_admission] keeps the
   same doomed completes out of the queue entirely (see {!Ledger}). *)
type item =
  | Entry of entry
  | Ghost
  | Pruned of { p_fp : int; p_depth : int; p_n_tensors : int }

let materialize = function Built x -> x | Expand (p, r) -> Node.expand1 p r

type 'sol engine = {
  pcfg : Pcfg.t;
  penalty : Penalty.compiled;
  budget : budget;
  validate : Stagg_taco.Ast.program -> 'sol option;
  queue : item Pqueue.t;  (** priority f(x) *)
  sup : Ledger.t;  (** admission-suppressed (f, seq, fp, guards) keys *)
  mode : prune_mode;  (** how doomed complete children are absorbed *)
  dedup : dedup;
  seen_fp : (int, unit) Hashtbl.t;  (** validated templates, fingerprints *)
  seen_str : (string, unit) Hashtbl.t;  (** validated templates, printed form (legacy mode) *)
  pen_memo : (int, float) Hashtbl.t;
      (** fingerprint → penalty a complete template was pushed with; lets a
          duplicate's ghost reconstruct the same f without rescoring *)
  fps : Node.fingerprints;
  rule_cost : float array;  (** [Pcfg.cost] per rule, precomputed *)
  h_memo : (string, float) Hashtbl.t;  (** [Pcfg.h_cost] per nonterminal, precomputed *)
  inc_safe : bool;  (** grammar admits incremental metrics *)
  prune : Prune.t option;  (** analysis-guided pruning (Fingerprint mode only) *)
  started : float;
  mutable eseq : int;  (** push sequence shared by [queue] and [sup] *)
  mutable attempts : int;
  mutable expansions : int;
  mutable pruned : int;  (** pops of [Pruned] items (replay mode) *)
  mutable suppressed : int;  (** ledger drains (admission mode) *)
  mutable timed_out : bool;  (** latched by the periodic clock check *)
  mutable stop : stop_reason;  (** which limit fired, for [Budget_exceeded] *)
}

(* every push — frontier or ledger — consumes one sequence number, so
   the numbering is exactly the baseline's push order *)
let take_seq e =
  let s = e.eseq in
  e.eseq <- s + 1;
  s

let qpush e f item = Pqueue.push_seq e.queue f (take_seq e) item

let make_engine ~pcfg ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode =
  let g = Pcfg.cfg pcfg in
  let queue = Pqueue.create ~dummy:Ghost in
  let x0 = Node.initial g in
  let fps = Node.fingerprints g in
  let rule_cost = Array.init (Cfg.size g) (fun id -> Pcfg.cost pcfg (Cfg.rule g id)) in
  let h_memo = Hashtbl.create 16 in
  List.iter (fun nt -> Hashtbl.replace h_memo nt (Pcfg.h_cost pcfg nt)) (Cfg.nonterminals g);
  let e =
    {
      pcfg;
      penalty = Penalty.compile penalty_ctx;
      budget;
      validate;
      queue;
      sup = Ledger.create ();
      mode;
      dedup;
      seen_fp = Hashtbl.create 64;
      seen_str = Hashtbl.create 64;
      pen_memo = Hashtbl.create 64;
      fps;
      rule_cost;
      h_memo;
      inc_safe = Node.incremental_safe g;
      (* the duplicate/doomed replay protocol marks [seen_fp], so pruning
         only composes with fingerprint dedup *)
      prune = (if dedup = Fingerprint then prune else None);
      started = Unix.gettimeofday ();
      eseq = 0;
      attempts = 0;
      expansions = 0;
      pruned = 0;
      suppressed = 0;
      timed_out = false;
      stop = Expansions;
    }
  in
  qpush e 0.
    (Entry
       { c = 0.; tree = Built x0; ann = Node.annotate g fps x0; program = None; pst = Prune.root });
  e

let elapsed e = Unix.gettimeofday () -. e.started

let stats e =
  {
    attempts = e.attempts;
    expansions = e.expansions;
    pruned = e.pruned;
    suppressed = e.suppressed;
    elapsed_s = elapsed e;
  }

(* Same per-nonterminal values and the same left-to-right summation as
   [Node.g_cost_opens], with the log₂ precomputed per nonterminal. *)
let g_opens e opens =
  List.fold_left (fun acc nt -> acc +. Hashtbl.find e.h_memo nt) 0. opens

(* The frontier is also capped: a queue of this size means the heuristic
   has stopped discriminating and memory would grow without bound. *)
let max_frontier = 1_500_000

(* The attempt/expansion/frontier checks are exact (they bound the
   deterministic outcome); the wall clock is only a backstop, so the
   [gettimeofday] syscall is polled every 64 pops and latched, keeping it
   out of the hot loop. *)
(* Budget accounting runs on TOTAL baseline pops — real expansions plus
   pruned replays plus admission-suppressed ledger drains — so enabling
   the analysis prune in either mode moves no stop point: the tick
   sequence, and hence where a cap or the 64-pop clock poll lands, is
   position-for-position the baseline's. Only the REPORTED expansion
   count shrinks. The frontier cap likewise counts ledger residents: the
   baseline holds every suppressed child in its queue, so the cap must
   see the same population. *)
let over_budget e =
  let pops = e.expansions + e.pruned + e.suppressed in
  if e.attempts >= e.budget.max_attempts then begin
    e.stop <- Attempts;
    true
  end
  else if pops >= e.budget.max_expansions then begin
    e.stop <- Expansions;
    true
  end
  else if Pqueue.length e.queue + Ledger.length e.sup > max_frontier then begin
    e.stop <- Frontier;
    true
  end
  else begin
    if (not e.timed_out) && pops land 63 = 0 then
      e.timed_out <- elapsed e > e.budget.timeout_s;
    if e.timed_out then e.stop <- Timeout;
    e.timed_out
  end

(* Would the baseline's next pop be a suppressed (never-enqueued) child?
   Exact (f, seq) lexicographic comparison against the frontier head. *)
let baseline_pops_suppressed e =
  (not (Ledger.is_empty e.sup))
  && (Pqueue.is_empty e.queue
     ||
     let sp = Ledger.top_prio e.sup and qp = Pqueue.top_prio e.queue in
     sp < qp || (sp = qp && Ledger.top_seq e.sup < Pqueue.top_seq e.queue))

(* Validate an already-rebuilt program. Duplicate templates — the EXPR OP
   EXPR rule makes the grammar ambiguous, and associative duplicates print
   identically — are validated once. The probe keys on the tree's
   fingerprint (O(1), no printing); [Pretty_key] mode keeps the printed
   form as the key for differential testing against the legacy scheme. *)
let try_validate e ~fp (program : Stagg_taco.Ast.program option) : 'sol option =
  match program with
  | None -> None
  | Some p ->
      let dup =
        match e.dedup with
        | Fingerprint ->
            if Hashtbl.mem e.seen_fp fp then true
            else begin
              Hashtbl.add e.seen_fp fp ();
              false
            end
        | Pretty_key ->
            let key = Pretty.program_to_string p in
            if Hashtbl.mem e.seen_str key then true
            else begin
              Hashtbl.add e.seen_str key ();
              false
            end
      in
      if dup then None
      else begin
        e.attempts <- e.attempts + 1;
        e.validate p
      end

(* Push every legal one-step expansion of [parent] (whose tree [px] the
   pop side has just materialized). Metrics are extended incrementally
   from the parent's annotation without building the child tree; only
   complete children are materialized here, to rebuild their program
   once and carry it to the pop. *)
let push_expansions e (g : Cfg.t) (parent : entry) (px : Node.t) =
  match parent.ann.Node.opens with
  | [] -> ()
  | nt :: _ ->
      (* Sibling children whose rule adds no nonterminals all share the
         parent's tail as their opens list — physically, thanks to the
         incremental extension — and tensor/operator nonterminals expand by
         dozens of such rules. A one-slot cache keyed on physical identity
         computes their (identical, float-for-float) g once per expansion
         instead of once per rule. *)
      let g_cache : (string list * float) option ref = ref None in
      let g_of opens =
        match !g_cache with
        | Some (k, v) when k == opens -> v
        | _ ->
            let v = g_opens e opens in
            g_cache := Some (opens, v);
            v
      in
      List.iter
        (fun (r : Cfg.rule) ->
          let rc = e.rule_cost.(r.id) in
          if rc < infinity then begin
            let c' = parent.c +. rc in
            let inc_ann =
              if e.inc_safe then Some (Node.expand_metrics e.fps parent.ann r) else None
            in
            let ghosted =
              (* pre-probe duplicate suppressor: a complete child whose
                 fingerprint has already been validated will be a dead pop,
                 so push a ghost in its place — no tree, no program
                 rebuild, no penalty rescore. [pen_memo] holds the penalty
                 its first twin was pushed with (equal template ⇒ equal
                 metrics and AST ⇒ equal penalty), making the ghost's f
                 bit-identical to the suppressed entry's. *)
              match inc_ann with
              | Some ann
                when e.dedup = Fingerprint
                     && ann.Node.metrics.complete
                     && Hashtbl.mem e.seen_fp ann.Node.fp -> (
                  match Hashtbl.find_opt e.pen_memo ann.Node.fp with
                  | Some pen ->
                      qpush e (c' +. 0. +. pen) Ghost;
                      true
                  | None -> false)
              | _ -> false
            in
            if not ghosted then begin
              let pst' =
                match e.prune with
                | None -> Prune.root
                | Some pr -> Prune.step pr parent.pst r.id
              in
              let pruned_away =
                (* a DOOMED complete child — the analysis proved its
                   validation enumerates zero substitutions — never
                   becomes a real entry. The penalty is rescored the
                   baseline way (rebuilding the program only if a
                   criterion reads it) because f must be bit-identical,
                   and [pen_memo] is still fed so later twins ghost
                   exactly as before. In [Prune_replay] mode a tree-less
                   [Pruned] item takes the entry's place on the frontier;
                   in [Prune_admission] mode nothing is enqueued at all —
                   the (f, seq) key goes to the ledger, which replays the
                   pop's observable effects at its baseline position.
                   Incomplete doomed children stay ordinary entries:
                   their pops never validate anyway, and their children
                   inherit the doomed state through [pst]. *)
                match (e.prune, inc_ann) with
                | Some _, Some ann when ann.Node.metrics.complete && Prune.is_doomed pst' ->
                    let program =
                      if Penalty.needs_program e.penalty then
                        Node.to_program g (Node.expand1 px r)
                      else None
                    in
                    let pen = Penalty.score_compiled e.penalty ann.Node.metrics ~program in
                    if pen < infinity then begin
                      Hashtbl.replace e.pen_memo ann.Node.fp pen;
                      let f = c' +. 0. +. pen in
                      match e.mode with
                      | Prune_replay ->
                          qpush e f
                            (Pruned
                               {
                                 p_fp = ann.Node.fp;
                                 p_depth = ann.Node.depth;
                                 p_n_tensors = ann.Node.metrics.n_tensors;
                               })
                      | Prune_admission ->
                          Ledger.push e.sup ~prio:f ~seq:(take_seq e) ~fp:ann.Node.fp
                            ~depth:ann.Node.depth ~nt:ann.Node.metrics.n_tensors
                    end;
                    true
                | _ -> false
              in
              if not pruned_away then begin
                let tree, ann, program =
                  match inc_ann with
                  | Some ann ->
                      if ann.Node.metrics.complete then
                        let x' = Node.expand1 px r in
                        (Built x', ann, Node.to_program g x')
                      else (Expand (px, r), ann, None)
                  | None ->
                      let x' = Node.expand1 px r in
                      let ann = Node.annotate g e.fps x' in
                      let program =
                        if ann.Node.metrics.complete then Node.to_program g x' else None
                      in
                      (Built x', ann, program)
                in
                let pen = Penalty.score_compiled e.penalty ann.Node.metrics ~program in
                if pen < infinity then begin
                  if e.dedup = Fingerprint && ann.Node.metrics.complete then
                    Hashtbl.replace e.pen_memo ann.Node.fp pen;
                  let f = c' +. g_of ann.Node.opens +. pen in
                  qpush e f (Entry { c = c'; tree; ann; program; pst = pst' })
                end
              end
            end
          end)
        (Cfg.rules_for g nt)

(* A [Pruned] pop — or an admission-ledger drain — replays what the
   baseline pop of the suppressed entry would have observably done:
   count the attempt and mark the template seen the first time it
   survives the same guards (the TD depth prune / the BU tensor-count
   gate) — validating it was a structural no-op. *)
let replay_pruned e ~fp =
  if not (Hashtbl.mem e.seen_fp fp) then begin
    Hashtbl.add e.seen_fp fp ();
    e.attempts <- e.attempts + 1
  end

let search_topdown ~pcfg ~penalty_ctx ?(max_depth = 6) ?(dedup = Fingerprint) ?prune
    ?(prune_mode = Prune_admission) ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode:prune_mode in
  let g = Pcfg.cfg pcfg in
  (* with static depth tables the prune reads the annotation, so depth-dead
     pops never materialize (or walk) their tree at all *)
  let inc_depth = Node.depth_static e.fps in
  (* the Pruned replay needs the annotation's depth to equal the walked
     depth, so analysis pruning rides on the same static tables *)
  let e = if inc_depth then e else { e with prune = None } in
  let too_deep (en : entry) =
    if inc_depth then en.ann.Node.depth > max_depth
    else Node.depth g (materialize en.tree) > max_depth
  in
  let rec loop () =
    if baseline_pops_suppressed e then
      if over_budget e then Budget_exceeded (e.stop, stats e)
      else begin
        let fp, depth, _nt = Ledger.pop e.sup in
        e.suppressed <- e.suppressed + 1;
        if depth <= max_depth then replay_pruned e ~fp;
        loop ()
      end
    else if over_budget e then Budget_exceeded (e.stop, stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, Ghost) ->
          e.expansions <- e.expansions + 1;
          loop ()
      | Some (_f, Pruned p) ->
          e.pruned <- e.pruned + 1;
          if p.p_depth <= max_depth then replay_pruned e ~fp:p.p_fp;
          loop ()
      | Some (_f, Entry en) ->
          e.expansions <- e.expansions + 1;
          if too_deep en then loop ()
          else if en.ann.Node.metrics.complete then begin
            match try_validate e ~fp:en.ann.Node.fp en.program with
            | Some sol -> Solved (sol, stats e)
            | None -> loop ()
          end
          else begin
            push_expansions e g en (materialize en.tree);
            loop ()
          end
  in
  loop ()

let search_bottomup ~pcfg ~penalty_ctx ~dim_list ?(dedup = Fingerprint) ?prune
    ?(prune_mode = Prune_admission) ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode:prune_mode in
  let g = Pcfg.cfg pcfg in
  let n_predicted = List.length dim_list in
  let rec loop () =
    if baseline_pops_suppressed e then
      if over_budget e then Budget_exceeded (e.stop, stats e)
      else begin
        let fp, _depth, nt = Ledger.pop e.sup in
        e.suppressed <- e.suppressed + 1;
        (* the baseline pop validates (a no-op here) only when the
           complete tree carries exactly the predicted tensor count *)
        if nt = n_predicted then replay_pruned e ~fp;
        loop ()
      end
    else if over_budget e then Budget_exceeded (e.stop, stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, Ghost) ->
          (* ghosts are only pushed for complete children (no open tails),
             whose pop expands nothing — exactly this no-op *)
          e.expansions <- e.expansions + 1;
          loop ()
      | Some (_f, Pruned p) ->
          e.pruned <- e.pruned + 1;
          (* the baseline pop validates (a no-op here) only when the
             complete tree carries exactly the predicted tensor count,
             and expands nothing *)
          if p.p_n_tensors = n_predicted then replay_pruned e ~fp:p.p_fp;
          loop ()
      | Some (_f, Entry en) ->
          e.expansions <- e.expansions + 1;
          let x = materialize en.tree in
          let solved =
            if en.ann.Node.metrics.n_tensors = n_predicted then
              match Node.remove_tail g x with
              (* closing ε tails adds empty rule contributions, so the
                 completed tree's fingerprint equals the popped entry's *)
              | Some complete -> try_validate e ~fp:en.ann.Node.fp (Node.to_program g complete)
              | None -> None
            else None
          in
          (match solved with
          | Some sol -> Solved (sol, stats e)
          | None ->
              push_expansions e g en x;
              loop ())
  in
  loop ()
