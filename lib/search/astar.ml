open Stagg_util
open Stagg_grammar
module Pretty = Stagg_taco.Pretty

type budget = { max_attempts : int; max_expansions : int; timeout_s : float }

let default_budget = { max_attempts = 2_000; max_expansions = 200_000; timeout_s = 10. }

type stats = {
  attempts : int;
  expansions : int;
  pruned : int;
  suppressed : int;
  elapsed_s : float;
}

type stop_reason = Attempts | Expansions | Frontier | Timeout

let stop_reason_to_string = function
  | Attempts -> "attempts"
  | Expansions -> "expansions"
  | Frontier -> "frontier"
  | Timeout -> "timeout"

type 'sol outcome =
  | Solved of 'sol * stats
  | Exhausted of stats
  | Budget_exceeded of stop_reason * stats

let stats_of = function Solved (_, s) | Exhausted s | Budget_exceeded (_, s) -> s

type dedup = Fingerprint | Pretty_key

type prune_mode = Prune_replay | Prune_admission

let prune_mode_to_string = function
  | Prune_replay -> "replay"
  | Prune_admission -> "admission"

type par_stats = {
  par_domains : int;
  par_speculated : int;
  par_committed : int;
  par_steals : int;
}

let no_par_stats = { par_domains = 1; par_speculated = 0; par_committed = 0; par_steals = 0 }

(* ---- the admission ledger ----

   Admission control at push time: a doomed complete child is never
   enqueued — no entry record, no annotation kept alive, no frontier
   traffic — but the pop the baseline would have spent on it must still
   tick the budget and the 64-pop clock poll AT ITS BASELINE POSITION,
   or the attempt/expansion caps would land on different templates (the
   suppressed child is pushed long before the baseline pops it, so
   counting it at push time front-loads the budget and stops the search
   on earlier pops than the baseline's — observably different attempts
   the moment a cap binds). The ledger keeps exactly the (f, seq) key of
   every suppressed child in a scalar min-heap over unboxed float/int
   arrays; the search drains it in lockstep with the frontier, charging
   [suppressed] (and replaying the doomed pop's observable dedup/attempt
   effects) precisely when (f, seq) says the baseline pop would have
   happened. Frontier and ledger share one sequence counter, so the
   interleaving — FIFO ties included — is the baseline's. *)
module Ledger = struct
  type t = {
    mutable prio : float array;
    mutable seq : int array;
    mutable fp : int array;
    mutable depth : int array;
    mutable nt : int array;
    mutable size : int;
  }

  let create () = { prio = [||]; seq = [||]; fp = [||]; depth = [||]; nt = [||]; size = 0 }
  let is_empty l = l.size = 0
  let length l = l.size
  let top_prio l = l.prio.(0)
  let top_seq l = l.seq.(0)

  let less l i j = l.prio.(i) < l.prio.(j) || (l.prio.(i) = l.prio.(j) && l.seq.(i) < l.seq.(j))

  let swap l i j =
    let fswap (a : float array) =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    let iswap (a : int array) =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    fswap l.prio;
    iswap l.seq;
    iswap l.fp;
    iswap l.depth;
    iswap l.nt

  let grow l =
    let cap = Array.length l.prio in
    if l.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let nf = Array.make ncap 0. in
      Array.blit l.prio 0 nf 0 l.size;
      l.prio <- nf;
      let ni a =
        let n = Array.make ncap 0 in
        Array.blit a 0 n 0 l.size;
        n
      in
      l.seq <- ni l.seq;
      l.fp <- ni l.fp;
      l.depth <- ni l.depth;
      l.nt <- ni l.nt
    end

  let push l ~prio ~seq ~fp ~depth ~nt =
    grow l;
    let i = ref l.size in
    l.prio.(!i) <- prio;
    l.seq.(!i) <- seq;
    l.fp.(!i) <- fp;
    l.depth.(!i) <- depth;
    l.nt.(!i) <- nt;
    l.size <- l.size + 1;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less l !i parent then begin
        swap l !i parent;
        i := parent
      end
      else continue_ := false
    done

  (* remove the minimum; returns (fp, depth, n_tensors) *)
  let pop l =
    let fp = l.fp.(0) and depth = l.depth.(0) and nt = l.nt.(0) in
    l.size <- l.size - 1;
    if l.size > 0 then begin
      l.prio.(0) <- l.prio.(l.size);
      l.seq.(0) <- l.seq.(l.size);
      l.fp.(0) <- l.fp.(l.size);
      l.depth.(0) <- l.depth.(l.size);
      l.nt.(0) <- l.nt.(l.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let lc = (2 * !i) + 1 and rc = (2 * !i) + 2 in
        let smallest = ref !i in
        if lc < l.size && less l lc !smallest then smallest := lc;
        if rc < l.size && less l rc !smallest then smallest := rc;
        if !smallest <> !i then begin
          swap l !smallest !i;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    (fp, depth, nt)
end

(* A frontier element carries everything the pop side needs — path cost,
   metrics, and (for complete trees) the rebuilt program. Incomplete
   trees are NOT materialized at push time: the annotation is extended
   from the parent's without the child tree, so the frontier stores
   (parent tree, rule) and only the pop side — reached for a small
   fraction of pushed entries — builds the tree. Siblings share the
   parent pointer, so a frontier of a million entries holds thousands of
   trees, not a million. *)
type tree_src =
  | Built of Node.t  (** the initial node, and complete trees (the program rebuild needs them) *)
  | Expand of Node.t * Cfg.rule  (** parent tree + rule to apply at its leftmost open leaf *)

(* ---- speculative expansion (the parallel engine's worker output) ----

   A worker domain precomputes, for an entry still sitting on the
   frontier, the PURE part of what its pop will do: child annotations,
   penalties, prune states, materialized complete children, rebuilt
   programs, and (when a staged validator is supplied) the expensive
   compute half of validation. Everything observable — seen marks,
   attempt ticks, budget charging, ledger drains, frontier pushes,
   first-solution selection — stays on the coordinator, which commits
   pops in exactly the sequential (f, seq) order and merely SUBSTITUTES
   the precomputed values where a finished speculation exists. All
   speculative values are bit-identical to what the commit-time
   computation would produce (same pure functions, same immutable
   inputs; see DESIGN.md §4.9), so consuming or discarding a speculation
   can never change an outcome — only wall-clock time. *)

(* per-child pure results, dense over the rules with finite cost, in
   [Cfg.rules_for] order — the same order [push_expansions] iterates *)
type child_spec = {
  cs_ann : Node.annotated;
  cs_pen : float;  (** [Penalty.score_compiled] on the child's metrics *)
  cs_g : float;  (** g(opens) of the child (0. for complete children) *)
  cs_pst : Prune.state;
  cs_built : Node.t option;  (** materialized tree, complete children only *)
  cs_program : Stagg_taco.Ast.program option;  (** rebuilt program, complete children only *)
}

type 'sol bu_val =
  | Bu_noop  (** RemoveTail / program rebuild yielded nothing: the pop's validation is a no-op *)
  | Bu_prog of Stagg_taco.Ast.program * (unit -> 'sol option) option
      (** completed program, plus the staged validation thunk when a
          staged validator exists and the template was unseen at
          speculation time *)

type 'sol spec_payload =
  | Sp_skip  (** nothing useful to precompute (e.g. a depth-doomed TD entry) *)
  | Sp_children of Node.t * child_spec array
      (** incomplete entry: materialized parent tree + expansion pack *)
  | Sp_td_val of (unit -> 'sol option)
      (** TD complete entry: staged validation of the entry's program *)
  | Sp_bu of Node.t * child_spec array * 'sol bu_val option
      (** BU entry: expansion pack, plus the validation decision when the
          tensor count matches the prediction *)

type 'sol spec_cell =
  | Spec_fresh  (** nobody has touched this entry *)
  | Spec_claimed  (** a worker is computing; the coordinator never waits on this *)
  | Spec_done of 'sol spec_payload
  | Spec_taken  (** consumed (or preempted) by the coordinator *)

type 'sol entry = {
  c : float;  (** path cost c(x) *)
  tree : tree_src;
  ann : Node.annotated;
  program : Stagg_taco.Ast.program option;  (** Some iff complete *)
  pst : Prune.state;  (** analysis-prune state of the applied-rule multiset *)
  spec : 'sol spec_cell Atomic.t;
      (** speculation slot; a shared inert cell in sequential mode *)
}

(* [Ghost] replays the pop of a complete duplicate of an
   already-validated template without carrying (or ever building) the
   tree: its pop only counts an expansion, exactly what the popped
   duplicate would have done.

   [Pruned] replays the pop of a complete template the analysis proved
   doomed — [Subst.enumerate] returns zero substitutions for it — also
   without carrying the tree. Its pop re-enacts the baseline pop
   byte-for-byte (the first-seen one marks the fingerprint and counts the
   attempt; validation itself was a structural no-op) but is tallied
   separately, so reported expansions count only real work. [Pruned]
   items exist only in [Prune_replay] mode; [Prune_admission] keeps the
   same doomed completes out of the queue entirely (see {!Ledger}). *)
type 'sol item =
  | Entry of 'sol entry
  | Ghost
  | Pruned of { p_fp : int; p_depth : int; p_n_tensors : int }

let materialize = function Built x -> x | Expand (p, r) -> Node.expand1 p r

type 'sol engine = {
  pcfg : Pcfg.t;
  penalty : Penalty.compiled;
  budget : budget;
  validate : Stagg_taco.Ast.program -> 'sol option;
  frontier : 'sol item Frontier.t;  (** priority f(x); [domains] shards *)
  sup : Ledger.t;  (** admission-suppressed (f, seq, fp, guards) keys *)
  mode : prune_mode;  (** how doomed complete children are absorbed *)
  dedup : dedup;
  seen_fp : Fpset.t;
      (** validated templates, fingerprints. Lock-striped: the
          coordinator is the only writer (in commit order); worker
          domains probe it to skip staging duplicate validations. *)
  seen_str : (string, unit) Hashtbl.t;  (** validated templates, printed form (legacy mode) *)
  pen_memo : (int, float) Hashtbl.t;
      (** fingerprint → penalty a complete template was pushed with; lets a
          duplicate's ghost reconstruct the same f without rescoring.
          Coordinator-only. *)
  fps : Node.fingerprints;
  rule_cost : float array;  (** [Pcfg.cost] per rule, precomputed *)
  h_memo : (string, float) Hashtbl.t;  (** [Pcfg.h_cost] per nonterminal, precomputed *)
  inc_safe : bool;  (** grammar admits incremental metrics *)
  prune : Prune.t option;  (** analysis-guided pruning (Fingerprint mode only) *)
  started : float;
  domains : int;  (** total domains incl. the coordinator; 1 = sequential *)
  spec_dummy : 'sol spec_cell Atomic.t;  (** shared inert cell for sequential entries *)
  mutable eseq : int;  (** push sequence shared by [frontier] and [sup] *)
  mutable attempts : int;
  mutable expansions : int;
  mutable pruned : int;  (** pops of [Pruned] items (replay mode) *)
  mutable suppressed : int;  (** ledger drains (admission mode) *)
  mutable spec_committed : int;  (** speculative payloads the commit loop consumed *)
  mutable timed_out : bool;  (** latched by the periodic clock check *)
  mutable stop : stop_reason;  (** which limit fired, for [Budget_exceeded] *)
}

(* every push — frontier or ledger — consumes one sequence number, so
   the numbering is exactly the baseline's push order *)
let take_seq e =
  let s = e.eseq in
  e.eseq <- s + 1;
  s

let qpush e f item = Frontier.push e.frontier f (take_seq e) item

(* entries only pay for a private speculation cell when workers exist *)
let fresh_spec e = if e.domains > 1 then Atomic.make Spec_fresh else e.spec_dummy

let make_engine ~pcfg ~fps ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode ~domains =
  let g = Pcfg.cfg pcfg in
  let x0 = Node.initial g in
  let rule_cost = Array.init (Cfg.size g) (fun id -> Pcfg.cost pcfg (Cfg.rule g id)) in
  let h_memo = Hashtbl.create 16 in
  List.iter (fun nt -> Hashtbl.replace h_memo nt (Pcfg.h_cost pcfg nt)) (Cfg.nonterminals g);
  let e =
    {
      pcfg;
      penalty = Penalty.compile penalty_ctx;
      budget;
      validate;
      frontier = Frontier.create ~dummy:Ghost ~shards:domains;
      sup = Ledger.create ();
      mode;
      dedup;
      seen_fp = Fpset.create ();
      seen_str = Hashtbl.create 64;
      pen_memo = Hashtbl.create 64;
      fps;
      rule_cost;
      h_memo;
      inc_safe = Node.incremental_safe g;
      (* the duplicate/doomed replay protocol marks [seen_fp], so pruning
         only composes with fingerprint dedup *)
      prune = (if dedup = Fingerprint then prune else None);
      started = Unix.gettimeofday ();
      domains;
      spec_dummy = Atomic.make Spec_fresh;
      eseq = 0;
      attempts = 0;
      expansions = 0;
      pruned = 0;
      suppressed = 0;
      spec_committed = 0;
      timed_out = false;
      stop = Expansions;
    }
  in
  qpush e 0.
    (Entry
       {
         c = 0.;
         tree = Built x0;
         ann = Node.annotate g fps x0;
         program = None;
         pst = Prune.root;
         spec = fresh_spec e;
       });
  e

let elapsed e = Unix.gettimeofday () -. e.started

let stats e =
  {
    attempts = e.attempts;
    expansions = e.expansions;
    pruned = e.pruned;
    suppressed = e.suppressed;
    elapsed_s = elapsed e;
  }

(* Same per-nonterminal values and the same left-to-right summation as
   [Node.g_cost_opens], with the log₂ precomputed per nonterminal. *)
let g_opens e opens =
  List.fold_left (fun acc nt -> acc +. Hashtbl.find e.h_memo nt) 0. opens

(* The frontier is also capped: a queue of this size means the heuristic
   has stopped discriminating and memory would grow without bound. *)
let max_frontier = 1_500_000

(* The attempt/expansion/frontier checks are exact (they bound the
   deterministic outcome); the wall clock is only a backstop, so the
   [gettimeofday] syscall is polled every 64 pops and latched, keeping it
   out of the hot loop. *)
(* Budget accounting runs on TOTAL baseline pops — real expansions plus
   pruned replays plus admission-suppressed ledger drains — so enabling
   the analysis prune in either mode moves no stop point: the tick
   sequence, and hence where a cap or the 64-pop clock poll lands, is
   position-for-position the baseline's. Only the REPORTED expansion
   count shrinks. The frontier cap likewise counts ledger residents: the
   baseline holds every suppressed child in its queue, so the cap must
   see the same population. *)
let over_budget e =
  let pops = e.expansions + e.pruned + e.suppressed in
  if e.attempts >= e.budget.max_attempts then begin
    e.stop <- Attempts;
    true
  end
  else if pops >= e.budget.max_expansions then begin
    e.stop <- Expansions;
    true
  end
  else if Frontier.length e.frontier + Ledger.length e.sup > max_frontier then begin
    e.stop <- Frontier;
    true
  end
  else begin
    if (not e.timed_out) && pops land 63 = 0 then
      e.timed_out <- elapsed e > e.budget.timeout_s;
    if e.timed_out then e.stop <- Timeout;
    e.timed_out
  end

(* Would the baseline's next pop be a suppressed (never-enqueued) child?
   Exact (f, seq) lexicographic comparison against the frontier head. *)
let baseline_pops_suppressed e =
  (not (Ledger.is_empty e.sup))
  && (Frontier.is_empty e.frontier
     ||
     let sp = Ledger.top_prio e.sup and qp = Frontier.top_prio e.frontier in
     sp < qp || (sp = qp && Ledger.top_seq e.sup < Frontier.top_seq e.frontier))

(* Validate an already-rebuilt program. Duplicate templates — the EXPR OP
   EXPR rule makes the grammar ambiguous, and associative duplicates print
   identically — are validated once. The probe keys on the tree's
   fingerprint (O(1), no printing); [Pretty_key] mode keeps the printed
   form as the key for differential testing against the legacy scheme.
   [run] supplies the actual validation: the plain validator
   sequentially, or a staged thunk / inline staged call when committing
   under the parallel engine — all with identical observable counting. *)
let try_validate e ~fp ~run (program : Stagg_taco.Ast.program option) : 'sol option =
  match program with
  | None -> None
  | Some p ->
      let dup =
        match e.dedup with
        | Fingerprint -> Fpset.check_add e.seen_fp fp
        | Pretty_key ->
            let key = Pretty.program_to_string p in
            if Hashtbl.mem e.seen_str key then true
            else begin
              Hashtbl.add e.seen_str key ();
              false
            end
      in
      if dup then None
      else begin
        e.attempts <- e.attempts + 1;
        run p
      end

(* Push every legal one-step expansion of [parent] (whose tree [px] the
   pop side has just materialized). Metrics are extended incrementally
   from the parent's annotation without building the child tree; only
   complete children are materialized here, to rebuild their program
   once and carry it to the pop.

   [?spec] substitutes a worker domain's precomputed pure results (see
   {!child_spec}): the iteration, the admission decisions and every
   observable effect are unchanged — spec values are bit-identical to
   what the code below computes inline, so the two paths interleave
   freely within one search. *)
let push_expansions ?spec e (g : Cfg.t) (parent : 'sol entry) (px : Node.t) =
  match parent.ann.Node.opens with
  | [] -> ()
  | nt :: _ ->
      (* Sibling children whose rule adds no nonterminals all share the
         parent's tail as their opens list — physically, thanks to the
         incremental extension — and tensor/operator nonterminals expand by
         dozens of such rules. A one-slot cache keyed on physical identity
         computes their (identical, float-for-float) g once per expansion
         instead of once per rule. *)
      let g_cache : (string list * float) option ref = ref None in
      let g_of opens =
        match !g_cache with
        | Some (k, v) when k == opens -> v
        | _ ->
            let v = g_opens e opens in
            g_cache := Some (opens, v);
            v
      in
      let si = ref 0 in
      List.iter
        (fun (r : Cfg.rule) ->
          let rc = e.rule_cost.(r.id) in
          if rc < infinity then begin
            let cs =
              match spec with
              | Some specs ->
                  let k = !si in
                  incr si;
                  Some specs.(k)
              | None -> None
            in
            let c' = parent.c +. rc in
            let inc_ann =
              match cs with
              | Some cs -> Some cs.cs_ann
              | None ->
                  if e.inc_safe then Some (Node.expand_metrics e.fps parent.ann r) else None
            in
            let ghosted =
              (* pre-probe duplicate suppressor: a complete child whose
                 fingerprint has already been validated will be a dead pop,
                 so push a ghost in its place — no tree, no program
                 rebuild, no penalty rescore. [pen_memo] holds the penalty
                 its first twin was pushed with (equal template ⇒ equal
                 metrics and AST ⇒ equal penalty), making the ghost's f
                 bit-identical to the suppressed entry's. *)
              match inc_ann with
              | Some ann
                when e.dedup = Fingerprint
                     && ann.Node.metrics.complete
                     && Fpset.mem e.seen_fp ann.Node.fp -> (
                  match Hashtbl.find_opt e.pen_memo ann.Node.fp with
                  | Some pen ->
                      qpush e (c' +. 0. +. pen) Ghost;
                      true
                  | None -> false)
              | _ -> false
            in
            if not ghosted then begin
              let pst' =
                match cs with
                | Some cs -> cs.cs_pst
                | None -> (
                    match e.prune with
                    | None -> Prune.root
                    | Some pr -> Prune.step pr parent.pst r.id)
              in
              let pruned_away =
                (* a DOOMED complete child — the analysis proved its
                   validation enumerates zero substitutions — never
                   becomes a real entry. The penalty is rescored the
                   baseline way (rebuilding the program only if a
                   criterion reads it) because f must be bit-identical,
                   and [pen_memo] is still fed so later twins ghost
                   exactly as before. In [Prune_replay] mode a tree-less
                   [Pruned] item takes the entry's place on the frontier;
                   in [Prune_admission] mode nothing is enqueued at all —
                   the (f, seq) key goes to the ledger, which replays the
                   pop's observable effects at its baseline position.
                   Incomplete doomed children stay ordinary entries:
                   their pops never validate anyway, and their children
                   inherit the doomed state through [pst]. *)
                match (e.prune, inc_ann) with
                | Some _, Some ann when ann.Node.metrics.complete && Prune.is_doomed pst' ->
                    let pen =
                      match cs with
                      | Some cs -> cs.cs_pen
                      | None ->
                          let program =
                            if Penalty.needs_program e.penalty then
                              Node.to_program g (Node.expand1 px r)
                            else None
                          in
                          Penalty.score_compiled e.penalty ann.Node.metrics ~program
                    in
                    if pen < infinity then begin
                      Hashtbl.replace e.pen_memo ann.Node.fp pen;
                      let f = c' +. 0. +. pen in
                      match e.mode with
                      | Prune_replay ->
                          qpush e f
                            (Pruned
                               {
                                 p_fp = ann.Node.fp;
                                 p_depth = ann.Node.depth;
                                 p_n_tensors = ann.Node.metrics.n_tensors;
                               })
                      | Prune_admission ->
                          Ledger.push e.sup ~prio:f ~seq:(take_seq e) ~fp:ann.Node.fp
                            ~depth:ann.Node.depth ~nt:ann.Node.metrics.n_tensors
                    end;
                    true
                | _ -> false
              in
              if not pruned_away then begin
                let tree, ann, program =
                  match cs with
                  | Some cs ->
                      let ann = cs.cs_ann in
                      if ann.Node.metrics.complete then
                        ( Built
                            (match cs.cs_built with
                            | Some x' -> x'
                            | None -> Node.expand1 px r),
                          ann,
                          cs.cs_program )
                      else (Expand (px, r), ann, None)
                  | None -> (
                      match inc_ann with
                      | Some ann ->
                          if ann.Node.metrics.complete then
                            let x' = Node.expand1 px r in
                            (Built x', ann, Node.to_program g x')
                          else (Expand (px, r), ann, None)
                      | None ->
                          let x' = Node.expand1 px r in
                          let ann = Node.annotate g e.fps x' in
                          let program =
                            if ann.Node.metrics.complete then Node.to_program g x' else None
                          in
                          (Built x', ann, program))
                in
                let pen =
                  match cs with
                  | Some cs -> cs.cs_pen
                  | None -> Penalty.score_compiled e.penalty ann.Node.metrics ~program
                in
                if pen < infinity then begin
                  if e.dedup = Fingerprint && ann.Node.metrics.complete then
                    Hashtbl.replace e.pen_memo ann.Node.fp pen;
                  let f =
                    c'
                    +. (match cs with Some cs -> cs.cs_g | None -> g_of ann.Node.opens)
                    +. pen
                  in
                  qpush e f
                    (Entry { c = c'; tree; ann; program; pst = pst'; spec = fresh_spec e })
                end
              end
            end
          end)
        (Cfg.rules_for g nt)

(* A [Pruned] pop — or an admission-ledger drain — replays what the
   baseline pop of the suppressed entry would have observably done:
   count the attempt and mark the template seen the first time it
   survives the same guards (the TD depth prune / the BU tensor-count
   gate) — validating it was a structural no-op. *)
let replay_pruned e ~fp =
  if not (Fpset.check_add e.seen_fp fp) then e.attempts <- e.attempts + 1

(* ---- worker domains: speculative expansion off the shard prefixes ---- *)

type search_kind = Td of int  (** max_depth *) | Bu of int  (** predicted tensor count *)

type 'sol sctx = {
  sc_g : Cfg.t;
  sc_kind : search_kind;
  sc_staged : (Stagg_taco.Ast.program -> unit -> 'sol option) option;
}

(* The worker-side mirror of [push_expansions]'s pure computation, in
   the same [rules_for] iteration order over the same finite-cost rules,
   calling the same pure functions on the same immutable inputs — so
   every field is bit-identical to what the commit would compute inline.
   Reads only engine state that is frozen after construction (rule
   costs, h-memo, penalty, prune tables, fingerprint tables). *)
let spec_children e g (parent : 'sol entry) (px : Node.t) : child_spec array =
  match parent.ann.Node.opens with
  | [] -> [||]
  | nt :: _ ->
      let g_cache : (string list * float) option ref = ref None in
      let g_of opens =
        match !g_cache with
        | Some (k, v) when k == opens -> v
        | _ ->
            let v = g_opens e opens in
            g_cache := Some (opens, v);
            v
      in
      let acc = ref [] in
      List.iter
        (fun (r : Cfg.rule) ->
          let rc = e.rule_cost.(r.id) in
          if rc < infinity then begin
            let ann = Node.expand_metrics e.fps parent.ann r in
            let pst' =
              match e.prune with
              | None -> Prune.root
              | Some pr -> Prune.step pr parent.pst r.id
            in
            let built, program =
              if ann.Node.metrics.complete then
                let x' = Node.expand1 px r in
                (Some x', Node.to_program g x')
              else (None, None)
            in
            (* [score_compiled] reads the program only under the A4
               criterion, in which case [program] is exactly what the
               commit path would rebuild — either way the score is
               bit-identical to the inline one (see Penalty). *)
            let pen = Penalty.score_compiled e.penalty ann.Node.metrics ~program in
            let g_ = g_of ann.Node.opens in
            acc :=
              { cs_ann = ann; cs_pen = pen; cs_g = g_; cs_pst = pst'; cs_built = built;
                cs_program = program }
              :: !acc
          end)
        (Cfg.rules_for g nt);
      Array.of_list (List.rev !acc)

let speculate e sctx (en : 'sol entry) : 'sol spec_payload =
  let g = sctx.sc_g in
  match sctx.sc_kind with
  | Td max_depth ->
      if en.ann.Node.depth > max_depth then Sp_skip
      else if en.ann.Node.metrics.complete then (
        match (sctx.sc_staged, en.program) with
        | Some sv, Some p -> Sp_td_val (sv p)
        | _ -> Sp_skip)
      else
        let px = materialize en.tree in
        Sp_children (px, spec_children e g en px)
  | Bu n_predicted ->
      let px = materialize en.tree in
      let v =
        if en.ann.Node.metrics.n_tensors = n_predicted then
          Some
            (match Node.remove_tail g px with
            | Some complete -> (
                match Node.to_program g complete with
                | Some p ->
                    let th =
                      (* the seen probe is a stale-tolerant heuristic: a
                         missed duplicate only wastes compute — the
                         authoritative dup check happens at commit *)
                      match sctx.sc_staged with
                      | Some sv when not (Fpset.mem e.seen_fp en.ann.Node.fp) -> Some (sv p)
                      | _ -> None
                    in
                    Bu_prog (p, th)
                | None -> Bu_noop)
            | None -> Bu_noop)
        else None
      in
      Sp_bu (px, spec_children e g en px, v)

(* how deep into a shard's heap array a worker looks for unclaimed
   entries: the prefix holds the shallowest (≈ cheapest) nodes, i.e. the
   ones the coordinator will pop soonest *)
let spec_window = 128

(* is this frontier item worth claiming? (pure pre-filter; the CAS is
   the actual claim) *)
let worth_claiming e sctx = function
  | Ghost | Pruned _ -> false
  | Entry en -> (
      match Atomic.get en.spec with
      | Spec_claimed | Spec_done _ | Spec_taken -> false
      | Spec_fresh -> (
          match sctx.sc_kind with
          | Td max_depth ->
              if en.ann.Node.depth > max_depth then false
              else if en.ann.Node.metrics.complete then
                sctx.sc_staged <> None && not (Fpset.mem e.seen_fp en.ann.Node.fp)
              else true
          | Bu n_predicted ->
              en.ann.Node.opens <> [] || en.ann.Node.metrics.n_tensors = n_predicted))

let worker_loop e sctx ~stop ~speculated ~steals wid =
  let k = e.domains in
  let own = (wid + 1) mod k in
  (* racy scan of a shard's heap-array prefix; every slot read is a
     well-formed item (possibly stale — then the CAS pre-filter or the
     commit-side discard absorbs it) *)
  let try_shard si =
    let arr, size = Pqueue.snapshot (Frontier.shard e.frontier si) in
    let n = min (min size (Array.length arr)) spec_window in
    let rec go i =
      if i >= n then None
      else
        match arr.(i) with
        | Entry en when worth_claiming e sctx (Entry en) ->
            if Atomic.compare_and_set en.spec Spec_fresh Spec_claimed then Some en
            else go (i + 1)
        | _ -> go (i + 1)
    in
    go 0
  in
  let misses = ref 0 in
  while not (Atomic.get stop) do
    let claimed =
      match try_shard own with
      | Some en -> Some (en, false)
      | None ->
          (* work-stealing overflow lane: scan the other shards
             (including the coordinator's shard 0) round-robin *)
          let rec steal d =
            if d >= k then None
            else
              match try_shard ((own + d) mod k) with
              | Some en -> Some (en, true)
              | None -> steal (d + 1)
          in
          steal 1
    in
    match claimed with
    | Some (en, stolen) -> (
        misses := 0;
        if stolen then Atomic.incr steals;
        match speculate e sctx en with
        | payload ->
            Atomic.set en.spec (Spec_done payload);
            Atomic.incr speculated
        | exception _ ->
            (* leave the cell Claimed: the commit loop recomputes inline
               and surfaces the error at the baseline position *)
            ())
    | None ->
        (* empty prefixes: back off so an oversubscribed machine spends
           its cycles on the coordinator, not on spinning scans *)
        incr misses;
        if !misses < 4 then Domain.cpu_relax ()
        else Unix.sleepf (Float.min 0.001 (0.00005 *. float_of_int !misses))
  done

(* Consume (and retire) an entry's speculation slot at its commit point.
   Never waits: a cell still [Spec_claimed] mid-compute is preempted —
   the coordinator recomputes inline and the worker's late result is
   dropped — so a stalled or descheduled worker can delay nothing. *)
let take_spec e (en : 'sol entry) : 'sol spec_payload option =
  if e.domains <= 1 then None
  else if Atomic.compare_and_set en.spec Spec_fresh Spec_taken then None
  else
    match Atomic.exchange en.spec Spec_taken with
    | Spec_done p ->
        e.spec_committed <- e.spec_committed + 1;
        Some p
    | Spec_fresh | Spec_claimed | Spec_taken -> None

(* Spawn the K-1 workers around [body] (the commit loop), and join them
   on every exit path — no domain outlives the search. [claimed] helper
   slots go back to the Pool budget at the same point. *)
let with_workers e sctx ~claimed ~on_par_stats body =
  let stop = Atomic.make false in
  let speculated = Atomic.make 0 and steals = Atomic.make 0 in
  let workers =
    if e.domains <= 1 then [||]
    else
      Array.init (e.domains - 1) (fun w ->
          Domain.spawn (fun () ->
              try worker_loop e sctx ~stop ~speculated ~steals w with _ -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Array.iter Domain.join workers;
      Pool.release claimed;
      match on_par_stats with
      | None -> ()
      | Some f ->
          f
            {
              par_domains = e.domains;
              par_speculated = Atomic.get speculated;
              par_committed = e.spec_committed;
              par_steals = Atomic.get steals;
            })
    body

(* Requested domain count → (effective K, helper slots debited from the
   Pool budget). [requested <= 0] is auto mode: take whatever the budget
   grants (serve-style — all remaining cores to this one search);
   explicit K is honored as asked but still debits the budget so nested
   defaults clamp. Ineligible searches (no incremental metrics / no
   static depth tables) always run sequentially: speculation reproduces
   exactly the incremental push path. *)
let resolve_domains ~eligible requested =
  if (not eligible) || requested = 1 then (1, 0)
  else if requested <= 0 then
    let got = Pool.claim ~max:max_int in
    (1 + got, got)
  else begin
    Pool.claim_exact (requested - 1);
    (requested, requested - 1)
  end

let no_probe (_ : float) (_ : int) = ()

let search_topdown ~pcfg ~penalty_ctx ?(max_depth = 6) ?(dedup = Fingerprint) ?prune
    ?(prune_mode = Prune_admission) ?(domains = 1) ?staged_validate ?on_par_stats
    ?(commit_probe = no_probe) ~budget ~validate () =
  let g = Pcfg.cfg pcfg in
  let fps = Node.fingerprints g in
  (* with static depth tables the prune reads the annotation, so depth-dead
     pops never materialize (or walk) their tree at all *)
  let inc_depth = Node.depth_static fps in
  let inc_safe = Node.incremental_safe g in
  (* speculation replays the incremental push path and the annotation
     depth guard, so parallel mode needs both *)
  let k, claimed = resolve_domains ~eligible:(inc_safe && inc_depth) domains in
  let e =
    make_engine ~pcfg ~fps ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode:prune_mode
      ~domains:k
  in
  (* the Pruned replay needs the annotation's depth to equal the walked
     depth, so analysis pruning rides on the same static tables *)
  let e = if inc_depth then e else { e with prune = None } in
  let too_deep (en : 'sol entry) =
    if inc_depth then en.ann.Node.depth > max_depth
    else Node.depth g (materialize en.tree) > max_depth
  in
  let sctx = { sc_g = g; sc_kind = Td max_depth; sc_staged = staged_validate } in
  (* inline validation at a commit point without a finished speculation:
     the staged validator applied on the spot (compute + immediate
     commit) when workers exist, the plain validator otherwise — the
     observable counting is identical by construction *)
  let inline_run =
    match staged_validate with Some sv when k > 1 -> fun p -> (sv p) () | _ -> e.validate
  in
  let rec loop () =
    if baseline_pops_suppressed e then
      if over_budget e then Budget_exceeded (e.stop, stats e)
      else begin
        commit_probe (Ledger.top_prio e.sup) (Ledger.top_seq e.sup);
        let fp, depth, _nt = Ledger.pop e.sup in
        e.suppressed <- e.suppressed + 1;
        if depth <= max_depth then replay_pruned e ~fp;
        loop ()
      end
    else if over_budget e then Budget_exceeded (e.stop, stats e)
    else
      match Frontier.pop e.frontier with
      | None -> Exhausted (stats e)
      | Some (f, seq, it) -> (
          commit_probe f seq;
          match it with
          | Ghost ->
              e.expansions <- e.expansions + 1;
              loop ()
          | Pruned p ->
              e.pruned <- e.pruned + 1;
              if p.p_depth <= max_depth then replay_pruned e ~fp:p.p_fp;
              loop ()
          | Entry en ->
              e.expansions <- e.expansions + 1;
              if too_deep en then loop ()
              else if en.ann.Node.metrics.complete then begin
                let run =
                  match take_spec e en with
                  | Some (Sp_td_val th) -> fun (_ : Stagg_taco.Ast.program) -> th ()
                  | _ -> inline_run
                in
                match try_validate e ~fp:en.ann.Node.fp ~run en.program with
                | Some sol -> Solved (sol, stats e)
                | None -> loop ()
              end
              else begin
                (match take_spec e en with
                | Some (Sp_children (px, specs)) -> push_expansions ~spec:specs e g en px
                | _ -> push_expansions e g en (materialize en.tree));
                loop ()
              end)
  in
  with_workers e sctx ~claimed ~on_par_stats loop

let search_bottomup ~pcfg ~penalty_ctx ~dim_list ?(dedup = Fingerprint) ?prune
    ?(prune_mode = Prune_admission) ?(domains = 1) ?staged_validate ?on_par_stats
    ?(commit_probe = no_probe) ~budget ~validate () =
  let g = Pcfg.cfg pcfg in
  let fps = Node.fingerprints g in
  let inc_safe = Node.incremental_safe g in
  let k, claimed = resolve_domains ~eligible:inc_safe domains in
  let e =
    make_engine ~pcfg ~fps ~penalty_ctx ~budget ~validate ~dedup ~prune ~mode:prune_mode
      ~domains:k
  in
  let n_predicted = List.length dim_list in
  let sctx = { sc_g = g; sc_kind = Bu n_predicted; sc_staged = staged_validate } in
  let inline_run =
    match staged_validate with Some sv when k > 1 -> fun p -> (sv p) () | _ -> e.validate
  in
  let rec loop () =
    if baseline_pops_suppressed e then
      if over_budget e then Budget_exceeded (e.stop, stats e)
      else begin
        commit_probe (Ledger.top_prio e.sup) (Ledger.top_seq e.sup);
        let fp, _depth, nt = Ledger.pop e.sup in
        e.suppressed <- e.suppressed + 1;
        (* the baseline pop validates (a no-op here) only when the
           complete tree carries exactly the predicted tensor count *)
        if nt = n_predicted then replay_pruned e ~fp;
        loop ()
      end
    else if over_budget e then Budget_exceeded (e.stop, stats e)
    else
      match Frontier.pop e.frontier with
      | None -> Exhausted (stats e)
      | Some (f, seq, it) -> (
          commit_probe f seq;
          match it with
          | Ghost ->
              (* ghosts are only pushed for complete children (no open tails),
                 whose pop expands nothing — exactly this no-op *)
              e.expansions <- e.expansions + 1;
              loop ()
          | Pruned p ->
              e.pruned <- e.pruned + 1;
              (* the baseline pop validates (a no-op here) only when the
                 complete tree carries exactly the predicted tensor count,
                 and expands nothing *)
              if p.p_n_tensors = n_predicted then replay_pruned e ~fp:p.p_fp;
              loop ()
          | Entry en -> (
              e.expansions <- e.expansions + 1;
              let sp = take_spec e en in
              let x = match sp with Some (Sp_bu (px, _, _)) -> px | _ -> materialize en.tree in
              let solved =
                if en.ann.Node.metrics.n_tensors = n_predicted then
                  match sp with
                  | Some (Sp_bu (_, _, Some Bu_noop)) -> None
                  | Some (Sp_bu (_, _, Some (Bu_prog (p, th)))) ->
                      let run =
                        match th with
                        | Some th -> fun (_ : Stagg_taco.Ast.program) -> th ()
                        | None -> inline_run
                      in
                      try_validate e ~fp:en.ann.Node.fp ~run (Some p)
                  | _ -> (
                      match Node.remove_tail g x with
                      (* closing ε tails adds empty rule contributions, so the
                         completed tree's fingerprint equals the popped entry's *)
                      | Some complete ->
                          try_validate e ~fp:en.ann.Node.fp ~run:inline_run
                            (Node.to_program g complete)
                      | None -> None)
                else None
              in
              match solved with
              | Some sol -> Solved (sol, stats e)
              | None ->
                  (match sp with
                  | Some (Sp_bu (_, specs, _)) -> push_expansions ~spec:specs e g en x
                  | _ -> push_expansions e g en x);
                  loop ()))
  in
  with_workers e sctx ~claimed ~on_par_stats loop
