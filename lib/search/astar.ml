open Stagg_util
open Stagg_grammar
module Pretty = Stagg_taco.Pretty

type budget = { max_attempts : int; max_expansions : int; timeout_s : float }

let default_budget = { max_attempts = 2_000; max_expansions = 200_000; timeout_s = 10. }

type stats = { attempts : int; expansions : int; elapsed_s : float }

type 'sol outcome = Solved of 'sol * stats | Exhausted of stats | Budget_exceeded of stats

let stats_of = function Solved (_, s) | Exhausted s | Budget_exceeded s -> s

(* A frontier element carries everything the pop side needs — path cost,
   metrics, and (for complete trees) the rebuilt program. Incomplete
   trees are NOT materialized at push time: the annotation is extended
   from the parent's without the child tree, so the frontier stores
   (parent tree, rule) and only the pop side — reached for a small
   fraction of pushed entries — builds the tree. Siblings share the
   parent pointer, so a frontier of a million entries holds thousands of
   trees, not a million. *)
type tree_src =
  | Built of Node.t  (** the initial node, and complete trees (the program rebuild needs them) *)
  | Expand of Node.t * Cfg.rule  (** parent tree + rule to apply at its leftmost open leaf *)

type entry = {
  c : float;  (** path cost c(x) *)
  tree : tree_src;
  ann : Node.annotated;
  program : Stagg_taco.Ast.program option;  (** Some iff complete *)
}

let materialize = function Built x -> x | Expand (p, r) -> Node.expand1 p r

type 'sol engine = {
  pcfg : Pcfg.t;
  penalty_ctx : Penalty.ctx;
  budget : budget;
  validate : Stagg_taco.Ast.program -> 'sol option;
  queue : entry Pqueue.t;  (** priority f(x) *)
  seen : (string, unit) Hashtbl.t;  (** validated templates, printed form *)
  inc_safe : bool;  (** grammar admits incremental metrics *)
  started : float;
  mutable attempts : int;
  mutable expansions : int;
  mutable timed_out : bool;  (** latched by the periodic clock check *)
}

let make_engine ~pcfg ~penalty_ctx ~budget ~validate =
  let g = Pcfg.cfg pcfg in
  let queue = Pqueue.create () in
  let x0 = Node.initial g in
  Pqueue.push queue 0. { c = 0.; tree = Built x0; ann = Node.annotate g x0; program = None };
  {
    pcfg;
    penalty_ctx;
    budget;
    validate;
    queue;
    seen = Hashtbl.create 64;
    inc_safe = Node.incremental_safe g;
    started = Unix.gettimeofday ();
    attempts = 0;
    expansions = 0;
    timed_out = false;
  }

let elapsed e = Unix.gettimeofday () -. e.started

let stats e = { attempts = e.attempts; expansions = e.expansions; elapsed_s = elapsed e }

(* The frontier is also capped: a queue of this size means the heuristic
   has stopped discriminating and memory would grow without bound. *)
let max_frontier = 1_500_000

(* The attempt/expansion/frontier checks are exact (they bound the
   deterministic outcome); the wall clock is only a backstop, so the
   [gettimeofday] syscall is polled every 64 pops and latched, keeping it
   out of the hot loop. *)
let over_budget e =
  e.attempts >= e.budget.max_attempts
  || e.expansions >= e.budget.max_expansions
  || Pqueue.length e.queue > max_frontier
  ||
  (if (not e.timed_out) && e.expansions land 63 = 0 then
     e.timed_out <- elapsed e > e.budget.timeout_s;
   e.timed_out)

(* Validate an already-rebuilt program. Duplicate templates — the EXPR OP
   EXPR rule makes the grammar ambiguous, and associative duplicates print
   identically — are validated once. *)
let try_validate e (program : Stagg_taco.Ast.program option) : 'sol option =
  match program with
  | None -> None
  | Some p ->
      let key = Pretty.program_to_string p in
      if Hashtbl.mem e.seen key then None
      else begin
        Hashtbl.add e.seen key ();
        e.attempts <- e.attempts + 1;
        e.validate p
      end

(* Push every legal one-step expansion of [parent] (whose tree [px] the
   pop side has just materialized). Metrics are extended incrementally
   from the parent's annotation without building the child tree; only
   complete children are materialized here, to rebuild their program
   once and carry it to the pop. *)
let push_expansions e (g : Cfg.t) (parent : entry) (px : Node.t) =
  match parent.ann.Node.opens with
  | [] -> ()
  | nt :: _ ->
      List.iter
        (fun (r : Cfg.rule) ->
          let rc = Pcfg.cost e.pcfg r in
          if rc < infinity then begin
            let c' = parent.c +. rc in
            let tree, ann, program =
              if e.inc_safe then begin
                let ann = Node.expand_metrics g parent.ann r in
                if ann.Node.metrics.complete then
                  let x' = Node.expand1 px r in
                  (Built x', ann, Node.to_program g x')
                else (Expand (px, r), ann, None)
              end
              else begin
                let x' = Node.expand1 px r in
                let ann = Node.annotate g x' in
                let program =
                  if ann.Node.metrics.complete then Node.to_program g x' else None
                in
                (Built x', ann, program)
              end
            in
            let pen = Penalty.score e.penalty_ctx ann.Node.metrics ~program in
            if pen < infinity then begin
              let f = c' +. Node.g_cost_opens e.pcfg ann.Node.opens +. pen in
              Pqueue.push e.queue f { c = c'; tree; ann; program }
            end
          end)
        (Cfg.rules_for g nt)

let search_topdown ~pcfg ~penalty_ctx ?(max_depth = 6) ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate in
  let g = Pcfg.cfg pcfg in
  let rec loop () =
    if over_budget e then Budget_exceeded (stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, en) ->
          e.expansions <- e.expansions + 1;
          let x = materialize en.tree in
          if Node.depth g x > max_depth then loop ()
          else if en.ann.Node.metrics.complete then begin
            match try_validate e en.program with
            | Some sol -> Solved (sol, stats e)
            | None -> loop ()
          end
          else begin
            push_expansions e g en x;
            loop ()
          end
  in
  loop ()

let search_bottomup ~pcfg ~penalty_ctx ~dim_list ~budget ~validate () =
  let e = make_engine ~pcfg ~penalty_ctx ~budget ~validate in
  let g = Pcfg.cfg pcfg in
  let n_predicted = List.length dim_list in
  let rec loop () =
    if over_budget e then Budget_exceeded (stats e)
    else
      match Pqueue.pop e.queue with
      | None -> Exhausted (stats e)
      | Some (_f, en) ->
          e.expansions <- e.expansions + 1;
          let x = materialize en.tree in
          let solved =
            if en.ann.Node.metrics.n_tensors = n_predicted then
              match Node.remove_tail g x with
              | Some complete -> try_validate e (Node.to_program g complete)
              | None -> None
            else None
          in
          (match solved with
          | Some sol -> Solved (sol, stats e)
          | None ->
              push_expansions e g en x;
              loop ())
  in
  loop ()
