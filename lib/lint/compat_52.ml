(* Typedtree pattern-variable extraction for OCaml >= 5.2 (Tpat_var and
   Tpat_alias gained a Shape.Uid.t). Selected by the dune rule in this
   directory; keep in sync with compat_51.ml. *)

let pat_var (p : Typedtree.pattern) : (Ident.t * string) option =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _, _) -> Some (id, Ident.name id)
  | Typedtree.Tpat_alias (_, id, _, _) -> Some (id, Ident.name id)
  | _ -> None
