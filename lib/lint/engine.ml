(* The domain-safety analysis: loads the .cmt files dune emits for every
   library, inventories module-scope mutable state, computes which code
   runs on more than one domain (arguments to [Domain.spawn],
   [Pool.map]/[map_reduce], [Domain.DLS.new_key] initializers — plus
   everything those closures call, followed transitively across the
   loaded modules), and checks the five rules of {!Report.rule}.

   Precision model (documented in DESIGN.md §4.11): the escape
   computation is a call-graph closure over *named* functions whose
   bodies are in the loaded .cmt set — a closure stored in a data
   structure and invoked later is not tracked, and mediation is
   recognized syntactically ([Atomic.*] values, [Mutex.protect]
   regions, [Domain.DLS] access). That is exactly the shape of this
   codebase's concurrency (closures cross domains only at the few
   spawn/pool/DLS sites), so the under-approximation is acceptable; the
   TSan CI leg is the dynamic backstop for what the walk cannot see. *)

open Typedtree

(* ---- path normalization ----

   Dune-wrapped modules are mangled ("Stagg_util__Pool"); strip the
   wrapper so rules and the allowlist speak in source-level names
   ("Pool"). Returns (lib_prefix, normalized). *)
let norm_modname m =
  match String.index_opt m '_' with
  | None -> ("", m)
  | Some _ -> (
      let rec find_sep i =
        if i + 1 >= String.length m then None
        else if m.[i] = '_' && m.[i + 1] = '_' then Some i
        else find_sep (i + 1)
      in
      (* split on the LAST "__" (nested wrapping is not used here) *)
      let rec last_sep acc i =
        match find_sep i with None -> acc | Some j -> last_sep (Some j) (j + 2)
      in
      match last_sep None 0 with
      | None -> ("", m)
      | Some j ->
          let suffix = String.sub m (j + 2) (String.length m - j - 2) in
          if suffix = "" then ("", m) else (String.sub m 0 j, suffix))

let norm_component c = snd (norm_modname c)

let path_comps p = List.map norm_component (String.split_on_char '.' (Path.name p))

(* does [comps] end with [pat]? *)
let suffix_eq comps pat =
  let lc = List.length comps and lp = List.length pat in
  lc >= lp
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (lc - lp) comps = pat

let suffix_any pats comps = List.exists (suffix_eq comps) pats

(* ---- rule vocabularies ---- *)

(* Call sites whose function arguments run on other domains, at two
   sharing levels. [Domain.spawn] and DLS initializers share every
   record reachable from the closure with the spawning domain, so
   mutable-field and array traffic is checked. [Pool.map]/[map_reduce]
   tasks are share-nothing by contract (pool.mli: "f must not touch
   mutable state shared with other tasks") and each task owns its own
   data — only module-scope state is shared between tasks, so only the
   inventory rule applies there. *)
let shared_crossing_fns = [ [ "Domain"; "spawn" ]; [ "DLS"; "new_key" ] ]
let task_crossing_fns = [ [ "Pool"; "map" ]; [ "Pool"; "map_reduce" ] ]

let guard_fns = [ [ "Mutex"; "protect" ] ]
let newkey_fns = [ [ "DLS"; "new_key" ] ]

(* the claim/done/taken-shaped operations: read-modify-write atomics *)
let atomic_protocol_ops =
  [ [ "Atomic"; "compare_and_set" ]; [ "Atomic"; "exchange" ]; [ "Atomic"; "fetch_and_add" ] ]

let nondet_fns =
  [
    [ "Random"; "self_init" ];
    [ "Random"; "State"; "make_self_init" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
    [ "Sys"; "time" ];
  ]

(* operations that must not run while a lock is held: potentially
   unbounded (pool fan-out, joins, IO, syscalls) or lock-ordering
   hazards (acquiring another mutex) *)
let blocking_fns =
  [
    [ "Pool"; "map" ];
    [ "Pool"; "map_reduce" ];
    [ "Domain"; "join" ];
    [ "Domain"; "spawn" ];
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
    [ "Unix"; "gettimeofday" ];
    [ "Mutex"; "lock" ];
    [ "Mutex"; "protect" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Printf"; "fprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    (* pervasives are matched fully qualified ("Stdlib.flush"): a bare
       single-component pattern would also match any local binding that
       happens to share the name *)
    [ "Stdlib"; "print_string" ];
    [ "Stdlib"; "print_endline" ];
    [ "Stdlib"; "print_newline" ];
    [ "Stdlib"; "print_char" ];
    [ "Stdlib"; "print_int" ];
    [ "Stdlib"; "print_float" ];
    [ "Stdlib"; "prerr_string" ];
    [ "Stdlib"; "prerr_endline" ];
    [ "Stdlib"; "read_line" ];
    [ "Stdlib"; "input_line" ];
    [ "Stdlib"; "output_string" ];
    [ "Stdlib"; "output_char" ];
    [ "Stdlib"; "output_bytes" ];
    [ "Stdlib"; "flush" ];
  ]

let blocking_modules = [ "In_channel"; "Out_channel" ]

(* shared-array / shared-bytes writes inside crossing code *)
let write_fns =
  [
    [ "Array"; "set" ];
    [ "Array"; "unsafe_set" ];
    [ "Array"; "fill" ];
    [ "Array"; "blit" ];
    [ "Bytes"; "set" ];
    [ "Bytes"; "unsafe_set" ];
    [ "Bytes"; "fill" ];
    [ "Bytes"; "blit" ];
  ]

(* type constructors that make a module-scope binding "mutable state" *)
let mutable_tycons =
  [
    [ "ref" ];
    [ "array" ];
    [ "bytes" ];
    [ "Hashtbl"; "t" ];
    [ "Buffer"; "t" ];
    [ "Queue"; "t" ];
    [ "Stack"; "t" ];
    [ "Dynarray"; "t" ];
  ]

(* safe-by-mediation types: never inventoried *)
let safe_tycons =
  [
    [ "Atomic"; "t" ];
    [ "Mutex"; "t" ];
    [ "Condition"; "t" ];
    [ "Semaphore"; "Counting"; "t" ];
    [ "Semaphore"; "Binary"; "t" ];
    [ "DLS"; "key" ];
  ]

let tycon_comps ty =
  match Types.get_desc ty with Types.Tconstr (p, _, _) -> Some (path_comps p) | _ -> None

let classify_type ty =
  match tycon_comps ty with
  | None -> `Other
  | Some c ->
      if suffix_any safe_tycons c then `Safe
      else if suffix_any mutable_tycons c then `Mutable (String.concat "." c)
      else `Other

(* ---- per-module data ---- *)

type modinfo = {
  norm : string;
  lib : string;
  src : string;
  str : structure;
  mutable inventory : (Ident.t * string * string) list;  (* id, name, type *)
  mutable bodies : (Ident.t * string * expression) list;
}

type tables = {
  mods : modinfo list;
  (* cross-module lookups keyed "Mod.name" *)
  g_inventory : (string, string) Hashtbl.t;  (* -> type *)
  g_bodies : (string, modinfo * string * expression) Hashtbl.t;
  newkey_ok : (string * int * int, unit) Hashtbl.t;  (* toplevel new_key sites *)
}

let loc_key (l : Location.t) =
  (l.loc_start.pos_fname, l.loc_start.pos_lnum, l.loc_start.pos_cnum)

let ident_comps (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (path_comps p) | _ -> None

(* ---- phase A: collect inventories, toplevel bodies, DLS key sites ---- *)

let rec collect_struct tbl mi prefix (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match Compat.pat_var vb.vb_pat with
              | None -> ()
              | Some (id, name) ->
                  let qname = prefix ^ name in
                  mi.bodies <- (id, qname, vb.vb_expr) :: mi.bodies;
                  Hashtbl.add tbl.g_bodies (mi.norm ^ "." ^ qname) (mi, qname, vb.vb_expr);
                  (match classify_type vb.vb_expr.exp_type with
                  | `Mutable ty ->
                      mi.inventory <- (id, qname, ty) :: mi.inventory;
                      Hashtbl.add tbl.g_inventory (mi.norm ^ "." ^ qname) ty
                  | `Safe | `Other -> ());
                  (match vb.vb_expr.exp_desc with
                  | Texp_apply (f, _) -> (
                      match ident_comps f with
                      | Some c when suffix_any newkey_fns c ->
                          Hashtbl.replace tbl.newkey_ok (loc_key f.exp_loc) ()
                      | _ -> ())
                  | _ -> ()))
            vbs
      | Tstr_module mb -> collect_module tbl mi prefix mb
      | Tstr_recmodule mbs -> List.iter (collect_module tbl mi prefix) mbs
      | _ -> ())
    str.str_items

and collect_module tbl mi prefix mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  collect_modexpr tbl mi (prefix ^ name ^ ".") mb.mb_expr

and collect_modexpr tbl mi prefix me =
  match me.mod_desc with
  | Tmod_structure s -> collect_struct tbl mi prefix s
  | Tmod_constraint (me', _, _, _) -> collect_modexpr tbl mi prefix me'
  | _ -> ()

(* ---- phase B: the rule walk ---- *)

type crossing = No_cross | Task_cross | Shared_cross

type st = {
  mi : modinfo;
  ctx : string;
  crossing : crossing;  (* lexically / transitively inside domain-crossing code *)
  guarded : bool;  (* inside a Mutex.protect region *)
  under_mutex : bool;
  locals : (Ident.t * expression) list;  (* let-bound function bodies in scope *)
}

type acc = {
  tbl : tables;
  allow : Report.t;
  mutable findings : Report.finding list;
  dedup : (string, unit) Hashtbl.t;
  visited : (string * int * int * bool * bool, unit) Hashtbl.t;
}

let emit acc st rule (loc : Location.t) message =
  let f : Report.finding =
    {
      rule;
      file = (if loc.loc_start.pos_fname <> "" then loc.loc_start.pos_fname else st.mi.src);
      line = loc.loc_start.pos_lnum;
      modname = st.mi.norm;
      context = st.ctx;
      message;
    }
  in
  let key =
    Printf.sprintf "%s|%s|%d|%s" (Report.rule_id rule) f.file f.line f.message
  in
  if not (Hashtbl.mem acc.dedup key) then begin
    Hashtbl.replace acc.dedup key ();
    acc.findings <- f :: acc.findings
  end

(* resolve a path to a known function body: local lets, same-module
   toplevels (by ident), then cross-module by "Mod.name" (preferring the
   same library when wrapped module names collide across libraries).
   Only lambda bodies are followed — a reference to a let-bound *value*
   (say a timestamp computed before a [Mutex.protect] region and read
   inside it) must not re-walk the defining expression in the reference
   site's lock/crossing context. *)
let is_lambda (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let resolve_body st tbl (p : Path.t) =
  let candidate =
    match p with
    | Path.Pident id -> (
        match List.find_opt (fun (i, _) -> Ident.same i id) st.locals with
        | Some (_, e) -> Some (st.mi, st.ctx, e)
        | None -> (
            match List.find_opt (fun (i, _, _) -> Ident.same i id) st.mi.bodies with
            | Some (_, n, e) -> Some (st.mi, n, e)
            | None -> None))
    | _ -> (
        match path_comps p with
        | [] | [ _ ] -> None
        | comps -> (
            let n = List.length comps in
            let key =
              String.concat "." [ List.nth comps (n - 2); List.nth comps (n - 1) ]
            in
            match Hashtbl.find_all tbl.g_bodies key with
            | [] -> None
            | [ (mi, name, e) ] -> Some (mi, name, e)
            | many -> (
                match List.filter (fun (mi, _, _) -> mi.lib = st.mi.lib) many with
                | [ (mi, name, e) ] -> Some (mi, name, e)
                | _ -> None)))
  in
  match candidate with Some (_, _, e) when not (is_lambda e) -> None | c -> c

let is_inventory st tbl (p : Path.t) =
  match p with
  | Path.Pident id -> (
      match List.find_opt (fun (i, _, _) -> Ident.same i id) st.mi.inventory with
      | Some (_, n, ty) -> Some (st.mi.norm ^ "." ^ n, ty)
      | None -> None)
  | _ -> (
      match path_comps p with
      | [] | [ _ ] -> None
      | comps -> (
          let n = List.length comps in
          let key =
            String.concat "." [ List.nth comps (n - 2); List.nth comps (n - 1) ]
          in
          match Hashtbl.find_opt tbl.g_inventory key with
          | Some ty -> Some (key, ty)
          | None -> None))

(* Array/bytes writes are only flagged when the written value is
   plausibly shared: a module-scope inventory binding, a field read, or
   a computed expression. A plain local/parameter ident is the
   overwhelmingly-common safe case (freshly allocated scratch, or the
   pool's by-construction-disjoint result slots). *)
let rec shared_write_target acc st arges =
  match arges with
  | [] -> false
  | target :: _ -> (
      match target.exp_desc with
      | Texp_ident (p, _, _) -> is_inventory st acc.tbl p <> None
      | _ -> true)

and walk acc st (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> walk_ident acc st e p
  | Texp_apply (f, args) ->
      let arges = List.filter_map snd args in
      let comps = ident_comps f in
      (match comps with
      | Some c
        when suffix_any write_fns c && st.crossing = Shared_cross && not st.guarded
             && shared_write_target acc st arges ->
          emit acc st Report.Shared_mutable e.exp_loc
            (Printf.sprintf "%s on shared data inside domain-crossing code"
               (String.concat "." c))
      | _ -> ());
      walk acc st f;
      (match comps with
      | Some c when suffix_any guard_fns c -> (
          match arges with
          | [ m; g ] ->
              walk acc st m;
              walk acc { st with guarded = true; under_mutex = true } g
          | _ -> List.iter (walk acc st) arges)
      | Some c when suffix_any shared_crossing_fns c ->
          List.iter (walk acc { st with crossing = Shared_cross }) arges
      | Some c when suffix_any task_crossing_fns c ->
          let cr = if st.crossing = Shared_cross then Shared_cross else Task_cross in
          List.iter (walk acc { st with crossing = cr }) arges
      | _ -> List.iter (walk acc st) arges)
  | Texp_field (e1, _, ld) ->
      if ld.Types.lbl_mut = Asttypes.Mutable && st.crossing = Shared_cross && not st.guarded
      then
        emit acc st Report.Shared_mutable e.exp_loc
          (Printf.sprintf "racy read of mutable field '%s' on domain-crossing code path"
             ld.Types.lbl_name);
      walk acc st e1
  | Texp_setfield (e1, _, ld, e2) ->
      if st.crossing = Shared_cross && not st.guarded then
        emit acc st Report.Shared_mutable e.exp_loc
          (Printf.sprintf "write to mutable field '%s' on domain-crossing code path"
             ld.Types.lbl_name);
      walk acc st e1;
      walk acc st e2
  | Texp_let (_, vbs, body) ->
      let locals =
        List.fold_left
          (fun ls vb ->
            match Compat.pat_var vb.vb_pat with
            | Some (id, _) -> (id, vb.vb_expr) :: ls
            | None -> ls)
          st.locals vbs
      in
      List.iter (fun vb -> walk acc st vb.vb_expr) vbs;
      walk acc { st with locals } body
  | _ ->
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ e' -> walk acc st e');
          (* do not descend into module types / signatures *)
          module_type = (fun _ _ -> ());
        }
      in
      Tast_iterator.default_iterator.expr it e

and walk_ident acc st (e : expression) p =
  let comps = path_comps p in
  (* nondeterminism-source: anywhere *)
  if suffix_any nondet_fns comps then
    emit acc st Report.Nondet e.exp_loc
      (Printf.sprintf "%s is a nondeterminism source (breaks byte-identical outcomes)"
         (String.concat "." comps));
  (* blocking-under-mutex *)
  if
    st.under_mutex
    && (suffix_any blocking_fns comps
       || List.exists (fun c -> List.mem c blocking_modules) comps)
  then
    emit acc st Report.Blocking_under_mutex e.exp_loc
      (Printf.sprintf "%s called while a mutex is held" (String.concat "." comps));
  (* raw-atomic-outside-protocol-module *)
  if suffix_any atomic_protocol_ops comps && not (Report.is_protocol acc.allow st.mi.norm)
  then
    emit acc st Report.Raw_atomic e.exp_loc
      (Printf.sprintf "%s outside a declared protocol module" (String.concat "." comps));
  (* dls-key-not-toplevel *)
  if suffix_any newkey_fns comps && not (Hashtbl.mem acc.tbl.newkey_ok (loc_key e.exp_loc))
  then
    emit acc st Report.Dls_key e.exp_loc
      "Domain.DLS.new_key outside a toplevel binding (per-call keys leak per-domain slots)";
  if st.crossing <> No_cross then begin
    (* shared-mutable-unguarded: a reference to inventoried module-scope
       mutable state from domain-crossing code *)
    (if not st.guarded then
       match is_inventory st acc.tbl p with
       | Some (name, ty) ->
           emit acc st Report.Shared_mutable e.exp_loc
             (Printf.sprintf
                "module-scope mutable value %s (%s) referenced on domain-crossing code \
                 path without Atomic/Mutex/DLS mediation"
                name ty)
       | None -> ());
    (* transitive escape: follow the call graph into known bodies *)
    match resolve_body st acc.tbl p with
    | Some (mi, name, body) ->
        let k =
          let f, l, c = loc_key body.exp_loc in
          (f ^ "|" ^ name, l, c, st.guarded, st.under_mutex)
        in
        if not (Hashtbl.mem acc.visited k) then begin
          Hashtbl.replace acc.visited k ();
          walk acc
            { st with mi; ctx = name; locals = [] }
            body
        end
    | None -> ()
  end

(* ---- driving ---- *)

let rec lint_struct acc mi prefix (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match Compat.pat_var vb.vb_pat with Some (_, n) -> prefix ^ n | None -> "_"
              in
              walk acc
                {
                  mi;
                  ctx = name;
                  crossing = No_cross;
                  guarded = false;
                  under_mutex = false;
                  locals = [];
                }
                vb.vb_expr)
            vbs
      | Tstr_eval (e, _) ->
          walk acc
            { mi; ctx = "_"; crossing = No_cross; guarded = false; under_mutex = false; locals = [] }
            e
      | Tstr_module mb -> lint_module acc mi prefix mb
      | Tstr_recmodule mbs -> List.iter (lint_module acc mi prefix) mbs
      | _ -> ())
    str.str_items

and lint_module acc mi prefix mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  lint_modexpr acc mi (prefix ^ name ^ ".") mb.mb_expr

and lint_modexpr acc mi prefix me =
  match me.mod_desc with
  | Tmod_structure s -> lint_struct acc mi prefix s
  | Tmod_constraint (me', _, _, _) -> lint_modexpr acc mi prefix me'
  | _ -> ()

let load_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_modname; cmt_sourcefile; _ } ->
      let lib, norm = norm_modname cmt_modname in
      Some
        {
          norm;
          lib;
          src = Option.value cmt_sourcefile ~default:(Filename.basename path);
          str;
          inventory = [];
          bodies = [];
        }
  | _ -> None
  | exception _ -> None

type stats = { modules : int; findings : int }

let analyze ~cmt_files ~(allow : Report.t) =
  let mods = List.filter_map load_cmt (List.sort compare cmt_files) in
  let tbl =
    {
      mods;
      g_inventory = Hashtbl.create 64;
      g_bodies = Hashtbl.create 1024;
      newkey_ok = Hashtbl.create 16;
    }
  in
  List.iter (fun mi -> collect_struct tbl mi "" mi.str) mods;
  let acc =
    { tbl; allow; findings = []; dedup = Hashtbl.create 64; visited = Hashtbl.create 256 }
  in
  List.iter (fun mi -> lint_struct acc mi "" mi.str) mods;
  let findings =
    List.sort
      (fun (a : Report.finding) b ->
        compare (a.file, a.line, Report.rule_id a.rule) (b.file, b.line, Report.rule_id b.rule))
      acc.findings
  in
  (Report.apply allow findings, { modules = List.length mods; findings = List.length findings })

(* recursive *.cmt discovery, deterministic order *)
let scan_dir root =
  let out = ref [] in
  let rec go dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun name ->
            let p = Filename.concat dir name in
            if Sys.is_directory p then go p
            else if Filename.check_suffix name ".cmt" then out := p :: !out)
          entries
    | exception Sys_error _ -> ()
  in
  (if Sys.file_exists root && Sys.is_directory root then go root);
  List.rev !out
