(* Rule identities, findings, and the [lint.allow] suppression file.

   A finding is keyed for allowlist matching on
   (rule, source basename, enclosing toplevel value): line numbers churn
   with every edit, but the enclosing binding a racy idiom lives in is
   stable, so suppressions survive unrelated refactors while still
   naming a concrete source location (the justification is mandatory —
   nothing is suppressed silently). *)

type rule =
  | Shared_mutable  (* domain-crossing access to unguarded mutable state *)
  | Raw_atomic  (* claim/done/taken-style atomic ops outside a protocol module *)
  | Dls_key  (* Domain.DLS.new_key anywhere but a toplevel binding *)
  | Blocking_under_mutex  (* pool ops / joins / IO / clocks while a lock is held *)
  | Nondet  (* wall-clock or self-seeded randomness: breaks byte-identity *)

let all_rules = [ Shared_mutable; Raw_atomic; Dls_key; Blocking_under_mutex; Nondet ]

let rule_id = function
  | Shared_mutable -> "shared-mutable-unguarded"
  | Raw_atomic -> "raw-atomic-outside-protocol-module"
  | Dls_key -> "dls-key-not-toplevel"
  | Blocking_under_mutex -> "blocking-under-mutex"
  | Nondet -> "nondeterminism-source"

let rule_of_id = function
  | "shared-mutable-unguarded" -> Some Shared_mutable
  | "raw-atomic-outside-protocol-module" -> Some Raw_atomic
  | "dls-key-not-toplevel" -> Some Dls_key
  | "blocking-under-mutex" -> Some Blocking_under_mutex
  | "nondeterminism-source" -> Some Nondet
  | _ -> None

type finding = {
  rule : rule;
  file : string;  (* source path as recorded in the .cmt *)
  line : int;
  modname : string;  (* normalized module name, lib prefix stripped *)
  context : string;  (* enclosing toplevel value binding *)
  message : string;
}

let finding_to_string f =
  Printf.sprintf "%s %s:%d [%s.%s] %s" (rule_id f.rule) (Filename.basename f.file) f.line
    f.modname f.context f.message

(* ---- the allowlist ---- *)

type entry = {
  e_rule : rule;
  e_file : string;  (* basename *)
  e_context : string;  (* enclosing value, or "*" *)
  e_just : string;  (* mandatory one-line justification *)
  e_line : int;  (* line in lint.allow, for diagnostics *)
}

type t = {
  entries : entry list;
  protocol_modules : (string * string) list;  (* module name, justification *)
}

let empty = { entries = []; protocol_modules = [] }

let is_protocol t m = List.mem_assoc m t.protocol_modules

(* Grammar (one directive per line; '#' starts a comment):
     protocol-module <Module> -- <justification>
     <rule-id> <file.ml>:<context> -- <justification>
   The justification is mandatory: an allowlist line with nothing after
   "--" is a parse error, not a silent suppression. *)
let parse_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: expected '<directive> ... -- <why>'" lineno)
    | Some sp -> (
        let head = String.sub line 0 sp in
        let rest = String.trim (String.sub line sp (String.length line - sp)) in
        let target, just =
          (* split on the first " -- " *)
          let rec find i =
            if i + 4 > String.length rest then None
            else if String.sub rest i 4 = " -- " then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> (rest, "")
          | Some i ->
              ( String.trim (String.sub rest 0 i),
                String.trim (String.sub rest (i + 4) (String.length rest - i - 4)) )
        in
        if just = "" then
          Error (Printf.sprintf "line %d: missing justification (expected ' -- <why>')" lineno)
        else if head = "protocol-module" then Ok (Some (`Protocol (target, just)))
        else
          match rule_of_id head with
          | None -> Error (Printf.sprintf "line %d: unknown rule %S" lineno head)
          | Some r -> (
              match String.index_opt target ':' with
              | None ->
                  Error
                    (Printf.sprintf "line %d: expected '<file.ml>:<context>' after rule" lineno)
              | Some c ->
                  let file = String.sub target 0 c in
                  let ctx = String.sub target (c + 1) (String.length target - c - 1) in
                  if file = "" || ctx = "" then
                    Error (Printf.sprintf "line %d: empty file or context" lineno)
                  else
                    Ok
                      (Some
                         (`Entry
                           {
                             e_rule = r;
                             e_file = file;
                             e_context = ctx;
                             e_just = just;
                             e_line = lineno;
                           }))))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok acc
    | l :: rest -> (
        match parse_line ~lineno l with
        | Error e -> Error e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some (`Protocol (m, j))) ->
            go (lineno + 1) { acc with protocol_modules = acc.protocol_modules @ [ (m, j) ] } rest
        | Ok (Some (`Entry e)) -> go (lineno + 1) { acc with entries = acc.entries @ [ e ] } rest)
  in
  go 1 empty lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

let entry_matches e (f : finding) =
  e.e_rule = f.rule
  && e.e_file = Filename.basename f.file
  && (e.e_context = "*" || e.e_context = f.context)

let matching_entry t f = List.find_opt (fun e -> entry_matches e f) t.entries

(* Partition findings into violations and suppressed, and report
   allowlist entries that matched nothing (stale suppressions are
   surfaced, not silently carried). *)
type verdict = {
  violations : finding list;
  suppressed : (finding * entry) list;
  unused_entries : entry list;
}

let apply t findings =
  let used = Hashtbl.create 16 in
  let violations, suppressed =
    List.fold_left
      (fun (vs, ss) f ->
        match matching_entry t f with
        | Some e ->
            Hashtbl.replace used e.e_line ();
            (vs, (f, e) :: ss)
        | None -> (f :: vs, ss))
      ([], []) findings
  in
  let unused = List.filter (fun e -> not (Hashtbl.mem used e.e_line)) t.entries in
  { violations = List.rev violations; suppressed = List.rev suppressed; unused_entries = unused }
