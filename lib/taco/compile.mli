(** The staged TACO evaluator backing template validation.

    {!Interp} re-runs shape inference and reduction annotation per call and
    resolves every tensor and index variable through association lists per
    output cell. Validation runs the {e same} concrete program on several
    I/O examples, so this module splits evaluation into two stages:

    + [compile] lowers a program once — {!Reduction.annotate}, then every
      tensor name and index variable is interned to an integer slot — into
      a closure tree over int-indexed scratch arrays;
    + [run] / [run_equal] bind one example's tensors into the slots (a few
      list lookups per {e tensor}, zero per cell) and evaluate: per output
      cell only array reads and exact-rational arithmetic remain.

    [Interp] stays the reference oracle; a QCheck property in [test_taco]
    checks cell-for-cell agreement, including error messages ([bind]
    reproduces {!Shape.infer_index_sizes}'s error precedence exactly).

    A compiled program carries mutable per-example scratch: use one [t]
    per domain (share the program, compile per worker). *)

module Make (V : Stagg_util.Value.S) : sig
  type t

  (** [compile p] never fails: all shape errors depend on the example
      environment and surface at [run]/[run_equal] time. *)
  val compile : Ast.program -> t

  (** The program this evaluator was compiled from. *)
  val program : t -> Ast.program

  (** Same contract as {!Interp.Make.run}: evaluate under [env], with
      [lhs_shape] forcing the extents of output-only indices. Errors are
      the same strings [Interp] produces. *)
  val run :
    t ->
    env:(string * V.t Tensor.t) list ->
    ?lhs_shape:int array ->
    unit ->
    (V.t Tensor.t, string) result

  (** [run_equal t ~env ~lhs_shape ~expected] — does the program, evaluated
      under [env], produce exactly the flat row-major contents [expected]
      (of shape [lhs_shape])? Any evaluation error is [false]. Exits at the
      first mismatching cell — the validator's hot path. *)
  val run_equal :
    t -> env:(string * V.t Tensor.t) list -> lhs_shape:int array -> expected:V.t array -> bool
end
