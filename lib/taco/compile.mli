(** The staged TACO evaluator backing template validation.

    {!Interp} re-runs shape inference and reduction annotation per call and
    resolves every tensor and index variable through association lists per
    output cell. Validation runs the {e same} concrete program on several
    I/O examples, so this module splits evaluation into two stages:

    + [compile] lowers a program once — {!Reduction.annotate}, then every
      tensor name and index variable is interned to an integer slot — into
      a closure tree over int-indexed scratch arrays;
    + [run] / [run_equal] bind one example's tensors into the slots (a few
      lookups per {e tensor}, zero per cell) and evaluate: per output cell
      only array reads and exact-rational arithmetic remain.

    Validation additionally batches whole {e templates}: [compile_template]
    builds the plan and closure tree once per template, leaving the tensor
    targets and the [Const] hole as mutable cells, and [rebind] swaps in one
    substitution — a name write per tensor slot plus one constant write, no
    allocation, no closure rebuild — so every sibling substitution reuses
    the same staged evaluator and scratch.

    All per-example scratch (shapes, cursors) is preallocated at fixed
    {!Shape.max_rank} capacity, keeping the hot [bind]/[iter_cells]/
    [run_equal] loops allocation-free.

    [Interp] stays the reference oracle; a QCheck property in [test_taco]
    checks cell-for-cell agreement, including error messages ([bind]
    reproduces {!Shape.infer_index_sizes}'s error precedence exactly).

    A compiled program carries mutable per-example scratch: use one [t]
    per domain (share the program, compile per worker). *)

module Make (V : Stagg_util.Value.S) : sig
  type t

  (** [compile p] never fails: all shape errors depend on the example
      environment and surface at [run]/[run_equal] time. (A program whose
      LHS rank exceeds {!Shape.max_rank} silently falls back to exact-size
      scratch.) *)
  val compile : Ast.program -> t

  (** [compile_template ~const_symbol p] compiles the {e template} [p]
      once, with every tensor symbol left as a retargetable slot and every
      rank-0 access of [const_symbol] (default ["Const"]) compiled to a
      mutable constant cell — exactly the holes [Templatize.rename] fills.
      A {e ranked} access of [const_symbol] stays an ordinary tensor slot
      whose target [rebind] leaves untouched, mirroring [rename].

      Until the first [rebind], the evaluator behaves like [compile p]
      (with the const cell at [V.zero]).

      @raise Rank_overflow when the template's LHS rank exceeds the fixed
      scratch capacity {!Shape.max_rank} — a clean refusal instead of
      scratch corruption; callers fall back to per-candidate [compile]. *)
  val compile_template : ?const_symbol:string -> Ast.program -> t

  exception Rank_overflow of string

  (** [rebind t ~mapping ~const] retargets a [compile_template] evaluator
      at one substitution: tensor slot [s] will resolve [mapping]'s image
      of its symbol, and the const cell is set to [const]. Allocation-free.
      Failure messages for a missing symbol binding or a missing constant
      are byte-identical to [Templatize.rename]'s (raised as [Failure]),
      though when several holes are unfillable the tensor slots are checked
      before the const hole.

      @raise Invalid_argument on an evaluator built by [compile]. *)
  val rebind :
    t -> mapping:(string * string) list -> const:Stagg_util.Rat.t option -> unit

  (** The program this evaluator was compiled from. *)
  val program : t -> Ast.program

  (** A slot-resolved tensor environment, built once per (signature,
      example) and shared by every candidate bound against that example. *)
  type table

  val table_of_env : (string * V.t Tensor.t) list -> table

  (** Same contract as {!Interp.Make.run}: evaluate under [env], with
      [lhs_shape] forcing the extents of output-only indices. Errors are
      the same strings [Interp] produces. *)
  val run :
    t ->
    env:(string * V.t Tensor.t) list ->
    ?lhs_shape:int array ->
    unit ->
    (V.t Tensor.t, string) result

  (** [run_equal t ~env ~lhs_shape ~expected] — does the program, evaluated
      under [env], produce exactly the flat row-major contents [expected]
      (of shape [lhs_shape])? Any evaluation error is [false]. Exits at the
      first mismatching cell — the validator's hot path. *)
  val run_equal :
    t -> env:(string * V.t Tensor.t) list -> lhs_shape:int array -> expected:V.t array -> bool

  (** As {!run_equal}, resolving tensors through a prebuilt {!table}
      instead of rescanning an association list per tensor. *)
  val run_equal_table :
    t -> table:table -> lhs_shape:int array -> expected:V.t array -> bool
end
