open Ast

(* ---- the program-dependent plan (computed once per program) ---- *)

type access = { tslot : int; islots : int array }

type cexpr =
  | C_const of Stagg_util.Rat.t
  | C_cell  (** the template's [Const] hole: read from a mutable cell *)
  | C_access of access
  | C_neg of cexpr
  | C_bin of op * cexpr * cexpr
  | C_sum of int array * cexpr  (** reduction slots, innermost last *)

type plan = {
  source : program;
  tensor_names : string array;  (** tensor slot -> RHS tensor name as written *)
  index_names : string array;  (** index slot -> source index variable *)
  lhs_name : string;
  lhs_islots : int array;  (** LHS indices, as slots, in LHS order *)
  accesses : access array;  (** every RHS access, in left-to-right AST order *)
  root : cexpr;
  has_cell : bool;  (** the plan contains at least one [C_cell] *)
}

(* [const_symbol], when given, turns every rank-0 access of that symbol into
   a [C_cell] read — no tensor slot, exactly as [Templatize.rename] replaces
   it by a literal. A {e ranked} access of the symbol stays an ordinary
   tensor slot ([rename] leaves its name untouched too), so it fails at bind
   time with the same "unknown tensor" error on both paths. *)
let make_plan ?const_symbol (p : program) : plan =
  let tensor_names = ref [] and n_tensors = ref 0 in
  let tensor_tbl = Hashtbl.create 8 in
  let tslot name =
    match Hashtbl.find_opt tensor_tbl name with
    | Some s -> s
    | None ->
        let s = !n_tensors in
        incr n_tensors;
        Hashtbl.add tensor_tbl name s;
        tensor_names := name :: !tensor_names;
        s
  in
  let index_names = ref [] and n_indices = ref 0 in
  let index_tbl = Hashtbl.create 8 in
  let islot name =
    match Hashtbl.find_opt index_tbl name with
    | Some s -> s
    | None ->
        let s = !n_indices in
        incr n_indices;
        Hashtbl.add index_tbl name s;
        index_names := name :: !index_names;
        s
  in
  let is_cell name idxs =
    match const_symbol with Some s -> idxs = [] && String.equal s name | None -> false
  in
  let has_cell = ref false in
  let accesses = ref [] in
  (* mirror the [Reduction.annotate] tree so summations sit at exactly the
     nodes the reference interpreter sums at *)
  let rec go (n : Reduction.t) : cexpr =
    let inner =
      match n.node with
      | Reduction.Const c -> C_const c
      | Reduction.Access (t, idxs) when is_cell t idxs ->
          has_cell := true;
          C_cell
      | Reduction.Access (t, idxs) ->
          let a = { tslot = tslot t; islots = Array.of_list (List.map islot idxs) } in
          accesses := a :: !accesses;
          C_access a
      | Reduction.Neg e -> C_neg (go e)
      | Reduction.Bin (op, l, r) ->
          let cl = go l in
          let cr = go r in
          C_bin (op, cl, cr)
    in
    match n.reds with
    | [] -> inner
    | reds -> C_sum (Array.of_list (List.map islot reds), inner)
  in
  let root = go (Reduction.annotate p) in
  let lhs_name, lhs_idxs = p.lhs in
  let lhs_islots = Array.of_list (List.map islot lhs_idxs) in
  {
    source = p;
    tensor_names = Array.of_list (List.rev !tensor_names);
    index_names = Array.of_list (List.rev !index_names);
    lhs_name;
    lhs_islots;
    accesses = Array.of_list (List.rev !accesses);
    root;
    has_cell = !has_cell;
  }

(* monomorphic [List.assoc_opt]: the env lookup sits on the per-example
   hot path, where polymorphic comparison is measurable *)
let rec lookup name = function
  | [] -> None
  | (k, v) :: rest -> if String.equal k name then Some v else lookup name rest

module Make (V : Stagg_util.Value.S) = struct
  (* Mutable per-example scratch, indexed by the plan's integer slots. One
     compiled program is single-domain state: share the [plan], not the [t]. *)
  type t = {
    plan : plan;
    target_names : string array;
        (** tensor slot -> concrete name to resolve in the example env. For
            a per-program [compile] this {e is} [plan.tensor_names]; for a
            template it is a private copy rewritten by [rebind]. *)
    mutable lhs_target : string;
    is_template : bool;
    const_symbol : string option;
    const_cell : V.t ref;  (** current value of the template's [Const] hole *)
    rank : int;  (** LHS rank: the live prefix of [out_shape]/[cursor] *)
    data : V.t array array;  (** tensor slot -> flat buffer (zero-copy view) *)
    strides : int array array;  (** tensor slot -> strides view *)
    shapes : int array array;  (** tensor slot -> shape view *)
    resolved : bool array;  (** tensor slot -> looked up in this example's env *)
    sizes : int array;  (** index slot -> extent (-1 = unbound) *)
    idx : int array;  (** index slot -> current value *)
    out_shape : int array;  (** scratch, fixed capacity >= [rank] *)
    cursor : int array;  (** scratch, fixed capacity >= [rank] *)
    eval : unit -> V.t;  (** the staged cell evaluator *)
  }

  let program t = t.plan.source

  exception Bind_error of string
  exception Rank_overflow of string

  (* Slot-resolved tensor environments: either the caller's association
     list, or a hash table built once per (signature, example) so binding a
     template's thousands of siblings never rescans a list. A variant, not
     a closure, to keep [bind] allocation-free. *)
  type table = (string, V.t Tensor.t) Hashtbl.t

  type env_source =
    | Env_list of (string * V.t Tensor.t) list
    | Env_table of table

  let table_of_env env : table =
    let h = Hashtbl.create (max 8 (List.length env)) in
    List.iter (fun (name, tensor) -> Hashtbl.replace h name tensor) env;
    h

  let find_tensor src name =
    match src with
    | Env_list env -> lookup name env
    | Env_table h -> Hashtbl.find_opt h name

  let make ~is_template ~const_symbol plan : t =
    let nt = Array.length plan.tensor_names and ni = Array.length plan.index_names in
    let data = Array.make nt [||] in
    let strides = Array.make nt [||] in
    let shapes = Array.make nt [||] in
    let resolved = Array.make nt false in
    let sizes = Array.make ni (-1) in
    let idx = Array.make ni 0 in
    let const_cell = ref V.zero in
    (* build the evaluator once; per cell it is slot reads and arithmetic.
       [C_cell] is distinct from [C_access], so the fused dot-product match
       below treats a Const hole exactly like the literal it instantiates
       to (neither fuses). *)
    let rec build = function
      | C_const c ->
          let v = V.of_rat c in
          fun () -> v
      | C_cell -> fun () -> !const_cell
      | C_access { tslot; islots } -> (
          match islots with
          | [||] -> fun () -> data.(tslot).(0)
          | [| i0 |] -> fun () -> data.(tslot).(idx.(i0) * strides.(tslot).(0))
          | [| i0; i1 |] ->
              fun () ->
                let st = strides.(tslot) in
                data.(tslot).((idx.(i0) * st.(0)) + (idx.(i1) * st.(1)))
          | islots ->
              let r = Array.length islots in
              fun () ->
                let st = strides.(tslot) in
                let off = ref 0 in
                for k = 0 to r - 1 do
                  off := !off + (idx.(islots.(k)) * st.(k))
                done;
                data.(tslot).(!off))
      | C_neg e ->
          let f = build e in
          fun () -> V.neg (f ())
      | C_bin (op, a, b) -> (
          let fa = build a and fb = build b in
          match op with
          | Add -> fun () -> V.add (fa ()) (fb ())
          | Sub -> fun () -> V.sub (fa ()) (fb ())
          | Mul -> fun () -> V.mul (fa ()) (fb ())
          | Div -> fun () -> V.div (fa ()) (fb ()))
      | C_sum ([| r |], C_bin (Mul, C_access a, C_access b)) ->
          (* fused dot-product loop: the dominant single-reduction shape on
             the validation path (dot, gemv, gemm rows). Reading both
             operands directly removes three closure indirections per
             reduced element. *)
          let ia = a.islots and ib = b.islots in
          let ra = Array.length ia and rb = Array.length ib in
          let ta = a.tslot and tb = b.tslot in
          fun () ->
            let n = sizes.(r) in
            let da = data.(ta) and db = data.(tb) in
            let sa = strides.(ta) and sb = strides.(tb) in
            let acc = ref V.zero in
            for v = 0 to n - 1 do
              idx.(r) <- v;
              let offa = ref 0 in
              for k = 0 to ra - 1 do
                offa := !offa + (idx.(ia.(k)) * sa.(k))
              done;
              let offb = ref 0 in
              for k = 0 to rb - 1 do
                offb := !offb + (idx.(ib.(k)) * sb.(k))
              done;
              acc := V.add !acc (V.mul da.(!offa) db.(!offb))
            done;
            !acc
      | C_sum ([| r |], inner) ->
          let f = build inner in
          fun () ->
            let n = sizes.(r) in
            let acc = ref V.zero in
            for v = 0 to n - 1 do
              idx.(r) <- v;
              acc := V.add !acc (f ())
            done;
            !acc
      | C_sum (rs, inner) ->
          let f = build inner in
          let nrs = Array.length rs in
          fun () ->
            let acc = ref V.zero in
            let rec loop k =
              if k = nrs then acc := V.add !acc (f ())
              else begin
                let r = rs.(k) in
                for v = 0 to sizes.(r) - 1 do
                  idx.(r) <- v;
                  loop (k + 1)
                done
              end
            in
            loop 0;
            !acc
    in
    let eval = build plan.root in
    let rank = Array.length plan.lhs_islots in
    (* fixed-capacity scratch: [Shape.max_rank] covers every template the
       pipeline produces; a per-program compile of a wider kernel falls
       back to an exact-size allocation (compile never fails) *)
    let cap = max rank Shape.max_rank in
    {
      plan;
      target_names = (if is_template then Array.copy plan.tensor_names else plan.tensor_names);
      lhs_target = plan.lhs_name;
      is_template;
      const_symbol;
      const_cell;
      rank;
      data;
      strides;
      shapes;
      resolved;
      sizes;
      idx;
      out_shape = Array.make cap 0;
      cursor = Array.make cap 0;
      eval;
    }

  let compile (p : program) : t = make ~is_template:false ~const_symbol:None (make_plan p)

  let compile_template ?(const_symbol = "Const") (p : program) : t =
    let plan = make_plan ~const_symbol p in
    let rank = Array.length plan.lhs_islots in
    if rank > Shape.max_rank then
      raise
        (Rank_overflow
           (Printf.sprintf "template LHS rank %d exceeds the fixed scratch capacity MAXRANK=%d"
              rank Shape.max_rank));
    make ~is_template:true ~const_symbol:(Some const_symbol) plan

  (* [rebind] retargets the compiled template at one substitution: a name
     write per tensor slot plus one constant-cell write — no allocation, no
     closure rebuild. The failure messages are byte-identical to
     [Templatize.rename]'s so the batched and instantiate-per-candidate
     paths are observably the same (QCheck-enforced). *)
  let rebind t ~mapping ~const =
    if not t.is_template then
      invalid_arg "Compile.rebind: evaluator was not built by compile_template";
    let p = t.plan in
    let is_const_name name =
      match t.const_symbol with Some s -> String.equal s name | None -> false
    in
    let target name =
      if is_const_name name then name
      else
        match lookup name mapping with
        | Some n -> n
        | None -> failwith (Printf.sprintf "Templatize.rename: no binding for symbol %s" name)
    in
    for s = 0 to Array.length p.tensor_names - 1 do
      t.target_names.(s) <- target p.tensor_names.(s)
    done;
    t.lhs_target <- target p.lhs_name;
    if p.has_cell then
      match const with
      | Some c -> t.const_cell := V.of_rat c
      | None -> failwith "Templatize.rename: template has Const but no constant was given"

  (* Per-example binding. Tensors are resolved lazily in left-to-right RHS
     access order and sizes bound per access axis, reproducing the exact
     error precedence (and messages) of [Shape.infer_index_sizes] — the
     QCheck parity property in test_taco relies on this. *)
  let bind_src t src ~lhs_shape =
    let p = t.plan in
    Array.fill t.sizes 0 (Array.length t.sizes) (-1);
    Array.fill t.resolved 0 (Array.length t.resolved) false;
    let bind_axis islot size =
      let cur = t.sizes.(islot) in
      if cur < 0 then t.sizes.(islot) <- size
      else if cur <> size then
        raise
          (Bind_error
             (Printf.sprintf "index %s used with conflicting sizes %d and %d"
                p.index_names.(islot) cur size))
    in
    let bind_access tensor shape islots =
      let r = Array.length islots in
      if Array.length shape <> r then
        raise
          (Bind_error
             (Printf.sprintf "tensor %s has rank %d but is accessed with %d indices" tensor
                (Array.length shape) r));
      for k = 0 to r - 1 do
        bind_axis islots.(k) shape.(k)
      done
    in
    Array.iter
      (fun (a : access) ->
        let name = t.target_names.(a.tslot) in
        if not t.resolved.(a.tslot) then begin
          match find_tensor src name with
          | None -> raise (Bind_error (Printf.sprintf "unknown tensor %s" name))
          | Some tensor ->
              t.data.(a.tslot) <- Tensor.unsafe_data tensor;
              t.strides.(a.tslot) <- Tensor.unsafe_strides tensor;
              t.shapes.(a.tslot) <- Tensor.unsafe_shape tensor;
              t.resolved.(a.tslot) <- true
        end;
        bind_access name t.shapes.(a.tslot) a.islots)
      p.accesses;
    (match lhs_shape with
    | None -> ()
    | Some shape -> bind_access t.lhs_target shape p.lhs_islots);
    Array.iter
      (fun islot ->
        if t.sizes.(islot) < 0 then
          raise
            (Bind_error
               (Printf.sprintf "output index %s has no determined extent" p.index_names.(islot))))
      p.lhs_islots

  (* Row-major enumeration of the output cells. The multi-index is written
     into the slot array back-to-front so that, when an LHS index repeats
     (a(i,i) = ...), the first axis wins — matching the reference
     interpreter's [List.assoc] on its index environment. [out_shape] may
     be over-capacity scratch: only the first [t.rank] entries are live. *)
  let iter_cells t ~out_shape f =
    let slots = t.plan.lhs_islots in
    let rank = t.rank in
    let total = ref 1 in
    for k = 0 to rank - 1 do
      total := !total * out_shape.(k)
    done;
    let ix = t.cursor in
    Array.fill ix 0 rank 0;
    for flat = 0 to !total - 1 do
      for k = rank - 1 downto 0 do
        t.idx.(slots.(k)) <- ix.(k)
      done;
      f flat;
      (* odometer increment, last axis fastest *)
      let k = ref (rank - 1) in
      let carry = ref true in
      while !carry && !k >= 0 do
        ix.(!k) <- ix.(!k) + 1;
        if ix.(!k) >= out_shape.(!k) then begin
          ix.(!k) <- 0;
          decr k
        end
        else carry := false
      done
    done

  let out_shape_of t = Array.map (fun islot -> t.sizes.(islot)) t.plan.lhs_islots

  let run t ~env ?lhs_shape () =
    match bind_src t (Env_list env) ~lhs_shape with
    | exception Bind_error msg -> Error msg
    | () -> (
        let out_shape = out_shape_of t in
        let total = Array.fold_left (fun acc d -> acc * d) 1 out_shape in
        let out = Array.make total V.zero in
        try
          iter_cells t ~out_shape (fun flat -> out.(flat) <- t.eval ());
          Ok (Tensor.of_flat_array out_shape out)
        with Division_by_zero -> Error "division by zero")

  let run_equal_src t src ~lhs_shape ~expected =
    match bind_src t src ~lhs_shape:(Some lhs_shape) with
    | exception Bind_error _ -> false
    | () -> (
        (* [out_shape_of] allocates because [run] hands its result to a
           tensor; here the shape is only iterated, so reuse the scratch *)
        let out_shape = t.out_shape in
        let slots = t.plan.lhs_islots in
        let rank = t.rank in
        let total = ref 1 in
        for k = 0 to rank - 1 do
          out_shape.(k) <- t.sizes.(slots.(k));
          total := !total * out_shape.(k)
        done;
        if !total <> Array.length expected then false
        else begin
          let ok = ref true in
          try
            (* no early-exit break in iter_cells: cells are cheap and the
               common case (a wrong substitution) usually fails in the first
               few cells, so raise to cut the loop *)
            iter_cells t ~out_shape (fun flat ->
                if not (V.equal (t.eval ()) expected.(flat)) then begin
                  ok := false;
                  raise Exit
                end);
            !ok
          with
          | Exit -> false
          | Division_by_zero -> false
        end)

  let run_equal t ~env ~lhs_shape ~expected = run_equal_src t (Env_list env) ~lhs_shape ~expected

  let run_equal_table t ~table ~lhs_shape ~expected =
    run_equal_src t (Env_table table) ~lhs_shape ~expected
end
