open Ast

(* Fixed capacity for the preallocated shape/stride/cursor scratch used by
   the staged evaluators (Compile, Ir.Exec). Every template the pipeline
   produces has at most four canonical indices, so 8 leaves generous
   headroom while keeping the hot loops allocation-free. *)
let max_rank = 8

type error =
  | Unknown_tensor of string
  | Arity_mismatch of { tensor : string; expected : int; found : int }
  | Index_size_conflict of { index : string; size1 : int; size2 : int }
  | Unbound_output_index of string

let error_to_string = function
  | Unknown_tensor t -> Printf.sprintf "unknown tensor %s" t
  | Arity_mismatch { tensor; expected; found } ->
      Printf.sprintf "tensor %s has rank %d but is accessed with %d indices" tensor expected found
  | Index_size_conflict { index; size1; size2 } ->
      Printf.sprintf "index %s used with conflicting sizes %d and %d" index size1 size2
  | Unbound_output_index i -> Printf.sprintf "output index %s has no determined extent" i

let ( let* ) r f = Result.bind r f

let check_access ranks tensor idxs =
  match List.assoc_opt tensor ranks with
  | None -> Error (Unknown_tensor tensor)
  | Some rank ->
      let found = List.length idxs in
      if found = rank then Ok () else Error (Arity_mismatch { tensor; expected = rank; found })

let check_arities ~ranks (p : program) =
  let rec go = function
    | Access (t, idxs) -> check_access ranks t idxs
    | Const _ -> Ok ()
    | Neg e -> go e
    | Bin (_, a, b) ->
        let* () = go a in
        go b
  in
  let lt, li = p.lhs in
  let* () = check_access ranks lt li in
  go p.rhs

let bind_sizes sizes index size =
  match List.assoc_opt index !sizes with
  | None ->
      sizes := (index, size) :: !sizes;
      Ok ()
  | Some s when s = size -> Ok ()
  | Some s -> Error (Index_size_conflict { index; size1 = s; size2 = size })

let infer_index_sizes ?lhs_shape ~shapes (p : program) =
  let sizes = ref [] in
  let bind_access tensor idxs shape =
    if Array.length shape <> List.length idxs then
      Error (Arity_mismatch { tensor; expected = Array.length shape; found = List.length idxs })
    else
      List.fold_left
        (fun acc (k, idx) ->
          let* () = acc in
          bind_sizes sizes idx shape.(k))
        (Ok ())
        (List.mapi (fun k i -> (k, i)) idxs)
  in
  let rec go = function
    | Access (t, idxs) -> (
        match List.assoc_opt t shapes with
        | None -> Error (Unknown_tensor t)
        | Some shape -> bind_access t idxs shape)
    | Const _ -> Ok ()
    | Neg e -> go e
    | Bin (_, a, b) ->
        let* () = go a in
        go b
  in
  let* () = go p.rhs in
  let lt, li = p.lhs in
  let* () =
    match lhs_shape with
    | None -> Ok ()
    | Some shape -> bind_access lt li shape
  in
  (* every LHS index must now have a size *)
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        if List.mem_assoc i !sizes then Ok () else Error (Unbound_output_index i))
      (Ok ()) li
  in
  Ok (List.rev !sizes)

let output_shape ?lhs_shape ~shapes (p : program) =
  let* sizes = infer_index_sizes ?lhs_shape ~shapes p in
  let _, li = p.lhs in
  Ok (Array.of_list (List.map (fun i -> List.assoc i sizes) li))
