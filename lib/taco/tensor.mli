(** Dense row-major n-dimensional tensors, polymorphic in the element type.

    Rank 0 is a scalar (shape [[||]], one element). Used with
    {!Stagg_util.Rat} elements for concrete execution and with symbolic
    rational functions during bounded verification. *)

type 'a t

(** [create shape v] allocates a tensor filled with [v].
    @raise Invalid_argument on a negative dimension. *)
val create : int array -> 'a -> 'a t

(** [init shape f] builds a tensor whose element at multi-index [ix] is
    [f ix]. *)
val init : int array -> (int array -> 'a) -> 'a t

val scalar : 'a -> 'a t
val shape : 'a t -> int array
val rank : 'a t -> int

(** Total number of elements. *)
val size : 'a t -> int

(** [get t ix] / [set t ix v] index with a multi-index of length [rank t].
    @raise Invalid_argument on rank mismatch or out-of-bounds. *)
val get : 'a t -> int array -> 'a

val set : 'a t -> int array -> 'a -> unit

(** [get_prefix t buf n] / [set_prefix t buf n v] index with the first [n]
    entries of [buf] — a preallocated fixed-capacity buffer the staged
    evaluators reuse across cells so the hot loops stay allocation-free.
    Checks (and error messages) are identical to {!get}/{!set} with an
    [n]-length index. *)
val get_prefix : 'a t -> int array -> int -> 'a

val set_prefix : 'a t -> int array -> int -> 'a -> unit

(** Flat row-major access. *)
val get_flat : 'a t -> int -> 'a

val set_flat : 'a t -> int -> 'a -> unit

(** The flat row-major contents (a fresh copy). *)
val to_flat_array : 'a t -> 'a array

(** [of_flat_array shape data] shares nothing with [data].
    @raise Invalid_argument if sizes disagree. *)
val of_flat_array : int array -> 'a array -> 'a t

(** Zero-copy views of the underlying buffers, for the staged evaluator
    ({!Compile}): the returned arrays are the tensor's live storage, not
    copies. Treat them as read-only. *)
val unsafe_data : 'a t -> 'a array

val unsafe_strides : 'a t -> int array
val unsafe_shape : 'a t -> int array
val copy : 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val fill : 'a t -> 'a -> unit

(** [iteri f t] calls [f ix v] for every element in row-major order. The
    multi-index array is reused between calls; copy it if you keep it. *)
val iteri : (int array -> 'a -> unit) -> 'a t -> unit

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
