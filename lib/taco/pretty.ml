open Ast
open Stagg_util

(* Precedence levels: additive = 1, multiplicative = 2, atoms = 3. *)
let prec_of = function Add | Sub -> 1 | Mul | Div -> 2

let add_access buf name idxs =
  Buffer.add_string buf name;
  match idxs with
  | [] -> ()
  | first :: rest ->
      Buffer.add_char buf '(';
      Buffer.add_string buf first;
      List.iter
        (fun i ->
          Buffer.add_string buf ", ";
          Buffer.add_string buf i)
        rest;
      Buffer.add_char buf ')'

let rec go buf parent_prec right_side e =
  match e with
  | Access (t, idxs) -> add_access buf t idxs
  | Const c ->
      if Rat.sign c < 0 then begin
        (* negative literal: parenthesize so "a - -1" never prints *)
        Buffer.add_char buf '(';
        Buffer.add_string buf (Rat.to_string c);
        Buffer.add_char buf ')'
      end
      else Buffer.add_string buf (Rat.to_string c)
  | Neg inner ->
      Buffer.add_char buf '-';
      go buf 3 false inner
  | Bin (op, l, r) ->
      let p = prec_of op in
      (* Operators parse left-associatively, so a right operand of equal
         precedence must be parenthesized to round-trip the AST exactly. *)
      let needs = p < parent_prec || (p = parent_prec && right_side) in
      if needs then Buffer.add_char buf '(';
      go buf p false l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (op_to_string op);
      Buffer.add_char buf ' ';
      go buf p true r;
      if needs then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 32 in
  go buf 0 false e;
  Buffer.contents buf

(* ---- fused rename + print ----

   The batched validator keys its verdict memo by the printed concrete
   program but never builds the concrete AST for losing substitutions, so
   it prints the template {e as if} renamed. This duplicates [go] rather
   than parameterizing it — the contract is byte-identity with
   [program_to_string (Templatize.rename p ~mapping ~const)], which a
   QCheck property in test_template pins down. *)

let rec lookup name = function
  | [] -> None
  | (k, v) :: rest -> if String.equal k name then Some v else lookup name rest

let add_const buf c =
  if Rat.sign c < 0 then begin
    Buffer.add_char buf '(';
    Buffer.add_string buf (Rat.to_string c);
    Buffer.add_char buf ')'
  end
  else Buffer.add_string buf (Rat.to_string c)

let renamed_name ~mapping ~is_const name =
  if is_const name then name
  else
    match lookup name mapping with
    | Some n -> n
    | None -> failwith (Printf.sprintf "Templatize.rename: no binding for symbol %s" name)

let rec go_renamed buf ~mapping ~const ~is_const parent_prec right_side e =
  match e with
  | Access (t, []) when is_const t -> (
      match const with
      | Some c -> add_const buf c
      | None -> failwith "Templatize.rename: template has Const but no constant was given")
  | Access (t, idxs) -> add_access buf (renamed_name ~mapping ~is_const t) idxs
  | Const c -> add_const buf c
  | Neg inner ->
      Buffer.add_char buf '-';
      go_renamed buf ~mapping ~const ~is_const 3 false inner
  | Bin (op, l, r) ->
      let p = prec_of op in
      let needs = p < parent_prec || (p = parent_prec && right_side) in
      if needs then Buffer.add_char buf '(';
      go_renamed buf ~mapping ~const ~is_const p false l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (op_to_string op);
      Buffer.add_char buf ' ';
      go_renamed buf ~mapping ~const ~is_const p true r;
      if needs then Buffer.add_char buf ')'

let program_to_string_renamed ~mapping ~const ~is_const (p : program) =
  let name, idxs = p.lhs in
  let buf = Buffer.create 48 in
  add_access buf (renamed_name ~mapping ~is_const name) idxs;
  Buffer.add_string buf " = ";
  go_renamed buf ~mapping ~const ~is_const 0 false p.rhs;
  Buffer.contents buf

(* The whole statement goes through one buffer: this string is the §4.4
   canonical template key, built once per validated candidate. *)
let program_to_string (p : program) =
  let name, idxs = p.lhs in
  let buf = Buffer.create 48 in
  add_access buf name idxs;
  Buffer.add_string buf " = ";
  go buf 0 false p.rhs;
  Buffer.contents buf

let pp_expr fmt e = Format.pp_print_string fmt (expr_to_string e)
let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
