type 'a t = { shape : int array; strides : int array; data : 'a array }

let compute_size shape = Array.fold_left (fun acc d -> acc * d) 1 shape

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let check_shape shape =
  Array.iter (fun d -> if d < 0 then invalid_arg "Tensor: negative dimension") shape

let create shape v =
  check_shape shape;
  { shape = Array.copy shape; strides = compute_strides shape; data = Array.make (compute_size shape) v }

let scalar v = create [||] v

let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let size t = Array.length t.data

let offset t ix =
  if Array.length ix <> Array.length t.shape then
    invalid_arg
      (Printf.sprintf "Tensor: rank mismatch (index rank %d, tensor rank %d)" (Array.length ix)
         (Array.length t.shape));
  let off = ref 0 in
  for k = 0 to Array.length ix - 1 do
    if ix.(k) < 0 || ix.(k) >= t.shape.(k) then
      invalid_arg
        (Printf.sprintf "Tensor: index %d out of bounds for axis %d (size %d)" ix.(k) k t.shape.(k));
    off := !off + (ix.(k) * t.strides.(k))
  done;
  !off

let get t ix = t.data.(offset t ix)
let set t ix v = t.data.(offset t ix) <- v

(* Prefix variants: the multi-index is the first [n] entries of [ix], a
   preallocated fixed-capacity buffer (Shape.max_rank) reused across cells
   by the staged evaluators. Same checks and messages as [offset]. *)
let offset_prefix t ix n =
  if n <> Array.length t.shape then
    invalid_arg
      (Printf.sprintf "Tensor: rank mismatch (index rank %d, tensor rank %d)" n
         (Array.length t.shape));
  let off = ref 0 in
  for k = 0 to n - 1 do
    if ix.(k) < 0 || ix.(k) >= t.shape.(k) then
      invalid_arg
        (Printf.sprintf "Tensor: index %d out of bounds for axis %d (size %d)" ix.(k) k t.shape.(k));
    off := !off + (ix.(k) * t.strides.(k))
  done;
  !off

let get_prefix t ix n = t.data.(offset_prefix t ix n)
let set_prefix t ix n v = t.data.(offset_prefix t ix n) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v
let to_flat_array t = Array.copy t.data

let of_flat_array shape data =
  check_shape shape;
  if compute_size shape <> Array.length data then
    invalid_arg "Tensor.of_flat_array: size mismatch";
  { shape = Array.copy shape; strides = compute_strides shape; data = Array.copy data }

let unsafe_data t = t.data
let unsafe_strides t = t.strides
let unsafe_shape t = t.shape

let copy t = { t with shape = Array.copy t.shape; data = Array.copy t.data }

let map f t = { shape = Array.copy t.shape; strides = Array.copy t.strides; data = Array.map f t.data }

let equal eq a b = a.shape = b.shape && Array.for_all2 (fun x y -> eq x y) a.data b.data

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let init shape f =
  check_shape shape;
  let strides = compute_strides shape in
  let n = Array.length shape in
  let ix = Array.make n 0 in
  let data =
    Array.init (compute_size shape) (fun flat ->
        let rem = ref flat in
        for k = 0 to n - 1 do
          ix.(k) <- !rem / strides.(k);
          rem := !rem mod strides.(k)
        done;
        f ix)
  in
  { shape = Array.copy shape; strides; data }

let iteri f t =
  let n = Array.length t.shape in
  let ix = Array.make n 0 in
  for flat = 0 to Array.length t.data - 1 do
    let rem = ref flat in
    for k = 0 to n - 1 do
      ix.(k) <- !rem / t.strides.(k);
      rem := !rem mod t.strides.(k)
    done;
    f ix t.data.(flat)
  done

let pp pp_elt fmt t =
  let dims = t.shape |> Array.to_list |> List.map string_of_int |> String.concat "x" in
  Format.fprintf fmt "@[<hov 2>tensor<%s> [" (if dims = "" then "scalar" else dims);
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ";@ ";
      pp_elt fmt v)
    t.data;
  Format.fprintf fmt "]@]"
