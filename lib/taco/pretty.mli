(** Pretty-printing of TACO programs back to index-notation syntax.

    Parentheses are inserted only where required by precedence, so
    [parse (print p)] is the identity on ASTs (tested by round-trip
    properties). *)

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

(** [program_to_string_renamed ~mapping ~const ~is_const template] prints
    the template {e as if} instantiated: symbols are looked up in
    [mapping], rank-0 accesses satisfying [is_const] print as the literal
    [const] (parenthesized when negative, like any literal), names
    satisfying [is_const] otherwise pass through unmapped. Byte-identical
    to [program_to_string (Templatize.rename template ~mapping ~const)] —
    QCheck-pinned — without building the concrete AST. Raises the same
    [Failure]s as [rename] on a missing binding or constant. *)
val program_to_string_renamed :
  mapping:(string * string) list ->
  const:Stagg_util.Rat.t option ->
  is_const:(string -> bool) ->
  Ast.program ->
  string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
