(** Static well-formedness and shape inference for TACO programs.

    Given the ranks (and optionally concrete dimension sizes) of the tensors
    a program refers to, checks that every access uses the declared arity,
    that index variables are used with consistent sizes, and computes the
    sizes of all index variables and of the output tensor. *)

(** Fixed capacity of the preallocated index/shape scratch buffers in the
    staged evaluators ({!Compile}, {!Ir.Exec}). Programs whose LHS rank or
    access rank exceeds this are rejected with a clean error by the
    template compiler (and handled with an exact-size fallback by the
    per-program compiler) instead of corrupting scratch. *)
val max_rank : int

type error =
  | Unknown_tensor of string
  | Arity_mismatch of { tensor : string; expected : int; found : int }
  | Index_size_conflict of { index : string; size1 : int; size2 : int }
  | Unbound_output_index of string
      (** an LHS index that appears nowhere on the RHS and has no declared
          size (nothing determines its extent) *)

val error_to_string : error -> string

(** [check_arities ~ranks p] verifies every access against [ranks]
    (a [tensor name -> rank] association); tensors absent from [ranks] are
    reported. *)
val check_arities : ranks:(string * int) list -> Ast.program -> (unit, error) result

(** [infer_index_sizes ~shapes p] computes the size of every index variable
    from the concrete shapes of the RHS tensors ([tensor name -> dimension
    sizes]). [lhs_shape], if given, also binds the LHS indices (needed for
    broadcast indices that only occur on the left). *)
val infer_index_sizes :
  ?lhs_shape:int array ->
  shapes:(string * int array) list ->
  Ast.program ->
  ((string * int) list, error) result

(** [output_shape ~shapes p] is the shape of the LHS tensor implied by the
    RHS tensor shapes. *)
val output_shape :
  ?lhs_shape:int array -> shapes:(string * int array) list -> Ast.program -> (int array, error) result
