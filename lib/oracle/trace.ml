(* Trace-guided candidate oracle: run the kernel on symbolic leaves, fold
   the resulting expression DAGs back into TACO einsum templates. See the
   .mli for the architecture and the determinism argument. *)

open Stagg_util
module A = Stagg_minic.Ast
module Sg = Stagg_minic.Signature
module T = Stagg_taco.Ast

type dag =
  | Leaf of string * int
  | Cst of Rat.t
  | Neg of dag
  | Bin of T.op * dag * dag

let rec equal_dag d1 d2 =
  match (d1, d2) with
  | Leaf (p1, k1), Leaf (p2, k2) -> String.equal p1 p2 && k1 = k2
  | Cst c1, Cst c2 -> Rat.equal c1 c2
  | Neg a, Neg b -> equal_dag a b
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
      T.equal_op o1 o2 && equal_dag a1 a2 && equal_dag b1 b2
  | _ -> false

let rec pp_dag fmt = function
  | Leaf (p, k) -> Format.fprintf fmt "%s[%d]" p k
  | Cst c -> Rat.pp fmt c
  | Neg d -> Format.fprintf fmt "(- %a)" pp_dag d
  | Bin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_dag a (T.op_to_string op) pp_dag b

module TV = struct
  type t = Conc of Rat.t | Sym of dag

  let dag_of = function Conc r -> Cst r | Sym d -> d
  let leaf p k = Sym (Leaf (p, k))
  let zero = Conc Rat.zero
  let one = Conc Rat.one
  let of_int n = Conc (Rat.of_int n)
  let of_rat r = Conc r

  (* Only value-preserving simplifications: anything more (e.g. [0 * x = 0],
     [1 * x = x]) would still be sound, but keeping the DAG a literal record
     of the arithmetic performed makes the differential parity suite a real
     bit-for-bit statement about the interpreter, not about a simplifier. *)
  let add a b =
    match (a, b) with
    | Conc x, Conc y -> Conc (Rat.add x y)
    | Conc z, Sym d when Rat.is_zero z -> Sym d
    | Sym d, Conc z when Rat.is_zero z -> Sym d
    | _ -> Sym (Bin (T.Add, dag_of a, dag_of b))

  let sub a b =
    match (a, b) with
    | Conc x, Conc y -> Conc (Rat.sub x y)
    | Sym d, Conc z when Rat.is_zero z -> Sym d
    | Conc z, Sym d when Rat.is_zero z -> Sym (Neg d)
    | _ -> Sym (Bin (T.Sub, dag_of a, dag_of b))

  let mul a b =
    match (a, b) with
    | Conc x, Conc y -> Conc (Rat.mul x y)
    | _ -> Sym (Bin (T.Mul, dag_of a, dag_of b))

  let div a b =
    match (a, b) with
    | _, Conc z when Rat.is_zero z -> raise Division_by_zero
    | Conc x, Conc y -> Conc (Rat.div x y)
    | _ -> Sym (Bin (T.Div, dag_of a, dag_of b))

  let neg = function Conc x -> Conc (Rat.neg x) | Sym d -> Sym (Neg d)

  let equal a b =
    match (a, b) with
    | Conc x, Conc y -> Rat.equal x y
    | Sym d1, Sym d2 -> equal_dag d1 d2
    | _ -> false

  let to_int = function Conc r -> Rat.to_int r | Sym _ -> None

  let compare_concrete a b =
    match (a, b) with
    | Conc x, Conc y -> Some (Rat.compare x y)
    | _ -> None

  let pp fmt = function Conc r -> Rat.pp fmt r | Sym d -> pp_dag fmt d
end

module I = Stagg_minic.Interp.Make (TV)

type refusal =
  | Scan of string
  | Trace_failed of string
  | Output_unwritten
  | Output_read of string
  | No_generic_cell
  | No_generic_term
  | Inconsistent of string

let refusal_to_string = function
  | Scan base ->
      Printf.sprintf
        "trace: scan unsupported (store to '%s' reads an earlier iteration's \
         write)"
        base
  | Trace_failed e -> "trace: execution failed: " ^ e
  | Output_unwritten -> "trace: kernel never writes its output parameter"
  | Output_read p ->
      Printf.sprintf
        "trace: output depends on the initial contents of output buffer '%s'" p
  | No_generic_cell ->
      "trace: no written output cell sits at pairwise-distinct loop indices"
  | No_generic_term ->
      "trace: a summand group admits no per-iteration access pattern"
  | Inconsistent why -> "trace: " ^ why

(* ------------------------------------------------------------------ *)
(* Tracing layer                                                       *)
(* ------------------------------------------------------------------ *)

let trace_cells (func : A.func) (sg : Sg.t) ~sizes =
  try
    let arg_of (p : A.param) =
      match List.assoc_opt p.A.pname sg.Sg.args with
      | Some (Sg.Size name) -> (
          match List.assoc_opt name sizes with
          | Some n -> I.Scalar (TV.of_int n)
          | None -> failwith (Printf.sprintf "no binding for size '%s'" name))
      | Some Sg.Scalar_data -> I.Scalar (TV.leaf p.A.pname 0)
      | Some (Sg.Arr _ as spec) ->
          let n = Sg.n_cells ~sizes spec in
          I.Array (Array.init n (fun k -> TV.leaf p.A.pname k))
      | None ->
          failwith
            (Printf.sprintf "parameter '%s' missing from signature" p.A.pname)
    in
    let args = List.map arg_of func.A.params in
    match I.run func ~args with
    | Error e -> Error (Trace_failed e)
    | Ok () -> (
        let rec out_arg ps args =
          match (ps, args) with
          | (p : A.param) :: ps', a :: args' ->
              if String.equal p.A.pname sg.Sg.out then a else out_arg ps' args'
          | _ -> failwith "output parameter not bound"
        in
        match out_arg func.A.params args with
        | I.Array cells -> Ok (Array.map TV.dag_of cells)
        | I.Scalar _ -> failwith "output parameter is not an array")
  with Failure e -> Error (Trace_failed e)

let rec eval_dag ~inputs = function
  | Leaf (p, k) -> (List.assoc p inputs).(k)
  | Cst c -> c
  | Neg d -> Rat.neg (eval_dag ~inputs d)
  | Bin (op, a, b) -> (
      let x = eval_dag ~inputs a and y = eval_dag ~inputs b in
      match op with
      | T.Add -> Rat.add x y
      | T.Sub -> Rat.sub x y
      | T.Mul -> Rat.mul x y
      | T.Div -> Rat.div x y)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  vmap : (int * string) list;  (** probe value -> loop variable (injective) *)
  shapes : (string * int array) list;  (** array parameter -> shape *)
  free : string list;  (** LHS index variables of the representative cell *)
}

(* Row-major inverse of [Signature.shape] linearization. *)
let decode_offset shape off =
  let n = Array.length shape in
  if Array.exists (fun d -> d <= 0) shape then None
  else
    let comps = Array.make n 0 in
    let rec go k off =
      if k < 0 then if off = 0 then Some comps else None
      else begin
        comps.(k) <- off mod shape.(k);
        go (k - 1) (off / shape.(k))
      end
    in
    go (n - 1) off

(* Decode one leaf into a tensor access, returning the (variable, axis
   extent) pair of every component. Fails when a component value is not a
   probe value — e.g. a constant index like [A[0]], which TACO index
   notation cannot express. *)
let decode_leaf ctx name off =
  match List.assoc_opt name ctx.shapes with
  | None -> if off = 0 then Some (T.Access (name, []), []) else None
  | Some shape -> (
      if Array.length shape = 0 then
        if off = 0 then Some (T.Access (name, []), []) else None
      else
        match decode_offset shape off with
        | None -> None
        | Some comps ->
            let rec map k idxs vars =
              if k = Array.length comps then
                Some (T.Access (name, List.rev idxs), List.rev vars)
              else
                match List.assoc_opt comps.(k) ctx.vmap with
                | None -> None
                | Some v -> map (k + 1) (v :: idxs) ((v, shape.(k)) :: vars)
            in
            map 0 [] [])

(* Split an additive DAG into signed summands, left-to-right. *)
let flatten d =
  let rec go sign d acc =
    match d with
    | Bin (T.Add, a, b) -> go sign b (go sign a acc)
    | Bin (T.Sub, a, b) -> go (not sign) b (go sign a acc)
    | Neg d -> go (not sign) d acc
    | t -> (sign, t) :: acc
  in
  List.rev (go true d [])

(* Offset-erased structural key: two summands of one unrolled reduction
   share it, summands of genuinely different terms do not. *)
let skeleton_key d =
  let b = Buffer.create 64 in
  let rec go = function
    | Leaf (p, _) ->
        Buffer.add_char b 'L';
        Buffer.add_string b p;
        Buffer.add_char b ';'
    | Cst c ->
        Buffer.add_char b 'C';
        Buffer.add_string b (Format.asprintf "%a" Rat.pp c);
        Buffer.add_char b ';'
    | Neg d ->
        Buffer.add_string b "N(";
        go d;
        Buffer.add_char b ')'
    | Bin (op, x, y) ->
        Buffer.add_char b 'B';
        Buffer.add_string b (T.op_to_string op);
        Buffer.add_char b '(';
        go x;
        Buffer.add_char b ',';
        go y;
        Buffer.add_char b ')'
  in
  go d;
  Buffer.contents b

(* Group summands by (sign, skeleton), preserving first-occurrence order. *)
let group_terms terms =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (sign, t) ->
      let key = (sign, skeleton_key t) in
      match Hashtbl.find_opt tbl key with
      | Some r -> r := t :: !r
      | None ->
          let r = ref [ t ] in
          Hashtbl.add tbl key r;
          order := (sign, r) :: !order)
    terms;
  List.rev_map (fun (sign, r) -> (sign, List.rev !r)) !order

(* Rename every index variable not in [free] by first appearance, fresh
   names drawn from r0, r1, ... skipping collisions with [free]. This is
   the canonical form under which decodes are compared, both across the
   alternative decodes of one group and across the two probe runs. *)
let canon_expr free e =
  let bound =
    List.filter (fun v -> not (List.mem v free)) (T.indices_of_expr e)
  in
  let k = ref 0 in
  let mapping =
    List.map
      (fun v ->
        let rec fresh () =
          let c = "r" ^ string_of_int !k in
          incr k;
          if List.mem c free then fresh () else c
        in
        (v, fresh ()))
      bound
  in
  let rec sub = function
    | T.Access (t, is) ->
        T.Access
          ( t,
            List.map
              (fun i ->
                match List.assoc_opt i mapping with Some r -> r | None -> i)
              is )
    | T.Const _ as c -> c
    | T.Neg e -> T.Neg (sub e)
    | T.Bin (op, a, b) -> T.Bin (op, sub a, sub b)
  in
  sub e

(* Decode one summand. The returned (var, extent) list carries every
   index variable whose multiplicity the ENCLOSING group must still
   account for: leaf components at this multiplicative level, plus
   whatever a nested additive sub-extraction could not consume itself. A
   reduction already validated by a nested group's own count check is
   consumed there and not propagated — so [sum_k A(k) * (sum_j B(j))]
   counts only k here, while [sum_i (A(i) - B(i))^2] propagates i out of
   its singleton sub-groups and counts it once. *)
let rec decode_term ctx (d : dag) =
  match d with
  | Leaf (p, k) -> decode_leaf ctx p k
  | Cst c -> Some (T.Const c, [])
  | Neg d ->
      Option.map (fun (e, vs) -> (T.Neg e, vs)) (decode_term ctx d)
  | Bin ((T.Mul | T.Div) as op, a, b) -> (
      match (decode_term ctx a, decode_term ctx b) with
      | Some (ea, va), Some (eb, vb) -> Some (T.Bin (op, ea, eb), va @ vb)
      | _ -> None)
  | Bin ((T.Add | T.Sub), _, _) -> (
      match extract_expr ctx d with
      | Ok (e, unconsumed) -> Some (e, unconsumed)
      | Error _ -> None)

and extract_expr ctx (d : dag) : (T.expr * (string * int) list, refusal) result
    =
  let groups = group_terms (flatten d) in
  let rec build acc vars = function
    | [] -> (
        match acc with
        | Some e -> Ok (e, List.rev vars)
        | None -> Error No_generic_term)
    | (sign, ts) :: rest -> (
        match group_expr ctx ts with
        | Error r -> Error r
        | Ok (e, vs) ->
            let acc' =
              match (acc, sign) with
              | None, true -> Some e
              | None, false -> Some (T.Neg e)
              | Some a, true -> Some (T.Bin (T.Add, a, e))
              | Some a, false -> Some (T.Bin (T.Sub, a, e))
            in
            build acc' (List.rev_append vs vars) rest)
  in
  build None [] groups

(* Re-roll one summand group of size n. A decode is viable when its fresh
   (non-free) index variables have consistent axis extents whose product
   is exactly n — i.e. the group is the full unrolling of that reduction
   nest. The probe sizes are pairwise distinct, so the count equation is
   discriminating; what it cannot discriminate, the second probe run
   does. *)
and group_expr ctx ts : (T.expr * (string * int) list, refusal) result =
  let n = List.length ts in
  match ts with
  | [ t ] -> (
      (* A singleton group ran exactly once: its variables are real but
         unconsumed — the enclosing group (if any) must count them. *)
      match decode_term ctx t with
      | Some (e, vs) -> Ok (e, vs)
      | None -> Error No_generic_term)
  | _ -> (
      let decs = List.filter_map (decode_term ctx) ts in
      if decs = [] then Error No_generic_term
      else
        let fresh_vars vs =
          let rec go seen acc = function
            | [] -> Some (List.rev acc)
            | (v, ext) :: rest ->
                if List.mem v ctx.free then go seen acc rest
                else (
                  match List.assoc_opt v seen with
                  | Some e -> if e = ext then go seen acc rest else None
                  | None -> go ((v, ext) :: seen) ((v, ext) :: acc) rest)
          in
          go [] [] vs
        in
        let viable =
          List.filter_map
            (fun (e, vs) ->
              match fresh_vars vs with
              | None | Some [] -> None
              | Some nvs ->
                  let prod =
                    List.fold_left (fun p (_, ext) -> p * ext) 1 nvs
                  in
                  if prod = n then Some e else None)
            decs
        in
        match viable with
        | e :: rest ->
            let c = canon_expr ctx.free e in
            if
              List.for_all
                (fun e' -> T.equal_expr c (canon_expr ctx.free e'))
                rest
            then Ok (e, []) (* the count check consumed the fresh vars *)
            else Error (Inconsistent "ambiguous reduction decode in a summand group")
        | [] ->
            (* Constant multiplicity: n identical iteration-independent
               summands, e.g. R[i] = A[i] + A[i]. A size-dependent n is
               killed by the cross-run comparison. *)
            let no_fresh vs =
              List.for_all (fun (v, _) -> List.mem v ctx.free) vs
            in
            if List.length decs = n then (
              match decs with
              | (e0, vs0) :: rest
                when no_fresh vs0
                     && List.for_all
                          (fun (e, vs) -> no_fresh vs && T.equal_expr e e0)
                          rest ->
                  Ok (T.Bin (T.Mul, T.Const (Rat.of_int n), e0), [])
              | _ ->
                  Error
                    (Inconsistent
                       "summand group admits no uniform per-iteration decode"))
            else
              Error
                (Inconsistent
                   "summand group admits no uniform per-iteration decode"))

let rec mentions_param name = function
  | Leaf (p, _) -> String.equal p name
  | Cst _ -> false
  | Neg d -> mentions_param name d
  | Bin (_, a, b) -> mentions_param name a || mentions_param name b

let canon_program (p : T.program) : T.program =
  let _, lhs_idxs = p.T.lhs in
  { p with T.rhs = canon_expr lhs_idxs p.T.rhs }

(* One probe run: trace under an injective value assignment, pick the
   representative output cell, extract. The representative is the written
   cell whose decoded index tuple consists of pairwise-distinct loop
   variables and is lexicographically least in [ft_loop_vars] position
   order — a rule that names the SAME cell under both probe assignments. *)
let run_extract (func : A.func) (sg : Sg.t) ~loop_vars ~var_value ~size_value =
  let size_names = Sg.size_names sg in
  let sizes = List.mapi (fun k s -> (s, size_value k)) size_names in
  let vmap = List.mapi (fun i v -> (var_value i, v)) loop_vars in
  match trace_cells func sg ~sizes with
  | Error r -> Error r
  | Ok dags -> (
      let out = sg.Sg.out in
      let shape =
        try Sg.shape ~sizes (Sg.out_spec sg) with Failure _ -> [| -1 |]
      in
      if shape = [| -1 |] then Error (Trace_failed "unresolvable output shape")
      else
        let shapes =
          List.filter_map
            (fun (name, sp) ->
              match sp with
              | Sg.Arr _ -> Some (name, Sg.shape ~sizes sp)
              | Sg.Size _ | Sg.Scalar_data -> None)
            sg.Sg.args
        in
        let written = ref [] in
        Array.iteri
          (fun off d ->
            match d with
            | Leaf (p, k) when String.equal p out && k = off -> ()
            | _ -> written := (off, d) :: !written)
          dags;
        let written = List.rev !written in
        if written = [] then Error Output_unwritten
        else
          let pos v =
            let rec go k = function
              | [] -> max_int
              | v' :: rest -> if String.equal v v' then k else go (k + 1) rest
            in
            go 0 loop_vars
          in
          let candidates =
            List.filter_map
              (fun (off, d) ->
                match decode_offset shape off with
                | None -> None
                | Some comps ->
                    let rec go k vars =
                      if k = Array.length comps then Some (List.rev vars)
                      else
                        match List.assoc_opt comps.(k) vmap with
                        | None -> None
                        | Some v -> go (k + 1) (v :: vars)
                    in
                    (match go 0 [] with
                    | Some vars
                      when List.length (List.sort_uniq compare vars)
                           = List.length vars ->
                        Some (d, vars, List.map pos vars)
                    | _ -> None))
              written
          in
          match candidates with
          | [] -> Error No_generic_cell
          | first :: rest ->
              let d, vars, _ =
                List.fold_left
                  (fun ((_, _, rb) as best) ((_, _, rc) as c) ->
                    if compare rc rb < 0 then c else best)
                  first rest
              in
              if mentions_param out d then Error (Output_read out)
              else
                let ctx = { vmap; shapes; free = vars } in
                (match extract_expr ctx d with
                | Error r -> Error r
                | Ok (rhs, _) ->
                    Ok (canon_program { T.lhs = (out, vars); T.rhs = rhs })))

let skeletons (func : A.func) (sg : Sg.t) =
  let facts = Stagg_minic.Facts.analyze func in
  (* The scan class comes first and is independent of extraction: Depend
     already proved the store reads an earlier iteration's write, which no
     einsum expresses — silently mis-tracing it as a reduction is the bug
     this refusal exists to prevent. *)
  let scan =
    List.find_map
      (fun (s : Stagg_minic.Depend.store_info) ->
        if List.exists (fun (_, k) -> k > 0) s.Stagg_minic.Depend.st_stencils
        then Some s.Stagg_minic.Depend.st_base
        else None)
      facts.Stagg_minic.Facts.ft_stores
  in
  match scan with
  | Some base -> Error (Scan base)
  | None -> (
      let loop_vars = facts.Stagg_minic.Facts.ft_loop_vars in
      let nvars = List.length loop_vars in
      let r1 =
        run_extract func sg ~loop_vars
          ~var_value:(fun i -> i + 1)
          ~size_value:(fun k -> nvars + 2 + k)
      in
      let r2 =
        run_extract func sg ~loop_vars
          ~var_value:(fun i -> 2 * (nvars - i))
          ~size_value:(fun k -> (2 * nvars) + 2 + k)
      in
      match (r1, r2) with
      | Error r, _ | _, Error r -> Error r
      | Ok p1, Ok p2 ->
          if T.equal_program p1 p2 then Ok [ p1 ]
          else
            Error
              (Inconsistent "the two probe runs decode to different programs"))
