(** Trace-guided candidate oracle (no LLM in the loop).

    Instantiates the functorized mini-C interpreter
    ({!Stagg_minic.Interp.Make}) at a {e tracing} value domain whose values
    carry symbolic expression DAGs: a leaf is a flat read of an input
    parameter cell, an interior node an exact-rational arithmetic op.
    Running a kernel once on leaf-initialized buffers leaves, in every
    output cell, a DAG recording precisely how that cell was computed —
    accumulation loops unroll into explicit sums, so no widening or
    fixpoint is needed.

    The extractor then folds the DAG of one {e generic} output cell back
    into a TACO einsum program: flat leaf offsets are decoded through the
    tensor {!Stagg_minic.Signature.shape} into per-axis components, and
    components are mapped to loop-variable names through an injective
    value assignment chosen before the run. Unrolled reductions are
    re-rolled by grouping structurally identical summands and checking
    that the group size equals the product of the candidate reduction
    indices' extents. Everything is repeated under a second, independent
    value assignment; only extractions on which both runs agree (after
    canonicalizing reduction-index names) are emitted, which de-aliases
    coincidences such as [A\[i+j\]] or size-dependent constants.

    Determinism: both probe assignments are fixed functions of the
    signature and of [Facts.ft_loop_vars] order — no randomness, no
    ambient state — so [skeletons] is a pure function of the kernel text.
    Emitted templates are {e candidates}, not answers: downstream they are
    templatized, fed to the grammar learner exactly like parsed LLM
    responses, and every instantiation is still validated against I/O
    examples, so an over-eager trace can waste search but never corrupt a
    result. *)

open Stagg_util

(** Symbolic expression DAG carried by traced values. [Leaf (p, k)] is the
    initial content of flat cell [k] of parameter [p] (offset in row-major
    cells; scalar data parameters use offset 0). *)
type dag =
  | Leaf of string * int
  | Cst of Rat.t
  | Neg of dag
  | Bin of Stagg_taco.Ast.op * dag * dag

val equal_dag : dag -> dag -> bool
val pp_dag : Format.formatter -> dag -> unit

(** The tracing value domain. Concrete rationals stay concrete (sizes,
    loop counters, constant folding); anything touched by a leaf becomes
    symbolic. Only value-preserving simplifications are performed
    ([0 + x = x], [x - 0 = x], [0 - x = -x], constant folding), so a
    traced DAG evaluates bit-for-bit like the rational interpreter. *)
module TV : sig
  include Stagg_util.Value.S

  val leaf : string -> int -> t
  val dag_of : t -> dag
end

(** Why the tracer declined to emit a template. Structured — callers
    surface these as warnings, never as panics or bogus templates. *)
type refusal =
  | Scan of string
      (** the store to this base reads an earlier iteration's write
          ({!Stagg_minic.Depend} stencil class) — not an einsum *)
  | Trace_failed of string  (** the traced execution itself errored *)
  | Output_unwritten  (** no store ever reached the output parameter *)
  | Output_read of string
      (** the result depends on the output buffer's initial contents *)
  | No_generic_cell
      (** no written output cell sits at pairwise-distinct loop indices *)
  | No_generic_term  (** a summand group has no per-iteration decode *)
  | Inconsistent of string  (** decodes disagree (within or across runs) *)

(** Human-readable form; always prefixed ["trace: "], and the {!Scan}
    case always contains ["trace: scan unsupported"]. *)
val refusal_to_string : refusal -> string

(** [trace_cells f sg ~sizes] runs [f] once on leaf-initialized buffers
    with the given concrete dimension sizes and returns the final DAG of
    every cell of the output parameter (including untouched cells, which
    remain their own [Leaf]). This is the raw tracing layer, exposed for
    the differential test battery. *)
val trace_cells :
  Stagg_minic.Ast.func ->
  Stagg_minic.Signature.t ->
  sizes:(string * int) list ->
  (dag array, refusal) result

(** Evaluate a DAG at concrete inputs. [inputs] must bind every parameter
    mentioned by a leaf to its flat cell array (scalars as 1-cell arrays).
    @raise Not_found on an unbound parameter.
    @raise Division_by_zero as exact rational division does. *)
val eval_dag : inputs:(string * Rat.t array) list -> dag -> Rat.t

(** [skeletons f sg] traces [f] under two independent probe assignments
    and extracts the einsum candidate templates both agree on. The
    resulting programs are over [f]'s real parameter names with reduction
    indices canonically renamed — ready to be consumed exactly like
    parsed LLM candidates. *)
val skeletons :
  Stagg_minic.Ast.func ->
  Stagg_minic.Signature.t ->
  (Stagg_taco.Ast.program list, refusal) result
