let ( let* ) = Result.bind

let parse_dims s =
  (* "[N,M]" -> ["N"; "M"] *)
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then Error (Printf.sprintf "expected [dims], got %s" s)
  else begin
    let inner = String.trim (String.sub s 1 (n - 2)) in
    if inner = "" then Ok []
    else
      Ok (List.map String.trim (String.split_on_char ',' inner))
  end

let parse_entry s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "entry %S has no ':'" s)
  | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let kind = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if name = "" then Error (Printf.sprintf "entry %S has an empty name" s)
      else if String.equal kind "size" then Ok (name, `Spec (Signature.Size name))
      else if String.equal kind "scalar" then Ok (name, `Spec Signature.Scalar_data)
      else if String.equal kind "out" then Ok (name, `Out [])
      else if String.length kind > 3 && String.sub kind 0 3 = "out" then
        let* dims = parse_dims (String.sub kind 3 (String.length kind - 3)) in
        Ok (name, `Out dims)
      else if String.length kind > 3 && String.sub kind 0 3 = "arr" then
        let* dims = parse_dims (String.sub kind 3 (String.length kind - 3)) in
        Ok (name, `Spec (Signature.Arr dims))
      else Error (Printf.sprintf "unknown kind %S (size | scalar | arr[..] | out[..])" kind)

let split_top s =
  (* split on commas not inside brackets *)
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ']' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts |> List.map String.trim |> List.filter (fun p -> p <> "")

let to_string (s : Signature.t) =
  let dims d = Printf.sprintf "[%s]" (String.concat "," d) in
  s.Signature.args
  |> List.map (fun (name, spec) ->
         match spec with
         | Signature.Size _ -> name ^ ":size"
         | Signature.Scalar_data -> name ^ ":scalar"
         | Signature.Arr d ->
             if String.equal name s.Signature.out then name ^ ":out" ^ dims d
             else name ^ ":arr" ^ dims d)
  |> String.concat ","

let parse spec =
  let entries = split_top spec in
  if entries = [] then Error "empty signature specification"
  else begin
    let* parsed =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* p = parse_entry e in
          Ok (p :: acc))
        (Ok []) entries
    in
    let parsed = List.rev parsed in
    let outs = List.filter_map (fun (n, k) -> match k with `Out d -> Some (n, d) | _ -> None) parsed in
    match outs with
    | [ (out, _dims) ] ->
        let args =
          List.map
            (fun (n, k) ->
              match k with
              | `Spec sp -> (n, sp)
              | `Out d -> (n, Signature.Arr d))
            parsed
        in
        (* every dimension name must be declared as a size *)
        let sizes =
          List.filter_map (fun (n, k) -> match k with `Spec (Signature.Size _) -> Some n | _ -> None) parsed
        in
        let all_dims =
          List.concat_map
            (fun (_, k) -> match k with `Spec (Signature.Arr d) | `Out d -> d | _ -> [])
            parsed
        in
        let* () =
          List.fold_left
            (fun acc d ->
              let* () = acc in
              if List.mem d sizes then Ok ()
              else Error (Printf.sprintf "dimension %S is not declared as a size parameter" d))
            (Ok ()) all_dims
        in
        Ok { Signature.args; out }
    | [] -> Error "no output parameter (mark one as out[...])"
    | _ -> Error "more than one output parameter"
  end
