(** Loop-carried dependence classification of stores (GCD + Banerjee).

    Consumes {!Recover.analyze}'s affine access summaries and decides, per
    store, whether the surrounding loop nest computes it pointwise (every
    enclosing counter appears in the index polynomial), as a reduction
    over the counters missing from it, or in a shape the tensor-lifting
    pipeline does not support. Same-base load/store pairs are additionally
    screened with a GCD test and a sign-based Banerjee bound on the
    distance polynomial, flagging constant stencil offsets and possible
    aliasing at loop-varying distance. *)

type classification =
  | Pointwise  (** the index mentions every enclosing loop counter *)
  | Reduction of string list  (** counters summed over (absent from the index) *)
  | Unknown of string  (** analysis could not classify; the reason *)

type store_info = {
  st_base : string;  (** parameter stored into *)
  st_loop_vars : string list;  (** enclosing loop counters, outermost first *)
  st_index : Affine.t option;  (** recovered index polynomial *)
  st_class : classification;
  st_stencils : (string * int) list;
      (** same-base loads at a constant nonzero distance [store − load];
          a positive distance is a loop-carried flow dependence (scan) *)
  st_may_alias : string list;
      (** same-base loads at a loop-varying distance not proven
          independent by either test *)
}

val classification_to_string : classification -> string
val pp_store : Format.formatter -> store_info -> unit

(** [linear_coeff p v] — [Some c] iff [p] is exactly [c·v + p[v:=0]]
    (linear in [v]); the coefficient may be symbolic ([i*M] gives [M]). *)
val linear_coeff : Affine.t -> string -> Affine.t option

(** [gcd_independent d ~loop_vars] — true iff [d = 0] provably has no
    integer solution: all loop-var coefficients are integers, the
    remainder is a constant [k], and [gcd] of the coefficients does not
    divide [k]. Conservative ([false]) on symbolic coefficients. *)
val gcd_independent : Affine.t -> loop_vars:string list -> bool

(** Sign-based Banerjee bound with counters ranging over [0, N): all
    coefficients of one sign and a constant term strictly on the same
    side bound the distance away from zero. *)
val banerjee_independent : Affine.t -> loop_vars:string list -> bool

(** Disjunction of the two tests. *)
val independent : Affine.t -> loop_vars:string list -> bool

(** One {!store_info} per recovered store, in syntactic order. *)
val classify : Recover.access list -> store_info list
