(** The static liftability fact set (extends paper §4.2.3).

    One [analyze] call over the Mini-C AST collects everything the
    pipeline wants to know before spending search budget: per-parameter
    access-pattern summaries (reads/writes/imprecision/rank from the
    recovered index polynomials), the {!Depend} classification of every
    store, the operator and constant fact set, and a liftability verdict
    with a human-readable diagnostic when the kernel cannot be a dense
    tensor operation. The verdict is deliberately conservative: it only
    rejects kernels on {e structural} evidence (an unsupported data
    construct, no store to a parameter, a loop-carried flow dependence);
    mere precision loss surfaces as a warning, never a rejection. *)

open Stagg_util

type access_summary = {
  sm_param : string;
  sm_reads : int;
  sm_writes : int;
  sm_imprecise : int;  (** accesses whose index polynomial was lost *)
  sm_rank : int option;
      (** distinct enclosing-loop counters in a recovered index polynomial
          (max over accesses) — the delinearized rank *)
  sm_index_forms : string list;  (** distinct printed index polynomials *)
}

type t = {
  ft_name : string;
  ft_summaries : access_summary list;  (** one per accessed parameter *)
  ft_stores : Depend.store_info list;
  ft_ops : Ast.binop list;  (** of [+ - * /], those occurring in data positions *)
  ft_unsupported : string list;  (** unsupported data constructs found *)
  ft_constants : Rat.t list;  (** the [Const] instantiation pool *)
  ft_out_param : string option;
  ft_out_rank : int option;  (** inferred output rank (delinearization) *)
  ft_loop_vars : string list;  (** all loop counters, first-appearance order *)
  ft_warnings : string list;  (** precision losses, stencils, may-alias *)
  ft_verdict : (unit, string) result;  (** [Error diagnostic] = not liftable *)
}

val analyze : Ast.func -> t

(** The unsupported-construct scan alone ([%], comparisons, logical
    operators, ternaries and [if] in data position), exposed for tests. *)
val unsupported_data_constructs : Ast.func -> string list

val pp : Format.formatter -> t -> unit
