(* Loop-carried dependence classification of recovered stores. See
   depend.mli for the contract; the arithmetic lives entirely in the
   Affine polynomial domain that Recover already produces. *)

type classification =
  | Pointwise
  | Reduction of string list
  | Unknown of string

type store_info = {
  st_base : string;
  st_loop_vars : string list;
  st_index : Affine.t option;
  st_class : classification;
  st_stencils : (string * int) list;
  st_may_alias : string list;
}

let classification_to_string = function
  | Pointwise -> "pointwise"
  | Reduction vs -> Printf.sprintf "reduction over {%s}" (String.concat ", " vs)
  | Unknown reason -> Printf.sprintf "unsupported (%s)" reason

(* [linear_coeff p v] — [Some c] iff [p] is linear in [v], i.e.
   p = c·v + p|v=0 holds exactly in the polynomial ring. The check is by
   reconstruction, so degree-2 cross terms like i·M yield their symbolic
   coefficient while i² is rejected. *)
let linear_coeff (p : Affine.t) (v : string) : Affine.t option =
  if not (Affine.mentions p v) then Some Affine.zero
  else
    let p0 = Affine.subst p v (Affine.const 0) in
    let c = Affine.sub (Affine.subst p v (Affine.const 1)) p0 in
    if Affine.equal p (Affine.add (Affine.mul c (Affine.var v)) p0) then Some c else None

(* Split a distance polynomial into integer coefficients per loop variable
   plus a loop-invariant remainder. [None] when some coefficient is
   symbolic or nonlinear — the tests below must then stay conservative. *)
let split_linear (d : Affine.t) ~(loop_vars : string list) :
    ((string * int) list * Affine.t) option =
  let rec go rest acc = function
    | [] -> Some (List.rev acc, rest)
    | v :: vs -> (
        match linear_coeff rest v with
        | None -> None
        | Some c -> (
            match Affine.is_const c with
            | None -> None
            | Some k -> go (Affine.subst rest v (Affine.const 0)) ((v, k) :: acc) vs))
  in
  go d [] (List.sort_uniq compare loop_vars)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_independent (d : Affine.t) ~(loop_vars : string list) : bool =
  match split_linear d ~loop_vars with
  | None -> false
  | Some (coeffs, rest) -> (
      match Affine.is_const rest with
      | None -> false
      | Some k ->
          let g = List.fold_left (fun acc (_, c) -> gcd acc c) 0 coeffs in
          if g = 0 then k <> 0 else k mod g <> 0)

let banerjee_independent (d : Affine.t) ~(loop_vars : string list) : bool =
  match split_linear d ~loop_vars with
  | None -> false
  | Some (coeffs, rest) -> (
      match Affine.is_const rest with
      | None -> false
      | Some k ->
          (* counters range over [0, N): with all coefficients of one sign
             the distance is bounded away from 0 by the constant term *)
          let all_nonneg = List.for_all (fun (_, c) -> c >= 0) coeffs in
          let all_nonpos = List.for_all (fun (_, c) -> c <= 0) coeffs in
          (all_nonneg && k > 0) || (all_nonpos && k < 0))

let independent d ~loop_vars = gcd_independent d ~loop_vars || banerjee_independent d ~loop_vars

let classify (accesses : Recover.access list) : store_info list =
  let loads = List.filter (fun (a : Recover.access) -> a.kind = Recover.Load) accesses in
  List.filter_map
    (fun (a : Recover.access) ->
      if a.kind <> Recover.Store then None
      else
        let st_class =
          match a.index with
          | None -> Unknown "index expression not recovered"
          | Some idx -> (
              match List.filter (fun v -> not (Affine.mentions idx v)) a.loop_vars with
              | [] -> Pointwise
              | reduced -> Reduction reduced)
        in
        let st_stencils, st_may_alias =
          match a.index with
          | None ->
              (* nothing provable: every same-base load may alias *)
              ( [],
                List.sort_uniq compare
                  (List.filter_map
                     (fun (l : Recover.access) ->
                       if String.equal l.base a.base then Some l.base else None)
                     loads) )
          | Some sidx ->
              let stencils = ref [] and alias = ref [] in
              List.iter
                (fun (l : Recover.access) ->
                  if String.equal l.base a.base then
                    match l.index with
                    | None -> if not (List.mem l.base !alias) then alias := l.base :: !alias
                    | Some lidx -> (
                        let d = Affine.sub sidx lidx in
                        match Affine.is_const d with
                        | Some 0 -> ()
                        | Some k ->
                            if not (List.mem (l.base, k) !stencils) then
                              stencils := (l.base, k) :: !stencils
                        | None ->
                            let vars = List.sort_uniq compare (a.loop_vars @ l.loop_vars) in
                            if
                              (not (independent d ~loop_vars:vars))
                              && not (List.mem l.base !alias)
                            then alias := l.base :: !alias))
                loads;
              (List.rev !stencils, List.rev !alias)
        in
        Some
          {
            st_base = a.base;
            st_loop_vars = a.loop_vars;
            st_index = a.index;
            st_class;
            st_stencils;
            st_may_alias;
          })
    accesses

let pp_store fmt (s : store_info) =
  Format.fprintf fmt "store %s[%s] in (%s): %s" s.st_base
    (match s.st_index with None -> "?" | Some p -> Affine.to_string p)
    (String.concat ", " s.st_loop_vars)
    (classification_to_string s.st_class);
  List.iter (fun (b, k) -> Format.fprintf fmt ", stencil %s@%+d" b k) s.st_stencils;
  List.iter (fun b -> Format.fprintf fmt ", may-alias %s" b) s.st_may_alias
