(* The liftability fact set: everything the pipeline wants to know about a
   kernel before spending any search budget on it. See facts.mli. *)

open Stagg_util

type access_summary = {
  sm_param : string;
  sm_reads : int;
  sm_writes : int;
  sm_imprecise : int;
  sm_rank : int option;
  sm_index_forms : string list;
}

type t = {
  ft_name : string;
  ft_summaries : access_summary list;
  ft_stores : Depend.store_info list;
  ft_ops : Ast.binop list;
  ft_unsupported : string list;
  ft_constants : Rat.t list;
  ft_out_param : string option;
  ft_out_rank : int option;
  ft_loop_vars : string list;
  ft_warnings : string list;
  ft_verdict : (unit, string) result;
}

(* Constructs with no dense-tensor counterpart, in data (value-carrying)
   position. Mirrors the [~data] discipline of [Ast.constants]: loop
   headers, subscripts and branch conditions are control, not data. *)
let unsupported_data_constructs (f : Ast.func) : string list =
  let acc = ref [] in
  let add s = if not (List.mem s !acc) then acc := s :: !acc in
  let open Ast in
  let rec go_expr ~data = function
    | Num _ | Var _ | Post_incr _ | Post_decr _ -> ()
    | Bin (o, a, b) ->
        (match o with
        | Add | Sub | Mul | Div -> ()
        | (Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or) as o ->
            if data then add (Printf.sprintf "operator '%s' in a data position" (binop_to_string o)));
        go_expr ~data a;
        go_expr ~data b
    | Neg e -> go_expr ~data e
    | Not e ->
        if data then add "logical negation in a data position";
        go_expr ~data e
    | Deref e -> go_expr ~data e
    | Index (a, b) | Addr_index (a, b) ->
        go_expr ~data a;
        go_expr ~data:false b
    | Ternary (c, a, b) ->
        if data then add "ternary conditional in a data position";
        go_expr ~data:false c;
        go_expr ~data a;
        go_expr ~data b
  and go_lv = function
    | Lvar _ -> ()
    | Lderef e -> go_expr ~data:false e
    | Lindex (a, b) ->
        go_expr ~data:false a;
        go_expr ~data:false b
  and go_stmt = function
    | Decl (_, _, e) -> Option.iter (go_expr ~data:true) e
    | Assign (lv, e) ->
        go_lv lv;
        go_expr ~data:true e
    | Op_assign (lv, o, e) ->
        (match o with
        | Add | Sub | Mul | Div -> ()
        | o -> add (Printf.sprintf "compound assignment '%s='" (binop_to_string o)));
        go_lv lv;
        go_expr ~data:true e
    | Incr_stmt lv | Decr_stmt lv -> go_lv lv
    | For (h, body) ->
        Option.iter go_stmt h.init;
        List.iter go_stmt body
    | If (_, _, _) -> add "conditional statement"
    | Block b -> List.iter go_stmt b
    | Expr_stmt e -> go_expr ~data:true e
    | Return e -> Option.iter (go_expr ~data:true) e
  in
  List.iter go_stmt f.body;
  List.rev !acc

let access_rank (a : Recover.access) =
  match a.index with
  | None -> None
  | Some idx -> Some (List.length (List.filter (Affine.mentions idx) a.loop_vars))

let summarize (params : string list) (accesses : Recover.access list) : access_summary list =
  List.filter_map
    (fun p ->
      let mine = List.filter (fun (a : Recover.access) -> String.equal a.base p) accesses in
      if mine = [] then None
      else
        let count k = List.length (List.filter (fun (a : Recover.access) -> a.kind = k) mine) in
        let imprecise =
          List.length (List.filter (fun (a : Recover.access) -> a.index = None) mine)
        in
        let rank =
          List.fold_left
            (fun acc a ->
              match (acc, access_rank a) with
              | None, r | r, None -> if r = None then acc else r
              | Some x, Some y -> Some (max x y))
            None mine
        in
        let forms =
          List.sort_uniq compare
            (List.filter_map
               (fun (a : Recover.access) -> Option.map Affine.to_string a.index)
               mine)
        in
        Some
          {
            sm_param = p;
            sm_reads = count Recover.Load;
            sm_writes = count Recover.Store;
            sm_imprecise = imprecise;
            sm_rank = rank;
            sm_index_forms = forms;
          })
    params

let analyze (f : Ast.func) : t =
  let accesses = Recover.analyze f in
  let params = List.map (fun (p : Ast.param) -> p.pname) f.params in
  let summaries = summarize params accesses in
  let stores = Depend.classify accesses in
  let unsupported = unsupported_data_constructs f in
  let loop_vars =
    let seen = ref [] in
    List.iter
      (fun (a : Recover.access) ->
        List.iter (fun v -> if not (List.mem v !seen) then seen := v :: !seen) a.loop_vars)
      accesses;
    List.rev !seen
  in
  let warnings = ref [] in
  let warn w = if not (List.mem w !warnings) then warnings := w :: !warnings in
  List.iter
    (fun (s : access_summary) ->
      if s.sm_imprecise > 0 then
        warn
          (Printf.sprintf "array recovery lost the index expression for %d access(es) to '%s'"
             s.sm_imprecise s.sm_param))
    summaries;
  List.iter
    (fun (s : Depend.store_info) ->
      List.iter
        (fun (b, k) ->
          warn
            (Printf.sprintf "store to '%s' reads '%s' at constant offset %+d (stencil)"
               s.st_base b k))
        s.st_stencils;
      List.iter
        (fun b ->
          warn
            (Printf.sprintf "store to '%s' may alias loads of '%s' at loop-varying distance"
               s.st_base b))
        s.st_may_alias)
    stores;
  let flow_dep =
    (* a same-base load at positive distance reads a cell written by an
       earlier iteration: the loop is a scan, not a tensor assignment *)
    List.find_map
      (fun (s : Depend.store_info) ->
        List.find_map
          (fun (b, k) ->
            if k > 0 then
              Some
                (Printf.sprintf
                   "loop-carried flow dependence on '%s' (store reads '%s' written %d iteration(s) earlier)"
                   s.st_base b k)
            else None)
          s.st_stencils)
      stores
  in
  let verdict =
    match unsupported with
    | u :: _ -> Error u
    | [] -> (
        if stores = [] then Error "no store to an array parameter — nothing to lift"
        else match flow_dep with Some d -> Error d | None -> Ok ())
  in
  {
    ft_name = f.fname;
    ft_summaries = summaries;
    ft_stores = stores;
    ft_ops = Ast.arith_ops_used f;
    ft_unsupported = unsupported;
    ft_constants = Ast.constants f;
    ft_out_param = Dims.output_param f;
    ft_out_rank = Dims.lhs_dim f;
    ft_loop_vars = loop_vars;
    ft_warnings = List.rev !warnings;
    ft_verdict = verdict;
  }

let pp fmt (t : t) =
  Format.fprintf fmt "@[<v>facts for %s:@," t.ft_name;
  Format.fprintf fmt "  loop vars: %s@,"
    (if t.ft_loop_vars = [] then "(none)" else String.concat ", " t.ft_loop_vars);
  Format.fprintf fmt "  data ops: %s%s@,"
    (String.concat " " (List.map Ast.binop_to_string t.ft_ops))
    (if t.ft_constants = [] then ""
     else
       Printf.sprintf "   constants: %s"
         (String.concat ", " (List.map Rat.to_string t.ft_constants)));
  List.iter
    (fun (s : access_summary) ->
      Format.fprintf fmt "  %s: %d read(s), %d write(s), rank %s%s%s@," s.sm_param s.sm_reads
        s.sm_writes
        (match s.sm_rank with None -> "?" | Some r -> string_of_int r)
        (if s.sm_index_forms = [] then ""
         else Printf.sprintf ", index %s" (String.concat " | " s.sm_index_forms))
        (if s.sm_imprecise = 0 then ""
         else Printf.sprintf " (%d imprecise)" s.sm_imprecise))
    t.ft_summaries;
  List.iter (fun s -> Format.fprintf fmt "  %a@," Depend.pp_store s) t.ft_stores;
  (match t.ft_out_param with
  | Some p ->
      Format.fprintf fmt "  output: %s (rank %s)@," p
        (match t.ft_out_rank with None -> "?" | Some r -> string_of_int r)
  | None -> Format.fprintf fmt "  output: (none attributed)@,");
  List.iter (fun w -> Format.fprintf fmt "  warning: %s@," w) t.ft_warnings;
  (match t.ft_verdict with
  | Ok () -> Format.fprintf fmt "  verdict: liftable"
  | Error d -> Format.fprintf fmt "  verdict: NOT liftable — %s" d);
  Format.fprintf fmt "@]"
