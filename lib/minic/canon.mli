(** Canonical kernel fingerprints for the serve-side result cache.

    Two lifting requests deserve one search when they are the same kernel
    up to naming: the identifiers chosen for parameters and locals, the
    function's own name, and the particular numeric literals — none of
    which change the {e shape} of the lifting problem (constants only
    re-enter at substitution time, through the kernel's own constant
    pool). [canonical] rewrites a (signature, function) pair into a
    token stream with exactly those degrees of freedom removed:

    - parameters become positional ([p0], [p1], ...) in declaration
      order, and the signature's argument specs (size / scalar / array
      ranks, dimension names resolved to parameter positions, the output
      position) are folded into the stream — the same C text under a
      different tensor view is a different problem;
    - locals and loop variables are numbered by first occurrence in a
      fixed preorder walk, so any consistent renaming yields the same
      stream;
    - every numeric literal collapses to one [#] token (constant
      abstraction): kernels differing only in their constants collide,
      and the cache bridges them by re-instantiating the cached solution
      through the new kernel's constant pool.

    [fingerprint] is a 63-bit polynomial rolling hash of that stream, in
    the {!Stagg_search.Node.fingerprints} idiom (per-token hashes from
    the token's own spelling, multiply–add accumulation): equal
    canonical streams hash equally, distinct streams collide with
    probability ~2⁻⁶³ — audited against the 77-benchmark suite and
    QCheck-pinned (alpha/constant variants collide, semantically
    distinct kernels do not) in [test_serve.ml]. *)

(** The canonical token stream, space-joined — the collision oracle the
    fingerprint is audited against, and a readable debugging aid. *)
val canonical : signature:Signature.t -> Ast.func -> string

(** 63-bit rolling hash of {!canonical} (non-negative). *)
val fingerprint : signature:Signature.t -> Ast.func -> int
