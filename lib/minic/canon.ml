open Stagg_util

(* The canonical stream is a preorder serialization of the function under
   two rewrites: identifiers become positional ([p<i>] for parameters in
   declaration order, [v<j>] for everything else by first occurrence), and
   numeric literals in *data positions* — exactly the positions
   [Ast.constants] pools, so subscripts, conditions and loop headers keep
   their literals — become an abstract [#] token ([#0] for zero, which the
   constant pool excludes and substitution can therefore never rebind).

   Every constructor emits a fixed-arity prefix tag, statement lists are
   bracketed and options marked, so the stream determines the tree
   uniquely: two kernels produce equal streams iff they are the same
   kernel up to naming and (nonzero, data-position) constants. *)

(* ---- 63-bit rolling hash, the [Node.fingerprints] idiom ---- *)

let fp_k = 0x2545f4914f6cdd1d

let fp_mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x2545f4914f6cdd1d in
  let h = h lxor (h lsr 27) in
  let h = h * 0x27d4eb2f165667c5 in
  h lxor (h lsr 31)

let fp_seed = fp_mix 0x5ca1ab1e

(* Token hashes come from the token's own spelling, not [Hashtbl.hash],
   whose 30-bit range would make cross-token collisions plausible. *)
let fp_token s =
  let h = ref 0x27d4eb2f in
  String.iter (fun ch -> h := (!h * 0x100000001b3) lxor Char.code ch) s;
  fp_mix !h

(* ---- canonical token stream ---- *)

type ctx = {
  emit : string -> unit;
  env : (string, string) Hashtbl.t;
  mutable n_locals : int;
}

let rename ctx x =
  match Hashtbl.find_opt ctx.env x with
  | Some c -> c
  | None ->
      let c = Printf.sprintf "v%d" ctx.n_locals in
      ctx.n_locals <- ctx.n_locals + 1;
      Hashtbl.replace ctx.env x c;
      c

let typ_token = function Ast.Tint -> "int" | Ast.Tptr -> "ptr"

(* [data] tracks whether a literal here would enter the constant pool —
   the [Ast.constants] rules verbatim. *)
let rec expr ctx ~data (e : Ast.expr) =
  let emit = ctx.emit in
  match e with
  | Num c ->
      if not data then emit (Rat.to_string c)
      else if Rat.is_zero c then emit "#0"
      else emit "#"
  | Var x -> emit (rename ctx x)
  | Bin (o, a, b) ->
      emit ("bin:" ^ Ast.binop_to_string o);
      expr ctx ~data a;
      expr ctx ~data b
  | Neg e ->
      emit "neg";
      expr ctx ~data e
  | Not e ->
      emit "not";
      expr ctx ~data e
  | Deref e ->
      emit "deref";
      expr ctx ~data e
  | Index (a, b) ->
      emit "index";
      expr ctx ~data a;
      expr ctx ~data:false b
  | Addr_index (a, b) ->
      emit "addr-index";
      expr ctx ~data a;
      expr ctx ~data:false b
  | Post_incr x ->
      emit "post++";
      emit (rename ctx x)
  | Post_decr x ->
      emit "post--";
      emit (rename ctx x)
  | Ternary (c, a, b) ->
      emit "ternary";
      expr ctx ~data:false c;
      expr ctx ~data a;
      expr ctx ~data b

let lvalue ctx (lv : Ast.lvalue) =
  let emit = ctx.emit in
  match lv with
  | Lvar x ->
      emit "lvar";
      emit (rename ctx x)
  | Lderef e ->
      emit "lderef";
      expr ctx ~data:false e
  | Lindex (a, b) ->
      emit "lindex";
      expr ctx ~data:false a;
      expr ctx ~data:false b

let rec stmt ctx (s : Ast.stmt) =
  let emit = ctx.emit in
  match s with
  | Decl (ty, x, init) ->
      emit ("decl:" ^ typ_token ty);
      emit (rename ctx x);
      opt_expr ctx ~data:true init
  | Assign (lv, e) ->
      emit "assign";
      lvalue ctx lv;
      expr ctx ~data:true e
  | Op_assign (lv, o, e) ->
      emit ("op-assign:" ^ Ast.binop_to_string o);
      lvalue ctx lv;
      expr ctx ~data:true e
  | Incr_stmt lv ->
      emit "incr";
      lvalue ctx lv
  | Decr_stmt lv ->
      emit "decr";
      lvalue ctx lv
  | For (h, body) ->
      emit "for";
      opt_stmt ctx h.init;
      opt_expr ctx ~data:false h.cond;
      opt_stmt ctx h.step;
      block ctx body
  | If (c, t, e) ->
      emit "if";
      expr ctx ~data:false c;
      block ctx t;
      block ctx e
  | Block b ->
      emit "block";
      block ctx b
  | Expr_stmt e ->
      emit "expr";
      expr ctx ~data:true e
  | Return e ->
      emit "return";
      opt_expr ctx ~data:true e

and opt_expr ctx ~data = function
  | None -> ctx.emit "-"
  | Some e -> expr ctx ~data e

and opt_stmt ctx = function
  | None -> ctx.emit "-"
  | Some s -> stmt ctx s

and block ctx body =
  ctx.emit "{";
  List.iter (stmt ctx) body;
  ctx.emit "}"

let tokens ~(signature : Signature.t) (f : Ast.func) emit =
  let ctx = { emit; env = Hashtbl.create 16; n_locals = 0 } in
  List.iteri
    (fun i (p : Ast.param) -> Hashtbl.replace ctx.env p.pname (Printf.sprintf "p%d" i))
    f.params;
  (* the tensor view first: the same C text under different shapes or a
     different output parameter is a different lifting problem *)
  List.iter
    (fun (name, spec) ->
      match spec with
      | Signature.Size _ -> emit ("sig:size:" ^ rename ctx name)
      | Signature.Scalar_data -> emit ("sig:scalar:" ^ rename ctx name)
      | Signature.Arr dims ->
          emit
            (Printf.sprintf "sig:arr:%s[%s]" (rename ctx name)
               (String.concat "," (List.map (rename ctx) dims))))
    signature.Signature.args;
  emit ("sig:out:" ^ rename ctx signature.Signature.out);
  List.iter (fun (p : Ast.param) -> emit ("param:" ^ typ_token p.ptyp)) f.params;
  block ctx f.body

let canonical ~signature f =
  let buf = Buffer.create 256 in
  tokens ~signature f (fun tok ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf tok);
  Buffer.contents buf

let fingerprint ~signature f =
  let h = ref fp_seed in
  tokens ~signature f (fun tok -> h := (!h * fp_k) + fp_token tok);
  !h land max_int
