(** Parser for command-line signature specifications.

    Lifting an arbitrary C file needs the tensor view of its parameters
    (which scalars are sizes, how arrays are shaped, which parameter is
    the output). The CLI accepts it as a compact spec:

    {v  "N:size, M:size, A:arr[N,M], X:arr[M], R:out[N]"  v}

    - [name:size] — a scalar dimension-size parameter;
    - [name:scalar] — a scalar data parameter;
    - [name:arr\[d1,...\]] — a row-major array shaped by named sizes;
    - [name:out\[d1,...\]] / [name:out] — the output buffer (exactly one;
      bare [out] is a one-cell scalar result). *)

val parse : string -> (Signature.t, string) result

(** Render a signature back to the spec syntax, such that
    [parse (to_string s)] yields a signature equal to [s]. Used to ship
    signatures inside serve requests. *)
val to_string : Signature.t -> string
