open Stagg_util

type outcome = {
  solved : bool;
  lifted : lifted option;
  attempts : int;
  expansions : int;
  instantiations : int;
  failure : string option;
}

and lifted = {
  taco : string;
  template : Stagg_taco.Ast.program;
  tensor_pos : (string * int) list;
  const_idx : int option;
}

(* Ready entries live in the LRU (value carries the fingerprint so
   eviction can fix up the donor index); in-flight keys live in a side
   table, pinned. One mutex + one condition covers everything: waiters
   broadcast-wake on every fulfill/abort and re-check, the classic
   no-lost-wakeup shape (the predicate is re-evaluated under the lock
   after every wait). *)

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  ready : (string, int * outcome) Lru.t;
  inflight : (string, unit) Hashtbl.t;
  donors : (int, string) Hashtbl.t;  (** fingerprint → solved entry's key *)
  mutable hits : int;
  mutable misses : int;
  mutable joins : int;
  mutable remaps : int;
  mutable evictions : int;
}

let create ~max =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    ready = Lru.create ~cap:max;
    inflight = Hashtbl.create 64;
    donors = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    joins = 0;
    remaps = 0;
    evictions = 0;
  }

type claim = Hit of outcome | Joined of outcome | Owner of outcome option

(* caller holds [t.mu] *)
let find_donor t ~key ~fp =
  match Hashtbl.find_opt t.donors fp with
  | Some dkey when dkey <> key -> (
      match Lru.find t.ready dkey with
      | Some (_, o) when o.solved -> Some o
      | _ ->
          (* evicted (or overwritten unsolved — cannot happen, only
             solved outcomes are registered): drop the stale pointer *)
          Hashtbl.remove t.donors fp;
          None)
  | _ -> None

let acquire t ~key ~fp =
  Mutex.protect t.mu (fun () ->
      let waited = ref false in
      let rec loop () =
        match Lru.find t.ready key with
        | Some (_, o) ->
            if !waited then begin
              t.joins <- t.joins + 1;
              Joined o
            end
            else begin
              t.hits <- t.hits + 1;
              Hit o
            end
        | None ->
            if Hashtbl.mem t.inflight key then begin
              waited := true;
              Condition.wait t.cond t.mu;
              loop ()
            end
            else begin
              (* fresh miss, or an aborted owner's key: inherit it *)
              Hashtbl.replace t.inflight key ();
              t.misses <- t.misses + 1;
              Owner (find_donor t ~key ~fp)
            end
      in
      loop ())

let fulfill t ~key ~fp o =
  Mutex.protect t.mu (fun () ->
      Hashtbl.remove t.inflight key;
      (match Lru.add t.ready key (fp, o) with
      | Some (ekey, (efp, _)) ->
          t.evictions <- t.evictions + 1;
          (match Hashtbl.find_opt t.donors efp with
          | Some k when String.equal k ekey -> Hashtbl.remove t.donors efp
          | _ -> ())
      | None -> ());
      if o.solved && o.lifted <> None then Hashtbl.replace t.donors fp key;
      Condition.broadcast t.cond)

let abort t ~key =
  Mutex.protect t.mu (fun () ->
      Hashtbl.remove t.inflight key;
      Condition.broadcast t.cond)

type stats = {
  hits : int;
  misses : int;
  joins : int;
  remaps : int;
  evictions : int;
  inflight : int;
  entries : int;
}

let note_remap t = Mutex.protect t.mu (fun () -> t.remaps <- t.remaps + 1)

let stats t =
  Mutex.protect t.mu (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        joins = t.joins;
        remaps = t.remaps;
        evictions = t.evictions;
        inflight = Hashtbl.length t.inflight;
        entries = Lru.length t.ready;
      })
