(** The fingerprint-keyed result cache: single-flight, LRU, with a
    donor index for constant/alpha-remapping.

    One entry per {e exact request identity} — the canonical fingerprint
    plus everything else that determines the lifted output byte for byte
    (constant pool, query name, parameter names, method/budget digest;
    the server composes the key). Identical concurrent requests
    {e single-flight}: the first becomes the owner and runs the search,
    the rest block on the entry's condition and wake with the owner's
    outcome; an aborted owner (exception, kill) wakes the waiters and
    exactly one of them inherits ownership, so no search is lost and
    none is duplicated.

    A second index maps the bare canonical fingerprint to the most
    recent {e solved} entry. A new owner whose fingerprint matches a
    donor gets that outcome handed back from {!acquire}: the kernel is
    the same up to naming and constants, so the server can usually
    re-instantiate the donor's template against the new kernel's names
    and constant pool and re-validate — skipping the search entirely —
    instead of searching from scratch.

    Ready entries evict LRU at [max]; in-flight entries are pinned (a
    waiter holds a reference) and never evicted — at most one per
    concurrently admitted request, so residency is bounded by
    [max + jobs]. All counters mutate under the cache mutex: no atomics,
    and a [stats] snapshot is internally consistent. *)

type outcome = {
  solved : bool;
  lifted : lifted option;  (** present iff [solved] *)
  attempts : int;
  expansions : int;
  instantiations : int;
  failure : string option;
}

(** What a solved entry remembers — enough to replay the result for its
    own key (the rendered [taco]) and to remap it onto an
    alpha/constant-variant kernel ([template] + positional bindings). *)
and lifted = {
  taco : string;  (** concrete program rendered over this entry's names *)
  template : Stagg_taco.Ast.program;
  tensor_pos : (string * int) list;
      (** template symbol → parameter position in the signature's
          argument list (positions survive renaming; names do not) *)
  const_idx : int option;
      (** index of the bound constant in the kernel's constant pool, for
          rebinding through a variant kernel's pool *)
}

type t

val create : max:int -> t

type claim =
  | Hit of outcome  (** ready entry, no waiting *)
  | Joined of outcome  (** waited out another request's in-flight search *)
  | Owner of outcome option
      (** this caller must {!fulfill} or {!abort} the key; the payload is
          a same-fingerprint donor outcome to attempt a remap from, if
          one is cached *)

(** Blocks while the key is in flight elsewhere. *)
val acquire : t -> key:string -> fp:int -> claim

(** Publish the owner's outcome and wake all waiters. *)
val fulfill : t -> key:string -> fp:int -> outcome -> unit

(** Owner failed without an outcome: wake the waiters; the first to wake
    inherits ownership, the rest re-wait. *)
val abort : t -> key:string -> unit

type stats = {
  hits : int;
  misses : int;  (** admissions that became owner (includes inherited) *)
  joins : int;
  remaps : int;  (** owner outcomes fulfilled via donor remap *)
  evictions : int;
  inflight : int;  (** currently in-flight searches *)
  entries : int;  (** ready entries resident *)
}

(** Count a successful donor remap (the server decides — the cache
    cannot tell a remapped fulfillment from a searched one). *)
val note_remap : t -> unit

val stats : t -> stats
