(** Lift-as-a-service: the [stagg serve] request loop.

    The server accepts line-delimited JSON requests, runs each through
    the standard lifting pipeline (trace oracle — no LLM in the loop)
    and answers with line-delimited JSON responses. Request fields:

    - ["c"] (required) — the mini-C kernel source;
    - ["sig"] (required) — the tensor signature in {!Stagg_minic.Sigspec}
      syntax;
    - ["id"] — the query name. Defaults to the function's own name.
      The name seeds example generation exactly as the direct pipeline
      does, so a request named like a benchmark lifts byte-identically
      to [Pipeline.run];
    - ["method"] — ["trace"] (default) or ["trace+llm"] (the latter
      degrades to trace-only: a server has no LLM transcript);
    - ["timeout_s"], ["max_attempts"], ["max_expansions"] — per-request
      budget overrides (each capped at the method default);
    - ["op"] — ["lift"] (default), ["stats"] (telemetry-only response),
      or ["shutdown"] (acknowledge and stop the serving loop).

    Results are memoized in a {!Cache}: single-flight per exact request
    identity, donor-remap across alpha/constant-variant kernels (the
    remapped candidate is re-validated on the requester's own examples,
    and BMC-verified, before it is served), LRU eviction at
    [cache_max]. The response's ["cache"] field says which path
    answered: ["miss"] (searched), ["hit"], ["join"] (waited out a
    concurrent identical search), or ["remap"].

    Each admitted request claims one domain from the process-wide
    {!Stagg_util.Pool} budget and releases it on every exit path, so a
    long-lived server never leaks its allowance across requests —
    nested parallel constructs inside a search see the budget honestly
    drained. Each server instance gets a fresh {e epoch}, which scopes
    the validation memo: verdicts never bleed between epochs, while
    requests within one epoch still share them.

    Per-response telemetry reports the request's own validator-memo
    traffic as a delta of two monotonic snapshots — exact when requests
    are processed sequentially ([jobs = 1]), a process-wide
    approximation under concurrency. *)

type config = {
  jobs : int;  (** concurrent request processors; 1 = caller's domain only *)
  cache_max : int;  (** ready-entry capacity of the result cache *)
  verify : bool;  (** BMC-verify searched and remapped results (default) *)
}

val default_config : config

type t

(** Fresh server state (cache, epoch, sequence counter). *)
val create : ?config:config -> unit -> t

(** The server's validation-memo epoch (unique per [create] in this
    process). *)
val epoch : t -> int

val cache_stats : t -> Cache.stats

(** [process_line t ~seq line] — handle one request line, return the
    response line (no trailing newline). Never raises: malformed input
    and internal errors become ["status":"error"] responses. *)
val process_line : t -> seq:int -> string -> string

(** [run_lines t lines] — process a batch, [jobs]-wide, responses in
    request order. The in-process entry point for tests and the load
    bench. *)
val run_lines : t -> string list -> string list

(** Serve stdin → stdout until EOF or a shutdown request. Responses are
    emitted in request order; at most [jobs] requests are in flight. *)
val run_stdio : t -> unit

(** Serve a Unix-domain socket (serial accept; [jobs]-wide within a
    connection) until a shutdown request. Replaces any stale socket
    file at [path]. *)
val run_socket : t -> path:string -> unit
