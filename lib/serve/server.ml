open Stagg_util
module Sig = Stagg_minic.Signature
module Method_ = Stagg.Method_
module Pipeline = Stagg.Pipeline
module Validator = Stagg_validate.Validator
module Examples = Stagg_validate.Examples
module Bmc = Stagg_verify.Bmc
module Subst = Stagg_template.Subst
module Pretty = Stagg_taco.Pretty

type config = { jobs : int; cache_max : int; verify : bool }

let default_config = { jobs = 1; cache_max = 1024; verify = true }

type t = {
  cfg : config;
  cache : Cache.t;
  epoch : int;
  seq_mu : Mutex.t;
  mutable next_seq : int;
}

(* Epochs are process-unique so two servers (tests create many) never
   share validation-memo scopes; guarded by a mutex rather than a raw
   atomic read-modify-write. *)
let epoch_mu = Mutex.create ()
let epoch_counter = ref 0

let fresh_epoch () =
  Mutex.protect epoch_mu (fun () ->
      incr epoch_counter;
      !epoch_counter)

let create ?(config = default_config) () =
  {
    cfg = { config with jobs = max 1 config.jobs; cache_max = max 1 config.cache_max };
    cache = Cache.create ~max:(max 1 config.cache_max);
    epoch = fresh_epoch ();
    seq_mu = Mutex.create ();
    next_seq = 0;
  }

let epoch t = t.epoch
let cache_stats t = Cache.stats t.cache

let reserve_seqs t n =
  Mutex.protect t.seq_mu (fun () ->
      let base = t.next_seq in
      t.next_seq <- t.next_seq + n;
      base)

(* The memo scope ends in '|', which no [qname] can smuggle ambiguity
   past: "epoch1|" ^ "x" and "epoch11" ^ "|x" differ in the byte before
   the first '|'. *)
let memo_scope t = Printf.sprintf "epoch%d|" t.epoch

(* ---- request decoding ---- *)

type request = {
  id : string option;
  c_source : string;
  sigspec : string;
  method_ : Method_.t;
  mdig : string;  (** method + budget digest, part of the cache key *)
}

let ( let* ) = Result.bind

let field_str j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let required j name =
  let* v = field_str j name in
  match v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing required field %S" name)

let field_num j name conv =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let method_of_request cfg j =
  let* name = field_str j "method" in
  let* base =
    match Option.value name ~default:"trace" with
    (* a server has no LLM transcript, so trace+llm degrades to the
       trace oracle alone rather than erroring *)
    | "trace" | "trace+llm" | "trace-llm" -> Ok Method_.td_trace
    | s -> Error (Printf.sprintf "unsupported method %S (a server offers: trace)" s)
  in
  let base = if cfg.verify then base else { base with Method_.verify = false } in
  let* timeout_s = field_num j "timeout_s" Json.to_float in
  let* max_attempts = field_num j "max_attempts" Json.to_int in
  let* max_expansions = field_num j "max_expansions" Json.to_int in
  let b = base.Method_.budget in
  let cap dflt = function
    | None -> dflt
    | Some v -> Stdlib.max 1 (Stdlib.min v dflt)
  in
  let budget =
    {
      Stagg_search.Astar.max_attempts = cap b.max_attempts max_attempts;
      max_expansions = cap b.max_expansions max_expansions;
      timeout_s =
        (match timeout_s with
        | None -> b.timeout_s
        | Some v -> Float.max 0.01 (Float.min v b.timeout_s));
    }
  in
  let m = { base with Method_.budget } in
  (* every knob that can move the outcome is part of the cache key *)
  let mdig =
    Printf.sprintf "%s;%d;%b;%d;%d;%g" m.label m.seed m.verify budget.max_attempts
      budget.max_expansions budget.timeout_s
  in
  Ok (m, mdig)

let decode_request cfg j =
  let* c_source = required j "c" in
  let* sigspec = required j "sig" in
  let* id = field_str j "id" in
  let* method_, mdig = method_of_request cfg j in
  Ok { id; c_source; sigspec; method_; mdig }

(* ---- the cache key ----

   Everything that determines the lifted output byte for byte:
   canonical fingerprint, constant pool (fingerprints abstract
   constants; outputs do not), query name (it seeds the examples),
   parameter names (the output is rendered over them), method/budget
   digest. Variable-length fields are length-prefixed, so no crafted
   name can collide two distinct identities. *)

let exact_key ~fp ~pool ~qname ~params ~mdig =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%016x" fp);
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "|%d:%s" (String.length s) s))
    (pool @ [ qname; mdig ] @ params);
  Buffer.contents buf

(* ---- building outcomes ---- *)

let arg_position (signature : Sig.t) name =
  let rec go i = function
    | [] -> None
    | (n, _) :: rest -> if String.equal n name then Some i else go (i + 1) rest
  in
  go 0 signature.Sig.args

let const_index consts c =
  let rec go i = function
    | [] -> None
    | x :: rest -> if Rat.equal x c then Some i else go (i + 1) rest
  in
  go 0 consts

let outcome_of_result (signature : Sig.t) consts (r : Stagg.Result_.t) : Cache.outcome =
  let lifted =
    match r.solution with
    | None -> None
    | Some sol -> (
        let pos =
          List.map
            (fun (sym, name) -> Option.map (fun i -> (sym, i)) (arg_position signature name))
            sol.subst.Subst.tensor_binding
        in
        if List.exists Option.is_none pos then None
        else
          match sol.subst.Subst.const_binding with
          | Some c when const_index consts c = None -> None
          | cb ->
              Some
                {
                  Cache.taco = Pretty.program_to_string sol.concrete;
                  template = sol.template;
                  tensor_pos = List.map Option.get pos;
                  const_idx = Option.bind cb (const_index consts);
                })
  in
  {
    Cache.solved = r.solved && lifted <> None;
    lifted;
    attempts = r.attempts;
    expansions = r.expansions;
    instantiations = r.instantiations;
    failure = (if r.solved && lifted = None then Some "unrenderable solution" else r.failure);
  }

(* The donor-remap fast path: the donor solved a kernel with the same
   canonical fingerprint, so this kernel is the donor's up to naming and
   constants. Rebind the donor's substitution positionally (parameter
   positions survive renaming) and by constant-pool index, then
   re-validate the remapped candidate against THIS kernel's own examples
   — and BMC when the method verifies — exactly as a searched candidate
   would be. A remap that fails validation returns [None] and the
   request falls back to a full search; soundness never rests on the
   fingerprint. *)
let try_remap ~(m : Method_.t) ~qname ~func ~signature ~consts (dl : Cache.lifted) :
    Cache.outcome option =
  let args = signature.Sig.args in
  let name_at i = Option.map fst (List.nth_opt args i) in
  let bindings =
    List.map (fun (sym, pos) -> Option.map (fun n -> (sym, n)) (name_at pos)) dl.tensor_pos
  in
  if List.exists Option.is_none bindings then None
  else
    let tensor_binding = List.map Option.get bindings in
    let const_ok, const_binding =
      match dl.const_idx with
      | None -> (true, None)
      | Some i -> (
          match List.nth_opt consts i with
          | Some c -> (true, Some c)
          | None -> (false, None))
    in
    if not const_ok then None
    else
      let subst = { Subst.tensor_binding; const_binding } in
      let concrete = Subst.instantiate dl.template subst in
      let example_seed = m.Method_.seed lxor Hashtbl.hash (qname, "examples") in
      let prng = Prng.create ~seed:example_seed in
      match Examples.generate ~func ~signature ~prng () with
      | Error _ -> None
      | Ok examples ->
          let passes =
            Validator.check_concrete ~signature ~examples concrete
            && (not m.Method_.verify
               ||
               match Bmc.check ~func ~signature ~candidate:concrete () with
               | Bmc.Equivalent -> true
               | Bmc.Not_equivalent _ | Bmc.Inconclusive _ -> false)
          in
          if not passes then None
          else
            Some
              {
                Cache.solved = true;
                lifted = Some { dl with taco = Pretty.program_to_string concrete };
                attempts = 0;
                expansions = 0;
                instantiations = 1;
                failure = None;
              }

(* ---- responses ---- *)

let telemetry_json t ~(vs0 : Validator.stats) ~(vs1 : Validator.stats) =
  let cs = Cache.stats t.cache in
  Json.Obj
    [
      ("cache_hits", Json.Int cs.hits);
      ("cache_misses", Json.Int cs.misses);
      ("cache_joins", Json.Int cs.joins);
      ("cache_remaps", Json.Int cs.remaps);
      ("cache_evictions", Json.Int cs.evictions);
      ("cache_inflight", Json.Int cs.inflight);
      ("cache_entries", Json.Int cs.entries);
      ("memo_hits", Json.Int (vs1.memo_hits - vs0.memo_hits));
      ("memo_misses", Json.Int (vs1.memo_misses - vs0.memo_misses));
      ("epoch", Json.Int t.epoch);
    ]

let error_response ~id ~seq msg =
  Json.to_string
    (Json.Obj
       [
         ("id", match id with Some s -> Json.String s | None -> Json.Null);
         ("seq", Json.Int seq);
         ("status", Json.String "error");
         ("error", Json.String msg);
       ])

let lift_response t ~id ~seq ~kernel ~fp ~cache_path ~vs0 ~vs1 ~time_s (o : Cache.outcome) =
  let status = if o.solved then "ok" else "unsolved" in
  Json.to_string
    (Json.Obj
       ([
          ("id", Json.String id);
          ("seq", Json.Int seq);
          ("status", Json.String status);
          ("kernel", Json.String kernel);
          ("fingerprint", Json.String (Printf.sprintf "%016x" fp));
          ("cache", Json.String cache_path);
          ( "taco",
            match o.lifted with Some l -> Json.String l.Cache.taco | None -> Json.Null );
        ]
       @ (match o.failure with
         | Some f when not o.solved -> [ ("failure", Json.String f) ]
         | _ -> [])
       @ [
           ("attempts", Json.Int o.attempts);
           ("expansions", Json.Int o.expansions);
           ("instantiations", Json.Int o.instantiations);
           ("time_s", Json.Float time_s);
           ("telemetry", telemetry_json t ~vs0 ~vs1);
         ]))

(* ---- one request ---- *)

let handle_lift t ~seq ~(req : request) ~raw_id =
  match Stagg_minic.Parser.parse_function req.c_source with
  | Error e -> error_response ~id:raw_id ~seq ("C parse error: " ^ e)
  | Ok func -> (
      match Stagg_minic.Sigspec.parse req.sigspec with
      | Error e -> error_response ~id:raw_id ~seq ("signature error: " ^ e)
      | Ok signature ->
          let m = req.method_ in
          let qname = Option.value req.id ~default:func.Stagg_minic.Ast.fname in
          let consts = Stagg_minic.Ast.constants func in
          let fp = Stagg_minic.Canon.fingerprint ~signature func in
          let key =
            exact_key ~fp
              ~pool:(List.map Rat.to_string consts)
              ~qname
              ~params:(List.map (fun (p : Stagg_minic.Ast.param) -> p.pname) func.params)
              ~mdig:req.mdig
          in
          let t0 = Unix.gettimeofday () in
          let vs0 = Validator.stats () in
          let respond cache_path o =
            let vs1 = Validator.stats () in
            lift_response t ~id:qname ~seq ~kernel:func.Stagg_minic.Ast.fname ~fp ~cache_path
              ~vs0 ~vs1
              ~time_s:(Unix.gettimeofday () -. t0)
              o
          in
          (* per-request domain-budget isolation: claim on admit, release
             on every exit path — a request that raises (or times out
             inside the search) must not leak its allowance *)
          Pool.claim_exact 1;
          Fun.protect
            ~finally:(fun () -> Pool.release 1)
            (fun () ->
              match Cache.acquire t.cache ~key ~fp with
              | Cache.Hit o -> respond "hit" o
              | Cache.Joined o -> respond "join" o
              | Cache.Owner donor -> (
                  try
                    let outcome, path =
                      match
                        Option.bind donor (fun (d : Cache.outcome) ->
                            Option.bind d.lifted
                              (try_remap ~m ~qname ~func ~signature ~consts))
                      with
                      | Some o -> (o, "remap")
                      | None ->
                          let q =
                            {
                              Pipeline.qname;
                              func;
                              signature;
                              c_source = req.c_source;
                              client = Stagg_oracle.Replay.of_lines [];
                              oracle = m.Method_.oracle;
                            }
                          in
                          (outcome_of_result signature consts
                             (Pipeline.lift ~memo_scope:(memo_scope t) m q),
                            "miss")
                    in
                    Cache.fulfill t.cache ~key ~fp outcome;
                    if String.equal path "remap" then Cache.note_remap t.cache;
                    respond path outcome
                  with e ->
                    Cache.abort t.cache ~key;
                    error_response ~id:raw_id ~seq
                      ("internal error: " ^ Printexc.to_string e))))

let stats_response t ~id ~seq =
  let vs = Validator.stats () in
  let cs = Cache.stats t.cache in
  Json.to_string
    (Json.Obj
       [
         ("id", match id with Some s -> Json.String s | None -> Json.Null);
         ("seq", Json.Int seq);
         ("status", Json.String "stats");
         ( "telemetry",
           Json.Obj
             [
               ("cache_hits", Json.Int cs.hits);
               ("cache_misses", Json.Int cs.misses);
               ("cache_joins", Json.Int cs.joins);
               ("cache_remaps", Json.Int cs.remaps);
               ("cache_evictions", Json.Int cs.evictions);
               ("cache_inflight", Json.Int cs.inflight);
               ("cache_entries", Json.Int cs.entries);
               ("memo_hits", Json.Int vs.memo_hits);
               ("memo_misses", Json.Int vs.memo_misses);
               ("memo_evictions", Json.Int vs.memo_evictions);
               ("epoch", Json.Int t.epoch);
             ] );
       ])

let process t ~seq line : string * [ `Continue | `Shutdown ] =
  match Json.of_string line with
  | Error e -> (error_response ~id:None ~seq ("bad request: " ^ e), `Continue)
  | Ok j -> (
      let id = match field_str j "id" with Ok v -> v | Error _ -> None in
      let op = match field_str j "op" with Ok (Some s) -> s | _ -> "lift" in
      match op with
      | "shutdown" ->
          ( Json.to_string
              (Json.Obj
                 [
                   ("id", match id with Some s -> Json.String s | None -> Json.Null);
                   ("seq", Json.Int seq);
                   ("status", Json.String "bye");
                 ]),
            `Shutdown )
      | "stats" -> (stats_response t ~id ~seq, `Continue)
      | "lift" -> (
          match decode_request t.cfg j with
          | Error e -> (error_response ~id ~seq ("bad request: " ^ e), `Continue)
          | Ok req -> (handle_lift t ~seq ~req ~raw_id:id, `Continue))
      | s -> (error_response ~id ~seq (Printf.sprintf "unknown op %S" s), `Continue))

let process_line t ~seq line = fst (process t ~seq line)

(* ---- frontends ---- *)

let run_lines t lines =
  let n = List.length lines in
  let base = reserve_seqs t n in
  let indexed = List.mapi (fun i l -> (base + i, l)) lines in
  let f (seq, l) = fst (process t ~seq l) in
  if t.cfg.jobs <= 1 then List.map f indexed else Pool.map ~jobs:t.cfg.jobs f indexed

(* Streaming loop shared by stdio and socket: emit responses in request
   order with at most [jobs] requests in flight (a FIFO of running
   domains; joining the oldest both bounds concurrency and preserves
   order). Returns [true] when a shutdown request ended the stream. *)
let serve_channel t ~ic ~oc =
  let jobs = t.cfg.jobs in
  let pending : (unit -> string * [ `Continue | `Shutdown ]) Queue.t = Queue.create () in
  let stop = ref false in
  let emit (resp, ctl) =
    output_string oc resp;
    output_char oc '\n';
    flush oc;
    if ctl = `Shutdown then stop := true
  in
  let drain_one () = emit ((Queue.pop pending) ()) in
  (try
     while not !stop do
       match In_channel.input_line ic with
       | None -> raise Exit
       | Some line ->
           let seq = reserve_seqs t 1 in
           if jobs <= 1 then emit (process t ~seq line)
           else begin
             if Queue.length pending >= jobs then drain_one ();
             let d = Domain.spawn (fun () -> process t ~seq line) in
             Queue.push (fun () -> Domain.join d) pending
           end
     done
   with Exit -> ());
  while Queue.length pending > 0 do
    drain_one ()
  done;
  !stop

let run_stdio t = ignore (serve_channel t ~ic:stdin ~oc:stdout)

let run_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop = ref false in
      (* serial accept: one connection at a time; [jobs] applies to the
         requests inside a connection *)
      while not !stop do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try stop := serve_channel t ~ic ~oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)
