(** A minimal JSON reader/writer for the serve wire protocol.

    The container has no JSON dependency, and the protocol needs very
    little: line-delimited objects of strings, numbers, booleans and flat
    nesting. This module covers exactly RFC 8259 syntax with two
    deliberate restrictions — integers outside OCaml's [int] range and
    [\uXXXX] surrogate pairs are out of scope (request ids and C source
    never need them; a lone [\uXXXX] escape is decoded as UTF-8).

    Printing is deterministic: object fields are emitted in the order
    given, floats through [%.12g], strings with the minimal escapes —
    the serve smoke leg byte-diffs normalized responses, so the printer
    must never have two spellings for one value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no whitespace), fields in given order. *)
val to_string : t -> string

(** Parse one JSON document; trailing garbage is an error. *)
val of_string : string -> (t, string) result

(** [member name j] — field of an [Obj], [None] otherwise. *)
val member : string -> t -> t option

val to_str : t -> string option
val to_int : t -> int option
val to_float : t -> float option
