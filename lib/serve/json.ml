type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* %.12g never prints "nan"/"inf" in practice here (latencies and
         rates); keep a JSON-legal fallback anyway *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          render buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  render buf j;
  Buffer.contents buf

(* ---- parsing: recursive descent over the raw string ---- *)

exception Parse of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

let utf8_of_code buf u =
  (* code point (from \uXXXX) to UTF-8 bytes *)
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 32 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string"
    else begin
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if st.pos >= String.length st.src then error st "unterminated escape";
          let e = st.src.[st.pos] in
          st.pos <- st.pos + 1;
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
              let hex = String.sub st.src st.pos 4 in
              st.pos <- st.pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some u -> utf8_of_code buf u
              | None -> error st "bad \\u escape");
              go ()
          | _ -> error st "unknown escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some c -> (
      match c with
      | '0' .. '9' | '-' -> parse_number st
      | _ -> error st (Printf.sprintf "unexpected character '%c'" c))

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
