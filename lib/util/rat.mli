(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly positive
    and [gcd num den = 1]. This is the value domain used for all tensor
    contents, interpreter states and verification, mirroring the paper's
    rational-datatype extension of CBMC (§7). *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] normalizes the fraction. @raise Division_by_zero if
    [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_int : int -> t
val of_ints : int -> int -> t
val of_bigint : Bigint.t -> t

(** [of_string s] parses ["n"], ["-n"], or ["n/d"]. *)
val of_string : string -> t

val to_string : t -> string

(** [to_int t] is [Some n] when [t] is an integer that fits in [int]. *)
val to_int : t -> int option

val to_float : t -> float

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

(** [is_one t] — O(1) test for the constant 1, used by the polynomial
    layer to skip no-op scalings. *)
val is_one : t -> bool
val is_integer : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Infix operators, for readable arithmetic-heavy code. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
end
