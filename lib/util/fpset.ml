(* A lock-striped set of 63-bit fingerprints.

   The parallel A* has one writer (the coordinator, which marks
   validated templates in commit order) and K-1 speculative readers
   (worker domains probing whether a complete template is already
   validated, to skip staging a validation that would be dropped as a
   duplicate). Striping keeps the common case — different domains
   probing different fingerprints — uncontended; a single stripe's
   mutex is held only for one small-Hashtbl operation.

   Reader staleness is harmless BY CONSTRUCTION of the callers: the set
   only grows, and a worker that misses a just-added fingerprint merely
   performs speculation the coordinator will discard (the authoritative
   duplicate check is {!check_add}, always on the coordinator, in commit
   order). The sequential engine uses the same structure with the same
   semantics — a set is a set, so membership answers (and therefore all
   search counts) are identical for any domain count. *)

type t = { stripes : (int, unit) Hashtbl.t array; locks : Mutex.t array }

let n_stripes = 16 (* power of two; fingerprints are well-mixed already *)

let create () =
  {
    stripes = Array.init n_stripes (fun _ -> Hashtbl.create 16);
    locks = Array.init n_stripes (fun _ -> Mutex.create ());
  }

let stripe fp = fp land (n_stripes - 1)

let mem t fp =
  let i = stripe fp in
  Mutex.protect t.locks.(i) (fun () -> Hashtbl.mem t.stripes.(i) fp)

(* [check_add t fp] — atomically: was [fp] present? (adding it if not).
   The one-lock test-and-set the dedup protocol needs. *)
let check_add t fp =
  let i = stripe fp in
  Mutex.protect t.locks.(i) (fun () ->
      if Hashtbl.mem t.stripes.(i) fp then true
      else begin
        Hashtbl.add t.stripes.(i) fp ();
        false
      end)
