(** A lock-striped set of 63-bit fingerprints: one writing domain, many
    speculative readers. Membership semantics are those of a plain set,
    so results never depend on the domain count; striping only bounds
    contention. See the implementation header for the staleness
    argument. *)

type t

val create : unit -> t

(** Concurrent-safe membership probe (may be stale by the time the
    caller acts on it — callers must tolerate that). *)
val mem : t -> int -> bool

(** [check_add t fp] — atomically tests membership and inserts when
    absent; returns [true] iff [fp] was already present. The
    authoritative test-and-set used by the dedup protocol. *)
val check_add : t -> int -> bool
