(** A sharded min-priority frontier over {!Pqueue} shards.

    Elements are routed to shard [seq mod n_shards] at push and popped
    in global (priority, seq) lexicographic order across all shards.
    Caller-unique [seq] values make that order total, so for ANY shard
    count the pop stream is byte-identical to a single {!Pqueue} holding
    the union — sharding is a physical layout choice, not a semantic
    one. The parallel A* exploits exactly that: worker domains scan
    "their" shard's heap prefix for speculation targets while the
    coordinator pops the global minimum.

    All operations below are owner-domain-only; concurrent readers must
    go through {!Pqueue.snapshot} on individual {!shard}s. *)

type 'a t

(** [create ~dummy ~shards] — an empty frontier of [max 1 shards]
    shards; [dummy] as in {!Pqueue.create}. *)
val create : dummy:'a -> shards:int -> 'a t

val n_shards : 'a t -> int

(** [shard t i] — the [i]th underlying queue, for {!Pqueue.snapshot}
    readers. *)
val shard : 'a t -> int -> 'a Pqueue.t

(** Total elements across all shards. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t prio seq v] — insert with a caller-supplied, caller-unique
    tie-break sequence (shard choice is [seq mod n_shards]). *)
val push : 'a t -> float -> int -> 'a -> unit

(** [pop t] removes and returns the globally (priority, seq)-minimal
    element as [(priority, seq, value)]. [None] when empty. *)
val pop : 'a t -> (float * int * 'a) option

(** The global minimum's priority / sequence without removal. Undefined
    (raises) on an empty frontier — guard with {!is_empty}. *)
val top_prio : 'a t -> float

val top_seq : 'a t -> int
