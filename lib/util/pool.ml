(* Work queue = an atomic cursor over the input array; result slots are
   indexed by input position, so output order is independent of which
   domain claims which task. Workers are joined before [map] returns —
   no domain outlives the call. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* ---- the process-wide helper-domain budget ----

   One atomic counter of helper domains that may be running at any
   moment, initialized to [recommended_domain_count - 1] (the calling
   domain is not a helper). Default-concurrency callers CLAIM from it
   and clamp to what they get — a nested default [map] inside a pool
   worker finds the budget drained by its parent and runs sequentially
   instead of spawning jobs × K domains. Explicit requests (a user's
   [--jobs N] / [--search-domains K]) are honored as asked but still
   debit the budget, so the defaults beneath them clamp. *)

let budget_left = Atomic.make (max 0 (Domain.recommended_domain_count () - 1))

let budget () = max 0 (Atomic.get budget_left)

let release n = if n > 0 then ignore (Atomic.fetch_and_add budget_left n)

let claim_exact n = if n > 0 then ignore (Atomic.fetch_and_add budget_left (-n))

let rec claim ~max:m =
  let cur = Atomic.get budget_left in
  let take = min m (max 0 cur) in
  if take <= 0 then 0
  else if Atomic.compare_and_set budget_left cur (cur - take) then take
  else claim ~max:m

let with_budget n f =
  let target = max 0 n in
  let old = Atomic.exchange budget_left target in
  Fun.protect
    ~finally:(fun () ->
      (* Claims/releases may have raced [f]'s lifetime: blindly writing
         [old] back would erase them (a racing [claim] would keep a
         helper the counter no longer remembers, permanently shrinking
         the budget). Fast path: nothing moved, swing [target -> old]
         with a CAS. Otherwise apply the delta, preserving whatever the
         concurrent claimers did. *)
      if not (Atomic.compare_and_set budget_left target old) then
        ignore (Atomic.fetch_and_add budget_left (old - target)))
    f

type 'b slot = Empty | Done of 'b | Failed of exn * Printexc.raw_backtrace

(* the parallel body shared by the explicit and budget-clamped paths;
   [helpers] ≥ 1 domains are spawned (the caller works too) *)
let map_on ~helpers f input =
  let n = Array.length input in
  let slots = Array.make n Empty in
  let cursor = Atomic.make 0 in
  let worker () =
    let rec drain () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        (slots.(i) <-
          (match f input.(i) with
          | v -> Done v
          | exception e ->
              (* poison: park the cursor past the end so no domain
                 claims further tasks (each in-flight task still
                 finishes, and the map still re-raises below) *)
              Atomic.set cursor n;
              Failed (e, Printexc.get_raw_backtrace ())));
        drain ()
      end
    in
    drain ()
  in
  let workers = List.init helpers (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join workers;
  (* re-raise the lowest-index failure that actually ran; slots after
     the poison point may legitimately be [Empty] *)
  let failure = ref None in
  Array.iter
    (fun s ->
      match (s, !failure) with
      | Failed (e, bt), None -> failure := Some (e, bt)
      | _ -> ())
    slots;
  (match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.to_list
    (Array.map (function Done v -> v | Failed _ | Empty -> assert false) slots)

let map ?jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs -> (
      match jobs with
      | Some j when max 1 j = 1 -> List.map f xs
      | Some j ->
          (* explicit request: honored as asked, but debited from the
             budget so nested default pools clamp instead of multiplying *)
          let input = Array.of_list xs in
          let helpers = min (max 1 j) (Array.length input) - 1 in
          if helpers = 0 then List.map f xs
          else begin
            claim_exact helpers;
            Fun.protect
              ~finally:(fun () -> release helpers)
              (fun () -> map_on ~helpers f input)
          end
      | None ->
          (* default concurrency: take what the budget grants, possibly
             nothing (→ sequential). A nested default map inside a pool
             worker or a parallel search lands here with the budget
             already drained by its parent. *)
          let input = Array.of_list xs in
          let helpers = claim ~max:(Array.length input - 1) in
          if helpers = 0 then List.map f xs
          else
            Fun.protect
              ~finally:(fun () -> release helpers)
              (fun () -> map_on ~helpers f input))

let map_reduce ?jobs ~map:f ~init ~reduce xs = List.fold_left reduce init (map ?jobs f xs)
