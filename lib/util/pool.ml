(* Work queue = an atomic cursor over the input array; result slots are
   indexed by input position, so output order is independent of which
   domain claims which task. Workers are joined before [map] returns —
   no domain outlives the call. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type 'b slot = Empty | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when jobs = 1 -> List.map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let slots = Array.make n Empty in
      let cursor = Atomic.make 0 in
      let worker () =
        let rec drain () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            (slots.(i) <-
              (match f input.(i) with
              | v -> Done v
              | exception e ->
                  (* poison: park the cursor past the end so no domain
                     claims further tasks (each in-flight task still
                     finishes, and the map still re-raises below) *)
                  Atomic.set cursor n;
                  Failed (e, Printexc.get_raw_backtrace ())));
            drain ()
          end
        in
        drain ()
      in
      let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join helpers;
      (* re-raise the lowest-index failure that actually ran; slots after
         the poison point may legitimately be [Empty] *)
      let failure = ref None in
      Array.iter
        (fun s ->
          match (s, !failure) with
          | Failed (e, bt), None -> failure := Some (e, bt)
          | _ -> ())
        slots;
      (match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function Done v -> v | Failed _ | Empty -> assert false)
           slots)

let map_reduce ?jobs ~map:f ~init ~reduce xs = List.fold_left reduce init (map ?jobs f xs)
