(** A bounded least-recently-used cache: a hash table over an intrusive
    doubly-linked recency list. O(1) [find] (which promotes the hit to
    most-recent), O(1) [add] (which evicts the least-recent binding once
    the capacity is reached and returns it to the caller, so eviction is
    observable — counters, resource release).

    NOT thread-safe: callers either confine an instance to one domain
    (the validator's per-domain compiled-template cache) or guard it with
    their own lock (the serve result cache holds its mutex across every
    cache operation). *)

type ('k, 'v) t

(** [create ~cap] — an empty cache evicting beyond [cap] bindings
    ([cap >= 1]; values below are clamped to 1). *)
val create : cap:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** [find t k] — the bound value, promoted to most-recently-used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [mem t k] — membership without promotion (an advisory peek). *)
val mem : ('k, 'v) t -> 'k -> bool

(** [add t k v] binds [k] to [v] as the most-recently-used entry,
    replacing any existing binding (a replacement never evicts). When the
    insertion pushes the cache past capacity the least-recently-used
    binding is removed and returned. *)
val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option

(** [remove t k] drops the binding if present. *)
val remove : ('k, 'v) t -> 'k -> unit

(** Most-recent-first fold over the current bindings. *)
val fold : ('acc -> 'k -> 'v -> 'acc) -> 'acc -> ('k, 'v) t -> 'acc
