(* Binary min-heap over (priority, seq, value); [seq] breaks ties FIFO.

   Stored as parallel arrays rather than an array of records: the
   priorities live in an unboxed float array, so a push allocates nothing
   (a record with a float field would box the float on every push — the
   searches push tens of millions of frontier entries), and the sift
   comparisons walk one contiguous float array.

   Every slot outside [0, size) holds [dummy]. Without that discipline a
   pop leaves the vacated slot pointing at whatever lived there before
   the swap, and [grow]'s [Array.make] pins the triggering push's value
   in every unused slot — on a frontier that grew to millions of entries
   the dead region retains popped values (trees, annotations) until
   [clear], which the GC cannot see past. *)

type 'a t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable value : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ~dummy = { prio = [||]; seq = [||]; value = [||]; size = 0; next_seq = 0; dummy }
let is_empty q = q.size = 0
let length q = q.size

let top_prio q = q.prio.(0)
let top_seq q = q.seq.(0)

let less q i j = q.prio.(i) < q.prio.(j) || (q.prio.(i) = q.prio.(j) && q.seq.(i) < q.seq.(j))

let swap q i j =
  let p = q.prio.(i) in
  q.prio.(i) <- q.prio.(j);
  q.prio.(j) <- p;
  let s = q.seq.(i) in
  q.seq.(i) <- q.seq.(j);
  q.seq.(j) <- s;
  let v = q.value.(i) in
  q.value.(i) <- q.value.(j);
  q.value.(j) <- v

let grow q =
  let cap = Array.length q.prio in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let np = Array.make ncap 0. in
    Array.blit q.prio 0 np 0 q.size;
    q.prio <- np;
    let ns = Array.make ncap 0 in
    Array.blit q.seq 0 ns 0 q.size;
    q.seq <- ns;
    let nv = Array.make ncap q.dummy in
    Array.blit q.value 0 nv 0 q.size;
    q.value <- nv
  end

let push_seq q prio seq value =
  grow q;
  let i = ref q.size in
  q.prio.(!i) <- prio;
  q.seq.(!i) <- seq;
  q.value.(!i) <- value;
  q.size <- q.size + 1;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less q !i parent then begin
      swap q !i parent;
      i := parent
    end
    else continue_ := false
  done

let push q prio value =
  push_seq q prio q.next_seq value;
  q.next_seq <- q.next_seq + 1

let peek q = if q.size = 0 then None else Some (q.prio.(0), q.value.(0))

let pop q =
  if q.size = 0 then None
  else begin
    let prio = q.prio.(0) and value = q.value.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.prio.(0) <- q.prio.(q.size);
      q.seq.(0) <- q.seq.(q.size);
      q.value.(0) <- q.value.(q.size);
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less q l !smallest then smallest := l;
        if r < q.size && less q r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap q !smallest !i;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    (* the vacated slot (or slot 0 when the heap just emptied) must not
       keep the old value reachable *)
    q.value.(q.size) <- q.dummy;
    Some (prio, value)
  end

let clear q =
  q.size <- 0;
  q.prio <- [||];
  q.seq <- [||];
  q.value <- [||]

(* Racy by design: returns the live backing array and size with no
   synchronisation. See the .mli for the reading discipline. *)
let snapshot q = (q.value, q.size)
