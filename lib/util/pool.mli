(** A fixed-size domain pool with an ordered [map] / [map_reduce] API.

    Each call builds a pool of at most [jobs] worker domains over a shared
    work queue (an atomic cursor into the input array) and a result-slot
    array indexed by input position. Workers pull the next unclaimed index
    and write into their own slot, so the output list has the same order
    and content as [List.map f xs] regardless of scheduling.

    [~jobs:1] (or a singleton/empty input) runs [f] sequentially on the
    calling domain — no domain is spawned — and is therefore behaviourally
    identical to [List.map f xs].

    [f] must not touch mutable state shared with other tasks: every task
    runs concurrently with the others when [jobs > 1]. An exception raised
    by any task poisons the work queue: no domain claims further tasks
    (those already in flight finish), and after all workers have stopped
    the lowest-index failure among the tasks that ran is re-raised (with
    its backtrace) on the calling domain. *)

(** [default_jobs ()] is [Domain.recommended_domain_count () - 1], at
    least 1 — leave one core to the spawning domain's own bookkeeping. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] — [List.map f xs], computed on [min jobs (length xs)]
    domains. [jobs] defaults to {!default_jobs}; values below 1 are
    clamped to 1. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce ?jobs ~map ~init ~reduce xs] — parallel [map] followed by
    an in-order left fold on the calling domain, so the reduction sees
    results in input order and needs no synchronisation of its own. *)
val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> init:'acc -> reduce:('acc -> 'b -> 'acc) -> 'a list -> 'acc
