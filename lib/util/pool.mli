(** A fixed-size domain pool with an ordered [map] / [map_reduce] API and
    a process-wide helper-domain budget.

    Each call builds a pool of worker domains over a shared work queue
    (an atomic cursor into the input array) and a result-slot array
    indexed by input position. Workers pull the next unclaimed index and
    write into their own slot, so the output list has the same order and
    content as [List.map f xs] regardless of scheduling.

    [~jobs:1] (or a singleton/empty input) runs [f] sequentially on the
    calling domain — no domain is spawned — and is therefore behaviourally
    identical to [List.map f xs].

    [f] must not touch mutable state shared with other tasks: every task
    runs concurrently with the others when more than one domain runs. An
    exception raised by any task poisons the work queue: no domain claims
    further tasks (those already in flight finish), and after all workers
    have stopped the lowest-index failure among the tasks that ran is
    re-raised (with its backtrace) on the calling domain. *)

(** [default_jobs ()] is [Domain.recommended_domain_count () - 1], at
    least 1 — leave one core to the spawning domain's own bookkeeping. *)
val default_jobs : unit -> int

(** {1 The helper-domain budget}

    A process-wide atomic count of helper domains that may be spawned,
    initialized to [recommended_domain_count () - 1]. Callers that pick
    their own concurrency ({!map} without [~jobs], the parallel A*'s
    [--search-domains auto]) {!claim} from it and clamp to the grant, so
    nesting composes: a default pool inside a pool worker (or inside a
    parallel search) finds the budget drained and runs sequentially
    instead of oversubscribing jobs × K domains. Explicit requests are
    honored as asked but still debit the budget, clamping the defaults
    beneath them. Because every parallel construct in this codebase is
    outcome-deterministic for any domain count, dynamic clamping never
    changes results — only scheduling. *)

(** Helper domains currently grantable (never negative). *)
val budget : unit -> int

(** [claim ~max:n] atomically takes up to [n] helpers from the budget
    and returns how many were granted (0 when drained or [n <= 0]).
    Pair with {!release}. *)
val claim : max:int -> int

(** [claim_exact n] debits [n] helpers unconditionally — the budget may
    go negative (defaults then see zero). Used for explicit user
    requests. Pair with {!release}. *)
val claim_exact : int -> unit

(** [release n] returns [n] helpers to the budget. *)
val release : int -> unit

(** [with_budget n f] runs [f] with the budget set to [n], restoring the
    previous value afterwards (even on exception). The restore is
    race-safe: claims and releases made by other domains while [f] runs
    are preserved — the restore re-applies the original delta rather
    than overwriting the counter. *)
val with_budget : int -> (unit -> 'a) -> 'a

(** [map ?jobs f xs] — [List.map f xs], computed on several domains.
    With [~jobs:N] exactly [min N (length xs) - 1] helper domains are
    spawned (an explicit request); without, the helper count is whatever
    {!claim} grants, so the default composes under nesting. Values below
    1 are clamped to 1. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce ?jobs ~map ~init ~reduce xs] — parallel [map] followed by
    an in-order left fold on the calling domain, so the reduction sees
    results in input order and needs no synchronisation of its own. *)
val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> init:'acc -> reduce:('acc -> 'b -> 'acc) -> 'a list -> 'acc
