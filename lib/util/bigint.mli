(** Arbitrary-precision signed integers.

    A small, dependency-free bignum used as the coefficient domain for exact
    rational arithmetic ({!Rat}) and symbolic verification ({!Stagg_verify}).
    Magnitudes are little-endian arrays of base-2{^30} limbs; values are
    immutable and always normalized (no leading zero limbs, zero has a unique
    representation). *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

(** [to_int t] is [Some n] if [t] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn t] raises [Failure] if [t] does not fit in a native [int]. *)
val to_int_exn : t -> int

(** [to_small t] is the value of [t] when its magnitude fits in a single
    base-2{^30} limb (that is, |t| < 2{^30}), and [min_int] otherwise — an
    allocation-free probe for {!Rat}'s machine-integer fast path. [min_int]
    never fits in one limb, so the sentinel is unambiguous. *)
val to_small : t -> int

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|], and [r]
    carrying the sign of [a] (truncated division, as in OCaml's [/] and
    [mod]). @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)
val gcd : t -> t -> t

val pow : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val hash : t -> int
val pp : Format.formatter -> t -> unit
