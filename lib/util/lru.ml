(* Hash table + intrusive doubly-linked recency list with a sentinel
   node: [sentinel.next] is most-recent, [sentinel.prev] least-recent.
   Every operation is O(1); nodes are reused on replacement so a hot
   working set allocates nothing after warm-up. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node;
  mutable next : ('k, 'v) node;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable sentinel : ('k, 'v) node option;
      (** allocated lazily on the first [add] — a sentinel needs a key of
          type ['k] and we have none until then *)
}

let create ~cap = { cap = max 1 cap; tbl = Hashtbl.create 64; sentinel = None }
let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

(* insert [n] right after the sentinel: most-recently-used *)
let link_front s n =
  n.next <- s.next;
  n.prev <- s;
  s.next.prev <- n;
  s.next <- n

let promote s n =
  if s.next != n then begin
    unlink n;
    link_front s n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      (match t.sentinel with Some s -> promote s n | None -> ());
      Some n.value

let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      (match t.sentinel with Some s -> promote s n | None -> ());
      None
  | None ->
      let s =
        match t.sentinel with
        | Some s -> s
        | None ->
            let rec s = { key = k; value = v; prev = s; next = s } in
            t.sentinel <- Some s;
            s
      in
      let n = { key = k; value = v; prev = s; next = s } in
      link_front s n;
      Hashtbl.replace t.tbl k n;
      if Hashtbl.length t.tbl > t.cap then begin
        let lru = s.prev in
        unlink lru;
        Hashtbl.remove t.tbl lru.key;
        Some (lru.key, lru.value)
      end
      else None

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink n;
      Hashtbl.remove t.tbl k

let fold f acc t =
  match t.sentinel with
  | None -> acc
  | Some s ->
      let rec go acc n = if n == s then acc else go (f acc n.key n.value) n.next in
      go acc s.next
