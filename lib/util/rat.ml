type t = { num : Bigint.t; den : Bigint.t }

let zero = { num = Bigint.zero; den = Bigint.one }

(* Small-operand fast path. When every numerator and denominator fits in a
   single bigint limb (|v| < 2^30), cross-products fit in 60 bits and their
   sums in 61 — inside OCaml's 63-bit native int — so normalization can run
   on machine integers with a machine-int gcd, skipping the limb-array
   arithmetic entirely. This is the hot case on the validation path, where
   example tensors hold small integers. *)

let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* precondition: d > 0, and n/d exact in native ints. Integer results
   (d = 1, the common case on validation tensors) skip the gcd outright. *)
let mk_small n d =
  if n = 0 then zero
  else if d = 1 then { num = Bigint.of_int n; den = Bigint.one }
  else begin
    let g = igcd (Stdlib.abs n) d in
    if g = 1 then { num = Bigint.of_int n; den = Bigint.of_int d }
    else { num = Bigint.of_int (n / g); den = Bigint.of_int (d / g) }
  end

let[@inline] small b = Bigint.to_small b
let[@inline] is_big v = v = Stdlib.min_int

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then zero
  else begin
    let n = small num and d = small den in
    if not (is_big n || is_big d) then mk_small (if d < 0 then -n else n) (Stdlib.abs d)
    else begin
      let num, den =
        if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den)
      in
      let g = Bigint.gcd num den in
      { num = Bigint.div num g; den = Bigint.div den g }
    end
  end
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      make
        (Bigint.of_string (String.sub s 0 i))
        (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let to_string t =
  if Bigint.equal t.den Bigint.one then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let is_integer t = Bigint.equal t.den Bigint.one

let to_int t = if is_integer t then Bigint.to_int t.num else None

let to_float t =
  (* good enough for display / heuristics; not used in exact paths *)
  match (Bigint.to_int t.num, Bigint.to_int t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ -> float_of_string (Bigint.to_string t.num) /. float_of_string (Bigint.to_string t.den)

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  let an = small a.num and ad = small a.den and bn = small b.num and bd = small b.den in
  if not (is_big an || is_big ad || is_big bn || is_big bd) then
    mk_small ((an * bd) + (bn * ad)) (ad * bd)
  else
    make
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  let an = small a.num and ad = small a.den and bn = small b.num and bd = small b.den in
  if not (is_big an || is_big ad || is_big bn || is_big bd) then mk_small (an * bn) (ad * bd)
  else make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv t = make t.den t.num
let div a b = mul a (inv b)
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_one t = Bigint.equal t.num Bigint.one && Bigint.equal t.den Bigint.one

let compare a b =
  let an = small a.num and ad = small a.den and bn = small b.num and bd = small b.den in
  if not (is_big an || is_big ad || is_big bn || is_big bd) then
    Stdlib.compare (an * bd) (bn * ad)
  else Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = a == b || (Bigint.equal a.num b.num && Bigint.equal a.den b.den)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash t = Hashtbl.hash (Bigint.hash t.num, Bigint.hash t.den)
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
end
