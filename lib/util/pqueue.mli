(** Imperative min-priority queue (binary heap) keyed by [float].

    Used as the frontier of both A* searches (paper Algorithms 1 and 2).
    Ties are broken by a sequence number (FIFO by default), which makes
    the searches deterministic and keeps them faithful to the paper's
    "queue" phrasing. *)

type 'a t

(** [create ~dummy] — an empty queue. [dummy] is written into every slot
    not currently holding a live element (vacated by {!pop}, or allocated
    ahead by growth), so popped values become unreachable as soon as the
    caller drops them instead of lingering in the backing array. Pick a
    cheap constant of the element type (an immediate constructor, [0],
    [""], …). *)
val create : dummy:'a -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push q priority v] inserts [v] with the given priority; the
    tie-break sequence is drawn from the queue's internal counter. *)
val push : 'a t -> float -> 'a -> unit

(** [push_seq q priority seq v] inserts [v] with a caller-supplied
    tie-break sequence and leaves the internal counter untouched. Lets a
    caller share one sequence numbering across several structures (the
    admission-mode A* numbers its frontier and its suppressed ledger from
    one counter so interleaving matches the baseline pop order). Do not
    mix with {!push} on the same queue unless the caller guarantees the
    sequences stay unique. *)
val push_seq : 'a t -> float -> int -> 'a -> unit

(** [pop q] removes and returns a minimum-priority element, with its
    priority. [None] on an empty queue. *)
val pop : 'a t -> (float * 'a) option

(** [peek q] returns a minimum element without removing it. *)
val peek : 'a t -> (float * 'a) option

(** The minimum element's priority / tie-break sequence, without
    allocating. Undefined (raises) on an empty queue — guard with
    {!is_empty}. *)
val top_prio : 'a t -> float

val top_seq : 'a t -> int

val clear : 'a t -> unit

(** [snapshot q] returns the queue's backing value array and current
    size, with NO synchronisation — a deliberately racy view for
    speculative readers on other domains (the parallel A*'s worker
    domains scan frontier-shard prefixes through it while the owning
    domain keeps pushing and popping). Readers must clamp the returned
    size to [Array.length] of the returned array (a concurrent grow may
    have replaced the array), and must treat every slot as possibly
    stale: a live element, the queue's dummy, or an element that was
    already popped. Each slot read still yields a well-formed value of
    type ['a] (word-sized writes do not tear), so stale reads cost
    wasted work, never corruption. Never mutate through the snapshot. *)
val snapshot : 'a t -> 'a array * int
