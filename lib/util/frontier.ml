(* A sharded min-priority frontier: K independent {!Pqueue}s, with
   elements routed by [seq mod K] and popped in global (priority, seq)
   lexicographic order.

   Because every element carries a caller-unique [seq], the (prio, seq)
   order is total, so the pop stream is EXACTLY the pop stream of a
   single queue holding the union — for any K. Sharding changes only
   which physical heap an element sits in: the parallel A* gives each
   worker domain its own shard to scan for speculation (disjoint scan
   ranges, no contended hot top slots) while the coordinator pops the
   global minimum by comparing the K shard tops.

   Only the owning (coordinator) domain may call the mutating or
   ordered-read operations; worker domains read shards exclusively
   through {!Pqueue.snapshot}'s racy-view discipline. *)

type 'a t = { shards : 'a Pqueue.t array }

let create ~dummy ~shards =
  { shards = Array.init (max 1 shards) (fun _ -> Pqueue.create ~dummy) }

let n_shards t = Array.length t.shards
let shard t i = t.shards.(i)
let length t = Array.fold_left (fun a q -> a + Pqueue.length q) 0 t.shards
let is_empty t = Array.for_all Pqueue.is_empty t.shards

let push t prio seq v =
  Pqueue.push_seq t.shards.(seq mod Array.length t.shards) prio seq v

(* index of the shard holding the global (prio, seq) minimum; -1 if all
   shards are empty. K is tiny (the domain count), so a linear scan per
   pop is noise next to the heap sift. *)
let best t =
  let bi = ref (-1) and bp = ref infinity and bs = ref max_int in
  Array.iteri
    (fun i q ->
      if not (Pqueue.is_empty q) then begin
        let p = Pqueue.top_prio q and s = Pqueue.top_seq q in
        if !bi < 0 || p < !bp || (p = !bp && s < !bs) then begin
          bi := i;
          bp := p;
          bs := s
        end
      end)
    t.shards;
  !bi

(* Undefined (raise) on an empty frontier — guard with {!is_empty}. *)
let top_prio t = Pqueue.top_prio t.shards.(best t)
let top_seq t = Pqueue.top_seq t.shards.(best t)

let pop t =
  let i = best t in
  if i < 0 then None
  else
    let q = t.shards.(i) in
    let seq = Pqueue.top_seq q in
    match Pqueue.pop q with
    | Some (prio, v) -> Some (prio, seq, v)
    | None -> assert false
