(* Arbitrary-precision signed integers: sign-magnitude over base-2^30 limbs.

   Invariants:
   - [mag] is little-endian, has no trailing (most-significant) zero limbs;
   - the value zero is represented by [{ sign = 0; mag = [||] }];
   - [sign] is -1, 0 or 1 and is 0 iff [mag] is empty. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ---- magnitude helpers (arrays of limbs, no sign) ---- *)

let mag_normalize (a : int array) : int array =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  mag_normalize r

(* precondition: a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then (
      r.(i) <- s + base;
      borrow := 1)
    else (
      r.(i) <- s;
      borrow := 0)
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai, b.(j) < 2^30 so the product fits comfortably in a 63-bit int *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

(* multiply magnitude by a small int (0 <= m < base) *)
let mag_mul_small a m =
  if m = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* divide magnitude by a small int, returning (quotient, remainder) *)
let mag_divmod_small a m =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (mag_normalize q, !r)

(* Long division of magnitudes: schoolbook, limb-estimation with correction.
   Returns (quotient, remainder). *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* Normalize so the top limb of the divisor is >= base/2. *)
    let shift = ref 0 in
    let top = b.(Array.length b - 1) in
    let t = ref top in
    while !t < base / 2 do
      t := !t lsl 1;
      incr shift
    done;
    let scale = 1 lsl !shift in
    let a' = mag_mul_small a scale and b' = mag_mul_small b scale in
    let n = Array.length b' in
    let m = Array.length a' - n in
    let rem = Array.make (Array.length a' + 1) 0 in
    Array.blit a' 0 rem 0 (Array.length a');
    let q = Array.make (m + 1) 0 in
    let b_top = b'.(n - 1) in
    let b_snd = if n >= 2 then b'.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate q_j from the top two limbs of rem[j .. j+n]. *)
      let r2 = (rem.(j + n) lsl base_bits) lor rem.(j + n - 1) in
      let qhat = ref (Stdlib.min (r2 / b_top) (base - 1)) in
      let rhat = ref (r2 - (!qhat * b_top)) in
      let continue_ = ref true in
      while !continue_ && !rhat < base do
        (* check qhat * b_snd <= rhat*base + rem.(j+n-2) *)
        let lhs = !qhat * b_snd in
        let rhs = (!rhat lsl base_bits) lor (if j + n - 2 >= 0 then rem.(j + n - 2) else 0) in
        if lhs > rhs then (
          decr qhat;
          rhat := !rhat + b_top)
        else continue_ := false
      done;
      (* Multiply-subtract: rem[j..j+n] -= qhat * b'. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * b'.(i)) + !carry in
        carry := p lsr base_bits;
        let s = rem.(i + j) - (p land base_mask) - !borrow in
        if s < 0 then (
          rem.(i + j) <- s + base;
          borrow := 1)
        else (
          rem.(i + j) <- s;
          borrow := 0)
      done;
      let s = rem.(j + n) - !carry - !borrow in
      if s < 0 then begin
        (* qhat was one too large: add back. *)
        rem.(j + n) <- s + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s2 = rem.(i + j) + b'.(i) + !carry2 in
          rem.(i + j) <- s2 land base_mask;
          carry2 := s2 lsr base_bits
        done;
        rem.(j + n) <- (rem.(j + n) + !carry2) land base_mask
      end
      else rem.(j + n) <- s;
      q.(j) <- !qhat
    done;
    let rem = mag_normalize (Array.sub rem 0 n) in
    let rem, r0 = if scale = 1 then (rem, 0) else mag_divmod_small rem scale in
    assert (r0 = 0);
    (mag_normalize q, rem)
  end

(* ---- signed interface ---- *)

let mk sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

(* Interned one-limb values: exact-rational evaluation builds the same
   small integers over and over, so sharing them makes [of_int]
   allocation-free on that path. Magnitudes are never mutated, so the
   shared [mag] arrays are safe; index 0 is unused ([zero] has the unique
   empty-magnitude representation). *)
let cache_limit = 1024
let pos_cache = Array.init cache_limit (fun i -> { sign = 1; mag = [| i |] })
let neg_cache = Array.init cache_limit (fun i -> { sign = -1; mag = [| i |] })

let of_int n =
  if n = 0 then zero
  else if n > 0 && n < cache_limit then pos_cache.(n)
  else if n < 0 && n > -cache_limit then neg_cache.(-n)
  else if n > -base && n < base then
    { sign = (if n < 0 then -1 else 1); mag = [| Stdlib.abs n |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* careful with min_int: build magnitude limb by limb using negative
       accumulator to avoid overflow on [abs min_int] *)
    let rec limbs acc n =
      (* n <= 0 here; we peel limbs of |n| *)
      if n = 0 then List.rev acc
      else
        let l = -(n mod base) in
        (* n mod base is in (-base, 0] for n <= 0 *)
        limbs (l :: acc) (n / base)
    in
    let l = limbs [] (if n > 0 then -n else n) in
    { sign; mag = Array.of_list l |> mag_normalize }
  end

let one = of_int 1
let minus_one = of_int (-1)

let to_int t =
  (* max_int has 62 bits = at most 3 limbs of 30 bits *)
  if Array.length t.mag > 3 then None
  else begin
    let v = ref 0 and overflow = ref false in
    for i = Array.length t.mag - 1 downto 0 do
      if !v > (max_int - t.mag.(i)) / base then overflow := true
      else v := (!v * base) + t.mag.(i)
    done;
    if !overflow then None else Some (t.sign * !v)
  end

let[@inline] to_small t =
  match Array.length t.mag with
  | 0 -> 0
  | 1 -> t.sign * t.mag.(0)
  | _ -> Stdlib.min_int

let to_int_exn t =
  match to_int t with Some n -> n | None -> failwith "Bigint.to_int_exn: out of range"

let is_zero t = t.sign = 0
let sign t = t.sign
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (mag_add a.mag b.mag)
  else
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (mag_sub a.mag b.mag)
    else mk b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else mk (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  (* truncated division: quotient sign = product of signs, remainder sign = dividend's *)
  (mk (a.sign * b.sign) q, mk a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_mag a b = if Array.length b = 0 then a else gcd_mag b (snd (mag_divmod a b))

let gcd a b =
  let g = gcd_mag (abs a).mag (abs b).mag in
  mk 1 g

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

(* interning (see [of_int]) makes physical equality a frequent hit *)
let equal a b = a == b || compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash t = Hashtbl.hash (t.sign, t.mag)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = mag_divmod_small mag 1_000_000_000 in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go t.mag;
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let mult = of_int (int_of_float (10. ** float_of_int !chunk_len)) in
      acc := add (mul !acc mult) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  for i = start to n - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
        chunk := (!chunk * 10) + (Char.code c - Char.code '0');
        incr chunk_len;
        if !chunk_len = 9 then flush ()
    | c -> invalid_arg (Printf.sprintf "Bigint.of_string: invalid character %C" c)
  done;
  flush ();
  if neg_sign then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
