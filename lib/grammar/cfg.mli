(** Context-free grammars over TACO template syntax (paper Def. 4.1).

    Terminals are whole template tokens: a tensor access like [b(i,j)] is a
    single terminal symbol, exactly as the paper's generated grammars quote
    them (Figs. 3, 6, 7). Nonterminals carry a category used by the search
    to compute expression depth and penalties without hard-coding any
    particular grammar. *)

type term =
  | Tok_tensor of string * string list
      (** tensor access terminal; an empty index list is a scalar tensor *)
  | Tok_const  (** the symbolic constant ["Const"] *)
  | Tok_op of Stagg_taco.Ast.op
  | Tok_assign  (** ["="] *)
  | Tok_lparen
  | Tok_rparen
  | Tok_neg  (** prefix minus (full TACO grammar only) *)

type category =
  | Cat_program
  | Cat_expr  (** expression-valued: contributes to depth *)
  | Cat_op
  | Cat_tensor  (** derives a single tensor/const terminal *)
  | Cat_tail  (** bottom-up continuation nonterminals (nullable) *)

type sym = NT of string | T of term

type rule = {
  id : int;
  lhs : string;
  rhs : sym list;  (** empty list = epsilon production *)
  concrete_syntax : bool;
      (** true for productions that only affect concrete syntax (parens):
          skipped when deriving ASTs for probability learning *)
}

type t

(** [make ~start prods] numbers the rules in order. Each production is
    [(lhs, rhs)]; categories are given per nonterminal.
    @raise Invalid_argument if [start] or a referenced nonterminal has no
    category or no production. *)
val make :
  start:string ->
  categories:(string * category) list ->
  ?concrete_syntax:int list ->
  (string * sym list) list ->
  t

val start : t -> string
val rules : t -> rule array
val rule : t -> int -> rule
val rules_for : t -> string -> rule list
val nonterminals : t -> string list
val category : t -> string -> category

(** [rule_lhs_cat g id] — the category of rule [id]'s left-hand side,
    precomputed at {!make} time: an O(1) array read where
    [category g (rule g id).lhs] walks the category alist. The search's
    depth computation sits on this in its pop loop. *)
val rule_lhs_cat : t -> int -> category

(** Number of rules. *)
val size : t -> int

val term_to_string : term -> string
val sym_to_string : sym -> string
val rule_to_string : rule -> string
val pp : Format.formatter -> t -> unit
