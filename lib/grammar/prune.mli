(** Analysis-guided grammar pruning: which derivations are {e doomed}.

    A complete template is doomed when the validator's substitution
    enumerator ({!Stagg_template.Subst.enumerate}) is guaranteed to
    return the empty list for it — zero instantiations, zero work — so
    the search may skip its validation without changing any observable
    count. Four structural conditions have this property, mirroring
    [enumerate]'s own early exits:

    - the LHS tensor token's arity differs from the output's signature
      rank ([lhs_arity <> out_rank]);
    - some RHS tensor token's arity matches no signature argument's rank
      ([candidates_for arity = \[\]] — every pipeline argument carries a
      concrete rank);
    - the template mentions [Const] but the source constant pool is
      empty ([needs_const && consts = \[\]]);
    - the same tensor name occurs at two different arities
      ([not (arity_consistent template)]).

    The first three are per-rule facts over the rule's terminal tokens;
    the fourth is tracked incrementally over a derivation's rule sequence
    by a packed name→arity map (4 bits per name), threaded through the
    A* frontier as an [int].

    Deliberately NOT here: pruning on which {e operators} occur in the C
    source, or capping index-variable counts. Both can be semantically
    wrong — [(b*c)/c] validates wherever [b] does, and index variables do
    not affect substitution enumeration at all — so dropping such
    templates could steal attempts from (or reorder) the byte-identical
    replay. They are facts ({!Stagg_minic.Facts}), not prunes. *)

type reason = Lhs_rank | Arg_rank | Const_pool

val reason_to_string : reason -> string

type ctx = {
  out_rank : int option;  (** signature rank of the output parameter *)
  arg_ranks : int list option;  (** signature ranks of all arguments *)
  no_consts : bool;  (** the source constant pool is empty *)
  lhs_name : string;  (** the LHS tensor symbol (["a"]) *)
}

type t

(** Classify every rule of [g] once, before the search starts. *)
val restrict : Cfg.t -> ctx -> t

val n_rules : t -> int

(** Rules doomed in isolation (rank/constant conditions). *)
val n_doomed : t -> int

(** Per-reason doomed-rule tally, for reporting. *)
val doomed_counts : t -> (string * int) list

(** Whether arity-clash tracking is active (it degrades gracefully to
    off on grammars with too many tensor names, arities above 14, or
    several tensor tokens in one rule — none generated here). *)
val tracks_arity : t -> bool

(** The derivation state: a packed name→arity map, or the doomed sink.
    Order-insensitive — any permutation of the same rule multiset reaches
    the same verdict. *)
type state = int

val root : state
val is_doomed : state -> bool

(** [step t st rule_id] — the state after applying one more rule. *)
val step : t -> state -> int -> state
