(* Analysis-guided grammar pruning. See prune.mli for the soundness
   contract: a template is "doomed" only when [Subst.enumerate] is
   guaranteed to return zero substitutions for it, i.e. validation is a
   structural no-op. Three of the conditions are per-rule (a token's
   arity against the signature ranks, a Const token against an empty
   constant pool); the fourth — the same tensor name at two different
   arities — is detected incrementally over the rule sequence of a
   derivation through a packed name→arity map. *)

type reason = Lhs_rank | Arg_rank | Const_pool

let reason_to_string = function
  | Lhs_rank -> "LHS rank mismatch"
  | Arg_rank -> "no argument of matching rank"
  | Const_pool -> "empty constant pool"

type ctx = {
  out_rank : int option;
  arg_ranks : int list option;
  no_consts : bool;
  lhs_name : string;
}

(* [rule_sym.(id)]: -1 when rule [id] carries no tensor token, otherwise
   [(name_idx lsl 4) lor arity] for the incremental arity-clash tracker.
   The packed search state gives each of up to [max_names] names a 4-bit
   field holding (arity + 1), 0 = unseen; -1 is the doomed sink. *)
let max_names = 15
let max_arity = 14

type t = {
  rule_doomed : reason option array;
  rule_sym : int array;
  track : bool;  (** arity-clash tracking available for this grammar *)
  n_rules : int;
  n_doomed : int;
}

type state = int

let root : state = 0
let is_doomed (st : state) = st < 0

let step (t : t) (st : state) (rule_id : int) : state =
  if st < 0 then st
  else if t.rule_doomed.(rule_id) <> None then -1
  else
    let s = t.rule_sym.(rule_id) in
    if s < 0 then st
    else
      let shift = (s lsr 4) * 4 in
      let stored = (st lsr shift) land 15 in
      let arity1 = (s land 15) + 1 in
      if stored = 0 then st lor (arity1 lsl shift)
      else if stored = arity1 then st
      else -1

let restrict (g : Cfg.t) (ctx : ctx) : t =
  let n = Cfg.size g in
  let rule_doomed = Array.make n None in
  let rule_sym = Array.make n (-1) in
  let names : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let track = ref true in
  let name_idx name =
    match Hashtbl.find_opt names name with
    | Some i -> Some i
    | None ->
        let i = Hashtbl.length names in
        if i >= max_names then None
        else begin
          Hashtbl.add names name i;
          Some i
        end
  in
  Array.iter
    (fun (r : Cfg.rule) ->
      let tokens_seen = ref 0 in
      List.iter
        (fun (s : Cfg.sym) ->
          match s with
          | Cfg.NT _ -> ()
          | Cfg.T (Cfg.Tok_tensor (name, idxs)) -> (
              incr tokens_seen;
              let arity = List.length idxs in
              (if String.equal name ctx.lhs_name then (
                 match ctx.out_rank with
                 | Some rk when arity <> rk && rule_doomed.(r.id) = None ->
                     rule_doomed.(r.id) <- Some Lhs_rank
                 | _ -> ())
               else
                 match ctx.arg_ranks with
                 | Some ranks when (not (List.mem arity ranks)) && rule_doomed.(r.id) = None ->
                     rule_doomed.(r.id) <- Some Arg_rank
                 | _ -> ());
              if !tokens_seen > 1 || arity > max_arity then track := false
              else
                match name_idx name with
                | None -> track := false
                | Some i -> rule_sym.(r.id) <- (i lsl 4) lor arity)
          | Cfg.T Cfg.Tok_const ->
              if ctx.no_consts && rule_doomed.(r.id) = None then
                rule_doomed.(r.id) <- Some Const_pool
          | Cfg.T _ -> ())
        r.rhs)
    (Cfg.rules g);
  if not !track then Array.fill rule_sym 0 n (-1);
  let n_doomed = Array.fold_left (fun a d -> if d = None then a else a + 1) 0 rule_doomed in
  { rule_doomed; rule_sym; track = !track; n_rules = n; n_doomed }

let n_rules t = t.n_rules
let n_doomed t = t.n_doomed
let tracks_arity t = t.track

let doomed_counts (t : t) : (string * int) list =
  let tally r =
    Array.fold_left (fun a d -> if d = Some r then a + 1 else a) 0 t.rule_doomed
  in
  List.filter_map
    (fun r ->
      let n = tally r in
      if n = 0 then None else Some (reason_to_string r, n))
    [ Lhs_rank; Arg_rank; Const_pool ]
