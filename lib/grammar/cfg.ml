type term =
  | Tok_tensor of string * string list
  | Tok_const
  | Tok_op of Stagg_taco.Ast.op
  | Tok_assign
  | Tok_lparen
  | Tok_rparen
  | Tok_neg

type category = Cat_program | Cat_expr | Cat_op | Cat_tensor | Cat_tail

type sym = NT of string | T of term

type rule = { id : int; lhs : string; rhs : sym list; concrete_syntax : bool }

type t = {
  start : string;
  rules : rule array;
  by_lhs : (string, rule list) Hashtbl.t;
  categories : (string * category) list;
  lhs_cat : category array;  (** per-rule category of the lhs nonterminal *)
}

let term_to_string = function
  | Tok_tensor (name, []) -> name
  | Tok_tensor (name, idxs) -> Printf.sprintf "%s(%s)" name (String.concat "," idxs)
  | Tok_const -> "Const"
  | Tok_op op -> Stagg_taco.Ast.op_to_string op
  | Tok_assign -> "="
  | Tok_lparen -> "("
  | Tok_rparen -> ")"
  | Tok_neg -> "-"

let sym_to_string = function NT n -> n | T t -> Printf.sprintf "%S" (term_to_string t)

let rule_to_string r =
  Printf.sprintf "%s ::= %s" r.lhs
    (match r.rhs with [] -> "ε" | rhs -> String.concat " " (List.map sym_to_string rhs))

let make ~start ~categories ?(concrete_syntax = []) prods =
  let rules =
    Array.of_list
      (List.mapi
         (fun id (lhs, rhs) -> { id; lhs; rhs; concrete_syntax = List.mem id concrete_syntax })
         prods)
  in
  let by_lhs = Hashtbl.create 16 in
  Array.iter
    (fun r ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_lhs r.lhs) in
      Hashtbl.replace by_lhs r.lhs (cur @ [ r ]))
    rules;
  let check_nt n =
    if not (List.mem_assoc n categories) then
      invalid_arg (Printf.sprintf "Cfg.make: nonterminal %s has no category" n);
    if not (Hashtbl.mem by_lhs n) then
      invalid_arg (Printf.sprintf "Cfg.make: nonterminal %s has no production" n)
  in
  check_nt start;
  Array.iter
    (fun r -> List.iter (function NT n -> check_nt n | T _ -> ()) r.rhs)
    rules;
  let lhs_cat =
    (* every lhs of a reachable rule is categorized (checked above for the
       start symbol and all rhs nonterminals); default only pads rules that
       can never appear in a derivation tree *)
    Array.map
      (fun r -> Option.value ~default:Cat_program (List.assoc_opt r.lhs categories))
      rules
  in
  { start; rules; by_lhs; categories; lhs_cat }

let start g = g.start
let rules g = g.rules
let rule g id = g.rules.(id)
let rules_for g lhs = Option.value ~default:[] (Hashtbl.find_opt g.by_lhs lhs)
let nonterminals g = List.map fst g.categories |> List.filter (Hashtbl.mem g.by_lhs)

let category g n =
  match List.assoc_opt n g.categories with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cfg.category: unknown nonterminal %s" n)

let rule_lhs_cat g id = g.lhs_cat.(id)
let size g = Array.length g.rules

let pp fmt g =
  Format.fprintf fmt "@[<v>start: %s@," g.start;
  Array.iter (fun r -> Format.fprintf fmt "%s@," (rule_to_string r)) g.rules;
  Format.fprintf fmt "@]"
