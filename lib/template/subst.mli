(** Substitution enumeration for template validation (paper §6, Fig. 8).

    A substitution maps the template's symbolic tensors to the legacy
    program's arguments and [Const] to a constant from the source. Unsound
    bindings — a k-dimensional symbol bound to an argument of a different
    known rank — are discarded before execution, exactly as in Fig. 8. *)

open Stagg_util

type arg_info = {
  name : string;
  rank : int option;  (** [None] when static analysis could not tell *)
  is_size : bool;  (** scalar parameter that carries a dimension size *)
}

type t = {
  tensor_binding : (string * string) list;  (** template symbol → argument name *)
  const_binding : Rat.t option;  (** value for [Const], when the template has one *)
}

val pp : Format.formatter -> t -> unit

(** [enumerate ~template ~out ~out_rank ~args ~consts] lists every sound
    substitution, LHS bound to [out]. Empty when the template's LHS arity
    differs from [out_rank], when some symbol has no rank-compatible
    argument, or when the template mentions [Const] but [consts] is empty.
    The order is deterministic (argument-list order, constants last-varying). *)
val enumerate :
  template:Stagg_taco.Ast.program ->
  out:string ->
  out_rank:int ->
  args:arg_info list ->
  consts:Rat.t list ->
  t list

(** As {!enumerate}, but lazy: the same substitutions in the same order
    (including the deterministic [max_substitutions] truncation) without
    materializing the full product — the batched validator stops forcing
    the sequence at the first passing substitution. *)
val enumerate_seq :
  template:Stagg_taco.Ast.program ->
  out:string ->
  out_rank:int ->
  args:arg_info list ->
  consts:Rat.t list ->
  t Seq.t

(** [instantiate template s] produces the concrete TACO program: symbols
    renamed to argument names, [Const] replaced by its bound literal. *)
val instantiate : Stagg_taco.Ast.program -> t -> Stagg_taco.Ast.program
