open Stagg_util

type arg_info = { name : string; rank : int option; is_size : bool }

type t = { tensor_binding : (string * string) list; const_binding : Rat.t option }

let pp fmt s =
  Format.fprintf fmt "⟨%s%s⟩"
    (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "%s ↦ %s" a b) s.tensor_binding))
    (match s.const_binding with
    | None -> ""
    | Some c -> Printf.sprintf ", Const ↦ %s" (Rat.to_string c))

let max_substitutions = 50_000

let enumerate_seq ~template ~out ~out_rank ~args ~consts =
  match Templatize.symbols template with
  | [] -> Seq.empty
  | (lhs_sym, lhs_arity) :: rhs_syms ->
      if lhs_arity <> out_rank then Seq.empty
      else if not (Templatize.arity_consistent template) then Seq.empty
      else begin
        let candidates_for arity =
          List.filter
            (fun a ->
              match a.rank with
              | Some r -> r = arity
              | None -> (* unknown rank: only a safe guess for tensors *) arity > 0 || a.is_size)
            args
        in
        let needs_const = Templatize.has_const template in
        let const_choices = if needs_const then List.map Option.some consts else [ None ] in
        if needs_const && consts = [] then Seq.empty
        else begin
          let rec go syms acc =
            match syms with
            | [] ->
                Seq.map
                  (fun c -> { tensor_binding = (lhs_sym, out) :: List.rev acc; const_binding = c })
                  (List.to_seq const_choices)
            | (sym, arity) :: rest ->
                Seq.concat_map
                  (fun a -> go rest ((sym, a.name) :: acc))
                  (List.to_seq (candidates_for arity))
          in
          (* pathological templates: keep a deterministic prefix — same
             truncation as materializing everything and dropping the tail,
             but lazy, so a consumer that stops at the first hit never
             forces the rest of the product *)
          Seq.take max_substitutions (go rhs_syms [])
        end
      end

let enumerate ~template ~out ~out_rank ~args ~consts =
  List.of_seq (enumerate_seq ~template ~out ~out_rank ~args ~consts)

let instantiate template (s : t) =
  Templatize.rename template ~mapping:s.tensor_binding ~const:s.const_binding
