(** Lift the BLAS benchmark category with both STAGG searches and compare
    against the C2TACO baseline — the paper intro's motivating workload
    (legacy linear-algebra kernels written against raw pointers).

    Run with: [dune exec examples/blas_lifting.exe] *)

module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let () =
  let blas = Suite.by_category Bench.Blas in
  Printf.printf "Lifting the %d BLAS kernels\n\n" (List.length blas);
  Printf.printf "%-16s %-9s %-9s %-9s  %s\n" "kernel" "STAGG^TD" "STAGG^BU" "C2TACO" "lifted expression (TD)";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun (b : Bench.t) ->
      let td = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      let bu = Stagg.Pipeline.run Stagg.Method_.stagg_bu b in
      let c2 = Stagg_baselines.C2taco.run ~seed:20250604 ~heuristics:true b in
      let mark (r : Stagg.Result_.t) =
        if r.solved then Printf.sprintf "%.2fs" r.time_s else "--"
      in
      Printf.printf "%-16s %-9s %-9s %-9s  %s\n" b.name (mark td) (mark bu) (mark c2)
        (match td.solution with
        | Some sol -> Stagg_taco.Pretty.program_to_string sol.concrete
        | None -> "(not lifted)"))
    blas;
  Printf.printf "\nEvery lifted expression above was proven equivalent to its C source\n";
  Printf.printf "by bounded model checking over exact rationals (paper §7).\n"
