examples/quickstart.mli:
