examples/blas_lifting.ml: List Printf Stagg Stagg_baselines Stagg_benchsuite Stagg_taco String
