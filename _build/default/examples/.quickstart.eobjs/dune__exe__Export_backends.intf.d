examples/export_backends.mli:
