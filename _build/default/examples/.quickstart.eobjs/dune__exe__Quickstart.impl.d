examples/quickstart.ml: Array Format List Option Printf Rat Stagg Stagg_benchsuite Stagg_grammar Stagg_minic Stagg_oracle Stagg_taco Stagg_template Stagg_util String Value
