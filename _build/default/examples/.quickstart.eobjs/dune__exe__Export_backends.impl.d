examples/export_backends.ml: List Printf Stagg Stagg_benchsuite Stagg_minic Stagg_taco
