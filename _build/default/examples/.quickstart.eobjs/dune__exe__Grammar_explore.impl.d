examples/grammar_explore.ml: Format List Printf Stagg Stagg_benchsuite Stagg_grammar Stagg_template
