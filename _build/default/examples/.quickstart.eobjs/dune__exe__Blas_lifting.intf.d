examples/blas_lifting.mli:
