examples/llama_lifting.ml: List Option Printf Stagg Stagg_benchsuite Stagg_taco
