examples/llama_lifting.mli:
