(** Explore what the LLM teaches the synthesizer: print the learned
    probabilistic grammars for a few benchmarks and contrast the refined
    grammar against the full TACO grammar it replaces (paper §4, Table 3's
    grammar ablations).

    Run with: [dune exec examples/grammar_explore.exe] *)

module Suite = Stagg_benchsuite.Suite
module Cfg = Stagg_grammar.Cfg
module Pcfg = Stagg_grammar.Pcfg

let explore name =
  match Suite.find name with
  | None -> Printf.printf "no benchmark %s\n" name
  | Some b -> (
      Printf.printf "\n==== %s (ground truth: %s) ====\n" b.name b.ground_truth;
      match Stagg.Pipeline.prepare Stagg.Method_.stagg_td b with
      | Error e -> Printf.printf "preparation failed: %s\n" e
      | Ok prep ->
          Printf.printf "dimension list %s learned from %d candidates\n"
            (Stagg_template.Dimlist.to_string prep.dim_list)
            (List.length prep.templates);
          Format.printf "%a@." Pcfg.pp prep.pcfg;
          let refined_rules = Cfg.size (Pcfg.cfg prep.pcfg) in
          let full = Stagg_grammar.Taco_grammar.generate () in
          Printf.printf
            "refined grammar: %d productions — the full TACO template grammar has %d\n"
            refined_rules (Cfg.size full);
          (* what would the heuristic h estimate for a fresh search? *)
          List.iter
            (fun nt ->
              Printf.printf "  h(%s) = %.4f (max derivable-probability, §5.1 fixpoint)\n" nt
                (Pcfg.h prep.pcfg nt))
            (Cfg.nonterminals (Pcfg.cfg prep.pcfg)))

let () =
  Printf.printf "How STAGG turns LLM guesses into a search space\n";
  explore "art_gemv";
  explore "sa_const_sub";
  explore "blas_syrk_lt";
  (* and the one query whose solution needs five index variables: the
     grammar cannot express it, illustrating the template space's bound *)
  explore "dk_conv1x1"
