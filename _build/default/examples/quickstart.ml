(** Quickstart: lift the paper's running example (Fig. 2) end to end,
    narrating every stage of the pipeline (Fig. 1).

    Run with: [dune exec examples/quickstart.exe] *)

open Stagg_util
module Sig = Stagg_minic.Signature

(* The C program of paper Fig. 2: a row-wise dot product,
   Result = Mat1 · Mat2, written with raw pointer walks. *)
let fig2_source =
  {|
void function(int N, int* Mat1, int* Mat2, int* Result){
 int* p_m1;
 int* p_m2;
 int* p_t;
 int i, f;
 p_m1 = Mat1;
 p_t = Result;
 for (f = 0; f < N; f++) {
 *p_t = 0;
 p_m2 = &Mat2[0];
 for (i = 0; i < N; i++)
 *p_t += *p_m1++ * *p_m2++;
 p_t++;
 }
}
|}

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  banner "input legacy C (paper Fig. 2)";
  print_string fig2_source;

  (* Wrap the program as a benchmark: parameter tensor shapes, the output
     parameter, the ground truth the mock LLM conditions on. *)
  let bench =
    Stagg_benchsuite.Bench.mk ~name:"quickstart_fig2"
      ~category:Stagg_benchsuite.Bench.Artificial ~quality:Stagg_oracle.Llm_client.Near
      ~args:
        [
          Stagg_benchsuite.Bench.size "N";
          Stagg_benchsuite.Bench.arr "Mat1" [ "N"; "N" ];
          Stagg_benchsuite.Bench.arr "Mat2" [ "N" ];
          Stagg_benchsuite.Bench.arr "Result" [ "N" ];
        ]
      ~out:"Result" ~truth:"Result(i) = Mat1(i,j) * Mat2(j)" fig2_source
  in
  let func = Stagg_benchsuite.Bench.func bench in

  banner "① static analysis of the C source";
  List.iter
    (fun a -> Format.printf "  %a@." Stagg_minic.Recover.pp_access a)
    (Stagg_minic.Recover.analyze func);
  Printf.printf "  output parameter: %s\n"
    (Option.value ~default:"?" (Stagg_minic.Dims.output_param func));
  Printf.printf "  LHS dimensionality (array recovery + delinearization): %s\n"
    (match Stagg_minic.Dims.lhs_dim func with Some d -> string_of_int d | None -> "?");

  banner "② LLM candidates and the learned grammar of templates";
  let m = Stagg.Method_.stagg_td in
  (match Stagg.Pipeline.prepare m bench with
  | Error e -> Printf.printf "  preparation failed: %s\n" e
  | Ok prep ->
      Printf.printf "  %d syntactically valid candidates, e.g.:\n" (List.length prep.candidates);
      List.iteri
        (fun k c ->
          if k < 4 then Printf.printf "    %s\n" (Stagg_taco.Pretty.program_to_string c))
        prep.candidates;
      Printf.printf "  predicted dimension list: %s\n"
        (Stagg_template.Dimlist.to_string prep.dim_list);
      Format.printf "  probabilistic grammar of templates:@.%a@." Stagg_grammar.Pcfg.pp prep.pcfg);

  banner "③/④ search, validation and bounded verification";
  let r = Stagg.Pipeline.run m bench in
  Format.printf "  %a@." Stagg.Result_.pp r;
  (match r.solution with
  | None -> ()
  | Some sol ->
      Printf.printf "  winning template:     %s\n"
        (Stagg_taco.Pretty.program_to_string sol.template);
      Format.printf "  winning substitution: %a@." Stagg_template.Subst.pp sol.subst;

      banner "compiled TACO kernel (what the TACO compiler would emit)";
      (match Stagg_taco.Lower.lower sol.concrete with
      | Ok kernel -> print_string (Stagg_taco.Ir.kernel_to_c ~name:"lifted" kernel)
      | Error e -> Printf.printf "  lowering failed: %s\n" e);

      banner "sanity: run both programs on a concrete input";
      let n = 3 in
      let module CI = Stagg_minic.Interp.Make (Value.Rat_value) in
      let module TI = Stagg_taco.Interp.Make (Value.Rat_value) in
      let mat1 = Array.init (n * n) (fun i -> Rat.of_int (i + 1)) in
      let mat2 = Array.init n (fun i -> Rat.of_int (i + 1)) in
      let result = Array.make n Rat.zero in
      (match
         CI.run func
           ~args:
             [
               CI.Scalar (Rat.of_int n); CI.Array (Array.copy mat1); CI.Array (Array.copy mat2);
               CI.Array result;
             ]
       with
      | Ok () ->
          Printf.printf "  C:    [%s]\n"
            (String.concat "; " (Array.to_list (Array.map Rat.to_string result)))
      | Error e -> Printf.printf "  C failed: %s\n" e);
      let env =
        [
          ("Mat1", Stagg_taco.Tensor.of_flat_array [| n; n |] mat1);
          ("Mat2", Stagg_taco.Tensor.of_flat_array [| n |] mat2);
          ("N", Stagg_taco.Tensor.scalar (Rat.of_int n));
          ("Result", Stagg_taco.Tensor.of_flat_array [| n |] result);
        ]
      in
      match TI.run ~env sol.concrete with
      | Ok out ->
          Printf.printf "  TACO: [%s]\n"
            (String.concat "; " (Array.to_list (Array.map Rat.to_string (Stagg_taco.Tensor.to_flat_array out))))
      | Error e -> Printf.printf "  TACO failed: %s\n" e)
