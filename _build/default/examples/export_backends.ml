(** Lift a few kernels and render each for the high-performance backends —
    the end-to-end payoff of lifting (paper §1: access to tensor DSLs and
    their compilers).

    Run with: [dune exec examples/export_backends.exe] *)

module Suite = Stagg_benchsuite.Suite
module Export = Stagg_taco.Export

let () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some b -> (
          Printf.printf "==== %s ====\n" name;
          let r = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
          match r.solution with
          | None -> Printf.printf "not lifted\n"
          | Some sol ->
              Printf.printf "lifted: %s\n\n" (Stagg_taco.Pretty.program_to_string sol.concrete);
              (match Export.to_numpy ~name sol.concrete with
              | Ok py -> Printf.printf "-- NumPy --\n%s\n" py
              | Error e -> Printf.printf "NumPy export: %s\n" e);
              (match Export.to_pytorch ~name sol.concrete with
              | Ok py -> Printf.printf "-- PyTorch --\n%s\n" py
              | Error e -> Printf.printf "PyTorch export: %s\n" e);
              (match Export.to_taco_cpp ~name sol.concrete with
              | Ok cpp -> Printf.printf "-- TACO C++ --\n%s\n" cpp
              | Error e -> Printf.printf "TACO export: %s\n" e);
              (* ... and back to plain C through our own TACO backend *)
              let params =
                List.filter_map
                  (fun (pname, spec) ->
                    match spec with
                    | Stagg_minic.Signature.Arr dims when pname <> b.signature.out ->
                        Some { Stagg_taco.Codegen_c.tname = pname; dims }
                    | Stagg_minic.Signature.Scalar_data ->
                        Some { Stagg_taco.Codegen_c.tname = pname; dims = [] }
                    | _ -> None)
                  b.signature.args
              in
              let out_dims =
                match Stagg_minic.Signature.out_spec b.signature with
                | Stagg_minic.Signature.Arr dims -> dims
                | _ -> []
              in
              (match
                 Stagg_taco.Codegen_c.emit_program ~name ~params
                   ~out:{ Stagg_taco.Codegen_c.tname = b.signature.out; dims = out_dims }
                   sol.concrete
               with
              | Ok c -> Printf.printf "-- regenerated C (our TACO backend) --\n%s\n" c
              | Error e -> Printf.printf "C backend: %s\n" e)))
    [ "art_gemv"; "blas_saxpy"; "dk_mse" ]
