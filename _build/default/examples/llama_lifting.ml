(** Lift the llama benchmark category — the dense kernels of a
    transformer's C inference loop (paper §8 draws 6 queries from
    llama2.cpp) — and show the optimized loop nests the TACO compiler
    substrate emits for each lifting.

    Run with: [dune exec examples/llama_lifting.exe] *)

module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let () =
  let kernels = Suite.by_category Bench.Llama in
  Printf.printf "Lifting %d transformer inference kernels\n" (List.length kernels);
  List.iter
    (fun (b : Bench.t) ->
      Printf.printf "\n==== %s ====\n" b.name;
      let r = Stagg.Pipeline.run Stagg.Method_.stagg_td b in
      match r.solution with
      | None ->
          Printf.printf "not lifted (%s)\n" (Option.value ~default:"?" r.failure)
      | Some sol -> (
          Printf.printf "lifted in %.3fs after %d synthesis attempts:\n  %s\n" r.time_s r.attempts
            (Stagg_taco.Pretty.program_to_string sol.concrete);
          match Stagg_taco.Lower.lower sol.concrete with
          | Ok kernel ->
              Printf.printf "compiled kernel:\n%s" (Stagg_taco.Ir.kernel_to_c ~name:b.name kernel)
          | Error e -> Printf.printf "lowering failed: %s\n" e))
    kernels
