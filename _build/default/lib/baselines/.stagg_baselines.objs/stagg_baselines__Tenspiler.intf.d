lib/baselines/tenspiler.mli: Stagg Stagg_benchsuite
