lib/baselines/tenspiler.ml: Hashtbl Lazy List Prng Stagg Stagg_benchsuite Stagg_taco Stagg_util Stagg_validate Stagg_verify Unix
