lib/baselines/c2taco.mli: Stagg Stagg_benchsuite
