lib/baselines/llm_only.mli: Stagg Stagg_benchsuite
