lib/baselines/c2taco.ml: Ast Hashtbl List Prng Rat Stagg Stagg_benchsuite Stagg_minic Stagg_taco Stagg_template Stagg_util Stagg_validate String Unix
