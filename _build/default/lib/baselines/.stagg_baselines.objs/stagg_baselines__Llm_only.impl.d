lib/baselines/llm_only.ml: Hashtbl List Prng Stagg Stagg_benchsuite Stagg_minic Stagg_oracle Stagg_template Stagg_util Stagg_validate Stagg_verify Unix
