(** A deterministic simulated GPT-4 for sealed-environment reproduction.

    Real LLM candidates for tensor lifting are near-misses: right overall
    shape, wrong index wiring, occasionally a wrong operator, sometimes a
    dropped or invented tensor, idiosyncratic naming, [:=], [sum(...)]
    wrappers and the odd syntax error (paper Response 1). This generator
    reproduces that distribution around a benchmark's ground truth,
    controlled by a per-benchmark {!Llm_client.quality} profile and a
    seeded PRNG, so whole-suite runs are reproducible. See DESIGN.md §2
    for why this substitution preserves the behaviour under study. *)

(** [query ~prng ~ground_truth ~quality ()] produces 10–12 raw response
    lines, as {!Llm_client.S} would. *)
val query :
  prng:Stagg_util.Prng.t ->
  ground_truth:Stagg_taco.Ast.program ->
  quality:Llm_client.quality ->
  unit ->
  string list

(** [client ~prng ~ground_truth ~quality] packages {!query} as a
    first-class {!Llm_client.S} (the prompt is accepted and ignored: the
    mock conditions on the ground truth instead of reading C). *)
val client :
  prng:Stagg_util.Prng.t ->
  ground_truth:Stagg_taco.Ast.program ->
  quality:Llm_client.quality ->
  (module Llm_client.S)
