lib/oracle/response.ml: List Stagg_taco String
