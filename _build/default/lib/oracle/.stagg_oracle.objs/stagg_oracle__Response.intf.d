lib/oracle/response.mli: Stagg_taco
