lib/oracle/mock_llm.mli: Llm_client Stagg_taco Stagg_util
