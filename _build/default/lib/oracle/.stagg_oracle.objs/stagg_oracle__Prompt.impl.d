lib/oracle/prompt.ml: Printf
