lib/oracle/llm_client.ml:
