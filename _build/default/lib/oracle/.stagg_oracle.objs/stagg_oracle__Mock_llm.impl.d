lib/oracle/mock_llm.ml: Array Hashtbl List Llm_client Option Printf Prng Stagg_taco Stagg_template Stagg_util String
