lib/oracle/replay.ml: List Llm_client String
