lib/oracle/replay.mli: Llm_client
