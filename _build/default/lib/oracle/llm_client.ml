(** The LLM interface STAGG queries (paper §2.1, Prompt 1).

    The pipeline is written against this module type, so the deterministic
    {!Mock_llm} used for offline reproduction and a real HTTP client are
    interchangeable. A query returns the raw response lines; parsing and
    syntactic filtering happen downstream in {!Response}. *)

module type S = sig
  (** [query ~prompt] returns the model's candidate expressions, one per
      line, exactly as the model printed them (numbering, [:=], [sum(...)]
      wrappers and occasional garbage included). *)
  val query : prompt:string -> string list
end

(** How accurate the simulated model is on a given benchmark; used by the
    benchmark suite to calibrate the mock against the paper's measured
    LLM-only success rate (≈44% of benchmarks, Table 3). *)
type quality =
  | Exact  (** some responses are correct up to renaming *)
  | Near  (** all responses are wrong, but the solution is in their
               neighborhood (right structure, wrong indices/operators) *)
  | Far  (** responses mislead even about shape: wrong arity, dropped or
              spurious tensors *)

let quality_to_string = function Exact -> "exact" | Near -> "near" | Far -> "far"
