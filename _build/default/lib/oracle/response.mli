(** Parsing of raw LLM response lines into TACO candidate programs
    (paper §4: "we parse in as many solutions as the LLM gives us ... and
    discard any syntactically incorrect solutions").

    Handles list numbering and bullets, surrounding code fences and
    brackets, [:=] and [sum(...)] (both handled by the TACO parser), and
    silently drops lines that still fail to parse. *)

(** [parse_line s] — one candidate, if the line contains one. *)
val parse_line : string -> Stagg_taco.Ast.program option

(** [parse_all lines] — every syntactically valid candidate, in order. *)
val parse_all : string list -> Stagg_taco.Ast.program list
