(** Prompt construction (paper Prompt 1, used verbatim). *)

let role = "You are a scientific assistant that knows a lot about transpilation."

let temperature = 1.0

let n_requested = 10

let build ~c_source =
  Printf.sprintf
    "Translate the following C code to an expression in the TACO tensor index notation. The \
     expression must be valid as input to the taco compiler. Return a list with %d possible \
     expressions. Return the list and only the list, no explanations.\n\n%s"
    n_requested c_source
