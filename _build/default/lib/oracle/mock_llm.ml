open Stagg_util
open Stagg_taco.Ast
module Pretty = Stagg_taco.Pretty

(* Perturbation probabilities per quality profile. *)
type profile = {
  p_exact : float;  (** emit the truth (up to renaming) *)
  p_index_swap : float;  (** permute the indices of one access *)
  p_index_replace : float;  (** replace one index variable by another *)
  p_op_swap : float;  (** replace one operator by the confusion operator *)
  p_lhs : float;  (** wrong LHS arity (paper Response 1's [r(f) = ...]) *)
  p_drop : float;  (** drop one tensor from the expression *)
  p_add : float;  (** add a spurious tensor *)
  p_arity : float;  (** change the arity of one access *)
  p_garbage : float;  (** emit a syntactically broken line *)
}

let profile_of = function
  | Llm_client.Exact ->
      (* real LLMs essentially never invent extra tensors on kernels they
         understand (p_add = 0): inventions lengthen the candidate's
         dimension list, and the paper's max-length filter (§4.2.3) would
         let a single invention hijack the prediction *)
      {
        p_exact = 0.45;
        p_index_swap = 0.30;
        p_index_replace = 0.20;
        p_op_swap = 0.08;
        p_lhs = 0.08;
        p_drop = 0.05;
        p_add = 0.;
        p_arity = 0.03;
        p_garbage = 0.02;
      }
  | Llm_client.Near ->
      {
        p_exact = 0.;
        p_index_swap = 0.55;
        p_index_replace = 0.45;
        p_op_swap = 0.30;
        p_lhs = 0.25;
        p_drop = 0.08;
        p_add = 0.;
        p_arity = 0.05;
        p_garbage = 0.05;
      }
  | Llm_client.Far ->
      {
        p_exact = 0.;
        p_index_swap = 0.5;
        p_index_replace = 0.5;
        p_op_swap = 0.30;
        p_lhs = 0.25;
        p_drop = 0.30;
        p_add = 0.25;
        p_arity = 0.35;
        p_garbage = 0.12;
      }

(* ---- naming styles (erased by templatization, kept for realism) ---- *)

let naming_styles =
  [
    (fun n _ -> n) (* keep the source names *);
    (fun n _ -> String.lowercase_ascii n);
    (fun _ k -> Printf.sprintf "t%d" k);
    (fun n k ->
      if String.length n >= 2 then String.lowercase_ascii (String.sub n 0 2) ^ string_of_int k
      else n);
  ]

let index_pools = [ [ "i"; "j"; "k"; "l" ]; [ "f"; "g"; "h"; "m" ]; [ "x"; "y"; "z"; "w" ] ]

let rename prng (p : program) : program =
  let style = Prng.choose prng naming_styles in
  let pool = Prng.choose prng index_pools in
  let tensor_map = Hashtbl.create 8 and index_map = Hashtbl.create 8 in
  let next_t = ref 0 and next_i = ref 0 in
  let map_tensor n =
    match Hashtbl.find_opt tensor_map n with
    | Some x -> x
    | None ->
        let x = style n !next_t in
        incr next_t;
        (* avoid collisions between renamed tensors *)
        let x = if Hashtbl.fold (fun _ v acc -> acc || v = x) tensor_map false then
            x ^ string_of_int !next_t
          else x
        in
        Hashtbl.add tensor_map n x;
        x
  in
  let map_index i =
    match Hashtbl.find_opt index_map i with
    | Some x -> x
    | None ->
        let x =
          if !next_i < List.length pool then List.nth pool !next_i else i ^ string_of_int !next_i
        in
        incr next_i;
        Hashtbl.add index_map i x;
        x
  in
  let rec go = function
    | Access (n, idxs) -> Access (map_tensor n, List.map map_index idxs)
    | Const c -> Const c
    | Neg e -> Neg (go e)
    | Bin (op, a, b) -> Bin (op, go a, go b)
  in
  let lhs_n, lhs_i = p.lhs in
  (* map the LHS first so it gets the first tensor/index names *)
  let lhs = (map_tensor lhs_n, List.map map_index lhs_i) in
  { lhs; rhs = go p.rhs }

(* ---- structural perturbations ---- *)

let accesses_of (e : expr) =
  let rec go acc = function
    | Access (n, idxs) -> (n, idxs) :: acc
    | Const _ -> acc
    | Neg e -> go acc e
    | Bin (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

(* Apply [f] to the [target]-th access of the expression (0-based). *)
let map_nth_access target f (e : expr) =
  let k = ref (-1) in
  let rec go = function
    | Access (n, idxs) ->
        incr k;
        if !k = target then f n idxs else Access (n, idxs)
    | Const c -> Const c
    | Neg e -> Neg (go e)
    | Bin (op, a, b) ->
        let a' = go a in
        let b' = go b in
        Bin (op, a', b')
  in
  go e

let swap_indices prng (e : expr) =
  let multi =
    List.mapi (fun k (_, idxs) -> (k, idxs)) (accesses_of e)
    |> List.filter (fun (_, idxs) -> List.length idxs >= 2)
  in
  match multi with
  | [] -> e
  | _ ->
      let target, _ = Prng.choose prng multi in
      map_nth_access target
        (fun n idxs ->
          let arr = Array.of_list idxs in
          let a = Prng.int prng (Array.length arr) in
          let b = Prng.int prng (Array.length arr) in
          let tmp = arr.(a) in
          arr.(a) <- arr.(b);
          arr.(b) <- tmp;
          Access (n, Array.to_list arr))
        e

let replace_index prng (p : program) (e : expr) =
  let all_indices = indices_of_program p in
  let indexed = List.mapi (fun k (_, idxs) -> (k, idxs)) (accesses_of e) in
  let with_idx = List.filter (fun (_, idxs) -> idxs <> []) indexed in
  match (with_idx, all_indices) with
  | [], _ | _, [] -> e
  | _ ->
      let target, _ = Prng.choose prng with_idx in
      map_nth_access target
        (fun n idxs ->
          let pos = Prng.int prng (List.length idxs) in
          let replacement = Prng.choose prng all_indices in
          Access (n, List.mapi (fun k i -> if k = pos then replacement else i) idxs))
        e

let swap_op prng confusion (e : expr) =
  let n_bins =
    let rec count = function
      | Access _ | Const _ -> 0
      | Neg e -> count e
      | Bin (_, a, b) -> 1 + count a + count b
    in
    count e
  in
  if n_bins = 0 then e
  else begin
    let target = Prng.int prng n_bins in
    let k = ref (-1) in
    let rec go = function
      | Access _ as a -> a
      | Const _ as c -> c
      | Neg e -> Neg (go e)
      | Bin (op, a, b) ->
          incr k;
          let this = !k in
          let a' = go a in
          let b' = go b in
          Bin ((if this = target then confusion op else op), a', b')
    in
    go e
  end

let drop_tensor prng (e : expr) =
  let rec candidates = function
    | Access _ | Const _ | Neg _ -> []
    | Bin (_, a, b) ->
        (* dropping means replacing this Bin by one of its children *)
        [ `Here ]
        |> List.append (List.map (fun c -> `Left c) (candidates a))
        |> List.append (List.map (fun c -> `Right c) (candidates b))
  in
  let rec apply path e =
    match (path, e) with
    | `Here, Bin (_, a, b) -> if Prng.bool prng then a else b
    | `Left p, Bin (op, a, b) -> Bin (op, apply p a, b)
    | `Right p, Bin (op, a, b) -> Bin (op, a, apply p b)
    | _, e -> e
  in
  match candidates e with [] -> e | cs -> apply (Prng.choose prng cs) e

let add_tensor prng (p : program) (e : expr) =
  let names = List.map fst (tensors_in_order p) in
  let name = Prng.choose prng names ^ "x" in
  let idxs =
    match indices_of_program p with
    | [] -> []
    | pool -> List.init (Prng.int_range prng 0 (min 2 (List.length pool))) (fun _ -> Prng.choose prng pool)
  in
  let op = Prng.choose prng [ Add; Mul; Sub ] in
  if Prng.bool prng then Bin (op, e, Access (name, idxs)) else Bin (op, Access (name, idxs), e)

let change_arity prng (e : expr) =
  let indexed = List.mapi (fun k (_, idxs) -> (k, idxs)) (accesses_of e) in
  match indexed with
  | [] -> e
  | _ ->
      let target, idxs = Prng.choose prng indexed in
      map_nth_access target
        (fun n old ->
          if old = [] || (Prng.bool prng && List.length old < 3) then
            (* add an index *)
            let extra = match idxs with [] -> "i" | i :: _ -> i in
            Access (n, old @ [ extra ])
          else Access (n, List.tl old))
        e

(* ---- rendering, with notational quirks ---- *)

let render prng (p : program) =
  let s = Pretty.program_to_string p in
  let s =
    if Prng.chance prng 0.2 then
      (* := instead of = *)
      match String.index_opt s '=' with
      | Some i -> String.sub s 0 i ^ ":=" ^ String.sub s (i + 1) (String.length s - i - 1)
      | None -> s
    else s
  in
  if Prng.chance prng 0.15 then begin
    (* wrap the RHS in an explicit sum over a reduction index *)
    match (String.index_opt s '=', reduction_indices p) with
    | Some i, r :: _ ->
        let lhs = String.sub s 0 (i + 1) in
        let rhs = String.sub s (i + 1) (String.length s - i - 1) in
        Printf.sprintf "%s sum(%s,%s)" lhs r rhs
    | _ -> s
  end
  else s

let garbage_line prng (p : program) =
  let s = Pretty.program_to_string p in
  match Prng.int prng 3 with
  | 0 -> s ^ " +" (* trailing operator *)
  | 1 -> String.concat "" [ "taco: "; s; ")" ] (* stray paren and prose *)
  | _ -> "I cannot translate this code."

(* Rewire one index of a >=2-ary access to another of its indices — a
   transposition-style miss that keeps every dimension-list entry. *)
let miswire_index (e : expr) =
  let changed = ref false in
  let rec go = function
    | Access (n, idxs) when (not !changed) && List.length idxs >= 2 -> (
        match idxs with
        | a :: b :: rest when not (String.equal a b) ->
            changed := true;
            Access (n, b :: a :: rest)
        | _ -> Access (n, idxs))
    | Access _ as a -> a
    | Const _ as c -> c
    | Neg e -> Neg (go e)
    | Bin (op, a, b) ->
        let a' = go a in
        let b' = go b in
        Bin (op, a', b')
  in
  let e' = go e in
  if !changed then Some e' else None

(* Guarantee a candidate is structurally different from the truth: a
   "near miss" that happens to be the solution is not a near miss. Index
   renaming alone cannot make it different (templatization normalizes
   names), so mutate the structure. A mutation is picked at random among
   the applicable ones so the candidate set stays diverse — in particular
   the true operator keeps appearing, and wrong-LHS-arity answers (the
   prototypical real-LLM error of paper Response 1, e.g. [r(f) = ...] for
   a scalar result) are well represented. The result is a program, not
   just an expression, because the LHS may be the part that changes. *)
let lhs_slip prng (truth : program) =
  let lhs_name, lhs_idxs = truth.lhs in
  let idxs' =
    match lhs_idxs with
    | [] -> [ "i" ]
    | _ :: rest -> if Prng.bool prng then rest else lhs_idxs @ [ "i" ]
  in
  (lhs_name, idxs')

(* Structural identity up to templatization: index standardization erases
   alpha-renamings (a full-reduction miswire like [b * c(j,i)] standardizes
   back to [b * c(i,j)]), so the miss test must compare templates. *)
let same_template (a : program) (b : program) =
  match
    (Stagg_template.Templatize.templatize a, Stagg_template.Templatize.templatize b)
  with
  | Some ta, Some tb -> equal_program ta tb
  | _ -> equal_program a b

let force_difference prng confusion ~(original : program) (truth : program) rhs : program =
  let candidate = { truth with rhs } in
  if not (same_template candidate original) then candidate
  else begin
    let mutate_lhs () =
      let slipped = { truth with lhs = lhs_slip prng truth } in
      if same_template slipped original then None else Some slipped
    in
    let options =
      (* notes: swapping operands would NOT do — templatization letters
         tensors by order of appearance, so [B/A] renames straight back to
         the solution template [b/c]. The choice is weighted (by repeating
         entries) toward mutations that keep the candidate set's operator
         and dimension statistics intact: index miswiring and LHS-arity
         errors dominate, exactly the classes paper Response 1 exhibits. *)
      List.filter_map
        (fun f -> f ())
        [
          (fun () -> Option.map (fun e -> { truth with rhs = e }) (miswire_index rhs));
          (fun () -> Option.map (fun e -> { truth with rhs = e }) (miswire_index rhs));
          mutate_lhs;
          mutate_lhs;
          mutate_lhs;
          (fun () ->
            let bumped = change_arity prng rhs in
            if equal_expr bumped rhs then None else Some { truth with rhs = bumped });
          (fun () ->
            let swapped = swap_op prng confusion rhs in
            if equal_expr swapped rhs then None else Some { truth with rhs = swapped });
        ]
    in
    let options = List.filter (fun p -> not (same_template p original)) options in
    match options with
    | [] -> candidate (* inert ground truth: nothing to mutate *)
    | opts -> Prng.choose prng opts
  end

let candidate prng profile truth =
  if Prng.chance prng profile.p_garbage then garbage_line prng truth
  else begin
    let confusion =
      (* one fixed confusion operator per query keeps the candidate
         operator set small, as observed in real LLM responses *)
      match truth.rhs with
      | Bin (Mul, _, _) -> fun _ -> Add
      | _ -> fun _ -> Mul
    in
    let rhs = truth.rhs in
    let rhs = if Prng.chance prng profile.p_index_swap then swap_indices prng rhs else rhs in
    let rhs =
      if Prng.chance prng profile.p_index_replace then replace_index prng truth rhs else rhs
    in
    let rhs = if Prng.chance prng profile.p_op_swap then swap_op prng confusion rhs else rhs in
    let rhs = if Prng.chance prng profile.p_drop then drop_tensor prng rhs else rhs in
    let rhs = if Prng.chance prng profile.p_add then add_tensor prng truth rhs else rhs in
    let rhs = if Prng.chance prng profile.p_arity then change_arity prng rhs else rhs in
    let lhs = if Prng.chance prng profile.p_lhs then lhs_slip prng truth else truth.lhs in
    let prog =
      if profile.p_exact = 0. then
        force_difference prng confusion ~original:truth { truth with lhs } rhs
      else { lhs; rhs }
    in
    render prng (rename prng prog)
  end

let query ~prng ~ground_truth ~quality () =
  let profile = profile_of quality in
  let n = Prng.int_range prng 10 12 in
  List.init n (fun _ ->
      if Prng.chance prng profile.p_exact then render prng (rename prng ground_truth)
      else candidate prng profile ground_truth)

let client ~prng ~ground_truth ~quality =
  (module struct
    let query ~prompt =
      ignore prompt;
      query ~prng ~ground_truth ~quality ()
  end : Llm_client.S)
