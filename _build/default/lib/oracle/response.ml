let strip_prefixes s =
  let s = String.trim s in
  (* leading list numbering: "3." / "3)" / "-" / "*" *)
  let n = String.length s in
  let rec skip_digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then skip_digits (i + 1) else i in
  let i = skip_digits 0 in
  let s =
    if i > 0 && i < n && (s.[i] = '.' || s.[i] = ')') then String.sub s (i + 1) (n - i - 1)
    else if n > 1 && (s.[0] = '-' || s.[0] = '*') && s.[1] = ' ' then String.sub s 2 (n - 2)
    else s
  in
  let s = String.trim s in
  (* surrounding quotes / backticks / brackets *)
  let strip_pair l r s =
    let n = String.length s in
    if n >= 2 && s.[0] = l && s.[n - 1] = r then String.sub s 1 (n - 2) else s
  in
  s |> strip_pair '`' '`' |> strip_pair '"' '"' |> strip_pair '[' ']' |> String.trim

let parse_line s =
  let s = strip_prefixes s in
  if String.length s = 0 then None
  else
    match Stagg_taco.Parser.parse_program s with
    | Ok p -> Some p
    | Error _ -> None

let parse_all lines = List.filter_map parse_line lines
