let keep line =
  let t = String.trim line in
  String.length t > 0 && t.[0] <> '#'

let of_lines lines =
  let lines = List.filter keep lines in
  (module struct
    let query ~prompt =
      ignore prompt;
      lines
  end : Llm_client.S)

let of_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  of_lines (List.rev !lines)
