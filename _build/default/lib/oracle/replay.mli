(** A replay {!Llm_client.S}: serve candidate lists recorded from a real
    LLM session.

    The sealed reproduction environment has no network, but the pipeline
    is written against {!Llm_client.S}; this client closes the loop with
    reality — run the paper's Prompt 1 against a real model once, save the
    raw response, and replay it here. A transcript file holds one response
    line per line; blank lines and [#]-comments are skipped (the usual
    cleanup when cutting responses out of a chat log). *)

(** [of_lines lines] — an in-memory replay client. *)
val of_lines : string list -> (module Llm_client.S)

(** [of_file path] — replay a transcript file.
    @raise Sys_error if the file cannot be read. *)
val of_file : string -> (module Llm_client.S)
