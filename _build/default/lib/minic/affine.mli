(** Multivariate integer polynomials over program variables.

    The abstract domain of the array-recovery analysis ({!Recover}): index
    expressions like [f*N + i] are represented exactly as polynomials over
    loop counters and size parameters, which is what lets delinearization
    count the indexing variables (paper §4.2.3). *)

type t

val zero : t
val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** [scale k p] multiplies by an integer constant. *)
val scale : int -> t -> t

val equal : t -> t -> bool

(** [is_const p] is [Some k] iff [p] is the constant [k]. *)
val is_const : t -> int option

(** All variables occurring with a nonzero coefficient. *)
val vars : t -> string list

(** [mentions p v] — does [v] occur in [p]? *)
val mentions : t -> string -> bool

(** [subst p v q] replaces every occurrence of variable [v] by [q]. *)
val subst : t -> string -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
