type arg_spec = Size of string | Scalar_data | Arr of string list

type t = { args : (string * arg_spec) list; out : string }

let rank_of_spec = function Size _ | Scalar_data -> 0 | Arr dims -> List.length dims

let shape ~sizes = function
  | Size _ | Scalar_data -> [||]
  | Arr dims ->
      Array.of_list
        (List.map
           (fun d ->
             match List.assoc_opt d sizes with
             | Some n -> n
             | None -> failwith (Printf.sprintf "Signature.shape: unknown size %s" d))
           dims)

let n_cells ~sizes spec = Array.fold_left (fun acc d -> acc * d) 1 (shape ~sizes spec)

let size_names t =
  List.filter_map (fun (_, s) -> match s with Size n -> Some n | _ -> None) t.args

let spec_of t name = List.assoc_opt name t.args

let out_spec t =
  match spec_of t t.out with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Signature.out_spec: output %s is not a parameter" t.out)
