(** Abstract syntax for the C subset the tensor-lifting benchmarks use.

    This covers the idioms found in the C2TACO benchmark suite that the
    paper evaluates on: single functions over scalar and pointer arguments,
    counted [for] loops, array subscripts with affine (possibly linearized)
    index expressions, explicit pointer arithmetic including [*p++], and
    compound assignment. *)

open Stagg_util

type typ =
  | Tint  (** [int], [float], [double] — all scalars are exact rationals *)
  | Tptr  (** [int*], [float*], ... — a pointer into a 1-D buffer *)

type param = { pname : string; ptyp : typ }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type expr =
  | Num of Rat.t  (** numeric literal *)
  | Var of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Deref of expr  (** [*e] *)
  | Index of expr * expr  (** [e1\[e2\]] *)
  | Addr_index of expr * expr  (** [&e1\[e2\]] *)
  | Post_incr of string  (** [p++] as an expression: yields the old value *)
  | Post_decr of string
  | Ternary of expr * expr * expr

type lvalue =
  | Lvar of string
  | Lderef of expr  (** [*e = ...] *)
  | Lindex of expr * expr  (** [e1\[e2\] = ...] *)

type stmt =
  | Decl of typ * string * expr option
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr  (** [+=], [-=], [*=], [/=] *)
  | Incr_stmt of lvalue  (** [x++;] *)
  | Decr_stmt of lvalue
  | For of for_header * stmt list
  | If of expr * stmt list * stmt list
  | Block of stmt list
  | Expr_stmt of expr
  | Return of expr option

and for_header = {
  init : stmt option;  (** e.g. [i = 0] or [int i = 0] *)
  cond : expr option;
  step : stmt option;  (** e.g. [i++] or [i += 1] *)
}

type func = { fname : string; params : param list; body : stmt list }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

(** Arithmetic data operators occurring in the function body, mapped onto
    the four TACO operators. Used by the C2TACO baseline's
    operator-extraction heuristic. *)
let arith_ops_used (f : func) : binop list =
  let acc = ref [] in
  let add o = if not (List.mem o !acc) then acc := o :: !acc in
  let rec go_expr = function
    | Num _ | Var _ | Post_incr _ | Post_decr _ -> ()
    | Bin (o, a, b) ->
        (match o with Add | Sub | Mul | Div -> add o | _ -> ());
        go_expr a;
        go_expr b
    | Neg e -> add Sub; go_expr e
    | Not e -> go_expr e
    | Deref e -> go_expr e
    | Index (a, b) | Addr_index (a, b) -> go_expr a; go_expr b
    | Ternary (c, a, b) -> go_expr c; go_expr a; go_expr b
  and go_lv = function
    | Lvar _ -> ()
    | Lderef e -> go_expr e
    | Lindex (a, b) -> go_expr a; go_expr b
  and go_stmt = function
    | Decl (_, _, e) -> Option.iter go_expr e
    | Assign (lv, e) -> go_lv lv; go_expr e
    | Op_assign (lv, o, e) ->
        (match o with Add | Sub | Mul | Div -> add o | _ -> ());
        go_lv lv;
        go_expr e
    | Incr_stmt lv | Decr_stmt lv -> go_lv lv
    | For (h, body) ->
        Option.iter go_stmt h.init;
        (* the loop condition and step are control, not data *)
        List.iter go_stmt body
    | If (c, t, e) -> go_expr c; List.iter go_stmt t; List.iter go_stmt e
    | Block b -> List.iter go_stmt b
    | Expr_stmt e -> go_expr e
    | Return e -> Option.iter go_expr e
  in
  List.iter go_stmt f.body;
  List.rev !acc

(** Integer literals in data expressions (not loop headers or subscripts),
    deduplicated in order of appearance — the constant pool used when
    instantiating [Const] template symbols (§6). *)
let constants (f : func) : Rat.t list =
  let acc = ref [] in
  let add c = if not (List.exists (Rat.equal c) !acc) then acc := c :: !acc in
  let rec go_expr ~data = function
    | Num c -> if data then add c
    | Var _ | Post_incr _ | Post_decr _ -> ()
    | Bin (_, a, b) -> go_expr ~data a; go_expr ~data b
    | Neg e | Not e | Deref e -> go_expr ~data e
    | Index (a, b) | Addr_index (a, b) ->
        go_expr ~data a;
        (* subscripts are address arithmetic, not tensor data *)
        go_expr ~data:false b
    | Ternary (c, a, b) -> go_expr ~data:false c; go_expr ~data a; go_expr ~data b
  and go_lv = function
    | Lvar _ -> ()
    | Lderef e -> go_expr ~data:false e
    | Lindex (a, b) -> go_expr ~data:false a; go_expr ~data:false b
  and go_stmt = function
    | Decl (_, _, e) -> Option.iter (go_expr ~data:true) e
    | Assign (lv, e) -> go_lv lv; go_expr ~data:true e
    | Op_assign (lv, _, e) -> go_lv lv; go_expr ~data:true e
    | Incr_stmt lv | Decr_stmt lv -> go_lv lv
    | For (h, body) ->
        ignore h;
        List.iter go_stmt body
    | If (c, t, e) -> go_expr ~data:false c; List.iter go_stmt t; List.iter go_stmt e
    | Block b -> List.iter go_stmt b
    | Expr_stmt e -> go_expr ~data:true e
    | Return e -> Option.iter (go_expr ~data:true) e
  in
  List.iter go_stmt f.body;
  (* 0 is the additive identity and never a useful template constant *)
  List.rev (List.filter (fun c -> not (Rat.is_zero c)) !acc)
