(** Dimensionality prediction from static analysis (paper §4.2.3).

    Built on {!Recover}: the dimensionality of a tensor viewed through a
    (possibly linearized, possibly pointer-walked) access is the number of
    distinct enclosing-loop counters occurring in the recovered index
    polynomial — the delinearization step of the paper. *)

(** The parameter the function writes its result into: the unique pointer
    parameter that is the target of a store. [None] if there is no store
    or the analysis cannot attribute one to a parameter. When several
    parameters are written, the most-written one is returned. *)
val output_param : Ast.func -> string option

(** [lhs_dim f] — predicted dimensionality of the output tensor: the
    maximum, over recovered stores to the output parameter, of the number
    of indexing variables; [Some 0] for an unindexed scalar store.
    [None] when no store was recovered precisely. *)
val lhs_dim : Ast.func -> int option

(** [param_dims f] — best-effort dimensionality of every pointer parameter
    (from loads and stores); scalars report 0. Parameters never accessed
    precisely map to [None]. Used by the C2TACO baseline's dimension
    heuristic. *)
val param_dims : Ast.func -> (string * int option) list
