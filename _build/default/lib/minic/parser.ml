open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Lexer.EOF
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let err fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let expect st tok =
  if peek st = tok then advance st
  else err "expected %s, found %s" (Lexer.token_to_string tok) (Lexer.token_to_string (peek st))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      name
  | t -> err "expected identifier, found %s" (Lexer.token_to_string t)

(* ---- expressions ---- *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if peek st = Lexer.QUESTION then begin
    advance st;
    let t = parse_expr st in
    expect st Lexer.COLON;
    let e = parse_ternary st in
    Ternary (c, t, e)
  end
  else c

and parse_or st =
  let lhs = parse_and st in
  let rec go lhs =
    if peek st = Lexer.OR then begin
      advance st;
      go (Bin (Or, lhs, parse_and st))
    end
    else lhs
  in
  go lhs

and parse_and st =
  let lhs = parse_cmp st in
  let rec go lhs =
    if peek st = Lexer.AND then begin
      advance st;
      go (Bin (And, lhs, parse_cmp st))
    end
    else lhs
  in
  go lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | Lexer.EQ -> Some Eq
    | Lexer.NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Bin (op, lhs, parse_add st)

and parse_add st =
  let lhs = parse_mul st in
  let rec go lhs =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Bin (Add, lhs, parse_mul st))
    | Lexer.MINUS ->
        advance st;
        go (Bin (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec go lhs =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Bin (Mul, lhs, parse_unary st))
    | Lexer.SLASH ->
        advance st;
        go (Bin (Div, lhs, parse_unary st))
    | Lexer.PERCENT ->
        advance st;
        go (Bin (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Neg (parse_unary st)
  | Lexer.NOT ->
      advance st;
      Not (parse_unary st)
  | Lexer.STAR ->
      advance st;
      Deref (parse_unary st)
  | Lexer.AMP -> (
      advance st;
      match parse_postfix st with
      | Index (a, b) -> Addr_index (a, b)
      | Var v -> Addr_index (Var v, Num Stagg_util.Rat.zero)
      | _ -> err "'&' is only supported on array elements")
  | _ -> parse_postfix st

and parse_postfix st =
  let base =
    match peek st with
    | Lexer.NUMBER r ->
        advance st;
        Num r
    | Lexer.IDENT name -> (
        advance st;
        match peek st with
        | Lexer.INCR ->
            advance st;
            Post_incr name
        | Lexer.DECR ->
            advance st;
            Post_decr name
        | _ -> Var name)
    | Lexer.LPAREN ->
        advance st;
        (* tolerate casts like (float) or (int) *)
        (match peek st with
        | (Lexer.KW_INT | Lexer.KW_FLOAT) when peek2 st = Lexer.RPAREN ->
            advance st;
            advance st;
            parse_unary st
        | _ ->
            let e = parse_expr st in
            expect st Lexer.RPAREN;
            e)
    | t -> err "unexpected token %s in expression" (Lexer.token_to_string t)
  in
  let rec subscripts e =
    if peek st = Lexer.LBRACK then begin
      advance st;
      let ix = parse_expr st in
      expect st Lexer.RBRACK;
      subscripts (Index (e, ix))
    end
    else e
  in
  subscripts base

(* ---- statements ---- *)

let to_lvalue = function
  | Var v -> Lvar v
  | Deref e -> Lderef e
  | Index (a, b) -> Lindex (a, b)
  | _ -> err "expression is not assignable"

let is_type_start = function
  | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_CONST -> true
  | _ -> false

let parse_base_type st =
  (match peek st with Lexer.KW_CONST -> advance st | _ -> ());
  match peek st with
  | Lexer.KW_INT ->
      advance st;
      Tint
  | Lexer.KW_FLOAT ->
      advance st;
      Tint (* all scalars are rationals; the distinction is immaterial *)
  | t -> err "expected a type, found %s" (Lexer.token_to_string t)

let parse_declarator st base =
  let rec stars t = if peek st = Lexer.STAR then (advance st; stars Tptr) else t in
  let t = stars base in
  let name = expect_ident st in
  let t = if peek st = Lexer.LBRACK then begin
      advance st;
      (match peek st with Lexer.NUMBER _ | Lexer.IDENT _ -> advance st | _ -> ());
      expect st Lexer.RBRACK;
      Tptr
    end
    else t
  in
  let init = if peek st = Lexer.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  (t, name, init)

(* A "simple statement": assignment, compound assignment, increment, or a
   bare expression — no trailing semicolon (shared by statements and for
   headers). *)
let parse_simple st =
  if is_type_start (peek st) then begin
    let base = parse_base_type st in
    let t, name, init = parse_declarator st base in
    (* only single-declarator decls inside for headers *)
    Decl (t, name, init)
  end
  else begin
    let e = parse_expr st in
    match peek st with
    | Lexer.ASSIGN ->
        advance st;
        Assign (to_lvalue e, parse_expr st)
    | Lexer.PLUS_ASSIGN ->
        advance st;
        Op_assign (to_lvalue e, Add, parse_expr st)
    | Lexer.MINUS_ASSIGN ->
        advance st;
        Op_assign (to_lvalue e, Sub, parse_expr st)
    | Lexer.STAR_ASSIGN ->
        advance st;
        Op_assign (to_lvalue e, Mul, parse_expr st)
    | Lexer.SLASH_ASSIGN ->
        advance st;
        Op_assign (to_lvalue e, Div, parse_expr st)
    | Lexer.INCR ->
        advance st;
        Incr_stmt (to_lvalue e)
    | Lexer.DECR ->
        advance st;
        Decr_stmt (to_lvalue e)
    | _ -> Expr_stmt e
  end

let rec parse_stmt st =
  match peek st with
  | Lexer.LBRACE ->
      advance st;
      let body = parse_stmts st in
      expect st Lexer.RBRACE;
      Block body
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let init = if peek st = Lexer.SEMI then None else Some (parse_simple st) in
      expect st Lexer.SEMI;
      let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      let step = if peek st = Lexer.RPAREN then None else Some (parse_simple st) in
      expect st Lexer.RPAREN;
      let body = parse_loop_body st in
      For ({ init; cond; step }, body)
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_loop_body st in
      let else_ =
        if peek st = Lexer.KW_ELSE then begin
          advance st;
          parse_loop_body st
        end
        else []
      in
      If (c, then_, else_)
  | Lexer.KW_RETURN ->
      advance st;
      let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI;
      Return e
  | t when is_type_start t ->
      (* declaration, possibly with multiple declarators *)
      let base = parse_base_type st in
      let t1, n1, i1 = parse_declarator st base in
      let decls = ref [ Decl (t1, n1, i1) ] in
      while peek st = Lexer.COMMA do
        advance st;
        let t, n, i = parse_declarator st base in
        decls := Decl (t, n, i) :: !decls
      done;
      expect st Lexer.SEMI;
      let ds = List.rev !decls in
      (match ds with [ d ] -> d | ds -> Block ds)
  | _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI;
      s

and parse_loop_body st =
  if peek st = Lexer.LBRACE then begin
    advance st;
    let body = parse_stmts st in
    expect st Lexer.RBRACE;
    body
  end
  else [ parse_stmt st ]

and parse_stmts st =
  let rec go acc =
    match peek st with
    | Lexer.RBRACE | Lexer.EOF -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

(* ---- function definitions ---- *)

let parse_param st =
  let base = parse_base_type st in
  let rec stars t = if peek st = Lexer.STAR then (advance st; stars Tptr) else t in
  (* 'const' may also appear after the base type, as in [int const *] *)
  (match peek st with Lexer.KW_CONST -> advance st | _ -> ());
  let t = stars base in
  let name = expect_ident st in
  let t =
    if peek st = Lexer.LBRACK then begin
      advance st;
      (match peek st with Lexer.NUMBER _ | Lexer.IDENT _ -> advance st | _ -> ());
      expect st Lexer.RBRACK;
      Tptr
    end
    else t
  in
  { pname = name; ptyp = t }

let parse_function_tokens st =
  (* return type *)
  (match peek st with
  | Lexer.KW_VOID -> advance st
  | Lexer.KW_INT | Lexer.KW_FLOAT | Lexer.KW_CONST ->
      ignore (parse_base_type st);
      while peek st = Lexer.STAR do
        advance st
      done
  | t -> err "expected a return type, found %s" (Lexer.token_to_string t));
  let fname = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    if peek st = Lexer.RPAREN then []
    else begin
      let rec go acc =
        let p = parse_param st in
        if peek st = Lexer.COMMA then begin
          advance st;
          go (p :: acc)
        end
        else List.rev (p :: acc)
      in
      go []
    end
  in
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let body = parse_stmts st in
  expect st Lexer.RBRACE;
  { fname; params; body }

let parse_function src =
  match
    let st = { toks = Lexer.tokenize src } in
    let f = parse_function_tokens st in
    expect st Lexer.EOF;
    f
  with
  | f -> Ok f
  | exception Parse_error msg -> Error msg
  | exception Lexer.Lex_error msg -> Error msg

let parse_function_exn src =
  match parse_function src with
  | Ok f -> f
  | Error msg -> failwith ("mini-C parse error: " ^ msg)
