(** Lexer for the mini-C subset. Handles [//] and [/* */] comments,
    decimal literals (read as exact rationals), and all multi-character
    operators the benchmark idioms need ([+=], [++], [<=], [&&], ...). *)

type token =
  | IDENT of string
  | NUMBER of Stagg_util.Rat.t
  | KW_INT
  | KW_FLOAT  (** [float] or [double] *)
  | KW_VOID
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_CONST
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | AMP
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | INCR
  | DECR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AND
  | OR
  | NOT
  | QUESTION
  | COLON
  | EOF

exception Lex_error of string

val token_to_string : token -> string
val tokenize : string -> token list
