(** Tensor-level signatures for benchmark functions.

    A mini-C function sees only scalars and flat pointers; the signature
    records the tensor view of each parameter — which scalars are dimension
    sizes and how each array is shaped in terms of them — plus which
    parameter receives the output. This is the metadata the validator and
    verifier need to move between the flat C world and the shaped TACO
    world. *)

type arg_spec =
  | Size of string  (** scalar parameter carrying the named dimension size *)
  | Scalar_data  (** scalar data input *)
  | Arr of string list  (** row-major array shaped by the named sizes; [\[\]] is a 1-cell scalar cell *)

type t = {
  args : (string * arg_spec) list;  (** in parameter order *)
  out : string;  (** the parameter the result is stored into *)
}

(** Rank of the tensor view: 0 for scalars, the number of dimensions for
    arrays. *)
val rank_of_spec : arg_spec -> int

(** [shape ~sizes spec] resolves dimension names to concrete sizes.
    @raise Failure on an unknown size name. *)
val shape : sizes:(string * int) list -> arg_spec -> int array

(** Total number of cells of [spec] under [sizes] (1 for scalars). *)
val n_cells : sizes:(string * int) list -> arg_spec -> int

(** All dimension-size names used by the signature. *)
val size_names : t -> string list

val spec_of : t -> string -> arg_spec option
val out_spec : t -> arg_spec
