open Stagg_util

type token =
  | IDENT of string
  | NUMBER of Rat.t
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_CONST
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | AMP
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | INCR
  | DECR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AND
  | OR
  | NOT
  | QUESTION
  | COLON
  | EOF

exception Lex_error of string

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | NUMBER r -> Printf.sprintf "number %s" (Rat.to_string r)
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_VOID -> "void"
  | KW_FOR -> "for"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_RETURN -> "return"
  | KW_CONST -> "const"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | INCR -> "++"
  | DECR -> "--"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | QUESTION -> "?"
  | COLON -> ":"
  | EOF -> "end of input"

let keyword_of = function
  | "int" | "long" | "short" | "unsigned" | "signed" | "size_t" -> Some KW_INT
  | "float" | "double" -> Some KW_FLOAT
  | "void" -> Some KW_VOID
  | "for" -> Some KW_FOR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "return" -> Some KW_RETURN
  | "const" | "restrict" -> Some KW_CONST
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token list =
  let n = String.length s in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let peek2 () = if !pos + 1 < n then Some s.[!pos + 1] else None in
  while !pos < n do
    let c = s.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' && peek2 () = Some '/' then begin
      while !pos < n && s.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek2 () = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while !pos + 1 < n && not !closed do
        if s.[!pos] = '*' && s.[!pos + 1] = '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then raise (Lex_error "unterminated comment")
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char s.[!pos] do
        incr pos
      done;
      let word = String.sub s start (!pos - start) in
      match keyword_of word with Some kw -> emit kw | None -> emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done;
      if !pos + 1 < n && s.[!pos] = '.' && is_digit s.[!pos + 1] then begin
        incr pos;
        let frac_start = !pos in
        while !pos < n && is_digit s.[!pos] do
          incr pos
        done;
        let int_part = String.sub s start (frac_start - 1 - start) in
        let frac_part = String.sub s frac_start (!pos - frac_start) in
        let num = Bigint.of_string (int_part ^ frac_part) in
        let den = Bigint.pow (Bigint.of_int 10) (String.length frac_part) in
        (* trailing float suffix *)
        if !pos < n && (s.[!pos] = 'f' || s.[!pos] = 'F') then incr pos;
        emit (NUMBER (Rat.make num den))
      end
      else begin
        if !pos < n && (s.[!pos] = 'f' || s.[!pos] = 'F' || s.[!pos] = 'u' || s.[!pos] = 'U') then
          incr pos;
        emit (NUMBER (Rat.of_bigint (Bigint.of_string (String.sub s start (!pos - start)))))
      end
    end
    else begin
      let two target tok1 tok2 =
        if peek2 () = Some target then begin
          pos := !pos + 2;
          emit tok2
        end
        else begin
          incr pos;
          emit tok1
        end
      in
      match c with
      | '(' -> incr pos; emit LPAREN
      | ')' -> incr pos; emit RPAREN
      | '[' -> incr pos; emit LBRACK
      | ']' -> incr pos; emit RBRACK
      | '{' -> incr pos; emit LBRACE
      | '}' -> incr pos; emit RBRACE
      | ';' -> incr pos; emit SEMI
      | ',' -> incr pos; emit COMMA
      | '?' -> incr pos; emit QUESTION
      | ':' -> incr pos; emit COLON
      | '%' -> incr pos; emit PERCENT
      | '*' -> two '=' STAR STAR_ASSIGN
      | '/' -> two '=' SLASH SLASH_ASSIGN
      | '+' -> if peek2 () = Some '+' then (pos := !pos + 2; emit INCR) else two '=' PLUS PLUS_ASSIGN
      | '-' -> if peek2 () = Some '-' then (pos := !pos + 2; emit DECR) else two '=' MINUS MINUS_ASSIGN
      | '<' -> two '=' LT LE
      | '>' -> two '=' GT GE
      | '=' -> two '=' ASSIGN EQ
      | '!' -> two '=' NOT NE
      | '&' -> if peek2 () = Some '&' then (pos := !pos + 2; emit AND) else (incr pos; emit AMP)
      | '|' ->
          if peek2 () = Some '|' then (pos := !pos + 2; emit OR)
          else raise (Lex_error "bitwise '|' is not supported")
      | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c))
    end
  done;
  emit EOF;
  List.rev !toks
