lib/minic/ast.ml: List Option Rat Stagg_util
