lib/minic/sigspec.ml: Buffer List Printf Result Signature String
