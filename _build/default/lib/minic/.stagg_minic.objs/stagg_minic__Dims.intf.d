lib/minic/dims.mli: Ast
