lib/minic/interp.ml: Array Ast Hashtbl List Option Printf Stagg_util
