lib/minic/recover.ml: Affine Ast Format List Map Stagg_util String
