lib/minic/signature.mli:
