lib/minic/lexer.ml: Bigint List Printf Rat Stagg_util String
