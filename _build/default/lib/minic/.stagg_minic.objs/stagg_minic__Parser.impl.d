lib/minic/parser.ml: Ast Lexer List Printf Stagg_util
