lib/minic/signature.ml: Array List Printf
