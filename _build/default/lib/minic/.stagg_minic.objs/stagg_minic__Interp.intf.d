lib/minic/interp.mli: Ast Stagg_util
