lib/minic/sigspec.mli: Signature
