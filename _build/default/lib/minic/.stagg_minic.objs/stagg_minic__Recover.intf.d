lib/minic/recover.mli: Affine Ast Format
