lib/minic/affine.mli: Format
