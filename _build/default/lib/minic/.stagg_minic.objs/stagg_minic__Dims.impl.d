lib/minic/dims.ml: Affine Ast Hashtbl List Option Recover String
