lib/minic/lexer.mli: Stagg_util
