lib/minic/affine.ml: Format Hashtbl List Option String
