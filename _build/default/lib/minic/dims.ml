open Ast

(* Number of distinct enclosing-loop counters in a recovered index
   polynomial: the delinearized dimensionality of the access. *)
let access_dim (a : Recover.access) : int option =
  match a.index with
  | None -> None
  | Some p ->
      let vs = Affine.vars p in
      Some (List.length (List.filter (fun v -> List.mem v a.loop_vars) vs))

let stores (f : func) =
  List.filter (fun (a : Recover.access) -> a.kind = Recover.Store) (Recover.analyze f)

let output_param (f : func) : string option =
  let param_names = List.filter_map (fun p -> if p.ptyp = Tptr then Some p.pname else None) f.params in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (a : Recover.access) ->
      if List.mem a.base param_names then
        Hashtbl.replace counts a.base (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.base)))
    (stores f);
  Hashtbl.fold
    (fun name n best ->
      match best with Some (_, m) when m >= n -> best | _ -> Some (name, n))
    counts None
  |> Option.map fst

let lhs_dim (f : func) : int option =
  match output_param f with
  | None -> None
  | Some out ->
      let dims =
        List.filter_map
          (fun (a : Recover.access) -> if String.equal a.base out then access_dim a else None)
          (stores f)
      in
      (match dims with [] -> None | ds -> Some (List.fold_left max 0 ds))

let param_dims (f : func) : (string * int option) list =
  let accesses = Recover.analyze f in
  List.map
    (fun p ->
      match p.ptyp with
      | Tint -> (p.pname, Some 0)
      | Tptr ->
          let dims =
            List.filter_map
              (fun (a : Recover.access) ->
                if String.equal a.base p.pname then access_dim a else None)
              accesses
          in
          (p.pname, match dims with [] -> None | ds -> Some (List.fold_left max 0 ds)))
    f.params
