(** Recursive-descent parser for the mini-C subset.

    Parses a single function definition — every benchmark in the suite is
    one function — with C expression precedence, declarations, [for]/[if],
    compound assignment, pointer arithmetic and postfix increment. *)

val parse_function : string -> (Ast.func, string) result
val parse_function_exn : string -> Ast.func
