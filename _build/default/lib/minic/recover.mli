(** Array recovery and access extraction (paper §4.2.3).

    An abstract interpretation of the function body over the {!Affine}
    polynomial domain that implements the two analyses the paper cites:
    array recovery [Franke & O'Boyle 2003] — pointers that walk arrays via
    [p++] / [p += k] are rewritten into explicit indexed accesses — and the
    groundwork for delinearization [O'Boyle & Knijnenburg 2002] — every
    access yields its exact index polynomial (e.g. [f*N + i]), from which
    {!Dims} counts indexing variables.

    Loops are analyzed in two passes: pass one runs the body once with the
    loop counter symbolic to discover each variable's per-iteration stride;
    pass two re-runs it with pointers rebound to [start + counter*stride]
    to record accesses in closed form. *)

type kind = Load | Store

type access = {
  base : string;  (** the parameter whose buffer is accessed *)
  index : Affine.t option;  (** [None] when the analysis lost precision *)
  loop_vars : string list;  (** enclosing loop counters, outermost first *)
  kind : kind;
}

val pp_access : Format.formatter -> access -> unit

(** [analyze f] returns every array access of the body, in syntactic
    order. *)
val analyze : Ast.func -> access list
