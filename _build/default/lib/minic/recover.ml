open Ast
module SM = Map.Make (String)

type kind = Load | Store

type access = {
  base : string;
  index : Affine.t option;
  loop_vars : string list;
  kind : kind;
}

let pp_access fmt a =
  Format.fprintf fmt "%s %s[%s] under (%s)"
    (match a.kind with Load -> "load" | Store -> "store")
    a.base
    (match a.index with None -> "?" | Some p -> Affine.to_string p)
    (String.concat "," a.loop_vars)

(* Abstract values: an exact polynomial, a pointer at a polynomial offset
   into a named buffer, or unknown. *)
type av = Anum of Affine.t | Aptr of string * Affine.t | Atop

type state = av SM.t

let join_av a b =
  match (a, b) with
  | Anum p, Anum q when Affine.equal p q -> Anum p
  | Aptr (x, p), Aptr (y, q) when String.equal x y && Affine.equal p q -> a
  | _ -> Atop

let join (s1 : state) (s2 : state) : state =
  SM.merge
    (fun _ a b ->
      match (a, b) with Some a, Some b -> Some (join_av a b) | _ -> Some Atop)
    s1 s2

let analyze (f : func) : access list =
  let accs = ref [] in
  let record kind base index loops = accs := { base; index; loop_vars = loops; kind } :: !accs in

  (* resolve the buffer and offset of a pointer-valued abstract value *)
  let ptr_parts = function Aptr (b, off) -> Some (b, Some off) | _ -> None in

  let rec eval ~rec_ ~loops (st : state) (e : expr) : state * av =
    match e with
    | Num c -> (
        match Stagg_util.Rat.to_int c with
        | Some k -> (st, Anum (Affine.const k))
        | None -> (st, Atop))
    | Var v -> (st, match SM.find_opt v st with Some a -> a | None -> Atop)
    | Neg e ->
        let st, a = eval ~rec_ ~loops st e in
        (st, match a with Anum p -> Anum (Affine.neg p) | _ -> Atop)
    | Not e ->
        let st, _ = eval ~rec_ ~loops st e in
        (st, Atop)
    | Bin (op, a, b) -> (
        let st, va = eval ~rec_ ~loops st a in
        let st, vb = eval ~rec_ ~loops st b in
        match (op, va, vb) with
        | Add, Anum p, Anum q -> (st, Anum (Affine.add p q))
        | Sub, Anum p, Anum q -> (st, Anum (Affine.sub p q))
        | Mul, Anum p, Anum q -> (st, Anum (Affine.mul p q))
        | Add, Aptr (base, off), Anum q | Add, Anum q, Aptr (base, off) ->
            (st, Aptr (base, Affine.add off q))
        | Sub, Aptr (base, off), Anum q -> (st, Aptr (base, Affine.sub off q))
        | Div, Anum p, Anum q -> (
            match (Affine.is_const p, Affine.is_const q) with
            | Some x, Some y when y <> 0 && x mod y = 0 -> (st, Anum (Affine.const (x / y)))
            | _ -> (st, Atop))
        | _ -> (st, Atop))
    | Deref e ->
        let st, v = eval ~rec_ ~loops st e in
        (match ptr_parts v with
        | Some (base, off) -> if rec_ then record Load base off loops
        | None -> ());
        (st, Atop)
    | Index (a, ix) ->
        let st, va = eval ~rec_ ~loops st a in
        let st, vix = eval ~rec_ ~loops st ix in
        (match ptr_parts va with
        | Some (base, off) ->
            if rec_ then
              let index =
                match (off, vix) with
                | Some o, Anum p -> Some (Affine.add o p)
                | _ -> None
              in
              record Load base index loops
        | None -> ());
        (st, Atop)
    | Addr_index (a, ix) -> (
        let st, va = eval ~rec_ ~loops st a in
        let st, vix = eval ~rec_ ~loops st ix in
        match (va, vix) with
        | Aptr (base, off), Anum p -> (st, Aptr (base, Affine.add off p))
        | _ -> (st, Atop))
    | Post_incr v -> (
        let old = match SM.find_opt v st with Some a -> a | None -> Atop in
        let st' =
          match old with
          | Anum p -> SM.add v (Anum (Affine.add p (Affine.const 1))) st
          | Aptr (b, off) -> SM.add v (Aptr (b, Affine.add off (Affine.const 1))) st
          | Atop -> st
        in
        (st', old))
    | Post_decr v -> (
        let old = match SM.find_opt v st with Some a -> a | None -> Atop in
        let st' =
          match old with
          | Anum p -> SM.add v (Anum (Affine.sub p (Affine.const 1))) st
          | Aptr (b, off) -> SM.add v (Aptr (b, Affine.sub off (Affine.const 1))) st
          | Atop -> st
        in
        (st', old))
    | Ternary (c, t, e) ->
        let st, _ = eval ~rec_ ~loops st c in
        let st1, _ = eval ~rec_ ~loops st t in
        let st2, _ = eval ~rec_ ~loops st e in
        (join st1 st2, Atop)
  in

  (* Evaluate a store target, record the store, and return the state with
     the target's side effects (e.g. [*pr++ = ...] advances pr). *)
  let record_store ~rec_ ~loops st lv : state =
    match lv with
    | Lvar _ -> st
    | Lderef e ->
        let st, v = eval ~rec_:false ~loops st e in
        (match ptr_parts v with
        | Some (base, off) -> if rec_ then record Store base off loops
        | None -> ());
        st
    | Lindex (a, ix) ->
        let st, va = eval ~rec_:false ~loops st a in
        let st, vix = eval ~rec_:false ~loops st ix in
        (match ptr_parts va with
        | Some (base, off) ->
            if rec_ then
              let index =
                match (off, vix) with Some o, Anum p -> Some (Affine.add o p) | _ -> None
              in
              record Store base index loops
        | None -> ());
        st
  in

  let assign_lv st lv v =
    match lv with
    | Lvar x -> SM.add x v st
    | Lderef _ | Lindex _ -> st (* heap stores do not affect the variable state *)
  in

  let rec exec ~rec_ ~loops (st : state) (s : stmt) : state =
    match s with
    | Decl (_, name, init) -> (
        match init with
        | None -> SM.add name (Anum Affine.zero) st
        | Some e ->
            let st, v = eval ~rec_ ~loops st e in
            SM.add name v st)
    | Assign (lv, e) ->
        (* evaluate the RHS first (it may advance pointers via p++), then
           the store target in the post-RHS state: C leaves the order
           unsequenced, and the suite's idioms never increment the
           stored-through pointer from both sides of one statement *)
        let st, v = eval ~rec_ ~loops st e in
        let st = record_store ~rec_ ~loops st lv in
        assign_lv st lv v
    | Op_assign (lv, op, e) -> (
        let st, rhs = eval ~rec_ ~loops st e in
        let st = record_store ~rec_ ~loops st lv in
        match lv with
        | Lvar x -> (
            (* x op= e: keep a closed form for += / -= with affine RHS
               (index counters), otherwise the value is data-dependent *)
            match (SM.find_opt x st, op, rhs) with
            | Some (Anum p), Add, Anum q -> SM.add x (Anum (Affine.add p q)) st
            | Some (Anum p), Sub, Anum q -> SM.add x (Anum (Affine.sub p q)) st
            | Some (Aptr (b, off)), Add, Anum q -> SM.add x (Aptr (b, Affine.add off q)) st
            | Some (Aptr (b, off)), Sub, Anum q -> SM.add x (Aptr (b, Affine.sub off q)) st
            | _ -> SM.add x Atop st)
        | _ -> st)
    | Incr_stmt lv -> (
        match lv with
        | Lvar x -> (
            match SM.find_opt x st with
            | Some (Anum p) -> SM.add x (Anum (Affine.add p (Affine.const 1))) st
            | Some (Aptr (b, off)) -> SM.add x (Aptr (b, Affine.add off (Affine.const 1))) st
            | _ -> SM.add x Atop st)
        | _ -> record_store ~rec_ ~loops st lv)
    | Decr_stmt lv -> (
        match lv with
        | Lvar x -> (
            match SM.find_opt x st with
            | Some (Anum p) -> SM.add x (Anum (Affine.sub p (Affine.const 1))) st
            | Some (Aptr (b, off)) -> SM.add x (Aptr (b, Affine.sub off (Affine.const 1))) st
            | _ -> SM.add x Atop st)
        | _ -> record_store ~rec_ ~loops st lv)
    | If (c, then_, else_) ->
        let st, _ = eval ~rec_ ~loops st c in
        let st1 = List.fold_left (exec ~rec_ ~loops) st then_ in
        let st2 = List.fold_left (exec ~rec_ ~loops) st else_ in
        join st1 st2
    | Block b -> List.fold_left (exec ~rec_ ~loops) st b
    | Expr_stmt e -> fst (eval ~rec_ ~loops st e)
    | Return _ -> st
    | For (h, body) -> exec_for ~rec_ ~loops st h body

  and exec_for ~rec_ ~loops st h body =
    (* run the initializer *)
    let st0 = match h.init with None -> st | Some s -> exec ~rec_:false ~loops st s in
    let header =
      (* recognize [v = lo; v < bound (or <=); v++] *)
      let var_of_init = function
        | Some (Decl (_, v, _)) | Some (Assign (Lvar v, _)) -> Some v
        | _ -> None
      in
      let var_of_step = function
        | Some (Incr_stmt (Lvar v)) -> Some v
        | Some (Op_assign (Lvar v, Add, Num one)) when Stagg_util.Rat.equal one Stagg_util.Rat.one
          ->
            Some v
        | Some (Expr_stmt (Post_incr v)) -> Some v
        | _ -> None
      in
      let v_opt =
        match (var_of_step h.step, var_of_init h.init) with
        | Some v, _ -> Some v
        | None, Some v -> Some v
        | None, None -> None
      in
      match (v_opt, h.cond) with
      | Some v, Some (Bin ((Lt | Le), Var v', bound_e)) when String.equal v v' -> (
          let lo = match SM.find_opt v st0 with Some (Anum p) -> Some p | _ -> None in
          let _, bv = eval ~rec_:false ~loops st0 bound_e in
          match (lo, bv, var_of_step h.step) with
          | Some lo, Anum bound, Some _ ->
              let trips =
                match h.cond with
                | Some (Bin (Le, _, _)) -> Affine.add (Affine.sub bound lo) (Affine.const 1)
                | _ -> Affine.sub bound lo
              in
              Some (v, lo, trips)
          | _ -> None)
      | _ -> None
    in
    match header with
    | None ->
        (* unrecognized loop (downward counter, data-dependent bound, ...):
           havoc the whole state first so no access inside is recovered
           with a spuriously-precise index, then walk the body only to
           havoc what it assigns *)
        let st1 = List.fold_left (exec ~rec_ ~loops) (SM.map (fun _ -> Atop) st0) body in
        SM.map (fun _ -> Atop) st1
    | Some (v, lo, trips) ->
        (* pass 1: symbolic counter, discover per-iteration strides *)
        let entry = st0 in
        let st1 = SM.add v (Anum (Affine.var v)) entry in
        let st2 = List.fold_left (exec ~rec_:false ~loops:(loops @ [ v ])) st1 body in
        let delta_of x entry_v =
          match (entry_v, SM.find_opt x st2) with
          | a, Some b when a = b -> `Unchanged
          | Anum p, Some (Anum q) ->
              let d = Affine.sub q p in
              if Affine.mentions d v then `Havoc else `Delta d
          | Aptr (bx, p), Some (Aptr (by, q)) when String.equal bx by ->
              let d = Affine.sub q p in
              if Affine.mentions d v then `Havoc else `Delta d
          | _ -> `Havoc
        in
        (* pass 2: rebind strided variables to closed form in v, record *)
        let rel = Affine.sub (Affine.var v) lo in
        let st_pass2 =
          SM.mapi
            (fun x entry_v ->
              if String.equal x v then Anum (Affine.var v)
              else
                match delta_of x entry_v with
                | `Unchanged -> entry_v
                | `Havoc -> Atop
                | `Delta d -> (
                    let advance = Affine.mul rel d in
                    match entry_v with
                    | Anum p -> Anum (Affine.add p advance)
                    | Aptr (b, off) -> Aptr (b, Affine.add off advance)
                    | Atop -> Atop))
            entry
          |> SM.add v (Anum (Affine.var v))
        in
        ignore (List.fold_left (exec ~rec_ ~loops:(loops @ [ v ])) st_pass2 body);
        (* exit state: closed form after [trips] iterations; v is dead *)
        SM.mapi
          (fun x entry_v ->
            if String.equal x v then Atop
            else
              match delta_of x entry_v with
              | `Unchanged -> entry_v
              | `Havoc -> Atop
              | `Delta d -> (
                  let advance = Affine.mul trips d in
                  match entry_v with
                  | Anum p -> Anum (Affine.add p advance)
                  | Aptr (b, off) -> Aptr (b, Affine.add off advance)
                  | Atop -> Atop))
          entry
        |> SM.add v Atop
  in

  let init_state =
    List.fold_left
      (fun st p ->
        match p.ptyp with
        | Tptr -> SM.add p.pname (Aptr (p.pname, Affine.zero)) st
        | Tint -> SM.add p.pname (Anum (Affine.var p.pname)) st)
      SM.empty f.params
  in
  ignore (List.fold_left (exec ~rec_:true ~loops:[]) init_state f.body);
  List.rev !accs
