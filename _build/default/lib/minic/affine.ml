(* A polynomial is a sorted association list from monomials to nonzero
   integer coefficients; a monomial is a sorted list of variable names
   (with repetition for powers). The representation is canonical, so
   structural equality coincides with semantic equality. *)

type monomial = string list

type t = (monomial * int) list

let zero : t = []

let const k : t = if k = 0 then [] else [ ([], k) ]

let var v : t = [ ([ v ], 1) ]

let normalize (terms : t) : t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (m, c) ->
      let m = List.sort String.compare m in
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl m) in
      Hashtbl.replace tbl m (cur + c))
    terms;
  Hashtbl.fold (fun m c acc -> if c = 0 then acc else (m, c) :: acc) tbl []
  |> List.sort (fun (m1, _) (m2, _) -> compare m1 m2)

let add a b = normalize (a @ b)
let neg a = List.map (fun (m, c) -> (m, -c)) a
let sub a b = add a (neg b)
let scale k a = if k = 0 then [] else normalize (List.map (fun (m, c) -> (m, k * c)) a)

let mul a b =
  normalize (List.concat_map (fun (ma, ca) -> List.map (fun (mb, cb) -> (ma @ mb, ca * cb)) b) a)

let equal (a : t) (b : t) = a = b

let is_const = function
  | [] -> Some 0
  | [ ([], k) ] -> Some k
  | _ -> None

let vars (p : t) =
  let seen = Hashtbl.create 8 in
  List.iter (fun (m, _) -> List.iter (fun v -> Hashtbl.replace seen v ()) m) p;
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort String.compare

let mentions p v = List.exists (fun (m, _) -> List.mem v m) p

let subst p v q =
  List.fold_left
    (fun acc (m, c) ->
      let rec expand m =
        match m with
        | [] -> const 1
        | x :: rest ->
            let tail = expand rest in
            if String.equal x v then mul q tail else mul (var x) tail
      in
      add acc (scale c (expand m)))
    zero p

let to_string (p : t) =
  if p = [] then "0"
  else
    String.concat " + "
      (List.map
         (fun (m, c) ->
           match (m, c) with
           | [], k -> string_of_int k
           | m, 1 -> String.concat "*" m
           | m, -1 -> "-" ^ String.concat "*" m
           | m, k -> string_of_int k ^ "*" ^ String.concat "*" m)
         p)

let pp fmt p = Format.pp_print_string fmt (to_string p)
