(** Mini-C interpreter, functorized over the value domain.

    With [V = Stagg_util.Value.Rat_value] this executes benchmarks on
    concrete inputs (I/O example generation, §6); with the symbolic rational
    functions of {!Stagg_verify} it performs the loop-unrolled symbolic
    execution that underlies bounded verification (§7).

    Semantics notes (both faithful to the paper's verifier):
    - all arithmetic is exact rational arithmetic — [/] does not truncate —
      matching the paper's rational-datatype extension of CBMC;
    - control flow must be concrete: loop bounds and branch conditions may
      depend only on size parameters and loop counters. A symbolic condition
      is reported as an error. *)

module Make (V : Stagg_util.Value.S) : sig
  type arg =
    | Scalar of V.t
    | Array of V.t array
        (** passed by reference; the callee mutates it in place *)

  (** [run f ~args] binds [args] positionally to [f]'s parameters and
      executes the body. Output is observed through mutated [Array] args.
      Errors: arity mismatch, unbound variables, non-concrete control flow
      or addressing, out-of-bounds access, division by zero, iteration
      budget exceeded (runaway loop guard). *)
  val run : Ast.func -> args:arg list -> (unit, string) result
end
