open Ast

let max_steps = 50_000_000

module Make (V : Stagg_util.Value.S) = struct
  type arg = Scalar of V.t | Array of V.t array

  type value = Num of V.t | Ptr of string * int

  exception Exec_error of string
  exception Return_exc

  let errf fmt = Printf.ksprintf (fun msg -> raise (Exec_error msg)) fmt

  type env = {
    vars : (string, value) Hashtbl.t;
    mem : (string, V.t array) Hashtbl.t;
    mutable steps : int;
  }

  let tick env =
    env.steps <- env.steps + 1;
    if env.steps > max_steps then errf "iteration budget exceeded"

  let lookup env v =
    match Hashtbl.find_opt env.vars v with
    | Some x -> x
    | None -> errf "unbound variable %s" v

  let as_int v =
    match v with
    | Num n -> (
        match V.to_int n with Some i -> i | None -> errf "value used as index is not concrete")
    | Ptr _ -> errf "pointer used where an integer is required"

  let as_bool v =
    match v with
    | Num n -> (
        match V.compare_concrete n V.zero with
        | Some c -> c <> 0
        | None -> errf "symbolic branch condition")
    | Ptr _ -> true

  let read_mem env base off =
    match Hashtbl.find_opt env.mem base with
    | None -> errf "dereference of non-array %s" base
    | Some buf ->
        if off < 0 || off >= Array.length buf then
          errf "out-of-bounds read: %s[%d] (size %d)" base off (Array.length buf)
        else buf.(off)

  let write_mem env base off v =
    match Hashtbl.find_opt env.mem base with
    | None -> errf "store through non-array %s" base
    | Some buf ->
        if off < 0 || off >= Array.length buf then
          errf "out-of-bounds write: %s[%d] (size %d)" base off (Array.length buf)
        else buf.(off) <- v

  let num_binop op a b =
    match op with
    | Add -> V.add a b
    | Sub -> V.sub a b
    | Mul -> V.mul a b
    | Div -> V.div a b
    | Mod -> (
        match (V.to_int a, V.to_int b) with
        | Some x, Some y when y <> 0 -> V.of_int (x mod y)
        | Some _, Some _ -> raise Division_by_zero
        | _ -> errf "'%%' requires concrete operands")
    | Lt | Le | Gt | Ge | Eq | Ne -> (
        match V.compare_concrete a b with
        | None -> errf "symbolic comparison"
        | Some c ->
            let r =
              match op with
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0
              | Eq -> c = 0
              | Ne -> c <> 0
              | _ -> assert false
            in
            if r then V.one else V.zero)
    | And | Or -> assert false (* handled with short-circuit in eval *)

  let rec eval env (e : expr) : value =
    tick env;
    match e with
    | Num c -> Num (V.of_rat c)
    | Var v -> lookup env v
    | Neg e -> (
        match eval env e with
        | Num n -> Num (V.neg n)
        | Ptr _ -> errf "cannot negate a pointer")
    | Not e -> Num (if as_bool (eval env e) then V.zero else V.one)
    | Bin (And, a, b) ->
        if as_bool (eval env a) then Num (if as_bool (eval env b) then V.one else V.zero)
        else Num V.zero
    | Bin (Or, a, b) ->
        if as_bool (eval env a) then Num V.one
        else Num (if as_bool (eval env b) then V.one else V.zero)
    | Bin (op, a, b) -> (
        let va = eval env a and vb = eval env b in
        match (va, vb, op) with
        | Num x, Num y, _ -> Num (num_binop op x y)
        | Ptr (base, off), Num n, Add -> Ptr (base, off + as_int (Num n))
        | Num n, Ptr (base, off), Add -> Ptr (base, off + as_int (Num n))
        | Ptr (base, off), Num n, Sub -> Ptr (base, off - as_int (Num n))
        | _ -> errf "unsupported pointer arithmetic")
    | Deref e -> (
        match eval env e with
        | Ptr (base, off) -> Num (read_mem env base off)
        | Num _ -> errf "dereference of a non-pointer")
    | Index (a, ix) -> (
        match eval env a with
        | Ptr (base, off) -> Num (read_mem env base (off + as_int (eval env ix)))
        | Num _ -> errf "subscript of a non-pointer")
    | Addr_index (a, ix) -> (
        match eval env a with
        | Ptr (base, off) -> Ptr (base, off + as_int (eval env ix))
        | Num _ -> errf "'&' subscript of a non-pointer")
    | Post_incr v -> (
        let old = lookup env v in
        (match old with
        | Num n -> Hashtbl.replace env.vars v (Num (V.add n V.one))
        | Ptr (b, off) -> Hashtbl.replace env.vars v (Ptr (b, off + 1)));
        old)
    | Post_decr v -> (
        let old = lookup env v in
        (match old with
        | Num n -> Hashtbl.replace env.vars v (Num (V.sub n V.one))
        | Ptr (b, off) -> Hashtbl.replace env.vars v (Ptr (b, off - 1)));
        old)
    | Ternary (c, t, e) -> if as_bool (eval env c) then eval env t else eval env e


  let read_lvalue env = function
    | Lvar v -> lookup env v
    | Lderef e -> (
        match eval env e with
        | Ptr (b, off) -> Num (read_mem env b off)
        | Num _ -> errf "dereference of a non-pointer")
    | Lindex (a, ix) -> (
        match eval env a with
        | Ptr (b, off) -> Num (read_mem env b (off + as_int (eval env ix)))
        | Num _ -> errf "subscript of a non-pointer")

  let write_lvalue env lv v =
    match lv with
    | Lvar x -> Hashtbl.replace env.vars x v
    | Lderef e -> (
        match (eval env e, v) with
        | Ptr (b, off), Num n -> write_mem env b off n
        | _ -> errf "invalid store")
    | Lindex (a, ix) -> (
        match (eval env a, v) with
        | Ptr (b, off), Num n -> write_mem env b (off + as_int (eval env ix)) n
        | _ -> errf "invalid store")

  let rec exec env (s : stmt) : unit =
    tick env;
    match s with
    | Decl (_, name, init) ->
        let v = match init with None -> Num V.zero | Some e -> eval env e in
        Hashtbl.replace env.vars name v
    | Assign (lv, e) -> write_lvalue env lv (eval env e)
    | Op_assign (lv, op, e) -> (
        let cur = read_lvalue env lv in
        let rhs = eval env e in
        match (cur, rhs) with
        | Num a, Num b -> write_lvalue env lv (Num (num_binop op a b))
        | Ptr (b, off), Num _ when op = Add -> write_lvalue env lv (Ptr (b, off + as_int rhs))
        | Ptr (b, off), Num _ when op = Sub -> write_lvalue env lv (Ptr (b, off - as_int rhs))
        | _ -> errf "invalid compound assignment")
    | Incr_stmt lv -> (
        match read_lvalue env lv with
        | Num n -> write_lvalue env lv (Num (V.add n V.one))
        | Ptr (b, off) -> write_lvalue env lv (Ptr (b, off + 1)))
    | Decr_stmt lv -> (
        match read_lvalue env lv with
        | Num n -> write_lvalue env lv (Num (V.sub n V.one))
        | Ptr (b, off) -> write_lvalue env lv (Ptr (b, off - 1)))
    | For (h, body) ->
        Option.iter (exec env) h.init;
        let continue_ = ref true in
        while !continue_ do
          let c = match h.cond with None -> true | Some e -> as_bool (eval env e) in
          if not c then continue_ := false
          else begin
            List.iter (exec env) body;
            Option.iter (exec env) h.step
          end
        done
    | If (c, then_, else_) ->
        if as_bool (eval env c) then List.iter (exec env) then_ else List.iter (exec env) else_
    | Block b -> List.iter (exec env) b
    | Expr_stmt e -> ignore (eval env e)
    | Return _ -> raise Return_exc

  let run (f : func) ~args =
    if List.length args <> List.length f.params then
      Error
        (Printf.sprintf "arity mismatch: %s takes %d arguments, got %d" f.fname
           (List.length f.params) (List.length args))
    else begin
      let env = { vars = Hashtbl.create 16; mem = Hashtbl.create 8; steps = 0 } in
      List.iter2
        (fun p a ->
          match (p.ptyp, a) with
          | Tint, Scalar v -> Hashtbl.replace env.vars p.pname (Num v)
          | Tptr, Array buf ->
              Hashtbl.replace env.mem p.pname buf;
              Hashtbl.replace env.vars p.pname (Ptr (p.pname, 0))
          | Tint, Array _ -> raise (Exec_error (p.pname ^ ": array passed for scalar parameter"))
          | Tptr, Scalar _ -> raise (Exec_error (p.pname ^ ": scalar passed for pointer parameter")))
        f.params args;
      match List.iter (exec env) f.body with
      | () -> Ok ()
      | exception Return_exc -> Ok ()
      | exception Exec_error msg -> Error msg
      | exception Division_by_zero -> Error "division by zero"
    end

  let run f ~args = try run f ~args with Exec_error msg -> Error msg
end
