open Stagg_util
open Stagg_template
module Sig = Stagg_minic.Signature
module Tensor = Stagg_taco.Tensor
module Tinterp = Stagg_taco.Interp.Make (Value.Rat_value)

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Subst.t;
  concrete : Stagg_taco.Ast.program;
}

let pp_solution fmt s =
  Format.fprintf fmt "%s via %a"
    (Stagg_taco.Pretty.program_to_string s.concrete)
    Subst.pp s.subst

let instantiation_counter = ref 0
let last_instantiations () = !instantiation_counter

(* Does [concrete] reproduce one example? *)
let satisfies_example ~(signature : Sig.t) (ex : Examples.example) concrete =
  let env =
    List.map
      (fun (name, spec) ->
        let flat = List.assoc name ex.Examples.inputs in
        match spec with
        | Sig.Size _ | Sig.Scalar_data -> (name, Tensor.scalar flat.(0))
        | Sig.Arr _ -> (name, Tensor.of_flat_array (Sig.shape ~sizes:ex.sizes spec) flat))
      signature.args
  in
  let out_shape = Sig.shape ~sizes:ex.sizes (Sig.out_spec signature) in
  match Tinterp.run ~env ~lhs_shape:out_shape concrete with
  | Error _ -> false
  | Ok out ->
      let flat = Tensor.to_flat_array out in
      Array.length flat = Array.length ex.output
      && Tensor.shape out = out_shape
      && Array.for_all2 Rat.equal flat ex.output

let check_concrete ~signature ~examples p =
  List.for_all (fun ex -> satisfies_example ~signature ex p) examples

let validate ~signature ~examples ~consts ?(verify = fun _ -> true) template =
  instantiation_counter := 0;
  let args =
    List.map
      (fun (name, spec) ->
        {
          Subst.name;
          rank = Some (Sig.rank_of_spec spec);
          is_size = (match spec with Sig.Size _ -> true | _ -> false);
        })
      signature.Sig.args
  in
  let out_rank = Sig.rank_of_spec (Sig.out_spec signature) in
  let substs =
    Subst.enumerate ~template ~out:signature.out ~out_rank ~args ~consts
  in
  List.find_map
    (fun subst ->
      let concrete = Subst.instantiate template subst in
      incr instantiation_counter;
      if List.for_all (fun ex -> satisfies_example ~signature ex concrete) examples then
        if verify concrete then Some { template; subst; concrete } else None
      else None)
    substs
