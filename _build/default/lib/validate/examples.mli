(** Input–output example generation (paper §6).

    Examples are produced by running the legacy mini-C program on randomly
    generated inputs. Values are small nonzero integers (as rationals), so
    candidate programs with division never fail spuriously on a zero
    divisor, and arithmetic stays exact. *)

open Stagg_util

type example = {
  sizes : (string * int) list;  (** concrete value of each dimension *)
  inputs : (string * Rat.t array) list;
      (** initial contents of every parameter: arrays have their cells,
          scalars (sizes included) a single cell *)
  output : Rat.t array;  (** contents of the output buffer after the run *)
}

(** [generate ~func ~signature ~prng ?n ()] runs the program on [n]
    (default 4) random inputs over a couple of different sizes. Fails if
    the program itself fails (a benchmark bug). *)
val generate :
  func:Stagg_minic.Ast.func ->
  signature:Stagg_minic.Signature.t ->
  prng:Prng.t ->
  ?n:int ->
  unit ->
  (example list, string) result
