(** The template validator (paper §6, Fig. 8).

    Given a complete template from the search, enumerates every sound
    substitution of the legacy program's arguments (and source constants)
    for the template's symbols, instantiates, and executes the resulting
    concrete TACO program on the I/O examples. The first instantiation
    that satisfies every example — and, when a [verify] hook is supplied,
    passes bounded verification (§7: on verification failure the validator
    keeps exploring substitutions) — is returned. *)

open Stagg_util

type solution = {
  template : Stagg_taco.Ast.program;
  subst : Stagg_template.Subst.t;
  concrete : Stagg_taco.Ast.program;  (** over the C parameter names *)
}

val pp_solution : Format.formatter -> solution -> unit

(** Number of instantiations executed by the last [validate] call
    (observability for the experiment harness). *)
val last_instantiations : unit -> int

val validate :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  consts:Rat.t list ->
  ?verify:(Stagg_taco.Ast.program -> bool) ->
  Stagg_taco.Ast.program ->
  solution option

(** [check_concrete ~signature ~examples p] — does the {e concrete} TACO
    program [p] (over the C parameter names) reproduce every example?
    Used by baselines that enumerate concrete programs directly
    (C2TACO-style I/O testing). *)
val check_concrete :
  signature:Stagg_minic.Signature.t ->
  examples:Examples.example list ->
  Stagg_taco.Ast.program ->
  bool
