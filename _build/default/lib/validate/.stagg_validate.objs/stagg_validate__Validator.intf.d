lib/validate/validator.mli: Examples Format Rat Stagg_minic Stagg_taco Stagg_template Stagg_util
