lib/validate/validator.ml: Array Examples Format List Rat Stagg_minic Stagg_taco Stagg_template Stagg_util Subst Value
