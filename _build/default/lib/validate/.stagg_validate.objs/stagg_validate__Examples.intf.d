lib/validate/examples.mli: Prng Rat Stagg_minic Stagg_util
