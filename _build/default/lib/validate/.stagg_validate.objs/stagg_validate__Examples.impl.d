lib/validate/examples.ml: Array Interp List Printf Prng Rat Signature Stagg_minic Stagg_util Value
