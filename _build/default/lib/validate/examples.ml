open Stagg_util
open Stagg_minic
module Cinterp = Interp.Make (Value.Rat_value)

type example = {
  sizes : (string * int) list;
  inputs : (string * Rat.t array) list;
  output : Rat.t array;
}

(* small nonzero values: exact, division-safe, and adversarial enough to
   kill index permutations and wrong operators *)
let random_value prng =
  let v = Prng.int_range prng 1 7 in
  Rat.of_int (if Prng.chance prng 0.3 then -v else v)

let generate_one ~func ~(signature : Signature.t) ~prng ~size =
  (* distinct extents per dimension variable, so transposed or re-wired
     candidates cannot hide behind square shapes *)
  let base = [| 0; 1; -1; 2 |] in
  let sizes =
    List.mapi
      (fun k n -> (n, max 2 (size + base.(k mod Array.length base))))
      (Signature.size_names signature)
  in
  let inputs =
    List.map
      (fun (name, spec) ->
        match spec with
        | Signature.Size s -> (name, [| Rat.of_int (List.assoc s sizes) |])
        | Signature.Scalar_data -> (name, [| random_value prng |])
        | Signature.Arr _ ->
            (name, Array.init (Signature.n_cells ~sizes spec) (fun _ -> random_value prng)))
      signature.args
  in
  (* run on copies so [inputs] keeps the pre-call contents *)
  let buffers =
    List.map
      (fun (name, spec) ->
        match spec with
        | Signature.Arr _ -> (name, Array.copy (List.assoc name inputs))
        | _ -> (name, [||]))
      signature.args
  in
  let args =
    List.map
      (fun (name, spec) ->
        match spec with
        | Signature.Size _ | Signature.Scalar_data ->
            Cinterp.Scalar (List.assoc name inputs).(0)
        | Signature.Arr _ -> Cinterp.Array (List.assoc name buffers))
      signature.args
  in
  match Cinterp.run func ~args with
  | Error msg -> Error (Printf.sprintf "example generation failed (size %d): %s" size msg)
  | Ok () -> Ok { sizes; inputs; output = Array.copy (List.assoc signature.out buffers) }

let generate ~func ~signature ~prng ?(n = 4) () =
  (* a couple of distinct sizes to rule out size-coincidental matches *)
  let size_for k = if k mod 2 = 0 then 3 else 4 in
  let rec go k retries acc =
    if k = n then Ok (List.rev acc)
    else
      match generate_one ~func ~signature ~prng ~size:(size_for k) with
      | Error _ when retries > 0 ->
          (* e.g. a random scalar made a divisor zero: redraw *)
          go k (retries - 1) acc
      | Error _ as e -> e
      | Ok ex -> go (k + 1) retries (ex :: acc)
  in
  go 0 20 []
