open Stagg_minic
module Tensor = Stagg_taco.Tensor
module Cinterp = Interp.Make (Ratfunc)
module Kexec = Stagg_taco.Ir.Exec (Ratfunc)

type result = Equivalent | Not_equivalent of string | Inconclusive of string

let result_to_string = function
  | Equivalent -> "equivalent"
  | Not_equivalent msg -> "not equivalent: " ^ msg
  | Inconclusive msg -> "inconclusive: " ^ msg

let cell_var name k = Printf.sprintf "%s!%d" name k

(* Symbolic contents for one parameter at the given sizes. *)
let symbolic_cells ~sizes name spec =
  Array.init (Signature.n_cells ~sizes spec) (fun k -> Ratfunc.var (cell_var name k))

let check_at_bound ~func ~(signature : Signature.t) ~candidate b : result =
  let sizes = List.map (fun n -> (n, b)) (Signature.size_names signature) in
  (* fresh symbolic buffers for the C run (mutated in place) *)
  let buffers =
    List.map
      (fun (name, spec) ->
        match spec with
        | Signature.Size _ | Signature.Scalar_data -> (name, None)
        | Signature.Arr _ -> (name, Some (symbolic_cells ~sizes name spec)))
      signature.args
  in
  let c_args =
    List.map
      (fun (name, spec) ->
        match spec with
        | Signature.Size s -> Cinterp.Scalar (Ratfunc.of_int (List.assoc s sizes))
        | Signature.Scalar_data -> Cinterp.Scalar (Ratfunc.var (cell_var name 0))
        | Signature.Arr _ -> Cinterp.Array (Option.get (List.assoc name buffers)))
      signature.args
  in
  match Cinterp.run func ~args:c_args with
  | Error msg -> Inconclusive (Printf.sprintf "C side failed at bound %d: %s" b msg)
  | Ok () -> (
      let c_out = Option.get (List.assoc signature.out buffers) in
      (* TACO side: the same symbolic inputs, shaped; kernel from the
         lowering compiler *)
      let env =
        List.filter_map
          (fun (name, spec) ->
            match spec with
            | Signature.Size s ->
                Some (name, Tensor.scalar (Ratfunc.of_int (List.assoc s sizes)))
            | Signature.Scalar_data -> Some (name, Tensor.scalar (Ratfunc.var (cell_var name 0)))
            | Signature.Arr _ ->
                Some (name, Tensor.of_flat_array (Signature.shape ~sizes spec)
                              (symbolic_cells ~sizes name spec)))
          signature.args
      in
      let out_shape = Signature.shape ~sizes (Signature.out_spec signature) in
      match Stagg_taco.Lower.lower candidate with
      | Error msg -> Inconclusive ("lowering failed: " ^ msg)
      | Ok kernel -> (
          match Kexec.run ~env ~out_shape kernel with
          | Error msg -> Inconclusive (Printf.sprintf "kernel failed at bound %d: %s" b msg)
          | Ok out ->
              let t_flat = Tensor.to_flat_array out in
              if Array.length t_flat <> Array.length c_out then
                Not_equivalent
                  (Printf.sprintf "output sizes differ at bound %d (%d vs %d)" b
                     (Array.length c_out) (Array.length t_flat))
              else begin
                let bad = ref None in
                Array.iteri
                  (fun k v ->
                    if !bad = None && not (Ratfunc.equal v c_out.(k)) then bad := Some k)
                  t_flat;
                match !bad with
                | None -> Equivalent
                | Some k ->
                    Not_equivalent
                      (Printf.sprintf "cell %d differs at bound %d: C gives %s, TACO gives %s" k b
                         (Ratfunc.to_string c_out.(k)) (Ratfunc.to_string t_flat.(k)))
              end))

let check ~func ~signature ~candidate ?(bounds = [ 1; 2; 3 ]) () =
  let rec go = function
    | [] -> Equivalent
    | b :: rest -> (
        match check_at_bound ~func ~signature ~candidate b with
        | Equivalent -> go rest
        | (Not_equivalent _ | Inconclusive _) as r -> r)
  in
  go bounds
