open Stagg_util

(* Sorted association list from monomials (sorted variable lists, with
   repetition for powers) to nonzero rational coefficients. *)
type monomial = string list

type t = (monomial * Rat.t) list

let zero : t = []
let const c : t = if Rat.is_zero c then [] else [ ([], c) ]
let one = const Rat.one
let of_int n = const (Rat.of_int n)
let var v : t = [ ([ v ], Rat.one) ]

let normalize (terms : (monomial * Rat.t) list) : t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m, c) ->
      let m = List.sort String.compare m in
      let cur = Option.value ~default:Rat.zero (Hashtbl.find_opt tbl m) in
      Hashtbl.replace tbl m (Rat.add cur c))
    terms;
  Hashtbl.fold (fun m c acc -> if Rat.is_zero c then acc else (m, c) :: acc) tbl []
  |> List.sort (fun (m1, _) (m2, _) -> compare m1 m2)

let add a b = normalize (a @ b)
let neg a = List.map (fun (m, c) -> (m, Rat.neg c)) a
let sub a b = add a (neg b)

let mul (a : t) (b : t) =
  normalize
    (List.concat_map (fun (ma, ca) -> List.map (fun (mb, cb) -> (ma @ mb, Rat.mul ca cb)) b) a)

let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all2 (fun (m1, c1) (m2, c2) -> m1 = m2 && Rat.equal c1 c2) a b

let is_const = function
  | [] -> Some Rat.zero
  | [ ([], c) ] -> Some c
  | _ -> None

let is_zero p = p = []

let n_terms = List.length

let vars (p : t) =
  let seen = Hashtbl.create 8 in
  List.iter (fun (m, _) -> List.iter (fun v -> Hashtbl.replace seen v ()) m) p;
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort String.compare

let to_string (p : t) =
  if p = [] then "0"
  else
    String.concat " + "
      (List.map
         (fun (m, c) ->
           match m with
           | [] -> Rat.to_string c
           | _ when Rat.equal c Rat.one -> String.concat "*" m
           | _ -> Rat.to_string c ^ "*" ^ String.concat "*" m)
         p)

let pp fmt p = Format.pp_print_string fmt (to_string p)

let eval (p : t) lookup =
  List.fold_left
    (fun acc (m, c) ->
      Rat.add acc (List.fold_left (fun v x -> Rat.mul v (lookup x)) c m))
    Rat.zero p
