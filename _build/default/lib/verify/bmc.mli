(** Bounded equivalence checking of a mini-C function against a candidate
    TACO program (the paper's CBMC-based verifier, §7).

    For each size bound b, every dimension is fixed at b, every input cell
    becomes a fresh symbolic variable, and both programs are executed by
    the {e same} interpreters used for concrete runs — instantiated at
    {!Ratfunc} — which unrolls all loops and yields each output cell as an
    exact rational function of the inputs. The candidate side runs the
    kernel produced by the {!Stagg_taco.Lower} compiler, mirroring the
    paper's "compile the TACO program, then compare" pipeline. Outputs are
    compared by cross-multiplication, i.e. for {e all} rational inputs at
    once — precisely CBMC-with-rationals' guarantee up to the bound. *)

type result = Equivalent | Not_equivalent of string | Inconclusive of string

val result_to_string : result -> string

(** [check ~func ~signature ~candidate ()] — [candidate] is a concrete
    TACO program over the function's parameter names. [bounds] are the
    dimension sizes to verify at (default [\[1; 2; 3\]]; every size
    parameter is set to each bound in turn). *)
val check :
  func:Stagg_minic.Ast.func ->
  signature:Stagg_minic.Signature.t ->
  candidate:Stagg_taco.Ast.program ->
  ?bounds:int list ->
  unit ->
  result
