lib/verify/ratfunc.ml: Format Poly Printf Rat Stagg_util
