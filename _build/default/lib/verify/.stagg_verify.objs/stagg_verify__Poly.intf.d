lib/verify/poly.mli: Format Rat Stagg_util
