lib/verify/ratfunc.mli: Poly Rat Stagg_util Value
