lib/verify/bmc.mli: Stagg_minic Stagg_taco
