lib/verify/poly.ml: Format Hashtbl List Option Rat Stagg_util String
