lib/verify/bmc.ml: Array Interp List Option Printf Ratfunc Signature Stagg_minic Stagg_taco
