(** Symbolic rational functions p/q over ℚ, and their {!Stagg_util.Value.S}
    instance — the value domain that turns both interpreters into a bounded
    model checker (§7).

    Denominators are formally nonzero polynomials. Equality is decided by
    cross-multiplication (p₁q₂ = p₂q₁ as canonical polynomials), which is
    sound and complete for rational functions without needing multivariate
    gcd. *)

open Stagg_util

type t

val num : t -> Poly.t
val den : t -> Poly.t

(** [make num den]. @raise Division_by_zero when [den] is the zero
    polynomial. *)
val make : Poly.t -> Poly.t -> t

val of_poly : Poly.t -> t
val var : string -> t

include Value.S with type t := t

(** [is_const v] is [Some c] iff [v] is the constant rational [c]. *)
val is_const : t -> Rat.t option

val to_string : t -> string
