(** Partial derivation trees: the states of both A* searches.

    A node is a parse tree whose frontier may contain unexpanded
    nonterminals ([Open]). Expansion rewrites the leftmost [Open] leaf by
    one grammar rule, exactly as in Algorithms 1 and 2. *)

open Stagg_grammar

type t =
  | Leaf of Cfg.term
  | Open of string  (** unexpanded nonterminal *)
  | Node of int * t list  (** applied rule id, children *)

val initial : Cfg.t -> t

(** Name of the leftmost unexpanded nonterminal, if any. *)
val leftmost_open : t -> string option

val is_complete : t -> bool

(** [expansions g x] — all single-step leftmost expansions, with the rule
    applied. Empty when [x] is complete. *)
val expansions : Cfg.t -> t -> (Cfg.rule * t) list

(** [g_cost p x] — the heuristic g(x): Σ over open leaves of −log₂ h(nt)
    (§5.1). 0 when complete. *)
val g_cost : Pcfg.t -> t -> float

(** Expression depth as defined in §5.1: tensor/constant leaves (and open
    expression-valued leaves) have depth 1; a node of an expression-valued
    rule with ≥2 expression children adds 1; everything else is
    transparent. *)
val depth : Cfg.t -> t -> int

(** Facts the penalty functions need, computable on partial trees. *)
type metrics = {
  tensor_leaves : (string * string list) list;
      (** tensor/const terminals in left-to-right order; [Const] appears as
          [("Const", \[\])] *)
  n_tensors : int;  (** length of [tensor_leaves] *)
  n_unique : int;
      (** distinct tensor symbols (Const counts once) — the quantity a
          dimension list has one entry per, hence the paper's "length" *)
  has_const_leaf : bool;
  distinct_ops : Stagg_taco.Ast.op list;
  complete : bool;
  depth : int;
}

val metrics : Cfg.t -> t -> metrics

(** [to_program g x] rebuilds the TACO template AST from a complete tree.
    [None] if [x] has open leaves or an unrecognized rule shape. *)
val to_program : Cfg.t -> t -> Stagg_taco.Ast.program option

(** [remove_tail g x] — Algorithm 2's RemoveTail: if every open leaf is a
    [Cat_tail] nonterminal with an ε rule, close them all and return the
    completed tree. [None] otherwise. *)
val remove_tail : Cfg.t -> t -> t option
