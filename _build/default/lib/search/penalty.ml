open Stagg_taco

type criterion = A1 | A2 | A3 | A4 | A5 | B1 | B2

let all_topdown = [ A1; A2; A3; A4; A5 ]
let all_bottomup = [ B1; B2 ]

let criterion_to_string = function
  | A1 -> "a1"
  | A2 -> "a2"
  | A3 -> "a3"
  | A4 -> "a4"
  | A5 -> "a5"
  | B1 -> "b1"
  | B2 -> "b2"

type ctx = {
  dim_list : int list;
  ops_available : Ast.op list;
  grammar_has_const : bool;
  enabled : criterion list;
}

(* a3/b1: tensor symbols in alphabetical order by first appearance — i.e.
   the first-appearance sequence is sorted. "Sorted", not "consecutive":
   when a Const occupies a dimension-list slot the solution may legally
   skip that slot's letter (a(i) = Const - c(i)). Const itself does not
   participate. The point of the rule is to avoid enumerating templates
   that differ only by symbol permutation (§5.1). *)
let alphabetical_order (m : Node.metrics) =
  let firsts =
    List.fold_left
      (fun acc (n, _) ->
        if String.equal n "Const" || List.mem n acc then acc else n :: acc)
      [] m.tensor_leaves
    |> List.rev
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
    | _ -> true
  in
  sorted firsts

(* a4: some +, − or / applied to two syntactically identical operands. *)
let rec same_operand_addsubdiv (e : Ast.expr) =
  match e with
  | Ast.Access _ | Ast.Const _ -> false
  | Ast.Neg e -> same_operand_addsubdiv e
  | Ast.Bin (op, l, r) ->
      (match op with
      | Ast.Add | Ast.Sub | Ast.Div -> Ast.equal_expr l r
      | Ast.Mul -> false)
      || same_operand_addsubdiv l || same_operand_addsubdiv r

(* a5/b2: uses fewer than half of the operations available. *)
let too_few_ops ctx (m : Node.metrics) =
  2 * List.length m.distinct_ops < List.length ctx.ops_available

let count_with_index_i (m : Node.metrics) =
  List.length (List.filter (fun (_, idxs) -> List.mem "i" idxs) m.tensor_leaves)

let score ctx (m : Node.metrics) ~program =
  let len_l = List.length ctx.dim_list in
  let on c v = if List.mem c ctx.enabled then v else 0. in
  let a1 =
    (* grammar includes a constant expression, length exceeds 3, and the
       expression has poor index variety or lacks the constant *)
    if
      ctx.grammar_has_const && m.n_tensors > 3
      && (count_with_index_i m < 2 || not m.has_const_leaf)
    then 10.
    else 0.
  in
  let a2 =
    (* the number of unique tensor symbols differs from the dimension-list
       length (a symbol may be used several times: (b-c)*(b-c) has three
       unique symbols). A partial template can still grow, so it is only
       penalized once it is already too long. *)
    if (m.complete && m.n_unique <> len_l) || ((not m.complete) && m.n_unique > len_l) then 100.
    else 0.
  in
  let a3 = if alphabetical_order m then 0. else infinity in
  let a4 =
    match program with
    | Some p when m.complete && same_operand_addsubdiv p.Ast.rhs -> infinity
    | _ -> 0.
  in
  let a5 = if m.complete && too_few_ops ctx m then infinity else 0. in
  let b1 = if alphabetical_order m then 0. else 100. in
  let b2 = if m.n_tensors >= len_l && too_few_ops ctx m then infinity else 0. in
  on A1 a1 +. on A2 a2 +. on A3 a3 +. on A4 a4 +. on A5 a5 +. on B1 b1 +. on B2 b2
