open Stagg_grammar
module Ast = Stagg_taco.Ast

type t = Leaf of Cfg.term | Open of string | Node of int * t list

let initial g = Open (Cfg.start g)

let rec leftmost_open = function
  | Open nt -> Some nt
  | Leaf _ -> None
  | Node (_, ch) -> List.find_map leftmost_open ch

let is_complete x = leftmost_open x = None

let apply_rule (r : Cfg.rule) =
  Node (r.id, List.map (function Cfg.NT n -> Open n | Cfg.T t -> Leaf t) r.rhs)

(* Substitute the leftmost Open leaf with [repl]; returns the new tree and
   whether a substitution happened. *)
let rec subst_leftmost x repl =
  match x with
  | Open _ -> (repl, true)
  | Leaf _ -> (x, false)
  | Node (id, ch) ->
      let rec go acc done_ = function
        | [] -> (List.rev acc, done_)
        | c :: rest ->
            if done_ then go (c :: acc) true rest
            else
              let c', d = subst_leftmost c repl in
              go (c' :: acc) d rest
      in
      let ch', d = go [] false ch in
      (Node (id, ch'), d)

let expansions g x =
  match leftmost_open x with
  | None -> []
  | Some nt ->
      List.map
        (fun (r : Cfg.rule) ->
          let x', ok = subst_leftmost x (apply_rule r) in
          assert ok;
          (r, x'))
        (Cfg.rules_for g nt)

let rec g_cost p = function
  | Leaf _ -> 0.
  | Open nt -> Pcfg.h_cost p nt
  | Node (_, ch) -> List.fold_left (fun acc c -> acc +. g_cost p c) 0. ch

let rec depth g = function
  | Leaf (Cfg.Tok_tensor _ | Cfg.Tok_const) -> 1
  | Leaf _ -> 0
  | Open nt -> (
      match Cfg.category g nt with
      | Cfg.Cat_expr | Cfg.Cat_tensor -> 1
      | Cfg.Cat_program | Cfg.Cat_op | Cfg.Cat_tail -> 0)
  | Node (rid, ch) ->
      let ds = List.map (depth g) ch in
      let m = List.fold_left max 0 ds in
      let expr_children = List.length (List.filter (fun d -> d >= 1) ds) in
      let lhs_cat = Cfg.category g (Cfg.rule g rid).lhs in
      if lhs_cat = Cfg.Cat_expr && expr_children >= 2 then 1 + m else m

type metrics = {
  tensor_leaves : (string * string list) list;
  n_tensors : int;
  n_unique : int;
  has_const_leaf : bool;
  distinct_ops : Ast.op list;
  complete : bool;
  depth : int;
}

let metrics g x =
  (* single left-to-right scan over the frontier *)
  let tensors = ref [] in
  let ops = ref [] in
  let has_const = ref false in
  let complete = ref true in
  let rec scan = function
    | Open _ -> complete := false
    | Leaf (Cfg.Tok_tensor (n, idxs)) -> tensors := (n, idxs) :: !tensors
    | Leaf Cfg.Tok_const ->
        tensors := ("Const", []) :: !tensors;
        has_const := true
    | Leaf (Cfg.Tok_op op) -> if not (List.mem op !ops) then ops := op :: !ops
    | Leaf Cfg.Tok_neg -> if not (List.mem Ast.Sub !ops) then ops := Ast.Sub :: !ops
    | Leaf (Cfg.Tok_assign | Cfg.Tok_lparen | Cfg.Tok_rparen) -> ()
    | Node (_, ch) -> List.iter scan ch
  in
  scan x;
  let tensor_leaves = List.rev !tensors in
  let n_unique =
    List.length
      (List.sort_uniq String.compare (List.map fst tensor_leaves))
  in
  {
    tensor_leaves;
    n_tensors = List.length tensor_leaves;
    n_unique;
    has_const_leaf = !has_const;
    distinct_ops = List.rev !ops;
    complete = !complete;
    depth = depth g x;
  }

(* ---- rebuilding the template AST from a complete tree ---- *)

let rec to_expr g (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (Ast.Access (n, idxs))
  | Leaf Cfg.Tok_const -> Some (Ast.Access ("Const", []))
  | Leaf _ | Open _ -> None
  | Node (_, ch) -> (
      match ch with
      | [ sub ] -> to_expr g sub
      | [ Leaf Cfg.Tok_neg; sub ] ->
          let* e = to_expr g sub in
          Some (Ast.Neg e)
      | [ Leaf Cfg.Tok_lparen; sub; Leaf Cfg.Tok_rparen ] -> to_expr g sub
      | [ l; mid; r ] -> (
          let* op = op_of g mid in
          let* le = to_expr g l in
          let* re = to_expr g r in
          Some (Ast.Bin (op, le, re)))
      | [ hd; tail ] ->
          (* right-linear chain: TENSOR TAIL *)
          let* hd_e = to_expr g hd in
          fold_tail g hd_e tail
      | _ -> None)

and op_of g (x : t) : Ast.op option =
  match x with
  | Leaf (Cfg.Tok_op op) -> Some op
  | Node (_, [ sub ]) -> op_of g sub
  | _ -> None

and fold_tail g acc (x : t) : Ast.expr option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, []) -> Some acc (* ε *)
  | Node (_, [ opn; tn ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      Some (Ast.Bin (op, acc, te))
  | Node (_, [ opn; tn; tail ]) ->
      let* op = op_of g opn in
      let* te = to_expr g tn in
      fold_tail g (Ast.Bin (op, acc, te)) tail
  | _ -> None

let to_program g (x : t) : Ast.program option =
  let ( let* ) = Option.bind in
  match x with
  | Node (_, [ lhs; Leaf Cfg.Tok_assign; rhs ]) ->
      let* lhs_e =
        match lhs with
        | Leaf (Cfg.Tok_tensor (n, idxs)) -> Some (n, idxs)
        | Node (_, [ Leaf (Cfg.Tok_tensor (n, idxs)) ]) -> Some (n, idxs)
        | _ -> None
      in
      let* rhs_e = to_expr g rhs in
      Some { Ast.lhs = lhs_e; rhs = rhs_e }
  | _ -> None

let remove_tail g (x : t) : t option =
  let rec go x =
    match x with
    | Leaf _ -> Some x
    | Open nt ->
        if Cfg.category g nt = Cfg.Cat_tail then
          List.find_map
            (fun (r : Cfg.rule) -> if r.rhs = [] then Some (Node (r.id, [])) else None)
            (Cfg.rules_for g nt)
        else None
    | Node (id, ch) ->
        let rec map_all acc = function
          | [] -> Some (List.rev acc)
          | c :: rest -> (
              match go c with Some c' -> map_all (c' :: acc) rest | None -> None)
        in
        Option.map (fun ch' -> Node (id, ch')) (map_all [] ch)
  in
  if is_complete x then Some x else go x
