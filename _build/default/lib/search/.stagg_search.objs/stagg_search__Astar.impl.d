lib/search/astar.ml: Cfg Hashtbl List Node Pcfg Penalty Pqueue Stagg_grammar Stagg_taco Stagg_util Unix
