lib/search/penalty.ml: Ast List Node Stagg_taco String
