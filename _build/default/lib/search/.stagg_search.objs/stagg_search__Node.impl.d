lib/search/node.ml: Cfg List Option Pcfg Stagg_grammar Stagg_taco String
