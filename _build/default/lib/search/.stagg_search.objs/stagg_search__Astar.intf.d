lib/search/astar.mli: Penalty Stagg_grammar Stagg_taco
