lib/search/penalty.mli: Node Stagg_taco
