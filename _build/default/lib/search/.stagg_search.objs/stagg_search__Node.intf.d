lib/search/node.mli: Cfg Pcfg Stagg_grammar Stagg_taco
