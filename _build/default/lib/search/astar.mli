(** The two weighted-A* template enumerators (paper Algorithms 1 and 2).

    Both maintain a priority queue of partial derivation trees ordered by
    f(x) = c(x) + g(x) + X(x), expand the leftmost nonterminal of the
    cheapest tree, and hand complete templates to a caller-supplied
    validator. Rules with probability 0 (cost ∞) and expressions with
    infinite penalty are never enqueued. *)

type budget = {
  max_attempts : int;  (** validator calls before giving up *)
  max_expansions : int;  (** queue pops before giving up *)
  timeout_s : float;  (** wall-clock limit *)
}

val default_budget : budget

type stats = { attempts : int; expansions : int; elapsed_s : float }

type 'sol outcome =
  | Solved of 'sol * stats
  | Exhausted of stats  (** queue ran dry *)
  | Budget_exceeded of stats

val stats_of : 'sol outcome -> stats

(** Top-down search (Algorithm 1): validates templates when a complete
    tree is dequeued; trees deeper than [max_depth] (default 6, §5.1) are
    discarded. The [validate] callback receives the template AST and
    returns a solution to stop the search. *)
val search_topdown :
  pcfg:Stagg_grammar.Pcfg.t ->
  penalty_ctx:Penalty.ctx ->
  ?max_depth:int ->
  budget:budget ->
  validate:(Stagg_taco.Ast.program -> 'sol option) ->
  unit ->
  'sol outcome

(** Bottom-up search (Algorithm 2): when a dequeued tree has exactly the
    predicted number of tensors, its trailing TAIL nonterminals are erased
    (RemoveTail) and the completed template is validated; expansion then
    continues regardless. *)
val search_bottomup :
  pcfg:Stagg_grammar.Pcfg.t ->
  penalty_ctx:Penalty.ctx ->
  dim_list:int list ->
  budget:budget ->
  validate:(Stagg_taco.Ast.program -> 'sol option) ->
  unit ->
  'sol outcome
