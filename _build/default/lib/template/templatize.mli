(** Templatization of candidate solutions (paper §4.2.1, Fig. 4).

    A template is a TACO program whose tensor names are the symbolic
    variables [a, b, c, ...] (LHS first, then RHS tensors in order of first
    appearance), whose index variables are the canonical [i, j, k, l]
    (in order of first appearance, LHS first), and whose constants are the
    symbol [Const] (represented as the 0-ary access [Const]). *)

(** The symbolic-constant tensor name. *)
val const_symbol : string

val is_const_symbol : string -> bool

(** [templatize p] applies the three passes — tensor templatization, index
    standardization, constant templatization. Returns [None] when the
    candidate needs more than 4 index variables or more than 25 distinct
    RHS tensors (outside the template space). *)
val templatize : Stagg_taco.Ast.program -> Stagg_taco.Ast.program option

(** [rename p mapping ~consts] instantiates a template: tensor symbols are
    renamed via [mapping] and each [Const] occurrence is replaced by the
    literal [consts]. @raise Failure on a symbol missing from [mapping]. *)
val rename :
  Stagg_taco.Ast.program ->
  mapping:(string * string) list ->
  const:Stagg_util.Rat.t option ->
  Stagg_taco.Ast.program

(** Tensor symbols of the template in first-appearance order with their
    arities, excluding [Const]. The head is the LHS symbol. *)
val symbols : Stagg_taco.Ast.program -> (string * int) list

(** Does the template mention [Const]? *)
val has_const : Stagg_taco.Ast.program -> bool

(** Arity consistency: every symbol is used with a single arity. *)
val arity_consistent : Stagg_taco.Ast.program -> bool
