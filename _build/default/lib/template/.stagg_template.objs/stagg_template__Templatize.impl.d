lib/template/templatize.ml: Char Hashtbl List Option Printf Stagg_taco String
