lib/template/subst.mli: Format Rat Stagg_taco Stagg_util
