lib/template/dimlist.ml: Ast Hashtbl List Option Stagg_taco String
