lib/template/subst.ml: Format List Option Printf Rat Stagg_util String Templatize
