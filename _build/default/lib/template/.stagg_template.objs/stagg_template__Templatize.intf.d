lib/template/templatize.mli: Stagg_taco Stagg_util
