lib/template/dimlist.mli: Stagg_taco
