(** Dimension lists and RHS dimension prediction (paper Def. 4.5, §4.2.3).

    A dimension list [(d1, d2, ...)] gives the dimensionality of each
    unique tensor symbol of a template, in first-appearance order; the
    first element is the LHS. Constants and scalar variables count as
    dimension 0. *)

(** [of_template t] — the dimension list of a templatized candidate. The
    [Const] symbol contributes a 0 entry, like any scalar. *)
val of_template : Stagg_taco.Ast.program -> int list

(** [predict ts] — the paper's RHS prediction: compute the dimension list
    of every candidate, keep only those of maximal length, return the most
    frequent (first encountered on a tie). [None] on an empty candidate
    set. *)
val predict : Stagg_taco.Ast.program list -> int list option

(** [override_lhs l d] replaces the first element (the LHS dimension
    determined by static analysis, which takes precedence over the LLM). *)
val override_lhs : int list -> int -> int list

val to_string : int list -> string
