open Stagg_taco

let of_template (t : Ast.program) : int list =
  (* tensors_in_order includes the Const symbol as a 0-ary access, which is
     exactly the paper's "dimensions of constants and variables are 0" *)
  List.map snd (Ast.tensors_in_order t)

let predict (templates : Ast.program list) : int list option =
  match templates with
  | [] -> None
  | _ ->
      let lists = List.map of_template templates in
      let max_len = List.fold_left (fun m l -> max m (List.length l)) 0 lists in
      let longest = List.filter (fun l -> List.length l = max_len) lists in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun l -> Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        longest;
      (* most frequent; ties broken by first appearance in [longest] *)
      let best = ref None in
      List.iter
        (fun l ->
          let c = Hashtbl.find counts l in
          match !best with
          | Some (_, bc) when bc >= c -> ()
          | _ -> best := Some (l, c))
        longest;
      Option.map fst !best

let override_lhs l d = match l with [] -> [ d ] | _ :: rest -> d :: rest

let to_string l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"
