open Stagg_taco.Ast

let const_symbol = "Const"
let is_const_symbol = String.equal const_symbol

let canonical_indices = [ "i"; "j"; "k"; "l" ]
let max_tensor_symbols = 25

let templatize (p : program) : program option =
  (* tensor templatization: LHS ↦ a, then RHS tensors by first appearance *)
  let tensor_map = Hashtbl.create 8 in
  let next_tensor = ref 0 in
  let map_tensor name =
    match Hashtbl.find_opt tensor_map name with
    | Some s -> Some s
    | None ->
        if !next_tensor > max_tensor_symbols then None
        else begin
          let s = String.make 1 (Char.chr (Char.code 'a' + !next_tensor)) in
          incr next_tensor;
          Hashtbl.add tensor_map name s;
          Some s
        end
  in
  (* index standardization: by first appearance, LHS first *)
  let index_map = Hashtbl.create 8 in
  let next_index = ref 0 in
  let map_index i =
    match Hashtbl.find_opt index_map i with
    | Some s -> Some s
    | None ->
        if !next_index >= List.length canonical_indices then None
        else begin
          let s = List.nth canonical_indices !next_index in
          incr next_index;
          Hashtbl.add index_map i s;
          Some s
        end
  in
  let ( let* ) = Option.bind in
  let rec map_indices = function
    | [] -> Some []
    | i :: rest ->
        let* i' = map_index i in
        let* rest' = map_indices rest in
        Some (i' :: rest')
  in
  let rec go (e : expr) : expr option =
    match e with
    | Const _ -> Some (Access (const_symbol, []))
    | Access (name, idxs) ->
        let* name' = map_tensor name in
        let* idxs' = map_indices idxs in
        Some (Access (name', idxs'))
    | Neg e ->
        let* e' = go e in
        Some (Neg e')
    | Bin (op, a, b) ->
        let* a' = go a in
        let* b' = go b in
        Some (Bin (op, a', b'))
  in
  let lhs_name, lhs_idxs = p.lhs in
  let* lhs_name' = map_tensor lhs_name in
  let* lhs_idxs' = map_indices lhs_idxs in
  let* rhs' = go p.rhs in
  Some { lhs = (lhs_name', lhs_idxs'); rhs = rhs' }

let rename (p : program) ~mapping ~const =
  let map_name name =
    if is_const_symbol name then name
    else
      match List.assoc_opt name mapping with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Templatize.rename: no binding for symbol %s" name)
  in
  let rec go = function
    | Const c -> Const c
    | Access (name, []) when is_const_symbol name -> (
        match const with
        | Some c -> Const c
        | None -> failwith "Templatize.rename: template has Const but no constant was given")
    | Access (name, idxs) -> Access (map_name name, idxs)
    | Neg e -> Neg (go e)
    | Bin (op, a, b) -> Bin (op, go a, go b)
  in
  let lhs_name, lhs_idxs = p.lhs in
  { lhs = (map_name lhs_name, lhs_idxs); rhs = go p.rhs }

let symbols (p : program) : (string * int) list =
  List.filter (fun (n, _) -> not (is_const_symbol n)) (tensors_in_order p)

let has_const (p : program) : bool =
  let rec go = function
    | Const _ -> true
    | Access (n, []) -> is_const_symbol n
    | Access _ -> false
    | Neg e -> go e
    | Bin (_, a, b) -> go a || go b
  in
  go p.rhs

let arity_consistent (p : program) : bool =
  let arities = Hashtbl.create 8 in
  let ok = ref true in
  let visit name arity =
    match Hashtbl.find_opt arities name with
    | None -> Hashtbl.add arities name arity
    | Some a -> if a <> arity then ok := false
  in
  let rec go = function
    | Const _ -> ()
    | Access (n, idxs) -> visit n (List.length idxs)
    | Neg e -> go e
    | Bin (_, a, b) ->
        go a;
        go b
  in
  let lhs_name, lhs_idxs = p.lhs in
  visit lhs_name (List.length lhs_idxs);
  go p.rhs;
  !ok
