lib/benchsuite/suite_artificial.ml: Bench Stagg_oracle
