lib/benchsuite/suite.mli: Bench
