lib/benchsuite/suite.ml: Bench Hashtbl List Printf String Suite_artificial Suite_blas Suite_darknet Suite_dsp Suite_llama Suite_mathfu Suite_simpl_array
