lib/benchsuite/bench.mli: Stagg_minic Stagg_oracle Stagg_taco
