lib/benchsuite/suite_dsp.ml: Bench Stagg_oracle
