lib/benchsuite/suite_llama.ml: Bench Stagg_oracle
