lib/benchsuite/suite_mathfu.ml: Bench Stagg_oracle
