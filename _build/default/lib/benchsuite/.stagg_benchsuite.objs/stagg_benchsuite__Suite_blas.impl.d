lib/benchsuite/suite_blas.ml: Bench Stagg_oracle
