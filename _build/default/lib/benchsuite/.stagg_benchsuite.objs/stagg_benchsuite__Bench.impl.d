lib/benchsuite/bench.ml: Hashtbl Printf Stagg_minic Stagg_oracle Stagg_taco String
