lib/benchsuite/suite_simpl_array.ml: Bench Stagg_oracle
