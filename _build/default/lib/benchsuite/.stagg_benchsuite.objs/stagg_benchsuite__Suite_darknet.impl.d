lib/benchsuite/suite_darknet.ml: Bench Stagg_oracle
