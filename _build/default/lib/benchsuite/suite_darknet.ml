(** Darknet-derived benchmarks (12): the dense layers and auxiliary kernels
    of a small CNN framework, as flat C over channel-major buffers. *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Darknet

let all =
  [
    mk ~name:"dk_bias_add" ~quality:Near
      ~args:[ size "C"; size "S"; arr "X" [ "C"; "S" ]; arr "B" [ "C" ]; arr "R" [ "C"; "S" ] ]
      ~out:"R" ~truth:"R(i,j) = X(i,j) + B(i)"
      {|
void add_bias(int C, int S, int* X, int* B, int* R) {
  int c, s;
  for (c = 0; c < C; c++) {
    for (s = 0; s < S; s++) {
      R[c * S + s] = X[c * S + s] + B[c];
    }
  }
}
|};
    mk ~name:"dk_scale_bias" ~quality:Near
      ~args:[ size "C"; size "S"; arr "X" [ "C"; "S" ]; arr "B" [ "C" ]; arr "R" [ "C"; "S" ] ]
      ~out:"R" ~truth:"R(i,j) = X(i,j) * B(i)"
      {|
void scale_bias(int C, int S, int* X, int* B, int* R) {
  int c, s;
  for (c = 0; c < C; c++) {
    for (s = 0; s < S; s++) {
      R[c * S + s] = X[c * S + s] * B[c];
    }
  }
}
|};
    mk ~name:"dk_shortcut" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + B(i)"
      {|
void shortcut_layer(int N, int* A, int* B, int* R) {
  int i;
  int* pa = A;
  int* pb = B;
  for (i = 0; i < N; i++) {
    R[i] = *pa++ + *pb++;
  }
}
|};
    mk ~name:"dk_weighted_sum" ~quality:Near
      ~args:
        [ size "N"; arr "A" [ "N" ]; scalar "wa"; arr "B" [ "N" ]; scalar "wb"; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * wa + B(i) * wb"
      {|
void weighted_sum_arrays(int N, int* A, int wa, int* B, int wb, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * wa + B[i] * wb;
  }
}
|};
    mk ~name:"dk_flatten_scale" ~quality:Near
      ~args:[ size "C"; size "H"; size "W"; scalar "s"; arr "X" [ "C"; "H"; "W" ]; arr "R" [ "C"; "H"; "W" ] ]
      ~out:"R" ~truth:"R(i,j,k) = X(i,j,k) * s"
      {|
void flatten_scale(int C, int H, int W, int s, int* X, int* R) {
  int c, h, w;
  for (c = 0; c < C; c++) {
    for (h = 0; h < H; h++) {
      for (w = 0; w < W; w++) {
        R[c * H * W + h * W + w] = X[c * H * W + h * W + w] * s;
      }
    }
  }
}
|};
    mk ~name:"dk_normalize" ~quality:Near
      ~args:[ size "C"; size "S"; arr "X" [ "C"; "S" ]; arr "M" [ "C" ]; arr "V" [ "C" ]; arr "R" [ "C"; "S" ] ]
      ~out:"R" ~truth:"R(i,j) = (X(i,j) - M(i)) / V(i)"
      {|
void normalize_layer(int C, int S, int* X, int* M, int* V, int* R) {
  int c, s;
  for (c = 0; c < C; c++) {
    for (s = 0; s < S; s++) {
      R[c * S + s] = (X[c * S + s] - M[c]) / V[c];
    }
  }
}
|};
    mk ~name:"dk_avgpool_sum" ~quality:Exact
      ~args:[ size "C"; size "S"; arr "X" [ "C"; "S" ]; arr "R" [ "C" ] ]
      ~out:"R" ~truth:"R(i) = X(i,j)"
      {|
void global_pool_sum(int C, int S, int* X, int* R) {
  int c, s;
  for (c = 0; c < C; c++) {
    R[c] = 0;
    for (s = 0; s < S; s++) {
      R[c] += X[c * S + s];
    }
  }
}
|};
    mk ~name:"dk_sum_all" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "X" [ "N"; "M" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i,j)"
      {|
void sum_all(int N, int M, int* X, int* R) {
  int i, j;
  int total = 0;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      total += X[i * M + j];
    }
  }
  *R = total;
}
|};
    mk ~name:"dk_mse" ~quality:Near
      ~args:[ size "N"; arr "P" [ "N" ]; arr "T" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = (P(i) - T(i)) * (P(i) - T(i))"
      {|
void sum_squared_error(int N, int* P, int* T, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    int d = P[i] - T[i];
    acc += d * d;
  }
  *R = acc;
}
|};
    (* a 1x1 convolution over NCHW feature maps: its lifting
       R(i,j,k,l) = A(i,m,k,l) * F(j,m) needs five distinct index
       variables, one more than the TACO template space's {i,j,k,l} —
       no enumerator over the paper's space can express it *)
    mk ~name:"dk_conv1x1" ~quality:Far
      ~args:
        [
          size "N"; size "C"; size "K"; size "H"; size "Q";
          arr "A" [ "N"; "C"; "H"; "Q" ]; arr "F" [ "K"; "C" ]; arr "R" [ "N"; "K"; "H"; "Q" ];
        ]
      ~out:"R" ~truth:"R(i,j,k,l) = A(i,m,k,l) * F(j,m)"
      {|
void conv1x1_nchw(int N, int C, int K, int H, int Q, int* A, int* F, int* R) {
  int n, c, k, h, q;
  for (n = 0; n < N; n++) {
    for (k = 0; k < K; k++) {
      for (h = 0; h < H; h++) {
        for (q = 0; q < Q; q++) {
          R[n * K * H * Q + k * H * Q + h * Q + q] = 0;
        }
      }
      for (c = 0; c < C; c++) {
        for (h = 0; h < H; h++) {
          for (q = 0; q < Q; q++) {
            R[n * K * H * Q + k * H * Q + h * Q + q] += F[k * C + c] * A[n * C * H * Q + c * H * Q + h * Q + q];
          }
        }
      }
    }
  }
}
|};
    mk ~name:"dk_scale_sum_all" ~quality:Near
      ~args:[ size "N"; size "M"; scalar "alpha"; arr "X" [ "N"; "M" ]; cell "R" ]
      ~out:"R" ~truth:"R = alpha * X(i,j)"
      {|
void scaled_total(int N, int M, int alpha, int* X, int* R) {
  int i, j;
  int total = 0;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      total += X[i * M + j];
    }
  }
  *R = alpha * total;
}
|};
    mk ~name:"dk_hadamard" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "B" [ "N"; "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,j) * B(i,j)"
      {|
void elementwise_mul(int N, int M, int* A, int* B, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = A[i * M + j] * B[i * M + j];
    }
  }
}
|};
  ]
