(** mathfu-style benchmarks (13): the vector/matrix kernels of a game math
    library (flat loops over small dense vectors and matrices). *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Mathfu

let all =
  [
    mk ~name:"mf_vec_add" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + B(i)"
      {|
void vec_add(int N, float* A, float* B, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] + B[i];
  }
}
|};
    mk ~name:"mf_vec_sub" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) - B(i)"
      {|
void vec_sub(int N, float* A, float* B, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] - B[i];
  }
}
|};
    mk ~name:"mf_vec_hadamard" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * B(i)"
      {|
void vec_hadamard(int N, float* A, float* B, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * B[i];
  }
}
|};
    mk ~name:"mf_vec_scale" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; scalar "s"; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * s"
      {|
void vec_scale(int N, float* A, float s, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * s;
  }
}
|};
    mk ~name:"mf_vec_dot" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i) * B(i)"
      {|
void vec_dot(int N, float* A, float* B, float* R) {
  int i;
  float acc = 0;
  for (i = 0; i < N; i++) {
    acc += A[i] * B[i];
  }
  *R = acc;
}
|};
    mk ~name:"mf_vec_lerp" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; scalar "t"; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + (B(i) - A(i)) * t"
      {|
void vec_lerp(int N, float* A, float* B, float t, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] + (B[i] - A[i]) * t;
  }
}
|};
    mk ~name:"mf_mat_mul" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; arr "A" [ "N"; "K" ]; arr "B" [ "K"; "M" ];
          arr "R" [ "N"; "M" ];
        ]
      ~out:"R" ~truth:"R(i,j) = A(i,k) * B(k,j)"
      {|
void mat_mul(int N, int M, int K, float* A, float* B, float* R) {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      float acc = 0;
      for (k = 0; k < K; k++) {
        acc += A[i * K + k] * B[k * M + j];
      }
      R[i * M + j] = acc;
    }
  }
}
|};
    mk ~name:"mf_mat_vec" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "V" [ "M" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j) * V(j)"
      {|
void mat_vec(int N, int M, float* A, float* V, float* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    R[i] = 0;
    for (j = 0; j < M; j++) {
      R[i] += A[i * M + j] * V[j];
    }
  }
}
|};
    mk ~name:"mf_mat_add" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "B" [ "N"; "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,j) + B(i,j)"
      {|
void mat_add(int N, int M, float* A, float* B, float* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = A[i * M + j] + B[i * M + j];
    }
  }
}
|};
    mk ~name:"mf_mat_scale" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; scalar "s"; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,j) * s"
      {|
void mat_scale(int N, int M, float* A, float s, float* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = A[i * M + j] * s;
    }
  }
}
|};
    mk ~name:"mf_outer" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N" ]; arr "B" [ "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i) * B(j)"
      {|
void vec_outer(int N, int M, float* A, float* B, float* R) {
  int i, j;
  float* pr = R;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      *pr++ = A[i] * B[j];
    }
  }
}
|};
    mk ~name:"mf_vec_offset" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; scalar "s"; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + s"
      {|
void vec_offset(int N, float* A, float s, float* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] + s;
  }
}
|};
    mk ~name:"mf_transform_pair" ~quality:Near
      ~args:
        [
          size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "V" [ "M" ]; arr "B" [ "N"; "M" ];
          arr "W" [ "M" ]; arr "R" [ "N" ];
        ]
      ~out:"R" ~truth:"R(i) = A(i,j) * V(j) + B(i,j) * W(j)"
      {|
void transform_pair(int N, int M, float* A, float* V, float* B, float* W, float* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    float acc = 0;
    for (j = 0; j < M; j++) {
      acc += A[i * M + j] * V[j];
    }
    for (j = 0; j < M; j++) {
      acc += B[i * M + j] * W[j];
    }
    R[i] = acc;
  }
}
|};
  ]
