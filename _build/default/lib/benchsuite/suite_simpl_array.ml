(** simpl_array benchmarks (12): small array-manipulation routines of the
    kind harvested from application codebases in the C2TACO suite. *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Simpl_array

let all =
  [
    mk ~name:"sa_sum" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i)"
      {|
void array_total(int N, int* A, int* R) {
  int i;
  int total = 0;
  for (i = 0; i < N; i++) {
    total = total + A[i];
  }
  *R = total;
}
|};
    mk ~name:"sa_sum2d" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i,j)"
      {|
void grid_total(int N, int M, int* A, int* R) {
  int i, j;
  int total = 0;
  int* p = A;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      total += *p++;
    }
  }
  *R = total;
}
|};
    mk ~name:"sa_mul_sum" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i) * B(i)"
      {|
void pairwise_total(int N, int* A, int* B, int* R) {
  int i;
  int total = 0;
  for (i = 0; i < N; i++) {
    total += A[i] * B[i];
  }
  *R = total;
}
|};
    mk ~name:"sa_add_one" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + 1"
      {|
void increment_all(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] + 1;
  }
}
|};
    mk ~name:"sa_const_sub" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = 10 - A(i)"
      {|
void invert_range(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = 10 - A[i];
  }
}
|};
    mk ~name:"sa_row_sums" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j)"
      {|
void row_sums(int N, int M, int* A, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    int s = 0;
    for (j = 0; j < M; j++) {
      s += A[i * M + j];
    }
    R[i] = s;
  }
}
|};
    mk ~name:"sa_col_sums" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "R" [ "M" ] ]
      ~out:"R" ~truth:"R(i) = A(j,i)"
      {|
void col_sums(int N, int M, int* A, int* R) {
  int i, j;
  for (j = 0; j < M; j++) {
    R[j] = 0;
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[j] += A[i * M + j];
    }
  }
}
|};
    mk ~name:"sa_triple_prod" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "C" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * B(i) * C(i)"
      {|
void triple_product(int N, int* A, int* B, int* C, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * B[i] * C[i];
  }
}
|};
    mk ~name:"sa_scaled_total" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i) * 7"
      {|
void scaled_total(int N, int* A, int* R) {
  int i;
  int total = 0;
  for (i = 0; i < N; i++) {
    total += A[i];
  }
  *R = total * 7;
}
|};
    mk ~name:"sa_fma_const" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * 2 + B(i)"
      {|
void double_and_add(int N, int* A, int* B, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * 2 + B[i];
  }
}
|};
    mk ~name:"sa_quarter" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) / 4"
      {|
void quarter_each(int N, int* A, int* R) {
  int i;
  int* pa = A;
  int* pr = R;
  for (i = 0; i < N; i++) {
    *pr++ = *pa++ / 4;
  }
}
|};
    mk ~name:"sa_norm_ratio" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; scalar "lo"; scalar "hi"; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) / (hi - lo)"
      {|
void normalize_span(int N, int* A, int lo, int hi, int* R) {
  int i;
  int span = hi - lo;
  for (i = 0; i < N; i++) {
    R[i] = A[i] / span;
  }
}
|};
  ]
