(** The 10 artificial benchmarks: textbook dense tensor kernels in clean,
    directly-indexed C (paper §8: "10 artificial examples"). *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Artificial

let all =
  [
    mk ~name:"art_copy" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i)"
      {|
void array_copy(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i];
  }
}
|};
    mk ~name:"art_scal_const" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * 5"
      {|
void scale_by_five(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] * 5;
  }
}
|};
    mk ~name:"art_vec_add" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) + B(i)"
      {|
void vector_add(int N, int* A, int* B, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] + B[i];
  }
}
|};
    mk ~name:"art_dot" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = A(i) * B(i)"
      {|
void dot_product(int N, int* A, int* B, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += A[i] * B[i];
  }
  *R = acc;
}
|};
    mk ~name:"art_outer" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N" ]; arr "B" [ "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i) * B(j)"
      {|
void outer_product(int N, int M, int* A, int* B, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = A[i] * B[j];
    }
  }
}
|};
    mk ~name:"art_gemv" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "X" [ "M" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j) * X(j)"
      {|
void matrix_vector(int N, int M, int* A, int* X, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    R[i] = 0;
    for (j = 0; j < M; j++) {
      R[i] += A[i * M + j] * X[j];
    }
  }
}
|};
    mk ~name:"art_gemm" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; arr "A" [ "N"; "K" ]; arr "B" [ "K"; "M" ];
          arr "R" [ "N"; "M" ];
        ]
      ~out:"R" ~truth:"R(i,j) = A(i,k) * B(k,j)"
      {|
void matrix_multiply(int N, int M, int K, int* A, int* B, int* R) {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = 0;
      for (k = 0; k < K; k++) {
        R[i * M + j] += A[i * K + k] * B[k * M + j];
      }
    }
  }
}
|};
    mk ~name:"art_ttv" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; arr "A" [ "N"; "M"; "K" ]; arr "X" [ "K" ];
          arr "R" [ "N"; "M" ];
        ]
      ~out:"R" ~truth:"R(i,j) = A(i,j,k) * X(k)"
      {|
void tensor_times_vector(int N, int M, int K, int* A, int* X, int* R) {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = 0;
      for (k = 0; k < K; k++) {
        R[i * M + j] += A[i * M * K + j * K + k] * X[k];
      }
    }
  }
}
|};
    mk ~name:"art_ttm" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; size "L"; arr "A" [ "N"; "M"; "L" ]; arr "B" [ "K"; "L" ];
          arr "R" [ "N"; "M"; "K" ];
        ]
      ~out:"R" ~truth:"R(i,j,k) = A(i,j,l) * B(k,l)"
      {|
void tensor_times_matrix(int N, int M, int K, int L, int* A, int* B, int* R) {
  int i, j, k, l;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      for (k = 0; k < K; k++) {
        R[i * M * K + j * K + k] = 0;
        for (l = 0; l < L; l++) {
          R[i * M * K + j * K + k] += A[i * M * L + j * L + l] * B[k * L + l];
        }
      }
    }
  }
}
|};
    mk ~name:"art_mttkrp" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; size "L"; arr "A" [ "N"; "K"; "L" ]; arr "B" [ "K"; "M" ];
          arr "C" [ "L"; "M" ]; arr "R" [ "N"; "M" ];
        ]
      ~out:"R" ~truth:"R(i,j) = A(i,k,l) * B(k,j) * C(l,j)"
      {|
void mttkrp(int N, int M, int K, int L, int* A, int* B, int* C, int* R) {
  int i, j, k, l;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = 0;
    }
  }
  for (i = 0; i < N; i++) {
    for (k = 0; k < K; k++) {
      for (l = 0; l < L; l++) {
        for (j = 0; j < M; j++) {
          R[i * M + j] += A[i * K * L + k * L + l] * B[k * M + j] * C[l * M + j];
        }
      }
    }
  }
}
|};
  ]
