(** llama benchmarks (6): dense kernels from the C++/C inference code of
    Llama-style transformers (paper §8 draws 6 queries from llama2.cpp). *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Llama

let all =
  [
    mk ~name:"ll_rmsnorm_ss" ~quality:Exact
      ~args:[ size "D"; arr "X" [ "D" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i) * X(i)"
      {|
void rmsnorm_sum_squares(int D, float* X, float* R) {
  int j;
  float ss = 0;
  for (j = 0; j < D; j++) {
    ss += X[j] * X[j];
  }
  *R = ss;
}
|};
    mk ~name:"ll_matmul" ~quality:Exact
      ~args:[ size "D"; size "V"; arr "W" [ "V"; "D" ]; arr "X" [ "D" ]; arr "R" [ "V" ] ]
      ~out:"R" ~truth:"R(i) = W(i,j) * X(j)"
      {|
void matmul(int D, int V, float* W, float* X, float* R) {
  int i, j;
  for (i = 0; i < V; i++) {
    float val = 0;
    for (j = 0; j < D; j++) {
      val += W[i * D + j] * X[j];
    }
    R[i] = val;
  }
}
|};
    mk ~name:"ll_residual" ~quality:Exact
      ~args:[ size "D"; arr "X" [ "D" ]; arr "H" [ "D" ]; arr "R" [ "D" ] ]
      ~out:"R" ~truth:"R(i) = X(i) + H(i)"
      {|
void residual_add(int D, float* X, float* H, float* R) {
  int i;
  for (i = 0; i < D; i++) {
    R[i] = X[i] + H[i];
  }
}
|};
    mk ~name:"ll_logit_scale" ~quality:Near
      ~args:[ size "D"; arr "X" [ "D" ]; scalar "inv_temp"; arr "R" [ "D" ] ]
      ~out:"R" ~truth:"R(i) = X(i) * inv_temp"
      {|
void logits_scale(int D, float* X, float inv_temp, float* R) {
  int i;
  for (i = 0; i < D; i++) {
    R[i] = X[i] * inv_temp;
  }
}
|};
    mk ~name:"ll_att_scores" ~quality:Near
      ~args:[ size "T"; size "H"; arr "Q" [ "H" ]; arr "K" [ "T"; "H" ]; arr "R" [ "T" ] ]
      ~out:"R" ~truth:"R(i) = Q(j) * K(i,j)"
      {|
void attention_scores(int T, int H, float* Q, float* K, float* R) {
  int t, h;
  for (t = 0; t < T; t++) {
    float score = 0;
    for (h = 0; h < H; h++) {
      score += Q[h] * K[t * H + h];
    }
    R[t] = score;
  }
}
|};
    mk ~name:"ll_weighted_v" ~quality:Near
      ~args:[ size "T"; size "H"; arr "ATT" [ "T" ]; arr "V" [ "T"; "H" ]; arr "R" [ "H" ] ]
      ~out:"R" ~truth:"R(i) = ATT(j) * V(j,i)"
      {|
void weighted_values(int T, int H, float* ATT, float* V, float* R) {
  int t, h;
  for (h = 0; h < H; h++) {
    R[h] = 0;
  }
  for (t = 0; t < T; t++) {
    float a = ATT[t];
    for (h = 0; h < H; h++) {
      R[h] += a * V[t * H + h];
    }
  }
}
|};
  ]
