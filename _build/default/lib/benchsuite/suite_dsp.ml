(** UTDSP-style benchmarks (12): signal-processing kernels in the heavily
    pointer-based style of DSP reference code. *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Dsp

let all =
  [
    mk ~name:"dsp_vecsum" ~quality:Exact
      ~args:[ size "N"; arr "X" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i)"
      {|
void vector_sum(int N, int* X, int* R) {
  int i;
  int* p = X;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += *p++;
  }
  *R = acc;
}
|};
    mk ~name:"dsp_vecmul" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) * B(i)"
      {|
void sample_product(int N, int* A, int* B, int* R) {
  int i;
  int* pa = A;
  int* pb = B;
  int* pr = R;
  for (i = 0; i < N; i++) {
    *pr++ = *pa++ * *pb++;
  }
}
|};
    mk ~name:"dsp_vecdiv" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) / B(i)"
      {|
void sample_ratio(int N, int* A, int* B, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = A[i] / B[i];
  }
}
|};
    mk ~name:"dsp_vecsub" ~quality:Exact
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i) - B(i)"
      {|
void residual_signal(int N, int* A, int* B, int* R) {
  int i;
  int* pa = A;
  int* pb = B;
  for (i = 0; i < N; i++) {
    R[i] = *pa++ - *pb++;
  }
}
|};
    mk ~name:"dsp_energy" ~quality:Exact
      ~args:[ size "N"; arr "X" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i) * X(i)"
      {|
void signal_energy(int N, int* X, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += X[i] * X[i];
  }
  *R = acc;
}
|};
    mk ~name:"dsp_mean8" ~quality:Near
      ~args:[ size "N"; arr "X" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i) / 8"
      {|
void block_mean8(int N, int* X, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += X[i];
  }
  *R = acc / 8;
}
|};
    mk ~name:"dsp_matvec_ptr" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "X" [ "M" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j) * X(j)"
      {|
void mat_vec_mult(int N, int M, int* A, int* X, int* R) {
  int i, j;
  int* pa = A;
  int* pr = R;
  for (i = 0; i < N; i++) {
    int* px = X;
    int acc = 0;
    for (j = 0; j < M; j++) {
      acc += *pa++ * *px++;
    }
    *pr++ = acc;
  }
}
|};
    mk ~name:"dsp_mat_scale" ~quality:Exact
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,j) * 3"
      {|
void amplify_matrix(int N, int M, int* A, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[i * M + j] = A[i * M + j] * 3;
    }
  }
}
|};
    mk ~name:"dsp_mat_add" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "B" [ "N"; "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,j) + B(i,j)"
      {|
void mix_frames(int N, int M, int* A, int* B, int* R) {
  int i, j;
  int* pa = A;
  int* pb = B;
  int* pr = R;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      *pr++ = *pa++ + *pb++;
    }
  }
}
|};
    mk ~name:"dsp_lms_update" ~quality:Near
      ~args:[ size "N"; arr "W" [ "N" ]; scalar "mu"; scalar "err"; arr "X" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = W(i) + mu * err * X(i)"
      {|
void lms_weight_update(int N, int* W, int mu, int err, int* X, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = W[i] + mu * err * X[i];
  }
}
|};
    mk ~name:"dsp_window" ~quality:Exact
      ~args:[ size "N"; arr "X" [ "N" ]; arr "W" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = X(i) * W(i)"
      {|
void apply_window(int N, int* X, int* W, int* R) {
  int i;
  int* px = X;
  int* pw = W;
  for (i = 0; i < N; i++) {
    R[i] = *px * *pw;
    px++;
    pw++;
  }
}
|};
    mk ~name:"dsp_diff_scale" ~quality:Near
      ~args:[ size "N"; arr "A" [ "N" ]; arr "B" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = (A(i) - B(i)) * 4"
      {|
void scaled_difference(int N, int* A, int* B, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = (A[i] - B[i]) * 4;
  }
}
|};
  ]
