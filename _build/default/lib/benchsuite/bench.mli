(** A lifting benchmark: a legacy mini-C program, its tensor-level
    signature, a ground-truth TACO expression (used to seed the mock LLM
    and to sanity-check the suite — never shown to any synthesizer), and
    calibration metadata. *)

type category = Artificial | Blas | Darknet | Dsp | Mathfu | Simpl_array | Llama

val category_to_string : category -> string

type t = {
  name : string;
  category : category;
  c_source : string;
  signature : Stagg_minic.Signature.t;
  ground_truth : string;
      (** TACO program over the C parameter names; [""] when the kernel has
          no TACO-expressible lifting (such benchmarks exist to exercise
          failure paths) *)
  llm_quality : Stagg_oracle.Llm_client.quality;
}

(** Parsed mini-C function (memoized). @raise Failure on a suite bug. *)
val func : t -> Stagg_minic.Ast.func

(** Parsed ground truth, [None] when not liftable. *)
val truth : t -> Stagg_taco.Ast.program option

val is_real_world : t -> bool

(** Constructor used by the suite files. [args] pair each parameter with
    its spec; [out] names the output parameter. *)
val mk :
  name:string ->
  category:category ->
  quality:Stagg_oracle.Llm_client.quality ->
  args:(string * Stagg_minic.Signature.arg_spec) list ->
  out:string ->
  truth:string ->
  string ->
  t

(** Spec shorthands for suite files. *)
val size : string -> string * Stagg_minic.Signature.arg_spec

val scalar : string -> string * Stagg_minic.Signature.arg_spec
val arr : string -> string list -> string * Stagg_minic.Signature.arg_spec
val cell : string -> string * Stagg_minic.Signature.arg_spec
