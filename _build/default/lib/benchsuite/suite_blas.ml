(** BLAS-derived benchmarks (12), in the low-level styles BLAS reference
    code actually uses: pointer walks, strided linear indexing,
    accumulator scalars. *)

open Bench
open Stagg_oracle.Llm_client

let mk = mk ~category:Blas

let all =
  [
    mk ~name:"blas_sdot" ~quality:Exact
      ~args:[ size "N"; arr "X" [ "N" ]; arr "Y" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = X(i) * Y(i)"
      {|
void sdot(int N, int* X, int* Y, int* R) {
  int i;
  int* px = X;
  int* py = Y;
  int stemp = 0;
  for (i = 0; i < N; i++) {
    stemp += *px++ * *py++;
  }
  *R = stemp;
}
|};
    mk ~name:"blas_saxpy" ~quality:Exact
      ~args:[ size "N"; scalar "alpha"; arr "X" [ "N" ]; arr "Y" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = alpha * X(i) + Y(i)"
      {|
void saxpy(int N, int alpha, int* X, int* Y, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = alpha * X[i] + Y[i];
  }
}
|};
    mk ~name:"blas_sscal" ~quality:Exact
      ~args:[ size "N"; scalar "alpha"; arr "X" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = alpha * X(i)"
      {|
void sscal(int N, int alpha, int* X, int* R) {
  int i;
  int* px = X;
  int* pr = R;
  for (i = 0; i < N; i++) {
    *pr++ = alpha * *px++;
  }
}
|};
    mk ~name:"blas_scopy" ~quality:Exact
      ~args:[ size "N"; arr "X" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = X(i)"
      {|
void scopy(int N, int* X, int* R) {
  int i;
  int* px = X;
  int* pr = R;
  for (i = 0; i < N; i++) {
    *pr = *px;
    px++;
    pr++;
  }
}
|};
    mk ~name:"blas_sgemv" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "X" [ "M" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j) * X(j)"
      {|
void sgemv(int N, int M, int* A, int* X, int* R) {
  int i, j;
  int* pa = A;
  for (i = 0; i < N; i++) {
    int temp = 0;
    for (j = 0; j < M; j++) {
      temp += *pa++ * X[j];
    }
    R[i] = temp;
  }
}
|};
    mk ~name:"blas_sgemv_acc" ~quality:Near
      ~args:
        [ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "X" [ "M" ]; arr "Y" [ "N" ]; arr "R" [ "N" ] ]
      ~out:"R" ~truth:"R(i) = A(i,j) * X(j) + Y(i)"
      {|
void sgemv_acc(int N, int M, int* A, int* X, int* Y, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    int temp = 0;
    for (j = 0; j < M; j++) {
      temp += A[i * M + j] * X[j];
    }
    R[i] = temp + Y[i];
  }
}
|};
    mk ~name:"blas_sgemm" ~quality:Near
      ~args:
        [
          size "N"; size "M"; size "K"; arr "A" [ "N"; "K" ]; arr "B" [ "K"; "M" ];
          arr "R" [ "N"; "M" ];
        ]
      ~out:"R" ~truth:"R(i,j) = A(i,k) * B(k,j)"
      {|
void sgemm(int N, int M, int K, int* A, int* B, int* R) {
  int i, j, k;
  for (j = 0; j < M; j++) {
    for (i = 0; i < N; i++) {
      R[i * M + j] = 0;
    }
    for (k = 0; k < K; k++) {
      for (i = 0; i < N; i++) {
        R[i * M + j] += A[i * K + k] * B[k * M + j];
      }
    }
  }
}
|};
    mk ~name:"blas_sger" ~quality:Near
      ~args:[ size "N"; size "M"; scalar "alpha"; arr "X" [ "N" ]; arr "Y" [ "M" ]; arr "R" [ "N"; "M" ] ]
      ~out:"R" ~truth:"R(i,j) = alpha * X(i) * Y(j)"
      {|
void sger(int N, int M, int alpha, int* X, int* Y, int* R) {
  int i, j;
  for (j = 0; j < M; j++) {
    int temp = alpha * Y[j];
    for (i = 0; i < N; i++) {
      R[i * M + j] = X[i] * temp;
    }
  }
}
|};
    mk ~name:"blas_syrk_lt" ~quality:Near
      ~args:[ size "N"; size "K"; arr "A" [ "N"; "K" ]; arr "R" [ "N"; "N" ] ]
      ~out:"R" ~truth:"R(i,j) = A(i,k) * A(j,k)"
      {|
void syrk_full(int N, int K, int* A, int* R) {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      int acc = 0;
      for (k = 0; k < K; k++) {
        acc += A[i * K + k] * A[j * K + k];
      }
      R[i * N + j] = acc;
    }
  }
}
|};
    mk ~name:"blas_wdot" ~quality:Near
      ~args:[ size "N"; arr "W" [ "N" ]; arr "X" [ "N" ]; arr "Y" [ "N" ]; cell "R" ]
      ~out:"R" ~truth:"R = W(i) * X(i) * Y(i)"
      {|
void weighted_dot(int N, int* W, int* X, int* Y, int* R) {
  int i;
  int acc = 0;
  for (i = 0; i < N; i++) {
    acc += W[i] * X[i] * Y[i];
  }
  *R = acc;
}
|};
    mk ~name:"blas_axpby" ~quality:Near
      ~args:
        [
          size "N"; scalar "alpha"; arr "X" [ "N" ]; scalar "beta"; arr "Y" [ "N" ]; arr "R" [ "N" ];
        ]
      ~out:"R" ~truth:"R(i) = alpha * X(i) + beta * Y(i)"
      {|
void axpby(int N, int alpha, int* X, int beta, int* Y, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = alpha * X[i] + beta * Y[i];
  }
}
|};
    mk ~name:"blas_sgemv_t" ~quality:Near
      ~args:[ size "N"; size "M"; arr "A" [ "N"; "M" ]; arr "X" [ "N" ]; arr "R" [ "M" ] ]
      ~out:"R" ~truth:"R(i) = A(j,i) * X(j)"
      {|
void sgemv_trans(int N, int M, int* A, int* X, int* R) {
  int i, j;
  for (j = 0; j < M; j++) {
    R[j] = 0;
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      R[j] += A[i * M + j] * X[i];
    }
  }
}
|};
  ]
