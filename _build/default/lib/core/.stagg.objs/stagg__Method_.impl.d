lib/core/method_.ml: Astar List Penalty Printf Stagg_search
