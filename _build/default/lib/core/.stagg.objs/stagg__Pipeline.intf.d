lib/core/pipeline.mli: Method_ Result_ Stagg_benchsuite Stagg_grammar Stagg_minic Stagg_oracle Stagg_search Stagg_taco
