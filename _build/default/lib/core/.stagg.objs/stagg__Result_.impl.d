lib/core/result_.ml: Format List Option Stagg_taco Stagg_validate
