(** The end-to-end STAGG pipeline (paper Fig. 1).

    ① query the LLM for candidate translations → ② templatize and learn a
    probabilistic grammar of templates (refined by the predicted dimension
    list, LHS dimension from static analysis) → ③ search the template
    space with weighted A* (top-down or bottom-up) → validate complete
    templates against I/O examples → ④ bounded verification of the
    surviving instantiation. *)

(** Intermediate artifacts, exposed for the CLI, the examples and the
    tests. *)
type prepared = {
  candidates : Stagg_taco.Ast.program list;  (** parsed LLM candidates *)
  templates : Stagg_taco.Ast.program list;  (** templatized candidates *)
  dim_list : int list;  (** predicted L, LHS overridden by static analysis *)
  pcfg : Stagg_grammar.Pcfg.t;
  penalty_ctx : Stagg_search.Penalty.ctx;
}

(** A lifting query: everything the pipeline needs about one legacy
    program. Suite benchmarks are one source of queries ({!query_of_bench});
    arbitrary C files with a signature spec and a recorded LLM transcript
    are another (the CLI's [lift-file]). *)
type query = {
  qname : string;
  func : Stagg_minic.Ast.func;
  signature : Stagg_minic.Signature.t;
  c_source : string;
  client : (module Stagg_oracle.Llm_client.S);
}

(** [query_of_bench m b] packages a suite benchmark with its mock LLM. *)
val query_of_bench : Method_.t -> Stagg_benchsuite.Bench.t -> query

(** [prepare_query m q] runs stages ①–② and builds the grammar that stage
    ③ will search. [Error reason] when the LLM yields no usable
    candidate. *)
val prepare_query : Method_.t -> query -> (prepared, string) result

(** [prepare m bench] — {!prepare_query} on a suite benchmark. *)
val prepare : Method_.t -> Stagg_benchsuite.Bench.t -> (prepared, string) result

(** [lift m q] — the whole pipeline on an arbitrary query; never raises. *)
val lift : Method_.t -> query -> Result_.t

(** [run m bench] — the whole pipeline; never raises. *)
val run : Method_.t -> Stagg_benchsuite.Bench.t -> Result_.t

(** [run_suite m benches] — [run] over a list, in order. *)
val run_suite : Method_.t -> Stagg_benchsuite.Bench.t list -> Result_.t list
