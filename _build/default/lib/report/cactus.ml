type series = { label : string; times : float list }

let series_of_results ~label results =
  let times =
    List.filter_map
      (fun (r : Stagg.Result_.t) -> if r.solved then Some r.time_s else None)
      results
    |> List.sort compare
  in
  { label; times }

let to_data series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# method\tsolved\ttime_s (cumulative rank vs per-query time)\n";
  List.iter
    (fun s ->
      List.iteri
        (fun k t -> Buffer.add_string buf (Printf.sprintf "%s\t%d\t%.6f\n" s.label (k + 1) t))
        s.times)
    series;
  Buffer.contents buf

let to_ascii ?(width = 72) ?(height = 16) series =
  let max_solved = List.fold_left (fun acc s -> max acc (List.length s.times)) 0 series in
  if max_solved = 0 then "(no solved instances)\n"
  else begin
    let all_times = List.concat_map (fun s -> s.times) series in
    let tmin = List.fold_left min infinity all_times in
    let tmax = List.fold_left max 0.000_001 all_times in
    let tmin = max 0.000_01 tmin in
    let log_lo = log tmin and log_hi = log (tmax *. 1.1) in
    let row_of t =
      if log_hi <= log_lo then 0
      else
        let f = (log (max t tmin) -. log_lo) /. (log_hi -. log_lo) in
        min (height - 1) (int_of_float (f *. float_of_int (height - 1)))
    in
    let col_of k = min (width - 1) (k * (width - 1) / max 1 (max_solved - 1)) in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let mark = Char.chr (Char.code 'A' + (si mod 26)) in
        List.iteri
          (fun k t ->
            let r = row_of t and c = col_of k in
            grid.(height - 1 - r).(c) <- mark)
          s.times)
      series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "time (log scale, %.3gs .. %.3gs) vs instances solved (1 .. %d)\n" tmin tmax
         max_solved);
    Array.iter
      (fun row ->
        Buffer.add_string buf (String.init width (fun i -> row.(i)));
        Buffer.add_char buf '\n')
      grid;
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s (%d solved)\n"
             (Char.chr (Char.code 'A' + (si mod 26)))
             s.label (List.length s.times)))
      series;
    Buffer.contents buf
  end
