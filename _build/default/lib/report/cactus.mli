(** Cactus-plot data and ASCII rendering (paper Fig. 9): for each method,
    the per-query solving times of its solved benchmarks sorted
    ascending — point k is (k, time of the k-th easiest query). *)

type series = { label : string; times : float list (* sorted ascending *) }

val series_of_results : label:string -> Stagg.Result_.t list -> series

(** Tab-separated data block, one line per point, ready for plotting. *)
val to_data : series list -> string

(** Log-scale ASCII rendering (solved count on x, time on y). *)
val to_ascii : ?width:int -> ?height:int -> series list -> string
