lib/report/cactus.ml: Array Buffer Char List Printf Stagg String
