lib/report/experiments.ml: Buffer Cactus List Method_ Pipeline Printf Result_ Stagg Stagg_baselines Stagg_benchsuite Stagg_search String Table Unix
