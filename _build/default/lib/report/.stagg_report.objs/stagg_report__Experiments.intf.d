lib/report/experiments.mli: Result_ Stagg Stagg_search
