lib/report/cactus.mli: Stagg
