lib/report/table.mli:
