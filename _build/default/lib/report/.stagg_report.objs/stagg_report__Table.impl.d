lib/report/table.ml: List Option String
