(** Minimal ASCII table rendering for the experiment harness. *)

type align = Left | Right

(** [render ~headers ~aligns rows] lays out the table with padded columns
    and a header rule. [aligns] defaults to left for missing columns. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string
