open Stagg
module Penalty = Stagg_search.Penalty
module Suite = Stagg_benchsuite.Suite

type runs = {
  seed : int;
  td : Result_.t list;
  bu : Result_.t list;
  llm : Result_.t list;
  c2taco : Result_.t list;
  c2taco_noh : Result_.t list;
  tenspiler : Result_.t list;
  td_drop_all : Result_.t list;
  td_drops : (Penalty.criterion * Result_.t list) list;
  bu_drop_all : Result_.t list;
  bu_drops : (Penalty.criterion * Result_.t list) list;
  td_equal : Result_.t list;
  td_llm_grammar : Result_.t list;
  td_full_grammar : Result_.t list;
  bu_equal : Result_.t list;
  bu_llm_grammar : Result_.t list;
  bu_full_grammar : Result_.t list;
}

let default_seed = 20250604

let run_core ?(seed = default_seed) ?(progress = fun _ -> ()) () =
  let all = Suite.all and rw = Suite.real_world in
  let sweep label f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    progress
      (Printf.sprintf "%-28s %2d solved  (%.1fs)" label
         (List.length (List.filter (fun (x : Result_.t) -> x.solved) r))
         (Unix.gettimeofday () -. t0));
    r
  in
  let with_seed m = { m with Method_.seed } in
  let td = sweep "STAGG^TD" (fun () -> Pipeline.run_suite (with_seed Method_.stagg_td) all) in
  let bu = sweep "STAGG^BU" (fun () -> Pipeline.run_suite (with_seed Method_.stagg_bu) all) in
  let llm = sweep "LLM" (fun () -> Stagg_baselines.Llm_only.run_suite ~seed all) in
  let c2taco =
    sweep "C2TACO" (fun () -> Stagg_baselines.C2taco.run_suite ~seed ~heuristics:true all)
  in
  let c2taco_noh =
    sweep "C2TACO.NoHeuristics" (fun () ->
        Stagg_baselines.C2taco.run_suite ~seed ~heuristics:false all)
  in
  let tenspiler = sweep "Tenspiler" (fun () -> Stagg_baselines.Tenspiler.run_suite ~seed rw) in
  {
    seed;
    td;
    bu;
    llm;
    c2taco;
    c2taco_noh;
    tenspiler;
    td_drop_all = [];
    td_drops = [];
    bu_drop_all = [];
    bu_drops = [];
    td_equal = [];
    td_llm_grammar = [];
    td_full_grammar = [];
    bu_equal = [];
    bu_llm_grammar = [];
    bu_full_grammar = [];
  }

let run_all ?(seed = default_seed) ?(progress = fun _ -> ()) () =
  let core = run_core ~seed ~progress () in
  let all = Suite.all in
  let with_seed m = { m with Method_.seed } in
  let sweep m =
    let t0 = Unix.gettimeofday () in
    let r = Pipeline.run_suite (with_seed m) all in
    progress
      (Printf.sprintf "%-28s %2d solved  (%.1fs)" m.Method_.label
         (List.length (List.filter (fun (x : Result_.t) -> x.solved) r))
         (Unix.gettimeofday () -. t0));
    r
  in
  let drop base c = sweep (Method_.drop_penalty base c) in
  {
    core with
    td_drop_all = sweep (Method_.drop_all_penalties Method_.stagg_td "A");
    td_drops =
      List.map (fun c -> (c, drop Method_.stagg_td c)) Penalty.all_topdown;
    bu_drop_all = sweep (Method_.drop_all_penalties Method_.stagg_bu "B");
    bu_drops =
      List.map (fun c -> (c, drop Method_.stagg_bu c)) Penalty.all_bottomup;
    td_equal = sweep Method_.td_equal_probability;
    td_llm_grammar = sweep Method_.td_llm_grammar;
    td_full_grammar = sweep Method_.td_full_grammar;
    bu_equal = sweep Method_.bu_equal_probability;
    bu_llm_grammar = sweep Method_.bu_llm_grammar;
    bu_full_grammar = sweep Method_.bu_full_grammar;
  }

(* ---- statistics ---- *)

let solved (rs : Result_.t list) = List.filter (fun r -> r.Result_.solved) rs
let n_solved rs = List.length (solved rs)

let avg f = function [] -> 0. | xs -> List.fold_left (fun a x -> a +. f x) 0. xs /. float_of_int (List.length xs)

(* averages over solved queries, as the paper reports *)
let avg_time rs = avg (fun (r : Result_.t) -> r.time_s) (solved rs)
let avg_attempts rs = avg (fun (r : Result_.t) -> float_of_int r.attempts) (solved rs)

let restrict names (rs : Result_.t list) = List.filter (fun r -> List.mem r.Result_.bench names) rs

let real_world_names = List.map (fun (b : Stagg_benchsuite.Bench.t) -> b.name) Suite.real_world

let fmt_t t = Printf.sprintf "%.3f" t
let fmt_n = string_of_int
let fmt_pct n total = Printf.sprintf "%.2f%%" (100. *. float_of_int n /. float_of_int total)

(* ---- Table 1 ---- *)

let table1 runs =
  let solved_by_c2taco = Result_.solved_names runs.c2taco in
  let solved_by_tenspiler = Result_.solved_names runs.tenspiler in
  let row label rs ~full =
    let rw = restrict real_world_names rs in
    let c2 = restrict solved_by_c2taco rs in
    let ts = restrict solved_by_tenspiler rs in
    [
      label;
      fmt_n (n_solved rw);
      fmt_t (avg_time rw);
      (if full then fmt_n (n_solved rs) else "");
      (if full then fmt_t (avg_time rs) else "");
      (if full then Printf.sprintf "%.2f" (avg_attempts rs) else "");
      fmt_n (n_solved c2);
      fmt_t (avg_time c2);
      fmt_n (n_solved ts);
      fmt_t (avg_time ts);
    ]
  in
  "Table 1: benchmark-solving performance across methods\n"
  ^ Table.render
      ~headers:
        [
          "Method"; "RW(67) #"; "time"; "RW+Art(77) #"; "time"; "attempts"; "C2TACO-set #";
          "time"; "Tenspiler-set #"; "time";
        ]
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
      [
        row "STAGG^TD" runs.td ~full:true;
        row "STAGG^BU" runs.bu ~full:true;
        row "LLM" runs.llm ~full:true;
        row "C2TACO" runs.c2taco ~full:true;
        row "C2TACO.NoHeuristics" runs.c2taco_noh ~full:true;
        row "Tenspiler" runs.tenspiler ~full:false;
      ]

(* ---- Table 2 ---- *)

let table2 runs =
  let total = 77 in
  let row label rs = [ label; fmt_n (n_solved rs); fmt_pct (n_solved rs) total; fmt_t (avg_time rs) ] in
  let drop_rows prefix drops =
    List.map
      (fun (c, rs) -> row (Printf.sprintf "%s.Drop(%s)" prefix (Penalty.criterion_to_string c)) rs)
      drops
  in
  "Table 2: impact of the penalty rules (77 queries)\n"
  ^ Table.render
      ~headers:[ "Method"; "#"; "%"; "time" ]
      ~aligns:[ Left; Right; Right; Right ]
      ((row "STAGG^TD" runs.td :: row "STAGG^TD.Drop(A)" runs.td_drop_all
        :: drop_rows "STAGG^TD" runs.td_drops)
      @ (row "STAGG^BU" runs.bu :: row "STAGG^BU.Drop(B)" runs.bu_drop_all
         :: drop_rows "STAGG^BU" runs.bu_drops))

(* ---- Table 3 ---- *)

let table3 runs =
  let total = 77 in
  let row label rs =
    [
      label;
      fmt_n (n_solved rs);
      fmt_pct (n_solved rs) total;
      fmt_t (avg_time rs);
      Printf.sprintf "%.2f" (avg_attempts rs);
    ]
  in
  "Table 3: grammar configurations (77 queries)\n"
  ^ Table.render
      ~headers:[ "Method"; "#"; "%"; "time"; "attempts" ]
      ~aligns:[ Left; Right; Right; Right; Right ]
      [
        row "STAGG^TD" runs.td;
        row "STAGG^TD.Drop(A)" runs.td_drop_all;
        row "STAGG^TD.EqualProbability" runs.td_equal;
        row "STAGG^TD.LLMGrammar" runs.td_llm_grammar;
        row "STAGG^TD.FullGrammar" runs.td_full_grammar;
        row "STAGG^BU" runs.bu;
        row "STAGG^BU.Drop(B)" runs.bu_drop_all;
        row "STAGG^BU.EqualProbability" runs.bu_equal;
        row "STAGG^BU.LLMGrammar" runs.bu_llm_grammar;
        row "STAGG^BU.FullGrammar" runs.bu_full_grammar;
        row "LLM" runs.llm;
        row "C2TACO" runs.c2taco;
        row "C2TACO.NoHeuristics" runs.c2taco_noh;
      ]

(* ---- figures ---- *)

let fig9 runs =
  let series =
    List.map
      (fun (label, rs) -> Cactus.series_of_results ~label (restrict real_world_names rs))
      [
        ("STAGG^TD", runs.td);
        ("STAGG^BU", runs.bu);
        ("LLM", runs.llm);
        ("C2TACO", runs.c2taco);
        ("C2TACO.NoHeuristics", runs.c2taco_noh);
        ("Tenspiler", runs.tenspiler);
      ]
  in
  "Figure 9: cactus plot, 67 real-world benchmarks\n" ^ Cactus.to_ascii series ^ "\ndata:\n"
  ^ Cactus.to_data series

let bar_chart rows total =
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, n) ->
      let pct = 100. *. float_of_int n /. float_of_int total in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %s %5.1f%% (%d/%d)\n" label
           (String.make (int_of_float (pct /. 2.)) '#')
           pct n total))
    rows;
  Buffer.contents buf

let fig10 runs =
  let rw rs = n_solved (restrict real_world_names rs) in
  "Figure 10: success rates, 67 real-world benchmarks\n"
  ^ bar_chart
      [
        ("STAGG^TD", rw runs.td);
        ("STAGG^BU", rw runs.bu);
        ("LLM", rw runs.llm);
        ("C2TACO", rw runs.c2taco);
        ("C2TACO.NoHeuristics", rw runs.c2taco_noh);
        ("Tenspiler", n_solved runs.tenspiler);
      ]
      67

let fig11 runs =
  "Figure 11: grammar configurations, success rates on all 77\n"
  ^ bar_chart
      [
        ("STAGG^TD", n_solved runs.td);
        ("STAGG^TD.EqualProbability", n_solved runs.td_equal);
        ("STAGG^TD.LLMGrammar", n_solved runs.td_llm_grammar);
        ("STAGG^TD.FullGrammar", n_solved runs.td_full_grammar);
        ("STAGG^BU", n_solved runs.bu);
        ("STAGG^BU.EqualProbability", n_solved runs.bu_equal);
        ("STAGG^BU.LLMGrammar", n_solved runs.bu_llm_grammar);
        ("STAGG^BU.FullGrammar", n_solved runs.bu_full_grammar);
      ]
      77

let fig12 runs =
  let configs =
    [
      ("STAGG^TD", runs.td);
      ("STAGG^TD.EqualProbability", runs.td_equal);
      ("STAGG^TD.LLMGrammar", runs.td_llm_grammar);
      ("STAGG^TD.FullGrammar", runs.td_full_grammar);
      ("STAGG^BU", runs.bu);
      ("STAGG^BU.EqualProbability", runs.bu_equal);
      ("STAGG^BU.LLMGrammar", runs.bu_llm_grammar);
      ("STAGG^BU.FullGrammar", runs.bu_full_grammar);
    ]
  in
  "Figure 12: per-configuration solved count vs average time/attempts (77 queries)\n"
  ^ Table.render
      ~headers:[ "Configuration"; "#"; "avg time (s)"; "avg attempts" ]
      ~aligns:[ Left; Right; Right; Right ]
      (List.map
         (fun (label, rs) ->
           [ label; fmt_n (n_solved rs); fmt_t (avg_time rs); Printf.sprintf "%.2f" (avg_attempts rs) ])
         configs)

let summary runs =
  let line label rs =
    Printf.sprintf "%s\t%d\t%.3f\t%.2f" label (n_solved rs) (avg_time rs) (avg_attempts rs)
  in
  String.concat "\n"
    ([
       line "STAGG_TD" runs.td;
       line "STAGG_BU" runs.bu;
       line "LLM" runs.llm;
       line "C2TACO" runs.c2taco;
       line "C2TACO_NoH" runs.c2taco_noh;
       line "Tenspiler" runs.tenspiler;
     ]
    @ (if runs.td_drops = [] then []
       else
         [
           line "TD_DropA" runs.td_drop_all;
           line "BU_DropB" runs.bu_drop_all;
           line "TD_Equal" runs.td_equal;
           line "TD_LLMGrammar" runs.td_llm_grammar;
           line "TD_FullGrammar" runs.td_full_grammar;
           line "BU_Equal" runs.bu_equal;
           line "BU_LLMGrammar" runs.bu_llm_grammar;
           line "BU_FullGrammar" runs.bu_full_grammar;
         ])
    @ [ "" ])
