type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~headers ?(aligns = []) rows =
  let ncols = List.length headers in
  let align_of k = match List.nth_opt aligns k with Some a -> a | None -> Left in
  let width_of k =
    List.fold_left
      (fun acc row -> max acc (String.length (Option.value ~default:"" (List.nth_opt row k))))
      (String.length (List.nth headers k))
      rows
  in
  let widths = List.init ncols width_of in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun k w -> pad (align_of k) w (Option.value ~default:"" (List.nth_opt cells k)))
         widths)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line headers :: rule :: List.map line rows) @ [ "" ])
