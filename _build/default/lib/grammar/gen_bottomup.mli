(** The §5.2 grammar generator: a right-linear template grammar for the
    bottom-up search.

    For a dimension list [L] with [n = |L|] tensors, produces:
    {v
    PROGRAM  ::= TENSOR1 "=" EXPR
    EXPR     ::= TENSOR2 TAIL1
    TAILk    ::= ε | OP TENSOR(k+2) TAIL(k+1)      (k = 1 .. n-2)
    TAIL(n-1)::= ε
    OP       ::= "+" | "-" | "*" | "/"
    TENSORk  ::= every arrangement of L[k-1] indices; "Const" at 0-dim
    v}
    Each position has its own nonterminal, so the grammar itself enumerates
    tensors in dimension-list order and bounds the expression length —
    exactly why the bottom-up search needs fewer penalty rules (§5.2). *)

val generate : dim_list:int list -> templates:Stagg_taco.Ast.program list -> Cfg.t

(** Unrefined right-linear grammar: one shared TENSOR nonterminal over
    every symbol name and rank, unbounded chain. Backs the bottom-up
    [LLMGrammar] / [FullGrammar] ablations of Table 3, where the
    dimension-list refinement is disabled but the bottom-up search shape
    is kept. *)
val generate_full : ?n_rhs_tensors:int -> ?max_rank:int -> ?n_indices:int -> unit -> Cfg.t
