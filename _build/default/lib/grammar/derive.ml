open Stagg_taco

(* Values being matched against grammar fragments. *)
type value =
  | Vexpr of Ast.expr
  | Vop of Ast.op
  | Vchain of (Ast.op * Ast.expr) list  (** right-linear continuation *)

let is_const_symbol_name = String.equal "Const"

let is_const_expr = function
  | Ast.Const _ -> true
  | Ast.Access ("Const", []) -> true
  | _ -> false

(* Flatten a left-leaning operator chain: ((b ⊕ c) ⊗ d) ↦ (b, [⊕ c; ⊗ d]).
   Returns None when the expression is not a pure chain (parenthesized
   right subtrees, unary minus). *)
let rec flatten_chain (e : Ast.expr) : (Ast.expr * (Ast.op * Ast.expr) list) option =
  match e with
  | Ast.Access _ | Ast.Const _ -> Some (e, [])
  | Ast.Neg _ -> None
  | Ast.Bin (op, l, r) -> (
      match r with
      | Ast.Access _ | Ast.Const _ -> (
          match flatten_chain l with
          | Some (hd, ops) -> Some (hd, ops @ [ (op, r) ])
          | None -> None)
      | _ -> None)

let count_rules_mode ~relax (g : Cfg.t) (p : Ast.program) : int list option =
  let ( let* ) = Option.bind in
  let rec derive_nt nt v : int list option =
    List.find_map
      (fun (r : Cfg.rule) -> if r.concrete_syntax then None else match_rule r v)
      (Cfg.rules_for g nt)
  and match_rule (r : Cfg.rule) (v : value) : int list option =
    match (r.rhs, v) with
    (* terminal tensor / const productions. In relaxed mode the symbol name
       is ignored and only the index tuple must agree: templatization
       letters tensors by order of appearance, while generated grammars
       letter them by dimension-list position — a template whose Const (or
       arity noise) shifts the letters is still structurally informative *)
    | [ Cfg.T (Cfg.Tok_tensor (n, idxs)) ], Vexpr (Ast.Access (n', idxs')) ->
        if
          (relax || String.equal n n')
          && (not (is_const_symbol_name n'))
          && List.equal String.equal idxs idxs'
        then Some [ r.id ]
        else None
    | [ Cfg.T Cfg.Tok_const ], Vexpr e -> if is_const_expr e then Some [ r.id ] else None
    | [ Cfg.T (Cfg.Tok_op o) ], Vop o' -> if Ast.equal_op o o' then Some [ r.id ] else None
    (* unit production *)
    | [ Cfg.NT x ], (Vexpr _ as v) ->
        let* rest = derive_nt x v in
        Some (r.id :: rest)
    (* binary with OP nonterminal: EXPR ::= EXPR OP EXPR *)
    | [ Cfg.NT a; Cfg.NT op_nt; Cfg.NT b ], Vexpr (Ast.Bin (o, l, rr))
      when Cfg.category g op_nt = Cfg.Cat_op ->
        let* dl = derive_nt a (Vexpr l) in
        let* dop = derive_nt op_nt (Vop o) in
        let* dr = derive_nt b (Vexpr rr) in
        Some ((r.id :: dl) @ dop @ dr)
    (* binary with inline operator terminal: EXPR ::= EXPR "+" EXPR *)
    | [ Cfg.NT a; Cfg.T (Cfg.Tok_op o'); Cfg.NT b ], Vexpr (Ast.Bin (o, l, rr)) ->
        if Ast.equal_op o o' then
          let* dl = derive_nt a (Vexpr l) in
          let* dr = derive_nt b (Vexpr rr) in
          Some ((r.id :: dl) @ dr)
        else None
    (* unary minus *)
    | [ Cfg.T Cfg.Tok_neg; Cfg.NT a ], Vexpr (Ast.Neg inner) ->
        let* d = derive_nt a (Vexpr inner) in
        Some (r.id :: d)
    (* right-linear head: EXPR ::= TENSORk TAILk *)
    | [ Cfg.NT t_nt; Cfg.NT tail_nt ], Vexpr e when Cfg.category g tail_nt = Cfg.Cat_tail ->
        let* hd, rest = flatten_chain e in
        let* dh = derive_nt t_nt (Vexpr hd) in
        let* dt = derive_nt tail_nt (Vchain rest) in
        Some ((r.id :: dh) @ dt)
    (* tail productions *)
    | [], Vchain [] -> Some [ r.id ]
    | [ Cfg.NT op_nt; Cfg.NT t_nt ], Vchain [ (o, e) ] ->
        let* dop = derive_nt op_nt (Vop o) in
        let* dt = derive_nt t_nt (Vexpr e) in
        Some ((r.id :: dop) @ dt)
    | [ Cfg.NT op_nt; Cfg.NT t_nt; Cfg.NT tail_nt ], Vchain ((o, e) :: rest)
      when Cfg.category g tail_nt = Cfg.Cat_tail ->
        let* dop = derive_nt op_nt (Vop o) in
        let* dt = derive_nt t_nt (Vexpr e) in
        let* dtail = derive_nt tail_nt (Vchain rest) in
        Some ((r.id :: dop) @ dt @ dtail)
    | _ -> None
  in
  (* the program rule: [TENSOR1-ish] "=" EXPR, where the LHS slot is either
     an inline terminal or a tensor nonterminal *)
  let lhs_name, lhs_idxs = p.lhs in
  let lhs_as_expr = Vexpr (Ast.Access (lhs_name, lhs_idxs)) in
  List.find_map
    (fun (r : Cfg.rule) ->
      match r.rhs with
      | [ Cfg.T (Cfg.Tok_tensor (n, idxs)); Cfg.T Cfg.Tok_assign; Cfg.NT expr_nt ] ->
          (* relaxed mode tolerates a wrong-arity LHS: the candidate's RHS
             structure is still informative (the paper's static analysis
             overrides the LHS anyway, §4.2.3) *)
          if
            String.equal n lhs_name
            && (relax || List.equal String.equal idxs lhs_idxs)
          then
            let* d = derive_nt expr_nt (Vexpr p.rhs) in
            Some (r.id :: d)
          else None
      | [ Cfg.NT t1; Cfg.T Cfg.Tok_assign; Cfg.NT expr_nt ] ->
          let* d1 = derive_nt t1 lhs_as_expr in
          let* d = derive_nt expr_nt (Vexpr p.rhs) in
          Some ((r.id :: d1) @ d)
      | _ -> None)
    (Cfg.rules_for g (Cfg.start g))

let count_rules g p =
  (* prefer an exact-name parse; fall back to name-insensitive structure *)
  match count_rules_mode ~relax:false g p with
  | Some ids -> Some ids
  | None -> count_rules_mode ~relax:true g p

let weights_of_templates (g : Cfg.t) (templates : Ast.program list) : float array =
  let w = Array.make (Cfg.size g) 0. in
  List.iter
    (fun t ->
      match count_rules g t with
      | None -> ()
      | Some ids -> List.iter (fun id -> w.(id) <- w.(id) +. 1.) ids)
    templates;
  (* default weight 1 for unused tensor-producing rules (§4.3) *)
  Array.iter
    (fun (r : Cfg.rule) ->
      if w.(r.id) = 0. then
        let produces_tensor =
          List.exists
            (function Cfg.T (Cfg.Tok_tensor _) | Cfg.T Cfg.Tok_const -> true | _ -> false)
            r.rhs
        in
        if produces_tensor then w.(r.id) <- 1.)
    (Cfg.rules g);
  w
