open Stagg_taco

let generate ?(n_rhs_tensors = 4) ?(max_rank = 3) ?(n_indices = 4) () =
  let ranks = List.init (max_rank + 1) Fun.id in
  let tensor_prods_for name =
    List.concat_map
      (fun rank ->
        Genlib.index_tuples ~dim:rank ~n_indices ~allow_repeat:true
        |> List.map (fun idxs -> ("TENSOR", [ Cfg.T (Cfg.Tok_tensor (name, idxs)) ])))
      ranks
  in
  let lhs_prods =
    (* the LHS is always the first symbol "a"; Fig. 5 allows any rank *)
    List.concat_map
      (fun rank ->
        Genlib.index_tuples ~dim:rank ~n_indices ~allow_repeat:false
        |> List.map (fun idxs -> ("TENSOR1", [ Cfg.T (Cfg.Tok_tensor ("a", idxs)) ])))
      ranks
  in
  let rhs_names = List.init n_rhs_tensors (fun k -> Genlib.tensor_name (k + 1)) in
  let binaries =
    List.map
      (fun op -> ("EXPR", [ Cfg.NT "EXPR"; Cfg.T (Cfg.Tok_op op); Cfg.NT "EXPR" ]))
      Ast.all_ops
  in
  let prods =
    [ ("PROGRAM", [ Cfg.NT "TENSOR1"; Cfg.T Cfg.Tok_assign; Cfg.NT "EXPR" ]) ]
    @ lhs_prods
    @ [
        ("EXPR", [ Cfg.NT "TENSOR" ]);
        ("EXPR", [ Cfg.T Cfg.Tok_const ]);
        (* parenthesized expression: concrete syntax only *)
        ("EXPR", [ Cfg.T Cfg.Tok_lparen; Cfg.NT "EXPR"; Cfg.T Cfg.Tok_rparen ]);
        ("EXPR", [ Cfg.T Cfg.Tok_neg; Cfg.NT "EXPR" ]);
      ]
    @ binaries
    @ List.concat_map tensor_prods_for rhs_names
  in
  (* locate the paren rule's id to flag it as concrete syntax *)
  let paren_id =
    let rec find i = function
      | [] -> invalid_arg "Taco_grammar: no paren rule"
      | (_, [ Cfg.T Cfg.Tok_lparen; _; _ ]) :: _ -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 prods
  in
  Cfg.make ~start:"PROGRAM"
    ~categories:
      [
        ("PROGRAM", Cfg.Cat_program);
        ("TENSOR1", Cfg.Cat_tensor);
        ("EXPR", Cfg.Cat_expr);
        ("TENSOR", Cfg.Cat_tensor);
      ]
    ~concrete_syntax:[ paren_id ] prods
