open Stagg_taco

let generate ~dim_list ~templates =
  (match dim_list with
  | [] -> invalid_arg "Gen_topdown.generate: empty dimension list"
  | lhs :: _ when lhs < 0 || lhs > 4 -> invalid_arg "Gen_topdown.generate: bad LHS dimension"
  | _ -> ());
  let n_indices = Genlib.unique_index_count templates in
  let allow_repeat = Genlib.templates_have_repeated_index templates in
  let lhs_dim = List.hd dim_list in
  let rhs_dims = List.tl dim_list in
  let tensor1 =
    Cfg.Tok_tensor (Genlib.tensor_name 0, Genlib.canonical_indices lhs_dim)
  in
  let tensor_rules =
    (* one production per arrangement per RHS position; a single "Const"
       production covers every 0-dimensional position *)
    let with_const =
      List.exists (fun d -> d = 0) rhs_dims && Genlib.templates_have_const templates
    in
    let per_position =
      List.concat
        (List.mapi
           (fun k dim ->
             let name = Genlib.tensor_name (k + 1) in
             (* a 0-dim position also yields the bare scalar tensor *)
             let n_indices = if dim = 0 then 1 else n_indices in
             Genlib.index_tuples ~dim ~n_indices ~allow_repeat
             |> List.map (fun idxs -> ("TENSOR", [ Cfg.T (Cfg.Tok_tensor (name, idxs)) ])))
           rhs_dims)
    in
    per_position @ if with_const then [ ("TENSOR", [ Cfg.T Cfg.Tok_const ]) ] else []
  in
  let prods =
    [
      ("PROGRAM", [ Cfg.T tensor1; Cfg.T Cfg.Tok_assign; Cfg.NT "EXPR" ]);
      ("EXPR", [ Cfg.NT "TENSOR" ]);
      ("EXPR", [ Cfg.NT "EXPR"; Cfg.NT "OP"; Cfg.NT "EXPR" ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Add) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Sub) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Mul) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Div) ]);
    ]
    @ tensor_rules
  in
  Cfg.make ~start:"PROGRAM"
    ~categories:
      [
        ("PROGRAM", Cfg.Cat_program);
        ("EXPR", Cfg.Cat_expr);
        ("OP", Cfg.Cat_op);
        ("TENSOR", Cfg.Cat_tensor);
      ]
    prods
