type t = { cfg : Cfg.t; probs : float array; h_tbl : (string, float) Hashtbl.t }

let cfg t = t.cfg

let compute_h cfg probs =
  let h_tbl = Hashtbl.create 16 in
  let nts = Cfg.nonterminals cfg in
  List.iter (fun nt -> Hashtbl.replace h_tbl nt 0.) nts;
  let h_of = function
    | Cfg.T _ -> 1.
    | Cfg.NT n -> Option.value ~default:0. (Hashtbl.find_opt h_tbl n)
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 10_000 do
    changed := false;
    incr iters;
    List.iter
      (fun nt ->
        let best =
          List.fold_left
            (fun acc (r : Cfg.rule) ->
              let v = List.fold_left (fun p s -> p *. h_of s) probs.(r.id) r.rhs in
              Float.max acc v)
            0. (Cfg.rules_for cfg nt)
        in
        if best > Hashtbl.find h_tbl nt +. 1e-12 then begin
          Hashtbl.replace h_tbl nt best;
          changed := true
        end)
      nts
  done;
  h_tbl

let of_weights cfg weights =
  if Array.length weights <> Cfg.size cfg then invalid_arg "Pcfg.of_weights: weight arity";
  Array.iter (fun w -> if w < 0. then invalid_arg "Pcfg.of_weights: negative weight") weights;
  let probs = Array.make (Cfg.size cfg) 0. in
  List.iter
    (fun nt ->
      let rs = Cfg.rules_for cfg nt in
      let total = List.fold_left (fun acc (r : Cfg.rule) -> acc +. weights.(r.id)) 0. rs in
      if total <= 0. then
        (* degenerate: fall back to uniform so the nonterminal stays derivable *)
        List.iter (fun (r : Cfg.rule) -> probs.(r.id) <- 1. /. float_of_int (List.length rs)) rs
      else List.iter (fun (r : Cfg.rule) -> probs.(r.id) <- weights.(r.id) /. total) rs)
    (Cfg.nonterminals cfg);
  { cfg; probs; h_tbl = compute_h cfg probs }

let uniform cfg = of_weights cfg (Array.make (Cfg.size cfg) 1.)

let prob t (r : Cfg.rule) = t.probs.(r.id)

let cost t (r : Cfg.rule) =
  let p = t.probs.(r.id) in
  if p <= 0. then infinity else -.Float.log2 p

let h t nt = Option.value ~default:0. (Hashtbl.find_opt t.h_tbl nt)

let h_cost t nt =
  let v = h t nt in
  if v <= 0. then infinity else -.Float.log2 v

let ops_available t =
  let ops = ref [] in
  Array.iter
    (fun (r : Cfg.rule) ->
      if t.probs.(r.id) > 0. then
        List.iter
          (function
            | Cfg.T (Cfg.Tok_op op) -> if not (List.mem op !ops) then ops := op :: !ops
            | _ -> ())
          r.rhs)
    (Cfg.rules t.cfg);
  List.rev !ops

let pp fmt t =
  Format.fprintf fmt "@[<v>start: %s@," (Cfg.start t.cfg);
  Array.iter
    (fun (r : Cfg.rule) ->
      Format.fprintf fmt "%s   (%.4f)@," (Cfg.rule_to_string r) t.probs.(r.id))
    (Cfg.rules t.cfg);
  Format.fprintf fmt "@]"
