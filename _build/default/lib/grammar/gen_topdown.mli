(** The §4.2.4 grammar generator: a refined template grammar for the
    top-down search, from a predicted dimension list.

    For a dimension list [L] (element 0 = the LHS tensor) and the candidate
    templates [T], produces:
    {v
    PROGRAM ::= TENSOR1 "=" EXPR
    EXPR    ::= TENSOR | EXPR OP EXPR
    OP      ::= "+" | "-" | "*" | "/"
    TENSOR1 ::= "a" / "a(i)" / "a(i,j)" / ...     (fixed by L[0])
    TENSOR  ::= every arrangement of L[k] indices out of i(T) index
                variables, for every RHS position k; "Const" for 0-dim
                positions
    v}
    Index tuples with a repeated variable are pruned unless some candidate
    uses one (paper: "we will remove b(i,i)"). *)

val generate : dim_list:int list -> templates:Stagg_taco.Ast.program list -> Cfg.t
