(** Shared helpers for the grammar generators (§4.2.4 and §5.2). *)

open Stagg_taco

(* The canonical index-variable pool {i, j, k, l} (paper Fig. 5). *)
let canonical_pool = [ "i"; "j"; "k"; "l" ]

let canonical_indices n =
  if n < 0 || n > List.length canonical_pool then
    invalid_arg (Printf.sprintf "canonical_indices: unsupported count %d" n);
  List.filteri (fun k _ -> k < n) canonical_pool

(* Tensor symbol name for position [pos] in the dimension list: position 0
   (the LHS) is "a", then "b", "c", ... *)
let tensor_name pos = String.make 1 (Char.chr (Char.code 'a' + pos))

let rec tuples pool = function
  | 0 -> [ [] ]
  | n -> List.concat_map (fun rest -> List.map (fun v -> v :: rest) pool) (tuples pool (n - 1))

let has_duplicate idxs =
  List.exists (fun i -> List.length (List.filter (String.equal i) idxs) > 1) idxs

(* All [dim]-tuples over the first [n_indices] canonical index variables;
   tuples with a repeated variable are pruned unless [allow_repeat]
   (§4.2.4: "we will remove b(i,i)" if unused by every candidate). *)
let index_tuples ~dim ~n_indices ~allow_repeat =
  let pool = canonical_indices (max 1 (min n_indices (List.length canonical_pool))) in
  tuples pool dim |> List.filter (fun t -> allow_repeat || not (has_duplicate t))

(* Does any candidate template contain an access with a repeated index? *)
let templates_have_repeated_index (templates : Ast.program list) =
  let rec expr_has = function
    | Ast.Access (_, idxs) -> has_duplicate idxs
    | Ast.Const _ -> false
    | Ast.Neg e -> expr_has e
    | Ast.Bin (_, a, b) -> expr_has a || expr_has b
  in
  List.exists (fun (p : Ast.program) -> has_duplicate (snd p.lhs) || expr_has p.rhs) templates

(* Number of unique index variables across the candidate templates —
   [i(T)] in the paper. At least 1 so 1-D tensors stay expressible. *)
let unique_index_count (templates : Ast.program list) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p -> List.iter (fun i -> Hashtbl.replace seen i ()) (Ast.indices_of_program p))
    templates;
  max 1 (min (Hashtbl.length seen) (List.length canonical_pool))

(* Does any candidate template contain the symbolic constant? Constant
   productions enter a generated grammar only in that case: Const can only
   be instantiated from source literals, and the search should only spend
   probability mass on it when the LLM actually suggested a constant. *)
let templates_have_const (templates : Ast.program list) =
  let rec expr_has = function
    | Ast.Const _ -> true
    | Ast.Access (n, []) -> String.equal n "Const"
    | Ast.Access _ -> false
    | Ast.Neg e -> expr_has e
    | Ast.Bin (_, a, b) -> expr_has a || expr_has b
  in
  List.exists (fun (p : Ast.program) -> expr_has p.rhs) templates
