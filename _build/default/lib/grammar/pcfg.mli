(** Probabilistic context-free grammars (paper Defs. 4.2–4.3) and the
    admissible-heuristic machinery of §5.1.

    Probabilities are produced by normalizing per-nonterminal rule weights
    (§4.3). [h] is the maximal probability of deriving any terminal string
    from a nonterminal, computed as a least fixpoint; rule costs are
    [-log2 P], with probability-0 rules costing [infinity] (the search
    never applies them). *)

type t

val cfg : t -> Cfg.t

(** [of_weights g w] normalizes [w] (indexed by rule id) per left-hand
    side. A nonterminal whose weights are all zero gets uniform
    probabilities (it would otherwise be underivable by accident). *)
val of_weights : Cfg.t -> float array -> t

(** Uniform probabilities for every nonterminal. *)
val uniform : Cfg.t -> t

(** Probability of a rule. *)
val prob : t -> Cfg.rule -> float

(** [-log2 (prob r)]; [infinity] when the probability is 0. *)
val cost : t -> Cfg.rule -> float

(** [h p nt] — the maximal probability of deriving a terminal string from
    [nt] (§5.1); 0 if no terminal string is derivable with positive
    probability. *)
val h : t -> string -> float

(** [-log2 (h nt)]. *)
val h_cost : t -> string -> float

(** Operators that can actually be produced (positive probability on some
    rule deriving them). *)
val ops_available : t -> Stagg_taco.Ast.op list

val pp : Format.formatter -> t -> unit
