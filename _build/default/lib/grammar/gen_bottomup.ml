open Stagg_taco

let generate ~dim_list ~templates =
  let n = List.length dim_list in
  if n < 2 then invalid_arg "Gen_bottomup.generate: dimension list needs at least two entries";
  let n_indices = Genlib.unique_index_count templates in
  let allow_repeat = Genlib.templates_have_repeated_index templates in
  let dims = Array.of_list dim_list in
  let lhs_dim = dims.(0) in
  let tensor1 = Cfg.Tok_tensor (Genlib.tensor_name 0, Genlib.canonical_indices lhs_dim) in
  let tensor_nt pos = Printf.sprintf "TENSOR%d" (pos + 1) in
  let tail_nt k = Printf.sprintf "TAIL%d" k in
  let tensor_rules pos =
    let dim = dims.(pos) in
    let name = Genlib.tensor_name pos in
    let nt = tensor_nt pos in
    let n_indices = if dim = 0 then 1 else n_indices in
    let accesses =
      Genlib.index_tuples ~dim ~n_indices ~allow_repeat
      |> List.map (fun idxs -> (nt, [ Cfg.T (Cfg.Tok_tensor (name, idxs)) ]))
    in
    if dim = 0 && Genlib.templates_have_const templates then
      accesses @ [ (nt, [ Cfg.T Cfg.Tok_const ]) ]
    else accesses
  in
  let tail_rules k =
    (* TAILk continues with the (k+2)-th tensor when one is predicted *)
    let nt = tail_nt k in
    if k + 1 < n then
      [ (nt, []); (nt, [ Cfg.NT "OP"; Cfg.NT (tensor_nt (k + 1)); Cfg.NT (tail_nt (k + 1)) ]) ]
    else [ (nt, []) ]
  in
  let prods =
    [
      ("PROGRAM", [ Cfg.T tensor1; Cfg.T Cfg.Tok_assign; Cfg.NT "EXPR" ]);
      ("EXPR", [ Cfg.NT (tensor_nt 1); Cfg.NT (tail_nt 1) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Add) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Sub) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Mul) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Div) ]);
    ]
    @ List.concat (List.init (n - 1) (fun i -> tensor_rules (i + 1)))
    @ List.concat (List.init (n - 1) (fun i -> tail_rules (i + 1)))
  in
  let categories =
    [ ("PROGRAM", Cfg.Cat_program); ("EXPR", Cfg.Cat_expr); ("OP", Cfg.Cat_op) ]
    @ List.init (n - 1) (fun i -> (tensor_nt (i + 1), Cfg.Cat_tensor))
    @ List.init (n - 1) (fun i -> (tail_nt (i + 1), Cfg.Cat_tail))
  in
  Cfg.make ~start:"PROGRAM" ~categories prods

let generate_full ?(n_rhs_tensors = 4) ?(max_rank = 3) ?(n_indices = 4) () =
  (* right-linear shape without dimension-list refinement: the bottom-up
     ablation grammars of Table 3 (LLMGrammar / FullGrammar). One shared
     TENSOR nonterminal, unbounded chain. *)
  let ranks = List.init (max_rank + 1) Fun.id in
  let tensor_prods nt names allow_repeat =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun rank ->
            Genlib.index_tuples ~dim:rank ~n_indices ~allow_repeat
            |> List.map (fun idxs -> (nt, [ Cfg.T (Cfg.Tok_tensor (name, idxs)) ])))
          ranks)
      names
  in
  let rhs_names = List.init n_rhs_tensors (fun k -> Genlib.tensor_name (k + 1)) in
  let prods =
    [
      ("PROGRAM", [ Cfg.NT "TENSOR1"; Cfg.T Cfg.Tok_assign; Cfg.NT "EXPR" ]);
      ("EXPR", [ Cfg.NT "TENSOR"; Cfg.NT "TAIL" ]);
      ("TAIL", []);
      ("TAIL", [ Cfg.NT "OP"; Cfg.NT "TENSOR"; Cfg.NT "TAIL" ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Add) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Sub) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Mul) ]);
      ("OP", [ Cfg.T (Cfg.Tok_op Ast.Div) ]);
    ]
    @ tensor_prods "TENSOR1" [ Genlib.tensor_name 0 ] false
    @ tensor_prods "TENSOR" rhs_names true
    @ [ ("TENSOR", [ Cfg.T Cfg.Tok_const ]) ]
  in
  Cfg.make ~start:"PROGRAM"
    ~categories:
      [
        ("PROGRAM", Cfg.Cat_program);
        ("EXPR", Cfg.Cat_expr);
        ("OP", Cfg.Cat_op);
        ("TENSOR1", Cfg.Cat_tensor);
        ("TENSOR", Cfg.Cat_tensor);
        ("TAIL", Cfg.Cat_tail);
      ]
    prods
