(** The full TACO template grammar (paper Fig. 5), restricted — as the
    paper's template space is — to symbolic tensor names [a, b, c, ...] and
    the canonical index pool [i, j, k, l].

    Used by the [FullGrammar] and [LLMGrammar] ablation configurations
    (Table 3): no dimension-list refinement, every tensor name may take
    any rank up to [max_rank] with any index tuple (repetition allowed),
    plus parenthesized and negated expressions. *)

val generate : ?n_rhs_tensors:int -> ?max_rank:int -> ?n_indices:int -> unit -> Cfg.t
