(** Leftmost-derivation rule counting (paper §4.3, Def. 4.6).

    [count_rules g p] finds a parse of the template [p] (a TACO AST whose
    tensor names are the symbolic [a, b, c, ...] and whose constants are
    the [Const] symbol) in the grammar [g] and returns the rule ids used,
    with multiplicity — the multiset of rules in the leftmost derivation.
    Rules marked [concrete_syntax] (parentheses) never participate: they
    exist only to print/reparse and would make derivations non-unique.

    Returns [None] when [p] is outside [L(g)] — e.g. a template with a
    parenthesized, non-chain shape is not derivable in a bottom-up grammar
    (§5.2), and its rule counts are simply not collected. *)

val count_rules : Cfg.t -> Stagg_taco.Ast.program -> int list option

(** [weights_of_templates g ts] — the §4.3 weight vector: for each rule,
    how often it occurs in the leftmost derivations of the derivable
    templates. Tensor-producing rules that never occur get the default
    weight 1 ("considered during synthesis with a lower priority");
    all other never-occurring rules keep weight 0 (paper Fig. 3 shows
    operators with probability 0). *)
val weights_of_templates : Cfg.t -> Stagg_taco.Ast.program list -> float array
