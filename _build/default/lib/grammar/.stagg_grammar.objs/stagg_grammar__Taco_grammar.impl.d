lib/grammar/taco_grammar.ml: Ast Cfg Fun Genlib List Stagg_taco
