lib/grammar/derive.mli: Cfg Stagg_taco
