lib/grammar/gen_topdown.ml: Ast Cfg Genlib List Stagg_taco
