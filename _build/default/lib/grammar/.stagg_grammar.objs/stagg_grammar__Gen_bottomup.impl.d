lib/grammar/gen_bottomup.ml: Array Ast Cfg Fun Genlib List Printf Stagg_taco
