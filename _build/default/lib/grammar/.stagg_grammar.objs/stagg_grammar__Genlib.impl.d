lib/grammar/genlib.ml: Ast Char Hashtbl List Printf Stagg_taco String
