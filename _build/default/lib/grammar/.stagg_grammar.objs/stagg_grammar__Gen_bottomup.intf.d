lib/grammar/gen_bottomup.mli: Cfg Stagg_taco
