lib/grammar/cfg.mli: Format Stagg_taco
