lib/grammar/derive.ml: Array Ast Cfg List Option Stagg_taco String
