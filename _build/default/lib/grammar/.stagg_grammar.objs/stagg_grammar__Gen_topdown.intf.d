lib/grammar/gen_topdown.mli: Cfg Stagg_taco
