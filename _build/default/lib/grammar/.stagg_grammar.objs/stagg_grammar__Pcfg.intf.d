lib/grammar/pcfg.mli: Cfg Format Stagg_taco
