lib/grammar/pcfg.ml: Array Cfg Float Format Hashtbl List Option
