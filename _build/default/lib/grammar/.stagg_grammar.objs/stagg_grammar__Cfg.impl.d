lib/grammar/cfg.ml: Array Format Hashtbl List Option Printf Stagg_taco String
