lib/grammar/taco_grammar.mli: Cfg
