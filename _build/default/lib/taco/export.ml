open Ast
open Stagg_util

let ( let* ) = Result.bind

(* ---- the Python-family backends (NumPy / PyTorch) ---- *)

type py_backend = { module_ : string; tensor_word : string }

let numpy = { module_ = "np"; tensor_word = "ndarray" }
let torch = { module_ = "torch"; tensor_word = "Tensor" }

(* Flatten a product into its factors (for einsum detection). *)
let rec factors = function
  | Bin (Mul, a, b) -> factors a @ factors b
  | e -> [ e ]

let is_access = function Access (_, _ :: _) -> true | _ -> false

(* Render an expression as Python code whose array value is aligned to the
   axis list [axes] (broadcast dimensions inserted as None-axes). *)
let rec py_aligned be ~axes (e : expr) : (string, string) result =
  match e with
  | Const c -> Ok (py_const c)
  | Access (t, []) -> Ok t
  | Access (t, idxs) ->
      (* permute with einsum if needed, then insert missing axes *)
      let present = List.filter (fun a -> List.mem a idxs) axes in
      let* base =
        if present = idxs then Ok t
        else if List.sort compare present = List.sort compare idxs then
          Ok
            (Printf.sprintf "%s.einsum(\"%s->%s\", %s)" be.module_ (String.concat "" idxs)
               (String.concat "" present) t)
        else Error (Printf.sprintf "access %s uses a repeated index; not exportable" t)
      in
      let subscript =
        List.map (fun a -> if List.mem a idxs then ":" else "None") axes |> String.concat ", "
      in
      if List.for_all (fun a -> List.mem a idxs) axes then Ok base
      else Ok (Printf.sprintf "%s[%s]" base subscript)
  | Neg e ->
      let* s = py_aligned be ~axes e in
      Ok (Printf.sprintf "(-%s)" s)
  | Bin (op, a, b) -> (
      match op with
      | Mul -> py_term be ~axes e
      | Add | Sub | Div ->
          let* sa = py_aligned be ~axes a in
          let* sb = py_aligned be ~axes b in
          Ok (Printf.sprintf "(%s %s %s)" sa (op_to_string op) sb))

and py_const c =
  if Rat.is_integer c then Rat.to_string c
  else Printf.sprintf "(%s / %s)" (Bigint.to_string (c : Rat.t).num) (Bigint.to_string c.den)

(* A multiplicative term: contract its reduction indices. Pure products of
   multi-dimensional accesses become a single einsum; anything else is
   aligned to (axes @ reduction) space, multiplied pointwise, and summed. *)
and py_term be ~axes (e : expr) : (string, string) result =
  let fs = factors e in
  let term_idxs = indices_of_expr e in
  let reds = List.filter (fun i -> not (List.mem i axes)) term_idxs in
  let out_spec = List.filter (fun a -> List.mem a term_idxs) axes in
  if reds = [] then begin
    (* no contraction: pointwise product of aligned factors *)
    let* parts = all_aligned be ~axes fs in
    Ok (String.concat " * " parts)
  end
  else if List.for_all is_access fs then begin
    (* pure contraction: einsum *)
    let specs =
      List.map (function Access (_, idxs) -> String.concat "" idxs | _ -> assert false) fs
    in
    let args = List.map (function Access (t, _) -> t | _ -> assert false) fs in
    Ok
      (Printf.sprintf "%s.einsum(\"%s->%s\", %s)" be.module_ (String.concat "," specs)
         (String.concat "" out_spec) (String.concat ", " args))
  end
  else begin
    (* general composite contraction: align everything over axes @ reds,
       multiply, then sum the trailing reduction axes *)
    let full = axes @ reds in
    let* parts = all_aligned be ~axes:full fs in
    let red_axes =
      List.mapi (fun k _ -> string_of_int (List.length axes + k)) reds |> String.concat ", "
    in
    let body = String.concat " * " parts in
    let* body =
      if List.exists (fun a -> not (List.mem a term_idxs)) out_spec then Error "unreachable"
      else Ok body
    in
    Ok (Printf.sprintf "(%s).sum(axis=(%s))" body red_axes)
  end

and all_aligned be ~axes fs =
  List.fold_left
    (fun acc f ->
      let* acc = acc in
      let* s = py_aligned be ~axes f in
      Ok (acc @ [ Printf.sprintf "(%s)" s ]))
    (Ok []) fs

let py_function be ?(name = "lifted") (p : program) =
  let out, out_idxs = p.lhs in
  let inputs =
    List.filter_map (fun (t, _) -> if String.equal t out then None else Some t) (tensors_in_order p)
  in
  let* body = py_aligned be ~axes:out_idxs p.rhs in
  let ones =
    (* broadcast-only result (e.g. a(i) = c): materialize the shape *)
    if
      out_idxs <> []
      && List.exists (fun i -> not (List.mem i (indices_of_expr p.rhs))) out_idxs
    then Error "output has an extent no input determines; not exportable"
    else Ok ()
  in
  let* () = ones in
  Ok
    (Printf.sprintf "def %s(%s):\n    \"\"\"%s (lifted; %s backend)\"\"\"\n    return %s\n" name
       (String.concat ", " inputs)
       (Pretty.program_to_string p)
       be.tensor_word body)

let to_numpy ?name p = py_function numpy ?name p
let to_pytorch ?name p = py_function torch ?name p

(* ---- the TACO C++ API backend ---- *)

let to_taco_cpp ?(name = "lifted") (p : program) =
  let tensors = tensors_in_order p in
  let idxs = indices_of_program p in
  if List.length idxs > 26 then Error "too many index variables"
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "// %s\n" (Pretty.program_to_string p));
    Buffer.add_string buf (Printf.sprintf "void %s() {\n" name);
    Buffer.add_string buf "  Format dense_fmt({Dense});\n";
    List.iter
      (fun (t, rank) ->
        if rank = 0 then Buffer.add_string buf (Printf.sprintf "  Tensor<double> %s;\n" t)
        else
          Buffer.add_string buf
            (Printf.sprintf "  Tensor<double> %s({%s}, Format(std::vector<ModeFormatPack>(%d, Dense)));\n" t
               (String.concat ", " (List.init rank (fun _ -> "dim")))
               rank))
      tensors;
    if idxs <> [] then
      Buffer.add_string buf (Printf.sprintf "  IndexVar %s;\n" (String.concat ", " idxs));
    let lhs_t, lhs_i = p.lhs in
    let access t = function [] -> t | is -> Printf.sprintf "%s(%s)" t (String.concat ", " is) in
    let rec expr_str = function
      | Access (t, is) -> access t is
      | Const c -> Rat.to_string c
      | Neg e -> Printf.sprintf "(-%s)" (expr_str e)
      | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (op_to_string op) (expr_str b)
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s = %s;\n" (access lhs_t lhs_i) (expr_str p.rhs));
    Buffer.add_string buf
      (Printf.sprintf "  %s.compile();\n  %s.assemble();\n  %s.compute();\n}\n" lhs_t lhs_t lhs_t);
    Ok (Buffer.contents buf)
  end
