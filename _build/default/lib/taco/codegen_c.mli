(** The TACO compiler's C backend: render a lowered kernel ({!Ir.kernel})
    as a complete, compilable mini-C function.

    This closes the loop the real system has — TACO emits C — and enables
    the round-trip property the integration tests rely on: generate a
    random TACO program, compile it to C with this backend, and the lifter
    must raise it back to an equivalent TACO program. *)

(** How each tensor parameter is shaped, so subscripts can be linearized:
    dimension sizes become leading [int] parameters. *)
type tensor_param = {
  tname : string;
  dims : string list;  (** size-parameter names, row-major; [\[\]] = scalar *)
}

(** [emit ~name ~params ~out kernel] renders a [void] C function whose
    parameters are the (deduplicated) size names, then each tensor of
    [params] as [int*] (scalars as [int]), then the output buffer [out].
    Accesses are linearized row-major. Fails if the kernel reads a tensor
    absent from [params] or uses a loop bound over an unknown axis. *)
val emit :
  name:string ->
  params:tensor_param list ->
  out:tensor_param ->
  Ir.kernel ->
  (string, string) result

(** [emit_program ~name p ~params ~out] — compile a TACO program with
    {!Lower} and render it. *)
val emit_program :
  name:string ->
  params:tensor_param list ->
  out:tensor_param ->
  Ast.program ->
  (string, string) result
