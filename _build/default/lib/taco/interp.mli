(** Reference interpreter for TACO programs (Einstein-summation semantics),
    functorized over the value domain.

    Reduction semantics: every index variable that appears on the RHS but
    not on the LHS is a reduction index; its summation is inserted around
    the {e smallest enclosing subexpression} that contains all of its
    occurrences — so in [a(i) = b(i,j)*c(j) + d(i)] the sum over [j] wraps
    only the product, matching TACO's behaviour on dense expressions
    (see DESIGN.md §4). *)

module Make (V : Stagg_util.Value.S) : sig
  (** [run ~env ?lhs_shape p] evaluates [p] with the RHS tensors bound by
      [env]. [lhs_shape] is required only when some LHS index appears
      nowhere on the RHS (pure broadcast). Returns the output tensor or a
      descriptive error (unknown tensor, rank mismatch, inconsistent index
      sizes, division by zero). *)
  val run :
    env:(string * V.t Tensor.t) list ->
    ?lhs_shape:int array ->
    Ast.program ->
    (V.t Tensor.t, string) result
end
