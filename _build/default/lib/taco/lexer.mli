(** Hand-written lexer for TACO index notation (paper Fig. 5).

    Tolerant of the notational quirks seen in LLM responses: [:=] is lexed
    as a single assignment token, decimal literals are accepted and read as
    exact rationals. *)

type token =
  | IDENT of string
  | NUMBER of Stagg_util.Rat.t
  | LPAREN
  | RPAREN
  | COMMA
  | ASSIGN  (** [=] or [:=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string

val token_to_string : token -> string

(** [tokenize s] lexes the whole string. @raise Lex_error on an illegal
    character. *)
val tokenize : string -> token list
