(** Recursive-descent parser for TACO index notation.

    Accepts the grammar of paper Fig. 5 with the usual precedence
    ([*], [/] bind tighter than [+], [-]; all left-associative), plus two
    notational liberties that real LLM responses take (§4.2): [:=] in place
    of [=], and explicit [sum(i, e)] wrappers, which are erased since
    summation is implicit in TACO over indices missing from the LHS. *)

(** [parse_program s] parses a full assignment [t(i,...) = e]. *)
val parse_program : string -> (Ast.program, string) result

(** [parse_expr s] parses a bare right-hand-side expression. *)
val parse_expr : string -> (Ast.expr, string) result

(** @raise Failure with the error message instead of returning [Error]. *)
val parse_program_exn : string -> Ast.program
