type t = { node : node; occ : (string * int) list; mutable reds : string list }

and node =
  | Access of string * string list
  | Const of Stagg_util.Rat.t
  | Neg of t
  | Bin of Ast.op * t * t

let occ_merge a b =
  List.fold_left
    (fun acc (i, n) ->
      match List.assoc_opt i acc with
      | None -> (i, n) :: acc
      | Some m -> (i, n + m) :: List.remove_assoc i acc)
    a b

let occ_count occ i = match List.assoc_opt i occ with None -> 0 | Some n -> n

let rec build (e : Ast.expr) : t =
  match e with
  | Ast.Access (tname, idxs) ->
      let occ = List.fold_left (fun acc i -> occ_merge acc [ (i, 1) ]) [] idxs in
      { node = Access (tname, idxs); occ; reds = [] }
  | Ast.Const c -> { node = Const c; occ = []; reds = [] }
  | Ast.Neg e ->
      let a = build e in
      { node = Neg a; occ = a.occ; reds = [] }
  | Ast.Bin (op, l, r) ->
      let la = build l and ra = build r in
      { node = Bin (op, la, ra); occ = occ_merge la.occ ra.occ; reds = [] }

(* Insert the summation for reduction index [r] at the deepest node whose
   subtree contains all occurrences of [r]. *)
let insert root r =
  let total = occ_count root.occ r in
  if total = 0 then ()
  else begin
    let rec descend node =
      match node.node with
      | Access _ | Const _ -> node
      | Neg child -> if occ_count child.occ r = total then descend child else node
      | Bin (_, l, ri) ->
          if occ_count l.occ r = total then descend l
          else if occ_count ri.occ r = total then descend ri
          else node
    in
    let target = descend root in
    target.reds <- target.reds @ [ r ]
  end

let annotate (p : Ast.program) : t =
  let root = build p.rhs in
  List.iter (insert root) (Ast.reduction_indices p);
  root
