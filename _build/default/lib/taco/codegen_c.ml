open Stagg_util

type tensor_param = { tname : string; dims : string list }

let ( let* ) = Result.bind

(* row-major linearization: t[i][j] over dims [N; M] becomes t[i * M + j] *)
let linearize (p : tensor_param) idxs =
  match (p.dims, idxs) with
  | [], [] -> Ok "0"
  | dims, idxs when List.length dims = List.length idxs ->
      let terms =
        List.mapi
          (fun k i ->
            match List.filteri (fun k' _ -> k' > k) dims with
            | [] -> i
            | rest -> Printf.sprintf "%s * %s" i (String.concat " * " rest))
          idxs
      in
      Ok (String.concat " + " terms)
  | _ ->
      Error
        (Printf.sprintf "tensor %s has rank %d but is accessed with %d indices" p.tname
           (List.length p.dims) (List.length idxs))

let rec emit_exp ~lookup (e : Ir.exp) : (string, string) result =
  match e with
  | Ir.Const c ->
      if Rat.is_integer c then Ok (Rat.to_string c)
      else Error (Printf.sprintf "non-integer constant %s has no C literal" (Rat.to_string c))
  | Ir.Temp t -> Ok t
  | Ir.Load (t, idxs) ->
      let* p = lookup t in
      let* off = linearize p idxs in
      Ok (if p.dims = [] && idxs = [] then
            (* a scalar parameter is passed by value *)
            p.tname
          else Printf.sprintf "%s[%s]" p.tname off)
  | Ir.Neg e ->
      let* s = emit_exp ~lookup e in
      Ok (Printf.sprintf "(-%s)" s)
  | Ir.Bin (op, a, b) ->
      let* sa = emit_exp ~lookup a in
      let* sb = emit_exp ~lookup b in
      Ok (Printf.sprintf "(%s %s %s)" sa (Ast.op_to_string op) sb)

let emit ~name ~params ~out (kernel : Ir.kernel) : (string, string) result =
  let lookup t =
    match List.find_opt (fun p -> String.equal p.tname t) params with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "kernel reads unknown tensor %s" t)
  in
  let bound_name = function
    | Ir.Dim_of (t, k) ->
        let* p = lookup t in
        if k < List.length p.dims then Ok (List.nth p.dims k)
        else Error (Printf.sprintf "tensor %s has no axis %d" t k)
    | Ir.Out_dim k ->
        if k < List.length out.dims then Ok (List.nth out.dims k)
        else Error (Printf.sprintf "output has no axis %d" k)
  in
  let buf = Buffer.create 512 in
  let indent n = String.make (2 * n) ' ' in
  let temps = ref [] in
  let rec collect_temps = function
    | Ir.Set_temp (t, _) -> if not (List.mem t !temps) then temps := t :: !temps
    | Ir.Accum_temp _ | Ir.Store _ -> ()
    | Ir.For (_, _, body) -> List.iter collect_temps body
  in
  List.iter collect_temps kernel.body;
  let loop_vars = ref [] in
  let rec collect_vars = function
    | Ir.For (v, _, body) ->
        if not (List.mem v !loop_vars) then loop_vars := v :: !loop_vars;
        List.iter collect_vars body
    | _ -> ()
  in
  List.iter collect_vars kernel.body;
  let rec emit_stmt depth (s : Ir.stmt) : (unit, string) result =
    match s with
    | Ir.Set_temp (t, e) ->
        let* se = emit_exp ~lookup e in
        Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" (indent depth) t se);
        Ok ()
    | Ir.Accum_temp (t, e) ->
        let* se = emit_exp ~lookup e in
        Buffer.add_string buf (Printf.sprintf "%s%s += %s;\n" (indent depth) t se);
        Ok ()
    | Ir.Store (idxs, e) ->
        let* off = linearize out idxs in
        let* se = emit_exp ~lookup e in
        Buffer.add_string buf (Printf.sprintf "%s%s[%s] = %s;\n" (indent depth) out.tname off se);
        Ok ()
    | Ir.For (v, b, body) ->
        let* bn = bound_name b in
        Buffer.add_string buf
          (Printf.sprintf "%sfor (%s = 0; %s < %s; %s++) {\n" (indent depth) v v bn v);
        let* () =
          List.fold_left
            (fun acc st ->
              let* () = acc in
              emit_stmt (depth + 1) st)
            (Ok ()) body
        in
        Buffer.add_string buf (Printf.sprintf "%s}\n" (indent depth));
        Ok ()
  in
  (* signature: sizes, input tensors, output buffer *)
  let sizes =
    List.sort_uniq String.compare (List.concat_map (fun p -> p.dims) (out :: params))
  in
  let param_decl p =
    if p.dims = [] then Printf.sprintf "int %s" p.tname else Printf.sprintf "int* %s" p.tname
  in
  let all_params =
    List.map (Printf.sprintf "int %s") sizes
    @ List.map param_decl (List.filter (fun p -> p.tname <> out.tname) params)
    @ [ Printf.sprintf "int* %s" out.tname ]
  in
  Buffer.add_string buf (Printf.sprintf "void %s(%s) {\n" name (String.concat ", " all_params));
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  int %s;\n" v))
    (List.rev !loop_vars);
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "  int %s;\n" t))
    (List.rev !temps);
  let* () =
    List.fold_left
      (fun acc st ->
        let* () = acc in
        emit_stmt 1 st)
      (Ok ()) kernel.body
  in
  Buffer.add_string buf "}\n";
  Ok (Buffer.contents buf)

let emit_program ~name ~params ~out p =
  let* kernel = Lower.lower p in
  emit ~name ~params ~out kernel
