(** The "TACO compiler": lowers a TACO index-notation program to an
    imperative loop-nest kernel ({!Ir.kernel}).

    Mirrors what the real TACO compiler does for dense tensors: one loop
    per output index; each implicit reduction becomes a
    zero-init/accumulate loop nest around a scalar temporary, placed
    exactly where {!Reduction} inserts the summation. The lowered kernel
    is what the paper's verifier compares against the original C program
    (§7). *)

(** [lower p] compiles [p]. Fails (with a message) if some index variable
    has no determinable extent, i.e. an LHS-only index when the output rank
    cannot anchor it. *)
val lower : Ast.program -> (Ir.kernel, string) result

val lower_exn : Ast.program -> Ir.kernel
