open Ast

module Make (V : Stagg_util.Value.S) = struct
  exception Eval_error of string

  let eval ~tensor_env ~sizes (root : Reduction.t) idx_env0 =
    let rec ev idx_env (node : Reduction.t) =
      match node.reds with
      | [] -> ev_inner idx_env node
      | reds ->
          (* sum over all assignments of the reduction indices inserted
             here; [ev_inner] then evaluates the node itself *)
          let rec loop idx_env = function
            | [] -> ev_inner idx_env node
            | r :: rest ->
                let size =
                  match List.assoc_opt r sizes with
                  | Some s -> s
                  | None ->
                      raise (Eval_error (Printf.sprintf "no extent for reduction index %s" r))
                in
                let acc = ref V.zero in
                for v = 0 to size - 1 do
                  acc := V.add !acc (loop ((r, v) :: idx_env) rest)
                done;
                !acc
          in
          loop idx_env reds
    and ev_inner idx_env (node : Reduction.t) =
      match node.node with
      | Reduction.Const c -> V.of_rat c
      | Reduction.Access (t, idxs) -> (
          match List.assoc_opt t tensor_env with
          | None -> raise (Eval_error (Printf.sprintf "unbound tensor %s" t))
          | Some (tensor : V.t Tensor.t) ->
              let ix =
                Array.of_list
                  (List.map
                     (fun i ->
                       match List.assoc_opt i idx_env with
                       | Some v -> v
                       | None -> raise (Eval_error (Printf.sprintf "unbound index %s" i)))
                     idxs)
              in
              Tensor.get tensor ix)
      | Reduction.Neg e -> V.neg (ev idx_env e)
      | Reduction.Bin (op, l, r) -> (
          let lv = ev idx_env l and rv = ev idx_env r in
          match op with
          | Add -> V.add lv rv
          | Sub -> V.sub lv rv
          | Mul -> V.mul lv rv
          | Div -> V.div lv rv)
    in
    ev idx_env0 root

  let run ~env ?lhs_shape (p : program) =
    let tensor_env = env in
    let shapes = List.map (fun (name, t) -> (name, Tensor.shape t)) tensor_env in
    match Shape.infer_index_sizes ?lhs_shape ~shapes p with
    | Error e -> Error (Shape.error_to_string e)
    | Ok sizes -> (
        let _, lhs_idxs = p.lhs in
        let out_shape = Array.of_list (List.map (fun i -> List.assoc i sizes) lhs_idxs) in
        let root = Reduction.annotate p in
        try
          Ok
            (Tensor.init out_shape (fun ix ->
                 let idx_env = List.mapi (fun k i -> (i, ix.(k))) lhs_idxs in
                 eval ~tensor_env ~sizes root idx_env))
        with
        | Eval_error msg -> Error msg
        | Division_by_zero -> Error "division by zero")
end
