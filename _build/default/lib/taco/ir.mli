(** Imperative loop-nest IR: the target of the {!Lower} "TACO compiler".

    This plays the role of the C kernels the real TACO compiler emits
    (paper §2 and §7): lowered programs are ordinary loop nests over dense
    row-major arrays, executable both concretely and symbolically. Loop
    extents refer to tensor axis sizes symbolically ([Dim_of]), so one
    lowered kernel works for every input size. *)

type bound =
  | Dim_of of string * int  (** extent of axis [k] of input tensor [t] *)
  | Out_dim of int  (** extent of axis [k] of the output tensor *)

type exp =
  | Const of Stagg_util.Rat.t
  | Temp of string  (** scalar temporary *)
  | Load of string * string list  (** [Load (t, ["i";"j"])]: t\[i\]\[j\] *)
  | Neg of exp
  | Bin of Ast.op * exp * exp

type stmt =
  | Set_temp of string * exp
  | Accum_temp of string * exp  (** [t += e] *)
  | Store of string list * exp  (** store into the output at these loop vars *)
  | For of string * bound * stmt list  (** [for v in 0..bound-1] *)

type kernel = {
  out_indices : string list;  (** loop variables indexing the output *)
  body : stmt list;
}

val pp_kernel : Format.formatter -> kernel -> unit

(** [kernel_to_c k] renders the kernel as (illustrative) C source — the
    artifact a TACO user would see. *)
val kernel_to_c : name:string -> kernel -> string

module Exec (V : Stagg_util.Value.S) : sig
  (** [run ~env ~out_shape k] executes the kernel. [env] binds input
      tensors; the output tensor is allocated with [out_shape] and
      returned. *)
  val run :
    env:(string * V.t Tensor.t) list -> out_shape:int array -> kernel -> (V.t Tensor.t, string) result
end
