(** Abstract syntax of TACO index-notation programs (paper Fig. 5).

    A program is a single assignment [lhs = rhs] where the left-hand side is
    a tensor access and the right-hand side is an arithmetic expression over
    tensor accesses and constants. Index variables drive Einstein-summation
    semantics: indices appearing on the right but not on the left are
    reduction (summation) indices. *)

open Stagg_util

type index = string

type op = Add | Sub | Mul | Div

type expr =
  | Access of string * index list
      (** [Access (t, idxs)]: tensor access [t(i,j,...)]; a scalar variable
          is an access with an empty index list. *)
  | Const of Rat.t  (** numeric literal *)
  | Neg of expr  (** unary minus *)
  | Bin of op * expr * expr

type program = { lhs : string * index list; rhs : expr }

let op_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let op_of_char = function
  | '+' -> Some Add
  | '-' -> Some Sub
  | '*' -> Some Mul
  | '/' -> Some Div
  | _ -> None

let all_ops = [ Add; Sub; Mul; Div ]

let equal_op (a : op) (b : op) = a = b

let rec equal_expr e1 e2 =
  match (e1, e2) with
  | Access (t1, i1), Access (t2, i2) -> String.equal t1 t2 && List.equal String.equal i1 i2
  | Const c1, Const c2 -> Rat.equal c1 c2
  | Neg a, Neg b -> equal_expr a b
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> equal_op o1 o2 && equal_expr a1 a2 && equal_expr b1 b2
  | _ -> false

let equal_program p1 p2 =
  let t1, i1 = p1.lhs and t2, i2 = p2.lhs in
  String.equal t1 t2 && List.equal String.equal i1 i2 && equal_expr p1.rhs p2.rhs

(** Tensor names in order of first appearance, RHS scanned left-to-right.
    The LHS tensor comes first (it "necessarily appears first", §4.2.3). *)
let tensors_in_order (p : program) : (string * int) list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let visit name arity =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      acc := (name, arity) :: !acc
    end
  in
  let rec go = function
    | Access (t, idxs) -> visit t (List.length idxs)
    | Const _ -> ()
    | Neg e -> go e
    | Bin (_, a, b) ->
        go a;
        go b
  in
  let lt, li = p.lhs in
  visit lt (List.length li);
  go p.rhs;
  List.rev !acc

(** All index variables of an expression, in order of first appearance. *)
let indices_of_expr (e : expr) : index list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Access (_, idxs) ->
        List.iter
          (fun i ->
            if not (Hashtbl.mem seen i) then begin
              Hashtbl.add seen i ();
              acc := i :: !acc
            end)
          idxs
    | Const _ -> ()
    | Neg e -> go e
    | Bin (_, a, b) ->
        go a;
        go b
  in
  go e;
  List.rev !acc

let indices_of_program (p : program) : index list =
  let _, li = p.lhs in
  let rhs = indices_of_expr p.rhs in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun i ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.add seen i ();
        true
      end)
    (li @ rhs)

(** Reduction indices: on the RHS but not the LHS. *)
let reduction_indices (p : program) : index list =
  let _, li = p.lhs in
  List.filter (fun i -> not (List.mem i li)) (indices_of_expr p.rhs)

(** Number of tensor/constant leaves of the RHS ("length" in the paper's
    penalty definitions: a dot product [b(i,j)*c(j)] has length 2). *)
let rec rhs_length = function
  | Access _ | Const _ -> 1
  | Neg e -> rhs_length e
  | Bin (_, a, b) -> rhs_length a + rhs_length b

(** Expression depth as defined in §5.1: tensors and constants have depth 1,
    index expressions are not counted, unary minus is transparent. *)
let rec depth = function
  | Access _ | Const _ -> 1
  | Neg e -> depth e
  | Bin (_, a, b) -> 1 + max (depth a) (depth b)

(** Operators used in the RHS, without duplicates. *)
let ops_used (e : expr) : op list =
  let rec go acc = function
    | Access _ | Const _ -> acc
    | Neg e -> go acc e
    | Bin (o, a, b) ->
        let acc = if List.mem o acc then acc else o :: acc in
        go (go acc a) b
  in
  List.rev (go [] e)

(** Constants appearing in the RHS, in order of first appearance. *)
let consts_of_expr (e : expr) : Rat.t list =
  let rec go acc = function
    | Access _ -> acc
    | Const c -> c :: acc
    | Neg e -> go acc e
    | Bin (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] e)
