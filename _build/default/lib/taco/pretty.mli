(** Pretty-printing of TACO programs back to index-notation syntax.

    Parentheses are inserted only where required by precedence, so
    [parse (print p)] is the identity on ASTs (tested by round-trip
    properties). *)

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
